package main

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cli"
	"repro/internal/replay"
	"repro/internal/rt"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const fig1ish = `graph g
const x = 1
const y = 5
arith add +
edge a x:0 -> add:0
edge b y:0 -> add:1
edge m add:0 -> out
`

func TestRunDfir(t *testing.T) {
	path := writeTemp(t, "g.dfir", fig1ish)
	if err := run(context.Background(), path, &cli.TelemetryFlags{}, "", 1, 1000, "", false, false); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), path, &cli.TelemetryFlags{}, "", 4, 1000, "", false, false); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), path, &cli.TelemetryFlags{}, "", 1, 1000, "", false, true); err != nil {
		t.Fatalf("profile mode: %v", err)
	}
	if err := run(context.Background(), path, &cli.TelemetryFlags{}, "matrix", 1, 1000, "", false, false); err != nil {
		t.Fatalf("matrix engine: %v", err)
	}
	if err := run(context.Background(), path, &cli.TelemetryFlags{}, "quantum", 1, 1000, "", false, false); !errors.Is(err, rt.ErrInvalid) {
		t.Fatalf("unknown engine not rejected as invalid: %v", err)
	}
}

func TestRunCompileAndDot(t *testing.T) {
	src := writeTemp(t, "p.vn", `int a = 2; int b; b = a * a + 1;`)
	dot := filepath.Join(t.TempDir(), "out.dot")
	if err := run(context.Background(), src, &cli.TelemetryFlags{}, "", 1, 1000, dot, true, false); err != nil {
		t.Fatal(err)
	}
	content, err := os.ReadFile(dot)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(content), "digraph") {
		t.Error("DOT file malformed")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(context.Background(), "/nonexistent", &cli.TelemetryFlags{}, "", 1, 0, "", false, false); err == nil {
		t.Error("missing file should error")
	}
	bad := writeTemp(t, "bad.dfir", "nonsense")
	if err := run(context.Background(), bad, &cli.TelemetryFlags{}, "", 1, 0, "", false, false); err == nil {
		t.Error("bad dfir should error")
	}
	badSrc := writeTemp(t, "bad.vn", "x = 1;")
	if err := run(context.Background(), badSrc, &cli.TelemetryFlags{}, "", 1, 0, "", true, false); err == nil {
		t.Error("bad source should error")
	}
	good := writeTemp(t, "g.dfir", fig1ish)
	if err := run(context.Background(), good, &cli.TelemetryFlags{}, "", 1, 0, "/no/such/dir/out.dot", false, false); err == nil {
		t.Error("unwritable DOT path should error")
	}
}

// TestRecordReplayLoop drives the CLI's record/replay surface: a parallel
// graph run recorded with -trace-format schedule replays clean against the
// same graph, and a tampered schedule diverges with exit-3 classification.
func TestRecordReplayLoop(t *testing.T) {
	path := writeTemp(t, "g.dfir", fig1ish)
	sched := filepath.Join(t.TempDir(), "sched.jsonl")
	tel := &cli.TelemetryFlags{Trace: sched, TraceFormat: "schedule", ScheduleKind: replay.KindDataflow}
	if err := tel.Start(nil); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), path, tel, "", 4, 1000, "", false, false); err != nil {
		t.Fatal(err)
	}
	if err := tel.Finish(); err != nil {
		t.Fatal(err)
	}

	if err := replayRun(path, sched, false); err != nil {
		t.Fatalf("faithful replay: %v", err)
	}

	raw, err := os.ReadFile(sched)
	if err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(t.TempDir(), "bad.jsonl")
	if err := os.WriteFile(bad, []byte(strings.Replace(string(raw), `"name":"add"`, `"name":"sub"`, 1)), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := replayRun(path, bad, false); !errors.Is(err, rt.ErrInvalid) {
		t.Errorf("divergent replay err = %v, want ErrInvalid", err)
	}

	garbage := writeTemp(t, "junk.jsonl", "junk\n")
	if err := replayRun(path, garbage, false); !errors.Is(err, rt.ErrParse) {
		t.Errorf("junk schedule err = %v, want ErrParse", err)
	}
}

func TestRunClassifiesParseError(t *testing.T) {
	bad := writeTemp(t, "bad.dfir", "graph g\nnonsense")
	if err := run(context.Background(), bad, &cli.TelemetryFlags{}, "", 1, 1000, "", false, false); !errors.Is(err, rt.ErrParse) {
		t.Errorf("dfir parse error not classified: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := writeTemp(t, "g.dfir", fig1ish)
	if err := run(ctx, g, &cli.TelemetryFlags{}, "", 1, 1000, "", false, false); !errors.Is(err, rt.ErrCanceled) {
		t.Errorf("canceled run not classified: %v", err)
	}
}
