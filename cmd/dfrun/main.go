// Command dfrun executes a dynamic dataflow graph and prints its outputs.
//
// Usage:
//
//	dfrun [-workers N] [-maxfirings N] [-dot out.dot] [-compile] file
//
// The input is a .dfir graph description by default; with -compile it is a
// source file in the paper's von Neumann mini language, translated first.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/compiler"
	"repro/internal/dataflow"
	"repro/internal/dfir"
	"repro/internal/profile"
)

func main() {
	workers := flag.Int("workers", 1, "processing elements (1 = sequential deterministic)")
	maxFirings := flag.Int64("maxfirings", 1_000_000, "abort after this many vertex activations (0 = unlimited)")
	dot := flag.String("dot", "", "also write the graph as Graphviz DOT to this file")
	compile := flag.Bool("compile", false, "treat the input as von Neumann source, not .dfir")
	prof := flag.Bool("profile", false, "print work/span/parallelism of the execution")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: dfrun [flags] file")
		flag.PrintDefaults()
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *workers, *maxFirings, *dot, *compile, *prof); err != nil {
		fmt.Fprintln(os.Stderr, "dfrun:", err)
		os.Exit(1)
	}
}

func run(path string, workers int, maxFirings int64, dot string, compile, prof bool) error {
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var g *dataflow.Graph
	if compile {
		g, err = compiler.Compile(path, string(src))
	} else {
		g, err = dfir.Unmarshal(string(src))
	}
	if err != nil {
		return err
	}
	if dot != "" {
		if err := os.WriteFile(dot, []byte(dfir.ToDOT(g)), 0o644); err != nil {
			return err
		}
	}
	opt := dataflow.Options{Workers: workers, MaxFirings: maxFirings}
	var col *profile.Collector
	if prof {
		col = profile.NewCollector()
		opt.Tracer = col
	}
	res, err := dataflow.Run(g, opt)
	if err != nil {
		return err
	}
	labels := make([]string, 0, len(res.Outputs))
	for l := range res.Outputs {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		for _, tv := range res.Outputs[l] {
			fmt.Printf("%s = %s (tag %d)\n", l, tv.Val, tv.Tag)
		}
	}
	fmt.Printf("firings=%d pending=%d workers=%d [%s]\n", res.Firings, res.Pending, res.Workers, dfir.Stats(g))
	if col != nil {
		fmt.Println("profile:", col.Report())
	}
	return nil
}
