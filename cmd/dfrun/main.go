// Command dfrun executes a dynamic dataflow graph and prints its outputs.
//
// Usage:
//
//	dfrun [-engine E] [-workers N] [-maxfirings N] [-timeout D] [-dot out.dot] [-compile] file
//
// The input is a .dfir graph description by default; with -compile it is a
// source file in the paper's von Neumann mini language, translated first.
//
// The run is bounded by -timeout and canceled by SIGINT/SIGTERM; exit codes
// follow the shared taxonomy of package internal/cli (3 parse/invalid,
// 4 firing budget, 5 canceled/deadline, 6 PE panic, ...).
//
// Record and replay: -trace sched.jsonl -trace-format schedule records the
// run's committed firing order as an executable schedule; -replay
// sched.jsonl re-executes that schedule step for step against the graph and
// prints a divergence report (exit 3) when the graph no longer reproduces
// the recording.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/cli"
	"repro/internal/compiler"
	"repro/internal/dataflow"
	"repro/internal/dfir"
	"repro/internal/profile"
	"repro/internal/replay"
	"repro/internal/rt"
	"repro/internal/schema"
	"repro/internal/telemetry"
)

func main() {
	engine := flag.String("engine", "", "execution engine: seq, parallel, or matrix (default: workers decide)")
	workers := flag.Int("workers", 1, "processing elements (1 = sequential deterministic)")
	maxFirings := flag.Int64("maxfirings", 1_000_000, "abort after this many vertex activations (0 = unlimited)")
	dot := flag.String("dot", "", "also write the graph as Graphviz DOT to this file")
	compile := flag.Bool("compile", false, "treat the input as von Neumann source, not .dfir")
	prof := flag.Bool("profile", false, "print work/span/parallelism of the execution")
	timeout := flag.Duration("timeout", 0, "abort the run after this long, e.g. 30s (0 = no deadline)")
	replayFile := flag.String("replay", "", "replay a recorded schedule (from -trace-format schedule) instead of running")
	var tel cli.TelemetryFlags
	tel.Register(flag.CommandLine)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: dfrun [flags] file")
		flag.PrintDefaults()
		os.Exit(cli.ExitUsage)
	}
	tel.ScheduleKind = replay.KindDataflow
	if err := tel.Start(nil); err != nil {
		cli.Exit("dfrun", err)
	}
	ctx, stop := cli.Context(*timeout)
	var err error
	if *replayFile != "" {
		err = replayRun(flag.Arg(0), *replayFile, *compile)
	} else {
		err = run(ctx, flag.Arg(0), &tel, *engine, *workers, *maxFirings, *dot, *compile, *prof)
	}
	stop()
	if terr := tel.Finish(); err == nil {
		err = terr
	}
	cli.Exit("dfrun", err)
}

// loadGraph reads and parses the input the way run does: .dfir by default,
// von Neumann source with -compile.
func loadGraph(path string, compile bool) (*dataflow.Graph, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if compile {
		return compiler.Compile(path, string(src))
	}
	g, err := dfir.Unmarshal(string(src))
	if err != nil {
		return nil, rt.Mark(rt.ErrParse, err)
	}
	return g, nil
}

// replayRun re-executes a recorded schedule against the graph, step for
// step, printing the replayed outputs on success and the divergence report
// on the first step the graph no longer reproduces.
func replayRun(path, schedPath string, compile bool) error {
	g, err := loadGraph(path, compile)
	if err != nil {
		return err
	}
	sf, err := os.Open(schedPath)
	if err != nil {
		return err
	}
	sched, err := replay.Parse(sf)
	sf.Close()
	if err != nil {
		return err
	}
	res, err := replay.ReplayDataflow(g, sched)
	if err != nil {
		return err
	}
	if res.Divergence != nil {
		fmt.Fprintln(os.Stderr, res.Divergence)
		return rt.Mark(rt.ErrInvalid, fmt.Errorf("replay diverged at step %d (%s)", res.Divergence.Step, res.Divergence.Reason))
	}
	labels := make([]string, 0, len(res.Outputs))
	for l := range res.Outputs {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		for _, tv := range res.Outputs[l] {
			fmt.Printf("%s = %s (tag %d)\n", l, tv.Val, tv.Tag)
		}
	}
	fmt.Printf("replayed steps=%d pending=%d stable=%v\n", res.Steps, res.Pending, res.Stable)
	return nil
}

func run(ctx context.Context, path string, tel *cli.TelemetryFlags, engine string, workers int, maxFirings int64, dot string, compile, prof bool) error {
	// Route engine selection through the wire spec so the CLI accepts exactly
	// the enum gammad does and inherits its worker-forcing rules.
	spec := schema.RunSpec{Engine: engine, Workers: workers}
	if err := spec.Validate(); err != nil {
		return err
	}
	g, err := loadGraph(path, compile)
	if err != nil {
		return err
	}
	if dot != "" {
		if err := os.WriteFile(dot, []byte(dfir.ToDOT(g)), 0o644); err != nil {
			return err
		}
	}
	opt := dataflow.Options{Workers: spec.EffectiveWorkers(), MaxFirings: maxFirings, Recorder: tel.Recorder()}
	if s := tel.Schedule(); s != nil {
		opt.Schedule = s
	}
	if spec.Engine == schema.EngineMatrix {
		opt.Engine = dataflow.EngineMatrix
	}
	var col *profile.Collector
	var tracers []telemetry.Tracer
	if prof {
		col = profile.NewCollector()
		tracers = append(tracers, col)
	}
	if p := tel.Provenance(); p != nil {
		tracers = append(tracers, p)
	}
	if tr := telemetry.MultiTracer(tracers...); tr != nil {
		opt.Tracer = tr
	}
	res, err := dataflow.RunContext(ctx, g, opt)
	if err != nil {
		if res != nil {
			// Early exit: report the partial work so an interrupted run is
			// still diagnosable.
			fmt.Fprintf(os.Stderr, "partial: firings=%d pending=%d\n", res.Firings, res.Pending)
		}
		return err
	}
	labels := make([]string, 0, len(res.Outputs))
	for l := range res.Outputs {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		for _, tv := range res.Outputs[l] {
			fmt.Printf("%s = %s (tag %d)\n", l, tv.Val, tv.Tag)
		}
	}
	fmt.Printf("firings=%d pending=%d workers=%d [%s]\n", res.Firings, res.Pending, res.Workers, dfir.Stats(g))
	if col != nil {
		fmt.Println("profile:", col.Report())
	}
	return nil
}
