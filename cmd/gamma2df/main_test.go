package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cli"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestWholeProgram(t *testing.T) {
	path := writeTemp(t, "p.gamma", `
init {[1, 'A1', 0], [5, 'B1', 0]}
R1 = replace [id1, 'A1', v], [id2, 'B1', v] by [id1 + id2, 'S', v]
`)
	dot := filepath.Join(t.TempDir(), "p.dot")
	if err := run(path, &cli.TelemetryFlags{}, false, dot); err != nil {
		t.Fatal(err)
	}
	content, err := os.ReadFile(dot)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(content), "digraph") {
		t.Error("DOT malformed")
	}
}

func TestSingleReaction(t *testing.T) {
	path := writeTemp(t, "r.gamma", `R = replace (x, y) by x where x < y`)
	if err := run(path, &cli.TelemetryFlags{}, true, ""); err != nil {
		t.Fatal(err)
	}
}

func TestErrors(t *testing.T) {
	if err := run("/nonexistent", &cli.TelemetryFlags{}, false, ""); err == nil {
		t.Error("missing file should error")
	}
	bad := writeTemp(t, "bad.gamma", "replace")
	if err := run(bad, &cli.TelemetryFlags{}, false, ""); err == nil {
		t.Error("parse error should surface")
	}
	if err := run(bad, &cli.TelemetryFlags{}, true, ""); err == nil {
		t.Error("parse error should surface in reaction mode")
	}
	// Whole-program mode without producers for consumed labels.
	orphan := writeTemp(t, "orphan.gamma", "R = replace [x, 'IN', v] by [x, 'OUT', v]")
	if err := run(orphan, &cli.TelemetryFlags{}, false, ""); err == nil {
		t.Error("missing producers should error")
	}
	two := writeTemp(t, "two.gamma", `
A = replace [x, 'a', v] by [x, 'b', v]
B = replace [x, 'b', v] by [x, 'c', v]
`)
	if err := run(two, &cli.TelemetryFlags{}, true, ""); err == nil {
		t.Error("reaction mode with two reactions should error")
	}
	// Multi-stage composition cannot become one program.
	staged := writeTemp(t, "staged.gamma", `
init {[1, 'a', 0]}
A = replace [x, 'a', v] by [x, 'b', v]
B = replace [x, 'b', v] by [x, 'c', v]
A ; B
`)
	if err := run(staged, &cli.TelemetryFlags{}, false, ""); err == nil {
		t.Error("multi-stage file should error in whole-program mode")
	}
}
