// Command gamma2df applies Algorithm 2: it converts Gamma source back into a
// dynamic dataflow graph.
//
// Two modes, matching the paper's two procedures:
//
//	gamma2df file.gamma            whole-program reconstruction: every
//	                               reaction is classified into the vertex it
//	                               behaves as (steer, inctag, ... — the
//	                               paper's future-work analysis) and wired
//	                               through its element labels; requires an
//	                               init {...} declaration for the roots.
//	gamma2df -reaction file.gamma  single-reaction subgraph (Algorithm 2
//	                               step 1): roots from the replace list,
//	                               steers from conditions, arithmetic trees
//	                               from the by list.
//
// The graph is printed in dfir text format; -dot additionally writes DOT.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/dfir"
	"repro/internal/gammalang"
)

func main() {
	reaction := flag.Bool("reaction", false, "convert a single reaction to its subgraph (Algorithm 2 step 1)")
	dot := flag.String("dot", "", "also write the graph as Graphviz DOT to this file")
	var tel cli.TelemetryFlags
	tel.Register(flag.CommandLine)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: gamma2df [flags] file.gamma")
		flag.PrintDefaults()
		os.Exit(cli.ExitUsage)
	}
	if err := tel.Start(nil); err != nil {
		cli.Exit("gamma2df", err)
	}
	err := run(flag.Arg(0), &tel, *reaction, *dot)
	if terr := tel.Finish(); err == nil {
		err = terr
	}
	cli.Exit("gamma2df", err)
}

func run(path string, tel *cli.TelemetryFlags, singleReaction bool, dot string) error {
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var g *dataflow.Graph
	if singleReaction {
		r, err := gammalang.ParseReaction(string(src))
		if err != nil {
			return err
		}
		g, err = core.ReactionToGraph(r)
		if err != nil {
			return err
		}
	} else {
		file, err := gammalang.ParseFile(string(src))
		if err != nil {
			return err
		}
		prog, err := file.Program(path)
		if err != nil {
			return err
		}
		g, err = core.ProgramToGraph(path, prog, file.Init)
		if err != nil {
			return err
		}
	}
	if dot != "" {
		if err := os.WriteFile(dot, []byte(dfir.ToDOT(g)), 0o644); err != nil {
			return err
		}
	}
	if tel.Enabled() {
		// Observe the conversion's output: execute the reconstructed graph so
		// the trace shows the dataflow execution the Gamma program maps to.
		// Single-reaction subgraphs have unconnected roots and are skipped.
		if !singleReaction {
			opt := dataflow.Options{Workers: 1, MaxFirings: 1_000_000, Recorder: tel.Recorder()}
			if p := tel.Provenance(); p != nil {
				opt.Tracer = p
			}
			if _, err := dataflow.Run(g, opt); err != nil {
				return fmt.Errorf("traced run of converted graph: %w", err)
			}
		} else {
			fmt.Fprintln(os.Stderr, "gamma2df: -reaction subgraphs are not executable; trace skipped")
		}
	}
	fmt.Print(dfir.Marshal(g))
	return nil
}
