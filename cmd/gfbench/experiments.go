package main

import (
	"fmt"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/dist"
	"repro/internal/equiv"
	"repro/internal/gamma"
	"repro/internal/gammalang"
	"repro/internal/metrics"
	"repro/internal/multiset"
	"repro/internal/paper"
	"repro/internal/profile"
	"repro/internal/reuse"
	"repro/internal/value"
)

// expE1 regenerates Example 1: the Fig. 1 graph, its conversion and both
// executions, checking m = (x+y)-(k*j) = 0.
func expE1() error {
	t := metrics.NewTable("Example 1: m = (x+y)-(k*j), inputs 1,5,3,2",
		"pipeline", "m", "firings/steps", "time")

	g := paper.Fig1Graph()
	var dfRes *dataflow.Result
	d := metrics.TimeN(5, func() {
		var err error
		dfRes, err = dataflow.Run(g, dataflow.Options{})
		if err != nil {
			panic(err)
		}
	})
	m, _ := dfRes.Output("m")
	t.Row("dataflow (Fig. 1 graph)", m, dfRes.Firings, d)

	prog, init, err := core.ToGamma(g)
	if err != nil {
		return err
	}
	var st *gamma.Stats
	var stable *multiset.Multiset
	d = metrics.TimeN(5, func() {
		stable = init.Clone()
		st, err = gamma.Run(prog, stable, gamma.Options{})
		if err != nil {
			panic(err)
		}
	})
	t.Row("gamma (Algorithm 1 output)", stable, st.Steps, d)

	listing, err := gammalang.ParseProgram("ex1", paper.Example1GammaListing)
	if err != nil {
		return err
	}
	lm, err := multiset.Parse(paper.Example1InitialMultiset)
	if err != nil {
		return err
	}
	st2, err := gamma.Run(listing, lm, gamma.Options{})
	if err != nil {
		return err
	}
	t.Row("gamma (paper listing R1-R3)", lm, st2.Steps, "-")
	fmt.Print(t)
	fmt.Println("paper: both models compute m = 0 with three operations / three reactions")
	return nil
}

// expE3 regenerates Example 2: the loop for several z, in both models, with
// the faithful (discarding) and observable variants.
func expE3() error {
	t := metrics.NewTable("Example 2: for(i=z; i>0; i--) x=x+y, x=10 y=4",
		"z", "dataflow xout", "gamma xout", "firings", "steps", "stable multiset size")
	for _, z := range []int64{0, 1, 3, 10, 25} {
		g := paper.Fig2GraphObservable(10, 4, z)
		res, err := dataflow.Run(g, dataflow.Options{MaxFirings: 1_000_000})
		if err != nil {
			return err
		}
		prog, init, err := core.ToGamma(g)
		if err != nil {
			return err
		}
		st, err := gamma.Run(prog, init, gamma.Options{MaxSteps: 1_000_000})
		if err != nil {
			return err
		}
		dfOut, _ := res.Output("xout")
		gmOuts := core.OutputsFromMultiset(init, []string{"xout"})
		var gmOut value.Value
		if len(gmOuts["xout"]) > 0 {
			gmOut = gmOuts["xout"][0].Val
		}
		t.Row(z, dfOut, gmOut, res.Firings, st.Steps, init.Len())
	}
	fmt.Print(t)

	// Faithful variant: the paper's listing discards everything on exit.
	faithful := paper.Fig2Graph()
	prog, init, err := core.ToGamma(faithful)
	if err != nil {
		return err
	}
	if _, err := gamma.Run(prog, init, gamma.Options{MaxSteps: 1_000_000}); err != nil {
		return err
	}
	fmt.Printf("faithful Fig. 2 (all steers discard on exit): stable multiset = %s (paper: empty)\n", init)
	fmt.Println("paper: xout = x + y*z for z > 0; 9 reactions R11-R19 mirror the 9 operator vertices")
	return nil
}

// expE4 regenerates Eq. 2 over growing multisets.
func expE4() error {
	prog, err := gammalang.ParseProgram("min", paper.MinElementListing)
	if err != nil {
		return err
	}
	t := metrics.NewTable("Eq. 2: R = replace(x,y) by x where x < y",
		"n", "min", "steps", "time")
	for _, n := range []int{10, 100, 400} {
		m := multiset.New()
		want := int64(1 << 40)
		for i := 0; i < n; i++ {
			v := int64((i*2654435761 + 17) % (4 * n))
			if v < want {
				want = v
			}
			m.Add(multiset.New1(value.Int(v)))
		}
		var st *gamma.Stats
		d := metrics.Time(func() {
			st, err = gamma.Run(prog, m, gamma.Options{})
			if err != nil {
				panic(err)
			}
		})
		t.Row(n, m, st.Steps, d)
		if !m.Contains(multiset.New1(value.Int(want))) {
			return fmt.Errorf("min mismatch: %s, want %d", m, want)
		}
	}
	fmt.Print(t)
	fmt.Println("paper: a single reaction reduces the multiset to its smallest element (n-1 firings)")
	return nil
}

// expE5 regenerates the reductions: the mechanically derived Rd1 against the
// full program, over n independent expression instances.
func expE5() error {
	full, err := gammalang.ParseProgram("full", paper.Example1GammaListing)
	if err != nil {
		return err
	}
	reduced, fused, err := core.Reduce(full)
	if err != nil {
		return err
	}
	fmt.Printf("reducer fused %d chains: %d reactions -> %d (paper: R1,R2,R3 -> Rd1)\n",
		fused, len(full.Reactions), len(reduced.Reactions))

	t := metrics.NewTable("granularity: full (3 reactions) vs reduced (Rd1)",
		"instances", "variant", "steps", "time")
	for _, n := range []int{1, 8, 32} {
		init := multiset.New()
		for i := 0; i < n; i++ {
			init.Add(multiset.Pair(value.Int(int64(i)), "A1"))
			init.Add(multiset.Pair(value.Int(5), "B1"))
			init.Add(multiset.Pair(value.Int(3), "C1"))
			init.Add(multiset.Pair(value.Int(2), "D1"))
		}
		for _, variant := range []struct {
			name string
			prog *gamma.Program
		}{{"full", full}, {"reduced", reduced}} {
			m := init.Clone()
			var st *gamma.Stats
			d := metrics.TimeN(3, func() {
				m = init.Clone()
				var err error
				st, err = gamma.Run(variant.prog, m, gamma.Options{})
				if err != nil {
					panic(err)
				}
			})
			t.Row(n, variant.name, st.Steps, d)
		}
	}
	fmt.Print(t)
	fmt.Println("paper: reductions decrease the number of reactions (and steps) but also the")
	fmt.Println("       opportunity to explore reaction parallelism (fewer independent matches)")
	return nil
}

// expE7 parses every listing in the paper under the Fig. 3 grammar.
func expE7() error {
	t := metrics.NewTable("Fig. 3 grammar over the paper's listings",
		"listing", "reactions", "status")
	for _, l := range []struct {
		name string
		src  string
	}{
		{"Example 1 (R1-R3)", paper.Example1GammaListing},
		{"Example 2 (R11-R19)", paper.Example2GammaListing},
		{"Reduced Example 1 (Rd1)", paper.ReducedExample1Listing},
		{"Reduced Example 2 (Rd11-Rd16)", paper.ReducedExample2Listing},
		{"Eq. 2 (min element)", paper.MinElementListing},
	} {
		f, err := gammalang.ParseFile(l.src)
		if err != nil {
			t.Row(l.name, "-", err.Error())
			continue
		}
		t.Row(l.name, len(f.Reactions), "ok")
	}
	fmt.Print(t)
	return nil
}

// expE8 regenerates Fig. 4: instance replication over the multiset.
func expE8() error {
	r, err := gammalang.ParseReaction(`R = replace [x, 'a'], [y, 'a'] by [x + y, 'b']`)
	if err != nil {
		return err
	}
	t := metrics.NewTable("Fig. 4: arity-2 reaction mapped over n elements",
		"elements", "instances", "final size", "vertex firings")
	for _, n := range []int{6, 12, 60} {
		m := multiset.New()
		for i := 0; i < n; i++ {
			m.Add(multiset.Pair(value.Int(int64(i+1)), "a"))
		}
		res, err := core.MapMultiset(r, m, dataflow.Options{})
		if err != nil {
			return err
		}
		t.Row(n, res.Instances, m.Len(), res.Firings)
	}
	fmt.Print(t)
	fmt.Println("paper: Fig. 4 shows 3 instances covering a 6-element multiset (n/2 for arity 2)")
	return nil
}

// expE9 checks Algorithm 1 equivalence over seeded random graphs.
func expE9() error {
	t := metrics.NewTable("Algorithm 1 equivalence on random graphs",
		"seed", "operators", "equivalent", "firings=steps")
	ok := 0
	for seed := int64(1); seed <= 20; seed++ {
		g := equiv.RandomGraph(seed, 4, 8+int(seed))
		rep, err := equiv.Check(g, equiv.Options{MaxSteps: 1_000_000})
		if err != nil {
			return err
		}
		if rep.Equivalent {
			ok++
		}
		t.Row(seed, len(g.Nodes), rep.Equivalent,
			fmt.Sprintf("%d=%d", rep.OperatorFirings, rep.ReactionSteps))
	}
	fmt.Print(t)
	fmt.Printf("%d/20 random graphs equivalent (paper: conversion preserves semantics)\n", ok)
	return nil
}

// expE11 demonstrates the §III-C correspondence on the paper's graphs and
// compiled programs.
func expE11() error {
	t := metrics.NewTable("§III-C: operator firings = reaction steps, stuck operands = residual elements",
		"program", "operator firings", "reaction steps", "pending", "residual")
	progs := map[string]*dataflow.Graph{
		"Fig. 1":            paper.Fig1Graph(),
		"Fig. 2 faithful":   paper.Fig2Graph(),
		"Fig. 2 observable": paper.Fig2GraphObservable(10, 4, 5),
	}
	if g, err := compiler.Compile("sumsq", `int i; int s = 0; for (i = 10; i > 0; i--) s = s + i * i; output s;`); err == nil {
		progs["compiled sum-of-squares"] = g
	}
	for name, g := range progs {
		rep, err := equiv.Check(g, equiv.Options{MaxSteps: 1_000_000})
		if err != nil {
			return err
		}
		if !rep.Equivalent {
			return fmt.Errorf("%s: %v", name, rep.Mismatches)
		}
		res, err := dataflow.Run(g, dataflow.Options{MaxFirings: 1_000_000})
		if err != nil {
			return err
		}
		t.Row(name, rep.OperatorFirings, rep.ReactionSteps, res.Pending, res.Pending)
	}
	fmt.Print(t)
	return nil
}

// expE12 measures parallel scaling of both runtimes with expensive
// operations.
func expE12() error {
	t := metrics.NewTable("parallel scaling (WorkFactor 20000 per operation)",
		"runtime", "workers", "time", "speedup")
	// Gamma: min element over 300 values.
	prog, err := gammalang.ParseProgram("min", paper.MinElementListing)
	if err != nil {
		return err
	}
	init := multiset.New()
	for i := 0; i < 300; i++ {
		init.Add(multiset.New1(value.Int(int64((i*31 + 7) % 1000))))
	}
	var base float64
	for _, w := range []int{1, 2, 4, 8} {
		d := metrics.TimeN(3, func() {
			m := init.Clone()
			if _, err := gamma.Run(prog, m, gamma.Options{Workers: w, Seed: 1, WorkFactor: 20000}); err != nil {
				panic(err)
			}
		})
		if w == 1 {
			base = float64(d)
		}
		t.Row("gamma", w, d, base/float64(d))
	}
	// Dataflow: wide compiled expression dag.
	src := "int a = 3;\n"
	for i := 0; i < 64; i++ {
		src += fmt.Sprintf("int v%d; v%d = (a * %d + 1) * (a + %d) - a * %d;\n", i, i, i+1, i+2, i+3)
	}
	g, err := compiler.Compile("wide", src)
	if err != nil {
		return err
	}
	for _, w := range []int{1, 2, 4, 8} {
		d := metrics.TimeN(3, func() {
			if _, err := dataflow.Run(g, dataflow.Options{Workers: w, WorkFactor: 20000}); err != nil {
				panic(err)
			}
		})
		if w == 1 {
			base = float64(d)
		}
		t.Row("dataflow", w, d, base/float64(d))
	}
	fmt.Print(t)
	fmt.Println("paper: both models expose parallelism naturally; speedup bounded by GOMAXPROCS")
	return nil
}

// expE13 measures trace reuse in both models on a loop with repeated
// subcomputations.
func expE13() error {
	src := `int i; int k = 7; int s = 0;
	        for (i = 50; i > 0; i--)
	            s = s + k*k + k*k + k*k + k*k + k*k + k*k + k*k + k*k;
	        output s;`
	g, err := compiler.Compile("reuse", src)
	if err != nil {
		return err
	}
	const work = 50000
	t := metrics.NewTable("trace reuse (DF-DTM) on s += 8*(k*k), 50 iterations, WorkFactor 50000",
		"runtime", "memo", "time", "hits", "hit rate")

	d := metrics.TimeN(3, func() {
		if _, err := dataflow.Run(g, dataflow.Options{WorkFactor: work}); err != nil {
			panic(err)
		}
	})
	t.Row("dataflow", "off", d, 0, "-")
	var hits int64
	var tbl *reuse.Table
	d = metrics.TimeN(3, func() {
		tbl = reuse.NewTable(0)
		res, err := dataflow.Run(g, dataflow.Options{WorkFactor: work, Memo: tbl})
		if err != nil {
			panic(err)
		}
		hits = res.MemoHits
	})
	t.Row("dataflow", "on", d, hits, fmt.Sprintf("%.0f%%", 100*tbl.Stats().HitRate()))

	prog, init, err := core.ToGamma(g)
	if err != nil {
		return err
	}
	d = metrics.TimeN(3, func() {
		m := init.Clone()
		if _, err := gamma.Run(prog, m, gamma.Options{WorkFactor: work}); err != nil {
			panic(err)
		}
	})
	t.Row("gamma", "off", d, 0, "-")
	d = metrics.TimeN(3, func() {
		tbl = reuse.NewTable(0)
		m := init.Clone()
		st, err := gamma.Run(prog, m, gamma.Options{WorkFactor: work, Memo: tbl})
		if err != nil {
			panic(err)
		}
		hits = st.MemoHits
	})
	t.Row("gamma", "on", d, hits, fmt.Sprintf("%.0f%%", 100*tbl.Stats().HitRate()))
	fmt.Print(t)
	fmt.Println("paper (§I): conversion lets Gamma programs profit from dataflow trace reuse [3];")
	fmt.Println("tag-masked reaction memoization carries the same technique back to Gamma")
	return nil
}

// expE15 profiles work, span and average parallelism across the paper's
// programs in both models — the model-level version of the parallelism
// claims, independent of machine and scheduler.
func expE15() error {
	t := metrics.NewTable("work / span / average parallelism (ideal-scheduler bounds)",
		"program", "model", "work", "span", "parallelism", "peak width")

	// Fig. 1 in both models.
	colDF := profile.NewCollector()
	if _, err := dataflow.Run(paper.Fig1Graph(), dataflow.Options{Tracer: colDF}); err != nil {
		return err
	}
	r := colDF.Report()
	t.Row("Fig. 1", "dataflow", r.Work, r.Span, r.Parallelism, r.PeakWidth)

	prog, init, err := core.ToGamma(paper.Fig1Graph())
	if err != nil {
		return err
	}
	colG := profile.NewCollector()
	if _, err := gamma.Run(prog, init.Clone(), gamma.Options{Tracer: colG}); err != nil {
		return err
	}
	r = colG.Report()
	t.Row("Fig. 1", "gamma", r.Work, r.Span, r.Parallelism, r.PeakWidth)

	// Full vs reduced Example 1 over 16 independent instances: same span
	// per instance, but the reduced form does each instance in one firing.
	full, err := gammalang.ParseProgram("full", paper.Example1GammaListing)
	if err != nil {
		return err
	}
	reduced, _, err := core.Reduce(full)
	if err != nil {
		return err
	}
	instances := multiset.New()
	for i := 0; i < 16; i++ {
		instances.Add(multiset.Pair(value.Int(int64(i)), "A1"))
		instances.Add(multiset.Pair(value.Int(5), "B1"))
		instances.Add(multiset.Pair(value.Int(3), "C1"))
		instances.Add(multiset.Pair(value.Int(2), "D1"))
	}
	for _, variant := range []struct {
		name string
		p    *gamma.Program
	}{{"full R1-R3", full}, {"reduced Rd1", reduced}} {
		col := profile.NewCollector()
		if _, err := gamma.Run(variant.p, instances.Clone(), gamma.Options{Tracer: col}); err != nil {
			return err
		}
		r = col.Report()
		t.Row("Example 1 x16 ("+variant.name+")", "gamma", r.Work, r.Span, r.Parallelism, r.PeakWidth)
	}

	// The Fig. 2 loop is inherently sequential: span grows with z.
	for _, z := range []int64{4, 16} {
		col := profile.NewCollector()
		g := paper.Fig2GraphObservable(10, 4, z)
		if _, err := dataflow.Run(g, dataflow.Options{Tracer: col, MaxFirings: 1_000_000}); err != nil {
			return err
		}
		r = col.Report()
		t.Row(fmt.Sprintf("Fig. 2 loop z=%d", z), "dataflow", r.Work, r.Span, r.Parallelism, r.PeakWidth)
	}

	// Min element: nondeterministic pairing yields a tournament-ish span.
	minProg, err := gammalang.ParseProgram("min", paper.MinElementListing)
	if err != nil {
		return err
	}
	m := multiset.New()
	for i := int64(1); i <= 64; i++ {
		m.Add(multiset.New1(value.Int(i)))
	}
	col := profile.NewCollector()
	if _, err := gamma.Run(minProg, m, gamma.Options{Seed: 3, Tracer: col}); err != nil {
		return err
	}
	r = col.Report()
	t.Row("Eq. 2 min over 64", "gamma", r.Work, r.Span, r.Parallelism, r.PeakWidth)

	fmt.Print(t)
	fmt.Println("paper: both models \"expose parallelism naturally\"; span is the schedule-")
	fmt.Println("independent limit. Reductions (§III-A3) shrink span per instance to 1 but do")
	fmt.Println("not change cross-instance parallelism; loops are sequential chains by nature")
	return nil
}

// expE14 runs the min-element program over the simulated distributed
// multiset, the paper's §IV future-work environment.
func expE14() error {
	prog, err := gammalang.ParseProgram("min", paper.MinElementListing)
	if err != nil {
		return err
	}
	init := multiset.New()
	for i := 0; i < 128; i++ {
		init.Add(multiset.New1(value.Int(int64((i*37 + 5) % 500))))
	}
	t := metrics.NewTable("distributed min over 128 elements",
		"nodes", "topology", "steps", "rounds", "migrations", "gathers", "time")
	for _, topo := range []dist.Topology{dist.TopologyFull, dist.TopologyRing} {
		for _, nodes := range []int{1, 2, 4, 8} {
			var stats *dist.Stats
			var result *multiset.Multiset
			d := metrics.TimeN(3, func() {
				c, err := dist.NewCluster(prog, dist.Options{Nodes: nodes, Seed: int64(nodes), Topology: topo})
				if err != nil {
					panic(err)
				}
				result, stats, err = c.Run(init.Clone())
				if err != nil {
					panic(err)
				}
			})
			if result.Len() != 1 {
				return fmt.Errorf("nodes=%d: result %s", nodes, result)
			}
			t.Row(nodes, topo, stats.Steps, stats.Rounds, stats.Migrations, stats.Gathers, d)
		}
	}
	fmt.Print(t)
	fmt.Println("paper (§IV): a program in dataflow form \"can be exploited in an execution")
	fmt.Println("environment quite suitable to IoT\" via Gamma distributed multisets; the result")
	fmt.Println("is node-count independent, reaction count stays n-1, migrations grow with nodes")
	return nil
}
