// Command gfbench regenerates the paper's experiments (DESIGN.md §3,
// E1–E13): it executes every figure, listing and claim and prints
// paper-vs-measured tables. EXPERIMENTS.md is written from this output.
//
// Usage:
//
//	gfbench [-exp e1|e3|e4|e5|e7|e8|e9|e11|e12|e13|e14|e15|e16|e17|e19|e20|e21|e22|e23|e24|all] [-bench-json BENCH_gamma.json]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cli"
	"repro/internal/multiset"
	"repro/internal/rt"
)

var experiments = []struct {
	id   string
	desc string
	run  func() error
}{
	{"e1", "Fig. 1 / Example 1: expression in both models", expE1},
	{"e3", "Fig. 2 / Example 2: dynamic loop in both models", expE3},
	{"e4", "Eq. 2: min element", expE4},
	{"e5", "§III-A3 reductions (Rd1): granularity trade-off", expE5},
	{"e7", "Fig. 3 grammar: all paper listings parse", expE7},
	{"e8", "Fig. 4: multiset-to-instances mapping", expE8},
	{"e9", "Algorithm 1 equivalence on random graphs", expE9},
	{"e11", "§III-C correspondence: firings = reaction steps", expE11},
	{"e12", "parallel execution scaling (both runtimes)", expE12},
	{"e13", "trace reuse (DF-DTM) across both models", expE13},
	{"e14", "future work: Gamma over a distributed multiset (IoT)", expE14},
	{"e15", "work/span/parallelism profiles across both models", expE15},
	{"e16", "incremental matching engine: delta scheduling vs full rescan", expE16},
	{"e17", "cancellation & fault-injection matrix (DESIGN.md §9)", expE17},
	{"e19", "telemetry: recorder overhead & traced Fig. 1 fidelity (DESIGN.md §11)", expE19},
	{"e20", "work-stealing parallel runtime: workers × n scalability (DESIGN.md §12)", expE20},
	{"e21", "gammad service under closed-loop load: rps, p50/p99, leakage check (DESIGN.md §13)", expE21},
	{"e22", "bulk-synchronous matrix dataflow engine vs PE pool on wide graphs (DESIGN.md §14)", expE22},
	{"e23", "service trace overhead: traced vs untraced closed-loop load + wire fidelity (DESIGN.md §15)", expE23},
	{"e24", "executable schedules: recording overhead + parallel-record/sequential-replay determinism (DESIGN.md §16)", expE24},
}

// benchTel carries the -trace/-metrics flags; e19's traced Fig. 1 run exports
// through it when set.
var benchTel = &cli.TelemetryFlags{}

func main() {
	exp := flag.String("exp", "all", "comma-separated experiment ids (e1, e3, ...) or all")
	figures := flag.String("figures", "", "write the paper's figures (DOT + dfir + gamma) into this directory and exit")
	benchJSON := flag.String("bench-json", "", "write the e16 engine measurements to this file (e.g. BENCH_gamma.json)")
	timeout := flag.Duration("timeout", 0, "abort the whole run after this long, e.g. 10m (0 = no deadline)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	blockProfile := flag.String("blockprofile", "", "write a goroutine blocking profile to this file at exit")
	mutexProfile := flag.String("mutexprofile", "", "write a mutex contention profile to this file at exit")
	flag.BoolVar(&benchShort, "short", false, "e16/e20/e22/e23/e24: restrict to the smallest workloads (CI smoke)")
	flag.BoolVar(&benchGuard, "guard", false, "e16: fail unless incremental wall < fullscan at n=10^4; e20: fail on parallel overhead collapse or matcher candidate pathology; e22: fail on matrix engine overhead collapse; e23: fail on trace-overhead ceilings (sampled-off >2%, sampled-on >10% of untraced p99); e24: fail if schedule recording costs >10%")
	baseline := flag.String("baseline", "", "compare this run's e16/e20 measurements against a prior BENCH_gamma.json and fail outside tolerance")
	benchTel.Register(flag.CommandLine)
	flag.Parse()
	spec := cli.ProfileSpec{CPU: *cpuProfile, Mem: *memProfile, Block: *blockProfile, Mutex: *mutexProfile}
	profStop, err := spec.Start()
	if err != nil {
		cli.Exit("gfbench", err)
	}
	defer profStop()
	if err := benchTel.Start(multiset.PrettyKey); err != nil {
		profStop()
		cli.Exit("gfbench", err)
	}
	ctx, stop := cli.Context(*timeout)
	defer stop()
	if *figures != "" {
		if err := writeFigures(*figures); err != nil {
			stop()
			profStop()
			cli.Exit("gfbench", err)
		}
		return
	}
	// -exp accepts a comma-separated list so one invocation can combine
	// measurements (e.g. -exp e16,e20 -bench-json records both engines' rows).
	wanted := map[string]bool{}
	for _, id := range strings.Split(*exp, ",") {
		wanted[strings.TrimSpace(id)] = true
	}
	ran := false
	for _, e := range experiments {
		if !wanted["all"] && !wanted[e.id] {
			continue
		}
		// Experiments are checkpointed between runs: an interrupt or an
		// expired -timeout stops before the next one starts.
		if cerr := ctx.Err(); cerr != nil {
			stop()
			profStop()
			cli.Exit("gfbench", rt.FromContext(cerr))
		}
		ran = true
		fmt.Printf("### %s — %s\n\n", e.id, e.desc)
		if err := e.run(); err != nil {
			fmt.Fprintf(os.Stderr, "gfbench: %s: %v\n", e.id, err)
			stop()
			profStop()
			os.Exit(cli.ExitCode(err))
		}
		fmt.Println()
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "gfbench: unknown experiment %q\n", *exp)
		os.Exit(cli.ExitUsage)
	}
	// The baseline check compares the fresh measurements against the old
	// snapshot, so it must run before -bench-json overwrites it.
	if *baseline != "" {
		if err := checkBaseline(*baseline); err != nil {
			stop()
			profStop()
			cli.Exit("gfbench", err)
		}
	}
	if *benchJSON != "" {
		if err := writeBenchJSON(*benchJSON); err != nil {
			stop()
			profStop()
			cli.Exit("gfbench", err)
		}
	}
	if err := benchTel.Finish(); err != nil {
		stop()
		profStop()
		cli.Exit("gfbench", err)
	}
}
