package main

// e24: executable schedules — record/replay cost and fidelity (DESIGN.md
// §16). Two claims are measured:
//
//  1. Overhead — attaching a schedule recorder to the hottest workload
//     (tournament n=10^4, the e16/e19 reference row) costs the per-firing
//     fingerprint appends plus the garbage collector's share of the retained
//     schedule. Each timed rep is a batch of back-to-back runs, because the
//     cost is GC work and GC amortizes across runs: timing a single short
//     run right after runtime.GC() turns the measurement into a coin flip on
//     whether the recorder's allocations cross the next GC trigger (one
//     cycle on an 8ms run reads as +60% while steady state is under 10%).
//     The recorded batch must stay within guardSchedulePct of the bare batch
//     (best interleaved rep); with -guard the ceiling gates make check-ci
//     and the overhead lands in BENCH_gamma.json as the trace_overhead_pct
//     of the "recorded" row.
//  2. Determinism — a parallel run's commit-order schedule, replayed
//     sequentially step for step, reproduces the parallel run's final
//     multiset and firing count exactly, across seeds. The replay is itself
//     timed: re-executing from a schedule skips matching entirely (the
//     schedule IS the matching oracle), so replay throughput bounds how
//     cheap divergence diagnosis is.

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/gamma"
	"repro/internal/metrics"
	"repro/internal/replay"
)

// guardSchedulePct is the e24 ceiling: the schedule recorder's wall-clock
// overhead on the reference workload, percent of the bare run.
const guardSchedulePct = 10.0

func expE24() error {
	n, stages, reps := 10000, 14, 5
	if benchShort {
		n, stages, reps = 2000, 11, 3
	}
	prog, init, err := benchTournament(n, stages)
	if err != nil {
		return err
	}

	// 1. Recorder overhead, e19-style interleaving over GC-amortizing
	// batches: warm both modes, interleave the timed reps with a GC reset in
	// front of each batch, keep the best — whole-machine drift then cannot
	// be charged to one mode. A fresh recorder per run inside the batch, as
	// a recording caller would hold one.
	const batch = 8
	run := func(record bool) (time.Duration, int64, error) {
		runtime.GC()
		var st *gamma.Stats
		var rerr error
		d := metrics.Time(func() {
			for i := 0; i < batch && rerr == nil; i++ {
				m := init.Clone()
				opt := gamma.Options{}
				if record {
					opt.Schedule = replay.NewRecorder(replay.KindGamma, "e24")
				}
				st, rerr = gamma.Run(prog, m, opt)
			}
		})
		if rerr != nil {
			return 0, 0, rerr
		}
		return d / batch, st.Steps, nil
	}
	var bares, recordeds []time.Duration
	var bare, recorded time.Duration
	var steps int64
	for rep := -1; rep < reps; rep++ {
		d, s, rerr := run(false)
		if rerr != nil {
			return rerr
		}
		if rep >= 0 {
			bares = append(bares, d)
		}
		if rep == 0 || (rep > 0 && d < bare) {
			bare = d
		}
		d, _, rerr = run(true)
		if rerr != nil {
			return rerr
		}
		if rep >= 0 {
			recordeds = append(recordeds, d)
		}
		if rep == 0 || (rep > 0 && d < recorded) {
			recorded = d
		}
		steps = s
	}
	// Guard on the paired minimum (see minPairedPct): a systematic recording
	// cost raises every rep, a one-off CFS stall on this one-core host only
	// raises one — the min is the noise-immune upper bound on the former.
	pct := minPairedPct(recordeds, bares)

	t := metrics.NewTable(fmt.Sprintf("schedule recording overhead (tournament n=%d, sequential engine, per-run over batches of %d)", n, batch),
		"mode", "steps", "time/run", "overhead")
	t.Row("bare", steps, bare, "baseline")
	t.Row("recorded", steps, recorded, fmt.Sprintf("%+.1f%%", pct))
	fmt.Print(t)
	benchRecords = append(benchRecords,
		benchRecord{Workload: "replay-sched", N: n, Engine: "bare", Steps: steps, WallNS: bare.Nanoseconds()},
		benchRecord{Workload: "replay-sched", N: n, Engine: "recorded", Steps: steps,
			WallNS: recorded.Nanoseconds(), TraceOverheadPct: pct})
	if benchGuard && pct > guardSchedulePct {
		return fmt.Errorf("e24 guard: schedule recording overhead %+.1f%% above the %.0f%% ceiling", pct, guardSchedulePct)
	}
	fmt.Println()

	// 2. Parallel record → sequential replay, across seeds: the linearized
	// commit order must re-execute to the identical stable state.
	dt := metrics.NewTable("parallel record -> sequential replay (workers=4)",
		"seed", "steps", "replay", "steps/s", "verdict")
	for seed := int64(1); seed <= 3; seed++ {
		rec := replay.NewRecorder(replay.KindGamma, "e24")
		m := init.Clone()
		st, err := gamma.Run(prog, m, gamma.Options{Workers: 4, Seed: seed, Schedule: rec})
		if err != nil {
			return err
		}
		sched := rec.Schedule()
		var res *replay.GammaResult
		var rerr error
		replayed := init.Clone()
		d := metrics.Time(func() {
			res, rerr = replay.ReplayGamma(prog, replayed, sched)
		})
		if rerr != nil {
			return rerr
		}
		if res.Divergence != nil {
			return fmt.Errorf("e24 seed %d: replay diverged: %v", seed, res.Divergence)
		}
		if !res.Stable || int64(res.Steps) != st.Steps || !res.Final.Equal(m) {
			return fmt.Errorf("e24 seed %d: replay steps=%d stable=%v vs run steps=%d; multisets equal=%v",
				seed, res.Steps, res.Stable, st.Steps, res.Final.Equal(m))
		}
		dt.Row(seed, res.Steps, fmtDur(d), fmt.Sprintf("%.0f", float64(res.Steps)/d.Seconds()), "identical")
	}
	fmt.Print(dt)
	fmt.Println("claim: a parallel Gamma run is one linearization of the firing history (§III-C);")
	fmt.Println("       its commit-order schedule replays sequentially to the same stable state,")
	fmt.Println("       and recording it costs a bounded slice of the run")
	return nil
}
