package main

import "testing"

// TestFastExperiments executes the cheap experiment drivers end to end; the
// timing-heavy ones (e12, e13) run only outside -short.
func TestFastExperiments(t *testing.T) {
	fast := map[string]func() error{
		"e1": expE1, "e3": expE3, "e4": expE4, "e5": expE5,
		"e7": expE7, "e8": expE8, "e9": expE9, "e11": expE11, "e15": expE15,
	}
	for id, fn := range fast {
		if err := fn(); err != nil {
			t.Errorf("%s: %v", id, err)
		}
	}
}

func TestSlowExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiments")
	}
	for id, fn := range map[string]func() error{"e12": expE12, "e13": expE13, "e14": expE14, "e16": expE16} {
		if err := fn(); err != nil {
			t.Errorf("%s: %v", id, err)
		}
	}
}
