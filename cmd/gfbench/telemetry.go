package main

// e19: the telemetry layer itself (DESIGN.md §11). Two claims are measured:
//
//  1. Overhead — the recorder's cost on the hottest workload (tournament
//     n=10^4, the e16 reference row): disabled (nil recorder, one branch per
//     record site), metrics-only (atomic counters, no event buffers) and the
//     full recorder (per-worker event rings). The disabled mode must be free;
//     the full recorder is the trace_overhead_pct column of BENCH_gamma.json.
//  2. Fidelity — a traced Fig. 1 run's registry counters agree exactly with
//     gamma.Stats (the same cross-check the differential tests automate), and
//     its provenance DAG has the firing structure of the paper's dataflow
//     graph: 3 firings (R1, R2, R3), 4 initial elements, 1 output.

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/gamma"
	"repro/internal/gammalang"
	"repro/internal/metrics"
	"repro/internal/multiset"
	"repro/internal/paper"
	"repro/internal/telemetry"
	"repro/internal/value"
)

// benchTournament builds the e16/e19 reference workload: the staged pairwise
// min tournament at n elements.
func benchTournament(n, stages int) (*gamma.Program, *multiset.Multiset, error) {
	prog, err := gammalang.ParseProgram("tournament", tournamentSource(stages))
	if err != nil {
		return nil, nil, err
	}
	m := multiset.New()
	for i := 0; i < n; i++ {
		m.Add(multiset.Pair(value.Int(int64((i*2654435761+17)%(4*n))), "L0"))
	}
	return prog, m, nil
}

// traceOverhead measures the recorder's wall-clock cost on prog/init under
// opt: the best-of-reps traced run against the best-of-reps untraced run, in
// percent. Recorders are created outside the timed region (construction is
// setup, not per-run cost) and fresh per rep so ring reuse cannot flatter the
// result.
func traceOverhead(prog *gamma.Program, init *multiset.Multiset, opt gamma.Options, reps int) (base, traced time.Duration, pct float64, err error) {
	run := func(rec *telemetry.Recorder) (time.Duration, error) {
		var rerr error
		runtime.GC()
		ropt := opt
		ropt.Recorder = rec
		var m *multiset.Multiset
		d := metrics.Time(func() {
			m = init.Clone()
			_, rerr = gamma.Run(prog, m, ropt)
		})
		return d, rerr
	}
	// Warm both configurations before timing either; the timed reps then
	// interleave the two so whole-machine drift cancels.
	if _, err = run(nil); err != nil {
		return 0, 0, 0, err
	}
	if _, err = run(telemetry.New(0)); err != nil {
		return 0, 0, 0, err
	}
	for rep := 0; rep < reps; rep++ {
		d, rerr := run(nil)
		if rerr != nil {
			return 0, 0, 0, rerr
		}
		if rep == 0 || d < base {
			base = d
		}
		d, rerr = run(telemetry.New(0))
		if rerr != nil {
			return 0, 0, 0, rerr
		}
		if rep == 0 || d < traced {
			traced = d
		}
	}
	pct = 100 * (float64(traced-base) / float64(base))
	return base, traced, pct, nil
}

func expE19() error {
	prog, init, err := benchTournament(10000, 14)
	if err != nil {
		return err
	}

	t := metrics.NewTable("telemetry recorder overhead (tournament n=10^4, sequential incremental engine)",
		"mode", "steps", "time", "overhead")
	modes := []struct {
		name string
		rec  func() *telemetry.Recorder
	}{
		{"disabled", func() *telemetry.Recorder { return nil }},
		{"metrics-only", func() *telemetry.Recorder { return telemetry.New(-1) }},
		{"recorder", func() *telemetry.Recorder { return telemetry.New(0) }},
	}
	// Warm every mode before timing any, then interleave the timed reps (a
	// GC reset in front of each) and keep the best: sequential per-mode
	// blocks would charge whole-machine drift — frequency scaling, heap goal
	// ratchet — to whichever mode ran in the bad window.
	steps := make([]int64, len(modes))
	best := make([]time.Duration, len(modes))
	for rep := -1; rep < 5; rep++ {
		for mi, mode := range modes {
			runtime.GC()
			var st *gamma.Stats
			var rerr error
			d := metrics.Time(func() {
				m := init.Clone()
				st, rerr = gamma.Run(prog, m, gamma.Options{Recorder: mode.rec()})
			})
			if rerr != nil {
				return rerr
			}
			steps[mi] = st.Steps
			if rep >= 0 && (rep == 0 || d < best[mi]) {
				best[mi] = d
			}
		}
	}
	for mi, mode := range modes {
		over := "baseline"
		if mi > 0 {
			over = fmt.Sprintf("%+.1f%%", 100*float64(best[mi]-best[0])/float64(best[0]))
		}
		t.Row(mode.name, steps[mi], best[mi], over)
	}
	fmt.Print(t)
	fmt.Println()

	// Fidelity: trace the paper's Fig. 1 program and cross-check the registry
	// against gamma.Stats, and the provenance DAG against the figure. When the
	// gfbench -trace/-metrics flags are set, this is the run they export.
	ex1, err := gammalang.ParseProgram("fig1", paper.Example1GammaListing)
	if err != nil {
		return err
	}
	m, err := multiset.Parse(paper.Example1InitialMultiset)
	if err != nil {
		return err
	}
	rec := benchTel.Recorder()
	prov := benchTel.Provenance()
	if rec == nil {
		rec = telemetry.New(0)
	}
	if prov == nil {
		prov = telemetry.NewProvenance()
		prov.Labeler = multiset.PrettyKey
	}
	st, err := gamma.Run(ex1, m, gamma.Options{Recorder: rec, Tracer: prov})
	if err != nil {
		return err
	}
	for name, want := range map[string]int64{
		"gamma.steps":  st.Steps,
		"gamma.probes": st.Probes,
	} {
		if got := rec.Metrics.CounterValue(name); got != want {
			return fmt.Errorf("e19: counter %s = %d, stats say %d", name, got, want)
		}
	}
	events := 0
	for _, tr := range rec.Snapshot() {
		events += len(tr.Events)
	}
	fmt.Printf("fig1 traced: steps=%d probes=%d events=%d firings-in-DAG=%d result=%s\n",
		st.Steps, st.Probes, events, prov.Firings(), m)
	if st.Steps != 3 || prov.Firings() != 3 {
		return fmt.Errorf("e19: Fig. 1 should fire exactly R1, R2, R3 (3 firings), got %d", prov.Firings())
	}
	fmt.Println("claim: a traced Gamma run IS the paper's dataflow graph (§III-C);")
	fmt.Println("       `gammarun -trace f.dot -trace-format dot` renders Fig. 1's DAG from Fig. 1's program")
	return nil
}
