package main

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/dfir"
	"repro/internal/gammalang"
	"repro/internal/paper"
)

// writeFigures regenerates the paper's figures as files: Graphviz DOT with
// the paper's shape conventions, the dfir text form, and the Gamma listings
// Algorithm 1 derives from them.
func writeFigures(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	graphs := map[string]*dataflow.Graph{
		"fig1":            paper.Fig1Graph(),
		"fig2":            paper.Fig2Graph(),
		"fig2-observable": paper.Fig2GraphObservable(10, 4, 3),
	}
	write := func(name, content string) error {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			return err
		}
		fmt.Println("wrote", path)
		return nil
	}
	for name, g := range graphs {
		if err := write(name+".dot", dfir.ToDOT(g)); err != nil {
			return err
		}
		if err := write(name+".dfir", dfir.Marshal(g)); err != nil {
			return err
		}
		prog, init, err := core.ToGamma(g)
		if err != nil {
			return err
		}
		if err := write(name+".gamma", gammalang.FormatFile(gammalang.NewFile(prog, init))); err != nil {
			return err
		}
	}
	// Fig. 4: the single reaction's subgraph, which the mapper replicates.
	r, err := gammalang.ParseReaction(`R = replace [x, 'a'], [y, 'a'] by [x + y, 'b']`)
	if err != nil {
		return err
	}
	sub, err := core.ReactionToGraph(r)
	if err != nil {
		return err
	}
	if err := write("fig4-reaction.dot", dfir.ToDOT(sub)); err != nil {
		return err
	}
	return write("fig4-reaction.dfir", dfir.Marshal(sub))
}
