package main

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/dataflow"
	"repro/internal/dist"
	"repro/internal/equiv"
	"repro/internal/gamma"
	"repro/internal/gammalang"
	"repro/internal/metrics"
	"repro/internal/multiset"
	"repro/internal/paper"
	"repro/internal/rt"
	"repro/internal/value"
)

// expE17 exercises the cancellation and fault model (DESIGN.md §9) as a
// matrix of scenarios: each row injects one failure mode into one runtime and
// checks that the run stops with the right error class, returns partial
// statistics, and never wedges a worker pool. The scenarios mirror the
// guarantees the library documents rather than timing-sensitive behavior, so
// the table is reproducible.
func expE17() error {
	prog, err := gammalang.ParseProgram("min", paper.MinElementListing)
	if err != nil {
		return err
	}
	minInit := func(n int) *multiset.Multiset {
		m := multiset.New()
		for i := 0; i < n; i++ {
			m.Add(multiset.New1(value.Int(int64((i*37 + 5) % 500))))
		}
		return m
	}

	t := metrics.NewTable("fault-injection matrix: every failure mode stops cleanly",
		"runtime", "fault", "error class", "partial stats", "verdict")
	fail := 0
	row := func(runtime, fault, class string, partial, ok bool) {
		verdict := "ok"
		if !ok {
			verdict = "FAIL"
			fail++
		}
		t.Row(runtime, fault, class, partial, verdict)
	}

	// Gamma, parallel: injected error aborts the run with partial stats.
	boom := errors.New("injected fault")
	st, err := gamma.Run(prog, minInit(64), gamma.Options{
		Workers:       4,
		FaultInjector: func(site string, worker int) error { return boom },
	})
	row("gamma par", "injected error", "passthrough", st != nil,
		errors.Is(err, boom) && st != nil)

	// Gamma, parallel: injected panic is recovered into *rt.PanicError with
	// the reaction and worker identity, and the pool shuts down.
	var pe *rt.PanicError
	st, err = gamma.Run(prog, minInit(64), gamma.Options{
		Workers:       4,
		FaultInjector: func(site string, worker int) error { panic("injected panic") },
	})
	row("gamma par", "injected panic", "*rt.PanicError", st != nil,
		errors.As(err, &pe) && pe.Runtime == "gamma" && pe.Site != "" && st != nil)

	// Gamma, sequential: same recovery guarantee without the pool.
	st, err = gamma.Run(prog, minInit(64), gamma.Options{
		FaultInjector: func(site string, worker int) error { panic("injected panic") },
	})
	row("gamma seq", "injected panic", "*rt.PanicError", st != nil,
		errors.As(err, &pe) && st != nil)

	// Gamma, parallel: expired deadline classifies as ErrDeadline (and as
	// context.DeadlineExceeded) with partial stats.
	dctx, dcancel := context.WithTimeout(context.Background(), time.Nanosecond)
	st, err = gamma.RunContext(dctx, prog, minInit(64), gamma.Options{Workers: 4})
	dcancel()
	row("gamma par", "expired deadline", "rt.ErrDeadline", st != nil,
		errors.Is(err, rt.ErrDeadline) && errors.Is(err, context.DeadlineExceeded) && st != nil)

	// Dataflow, parallel: injected panic on a vertex is recovered into
	// *rt.PanicError with the vertex and PE identity.
	g := equiv.RandomGraph(17, 4, 24)
	res, err := dataflow.Run(g, dataflow.Options{
		Workers:       4,
		FaultInjector: func(site string, pe int) error { panic("injected panic") },
	})
	row("dataflow par", "injected panic", "*rt.PanicError", res != nil,
		errors.As(err, &pe) && pe.Runtime == "dataflow" && res != nil)

	// Dataflow, parallel: canceled context stops the PEs promptly.
	cctx, ccancel := context.WithCancel(context.Background())
	ccancel()
	res, err = dataflow.RunContext(cctx, g, dataflow.Options{Workers: 4})
	row("dataflow par", "canceled context", "rt.ErrCanceled", res != nil,
		errors.Is(err, rt.ErrCanceled) && res != nil)

	// Dist: a node that always faults is declared dead after its retry
	// budget; the survivors adopt its shard and still reach the right stable
	// state (degraded mode).
	c, err := dist.NewCluster(prog, dist.Options{
		Nodes: 4, Seed: 7,
		FaultInjector: func(node, round int) error {
			if node == 0 {
				return errors.New("node 0 unplugged")
			}
			return nil
		},
	})
	if err != nil {
		return err
	}
	result, dstats, err := c.Run(minInit(128))
	degradedOK := err == nil && dstats.Degraded &&
		len(dstats.DeadNodes) == 1 && dstats.DeadNodes[0] == 0 &&
		result != nil && result.Len() == 1
	row("dist 4 nodes", "node 0 dead", "degraded, no error", dstats != nil, degradedOK)

	// Dist: when every node faults, the run surfaces the *rt.NodeError.
	c, err = dist.NewCluster(prog, dist.Options{
		Nodes: 2, Seed: 7,
		FaultInjector: func(node, round int) error { return errors.New("site power loss") },
	})
	if err != nil {
		return err
	}
	var ne *rt.NodeError
	_, dstats, err = c.Run(minInit(16))
	row("dist 2 nodes", "all nodes dead", "*rt.NodeError", dstats != nil,
		errors.As(err, &ne) && dstats != nil)

	fmt.Print(t)
	fmt.Println("every failure mode returns a classified error plus partial statistics;")
	fmt.Println("a dead node degrades the cluster instead of failing it (DESIGN.md §9)")
	if fail > 0 {
		return fmt.Errorf("e17: %d scenario(s) failed", fail)
	}
	return nil
}
