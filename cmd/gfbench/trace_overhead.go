package main

// e23: run-scoped tracing overhead at the service boundary (DESIGN.md §15).
// The same closed-loop generator as e21 drives three gammad configurations
// A/B/A: untraced requests (the baseline), requests that ask for a trace on a
// server whose sampler is off (the cost of the knob alone — one atomic and a
// branch at admission), and requests that ask for a trace on a server that
// samples everything (recorder rings + firing provenance + terminal-run
// retention). Rounds interleave the three modes in rotating order, so
// whole-machine drift — the host is one shared core — charges no single mode;
// overhead is the best paired round (minPairedPct), the e19 best-vs-best
// methodology lifted to the HTTP path.
//
// With -guard the experiment gates make check-ci: sampled-off wall and p99
// must sit within 2% of the untraced baseline in at least one round, sampled-on
// within 10%. A fidelity check then confirms a sampled run's wire Stats report
// firings == steps — the paper's firing-history equivalence (§III-C) surviving
// the wire.

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"sort"
	"time"

	"repro/client"
	"repro/internal/gamma"
	"repro/internal/gammalang"
	"repro/internal/metrics"
	"repro/internal/multiset"
	"repro/internal/paper"
	"repro/internal/schema"
	"repro/internal/service"
)

// e23 guard ceilings: the knob alone must be free (within noise), the full
// recorder bounded. Percentages of the untraced baseline p99.
const (
	guardTraceOffPct = 2.0
	guardTraceOnPct  = 10.0
)

// traceMode is one e23 configuration: a dedicated in-process gammad (so the
// retained rings of one mode cannot bloat another's run table) plus the
// request shape driven at it.
type traceMode struct {
	name   string
	cfg    service.Config
	traced bool

	c     *client.Client
	close func()

	wall  time.Duration   // total timed wall across rounds
	lats  []time.Duration // pooled per-request latencies across rounds
	walls []time.Duration // per-round wall times, index = round
	p99s  []time.Duration // per-round p99, index = round
}

// bootTraceService starts mode's server on a loopback listener and wires its
// typed client.
func bootTraceService(m *traceMode) error {
	srv := service.New(m.cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		return err
	}
	hsrv := &http.Server{Handler: srv.Handler()}
	go hsrv.Serve(ln) //nolint:errcheck // torn down with the listener
	m.c = client.New("http://" + ln.Addr().String())
	m.close = func() { hsrv.Close(); srv.Close() }
	return nil
}

// traceRound drives one timed closed-loop round of requests against one mode
// and pools the wall time and per-request latencies into it.
func traceRound(m *traceMode, requests, clients int, oracle string, timed bool) error {
	req := client.NewGammaRequest(paper.Example1GammaListing, paper.Example1InitialMultiset,
		client.RunSpec{Engine: schema.EngineSeq, MaxSteps: 10000, Trace: m.traced})
	start := time.Now()
	lats, err := closedLoop(m.c, req, requests, clients, oracle)
	wall := time.Since(start)
	if err != nil {
		return fmt.Errorf("e23 %s: %w", m.name, err)
	}
	if timed {
		m.wall += wall
		m.walls = append(m.walls, wall)
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		m.p99s = append(m.p99s, quantile(lats, 0.99))
		m.lats = append(m.lats, lats...)
	}
	return nil
}

// minPairedPct is the guard statistic: the minimum over rounds of the
// mode-vs-baseline ratio for the same round, as an overhead percentage. The
// modes of one round run back to back, so pairing shares most of the round's
// machine state; taking the minimum asks "was there any round where the mode
// kept up?" — immune to one-off scheduler stalls (the p99 of a round on this
// one-core host is the CFS quantum, not the recorder), while a systematic
// per-request cost raises every round and cannot hide.
func minPairedPct(mode, base []time.Duration) float64 {
	best := 0.0
	for r := range mode {
		pct := 100 * (float64(mode[r])/float64(base[r]) - 1)
		if r == 0 || pct < best {
			best = pct
		}
	}
	return best
}

// quantile reads the q-th latency quantile off a sorted pool.
func quantile(sorted []time.Duration, q float64) time.Duration {
	return sorted[int(float64(len(sorted))*q)]
}

// closedLoop is e21's generator in miniature: `clients` goroutines each burn
// requests/clients synchronous runs back to back, every response checked
// against the oracle multiset.
func closedLoop(c *client.Client, req client.RunRequest, requests, clients int, oracle string) ([]time.Duration, error) {
	perClient := requests / clients
	type result struct {
		lats []time.Duration
		err  error
	}
	results := make(chan result, clients)
	for ci := 0; ci < clients; ci++ {
		go func(ci int) {
			lats := make([]time.Duration, 0, perClient)
			for i := 0; i < perClient; i++ {
				t0 := time.Now()
				resp, err := c.Run(context.Background(), req)
				lats = append(lats, time.Since(t0))
				if err == nil && (resp.State != schema.StateDone || resp.Result.Multiset != oracle) {
					err = fmt.Errorf("response diverged from oracle: state %s, multiset %q, want %q",
						resp.State, resp.Result.Multiset, oracle)
				}
				if err != nil {
					results <- result{nil, fmt.Errorf("client %d request %d: %w", ci, i, err)}
					return
				}
			}
			results <- result{lats, nil}
		}(ci)
	}
	var all []time.Duration
	for ci := 0; ci < clients; ci++ {
		r := <-results
		if r.err != nil {
			return nil, r.err
		}
		all = append(all, r.lats...)
	}
	return all, nil
}

func expE23() error {
	// Each round is ~100ms of wall, so many interleaved rounds are cheap; the
	// per-mode best p99 is then a clean-window estimate on a host whose tail
	// is all scheduler stalls. Two clients keep the queue shallow — overhead
	// is a per-request cost, not a saturation property.
	requests, clients, rounds := 300, 2, 12
	if benchShort {
		requests, rounds = 150, 10
	}

	modes := []*traceMode{
		{name: "untraced", traced: false,
			cfg: service.Config{Pool: 4, QueueDepth: 256}},
		{name: "sampled-off", traced: true,
			cfg: service.Config{Pool: 4, QueueDepth: 256, TraceSample: -1}},
		{name: "sampled-on", traced: true,
			cfg: service.Config{Pool: 4, QueueDepth: 256, TraceSample: 1}},
	}
	for _, m := range modes {
		if err := bootTraceService(m); err != nil {
			return err
		}
		defer m.close()
	}

	oracle, steps, err := example1Oracle()
	if err != nil {
		return err
	}

	// Warm every mode (connection pools, JIT-ish first-request costs) before
	// timing any, then pool latencies across rounds. With rounds × requests
	// samples per mode, the pooled p99 sits inside the stall population that
	// rotation spreads evenly over the modes — per-round p99 (2nd-worst of a
	// 150-sample round) would be a coin flip on this host.
	for _, m := range modes {
		if err := traceRound(m, clients*4, clients, oracle, false); err != nil {
			return err
		}
	}
	for round := 0; round < rounds; round++ {
		// Rotate the order every round: whichever mode runs first eats the
		// round-start turbulence (GC from the previous round, scheduler
		// migration), so a fixed order would charge it to one mode.
		for mi := range modes {
			m := modes[(round+mi)%len(modes)]
			runtime.GC()
			if err := traceRound(m, requests, clients, oracle, true); err != nil {
				return err
			}
		}
	}

	t := metrics.NewTable("service trace overhead, traced vs untraced closed-loop load (e23)",
		"mode", "requests", "clients", "p50", "p99", "ovh(wall)", "ovh(p99)")
	for _, m := range modes {
		sort.Slice(m.lats, func(i, j int) bool { return m.lats[i] < m.lats[j] })
	}
	for _, m := range modes {
		p50, p99 := quantile(m.lats, 0.50), quantile(m.lats, 0.99)
		wallPct := minPairedPct(m.walls, modes[0].walls)
		p99Pct := minPairedPct(m.p99s, modes[0].p99s)
		overWall, overP99 := "baseline", ""
		rec := benchRecord{
			Workload: "service-trace", N: 4, Engine: m.name,
			Workers: clients, Steps: steps,
			WallNS: m.wall.Nanoseconds(),
			RPS:    float64(len(m.lats)) / m.wall.Seconds(),
			P50NS:  p50.Nanoseconds(), P99NS: p99.Nanoseconds(),
		}
		if m != modes[0] {
			overWall = fmt.Sprintf("%+.1f%%", wallPct)
			overP99 = fmt.Sprintf("%+.1f%%", p99Pct)
			rec.TraceOverheadPct = wallPct
		}
		t.Row(m.name, len(m.lats), clients, fmtDur(p50), fmtDur(p99), overWall, overP99)
		benchRecords = append(benchRecords, rec)
		ceiling := 0.0
		switch m.name {
		case "sampled-off":
			ceiling = guardTraceOffPct
		case "sampled-on":
			ceiling = guardTraceOnPct
		}
		if benchGuard && ceiling > 0 && (wallPct > ceiling || p99Pct > ceiling) {
			return fmt.Errorf("e23 guard: %s overhead wall %+.1f%% / p99 %+.1f%% above the %.0f%% ceiling in every round",
				m.name, wallPct, p99Pct, ceiling)
		}
	}
	fmt.Print(t)

	// Fidelity: one sampled run fetched back over the wire must report
	// firings == steps — the trace the service retained IS the firing history
	// the equivalence argument is about.
	on := modes[2]
	resp, err := on.c.Run(context.Background(), client.NewGammaRequest(
		paper.Example1GammaListing, paper.Example1InitialMultiset,
		client.RunSpec{Engine: schema.EngineSeq, MaxSteps: 10000, Trace: true}))
	if err != nil {
		return err
	}
	st, err := on.c.Stats(context.Background(), resp.ID)
	if err != nil {
		return err
	}
	if !st.Traced || st.Firings != st.Steps || st.Steps != steps {
		return fmt.Errorf("e23: traced run stats = %+v, want firings == steps == %d", st, steps)
	}
	trace, err := on.c.Trace(context.Background(), resp.ID, client.TraceJSONL)
	if err != nil || len(trace) == 0 {
		return fmt.Errorf("e23: trace fetch = %d bytes, %v", len(trace), err)
	}
	fmt.Printf("fidelity: traced run %s reports firings=%d == steps=%d; jsonl trace %d bytes\n",
		resp.ID, st.Firings, st.Steps, len(trace))
	fmt.Println("claim: asking for a trace costs nothing until the sampler says yes, and a sampled")
	fmt.Println("       run's retained trace is the §III-C firing history, queryable per tenant")
	return nil
}

// example1Oracle runs Fig. 1 in-process and returns the stable state every
// service response must reproduce, plus its step count.
func example1Oracle() (string, int64, error) {
	prog, err := gammalang.ParseProgram("fig1", paper.Example1GammaListing)
	if err != nil {
		return "", 0, err
	}
	m, err := multiset.Parse(paper.Example1InitialMultiset)
	if err != nil {
		return "", 0, err
	}
	st, err := gamma.Run(prog, m, gamma.Options{MaxSteps: 10000})
	if err != nil {
		return "", 0, err
	}
	return m.String(), st.Steps, nil
}
