package main

// e21: gammad under load. A closed-loop generator drives an in-process
// service (the same internal/service.Server cmd/gammad serves) through real
// HTTP with the typed client package: C concurrent clients each submit
// synchronous runs back to back until the request budget is spent. Every
// response is differentially checked against the in-process oracle — under
// concurrency, a wrong multiset is the signature of cross-run state leakage
// — and the row records sustained throughput (rps) and latency quantiles
// (p50/p99) into BENCH_gamma.json.
//
// With -guard the experiment turns into the CI gate of make check-ci: it
// fails if the service mangles any response or if p99 blows past a generous
// bounded-overhead ceiling (the host is a single shared core, so the gate is
// about gross collapse, not about absolute speed).

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/client"
	"repro/internal/gamma"
	"repro/internal/gammalang"
	"repro/internal/metrics"
	"repro/internal/multiset"
	"repro/internal/paper"
	"repro/internal/schema"
	"repro/internal/service"
	"repro/internal/value"
)

// guardServiceP99 is the -guard ceiling on e21's p99 request latency. Very
// generous: Example 1 completes in microseconds in-process, so hundreds of
// milliseconds through the local HTTP stack only happen when the pool or the
// scheduler has collapsed.
const guardServiceP99 = 2 * time.Second

// serviceWorkload is one e21 load shape.
type serviceWorkload struct {
	name     string
	program  string
	init     string
	n        int // initial multiset size (table column)
	requests int
	clients  int
	spec     client.RunSpec
}

func expE21() error {
	t := metrics.NewTable("gammad service under closed-loop load (e21)",
		"workload", "n", "clients", "requests", "rps", "p50", "p99", "steps")

	// The heavy row amortizes the HTTP round trip over a real reduction: a
	// 256-element tournament is 255 firings per request.
	tn := 256
	tm := multiset.New()
	for i := 0; i < tn; i++ {
		tm.Add(multiset.Pair(value.Int(int64((i*2654435761+17)%(4*tn))), "L0"))
	}
	ws := []serviceWorkload{
		{"service-example1", paper.Example1GammaListing, paper.Example1InitialMultiset,
			4, 400, 8, client.RunSpec{MaxSteps: 10000}},
		{"service-tournament", tournamentSource(8), tm.String(),
			tn, 60, 4, client.RunSpec{MaxSteps: 100000}},
	}
	if benchShort {
		ws[0].requests, ws[0].clients = 150, 4
		ws = ws[:1]
	}

	srv := service.New(service.Config{Pool: 4, QueueDepth: 256})
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hsrv := &http.Server{Handler: srv.Handler()}
	go hsrv.Serve(ln) //nolint:errcheck // torn down with the listener
	defer hsrv.Close()
	c := client.New("http://" + ln.Addr().String())

	for _, w := range ws {
		// In-process oracle: the stable state every response must reproduce.
		prog, err := gammalang.ParseProgram(w.name, w.program)
		if err != nil {
			return err
		}
		om, err := multiset.Parse(w.init)
		if err != nil {
			return err
		}
		ost, err := gamma.Run(prog, om, gamma.Options{MaxSteps: w.spec.MaxSteps})
		if err != nil {
			return err
		}
		oracle := om.String()

		req := client.NewGammaRequest(w.program, w.init, w.spec)
		latencies := make([][]time.Duration, w.clients)
		perClient := w.requests / w.clients
		var wg sync.WaitGroup
		var firstErr error
		var errMu sync.Mutex
		start := time.Now()
		for ci := 0; ci < w.clients; ci++ {
			wg.Add(1)
			go func(ci int) {
				defer wg.Done()
				lats := make([]time.Duration, 0, perClient)
				for i := 0; i < perClient; i++ {
					t0 := time.Now()
					resp, err := c.Run(context.Background(), req)
					lats = append(lats, time.Since(t0))
					if err == nil && (resp.State != schema.StateDone || resp.Result.Multiset != oracle) {
						err = fmt.Errorf("response diverged from oracle: state %s, multiset %q, want %q",
							resp.State, resp.Result.Multiset, oracle)
					}
					if err != nil {
						errMu.Lock()
						if firstErr == nil {
							firstErr = fmt.Errorf("e21 %s client %d request %d: %w", w.name, ci, i, err)
						}
						errMu.Unlock()
						return
					}
				}
				latencies[ci] = lats
			}(ci)
		}
		wg.Wait()
		wall := time.Since(start)
		if firstErr != nil {
			return firstErr
		}

		var all []time.Duration
		for _, lats := range latencies {
			all = append(all, lats...)
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		total := len(all)
		p50 := all[total/2]
		p99 := all[total*99/100]
		rps := float64(total) / wall.Seconds()
		// Steps is per-request (deterministic), so baseline matching by
		// (workload, n, engine) compares like with like across runs.
		t.Row(w.name, w.n, w.clients, total, fmt.Sprintf("%.0f", rps),
			fmtDur(p50), fmtDur(p99), ost.Steps)
		benchRecords = append(benchRecords, benchRecord{
			Workload: w.name, N: w.n, Engine: "service",
			Workers: w.clients, Steps: ost.Steps,
			WallNS: wall.Nanoseconds(), RPS: rps,
			P50NS: p50.Nanoseconds(), P99NS: p99.Nanoseconds(),
		})
		if benchGuard && p99 > guardServiceP99 {
			return fmt.Errorf("e21 guard: %s p99 %s above the %s collapse ceiling",
				w.name, p99, guardServiceP99)
		}
	}
	fmt.Print(t)
	fmt.Println("claim: the stable state under Eq. 1 is a service response — hundreds of concurrent")
	fmt.Println("       tenants multiplex over one bounded pool with no cross-run leakage")
	return nil
}

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.0fµs", float64(d.Nanoseconds())/1e3)
	}
}
