package main

// e20: workers × n scalability of the work-stealing parallel runtime
// (internal/gamma run.go): per-worker deques with Chase-Lev stealing,
// multi-firing ApplyDeltas batch commits, and per-worker arenas, measured
// against the single-worker engine on the EXPERIMENTS.md E20 protocol.
//
// The workers=1 rows are the reference: Options.Workers=1 selects the
// deterministic sequential interpreter, so the speedup column reads
// "parallel wall / sequential wall" directly. Correctness cross-checks per
// row: the step count must equal the reference (both workloads fire a
// count-determined number of steps regardless of scheduling), and the min
// workload must reach the exact reference stable state (its stable state is
// schedule-independent; the tournament's leftover elements are not, so only
// its cardinality is pinned).
//
// With -guard the experiment enforces a bounded-overhead gate rather than a
// speedup gate: wall(8 workers) must stay within e20GuardFactor of wall(1).
// A speedup assertion would encode the machine into the repo — on a
// single-core host (GOMAXPROCS=1) any parallel speedup is physically
// impossible and the honest requirement is that the scheduler does not
// collapse; EXPERIMENTS.md E20 records the interpretation.

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"repro/internal/gamma"
	"repro/internal/gammalang"
	"repro/internal/metrics"
	"repro/internal/multiset"
	"repro/internal/paper"
	"repro/internal/value"
)

// e20GuardFactor bounds how much slower the 8-worker run may be than the
// 1-worker run before -guard fails the build. Generous because CI hosts are
// noisy and may schedule all workers on one core.
const e20GuardFactor = 3.0

func expE20() error {
	t := metrics.NewTable("work-stealing parallel runtime: workers × n (incremental engine)",
		"workload", "n", "workers", "steps", "batches", "steals", "conflicts", "time", "speedup", "allocs/step")

	type workload struct {
		name string
		prog *gamma.Program
		init *multiset.Multiset
		n    int
	}
	var ws []workload

	tournament := func(n, stages int) (workload, error) {
		prog, err := gammalang.ParseProgram("tournament", tournamentSource(stages))
		if err != nil {
			return workload{}, err
		}
		m := multiset.New()
		for i := 0; i < n; i++ {
			m.Add(multiset.Pair(value.Int(int64((i*2654435761+17)%(4*n))), "L0"))
		}
		return workload{"tournament", prog, m, n}, nil
	}
	if benchShort {
		w, err := tournament(100000, 17)
		if err != nil {
			return err
		}
		ws = append(ws, w)
	} else {
		for _, cfg := range []struct{ n, stages int }{{100000, 17}, {1000000, 20}} {
			w, err := tournament(cfg.n, cfg.stages)
			if err != nil {
				return err
			}
			ws = append(ws, w)
		}
		min, err := gammalang.ParseProgram("min", paper.MinElementListing)
		if err != nil {
			return err
		}
		// min stays at n=10^5: the *sequential* reference is the limit, not
		// the parallel engine. The deterministic matcher binds x to the
		// first candidate in shard-iteration order, and when that entry is
		// numerically large the y-scan rescans a growing prefix every probe
		// — whether a given (n, values) layout hits the bad case is a
		// lottery over the key-hash shard routing, and at n=10^6 the bad
		// case runs for minutes (ROADMAP item 2 follow-up c). The parallel
		// engine's rng-rotated enumeration has no preferred first candidate
		// and handles min at 10^6+ without issue, but its speedup column
		// needs the sequential wall to be meaningful. This n and value set
		// are verified to sit in the sane regime.
		ints := multiset.New()
		for i := 0; i < 100000; i++ {
			ints.Add(multiset.New1(value.Int(int64((i*2654435761 + 17) % 400000))))
		}
		ws = append(ws, workload{"min", min, ints, 100000})
	}

	workerCounts := []int{1, 2, 4, 8}
	if benchShort {
		workerCounts = []int{1, 8}
	}
	for _, w := range ws {
		var refStable *multiset.Multiset
		var refSteps int64
		var baseWall, wall8 time.Duration
		for _, workers := range workerCounts {
			// Workers=1 runs the deterministic sequential interpreter with
			// Seed 0: a non-zero seed would switch it to the randomized
			// snapshot+shuffle candidate order, which is O(candidates) per
			// probe — quadratic on these workloads and not the engine the
			// speedup column should be measured against.
			opts := gamma.Options{Workers: workers}
			if workers > 1 {
				opts.Seed = 1
			}
			run := func(m *multiset.Multiset) *gamma.Stats {
				st, err := gamma.Run(w.prog, m, opts)
				if err != nil {
					panic(fmt.Sprintf("e20: %s n=%d workers=%d: %v", w.name, w.n, workers, err))
				}
				return st
			}
			run(w.init.Clone()) // warm (kernels, pools, heap goal)
			var best time.Duration
			var st *gamma.Stats
			var m *multiset.Multiset
			for rep := 0; rep < 2; rep++ {
				runtime.GC()
				var d time.Duration
				d = metrics.Time(func() {
					m = w.init.Clone()
					st = run(m)
				})
				if rep == 0 || d < best {
					best = d
				}
			}
			// Allocation cost on a separate run, clone outside the window.
			ma := w.init.Clone()
			var ms0, ms1 runtime.MemStats
			runtime.ReadMemStats(&ms0)
			sta := run(ma)
			runtime.ReadMemStats(&ms1)
			allocsPerStep := float64(ms1.Mallocs-ms0.Mallocs) / float64(max64(sta.Steps, 1))
			bytesPerStep := float64(ms1.TotalAlloc-ms0.TotalAlloc) / float64(max64(sta.Steps, 1))

			if workers == 1 {
				refStable, refSteps, baseWall = m, st.Steps, best
			} else {
				if st.Steps != refSteps {
					return fmt.Errorf("e20: %s n=%d workers=%d: steps %d, sequential fired %d",
						w.name, w.n, workers, st.Steps, refSteps)
				}
				if w.name == "min" && !m.Equal(refStable) {
					return fmt.Errorf("e20: %s n=%d workers=%d: stable state diverged from sequential", w.name, w.n, workers)
				}
				if m.Len() != refStable.Len() {
					return fmt.Errorf("e20: %s n=%d workers=%d: cardinality %d, sequential %d",
						w.name, w.n, workers, m.Len(), refStable.Len())
				}
			}
			if workers == 8 {
				wall8 = best
			}
			speedup := float64(baseWall) / float64(best)
			t.Row(w.name, w.n, workers, st.Steps, st.Batches, st.Steals, st.Conflicts, best,
				fmt.Sprintf("%.2fx", speedup), fmt.Sprintf("%.2f", allocsPerStep))
			benchRecords = append(benchRecords, benchRecord{
				Workload: w.name, N: w.n, Engine: "parallel", Workers: workers,
				Steps: st.Steps, Probes: st.Probes, WallNS: best.Nanoseconds(),
				AllocsPerStep: allocsPerStep, BytesPerStep: bytesPerStep,
				Steals: st.Steals, Batches: st.Batches,
			})
		}
		// The gate pins the labeled tournament workload only: min's
		// label-free patterns force the batch matcher to view-lock every
		// shard, an overhead a single core cannot hide (~13x there, honest
		// and recorded in the table/JSON, bounded by cores elsewhere).
		if benchGuard && w.name == "tournament" && wall8 > 0 && float64(wall8) > e20GuardFactor*float64(baseWall) {
			return fmt.Errorf("e20 guard: %s n=%d: 8-worker wall %.1fms exceeds %.1fx single-worker %.1fms",
				w.name, w.n, float64(wall8.Nanoseconds())/1e6, e20GuardFactor,
				float64(baseWall.Nanoseconds())/1e6)
		}
	}
	fmt.Print(t)
	fmt.Printf("host: GOMAXPROCS=%d NumCPU=%d — speedups saturate at the core count;\n",
		runtime.GOMAXPROCS(0), runtime.NumCPU())
	fmt.Println("claim: batch commits amortize lock acquisitions (steps/batches > 1) and the")
	fmt.Println("       arena path holds incremental allocations near zero per firing")
	fmt.Println()
	return e20MinOrder()
}

// e20MinOrderGuardFactor bounds how much slower the adversarial value layout
// may run than the benign one. Before the rotated candidate pick the ratio
// was O(n) probes/step vs O(1) — three orders of magnitude at n=20000 — so a
// single-digit bound pins the fix with plenty of noise margin.
const e20MinOrderGuardFactor = 4.0

// e20MinOrder measures the sequential matcher's candidate-order pathology
// (ROADMAP 2c): the min reduction over a value set whose numeric maximum
// sorts lexicographically first. The deterministic matcher used to pin the
// first pattern to the global lex-first candidate on every probe; when that
// candidate is the numeric maximum it can never be the kept element, so each
// probe rescanned the whole multiset before backtracking onto a workable
// binding — O(n) candidates visited per step, O(n²) for the run. The state-derived
// rotated enumeration (multiset.IterAllRot) removes the preferred first
// candidate; the guard pins that by bounding the adversarial wall against a
// benign layout of the same size. Runs in -short: it is the regression gate
// for the fix, not a scaling study.
func e20MinOrder() error {
	minProg, err := gammalang.ParseProgram("min", paper.MinElementListing)
	if err != nil {
		return err
	}
	const n = 20000
	rng := rand.New(rand.NewSource(11))
	benign := multiset.New()
	adv := multiset.New()
	// Numeric maximum of the whole set, yet lexicographically first among the
	// keys ("1999999" < "2xxxxx"): the worst possible fixed first candidate.
	adv.Add(multiset.New1(value.Int(1999999)))
	for i := 0; i < n; i++ {
		v := int64(200000 + rng.Intn(100000))
		benign.Add(multiset.New1(value.Int(v)))
		if i > 0 {
			adv.Add(multiset.New1(value.Int(v)))
		}
	}

	t := metrics.NewTable("sequential matcher candidate order: min with a lex-first numeric maximum",
		"workload", "n", "steps", "probes", "time", "probes/step")
	measure := func(name string, init *multiset.Multiset) (time.Duration, error) {
		run := func() (*gamma.Stats, *multiset.Multiset, error) {
			m := init.Clone()
			st, err := gamma.Run(minProg, m, gamma.Options{Workers: 1})
			return st, m, err
		}
		if _, _, err := run(); err != nil { // warm
			return 0, fmt.Errorf("e20 min-order %s: %w", name, err)
		}
		var best time.Duration
		var st *gamma.Stats
		for rep := 0; rep < 2; rep++ {
			runtime.GC()
			var rerr error
			d := metrics.Time(func() { st, _, rerr = run() })
			if rerr != nil {
				return 0, fmt.Errorf("e20 min-order %s: %w", name, rerr)
			}
			if rep == 0 || d < best {
				best = d
			}
		}
		t.Row(name, n, st.Steps, st.Probes, best,
			fmt.Sprintf("%.1f", float64(st.Probes)/float64(max64(st.Steps, 1))))
		benchRecords = append(benchRecords, benchRecord{
			Workload: name, N: n, Engine: "sequential", Workers: 1,
			Steps: st.Steps, Probes: st.Probes, WallNS: best.Nanoseconds(),
		})
		return best, nil
	}
	benignWall, err := measure("min-benign", benign)
	if err != nil {
		return err
	}
	advWall, err := measure("min-adversarial", adv)
	if err != nil {
		return err
	}
	fmt.Print(t)
	fmt.Println("claim: rotated candidate enumeration keeps the deterministic matcher's")
	fmt.Println("       per-step cost O(1) regardless of the key order of the value set")
	if benchGuard && float64(advWall) > e20MinOrderGuardFactor*float64(benignWall) {
		return fmt.Errorf("e20 min-order guard: adversarial wall %.1fms exceeds %.1fx benign %.1fms — lex-first candidate pathology is back",
			float64(advWall.Nanoseconds())/1e6, e20MinOrderGuardFactor,
			float64(benignWall.Nanoseconds())/1e6)
	}
	return nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
