package main

// e16: the delta-driven incremental matching engine (internal/gamma
// schedule.go) against the seed full-rescan baseline (Options.FullScan), on
// the workloads of EXPERIMENTS.md E16. Each row runs the same program and
// initial multiset on both engines and cross-checks that they reach the same
// stable state in the same number of steps — the firing-sequence parity
// argument — before comparing probe counts and wall time.
//
// -bench-json persists the measurements as a machine-readable snapshot
// (BENCH_gamma.json), the regression baseline for future engine changes.

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/gamma"
	"repro/internal/gammalang"
	"repro/internal/metrics"
	"repro/internal/multiset"
	"repro/internal/paper"
	"repro/internal/value"
)

// benchRecord is one engine × workload measurement of e16.
type benchRecord struct {
	Workload string `json:"workload"`
	N        int    `json:"n"`
	Engine   string `json:"engine"`
	// MaxSteps is the step cap of the run; 0 means it ran to the stable state.
	MaxSteps int64 `json:"max_steps,omitempty"`
	Steps    int64 `json:"steps"`
	Probes   int64 `json:"probes"`
	WallNS   int64 `json:"wall_ns"`
}

// benchRecords accumulates e16's measurements for -bench-json.
var benchRecords []benchRecord

// tournamentSource generates the staged pairwise min reduction over labeled
// elements: min-element (Eq. 2) in the literal-label shape Algorithm 1 emits,
// where each reaction subscribes to exactly one label.
func tournamentSource(stages int) string {
	src := ""
	for i := 0; i < stages; i++ {
		src += fmt.Sprintf("R%d = replace [x, 'L%d'], [y, 'L%d'] by [x, 'L%d'] if x <= y by [y, 'L%d'] else\n",
			i, i, i, i+1, i+1)
	}
	return src
}

func expE16() error {
	t := metrics.NewTable("incremental matching engine vs seed full rescan (sequential)",
		"workload", "n", "engine", "steps", "probes", "time")

	type workload struct {
		name     string
		prog     *gamma.Program
		init     *multiset.Multiset
		n        int
		maxSteps int64
	}
	var ws []workload

	min, err := gammalang.ParseProgram("min", paper.MinElementListing)
	if err != nil {
		return err
	}
	ints := func(n int) *multiset.Multiset {
		m := multiset.New()
		for i := 0; i < n; i++ {
			m.Add(multiset.New1(value.Int(int64((i*2654435761 + 17) % (4 * n)))))
		}
		return m
	}
	for _, n := range []int{1000, 10000} {
		ws = append(ws, workload{"min", min, ints(n), n, 0})
	}

	for _, n := range []int{1000, 10000} {
		stages := 10
		if n == 10000 {
			stages = 14
		}
		prog, err := gammalang.ParseProgram("tournament", tournamentSource(stages))
		if err != nil {
			return err
		}
		m := multiset.New()
		for i := 0; i < n; i++ {
			m.Add(multiset.Pair(value.Int(int64((i*2654435761+17)%(4*n))), "L0"))
		}
		ws = append(ws, workload{"tournament", prog, m, n, 0})
	}

	sieve, err := gammalang.ParseProgram("sieve",
		`R = replace (x, y) by y where x % y == 0 and x != y`)
	if err != nil {
		return err
	}
	primes := func(n int) *multiset.Multiset {
		m := multiset.New()
		for i := int64(2); i <= int64(n); i++ {
			m.Add(multiset.New1(value.Int(i)))
		}
		return m
	}
	// The sieve's probes are quadratic in any engine (its single generic
	// reaction is a wildcard subscriber): a no-regression data point, step-
	// capped so the rows stay about scheduling, not about the sieve's cost.
	ws = append(ws, workload{"primes", sieve, primes(1000), 1000, 100})
	ws = append(ws, workload{"primes", sieve, primes(10000), 10000, 25})

	for _, w := range ws {
		var stable [2]*multiset.Multiset
		var stats [2]*gamma.Stats
		for ei, eng := range []struct {
			name     string
			fullScan bool
		}{{"incremental", false}, {"fullscan", true}} {
			var st *gamma.Stats
			var m *multiset.Multiset
			d := metrics.TimeN(3, func() {
				m = w.init.Clone()
				var err error
				st, err = gamma.Run(w.prog, m, gamma.Options{
					FullScan: eng.fullScan, MaxSteps: w.maxSteps,
				})
				if err != nil && !(w.maxSteps > 0 && err == gamma.ErrMaxSteps) {
					panic(err)
				}
			})
			stable[ei], stats[ei] = m, st
			t.Row(w.name, w.n, eng.name, st.Steps, st.Probes, d)
			benchRecords = append(benchRecords, benchRecord{
				Workload: w.name, N: w.n, Engine: eng.name,
				MaxSteps: w.maxSteps, Steps: st.Steps, Probes: st.Probes,
				WallNS: d.Nanoseconds(),
			})
		}
		// Cross-check: both engines are the same semantics, so same stable
		// state and same deterministic firing sequence.
		if !stable[0].Equal(stable[1]) {
			return fmt.Errorf("e16: %s n=%d: engines reached different stable states", w.name, w.n)
		}
		if stats[0].Steps != stats[1].Steps {
			return fmt.Errorf("e16: %s n=%d: steps differ (%d vs %d)",
				w.name, w.n, stats[0].Steps, stats[1].Steps)
		}
		if stats[0].Probes > stats[1].Probes {
			return fmt.Errorf("e16: %s n=%d: incremental probed more (%d vs %d)",
				w.name, w.n, stats[0].Probes, stats[1].Probes)
		}
		if w.name == "tournament" {
			fmt.Printf("tournament n=%d: probes fullscan/incremental = %.2fx\n",
				w.n, float64(stats[1].Probes)/float64(stats[0].Probes))
		}
	}
	fmt.Print(t)
	fmt.Println("claim: labeled multi-reaction workloads need ≥2x fewer probes under delta scheduling;")
	fmt.Println("       single-wildcard-reaction workloads (min, primes) are probe-identical by construction")
	return nil
}

// writeBenchJSON persists the e16 measurements, running e16 first if it has
// not run in this invocation.
func writeBenchJSON(path string) error {
	if len(benchRecords) == 0 {
		if err := expE16(); err != nil {
			return err
		}
	}
	data, err := json.MarshalIndent(benchRecords, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
