package main

// e16: the delta-driven incremental matching engine (internal/gamma
// schedule.go) against the seed full-rescan baseline (Options.FullScan), on
// the workloads of EXPERIMENTS.md E16. Each row runs the same program and
// initial multiset on both engines and cross-checks that they reach the same
// stable state in the same number of steps — the firing-sequence parity
// argument — before comparing probe counts and wall time.
//
// -bench-json persists the measurements as a machine-readable snapshot
// (BENCH_gamma.json), the regression baseline for future engine changes.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/gamma"
	"repro/internal/gammalang"
	"repro/internal/metrics"
	"repro/internal/multiset"
	"repro/internal/paper"
	"repro/internal/value"
)

// benchRecord is one engine × workload measurement of e16.
type benchRecord struct {
	Workload string `json:"workload"`
	N        int    `json:"n"`
	Engine   string `json:"engine"`
	// Workers is the worker count of the parallel-engine rows (e20); 0 on
	// the sequential e16 rows.
	Workers int `json:"workers,omitempty"`
	// MaxSteps is the step cap of the run; 0 means it ran to the stable state.
	MaxSteps int64 `json:"max_steps,omitempty"`
	Steps    int64 `json:"steps"`
	Probes   int64 `json:"probes"`
	WallNS   int64 `json:"wall_ns"`
	// AllocsPerStep and BytesPerStep are heap costs per firing, measured on a
	// separate (untimed) run via runtime.MemStats deltas; the initial
	// multiset clone happens before the window so only the engine is charged.
	AllocsPerStep float64 `json:"allocs_per_step"`
	BytesPerStep  float64 `json:"bytes_per_step"`
	// TraceOverheadPct is the wall-clock cost of running with a full telemetry
	// recorder attached, relative to the untraced run, in percent. Measured on
	// the tournament n=10^4 reference rows (see e19) and on the e23
	// service-trace rows (best paired round vs the untraced mode); 0 elsewhere.
	TraceOverheadPct float64 `json:"trace_overhead_pct,omitempty"`
	// Ticks is the bulk-synchronous round count of the matrix dataflow engine
	// on the e22 rows; 0 under the token-at-a-time engines.
	Ticks int64 `json:"ticks,omitempty"`
	// Steals and Batches carry the work-stealing scheduler's accounting on
	// the parallel rows: steals are deque takeovers, batches are multi-firing
	// ApplyDeltas commits (steps/batches = average firings per commit).
	Steals  int64 `json:"steals,omitempty"`
	Batches int64 `json:"batches,omitempty"`
	// RPS, P50NS and P99NS are the service rows of e21 (engine "service"):
	// sustained closed-loop request throughput against an in-process gammad
	// and the request-latency quantiles. 0 on the in-process rows.
	RPS   float64 `json:"rps,omitempty"`
	P50NS int64   `json:"p50_ns,omitempty"`
	P99NS int64   `json:"p99_ns,omitempty"`
}

// benchRecords accumulates e16's measurements for -bench-json.
var benchRecords []benchRecord

// benchShort restricts e16 to the tournament rows — the CI smoke
// configuration of `make bench-compare` (set by gfbench -short).
var benchShort bool

// benchGuard makes e16 fail (exit nonzero) if the incremental engine is not
// strictly faster than the full rescan on the min and tournament workloads at
// n=10^4 — the perf regression gate of `make bench-compare`.
var benchGuard bool

// tournamentSource generates the staged pairwise min reduction over labeled
// elements: min-element (Eq. 2) in the literal-label shape Algorithm 1 emits,
// where each reaction subscribes to exactly one label.
func tournamentSource(stages int) string {
	src := ""
	for i := 0; i < stages; i++ {
		src += fmt.Sprintf("R%d = replace [x, 'L%d'], [y, 'L%d'] by [x, 'L%d'] if x <= y by [y, 'L%d'] else\n",
			i, i, i, i+1, i+1)
	}
	return src
}

func expE16() error {
	t := metrics.NewTable("incremental matching engine vs seed full rescan (sequential)",
		"workload", "n", "engine", "steps", "probes", "time", "allocs/step", "B/step", "trace-ovh")

	type workload struct {
		name     string
		prog     *gamma.Program
		init     *multiset.Multiset
		n        int
		maxSteps int64
	}
	var ws []workload

	if !benchShort {
		min, err := gammalang.ParseProgram("min", paper.MinElementListing)
		if err != nil {
			return err
		}
		ints := func(n int) *multiset.Multiset {
			m := multiset.New()
			for i := 0; i < n; i++ {
				m.Add(multiset.New1(value.Int(int64((i*2654435761 + 17) % (4 * n)))))
			}
			return m
		}
		for _, n := range []int{1000, 10000} {
			ws = append(ws, workload{"min", min, ints(n), n, 0})
		}
	}

	for _, n := range []int{1000, 10000} {
		stages := 10
		if n == 10000 {
			stages = 14
		}
		prog, err := gammalang.ParseProgram("tournament", tournamentSource(stages))
		if err != nil {
			return err
		}
		m := multiset.New()
		for i := 0; i < n; i++ {
			m.Add(multiset.Pair(value.Int(int64((i*2654435761+17)%(4*n))), "L0"))
		}
		ws = append(ws, workload{"tournament", prog, m, n, 0})
	}

	if !benchShort {
		sieve, err := gammalang.ParseProgram("sieve",
			`R = replace (x, y) by y where x % y == 0 and x != y`)
		if err != nil {
			return err
		}
		primes := func(n int) *multiset.Multiset {
			m := multiset.New()
			for i := int64(2); i <= int64(n); i++ {
				m.Add(multiset.New1(value.Int(i)))
			}
			return m
		}
		// The sieve's probes are quadratic in any engine (its single generic
		// reaction is a wildcard subscriber): a no-regression data point, step-
		// capped so the rows stay about scheduling, not about the sieve's cost.
		ws = append(ws, workload{"primes", sieve, primes(1000), 1000, 100})
		ws = append(ws, workload{"primes", sieve, primes(10000), 10000, 25})
	}

	engines := []struct {
		name     string
		fullScan bool
	}{{"incremental", false}, {"fullscan", true}}
	for _, w := range ws {
		var stable [2]*multiset.Multiset
		var stats [2]*gamma.Stats
		var wall [2]time.Duration
		var allocsPerStep, bytesPerStep [2]float64
		run := func(fullScan bool, m *multiset.Multiset) *gamma.Stats {
			st, err := gamma.Run(w.prog, m, gamma.Options{
				FullScan: fullScan, MaxSteps: w.maxSteps,
			})
			if err != nil && !(w.maxSteps > 0 && err == gamma.ErrMaxSteps) {
				panic(err)
			}
			return st
		}
		// Warm both engines before timing either, then interleave the timed
		// reps with a GC reset in front of each: without this, whichever
		// engine runs later inherits the larger heap goal the earlier one
		// ratcheted up and wins on GC frequency, not on scheduling.
		for _, eng := range engines {
			run(eng.fullScan, w.init.Clone())
		}
		for rep := 0; rep < 3; rep++ {
			for ei, eng := range engines {
				runtime.GC()
				var st *gamma.Stats
				var m *multiset.Multiset
				d := metrics.Time(func() {
					m = w.init.Clone()
					st = run(eng.fullScan, m)
				})
				if rep == 0 || d < wall[ei] {
					wall[ei] = d
				}
				stable[ei], stats[ei] = m, st
			}
		}
		for ei, eng := range engines {
			// Allocation cost on a separate run: the clone happens before the
			// MemStats window so only the engine's own allocations are counted.
			ma := w.init.Clone()
			var ms0, ms1 runtime.MemStats
			runtime.ReadMemStats(&ms0)
			sta := run(eng.fullScan, ma)
			runtime.ReadMemStats(&ms1)
			steps := sta.Steps
			if steps == 0 {
				steps = 1
			}
			allocsPerStep[ei] = float64(ms1.Mallocs-ms0.Mallocs) / float64(steps)
			bytesPerStep[ei] = float64(ms1.TotalAlloc-ms0.TotalAlloc) / float64(steps)
		}
		// Trace overhead on the reference rows: the tournament at n=10^4 is
		// the workload the ≤2% disabled-overhead budget is stated against.
		var tracePct [2]float64
		traced := w.name == "tournament" && w.n == 10000
		if traced {
			for ei, eng := range engines {
				_, _, pct, err := traceOverhead(w.prog, w.init,
					gamma.Options{FullScan: eng.fullScan, MaxSteps: w.maxSteps}, 9)
				if err != nil {
					return err
				}
				tracePct[ei] = pct
			}
		}
		for ei, eng := range engines {
			st := stats[ei]
			ovh := "-"
			if traced {
				ovh = fmt.Sprintf("%+.1f%%", tracePct[ei])
			}
			t.Row(w.name, w.n, eng.name, st.Steps, st.Probes, wall[ei],
				fmt.Sprintf("%.1f", allocsPerStep[ei]), fmt.Sprintf("%.0f", bytesPerStep[ei]), ovh)
			benchRecords = append(benchRecords, benchRecord{
				Workload: w.name, N: w.n, Engine: eng.name,
				MaxSteps: w.maxSteps, Steps: st.Steps, Probes: st.Probes,
				WallNS:        wall[ei].Nanoseconds(),
				AllocsPerStep: allocsPerStep[ei], BytesPerStep: bytesPerStep[ei],
				TraceOverheadPct: tracePct[ei],
			})
		}
		// Cross-check: both engines are the same semantics, so same stable
		// state and same deterministic firing sequence.
		if !stable[0].Equal(stable[1]) {
			return fmt.Errorf("e16: %s n=%d: engines reached different stable states", w.name, w.n)
		}
		if stats[0].Steps != stats[1].Steps {
			return fmt.Errorf("e16: %s n=%d: steps differ (%d vs %d)",
				w.name, w.n, stats[0].Steps, stats[1].Steps)
		}
		if stats[0].Probes > stats[1].Probes {
			return fmt.Errorf("e16: %s n=%d: incremental probed more (%d vs %d)",
				w.name, w.n, stats[0].Probes, stats[1].Probes)
		}
		if w.name == "tournament" {
			fmt.Printf("tournament n=%d: probes fullscan/incremental = %.2fx\n",
				w.n, float64(stats[1].Probes)/float64(stats[0].Probes))
		}
		if benchGuard && w.n == 10000 && (w.name == "min" || w.name == "tournament") &&
			wall[0] >= wall[1] {
			return fmt.Errorf("e16 guard: %s n=%d: incremental wall %.1fms not below fullscan %.1fms",
				w.name, w.n, float64(wall[0].Nanoseconds())/1e6, float64(wall[1].Nanoseconds())/1e6)
		}
	}
	fmt.Print(t)
	fmt.Println("claim: labeled multi-reaction workloads need ≥2x fewer probes under delta scheduling;")
	fmt.Println("       single-wildcard-reaction workloads (min, primes) are probe-identical by construction")
	return nil
}

// writeBenchJSON persists the e16/e20 measurements, running e16 first if
// nothing has measured in this invocation.
func writeBenchJSON(path string) error {
	if len(benchRecords) == 0 {
		if err := expE16(); err != nil {
			return err
		}
	}
	data, err := json.MarshalIndent(benchRecords, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// baselineWallFactor is how much slower than the recorded baseline a row's
// wall time may be before -baseline fails the run. Wide, because the
// snapshot was taken on one particular machine and CI runs on another; the
// deterministic columns (steps, probes) are compared strictly instead.
const baselineWallFactor = 4.0

// checkBaseline regression-checks this invocation's measurements against a
// previously written BENCH_gamma.json: rows are matched by (workload, n,
// engine, workers, max_steps); matched rows must reproduce the recorded step
// count, must not probe more than the baseline on the deterministic
// sequential engines, and must stay within baselineWallFactor of its wall
// time. Rows without a baseline counterpart (new experiments) pass.
func checkBaseline(path string) error {
	if len(benchRecords) == 0 {
		return fmt.Errorf("-baseline: no measurements to compare; combine with -exp e16, e20 or all")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base []benchRecord
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("-baseline %s: %w", path, err)
	}
	type key struct {
		workload string
		n        int
		engine   string
		workers  int
		maxSteps int64
	}
	idx := make(map[key]benchRecord, len(base))
	for _, b := range base {
		idx[key{b.Workload, b.N, b.Engine, b.Workers, b.MaxSteps}] = b
	}
	compared := 0
	for _, r := range benchRecords {
		b, ok := idx[key{r.Workload, r.N, r.Engine, r.Workers, r.MaxSteps}]
		if !ok {
			continue
		}
		compared++
		id := fmt.Sprintf("%s n=%d engine=%s workers=%d", r.Workload, r.N, r.Engine, r.Workers)
		if r.Steps != b.Steps {
			return fmt.Errorf("baseline: %s: steps %d, baseline %d", id, r.Steps, b.Steps)
		}
		if (r.Engine == "incremental" || r.Engine == "fullscan") && r.Probes > b.Probes {
			return fmt.Errorf("baseline: %s: probes %d regressed above baseline %d", id, r.Probes, b.Probes)
		}
		if float64(r.WallNS) > baselineWallFactor*float64(b.WallNS) {
			return fmt.Errorf("baseline: %s: wall %.1fms exceeds %.0fx baseline %.1fms",
				id, float64(r.WallNS)/1e6, baselineWallFactor, float64(b.WallNS)/1e6)
		}
	}
	fmt.Printf("baseline: %d rows within tolerance of %s\n", compared, path)
	return nil
}
