package main

// e22: bulk-synchronous matrix engine vs the token-at-a-time engines on wide,
// shallow Algorithm-2-style dataflow graphs (DESIGN.md §14).
//
// The workload replicates one conditional-expression instance — consts, a
// comparison, a steer, and an arithmetic chain on each steer branch — width
// times side by side. That is the shape Algorithm 2 produces for a
// data-parallel Gamma program: enormous instantaneous parallelism (every
// instance is independent) and a depth bounded by the expression, not the
// data. It is the matrix engine's best case (each tick fires ~width vertices
// from one readiness sweep, and the tick count stays depth-determined,
// width-independent) and the PE worker pool's worst case on a small host
// (every firing pays queue and scheduling overhead that the sweep amortizes).
//
// Engines per configuration: the sequential reference (workers=1), the PE
// worker pool at 8 workers, and the matrix engine. Correctness cross-checks
// per row: identical terminal outputs, firing counts and pending counts
// across all three. With -guard the matrix engine must beat the worker pool
// within e22GuardPoolFactor and stay within e22GuardSeqFactor of the
// sequential engine at the widest configuration — bounded-overhead gates
// (this host has one core; EXPERIMENTS.md E22 records the interpretation).

import (
	"fmt"
	"reflect"
	"runtime"
	"time"

	"repro/internal/dataflow"
	"repro/internal/metrics"
	"repro/internal/value"
)

const (
	// e22GuardPoolFactor bounds matrix wall against the 8-worker pool: the
	// sweep must at least hold its own against per-firing scheduling.
	e22GuardPoolFactor = 1.2
	// e22GuardSeqFactor bounds matrix wall against the sequential engine: the
	// per-tick edge sweep is overhead a 1-core host cannot pay back with
	// parallelism, so the gate only requires it stays bounded.
	e22GuardSeqFactor = 2.5
)

// wideGraph builds width independent instances of a conditional expression:
//
//	x ──┬─► (< 500) ──► steer.ctl
//	    └─────────────► steer.data ──► +1 ─► +2 ─► … (true branch, depth deep)
//	                              └──► *2 ─► *2 ─► … (false branch)
//
// Each instance's constant varies with i and seed so both branches are taken
// across the population; the untaken branch of every instance simply never
// fires (and strands nothing: the steer consumed its operands).
func wideGraph(width, depth int, seed int64) *dataflow.Graph {
	g := dataflow.NewGraph(fmt.Sprintf("wide%dx%d", width, depth))
	connect := func(from dataflow.NodeID, fp int, to dataflow.NodeID, tp int, label string) {
		if _, err := g.Connect(from, fp, to, tp, label); err != nil {
			panic(fmt.Sprintf("e22: wiring %s: %v", label, err))
		}
	}
	for i := 0; i < width; i++ {
		vx := (int64(i)*2654435761 + seed) % 1000
		x := g.AddConst(fmt.Sprintf("x%d", i), value.Int(vx))
		c := g.AddCompareImm(fmt.Sprintf("c%d", i), "<", value.Int(500))
		st := g.AddSteer(fmt.Sprintf("st%d", i))
		connect(x, 0, c, 0, fmt.Sprintf("e%d.c", i))
		connect(x, 0, st, 0, fmt.Sprintf("e%d.d", i))
		connect(c, 0, st, 1, fmt.Sprintf("e%d.s", i))
		tn, tp := st, dataflow.PortTrue
		fn, fp := st, dataflow.PortFalse
		for d := 0; d < depth; d++ {
			t := g.AddArithImm(fmt.Sprintf("t%d.%d", i, d), "+", value.Int(int64(d+1)))
			connect(tn, tp, t, 0, fmt.Sprintf("e%d.t%d", i, d))
			tn, tp = t, 0
			f := g.AddArithImm(fmt.Sprintf("f%d.%d", i, d), "*", value.Int(2))
			connect(fn, fp, f, 0, fmt.Sprintf("e%d.f%d", i, d))
			fn, fp = f, 0
		}
		if _, err := g.ConnectOut(tn, tp, fmt.Sprintf("outT%d", i)); err != nil {
			panic(fmt.Sprintf("e22: out: %v", err))
		}
		if _, err := g.ConnectOut(fn, fp, fmt.Sprintf("outF%d", i)); err != nil {
			panic(fmt.Sprintf("e22: out: %v", err))
		}
	}
	return g
}

func expE22() error {
	t := metrics.NewTable("bulk-synchronous matrix engine vs PE pool: width × depth",
		"workload", "width", "engine", "workers", "firings", "ticks", "time", "vs seq")

	type cfg struct {
		name  string
		depth int
	}
	cfgs := []cfg{{"alg2-wide-d4", 4}, {"alg2-wide-d16", 16}}
	widths := []int{1024, 8192, 32768}
	if benchShort {
		cfgs = cfgs[:1]
		widths = []int{1024, 8192}
	}
	type engine struct {
		name string
		opt  dataflow.Options
	}
	engines := []engine{
		{"seq", dataflow.Options{Workers: 1}},
		{"parallel", dataflow.Options{Workers: 8}},
		{"matrix", dataflow.Options{Engine: dataflow.EngineMatrix}},
	}
	for _, c := range cfgs {
		for wi, width := range widths {
			g := wideGraph(width, c.depth, 17)
			var ref *dataflow.Result
			var seqWall, poolWall, matWall time.Duration
			for _, e := range engines {
				run := func() *dataflow.Result {
					res, err := dataflow.Run(g, e.opt)
					if err != nil {
						panic(fmt.Sprintf("e22: %s width=%d engine=%s: %v", c.name, width, e.name, err))
					}
					return res
				}
				run() // warm
				var best time.Duration
				var res *dataflow.Result
				for rep := 0; rep < 2; rep++ {
					runtime.GC()
					d := metrics.Time(func() { res = run() })
					if rep == 0 || d < best {
						best = d
					}
				}
				switch e.name {
				case "seq":
					ref, seqWall = res, best
				case "parallel":
					poolWall = best
				case "matrix":
					matWall = best
				}
				if e.name != "seq" {
					if !reflect.DeepEqual(res.Outputs, ref.Outputs) {
						return fmt.Errorf("e22: %s width=%d: %s outputs diverge from seq", c.name, width, e.name)
					}
					if res.Firings != ref.Firings || res.Pending != ref.Pending {
						return fmt.Errorf("e22: %s width=%d: %s firings/pending (%d,%d), seq (%d,%d)",
							c.name, width, e.name, res.Firings, res.Pending, ref.Firings, ref.Pending)
					}
				}
				t.Row(c.name, width, e.name, res.Workers, res.Firings, res.Ticks, best,
					fmt.Sprintf("%.2fx", float64(best)/float64(max64(int64(seqWall), 1))))
				benchRecords = append(benchRecords, benchRecord{
					Workload: c.name, N: width, Engine: e.name, Workers: res.Workers,
					Steps: res.Firings, WallNS: best.Nanoseconds(), Ticks: res.Ticks,
				})
			}
			if benchGuard && wi == len(widths)-1 {
				if float64(matWall) > e22GuardPoolFactor*float64(poolWall) {
					return fmt.Errorf("e22 guard: %s width=%d: matrix wall %.1fms exceeds %.1fx pool %.1fms",
						c.name, width, float64(matWall.Nanoseconds())/1e6, e22GuardPoolFactor,
						float64(poolWall.Nanoseconds())/1e6)
				}
				if float64(matWall) > e22GuardSeqFactor*float64(seqWall) {
					return fmt.Errorf("e22 guard: %s width=%d: matrix wall %.1fms exceeds %.1fx seq %.1fms",
						c.name, width, float64(matWall.Nanoseconds())/1e6, e22GuardSeqFactor,
						float64(seqWall.Nanoseconds())/1e6)
				}
			}
		}
	}
	fmt.Print(t)
	fmt.Printf("host: GOMAXPROCS=%d NumCPU=%d — 1 core: the matrix column measures sweep\n",
		runtime.GOMAXPROCS(0), runtime.NumCPU())
	fmt.Println("overhead, not parallel speedup; ticks stay depth-determined as width grows")
	fmt.Println("claim: one readiness sweep per tick replaces per-firing queue traffic, so the")
	fmt.Println("       bulk-synchronous engine overtakes the PE pool as width grows")
	return nil
}
