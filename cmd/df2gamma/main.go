// Command df2gamma applies Algorithm 1: it converts a dynamic dataflow graph
// into an equivalent Gamma program, printed in the paper's listing style with
// its init multiset, ready for gammarun.
//
// Usage:
//
//	df2gamma [-compile] [-reduce] [-check] [-timeout D] file
//
// The input is a .dfir graph description, or von Neumann source with
// -compile. With -reduce, the §III-A3 reduction fuses linear reaction chains
// (the Rd1 transformation). With -check, the equivalence of graph and
// program is verified by executing both before printing.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/cli"
	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/dfir"
	"repro/internal/equiv"
	"repro/internal/gamma"
	"repro/internal/gammalang"
	"repro/internal/multiset"
	"repro/internal/rt"
)

func main() {
	compile := flag.Bool("compile", false, "treat the input as von Neumann source, not .dfir")
	reduce := flag.Bool("reduce", false, "apply the §III-A3 reduction to the emitted program")
	check := flag.Bool("check", false, "verify equivalence by running both models first")
	timeout := flag.Duration("timeout", 0, "abort after this long, e.g. 30s (0 = no deadline)")
	var tel cli.TelemetryFlags
	tel.Register(flag.CommandLine)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: df2gamma [flags] file")
		flag.PrintDefaults()
		os.Exit(cli.ExitUsage)
	}
	if err := tel.Start(multiset.PrettyKey); err != nil {
		cli.Exit("df2gamma", err)
	}
	ctx, stop := cli.Context(*timeout)
	err := run(ctx, flag.Arg(0), &tel, *compile, *reduce, *check)
	stop()
	if terr := tel.Finish(); err == nil {
		err = terr
	}
	cli.Exit("df2gamma", err)
}

func run(ctx context.Context, path string, tel *cli.TelemetryFlags, compile, reduce, check bool) error {
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var g *dataflow.Graph
	if compile {
		g, err = compiler.Compile(path, string(src))
	} else {
		g, err = dfir.Unmarshal(string(src))
		err = rt.Mark(rt.ErrParse, err)
	}
	if err != nil {
		return err
	}
	if check {
		rep, err := equiv.CheckContext(ctx, g, equiv.Options{MaxSteps: 1_000_000})
		if err != nil {
			return err
		}
		if !rep.Equivalent {
			return fmt.Errorf("equivalence check failed: %v", rep.Mismatches)
		}
		fmt.Fprintf(os.Stderr, "# equivalence verified: %d operator firings = %d reaction steps\n",
			rep.OperatorFirings, rep.ReactionSteps)
	}
	prog, init, err := core.ToGamma(g)
	if err != nil {
		return err
	}
	if reduce {
		reduced, fused, err := core.Reduce(prog)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "# reduction fused %d reactions (%d -> %d)\n",
			fused, len(prog.Reactions), len(reduced.Reactions))
		prog = reduced
	}
	if tel.Enabled() {
		// Observe the conversion's output, not just print it: execute the
		// emitted Gamma program on a copy of its init multiset so the trace
		// shows the program the user is about to run.
		opt := gamma.Options{Workers: 1, MaxSteps: 1_000_000, Recorder: tel.Recorder()}
		if p := tel.Provenance(); p != nil {
			opt.Tracer = p
		}
		if _, err := gamma.RunContext(ctx, prog, init.Clone(), opt); err != nil {
			return fmt.Errorf("traced run of converted program: %w", err)
		}
	}
	fmt.Print(gammalang.FormatFile(gammalang.NewFile(prog, init)))
	return nil
}
