package main

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/cli"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestConvertDfir(t *testing.T) {
	path := writeTemp(t, "g.dfir", `graph g
const x = 2
const y = 3
arith mul *
edge a x:0 -> mul:0
edge b y:0 -> mul:1
edge p mul:0 -> out
`)
	if err := run(context.Background(), path, &cli.TelemetryFlags{}, false, false, true); err != nil {
		t.Fatal(err)
	}
}

func TestConvertCompiledWithReduce(t *testing.T) {
	src := writeTemp(t, "ex1.vn", `
int x = 1; int y = 5; int k = 3; int j = 2; int m;
m = (x + y) - (k * j);
`)
	if err := run(context.Background(), src, &cli.TelemetryFlags{}, true, true, true); err != nil {
		t.Fatal(err)
	}
}

func TestConvertErrors(t *testing.T) {
	if err := run(context.Background(), "/nonexistent", &cli.TelemetryFlags{}, false, false, false); err == nil {
		t.Error("missing file should error")
	}
	bad := writeTemp(t, "bad.dfir", "junk")
	if err := run(context.Background(), bad, &cli.TelemetryFlags{}, false, false, false); err == nil {
		t.Error("bad dfir should error")
	}
	badSrc := writeTemp(t, "bad.vn", "q = 1;")
	if err := run(context.Background(), badSrc, &cli.TelemetryFlags{}, true, false, false); err == nil {
		t.Error("bad source should error")
	}
}
