// Command gammad serves Gamma over HTTP: a multi-tenant run service
// multiplexing concurrent Gamma programs and dataflow graphs (the v1 wire
// format of internal/schema) over a shared bounded executor pool.
//
// Usage:
//
//	gammad [-addr :8080] [-pool N] [-queue N] [-max-steps-cap N]
//	       [-concurrent N] [-step-budget N] [-tenant key=conc,steps,budget]...
//	       [-trace-sample P] [-trace-events N] [-log json|text|off]
//	       [-metrics-addr host:port] [-pprof] [-selfcheck [-remote-trace FILE]]
//
// API (see package internal/service):
//
//	POST   /v1/runs              submit (202; ?wait=true blocks for the result)
//	GET    /v1/runs/{id}         poll
//	DELETE /v1/runs/{id}         cancel
//	GET    /v1/runs/{id}/trace   traced terminal run's trace
//	                             (?format=perfetto|jsonl|dot|schedule)
//	POST   /v1/replay            re-execute a recorded schedule; the response
//	                             is the confirmed stable state or a divergence
//	GET    /v1/runs/{id}/stats   terminal run's execution accounting
//	GET    /v1/healthz           load snapshot
//	GET    /metrics              registry snapshot (?format=prom for Prometheus)
//	GET    /metrics/watch        SSE metrics stream
//
// -pprof additionally mounts the net/http/pprof introspection handlers under
// /debug/pprof/ on the -metrics-addr endpoint (never on the public API
// port): goroutine dumps, CPU and heap profiles of the live server. It
// requires -metrics-addr.
//
// Admission control rejects with 429 + Retry-After when the pending queue is
// full or the tenant (API key) is over its concurrency or step-budget quota.
//
// Submissions with "trace": true in their spec are recorded (event rings +
// firing provenance, sampled at -trace-sample) and their traces retained with
// the terminal run. The server logs one structured record (-log json|text)
// per admission, rejection and completion, keyed by run id, tenant and
// engine. Metrics carry per-tenant and per-engine label series alongside the
// globals, scrape-able at /metrics?format=prom.
//
// -selfcheck starts the server on a loopback port, drives a smoke test
// through the client package (lifecycle, taxonomy mapping, backpressure,
// trace fetch, Prometheus exposition) and exits; it is the deployment health
// gate used by make check-ci. -remote-trace FILE additionally writes the
// fetched Perfetto trace there for inspection.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"repro/client"
	"repro/internal/cli"
	"repro/internal/paper"
	"repro/internal/rt"
	"repro/internal/schema"
	"repro/internal/service"
	"repro/internal/telemetry"
)

// tenantFlags collects repeatable -tenant key=concurrent,maxsteps,budget
// overrides (0 fields inherit the defaults).
type tenantFlags map[string]service.Quota

func (t tenantFlags) String() string { return fmt.Sprintf("%d tenants", len(t)) }

func (t tenantFlags) Set(v string) error {
	key, spec, ok := strings.Cut(v, "=")
	if !ok || key == "" {
		return fmt.Errorf("want key=concurrent,maxsteps,budget, got %q", v)
	}
	parts := strings.Split(spec, ",")
	if len(parts) != 3 {
		return fmt.Errorf("want three comma-separated numbers, got %q", spec)
	}
	var q service.Quota
	var err error
	if q.MaxConcurrent, err = strconv.Atoi(parts[0]); err != nil {
		return err
	}
	if q.MaxSteps, err = strconv.ParseInt(parts[1], 10, 64); err != nil {
		return err
	}
	if q.StepBudget, err = strconv.ParseInt(parts[2], 10, 64); err != nil {
		return err
	}
	t[key] = q
	return nil
}

func main() {
	addr := flag.String("addr", ":8080", "HTTP listen address")
	pool := flag.Int("pool", 4, "executor goroutines runs are multiplexed over")
	queue := flag.Int("queue", 64, "pending-queue depth (full queue rejects with 429)")
	stepsCap := flag.Int64("max-steps-cap", 10_000_000, "per-run step cap when the spec asks for more (or nothing)")
	retain := flag.Int("retain", 1024, "terminal runs kept for polling before eviction")
	maxBody := flag.Int64("max-body", 1<<20, "request body cap in bytes")
	concurrent := flag.Int("concurrent", 0, "default per-tenant concurrent-run quota (0 = unbounded)")
	stepBudget := flag.Int64("step-budget", 0, "default per-tenant cumulative step budget (0 = unlimited)")
	metricsAddr := flag.String("metrics-addr", "", "serve live service metrics JSON on this HTTP address")
	pprofFlag := flag.Bool("pprof", false, "also serve /debug/pprof/ on the -metrics-addr endpoint")
	traceSample := flag.Float64("trace-sample", 0, "fraction of trace-requesting runs actually traced (0 = all, <0 = none)")
	traceEvents := flag.Int("trace-events", 0, "per-track event-ring capacity of traced runs (0 = 4096)")
	logFormat := flag.String("log", "json", "structured log format: json, text or off")
	selfcheck := flag.Bool("selfcheck", false, "start on a loopback port, run the client smoke test and exit")
	remoteTrace := flag.String("remote-trace", "", "with -selfcheck: write the remotely fetched Perfetto trace to this file")
	tenants := tenantFlags{}
	flag.Var(tenants, "tenant", "per-API-key quota override key=concurrent,maxsteps,budget (repeatable)")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: gammad [flags]")
		flag.PrintDefaults()
		os.Exit(cli.ExitUsage)
	}

	var logger *slog.Logger
	switch *logFormat {
	case "json":
		logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	case "text":
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	case "off":
		logger = nil // service.Config substitutes a discard logger
	default:
		fmt.Fprintf(os.Stderr, "gammad: unknown -log format %q (want json, text or off)\n", *logFormat)
		os.Exit(cli.ExitUsage)
	}

	cfg := service.Config{
		Pool:          *pool,
		QueueDepth:    *queue,
		Quota:         service.Quota{MaxConcurrent: *concurrent, StepBudget: *stepBudget},
		Tenants:       tenants,
		MaxStepsCap:   *stepsCap,
		Retain:        *retain,
		MaxBody:       *maxBody,
		TraceSample:   *traceSample,
		TraceEventCap: *traceEvents,
		Logger:        logger,
	}

	if *selfcheck {
		if err := runSelfcheck(cfg, *remoteTrace); err != nil {
			cli.Exit("gammad", err)
		}
		fmt.Println("gammad selfcheck: PASS")
		return
	}

	if *pprofFlag && *metricsAddr == "" {
		fmt.Fprintln(os.Stderr, "gammad: -pprof requires -metrics-addr (the handlers mount on the metrics endpoint)")
		os.Exit(cli.ExitUsage)
	}

	s := service.New(cfg)
	defer s.Close()

	if *metricsAddr != "" {
		mux := telemetry.MetricsMux(s.Registry())
		if *pprofFlag {
			telemetry.MountPprof(mux)
		}
		bound, closeSrv, err := telemetry.ServeMux(*metricsAddr, mux)
		if err != nil {
			cli.Exit("gammad", err)
		}
		defer closeSrv()
		fmt.Fprintf(os.Stderr, "gammad: metrics on http://%s/metrics\n", bound)
		if *pprofFlag {
			fmt.Fprintf(os.Stderr, "gammad: pprof on http://%s/debug/pprof/\n", bound)
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		cli.Exit("gammad", err)
	}
	srv := &http.Server{Handler: s.Handler()}
	fmt.Fprintf(os.Stderr, "gammad: serving on http://%s (pool %d, queue %d)\n",
		ln.Addr(), cfg.Pool, cfg.QueueDepth)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		srv.Shutdown(context.Background()) //nolint:errcheck // exiting anyway
	}()
	if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		cli.Exit("gammad", err)
	}
}

// runSelfcheck boots the service on a loopback port and exercises the whole
// serving stack through the public client: submit/wait lifecycle with the
// paper's Example 1, the error-taxonomy mapping on a truncated divergent
// run, per-tenant backpressure, cancel, the health endpoint, a traced run's
// trace/stats surfaces (all four formats), the record→replay loop with a
// divergence probe, and the Prometheus exposition. remoteTrace, when
// non-empty, receives the fetched Perfetto trace, streamed via TraceTo.
func runSelfcheck(cfg service.Config, remoteTrace string) error {
	// Selfcheck wants deterministic backpressure: one tenant slot.
	cfg.Tenants = map[string]service.Quota{"selfcheck-quota": {MaxConcurrent: 1}}
	s := service.New(cfg)
	defer s.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: s.Handler()}
	go srv.Serve(ln) //nolint:errcheck // torn down with the listener
	defer srv.Close()

	ctx := context.Background()
	c := client.New("http://" + ln.Addr().String())

	// 1. Health.
	h, err := c.Health(ctx)
	if err != nil {
		return fmt.Errorf("selfcheck health: %w", err)
	}
	if h.Status != "ok" {
		return fmt.Errorf("selfcheck health: status %q", h.Status)
	}

	// 2. Example 1 to its stable state, synchronously.
	resp, err := c.Run(ctx, client.NewGammaRequest(
		paper.Example1GammaListing, paper.Example1InitialMultiset,
		client.RunSpec{MaxSteps: 10000}))
	if err != nil {
		return fmt.Errorf("selfcheck example1: %w", err)
	}
	if resp.State != schema.StateDone || !strings.Contains(resp.Result.Multiset, "'m'") {
		return fmt.Errorf("selfcheck example1: state %s result %+v", resp.State, resp.Result)
	}

	// 3. A divergent counter truncated by its step cap maps to ErrMaxSteps
	// across the wire.
	divergent := client.NewGammaRequest(
		`R = replace [x, 'G'] by [x + 1, 'G']`, `{[0, 'G']}`,
		client.RunSpec{MaxSteps: 100})
	if _, err := c.Run(ctx, divergent); !errors.Is(err, rt.ErrMaxSteps) {
		return fmt.Errorf("selfcheck taxonomy: err = %v, want ErrMaxSteps", err)
	}

	// 4. Backpressure: with a one-slot quota, a second concurrent run
	// bounces as BusyError; canceling the first frees the slot.
	qc := client.New(c.BaseURL)
	qc.APIKey = "selfcheck-quota"
	unbounded := client.NewGammaRequest(
		`R = replace [x, 'G'] by [x + 1, 'G']`, `{[0, 'G']}`, client.RunSpec{})
	first, err := qc.Submit(ctx, unbounded)
	if err != nil {
		return fmt.Errorf("selfcheck quota submit: %w", err)
	}
	var busy *client.BusyError
	if _, err := qc.Submit(ctx, unbounded); !errors.As(err, &busy) {
		return fmt.Errorf("selfcheck quota: err = %v, want BusyError", err)
	}
	if _, err := qc.Cancel(ctx, first.ID); err != nil {
		return fmt.Errorf("selfcheck cancel: %w", err)
	}
	if _, err := qc.Wait(ctx, first.ID, 0); !errors.Is(err, rt.ErrCanceled) {
		return fmt.Errorf("selfcheck cancel wait: err = %v, want ErrCanceled", err)
	}

	// 5. A traced run: the remote stats must hold firings == steps (the
	// firing-history equivalence over the wire) and every trace format must
	// download non-empty.
	traced, err := c.Run(ctx, client.NewGammaRequest(
		paper.Example1GammaListing, paper.Example1InitialMultiset,
		client.RunSpec{Engine: schema.EngineSeq, MaxSteps: 10000, Trace: true}))
	if err != nil {
		return fmt.Errorf("selfcheck traced run: %w", err)
	}
	st, err := c.Stats(ctx, traced.ID)
	if err != nil {
		return fmt.Errorf("selfcheck stats: %w", err)
	}
	if !st.Traced || st.Firings != st.Steps || st.Steps != traced.Result.Steps {
		return fmt.Errorf("selfcheck stats: %+v, want traced with firings == steps == %d",
			st, traced.Result.Steps)
	}
	for _, format := range []string{client.TracePerfetto, client.TraceJSONL, client.TraceDOT, client.TraceSchedule} {
		data, err := c.Trace(ctx, traced.ID, format)
		if err != nil || len(data) == 0 {
			return fmt.Errorf("selfcheck trace %s: %d bytes, %v", format, len(data), err)
		}
	}
	if remoteTrace != "" {
		// TraceTo streams straight into the file — the export never lives
		// wholly in client memory.
		f, err := os.Create(remoteTrace)
		if err != nil {
			return fmt.Errorf("selfcheck -remote-trace: %w", err)
		}
		err = c.TraceTo(ctx, traced.ID, client.TracePerfetto, f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("selfcheck -remote-trace: %w", err)
		}
		fi, err := os.Stat(remoteTrace)
		if err != nil || fi.Size() == 0 {
			return fmt.Errorf("selfcheck -remote-trace: empty trace file (%v)", err)
		}
		fmt.Fprintf(os.Stderr, "gammad: remote trace written to %s (%d bytes)\n", remoteTrace, fi.Size())
	}

	// 5b. Record → replay over the wire: the traced run's schedule, replayed
	// against the same program and initial multiset, must confirm the exact
	// recorded answer; a corrupted product must come back as a structured
	// divergence naming the tampered step.
	sched, err := c.Trace(ctx, traced.ID, client.TraceSchedule)
	if err != nil {
		return fmt.Errorf("selfcheck schedule fetch: %w", err)
	}
	rep, err := c.Replay(ctx, client.NewGammaReplayRequest(
		paper.Example1GammaListing, paper.Example1InitialMultiset, string(sched)))
	if err != nil {
		return fmt.Errorf("selfcheck replay: %w", err)
	}
	if rep.Divergence != nil || !rep.Stable || rep.Multiset != traced.Result.Multiset {
		return fmt.Errorf("selfcheck replay: %+v, want stable %q", rep, traced.Result.Multiset)
	}
	corrupt := strings.Replace(string(sched), `"produced":["`, `"produced":["9999`, 1)
	rep, err = c.Replay(ctx, client.NewGammaReplayRequest(
		paper.Example1GammaListing, paper.Example1InitialMultiset, corrupt))
	if err != nil {
		return fmt.Errorf("selfcheck replay divergence: %w", err)
	}
	if rep.Divergence == nil || rep.Divergence.Step == 0 {
		return fmt.Errorf("selfcheck replay divergence: corrupted schedule replayed clean (%+v)", rep)
	}

	// 6. The Prometheus exposition serves with its Content-Type and carries
	// the labeled service series; an unknown format is 406, not JSON.
	promBody, promCT, err := httpGet(c.BaseURL + "/metrics?format=prom")
	if err != nil {
		return fmt.Errorf("selfcheck metrics: %w", err)
	}
	if !strings.HasPrefix(promCT, "text/plain") {
		return fmt.Errorf("selfcheck metrics: Content-Type %q, want text/plain", promCT)
	}
	for _, want := range []string{"# TYPE service_done counter", `service_done{engine="seq"}`} {
		if !strings.Contains(promBody, want) {
			return fmt.Errorf("selfcheck metrics: exposition missing %q", want)
		}
	}
	if resp, err := http.Get(c.BaseURL + "/metrics?format=avro"); err != nil {
		return fmt.Errorf("selfcheck metrics 406: %w", err)
	} else if resp.Body.Close(); resp.StatusCode != http.StatusNotAcceptable {
		return fmt.Errorf("selfcheck metrics 406: status %d", resp.StatusCode)
	}
	return nil
}

// httpGet fetches one URL, returning the body and Content-Type.
func httpGet(url string) (string, string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", "", fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	return string(body), resp.Header.Get("Content-Type"), nil
}
