package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/gamma"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunWithFileInit(t *testing.T) {
	path := writeTemp(t, "min.gamma", `
init {[5], [2], [9], [4]}
R = replace (x, y) by x where x < y
`)
	if err := run(path, gamma.Options{Workers: 1, MaxSteps: 1000}, "", true, true, false); err != nil {
		t.Fatal(err)
	}
	if err := run(path, gamma.Options{Workers: 1, MaxSteps: 1000}, "", false, false, true); err != nil {
		t.Fatalf("profile mode: %v", err)
	}
}

func TestRunWithFlagInit(t *testing.T) {
	path := writeTemp(t, "ex1.gamma", `
R1 = replace [id1, 'A1'], [id2, 'B1'] by [id1 + id2, 'B2']
`)
	if err := run(path, gamma.Options{Workers: 2, Seed: 1, MaxSteps: 1000}, `{[1,'A1'],[5,'B1']}`, false, false, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("/nonexistent.gamma", gamma.Options{Workers: 1}, "", false, false, false); err == nil {
		t.Error("missing file should error")
	}
	bad := writeTemp(t, "bad.gamma", "replace")
	if err := run(bad, gamma.Options{Workers: 1}, "", false, false, false); err == nil {
		t.Error("parse error should surface")
	}
	noInit := writeTemp(t, "noinit.gamma", "R = replace [x, 'a'] by [x, 'b']")
	if err := run(noInit, gamma.Options{Workers: 1}, "", false, false, false); err == nil {
		t.Error("missing init should error")
	}
	if err := run(noInit, gamma.Options{Workers: 1}, "{bad", false, false, false); err == nil {
		t.Error("bad -init should error")
	}
	diverge := writeTemp(t, "div.gamma", `
init {[0, 'a']}
R = replace [x, 'a'] by [x + 1, 'a']
`)
	if err := run(diverge, gamma.Options{Workers: 1, MaxSteps: 10}, "", false, false, false); err == nil {
		t.Error("diverging program should hit maxsteps")
	}
}
