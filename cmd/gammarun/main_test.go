package main

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cli"
	"repro/internal/gamma"
	"repro/internal/replay"
	"repro/internal/rt"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunWithFileInit(t *testing.T) {
	path := writeTemp(t, "min.gamma", `
init {[5], [2], [9], [4]}
R = replace (x, y) by x where x < y
`)
	if err := run(context.Background(), path, gamma.Options{Workers: 1, MaxSteps: 1000}, &cli.TelemetryFlags{}, "", true, true, false); err != nil {
		t.Fatal(err)
	}
	if err := run(context.Background(), path, gamma.Options{Workers: 1, MaxSteps: 1000}, &cli.TelemetryFlags{}, "", false, false, true); err != nil {
		t.Fatalf("profile mode: %v", err)
	}
}

func TestRunWithFlagInit(t *testing.T) {
	path := writeTemp(t, "ex1.gamma", `
R1 = replace [id1, 'A1'], [id2, 'B1'] by [id1 + id2, 'B2']
`)
	if err := run(context.Background(), path, gamma.Options{Workers: 2, Seed: 1, MaxSteps: 1000}, &cli.TelemetryFlags{}, `{[1,'A1'],[5,'B1']}`, false, false, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(context.Background(), "/nonexistent.gamma", gamma.Options{Workers: 1}, &cli.TelemetryFlags{}, "", false, false, false); err == nil {
		t.Error("missing file should error")
	}
	bad := writeTemp(t, "bad.gamma", "replace")
	if err := run(context.Background(), bad, gamma.Options{Workers: 1}, &cli.TelemetryFlags{}, "", false, false, false); err == nil {
		t.Error("parse error should surface")
	}
	noInit := writeTemp(t, "noinit.gamma", "R = replace [x, 'a'] by [x, 'b']")
	if err := run(context.Background(), noInit, gamma.Options{Workers: 1}, &cli.TelemetryFlags{}, "", false, false, false); err == nil {
		t.Error("missing init should error")
	}
	if err := run(context.Background(), noInit, gamma.Options{Workers: 1}, &cli.TelemetryFlags{}, "{bad", false, false, false); err == nil {
		t.Error("bad -init should error")
	}
	diverge := writeTemp(t, "div.gamma", `
init {[0, 'a']}
R = replace [x, 'a'] by [x + 1, 'a']
`)
	if err := run(context.Background(), diverge, gamma.Options{Workers: 1, MaxSteps: 10}, &cli.TelemetryFlags{}, "", false, false, false); err == nil {
		t.Error("diverging program should hit maxsteps")
	}
}

// TestRecordReplayLoop drives the CLI's record/replay surface: a parallel
// run recorded with -trace-format schedule replays clean against the same
// file, and a schedule naming an unknown reaction diverges with exit-3
// classification.
func TestRecordReplayLoop(t *testing.T) {
	path := writeTemp(t, "ex1.gamma", `
init {[2,'A1'],[3,'A2'],[5,'B1'],[1,'B2']}
R1 = replace [a,'A1'], [b,'B1'] by [a+b,'C1']
R2 = replace [a,'A2'], [b,'B2'] by [a+b,'C2']
`)
	sched := filepath.Join(t.TempDir(), "sched.jsonl")
	tel := &cli.TelemetryFlags{Trace: sched, TraceFormat: "schedule", ScheduleKind: replay.KindGamma}
	if err := tel.Start(nil); err != nil {
		t.Fatal(err)
	}
	opt := gamma.Options{Workers: 4, Seed: 2, MaxSteps: 1000, Schedule: tel.Schedule()}
	if err := run(context.Background(), path, opt, tel, "", false, false, false); err != nil {
		t.Fatal(err)
	}
	if err := tel.Finish(); err != nil {
		t.Fatal(err)
	}

	if err := replayRun(path, sched, ""); err != nil {
		t.Fatalf("faithful replay: %v", err)
	}

	raw, err := os.ReadFile(sched)
	if err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(t.TempDir(), "bad.jsonl")
	if err := os.WriteFile(bad, []byte(strings.Replace(string(raw), `"name":"R1"`, `"name":"RX"`, 1)), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := replayRun(path, bad, ""); !errors.Is(err, rt.ErrInvalid) {
		t.Errorf("divergent replay err = %v, want ErrInvalid", err)
	}

	if err := replayRun(path, "/nonexistent.jsonl", ""); err == nil {
		t.Error("missing schedule should error")
	}
	garbage := writeTemp(t, "junk.jsonl", "junk\n")
	if err := replayRun(path, garbage, ""); !errors.Is(err, rt.ErrParse) {
		t.Errorf("junk schedule err = %v, want ErrParse", err)
	}
}

func TestRunClassifiesErrors(t *testing.T) {
	bad := writeTemp(t, "bad.gamma", "replace")
	if err := run(context.Background(), bad, gamma.Options{Workers: 1}, &cli.TelemetryFlags{}, "", false, false, false); !errors.Is(err, rt.ErrParse) {
		t.Errorf("parse error not classified: %v", err)
	}
	diverge := writeTemp(t, "div.gamma", `
init {[0, 'a']}
R = replace [x, 'a'] by [x + 1, 'a']
`)
	if err := run(context.Background(), diverge, gamma.Options{Workers: 1, MaxSteps: 10}, &cli.TelemetryFlags{}, "", false, false, false); !errors.Is(err, rt.ErrMaxSteps) {
		t.Errorf("budget error not classified: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := run(ctx, diverge, gamma.Options{Workers: 1}, &cli.TelemetryFlags{}, "", false, false, false); !errors.Is(err, rt.ErrCanceled) {
		t.Errorf("canceled run not classified: %v", err)
	}
}
