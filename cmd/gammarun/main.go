// Command gammarun executes a Gamma source file (Fig. 3 grammar) to its
// stable state and prints the resulting multiset and execution statistics.
//
// Usage:
//
//	gammarun [-workers N] [-seed S] [-maxsteps N] [-timeout D] [-stats] file.gamma
//
// The file may declare its initial multiset with an init { ... } statement
// and a composition expression (R1 | R2 ; R3); otherwise all reactions run
// in parallel composition over the multiset given with -init.
//
// The run is bounded by -timeout and canceled by SIGINT/SIGTERM; exit codes
// follow the shared taxonomy of package internal/cli (3 parse/invalid,
// 4 step budget, 5 canceled/deadline, 6 worker panic, ...).
//
// Record and replay: -trace sched.jsonl -trace-format schedule records the
// run's committed firing order as an executable schedule;
// -replay sched.jsonl re-executes that schedule step for step against the
// file's program and initial multiset, verifying each firing reproduces the
// recording, and prints a divergence report (exit 3) when it does not.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/cli"
	"repro/internal/gamma"
	"repro/internal/gammalang"
	"repro/internal/multiset"
	"repro/internal/profile"
	"repro/internal/replay"
	"repro/internal/rt"
	"repro/internal/schema"
	"repro/internal/telemetry"
)

func main() {
	workers := flag.Int("workers", 1, "parallel reaction executors (1 = sequential deterministic)")
	seed := flag.Int64("seed", 0, "seed for nondeterministic matching")
	maxSteps := flag.Int64("maxsteps", 1_000_000, "abort after this many reaction firings (0 = unlimited)")
	timeout := flag.Duration("timeout", 0, "abort the run after this long, e.g. 30s (0 = no deadline)")
	fullScan := flag.Bool("fullscan", false, "disable the incremental matching engine (probe every reaction after every firing)")
	initSet := flag.String("init", "", "initial multiset, e.g. \"{[1,'A1'],[5,'B1']}\" (overrides the file's init)")
	replayFile := flag.String("replay", "", "replay a recorded schedule (from -trace-format schedule) instead of running")
	stats := flag.Bool("stats", false, "print per-reaction firing counts")
	typecheck := flag.Bool("typecheck", false, "infer a Structured-Gamma-style schema, check the program and print it")
	prof := flag.Bool("profile", false, "print work/span/parallelism of the execution")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	blockProfile := flag.String("blockprofile", "", "write a goroutine blocking profile to this file at exit")
	mutexProfile := flag.String("mutexprofile", "", "write a mutex contention profile to this file at exit")
	var tel cli.TelemetryFlags
	tel.Register(flag.CommandLine)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: gammarun [flags] file.gamma")
		flag.PrintDefaults()
		os.Exit(cli.ExitUsage)
	}
	spec := cli.ProfileSpec{CPU: *cpuProfile, Mem: *memProfile, Block: *blockProfile, Mutex: *mutexProfile}
	profStop, err := spec.Start()
	if err != nil {
		cli.Exit("gammarun", err)
	}
	tel.ScheduleKind = replay.KindGamma
	if err := tel.Start(multiset.PrettyKey); err != nil {
		profStop()
		cli.Exit("gammarun", err)
	}
	ctx, stop := cli.Context(*timeout)
	opt := gamma.Options{Workers: *workers, Seed: *seed, MaxSteps: *maxSteps, FullScan: *fullScan, Recorder: tel.Recorder()}
	if s := tel.Schedule(); s != nil {
		opt.Schedule = s
	}
	if *replayFile != "" {
		err = replayRun(flag.Arg(0), *replayFile, *initSet)
	} else {
		err = run(ctx, flag.Arg(0), opt, &tel, *initSet, *stats, *typecheck, *prof)
	}
	stop()
	if terr := tel.Finish(); err == nil {
		err = terr
	}
	profStop()
	cli.Exit("gammarun", err)
}

// replayRun re-executes a recorded schedule against the program and initial
// multiset of path, step for step. A staged composition replays against the
// union of its stages' reactions — the schedule's firing order already
// respects the stage boundaries it was recorded under.
func replayRun(path, schedPath, initSet string) error {
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	file, err := gammalang.ParseFile(string(src))
	if err != nil {
		return err
	}
	m := file.Init
	if initSet != "" {
		m, err = multiset.Parse(initSet)
		if err != nil {
			return rt.Mark(rt.ErrParse, err)
		}
	}
	if m == nil {
		return fmt.Errorf("no initial multiset: declare init {...} in the file or pass -init")
	}
	plan, err := file.Plan(path)
	if err != nil {
		return err
	}
	var reactions []*gamma.Reaction
	for _, stage := range plan.Stages {
		reactions = append(reactions, stage.Reactions...)
	}
	prog, err := gamma.NewProgram(path, reactions...)
	if err != nil {
		return err
	}
	sf, err := os.Open(schedPath)
	if err != nil {
		return err
	}
	sched, err := replay.Parse(sf)
	sf.Close()
	if err != nil {
		return err
	}
	res, err := replay.ReplayGamma(prog, m, sched)
	if err != nil {
		return err
	}
	if res.Divergence != nil {
		fmt.Fprintln(os.Stderr, res.Divergence)
		return rt.Mark(rt.ErrInvalid, fmt.Errorf("replay diverged at step %d (%s)", res.Divergence.Step, res.Divergence.Reason))
	}
	fmt.Println(res.Final)
	fmt.Printf("replayed steps=%d stable=%v\n", res.Steps, res.Stable)
	return nil
}

func run(ctx context.Context, path string, opt gamma.Options, tel *cli.TelemetryFlags, initSet string, stats, typecheck, prof bool) error {
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	file, err := gammalang.ParseFile(string(src))
	if err != nil {
		return err
	}
	m := file.Init
	if initSet != "" {
		m, err = multiset.Parse(initSet)
		if err != nil {
			return rt.Mark(rt.ErrParse, err)
		}
	}
	if m == nil {
		return fmt.Errorf("no initial multiset: declare init {...} in the file or pass -init")
	}
	plan, err := file.Plan(path)
	if err != nil {
		return err
	}
	if typecheck {
		all, err := gamma.NewProgram(path, file.Reactions...)
		if err != nil {
			return err
		}
		sch, err := schema.Infer(all, m)
		if err != nil {
			return fmt.Errorf("typecheck: %w", err)
		}
		if err := sch.Check(all, m); err != nil {
			return fmt.Errorf("typecheck: %w", err)
		}
		fmt.Print(sch)
		hint, why := gamma.AnalyzeTermination(all)
		fmt.Printf("termination: %s (%s)\n", hint, why)
		if dead := gamma.DeadReactions(all, m); len(dead) > 0 {
			fmt.Printf("warning: reactions that can never fire: %v\n", dead)
		}
	}
	var col *profile.Collector
	var tracers []telemetry.Tracer
	if prof {
		col = profile.NewCollector()
		tracers = append(tracers, col)
	}
	if p := tel.Provenance(); p != nil {
		tracers = append(tracers, p)
	}
	if tr := telemetry.MultiTracer(tracers...); tr != nil {
		opt.Tracer = tr
	}
	st, err := plan.RunContext(ctx, m, opt)
	if err != nil {
		if st != nil {
			// Early exit: report the partial work so an interrupted run is
			// still diagnosable.
			fmt.Fprintf(os.Stderr, "partial: steps=%d probes=%d conflicts=%d retries=%d\n",
				st.Steps, st.Probes, st.Conflicts, st.Retries)
		}
		return err
	}
	fmt.Println(m)
	fmt.Printf("steps=%d probes=%d conflicts=%d retries=%d workers=%d\n", st.Steps, st.Probes, st.Conflicts, st.Retries, st.Workers)
	if col != nil {
		fmt.Println("profile:", col.Report())
	}
	if stats {
		names := make([]string, 0, len(st.Fired))
		for name := range st.Fired {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Printf("  %s fired %d\n", name, st.Fired[name])
		}
	}
	return nil
}
