package client

import (
	"bytes"
	"context"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/paper"
	"repro/internal/rt"
	"repro/internal/schema"
	"repro/internal/service"
)

func newPair(t *testing.T, cfg service.Config) *Client {
	t.Helper()
	s := service.New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	c := New(ts.URL)
	c.HTTPClient = ts.Client()
	return c
}

// TestClientRoundTrip drives async submit + Wait and the error taxonomy
// through the typed client.
func TestClientRoundTrip(t *testing.T) {
	c := newPair(t, service.Config{Pool: 2})
	ctx := context.Background()

	resp, err := c.Submit(ctx, NewGammaRequest(
		paper.Example1GammaListing, paper.Example1InitialMultiset,
		RunSpec{MaxSteps: 10000}))
	if err != nil {
		t.Fatal(err)
	}
	final, err := c.Wait(ctx, resp.ID, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != schema.StateDone || final.Result.Steps != 3 {
		t.Fatalf("final = %+v", final)
	}

	// A truncated divergent run reconstructs ErrMaxSteps client-side.
	_, err = c.Run(ctx, NewGammaRequest(
		`R = replace [x, 'G'] by [x + 1, 'G']`, `{[0, 'G']}`, RunSpec{MaxSteps: 50}))
	if !errors.Is(err, rt.ErrMaxSteps) {
		t.Fatalf("divergent err = %v, want ErrMaxSteps", err)
	}
}

// TestClientTraceAndStats drives the 1.2 trace surface through the typed
// client: a traced run's stats report firings equal to steps, all three
// trace formats download, and the untraced/unknown failure modes
// reconstruct taxonomy errors.
func TestClientTraceAndStats(t *testing.T) {
	c := newPair(t, service.Config{Pool: 2})
	ctx := context.Background()

	resp, err := c.Run(ctx, NewGammaRequest(
		paper.Example1GammaListing, paper.Example1InitialMultiset,
		RunSpec{Engine: schema.EngineSeq, MaxSteps: 10000, Trace: true}))
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats(ctx, resp.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Traced || st.Firings != st.Steps || st.Steps != resp.Result.Steps {
		t.Fatalf("stats = %+v, want traced with firings == steps == %d", st, resp.Result.Steps)
	}
	for _, format := range []string{"", TracePerfetto, TraceJSONL, TraceDOT} {
		data, err := c.Trace(ctx, resp.ID, format)
		if err != nil || len(data) == 0 {
			t.Errorf("Trace(%q) = %d bytes, %v", format, len(data), err)
		}
	}

	// Untraced run: stats say traced=false, the trace itself is an error.
	plain, err := c.Run(ctx, NewGammaRequest(
		paper.Example1GammaListing, paper.Example1InitialMultiset, RunSpec{MaxSteps: 10000}))
	if err != nil {
		t.Fatal(err)
	}
	if st, err := c.Stats(ctx, plain.ID); err != nil || st.Traced {
		t.Errorf("untraced stats = %+v, %v", st, err)
	}
	if _, err := c.Trace(ctx, plain.ID, ""); err == nil {
		t.Error("Trace of an untraced run succeeded")
	}
	if _, err := c.Trace(ctx, "r-999", ""); err == nil {
		t.Error("Trace of an unknown run succeeded")
	}
}

// TestClientReplay drives the 1.3 replay surface end to end through the
// typed client: TraceTo streams the schedule export byte-identically to
// Trace, Replay confirms the recorded run stable against the same program,
// and a corrupted schedule comes back as a structured divergence, not an
// error.
func TestClientReplay(t *testing.T) {
	c := newPair(t, service.Config{Pool: 2})
	ctx := context.Background()

	program := paper.Example1GammaListing
	init := paper.Example1InitialMultiset
	resp, err := c.Run(ctx, NewGammaRequest(program, init,
		RunSpec{Engine: schema.EngineSeq, MaxSteps: 10000, Trace: true}))
	if err != nil {
		t.Fatal(err)
	}

	sched, err := c.Trace(ctx, resp.ID, TraceSchedule)
	if err != nil || len(sched) == 0 {
		t.Fatalf("Trace(schedule) = %d bytes, %v", len(sched), err)
	}
	var streamed bytes.Buffer
	if err := c.TraceTo(ctx, resp.ID, TraceSchedule, &streamed); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(streamed.Bytes(), sched) {
		t.Errorf("TraceTo streamed %d bytes != Trace's %d", streamed.Len(), len(sched))
	}
	if err := c.TraceTo(ctx, "r-999", TraceSchedule, &streamed); err == nil {
		t.Error("TraceTo of an unknown run succeeded")
	}

	rep, err := c.Replay(ctx, NewGammaReplayRequest(program, init, string(sched)))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Divergence != nil || !rep.Stable {
		t.Fatalf("faithful replay: %+v", rep)
	}
	if rep.Multiset != resp.Result.Multiset || int64(rep.Steps) != resp.Result.Steps {
		t.Errorf("replay state (%d steps, %q) != run (%d, %q)",
			rep.Steps, rep.Multiset, resp.Result.Steps, resp.Result.Multiset)
	}

	// Corrupt one produced key: the divergence report crosses the wire typed.
	corrupt := strings.Replace(string(sched), `"produced":["`, `"produced":["9999`, 1)
	rep, err = c.Replay(ctx, NewGammaReplayRequest(program, init, corrupt))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Divergence == nil || rep.Divergence.Step == 0 || rep.Divergence.Reason == "" {
		t.Fatalf("corrupted replay divergence = %+v", rep.Divergence)
	}

	// An unparseable schedule is an error, not a divergence.
	if _, err := c.Replay(ctx, NewGammaReplayRequest(program, init, "junk\n")); !errors.Is(err, rt.ErrParse) {
		t.Errorf("junk schedule err = %v, want ErrParse", err)
	}
}

// TestClientBusy pins the 429 → BusyError mapping.
func TestClientBusy(t *testing.T) {
	c := newPair(t, service.Config{Pool: 1, Quota: service.Quota{MaxConcurrent: 1}})
	c.APIKey = "k"
	ctx := context.Background()

	first, err := c.Submit(ctx, NewGammaRequest(
		`R = replace [x, 'G'] by [x + 1, 'G']`, `{[0, 'G']}`, RunSpec{}))
	if err != nil {
		t.Fatal(err)
	}
	var busy *BusyError
	if _, err := c.Submit(ctx, NewGammaRequest(
		`R = replace [x, 'G'] by [x + 1, 'G']`, `{[0, 'G']}`, RunSpec{})); !errors.As(err, &busy) {
		t.Fatalf("second submit err = %v, want BusyError", err)
	}
	if busy.RetryAfter <= 0 {
		t.Errorf("BusyError.RetryAfter = %v, want > 0", busy.RetryAfter)
	}
	if _, err := c.Cancel(ctx, first.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, first.ID, time.Millisecond); !errors.Is(err, rt.ErrCanceled) {
		t.Fatalf("canceled wait err = %v, want ErrCanceled", err)
	}
}
