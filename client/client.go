// Package client is the typed Go client for gammad, the networked Gamma
// service (cmd/gammad). It speaks the versioned v1 wire format of
// internal/schema and reconstructs the runtime error taxonomy from wire
// codes, so errors.Is(err, gammaflow.ErrMaxSteps) works on remote runs
// exactly as on in-process ones.
//
//	c := client.New("http://localhost:8080")
//	resp, err := c.Run(ctx, client.NewGammaRequest(program, init,
//	    client.RunSpec{MaxSteps: 10000}))
//	fmt.Println(resp.Result.Multiset)
package client

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/schema"
)

// Aliases re-export the wire types so callers need only this package.
type (
	RunSpec        = schema.RunSpec
	RunRequest     = schema.RunRequest
	RunResponse    = schema.RunResponse
	RunResult      = schema.RunResult
	RunStats       = schema.RunStats
	Health         = schema.Health
	WireError      = schema.WireError
	ReplayRequest  = schema.ReplayRequest
	ReplayResponse = schema.ReplayResponse
	WireDivergence = schema.WireDivergence
)

// Trace formats accepted by Trace and TraceTo (wire minor 1.2; TraceSchedule
// is minor 1.3).
const (
	TracePerfetto = "perfetto"
	TraceJSONL    = "jsonl"
	TraceDOT      = "dot"
	// TraceSchedule is the executable replay schedule: feed it back through
	// Replay to re-execute the recorded run deterministically.
	TraceSchedule = "schedule"
)

// NewGammaRequest and NewGraphRequest build v1 run envelopes;
// NewGammaReplayRequest and NewGraphReplayRequest build the 1.3 replay
// envelopes for Replay.
var (
	NewGammaRequest       = schema.NewGammaRequest
	NewGraphRequest       = schema.NewGraphRequest
	NewGammaReplayRequest = schema.NewGammaReplayRequest
	NewGraphReplayRequest = schema.NewGraphReplayRequest
)

// BusyError is the client-side face of an admission-control rejection
// (HTTP 429): back off for RetryAfter and resubmit.
type BusyError struct {
	// RetryAfter is the server's suggested backoff.
	RetryAfter time.Duration
	// Message is the server's rejection reason.
	Message string
}

func (e *BusyError) Error() string {
	return fmt.Sprintf("gammad busy (retry after %s): %s", e.RetryAfter, e.Message)
}

// Client talks to one gammad instance. The zero value is not usable; call
// New. Clients are safe for concurrent use.
type Client struct {
	// BaseURL is the server root, e.g. "http://localhost:8080".
	BaseURL string
	// APIKey, when set, is sent as the bearer token and names the tenant.
	APIKey string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
}

// New returns a client for the gammad at baseURL.
func New(baseURL string) *Client {
	return &Client{BaseURL: baseURL, HTTPClient: http.DefaultClient}
}

// Submit enqueues a run asynchronously and returns its pending envelope;
// poll with Get or Wait. Admission rejections return *BusyError.
func (c *Client) Submit(ctx context.Context, req RunRequest) (*RunResponse, error) {
	return c.post(ctx, "/v1/runs", req)
}

// Run submits synchronously: one round trip to the run's terminal state.
// A failed run returns both the response envelope and the reconstructed
// error (errors.Is-compatible with the rt taxonomy).
func (c *Client) Run(ctx context.Context, req RunRequest) (*RunResponse, error) {
	return c.post(ctx, "/v1/runs?wait=true", req)
}

// Get polls one run.
func (c *Client) Get(ctx context.Context, id string) (*RunResponse, error) {
	return c.do(ctx, "GET", "/v1/runs/"+id, nil)
}

// Cancel asks the server to stop a run.
func (c *Client) Cancel(ctx context.Context, id string) (*RunResponse, error) {
	return c.do(ctx, "DELETE", "/v1/runs/"+id, nil)
}

// Wait polls a run every interval (default 10ms) until it is terminal or
// ctx expires.
func (c *Client) Wait(ctx context.Context, id string, interval time.Duration) (*RunResponse, error) {
	if interval <= 0 {
		interval = 10 * time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		resp, err := c.Get(ctx, id)
		if err != nil {
			return resp, err
		}
		if schema.TerminalState(resp.State) {
			return resp, resp.Error.Err()
		}
		select {
		case <-ctx.Done():
			return resp, ctx.Err()
		case <-tick.C:
		}
	}
}

// Stats fetches a terminal run's execution accounting (wire minor 1.2):
// steps, wall and queue-wait times, and — when the run was traced — the
// recorder's event/drop counts, private counters and the provenance firing
// count (equal to Steps on a traced sequential run). 409 while the run still
// executes surfaces as an error; poll Wait first.
func (c *Client) Stats(ctx context.Context, id string) (*RunStats, error) {
	hreq, err := http.NewRequestWithContext(ctx, "GET", c.BaseURL+"/v1/runs/"+id+"/stats", nil)
	if err != nil {
		return nil, err
	}
	body, hres, err := c.roundTrip(hreq)
	if err != nil {
		return nil, err
	}
	if hres.StatusCode != http.StatusOK {
		return nil, c.statusErr(body, hres)
	}
	return schema.DecodeRunStats(body)
}

// Trace fetches a traced terminal run's trace (wire minor 1.2) in the given
// format: TracePerfetto (default when empty), TraceJSONL, TraceDOT or
// TraceSchedule. The bytes are the export verbatim — write them to a file
// and load them in the matching viewer. 404 for untraced runs, 409 while the
// run executes.
func (c *Client) Trace(ctx context.Context, id, format string) ([]byte, error) {
	var buf bytes.Buffer
	if err := c.TraceTo(ctx, id, format, &buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// TraceTo streams a traced terminal run's trace straight into w — the
// export never lives wholly in client memory, which is what a CLI piping a
// large JSONL trace to a file wants. Same formats and error surface as
// Trace. Nothing is written to w on a non-200 response.
func (c *Client) TraceTo(ctx context.Context, id, format string, w io.Writer) error {
	path := "/v1/runs/" + id + "/trace"
	if format != "" {
		path += "?format=" + format
	}
	hreq, err := http.NewRequestWithContext(ctx, "GET", c.BaseURL+path, nil)
	if err != nil {
		return err
	}
	if c.APIKey != "" {
		hreq.Header.Set("Authorization", "Bearer "+c.APIKey)
	}
	hc := c.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	hres, err := hc.Do(hreq)
	if err != nil {
		return err
	}
	defer hres.Body.Close()
	if hres.StatusCode != http.StatusOK {
		body, err := io.ReadAll(hres.Body)
		if err != nil {
			return err
		}
		return c.statusErr(body, hres)
	}
	_, err = io.Copy(w, hres.Body)
	return err
}

// Replay submits a recorded schedule for sequential re-execution against a
// program and initial state (wire minor 1.3): fetch a traced run's schedule
// with Trace(id, TraceSchedule), then replay it here. The response carries
// either the confirmed stable state or a structured Divergence naming the
// first step whose consumed elements or products differ; only unusable
// submissions error.
func (c *Client) Replay(ctx context.Context, req ReplayRequest) (*ReplayResponse, error) {
	payload, err := req.Encode()
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, "POST", c.BaseURL+"/v1/replay", bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	body, hres, err := c.roundTrip(hreq)
	if err != nil {
		return nil, err
	}
	if hres.StatusCode != http.StatusOK {
		return nil, c.statusErr(body, hres)
	}
	return schema.DecodeReplayResponse(body)
}

// statusErr reconstructs the taxonomy error a non-200 trace/stats response
// carries (the body is a RunResponse error envelope).
func (c *Client) statusErr(body []byte, hres *http.Response) error {
	if resp, err := schema.DecodeRunResponse(body); err == nil && resp.Error != nil {
		return resp.Error.Err()
	}
	return fmt.Errorf("gammad: status %d", hres.StatusCode)
}

// Health fetches the server's load snapshot.
func (c *Client) Health(ctx context.Context) (*Health, error) {
	hreq, err := http.NewRequestWithContext(ctx, "GET", c.BaseURL+"/v1/healthz", nil)
	if err != nil {
		return nil, err
	}
	body, _, err := c.roundTrip(hreq)
	if err != nil {
		return nil, err
	}
	return schema.DecodeHealth(body)
}

func (c *Client) post(ctx context.Context, path string, req RunRequest) (*RunResponse, error) {
	payload, err := req.Encode()
	if err != nil {
		return nil, err
	}
	return c.do(ctx, "POST", path, payload)
}

func (c *Client) do(ctx context.Context, method, path string, payload []byte) (*RunResponse, error) {
	var body io.Reader
	if payload != nil {
		body = bytes.NewReader(payload)
	}
	hreq, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, body)
	if err != nil {
		return nil, err
	}
	if payload != nil {
		hreq.Header.Set("Content-Type", "application/json")
	}
	raw, hres, err := c.roundTrip(hreq)
	if err != nil {
		return nil, err
	}
	resp, err := schema.DecodeRunResponse(raw)
	if err != nil {
		return nil, fmt.Errorf("gammad: bad response (status %d): %w", hres.StatusCode, err)
	}
	if hres.StatusCode == http.StatusTooManyRequests {
		after, _ := strconv.Atoi(hres.Header.Get("Retry-After"))
		msg := ""
		if resp.Error != nil {
			msg = resp.Error.Message
		}
		return resp, &BusyError{RetryAfter: time.Duration(after) * time.Second, Message: msg}
	}
	// Terminal failures carry the reconstructed taxonomy error; submissions
	// and polls of healthy runs return a nil error.
	return resp, resp.Error.Err()
}

func (c *Client) roundTrip(hreq *http.Request) ([]byte, *http.Response, error) {
	if c.APIKey != "" {
		hreq.Header.Set("Authorization", "Bearer "+c.APIKey)
	}
	hc := c.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	hres, err := hc.Do(hreq)
	if err != nil {
		return nil, nil, err
	}
	defer hres.Body.Close()
	raw, err := io.ReadAll(hres.Body)
	if err != nil {
		return nil, hres, err
	}
	return raw, hres, nil
}
