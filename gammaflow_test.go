package gammaflow

import (
	"strings"
	"testing"

	"repro/internal/paper"
)

// TestPublicAPIQuickstart is the README quick-start, end to end through the
// façade only.
func TestPublicAPIQuickstart(t *testing.T) {
	g, err := CompileSource("ex1", `
		int x = 1; int y = 5; int k = 3; int j = 2; int m;
		m = (x + y) - (k * j);`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunGraph(g, GraphOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if m, ok := res.Output("m"); !ok || m != Int(0) {
		t.Fatalf("m = %v, want 0", m)
	}
	prog, init, err := ToGamma(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunProgram(prog, init, ProgramOptions{}); err != nil {
		t.Fatal(err)
	}
	out := OutputsFromMultiset(init, []string{"m"})
	if len(out["m"]) != 1 || out["m"][0].Val != Int(0) {
		t.Fatalf("gamma m = %v", out["m"])
	}
}

func TestPublicAPIGammaSource(t *testing.T) {
	prog, err := ParseProgram("min", `R = replace (x, y) by x where x < y`)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMultiset(ScalarElem(Int(5)), ScalarElem(Int(2)), ScalarElem(Int(9)))
	stats, err := RunProgram(prog, m, ProgramOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 1 || !m.Contains(ScalarElem(Int(2))) || stats.Steps != 2 {
		t.Fatalf("result = %s, steps = %d", m, stats.Steps)
	}
	if !strings.Contains(FormatProgram(prog), "replace") {
		t.Error("FormatProgram output malformed")
	}
}

func TestPublicAPIEquivalence(t *testing.T) {
	rep, err := CheckEquivalence(RandomGraph(11, 3, 16), EquivOptions{MaxSteps: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Equivalent {
		t.Fatalf("mismatches: %v", rep.Mismatches)
	}
}

func TestPublicAPIRoundTrip(t *testing.T) {
	g := paper.Fig2GraphObservable(10, 4, 3)
	prog, init, err := ToGamma(g)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ProgramToGraph("back", prog, init.Clone())
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunGraph(back, GraphOptions{RunConfig: RunConfig{RunSpec: RunSpec{MaxSteps: 100000}}})
	if err != nil {
		t.Fatal(err)
	}
	if x, ok := res.Output("xout"); !ok || x != Int(22) {
		t.Fatalf("xout = %v, want 22", x)
	}
}

func TestPublicAPIGraphFormats(t *testing.T) {
	g := paper.Fig1Graph()
	text := MarshalGraph(g)
	back, err := UnmarshalGraph(text)
	if err != nil {
		t.Fatal(err)
	}
	if MarshalGraph(back) != text {
		t.Error("dfir round trip not canonical")
	}
	if !strings.Contains(GraphToDOT(g), "digraph") {
		t.Error("DOT export malformed")
	}
}

func TestPublicAPIReduceAndReuse(t *testing.T) {
	prog, err := ParseProgram("ex1", paper.Example1GammaListing)
	if err != nil {
		t.Fatal(err)
	}
	reduced, fused, err := Reduce(prog)
	if err != nil || fused != 2 || len(reduced.Reactions) != 1 {
		t.Fatalf("reduce: %v fused=%d", err, fused)
	}
	tbl := NewReuseTable(0)
	m, err := ParseMultiset(paper.Example1InitialMultiset)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunProgram(reduced, m, ProgramOptions{Memo: tbl}); err != nil {
		t.Fatal(err)
	}
	if tbl.Stats().Stores == 0 {
		t.Error("reuse table unused")
	}
}
