// Analysis: the cross-model benefits the paper's introduction promises, on
// one program — a Gamma source is type-checked (Structured-Gamma style),
// profiled for available parallelism (the dataflow-analysis benefit [2]),
// executed with trace reuse (DF-DTM [3]), and finally reduced (§III-A3),
// with the profiler quantifying what the reduction traded away.
package main

import (
	"fmt"
	"log"

	gammaflow "repro"
)

// Eight independent instances of the paper's Example-1 expression.
const src = `
init {
  [1, 'A1'], [5, 'B1'], [3, 'C1'], [2, 'D1'],
  [2, 'A1'], [5, 'B1'], [3, 'C1'], [2, 'D1'],
  [3, 'A1'], [5, 'B1'], [3, 'C1'], [2, 'D1'],
  [4, 'A1'], [5, 'B1'], [3, 'C1'], [2, 'D1'],
  [5, 'A1'], [5, 'B1'], [3, 'C1'], [2, 'D1'],
  [6, 'A1'], [5, 'B1'], [3, 'C1'], [2, 'D1'],
  [7, 'A1'], [5, 'B1'], [3, 'C1'], [2, 'D1'],
  [8, 'A1'], [5, 'B1'], [3, 'C1'], [2, 'D1']
}
R1 = replace [id1, 'A1'], [id2, 'B1'] by [id1 + id2, 'B2']
R2 = replace [id1, 'C1'], [id2, 'D1'] by [id1 * id2, 'C2']
R3 = replace [id1, 'B2'], [id2, 'C2'] by [id1 - id2, 'm']
`

func main() {
	file, err := gammaflow.ParseGammaFile(src)
	if err != nil {
		log.Fatal(err)
	}
	prog, err := file.Program("example1x8")
	if err != nil {
		log.Fatal(err)
	}

	// 1. Static typing: infer the per-label schema and check the program.
	sch, err := gammaflow.InferSchema(prog, file.Init)
	if err != nil {
		log.Fatal(err)
	}
	if err := sch.Check(prog, file.Init); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("inferred schema (Structured-Gamma style):\n%s\n", sch)

	// 2. Profile the full program: work, critical path, parallelism.
	col := gammaflow.NewProfileCollector()
	reuseTable := gammaflow.NewReuseTable(0)
	m := file.Init.Clone()
	stats, err := gammaflow.RunProgram(prog, m, gammaflow.ProgramOptions{
		RunConfig: gammaflow.RunConfig{Tracer: col}, Memo: reuseTable,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("full program:    %s\n", col.Report())
	fmt.Printf("reuse:           %s (identical B1*C1*D1 sub-computations repeat across instances)\n",
		reuseTable.Stats())
	mCount := 0
	for _, c := range m.ByLabel("m") {
		mCount += c.N
	}
	fmt.Printf("results:         %d m-elements in %d reactions\n\n", mCount, stats.Steps)

	// 3. Reduce to Rd1 and profile again: one firing per instance, span 1 —
	// the §III-A3 trade-off measured.
	reduced, fused, err := gammaflow.Reduce(prog)
	if err != nil {
		log.Fatal(err)
	}
	col2 := gammaflow.NewProfileCollector()
	m2 := file.Init.Clone()
	if _, err := gammaflow.RunProgram(reduced, m2, gammaflow.ProgramOptions{RunConfig: gammaflow.RunConfig{Tracer: col2}}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after reduction: %d fusions -> %s\n", fused, gammaflow.FormatProgram(reduced))
	fmt.Printf("reduced profile: %s\n", col2.Report())
	fmt.Println("\nthe reduction shrinks span per instance to 1 but halves peak parallelism —")
	fmt.Println("exactly the paper's granularity observation, measured")
}
