// Primes: the classic Gamma sieve, the canonical multiset-rewriting program
// from Banâtre & Le Métayer's original presentation. Starting from
// {2, 3, ..., N}, one reaction erases every multiple:
//
//	R = replace (x, y) by y where x % y == 0 and x != y
//
// The stable multiset is exactly the primes up to N. The example runs the
// sieve sequentially and in parallel, then shows the same program written in
// a file with an init declaration.
package main

import (
	"fmt"
	"log"
	"sort"

	gammaflow "repro"
)

const n = 60

func main() {
	prog, err := gammaflow.ParseProgram("sieve",
		`R = replace (x, y) by y where x % y == 0 and x != y`)
	if err != nil {
		log.Fatal(err)
	}

	build := func() *gammaflow.Multiset {
		m := gammaflow.NewMultiset()
		for i := int64(2); i <= n; i++ {
			m.Add(gammaflow.ScalarElem(gammaflow.Int(i)))
		}
		return m
	}

	m := build()
	stats, err := gammaflow.RunProgram(prog, m, gammaflow.ProgramOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("primes up to %d (%d erasure reactions):\n  %v\n", n, stats.Steps, collect(m))

	// The nondeterministic parallel runtime reaches the same stable state.
	m = build()
	if _, err := gammaflow.RunProgram(prog, m, gammaflow.ProgramOptions{RunConfig: gammaflow.RunConfig{RunSpec: gammaflow.RunSpec{Workers: 4, Seed: 11}}}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parallel run agrees: %v\n", collect(m))

	// The same program as a self-contained source file.
	file, err := gammaflow.ParseGammaFile(`
		init {[2], [3], [4], [5], [6], [7], [8], [9], [10], [11], [12]}
		R = replace (x, y) by y where x % y == 0 and x != y
	`)
	if err != nil {
		log.Fatal(err)
	}
	plan, err := file.Plan("sieve")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := gammaflow.RunPlan(plan, file.Init, gammaflow.ProgramOptions{}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("file form, up to 12: %v\n", collect(file.Init))
}

// collect lists the multiset's integers in order.
func collect(m *gammaflow.Multiset) []int64 {
	var out []int64
	m.ForEach(func(t gammaflow.Tuple, n int) bool {
		for i := 0; i < n; i++ {
			out = append(out, t.Value().AsInt())
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
