// Datafusion: a miniature of the Gamma data-fusion application the paper's
// authors built for target tracking (reference [1] of the paper). Sensor
// reports are multiset elements [position, track, scan]: several sensors
// observe each track at each radar scan, and a fusion reaction merges pairs
// of same-track, same-scan reports by averaging until one fused report per
// (track, scan) remains:
//
//	F = replace [p1, id, s], [p2, id, s] by [(p1 + p2) / 2, id, s]
//
// The shared label variable id and tag variable s are exactly the paper's
// tag-matching device: only reports of the same track and scan can react.
package main

import (
	"fmt"
	"log"
	"math/rand"

	gammaflow "repro"
)

func main() {
	fusion, err := gammaflow.ParseReaction(
		`F = replace [p1, id, s], [p2, id, s] by [(p1 + p2) / 2, id, s]`)
	if err != nil {
		log.Fatal(err)
	}
	prog, err := gammaflow.NewProgram("fusion", fusion)
	if err != nil {
		log.Fatal(err)
	}

	// Synthetic sensor feed: 3 tracks, 4 scans, 8 sensors per (track, scan).
	// Each sensor reads the true position plus bounded noise.
	rng := rand.New(rand.NewSource(1))
	truth := map[string]int64{"trk0": 1000, "trk1": 5000, "trk2": 9000}
	m := gammaflow.NewMultiset()
	reports := 0
	for scan := int64(0); scan < 4; scan++ {
		for trk, pos := range truth {
			for s := 0; s < 8; s++ {
				noisy := pos + scan*40 + int64(rng.Intn(21)-10)
				m.Add(gammaflow.Elem(gammaflow.Int(noisy), trk, scan))
				reports++
			}
		}
	}
	fmt.Printf("ingested %d sensor reports across %d tracks x 4 scans\n", reports, len(truth))

	stats, err := gammaflow.RunProgram(prog, m, gammaflow.ProgramOptions{RunConfig: gammaflow.RunConfig{RunSpec: gammaflow.RunSpec{Workers: 4, Seed: 3}}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fusion ran %d reactions on 4 workers (%d commit conflicts)\n\n",
		stats.Steps, stats.Conflicts)

	// One fused report per (track, scan) remains; repeated pairwise
	// averaging keeps each estimate within the sensors' noise envelope.
	for trk, pos := range truth {
		fmt.Printf("%s (true start %d):", trk, pos)
		for _, c := range m.ByLabel(trk) {
			tag, _ := c.Tuple.Tag()
			est := c.Tuple.Value().AsInt()
			want := pos + tag*40
			drift := est - want
			if drift < -10 || drift > 10 {
				log.Fatalf("%s scan %d: estimate %d drifted %d from %d", trk, tag, est, drift, want)
			}
			fmt.Printf("  scan%d=%d", tag, est)
		}
		fmt.Println()
	}
	fmt.Printf("\nstable multiset holds %d fused reports (expected %d)\n", m.Len(), len(truth)*4)
}
