// IoT: the paper's closing motivation — executing Gamma over a distributed
// multiset, the deployment style it envisions for Internet-of-Things
// environments (§IV future work). A fleet of simulated edge nodes each holds
// a shard of the multiset; sensor readings react locally where possible and
// diffuse between nodes until the global stable state is reached.
//
// The workload combines two reactions over edge telemetry:
//
//	AGG  = replace [t1, id, s], [t2, id, s] by [(t1 + t2) / 2, id, s]
//	           — fuse same-device, same-window temperature readings
//	ALRM = replace [t, id, s] by [t, 'alarm', s] if t > 90
//	           — escalate overheated fused readings to a global alarm label
//
// Executed with ALRM sequenced after AGG (the paper's ';' composition), so
// alarms fire on fused values rather than raw samples.
package main

import (
	"fmt"
	"log"
	"math/rand"

	gammaflow "repro"
)

func main() {
	file, err := gammaflow.ParseGammaFile(`
AGG  = replace [t1, id, s], [t2, id, s] by [(t1 + t2) / 2, id, s]
ALRM = replace [t, id, s] by [t, 'alarm', s] if t > 90 and id != 'alarm'
AGG ; ALRM
`)
	if err != nil {
		log.Fatal(err)
	}

	// Synthetic edge telemetry: 16 devices, 4 readings each in one window.
	// Devices 3 and 11 run hot.
	rng := rand.New(rand.NewSource(7))
	m := gammaflow.NewMultiset()
	for dev := 0; dev < 16; dev++ {
		base := int64(55 + rng.Intn(20))
		if dev == 3 || dev == 11 {
			base = 95
		}
		for r := 0; r < 4; r++ {
			m.Add(gammaflow.Elem(
				gammaflow.Int(base+int64(rng.Intn(5))),
				fmt.Sprintf("dev%02d", dev), 0))
		}
	}
	fmt.Printf("telemetry: %d readings from 16 devices\n", m.Len())

	// Stage 1 (AGG) then stage 2 (ALRM), each over an 8-node cluster.
	plan, err := file.Plan("edge")
	if err != nil {
		log.Fatal(err)
	}
	for stage, prog := range plan.Stages {
		cluster, err := gammaflow.NewCluster(prog, gammaflow.ClusterOptions{
			Nodes: 8, Seed: int64(stage + 1), WorkersPerNode: 2,
		})
		if err != nil {
			log.Fatal(err)
		}
		result, stats, err := cluster.Run(m)
		if err != nil {
			log.Fatal(err)
		}
		m = result
		fmt.Printf("stage %d (%s): %d reactions over %d rounds, %d element migrations\n",
			stage+1, prog.Name, stats.Steps, stats.Rounds, stats.Migrations)
	}

	alarms := 0
	for _, a := range m.ByLabel("alarm") {
		alarms += a.N // two devices may fuse to the same temperature
		for i := 0; i < a.N; i++ {
			fmt.Printf("  ALARM: fused temperature %s\n", a.Tuple.Value())
		}
	}
	fmt.Printf("\nstable state: %d elements, %d alarms\n", m.Len(), alarms)
	if alarms != 2 {
		log.Fatalf("expected alarms for exactly devices 3 and 11, got %d", alarms)
	}
}
