// Quickstart: the paper's Example 1 end to end through the public API —
// compile the von Neumann source to a dynamic dataflow graph, run it, convert
// it to Gamma with Algorithm 1, run the Gamma program, and check both agree.
package main

import (
	"fmt"
	"log"

	gammaflow "repro"
)

func main() {
	// The paper's first listing.
	g, err := gammaflow.CompileSource("example1", `
		int x = 1;
		int y = 5;
		int k = 3;
		int j = 2;
		int m;
		m = (x + y) - (k * j);
	`)
	if err != nil {
		log.Fatal(err)
	}

	// Execute on the dynamic dataflow runtime.
	res, err := gammaflow.RunGraph(g, gammaflow.GraphOptions{})
	if err != nil {
		log.Fatal(err)
	}
	m, _ := res.Output("m")
	fmt.Printf("dataflow:  m = %s  (%d vertex firings)\n", m, res.Firings)

	// Algorithm 1: graph -> Gamma program + initial multiset.
	prog, init, err := gammaflow.ToGamma(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nconverted Gamma program:\n%s\n", gammaflow.FormatProgram(prog))
	fmt.Printf("initial multiset: %s\n\n", init)

	// Execute on the Gamma runtime to the stable state.
	stats, err := gammaflow.RunProgram(prog, init, gammaflow.ProgramOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("gamma:     %s  (%d reaction firings)\n", init, stats.Steps)

	// The equivalence harness checks all of the above in one call.
	rep, err := gammaflow.CheckEquivalence(g, gammaflow.EquivOptions{MaxSteps: 10000})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("equivalent: %v (operator firings %d = reaction steps %d)\n",
		rep.Equivalent, rep.OperatorFirings, rep.ReactionSteps)
}
