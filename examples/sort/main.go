// Sort: the classic Gamma exchange sort, a standard example of multiset
// rewriting over structured elements. A sequence is represented as elements
// [value, index]; one reaction swaps the values of any out-of-order pair:
//
//	S = replace [a, i], [b, j] by [b, i], [a, j] if (i < j) and (a > b)
//
// The stable multiset is the sorted permutation. The example also converts
// the reaction to its dataflow subgraph (Algorithm 2) to show a swap as a
// steer network.
package main

import (
	"fmt"
	"log"
	"sort"

	gammaflow "repro"
)

func main() {
	swap, err := gammaflow.ParseReaction(
		`S = replace [a, i], [b, j] by [b, i], [a, j] if (i < j) and (a > b)`)
	if err != nil {
		log.Fatal(err)
	}
	prog, err := gammaflow.NewProgram("sort", swap)
	if err != nil {
		log.Fatal(err)
	}

	input := []int64{42, 7, 99, 3, 58, 12, 31, 77, 21, 64, 5, 88}
	m := gammaflow.NewMultiset()
	for idx, v := range input {
		// [value, index]: the index occupies the tuple's second field.
		m.Add(gammaflow.Tuple{gammaflow.Int(v), gammaflow.Int(int64(idx))})
	}

	stats, err := gammaflow.RunProgram(prog, m, gammaflow.ProgramOptions{RunConfig: gammaflow.RunConfig{RunSpec: gammaflow.RunSpec{Seed: 2}}})
	if err != nil {
		log.Fatal(err)
	}

	got := make([]int64, len(input))
	m.ForEach(func(t gammaflow.Tuple, n int) bool {
		got[t[1].AsInt()] = t[0].AsInt()
		return true
	})
	fmt.Printf("input:  %v\n", input)
	fmt.Printf("sorted: %v  (%d swap reactions)\n", got, stats.Steps)

	want := append([]int64(nil), input...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	for i := range want {
		if got[i] != want[i] {
			log.Fatalf("not sorted at %d: %v", i, got)
		}
	}

	// The parallel runtime performs independent swaps concurrently.
	m2 := gammaflow.NewMultiset()
	for idx, v := range input {
		m2.Add(gammaflow.Tuple{gammaflow.Int(v), gammaflow.Int(int64(idx))})
	}
	stats2, err := gammaflow.RunProgram(prog, m2, gammaflow.ProgramOptions{RunConfig: gammaflow.RunConfig{RunSpec: gammaflow.RunSpec{Workers: 4, Seed: 9}}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parallel run: %d swaps, %d conflicts, same fixpoint\n", stats2.Steps, stats2.Conflicts)

	// Algorithm 2 on the swap reaction: condition tree plus one steer per
	// routed operand.
	g, err := gammaflow.ReactionToGraph(swap)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nswap reaction as a dataflow subgraph:\n%s", gammaflow.MarshalGraph(g))
}
