// Minelement: Eq. 2 of the paper — selecting the smallest element of a
// multiset with a single reaction — executed three ways: on the Gamma
// runtime sequentially, in parallel, and through Algorithm 2's multiset
// mapping (Fig. 4), where every reaction application becomes a dataflow
// subgraph instance.
package main

import (
	"fmt"
	"log"

	gammaflow "repro"
)

func main() {
	// Eq. 2 verbatim (the parenthesized form with a where clause).
	r, err := gammaflow.ParseReaction(`R = replace (x, y) by x where x < y`)
	if err != nil {
		log.Fatal(err)
	}
	prog, err := gammaflow.NewProgram("min", r)
	if err != nil {
		log.Fatal(err)
	}

	vals := []int64{42, 7, 99, 3, 58, 12, 3, 77, 21, 64}
	build := func() *gammaflow.Multiset {
		m := gammaflow.NewMultiset()
		for _, v := range vals {
			m.Add(gammaflow.ScalarElem(gammaflow.Int(v)))
		}
		return m
	}

	// Sequential Gamma execution.
	m := build()
	stats, err := gammaflow.RunProgram(prog, m, gammaflow.ProgramOptions{})
	if err != nil {
		log.Fatal(err)
	}
	// Note: 3 appears twice in the input; Eq. 2's strict condition x < y
	// cannot react two equal elements, so a duplicated minimum survives
	// duplicated — faithful Gamma semantics.
	fmt.Printf("sequential gamma:   %s in %d reactions\n", m, stats.Steps)

	// Parallel, nondeterministic order — same stable state.
	m = build()
	stats, err = gammaflow.RunProgram(prog, m, gammaflow.ProgramOptions{RunConfig: gammaflow.RunConfig{RunSpec: gammaflow.RunSpec{Workers: 4, Seed: 7}}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parallel gamma:     %s in %d reactions (%d commit conflicts)\n",
		m, stats.Steps, stats.Conflicts)

	// Algorithm 2: the reaction becomes a comparison + steer subgraph; the
	// mapper instantiates it per match until the Γ fixpoint (Fig. 4).
	g, err := gammaflow.ReactionToGraph(r)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreaction subgraph (Algorithm 2):\n%s\n", gammaflow.MarshalGraph(g))
	m = build()
	mapRes, err := gammaflow.MapMultiset(r, m, gammaflow.GraphOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mapped execution:   %s using %d dataflow instances (%d firings)\n",
		m, mapRes.Instances, mapRes.Firings)
}
