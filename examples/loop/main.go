// Loop: the paper's Example 2 (Fig. 2) — a dynamic loop with steer and
// inctag vertices — compiled from source, executed in both models, converted
// back from Gamma to dataflow with the reaction classifier, and reduced.
package main

import (
	"fmt"
	"log"

	gammaflow "repro"
)

func main() {
	// for (i = z; i > 0; i--) x = x + y;  — observable via output x.
	g, err := gammaflow.CompileSource("example2", `
		int y = 4;
		int z = 3;
		int x = 10;
		int i;
		for (i = z; i > 0; i--) x = x + y;
		output x;
	`)
	if err != nil {
		log.Fatal(err)
	}

	res, err := gammaflow.RunGraph(g, gammaflow.GraphOptions{RunConfig: gammaflow.RunConfig{RunSpec: gammaflow.RunSpec{MaxSteps: 100000}}})
	if err != nil {
		log.Fatal(err)
	}
	x, _ := res.Output("x")
	fmt.Printf("dataflow: x = %s after the loop (expected 10 + 4*3 = 22)\n", x)

	// Algorithm 1 emits one reaction per vertex; the loop becomes the
	// R11-R19 structure of the paper's Example 2 (inctags increment the
	// iteration tag, steers branch on the i > 0 control element).
	prog, init, err := gammaflow.ToGamma(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nconverted program has %d reactions over %d initial elements\n",
		len(prog.Reactions), init.Len())

	work := init.Clone()
	stats, err := gammaflow.RunProgram(prog, work, gammaflow.ProgramOptions{RunConfig: gammaflow.RunConfig{RunSpec: gammaflow.RunSpec{MaxSteps: 100000}}})
	if err != nil {
		log.Fatal(err)
	}
	outs := gammaflow.OutputsFromMultiset(work, []string{"x"})
	fmt.Printf("gamma: x = %s in %d reaction firings\n", outs["x"][0].Val, stats.Steps)

	// And back: the classifier (the paper's future work) recognizes each
	// reaction's vertex kind and rebuilds an equivalent graph.
	back, err := gammaflow.ProgramToGraph("reconstructed", prog, init.Clone())
	if err != nil {
		log.Fatal(err)
	}
	res2, err := gammaflow.RunGraph(back, gammaflow.GraphOptions{RunConfig: gammaflow.RunConfig{RunSpec: gammaflow.RunSpec{MaxSteps: 100000}}})
	if err != nil {
		log.Fatal(err)
	}
	x2, _ := res2.Output("x")
	fmt.Printf("round trip (gamma -> dataflow): x = %s\n", x2)

	// Parallel execution of the same loop: 4 PEs, 4 Gamma workers.
	resP, err := gammaflow.RunGraph(g, gammaflow.GraphOptions{RunConfig: gammaflow.RunConfig{RunSpec: gammaflow.RunSpec{Workers: 4, MaxSteps: 100000}}})
	if err != nil {
		log.Fatal(err)
	}
	xp, _ := resP.Output("x")
	mp := init.Clone()
	if _, err := gammaflow.RunProgram(prog, mp, gammaflow.ProgramOptions{RunConfig: gammaflow.RunConfig{RunSpec: gammaflow.RunSpec{Workers: 4, Seed: 1, MaxSteps: 100000}}}); err != nil {
		log.Fatal(err)
	}
	outsP := gammaflow.OutputsFromMultiset(mp, []string{"x"})
	fmt.Printf("parallel: dataflow x = %s, gamma x = %s\n", xp, outsP["x"][0].Val)
}
