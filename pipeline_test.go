package gammaflow

// End-to-end pipeline tests over the testdata fixtures: source → dataflow →
// Gamma → back, with every stage's invariants checked. These are the
// integration tests a downstream user's workflow would exercise.

import (
	"os"
	"path/filepath"
	"testing"
)

func readFixture(t *testing.T, name string) string {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestPipelineSources runs every .vn fixture through the full conversion
// pipeline and checks the expected outputs in all three execution forms
// (dataflow, converted Gamma, reconstructed dataflow).
func TestPipelineSources(t *testing.T) {
	cases := map[string]map[string]int64{
		"affine.vn":     {"y": 49},
		"sumsquares.vn": {"s": 385},
		"gcd.vn":        {"r": -21}, // -(252%105) + 105%42 = -42 + 21
	}
	for name, wants := range cases {
		src := readFixture(t, name)
		g, err := CompileSource(name, src)
		if err != nil {
			t.Fatalf("%s: compile: %v", name, err)
		}
		res, err := RunGraph(g, GraphOptions{RunConfig: RunConfig{RunSpec: RunSpec{MaxSteps: 1_000_000}}})
		if err != nil {
			t.Fatalf("%s: run: %v", name, err)
		}
		for label, want := range wants {
			if got, ok := res.Output(label); !ok || got != Int(want) {
				t.Errorf("%s: dataflow %s = %v, want %d", name, label, got, want)
			}
		}
		// Full equivalence check, including firing and stuck-operand
		// correspondences.
		rep, err := CheckEquivalence(g, EquivOptions{MaxSteps: 1_000_000})
		if err != nil {
			t.Fatalf("%s: equivalence: %v", name, err)
		}
		if !rep.Equivalent {
			t.Errorf("%s: not equivalent: %v", name, rep.Mismatches)
		}
		// Gamma → dataflow reconstruction preserves the outputs.
		prog, init, err := ToGamma(g)
		if err != nil {
			t.Fatal(err)
		}
		// The emitted program type-checks under its inferred schema.
		sch, err := InferSchema(prog, init)
		if err != nil {
			t.Fatalf("%s: infer schema: %v", name, err)
		}
		if err := sch.Check(prog, init); err != nil {
			t.Errorf("%s: schema check: %v", name, err)
		}
		back, err := ProgramToGraph(name+"-back", prog, init.Clone())
		if err != nil {
			t.Fatalf("%s: reconstruct: %v", name, err)
		}
		res2, err := RunGraph(back, GraphOptions{RunConfig: RunConfig{RunSpec: RunSpec{MaxSteps: 1_000_000}}})
		if err != nil {
			t.Fatal(err)
		}
		for label, want := range wants {
			if got, ok := res2.Output(label); !ok || got != Int(want) {
				t.Errorf("%s: reconstructed %s = %v, want %d", name, label, got, want)
			}
		}
	}
}

// TestPipelineGammaFixtures executes the .gamma fixtures, including the
// staged composition, and checks the stable states.
func TestPipelineGammaFixtures(t *testing.T) {
	// minelement.gamma: the smallest of {42,7,99,3,58}.
	file, err := ParseGammaFile(readFixture(t, "minelement.gamma"))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := file.Program("min")
	if err != nil {
		t.Fatal(err)
	}
	if hint, _ := AnalyzeTermination(prog); hint != TerminationGuaranteed {
		t.Errorf("min sieve should be guaranteed to terminate, got %v", hint)
	}
	m := file.Init
	if _, err := RunProgram(prog, m, ProgramOptions{}); err != nil {
		t.Fatal(err)
	}
	if m.Len() != 1 || !m.Contains(ScalarElem(Int(3))) {
		t.Errorf("min = %s", m)
	}

	// staged.gamma: DOUBLE then SUM → {[20, 'mid']}.
	file2, err := ParseGammaFile(readFixture(t, "staged.gamma"))
	if err != nil {
		t.Fatal(err)
	}
	plan, err := file2.Plan("staged")
	if err != nil {
		t.Fatal(err)
	}
	stats, err := RunPlan(plan, file2.Init, ProgramOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if file2.Init.Len() != 1 || !file2.Init.Contains(PairElem(Int(20), "mid")) {
		t.Errorf("staged result = %s, want {[20, 'mid']}", file2.Init)
	}
	if stats.Steps != 7 { // 4 doubles + 3 sums
		t.Errorf("steps = %d, want 7", stats.Steps)
	}
}

// TestPipelineProfileAndReuse attaches the profiler and the reuse table to a
// fixture run through the public API, as the analysis example does.
func TestPipelineProfileAndReuse(t *testing.T) {
	g, err := CompileSource("sumsq", readFixture(t, "sumsquares.vn"))
	if err != nil {
		t.Fatal(err)
	}
	col := NewProfileCollector()
	tbl := NewReuseTable(0)
	res, err := RunGraph(g, GraphOptions{RunConfig: RunConfig{RunSpec: RunSpec{MaxSteps: 1_000_000}, Tracer: col}, Memo: tbl})
	if err != nil {
		t.Fatal(err)
	}
	if s, _ := res.Output("s"); s != Int(385) {
		t.Errorf("s = %v", s)
	}
	r := col.Report()
	if r.Work != res.Firings {
		t.Errorf("profiled work %d != firings %d", r.Work, res.Firings)
	}
	if r.Span <= 10 {
		t.Errorf("10-iteration loop should have a long span, got %d", r.Span)
	}
	if tbl.Stats().Stores == 0 {
		t.Error("reuse table unused")
	}
	// The same trace invariants hold for the converted program.
	prog, init, err := ToGamma(g)
	if err != nil {
		t.Fatal(err)
	}
	colG := NewProfileCollector()
	stats, err := RunProgram(prog, init, ProgramOptions{RunConfig: RunConfig{RunSpec: RunSpec{MaxSteps: 1_000_000}, Tracer: colG}})
	if err != nil {
		t.Fatal(err)
	}
	if colG.Report().Work != stats.Steps {
		t.Errorf("gamma work %d != steps %d", colG.Report().Work, stats.Steps)
	}
	// Reaction span equals operator span: each firing maps one to one, and
	// const firings (depth 1 in the dataflow trace) shift the chain by one.
	if gSpan, dSpan := colG.Report().Span, r.Span; gSpan != dSpan-1 {
		t.Errorf("gamma span %d, dataflow span %d, want exactly one const-depth difference", gSpan, dSpan)
	}
}
