package gammaflow

// The benchmark harness: one benchmark family per experiment row of
// DESIGN.md §3 (which indexes every figure, listing and claim of the paper).
// EXPERIMENTS.md records the measured shapes against the paper's claims.

import (
	"fmt"
	"testing"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/dist"
	"repro/internal/equiv"
	"repro/internal/gamma"
	"repro/internal/gammalang"
	"repro/internal/multiset"
	"repro/internal/paper"
	"repro/internal/profile"
	"repro/internal/reuse"
	"repro/internal/schema"
	"repro/internal/value"
)

// ---- E1: Fig. 1 / Example 1 ----

// BenchmarkFig1Dataflow executes the Fig. 1 graph on the dataflow runtime.
func BenchmarkFig1Dataflow(b *testing.B) {
	g := paper.Fig1Graph()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := dataflow.Run(g, dataflow.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig1Gamma executes the converted Example-1 program on the Gamma
// runtime (conversion outside the loop; the multiset is cloned per run).
func BenchmarkFig1Gamma(b *testing.B) {
	prog, init, err := core.ToGamma(paper.Fig1Graph())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := init.Clone()
		if _, err := gamma.Run(prog, m, gamma.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig1Conversion measures Algorithm 1 itself on Fig. 1.
func BenchmarkFig1Conversion(b *testing.B) {
	g := paper.Fig1Graph()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.ToGamma(g); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- E3: Fig. 2 / Example 2 loop, iteration sweep ----

func BenchmarkFig2LoopDataflow(b *testing.B) {
	for _, z := range []int64{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("z=%d", z), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				g := paper.Fig2GraphObservable(10, 4, z)
				res, err := dataflow.Run(g, dataflow.Options{})
				if err != nil {
					b.Fatal(err)
				}
				if v, _ := res.Output("xout"); v != value.Int(10+4*z) {
					b.Fatalf("xout = %v", v)
				}
			}
		})
	}
}

func BenchmarkFig2LoopGamma(b *testing.B) {
	for _, z := range []int64{1, 4, 16, 64} {
		prog, init, err := core.ToGamma(paper.Fig2GraphObservable(10, 4, z))
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("z=%d", z), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m := init.Clone()
				if _, err := gamma.Run(prog, m, gamma.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- E4 + E12: Eq. 2 min element, size and worker sweeps ----

func minProgram(b *testing.B) *gamma.Program {
	b.Helper()
	prog, err := gammalang.ParseProgram("min", paper.MinElementListing)
	if err != nil {
		b.Fatal(err)
	}
	return prog
}

func intMultiset(n int) *multiset.Multiset {
	m := multiset.New()
	for i := 0; i < n; i++ {
		m.Add(multiset.New1(value.Int(int64((i*2654435761 + 17) % (4 * n)))))
	}
	return m
}

func BenchmarkMinElement(b *testing.B) {
	prog := minProgram(b)
	for _, n := range []int{10, 100, 400} {
		init := intMultiset(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m := init.Clone()
				if _, err := gamma.Run(prog, m, gamma.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGammaParallel sweeps workers with a costly action (WorkFactor),
// the configuration where the model's natural parallelism shows.
func BenchmarkGammaParallel(b *testing.B) {
	prog := minProgram(b)
	init := intMultiset(400)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m := init.Clone()
				if _, err := gamma.Run(prog, m, gamma.Options{
					Workers: workers, Seed: 1, WorkFactor: 20000,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDataflowParallel sweeps PEs over a wide compiled program with a
// costly instruction (WorkFactor).
func BenchmarkDataflowParallel(b *testing.B) {
	// A wide expression dag: 64 independent multiply-add chains.
	src := "int a = 3;\n"
	for i := 0; i < 64; i++ {
		src += fmt.Sprintf("int v%d; v%d = (a * %d + 1) * (a + %d) - a * %d;\n", i, i, i+1, i+2, i+3)
	}
	g, err := compiler.Compile("wide", src)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := dataflow.Run(g, dataflow.Options{
					Workers: workers, WorkFactor: 20000,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- E5: §III-A3 reduction granularity ----

// BenchmarkReductionGranularity compares the full Example-1 program (three
// fine-grained reactions) against the mechanically derived Rd1 (one coarse
// reaction): fewer steps per run, but fewer independent match opportunities.
func BenchmarkReductionGranularity(b *testing.B) {
	full, err := gammalang.ParseProgram("full", paper.Example1GammaListing)
	if err != nil {
		b.Fatal(err)
	}
	reduced, _, err := core.Reduce(full)
	if err != nil {
		b.Fatal(err)
	}
	// n independent instances of the Example-1 dataflow in one multiset:
	// the reduced form must find 4-element combinations, the full form
	// 2-element ones.
	mkInit := func(n int) *multiset.Multiset {
		m := multiset.New()
		for i := 0; i < n; i++ {
			m.Add(multiset.Pair(value.Int(int64(i)), "A1"))
			m.Add(multiset.Pair(value.Int(5), "B1"))
			m.Add(multiset.Pair(value.Int(3), "C1"))
			m.Add(multiset.Pair(value.Int(2), "D1"))
		}
		return m
	}
	for _, n := range []int{1, 8, 32} {
		init := mkInit(n)
		b.Run(fmt.Sprintf("full/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m := init.Clone()
				if _, err := gamma.Run(full, m, gamma.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("reduced/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m := init.Clone()
				if _, err := gamma.Run(reduced, m, gamma.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- E8: Fig. 4 multiset mapping ----

func BenchmarkGammaToDataflowMapping(b *testing.B) {
	r, err := gammalang.ParseReaction(`R = replace [x, 'a'], [y, 'a'] by [x + y, 'b']`)
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range []int{6, 60, 600} {
		init := multiset.New()
		for i := 0; i < n; i++ {
			init.Add(multiset.Pair(value.Int(int64(i)), "a"))
		}
		b.Run(fmt.Sprintf("elems=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m := init.Clone()
				if _, err := core.MapMultiset(r, m, dataflow.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- E9: Algorithm 1 over random graphs ----

func BenchmarkAlgorithm1(b *testing.B) {
	for _, n := range []int{16, 64, 256} {
		g := equiv.RandomGraph(42, 8, n)
		b.Run(fmt.Sprintf("nodes=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := core.ToGamma(g); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAlgorithm2 measures the reverse direction (classification plus
// graph reconstruction) on Algorithm 1's own output.
func BenchmarkAlgorithm2(b *testing.B) {
	for _, n := range []int{16, 64, 256} {
		g := equiv.RandomGraph(42, 8, n)
		prog, init, err := core.ToGamma(g)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("nodes=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.ProgramToGraph("back", prog, init); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- E13: trace reuse ----

// BenchmarkTraceReuse runs a loop whose body recomputes identical values
// across iterations, with an expensive instruction cost: the memoized run
// skips the recomputation, the paper's DF-DTM motivation.
func BenchmarkTraceReuse(b *testing.B) {
	// The loop body recomputes eight k-only products per iteration with
	// identical operands (no common-subexpression elimination in the
	// compiler, so each is its own vertex). With an expensive instruction
	// cost, most firings become memo hits after the first iteration.
	src := `int i; int k = 7; int s = 0;
	        for (i = 50; i > 0; i--)
	            s = s + k*k + k*k + k*k + k*k + k*k + k*k + k*k + k*k;
	        output s;`
	g, err := compiler.Compile("reuse", src)
	if err != nil {
		b.Fatal(err)
	}
	const work = 50000
	b.Run("no-memo", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := dataflow.Run(g, dataflow.Options{WorkFactor: work}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("memo", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tbl := reuse.NewTable(0)
			res, err := dataflow.Run(g, dataflow.Options{WorkFactor: work, Memo: tbl})
			if err != nil {
				b.Fatal(err)
			}
			if res.MemoHits == 0 {
				b.Fatal("memo never hit")
			}
		}
	})
	// The same workload after conversion, with reaction-level reuse.
	prog, init, err := core.ToGamma(g)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("gamma-no-memo", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m := init.Clone()
			if _, err := gamma.Run(prog, m, gamma.Options{WorkFactor: work}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("gamma-memo", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tbl := reuse.NewTable(0)
			m := init.Clone()
			st, err := gamma.Run(prog, m, gamma.Options{WorkFactor: work, Memo: tbl})
			if err != nil {
				b.Fatal(err)
			}
			if st.MemoHits == 0 {
				b.Fatal("memo never hit")
			}
		}
	})
}

// ---- E16: incremental matching engine vs the seed full rescan ----

// tournamentProgram is a staged pairwise min reduction over labeled elements
// (min-element-style, in the literal-label shape Algorithm 1 emits): stage i
// consumes two [x,'Li'] elements and forwards the smaller as [x,'L<i+1>'].
// Every reaction subscribes to exactly one label, so the delta scheduler
// re-probes only the stage a firing actually fed.
func tournamentProgram(b *testing.B, stages int) *gamma.Program {
	b.Helper()
	src := ""
	for i := 0; i < stages; i++ {
		src += fmt.Sprintf("R%d = replace [x, 'L%d'], [y, 'L%d'] by [x, 'L%d'] if x <= y by [y, 'L%d'] else\n",
			i, i, i, i+1, i+1)
	}
	prog, err := gammalang.ParseProgram("tournament", src)
	if err != nil {
		b.Fatal(err)
	}
	return prog
}

func tournamentMultiset(n int) *multiset.Multiset {
	m := multiset.New()
	for i := 0; i < n; i++ {
		m.Add(multiset.Pair(value.Int(int64((i*2654435761+17)%(4*n))), "L0"))
	}
	return m
}

// BenchmarkGammaIncremental compares the delta-driven scheduler against the
// seed full-rescan baseline (Options.FullScan) on the ISSUE workloads:
// Eq. 2 min element, the staged labeled variant, and the §II-B primes sieve
// (step-capped: its probes are quadratic in any engine). probes/op is the
// matching-engine work metric; see EXPERIMENTS.md E16.
func BenchmarkGammaIncremental(b *testing.B) {
	engines := []struct {
		name     string
		fullScan bool
	}{{"incremental", false}, {"fullscan", true}}

	run := func(prog *gamma.Program, init *multiset.Multiset, maxSteps int64) func(*testing.B) {
		return func(b *testing.B) {
			for _, eng := range engines {
				b.Run(eng.name, func(b *testing.B) {
					var probes int64
					for i := 0; i < b.N; i++ {
						m := init.Clone()
						st, err := gamma.Run(prog, m, gamma.Options{
							FullScan: eng.fullScan, MaxSteps: maxSteps,
						})
						if err != nil && !(maxSteps > 0 && err == gamma.ErrMaxSteps) {
							b.Fatal(err)
						}
						probes += st.Probes
					}
					b.ReportMetric(float64(probes)/float64(b.N), "probes/op")
				})
			}
		}
	}

	min := minProgram(b)
	for _, n := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("min/n=%d", n), run(min, intMultiset(n), 0))
	}
	for _, n := range []int{1000, 10000} {
		stages := 10
		if n == 10000 {
			stages = 14
		}
		b.Run(fmt.Sprintf("tournament/n=%d", n),
			run(tournamentProgram(b, stages), tournamentMultiset(n), 0))
	}
	sieve, err := gammalang.ParseProgram("sieve",
		`R = replace (x, y) by y where x % y == 0 and x != y`)
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range []int{1000, 10000} {
		init := multiset.New()
		for i := int64(2); i <= int64(n); i++ {
			init.Add(multiset.New1(value.Int(i)))
		}
		// The sieve probes quadratically in any engine; a step cap keeps the
		// comparison about scheduling, not about the sieve's own cost.
		b.Run(fmt.Sprintf("primes/n=%d", n), run(sieve, init, 50))
	}
}

// ---- Ablation: indexed matching vs full scan (DESIGN.md §5.2) ----

// BenchmarkMatchIndexedVsScan expresses the same join two ways: with literal
// labels (hits the (label, tag) index) and with a variable label constrained
// by a condition (forces the full-scan path).
func BenchmarkMatchIndexedVsScan(b *testing.B) {
	indexed, err := gammalang.ParseReaction(
		`R = replace [a, 'L', v], [c, 'R', v] by [a + c, 'O', v]`)
	if err != nil {
		b.Fatal(err)
	}
	scan, err := gammalang.ParseReaction(
		`R = replace [a, x, v], [c, y, v] by [a + c, 'O', v] if (x == 'L') and (y == 'R')`)
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range []int{16, 64} {
		init := multiset.New()
		for i := 0; i < n; i++ {
			init.Add(multiset.IntElem(int64(i), "L", int64(i)))
			init.Add(multiset.IntElem(int64(i*10), "R", int64(i)))
		}
		b.Run(fmt.Sprintf("indexed/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m := init.Clone()
				if _, err := gamma.Run(gamma.MustProgram("p", indexed), m, gamma.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("scan/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m := init.Clone()
				if _, err := gamma.Run(gamma.MustProgram("p", scan), m, gamma.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- Ablation: tagged-union Value vs boxed interface (DESIGN.md §5.1) ----

type boxedAdd struct{ v any }

func addBoxed(a, b any) any {
	ai, _ := a.(int64)
	bi, _ := b.(int64)
	return ai + bi
}

func BenchmarkValueTaggedVsBoxed(b *testing.B) {
	b.Run("tagged", func(b *testing.B) {
		acc := value.Int(0)
		for i := 0; i < b.N; i++ {
			acc, _ = value.Add(acc, value.Int(int64(i)))
		}
		if acc.Kind() == value.KindInvalid {
			b.Fatal("impossible")
		}
	})
	b.Run("boxed", func(b *testing.B) {
		box := boxedAdd{v: int64(0)}
		for i := 0; i < b.N; i++ {
			box.v = addBoxed(box.v, int64(i))
		}
		if box.v == nil {
			b.Fatal("impossible")
		}
	})
}

// ---- E14: distributed multiset (the paper's §IV future work) ----

// BenchmarkDistributedMin runs the Eq. 2 min-element program over a
// simulated cluster, sweeping node counts.
func BenchmarkDistributedMin(b *testing.B) {
	prog := minProgram(b)
	init := intMultiset(128)
	for _, nodes := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c, err := dist.NewCluster(prog, dist.Options{Nodes: nodes, Seed: int64(i + 1)})
				if err != nil {
					b.Fatal(err)
				}
				result, _, err := c.Run(init.Clone())
				if err != nil {
					b.Fatal(err)
				}
				if result.Len() != 1 {
					b.Fatalf("result = %s", result)
				}
			}
		})
	}
}

// ---- E15: parallelism profiling, and its overhead (ablation) ----

// BenchmarkProfileOverhead measures the cost of attaching a trace collector
// to the Fig. 2 loop in each runtime.
func BenchmarkProfileOverhead(b *testing.B) {
	g := paper.Fig2GraphObservable(10, 4, 16)
	b.Run("dataflow/off", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := dataflow.Run(g, dataflow.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("dataflow/on", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			col := profile.NewCollector()
			if _, err := dataflow.Run(g, dataflow.Options{Tracer: col}); err != nil {
				b.Fatal(err)
			}
			if col.Report().Work == 0 {
				b.Fatal("empty trace")
			}
		}
	})
	prog, init, err := core.ToGamma(g)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("gamma/off", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m := init.Clone()
			if _, err := gamma.Run(prog, m, gamma.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("gamma/on", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			col := profile.NewCollector()
			m := init.Clone()
			if _, err := gamma.Run(prog, m, gamma.Options{Tracer: col}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSchemaInferAndCheck measures the static-typing pass on the
// converted Fig. 2 program.
func BenchmarkSchemaInferAndCheck(b *testing.B) {
	prog, init, err := core.ToGamma(paper.Fig2GraphObservable(10, 4, 3))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, err := schema.Infer(prog, init)
		if err != nil {
			b.Fatal(err)
		}
		if err := s.Check(prog, init); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Supporting pipeline stages ----

// BenchmarkCompiler measures the von Neumann → dataflow translation.
func BenchmarkCompiler(b *testing.B) {
	src := `int y = 4; int z = 30; int x = 10; int i;
	        for (i = z; i > 0; i--) x = x + y; output x;`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := compiler.Compile("loop", src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLargeProgramPipeline measures the whole toolchain — compile,
// Algorithm 1, classify-and-reconstruct — on generated programs of growing
// size (statement counts 32..512).
func BenchmarkLargeProgramPipeline(b *testing.B) {
	for _, stmts := range []int{32, 128, 512} {
		src, _ := equiv.RandomProgram(11, 6, stmts)
		b.Run(fmt.Sprintf("stmts=%d/compile", stmts), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := compiler.Compile("big", src); err != nil {
					b.Fatal(err)
				}
			}
		})
		g, err := compiler.Compile("big", src)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("stmts=%d/toGamma", stmts), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := core.ToGamma(g); err != nil {
					b.Fatal(err)
				}
			}
		})
		prog, init, err := core.ToGamma(g)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("stmts=%d/reconstruct", stmts), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.ProgramToGraph("back", prog, init); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGammaParse measures the Fig. 3 grammar parser on the paper's
// largest listing.
func BenchmarkGammaParse(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := gammalang.ParseProgram("ex2", paper.Example2GammaListing); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMultiset measures the substrate's core operations.
func BenchmarkMultiset(b *testing.B) {
	b.Run("add-remove", func(b *testing.B) {
		m := multiset.New()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e := multiset.IntElem(int64(i%64), "L", int64(i%8))
			m.Add(e)
			m.Remove(e)
		}
	})
	b.Run("bylabeltag", func(b *testing.B) {
		m := multiset.New()
		for i := 0; i < 1024; i++ {
			m.Add(multiset.IntElem(int64(i), fmt.Sprintf("L%d", i%16), int64(i%64)))
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if got := m.ByLabelTag(fmt.Sprintf("L%d", i%16), int64(i%64)); len(got) == 0 {
				b.Fatal("lookup miss")
			}
		}
	})
}
