package expr

import (
	"fmt"

	"repro/internal/value"
)

// Env resolves variable references during evaluation.
type Env interface {
	// Lookup returns the value bound to name, and whether it is bound.
	Lookup(name string) (value.Value, bool)
}

// MapEnv is the simplest Env: a map from name to value.
type MapEnv map[string]value.Value

// Lookup implements Env.
func (m MapEnv) Lookup(name string) (value.Value, bool) {
	v, ok := m[name]
	return v, ok
}

// EmptyEnv is an Env with no bindings, for evaluating closed expressions.
var EmptyEnv Env = MapEnv(nil)

// UnboundVarError reports a variable reference with no binding in the Env.
type UnboundVarError struct{ Name string }

func (e *UnboundVarError) Error() string { return "expr: unbound variable " + e.Name }

// Eval evaluates e under env.
func Eval(e Expr, env Env) (value.Value, error) {
	switch n := e.(type) {
	case Lit:
		return n.Val, nil
	case Var:
		v, ok := env.Lookup(n.Name)
		if !ok {
			return value.Value{}, &UnboundVarError{Name: n.Name}
		}
		return v, nil
	case Unary:
		x, err := Eval(n.X, env)
		if err != nil {
			return value.Value{}, err
		}
		return value.Unary(n.Op, x)
	case Binary:
		// Short-circuit the logical operators so e.g. guards like
		// (id2 != 0) and (id1/id2 > 1) evaluate safely.
		switch n.Op {
		case "and", "&&":
			l, err := Eval(n.L, env)
			if err != nil {
				return value.Value{}, err
			}
			t, err := l.Truthy()
			if err != nil {
				return value.Value{}, err
			}
			if !t {
				return value.Bool(false), nil
			}
			r, err := Eval(n.R, env)
			if err != nil {
				return value.Value{}, err
			}
			rt, err := r.Truthy()
			if err != nil {
				return value.Value{}, err
			}
			return value.Bool(rt), nil
		case "or", "||":
			l, err := Eval(n.L, env)
			if err != nil {
				return value.Value{}, err
			}
			t, err := l.Truthy()
			if err != nil {
				return value.Value{}, err
			}
			if t {
				return value.Bool(true), nil
			}
			r, err := Eval(n.R, env)
			if err != nil {
				return value.Value{}, err
			}
			rt, err := r.Truthy()
			if err != nil {
				return value.Value{}, err
			}
			return value.Bool(rt), nil
		}
		l, err := Eval(n.L, env)
		if err != nil {
			return value.Value{}, err
		}
		r, err := Eval(n.R, env)
		if err != nil {
			return value.Value{}, err
		}
		return value.Binary(n.Op, l, r)
	case Call:
		args := make([]value.Value, len(n.Args))
		for i, a := range n.Args {
			v, err := Eval(a, env)
			if err != nil {
				return value.Value{}, err
			}
			args[i] = v
		}
		return callBuiltin(n.Name, args)
	}
	return value.Value{}, fmt.Errorf("expr: unknown node %T", e)
}

// EvalBool evaluates e and interprets the result as a condition via Truthy.
func EvalBool(e Expr, env Env) (bool, error) {
	v, err := Eval(e, env)
	if err != nil {
		return false, err
	}
	return v.Truthy()
}

// callBuiltin dispatches the builtin function set.
func callBuiltin(name string, args []value.Value) (value.Value, error) {
	switch name {
	case "min", "max":
		if len(args) < 1 {
			return value.Value{}, fmt.Errorf("expr: %s needs at least 1 argument", name)
		}
		best := args[0]
		for _, a := range args[1:] {
			c, err := value.Compare(a, best)
			if err != nil {
				return value.Value{}, err
			}
			if (name == "min" && c < 0) || (name == "max" && c > 0) {
				best = a
			}
		}
		return best, nil
	case "abs":
		if len(args) != 1 {
			return value.Value{}, fmt.Errorf("expr: abs needs exactly 1 argument")
		}
		a := args[0]
		switch a.Kind() {
		case value.KindInt:
			if a.AsInt() < 0 {
				return value.Int(-a.AsInt()), nil
			}
			return a, nil
		case value.KindFloat:
			if a.AsFloat() < 0 {
				return value.Float(-a.AsFloat()), nil
			}
			return a, nil
		}
		return value.Value{}, fmt.Errorf("expr: abs on non-numeric %s", a)
	}
	return value.Value{}, fmt.Errorf("expr: unknown function %q", name)
}
