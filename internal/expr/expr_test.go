package expr

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/value"
)

func evalInt(t *testing.T, src string, env Env) int64 {
	t.Helper()
	e, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	v, err := Eval(e, env)
	if err != nil {
		t.Fatalf("Eval(%q): %v", src, err)
	}
	if v.Kind() != value.KindInt {
		t.Fatalf("Eval(%q) = %s, want int", src, v)
	}
	return v.AsInt()
}

func evalBoolT(t *testing.T, src string, env Env) bool {
	t.Helper()
	e, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	b, err := EvalBool(e, env)
	if err != nil {
		t.Fatalf("EvalBool(%q): %v", src, err)
	}
	return b
}

func TestArithmeticEvaluation(t *testing.T) {
	cases := []struct {
		src  string
		want int64
	}{
		{"1 + 5", 6},
		{"(1 + 5) - (3 * 2)", 0}, // Example 1 of the paper: m = (x+y)-(k*j)
		{"2 + 3 * 4", 14},
		{"(2 + 3) * 4", 20},
		{"10 / 3", 3},
		{"10 % 3", 1},
		{"-4 + 1", -3},
		{"- (4 + 1)", -5},
		{"2 * -3", -6},
		{"1 - 2 - 3", -4}, // left associativity
		{"min(3, 1, 2)", 1},
		{"max(3, 1, 2)", 3},
		{"abs(-9)", 9},
		{"abs(9)", 9},
	}
	for _, c := range cases {
		if got := evalInt(t, c.src, EmptyEnv); got != c.want {
			t.Errorf("%q = %d, want %d", c.src, got, c.want)
		}
	}
}

func TestVariableEvaluation(t *testing.T) {
	env := MapEnv{"x": value.Int(1), "y": value.Int(5), "k": value.Int(3), "j": value.Int(2)}
	if got := evalInt(t, "(x + y) - (k * j)", env); got != 0 {
		t.Errorf("example 1 = %d, want 0", got)
	}
	if got := evalInt(t, "x + y + k + j", env); got != 11 {
		t.Errorf("sum = %d, want 11", got)
	}
}

func TestUnboundVariable(t *testing.T) {
	_, err := Eval(Var{Name: "zzz"}, EmptyEnv)
	var ue *UnboundVarError
	if err == nil {
		t.Fatal("expected error")
	}
	if e, ok := err.(*UnboundVarError); ok {
		ue = e
	} else {
		t.Fatalf("want *UnboundVarError, got %T", err)
	}
	if ue.Name != "zzz" || !strings.Contains(ue.Error(), "zzz") {
		t.Errorf("unexpected error %v", ue)
	}
}

func TestBooleanEvaluation(t *testing.T) {
	env := MapEnv{"x": value.Str("A1"), "id1": value.Int(3), "id2": value.Int(1), "v": value.Int(0)}
	cases := []struct {
		src  string
		want bool
	}{
		// The reaction conditions from the paper's listings.
		{"(x == 'A1') or (x == 'A11')", true},
		{"(x == 'B1') or (x == 'B11')", false},
		{"id2 == 1", true},
		{"id1 > 0", true},
		{"x < 'B'", true},
		{"id1 >= 3 and id2 <= 1", true},
		{"!(id1 == 3)", false},
		{"not (id1 == 4)", true},
		{"true or (1/0 == 1)", true},    // short-circuit avoids division by zero
		{"false and (1/0 == 1)", false}, // short-circuit avoids division by zero
		{"true && false", false},
		{"true || false", true},
	}
	for _, c := range cases {
		if got := evalBoolT(t, c.src, env); got != c.want {
			t.Errorf("%q = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestShortCircuitErrors(t *testing.T) {
	env := MapEnv{"s": value.Str("x")}
	for _, src := range []string{"s and true", "true and s", "s or true", "false or s"} {
		e := MustParse(src)
		if _, err := Eval(e, env); err == nil {
			t.Errorf("%q should error on non-truthy operand", src)
		}
	}
}

func TestEvalErrors(t *testing.T) {
	for _, src := range []string{"1/0", "1%0", "'a' - 'b'", "abs('x')", "abs(1,2)", "min()", "nosuchfn(1)"} {
		e, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		if _, err := Eval(e, EmptyEnv); err == nil {
			t.Errorf("Eval(%q) should error", src)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"", "1 +", "(1", "1)", "min(1", "min(1,", "1 @ 2", "'abc", "= 1", "[1]",
	} {
		if e, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) = %v, want error", src, e)
		}
	}
}

func TestParsePrecedenceShape(t *testing.T) {
	e := MustParse("a + b * c == d or e")
	// Expect: ((a + (b*c)) == d) or e
	or, ok := e.(Binary)
	if !ok || or.Op != "or" {
		t.Fatalf("top = %#v, want or", e)
	}
	eq, ok := or.L.(Binary)
	if !ok || eq.Op != "==" {
		t.Fatalf("or.L = %#v, want ==", or.L)
	}
	add, ok := eq.L.(Binary)
	if !ok || add.Op != "+" {
		t.Fatalf("eq.L = %#v, want +", eq.L)
	}
	mul, ok := add.R.(Binary)
	if !ok || mul.Op != "*" {
		t.Fatalf("add.R = %#v, want *", add.R)
	}
}

func TestStringRoundTrip(t *testing.T) {
	srcs := []string{
		"id1 + id2",
		"(id1 + id2) - id3 * id4",
		"(x == 'A1') or (x == 'A11')",
		"-(a + b)",
		"!(a and b)",
		"min(a, b, 3)",
		"a - (b - c)",
		"a % b / c",
		"1.5 * f",
	}
	for _, src := range srcs {
		e1 := MustParse(src)
		printed := e1.String()
		e2, err := Parse(printed)
		if err != nil {
			t.Fatalf("reparse of %q (printed %q): %v", src, printed, err)
		}
		if !Equal(e1, e2) {
			t.Errorf("round trip changed %q: printed %q reparsed %s", src, printed, e2)
		}
	}
}

func TestFreeVars(t *testing.T) {
	cases := []struct {
		src  string
		want []string
	}{
		{"1 + 2", nil},
		{"id1 + id2", []string{"id1", "id2"}},
		{"(x == 'A1') or (x == 'A11')", []string{"x"}},
		{"min(a, b) + a - !c", []string{"a", "b", "c"}},
	}
	for _, c := range cases {
		got := FreeVars(MustParse(c.src))
		if len(got) == 0 && len(c.want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("FreeVars(%q) = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestSubst(t *testing.T) {
	e := MustParse("id1 + id2 * id1")
	got := Subst(e, map[string]Expr{"id1": MustParse("a - b")})
	want := MustParse("(a - b) + id2 * (a - b)")
	if !Equal(got, want) {
		t.Errorf("Subst = %s, want %s", got, want)
	}
	// Substitution into calls and unaries.
	e2 := MustParse("min(x, -x)")
	got2 := Subst(e2, map[string]Expr{"x": Lit{Val: value.Int(7)}})
	if v, err := Eval(got2, EmptyEnv); err != nil || v != value.Int(-7) {
		t.Errorf("Subst into call = %s (%v), want -7", got2, err)
	}
	// Unbound names stay.
	got3 := Subst(MustParse("q + 1"), map[string]Expr{"x": Lit{Val: value.Int(1)}})
	if !Equal(got3, MustParse("q + 1")) {
		t.Errorf("Subst should leave unbound vars: %s", got3)
	}
}

func TestFold(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		{"1 + 2 * 3", "7"},
		{"1 + x", "1 + x"},
		{"(2 + 3) * x", "5 * x"},
		{"min(4, 9) + x", "4 + x"},
		{"-(2 + 3)", "-5"},
		{"1 / 0", "1 / 0"}, // fold must not swallow errors
		{"'a' + 'b'", "'ab'"},
		{"2 < 3", "true"},
	}
	for _, c := range cases {
		got := Fold(MustParse(c.src))
		want := MustParse(c.want)
		if !Equal(got, want) {
			t.Errorf("Fold(%q) = %s, want %s", c.src, got, want)
		}
	}
}

func TestEqualDistinguishes(t *testing.T) {
	pairs := [][2]string{
		{"a", "b"},
		{"1", "2"},
		{"a + b", "a - b"},
		{"a + b", "a"},
		{"-a", "!a"},
		{"min(a)", "max(a)"},
		{"min(a)", "min(a, b)"},
		{"min(a, b)", "min(a, c)"},
	}
	for _, p := range pairs {
		if Equal(MustParse(p[0]), MustParse(p[1])) {
			t.Errorf("Equal(%q, %q) should be false", p[0], p[1])
		}
	}
	if Equal(MustParse("a"), nil) {
		t.Error("Equal(a, nil) should be false")
	}
}

func TestLexerPositionsAndComments(t *testing.T) {
	toks, err := LexAll("a + b # comment\n  c // another\nd")
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tk := range toks {
		texts = append(texts, tk.Text)
	}
	if !reflect.DeepEqual(texts, []string{"a", "+", "b", "c", "d"}) {
		t.Fatalf("tokens = %v", texts)
	}
	if toks[3].Line != 2 || toks[4].Line != 3 {
		t.Errorf("line tracking wrong: %+v", toks)
	}
}

func TestLexerKeepNewlines(t *testing.T) {
	l := NewLexer("a\nb")
	l.KeepNewlines = true
	var kinds []TokenKind
	for {
		tk, err := l.Next()
		if err != nil {
			t.Fatal(err)
		}
		kinds = append(kinds, tk.Kind)
		if tk.Kind == TokEOF {
			break
		}
	}
	want := []TokenKind{TokIdent, TokNewline, TokIdent, TokEOF}
	if !reflect.DeepEqual(kinds, want) {
		t.Errorf("kinds = %v, want %v", kinds, want)
	}
}

func TestLexerPunctuation(t *testing.T) {
	toks, err := LexAll("[x, 'A1'] | {y} ; ==")
	if err != nil {
		t.Fatal(err)
	}
	want := []TokenKind{TokLBrack, TokIdent, TokComma, TokString, TokRBrack,
		TokPipe, TokLBrace, TokIdent, TokRBrace, TokSemi, TokOp}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens %v, want %d", len(toks), toks, len(want))
	}
	for i := range want {
		if toks[i].Kind != want[i] {
			t.Errorf("token %d = %s, want %s", i, toks[i].Kind, want[i])
		}
	}
}

func TestLexerErrors(t *testing.T) {
	for _, src := range []string{"'abc", "@", "$x"} {
		if _, err := LexAll(src); err == nil {
			t.Errorf("LexAll(%q) should error", src)
		}
	}
}

func TestTokenKindStrings(t *testing.T) {
	for k := TokEOF; k <= TokNewline; k++ {
		if k.String() == "unknown" {
			t.Errorf("kind %d has no name", k)
		}
	}
	if TokenKind(200).String() != "unknown" {
		t.Error("out-of-range kind should be unknown")
	}
}

// Property: printing then reparsing preserves evaluation on random integer
// expression trees.
func TestQuickPrintParseEval(t *testing.T) {
	type node struct {
		A, B int16
		Op   uint8
	}
	ops := []string{"+", "-", "*"}
	f := func(ns []node) bool {
		var e Expr = Lit{Val: value.Int(1)}
		for _, n := range ns {
			e = Binary{Op: ops[int(n.Op)%len(ops)], L: e, R: Lit{Val: value.Int(int64(n.A) % 100)}}
		}
		v1, err := Eval(e, EmptyEnv)
		if err != nil {
			return true // skip error trees
		}
		e2, err := Parse(e.String())
		if err != nil {
			return false
		}
		v2, err := Eval(e2, EmptyEnv)
		return err == nil && v1 == v2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Fold preserves evaluation.
func TestQuickFoldPreservesEval(t *testing.T) {
	f := func(a, b, c int16) bool {
		e := Binary{Op: "+", L: Binary{Op: "*", L: Lit{Val: value.Int(int64(a))}, R: Lit{Val: value.Int(int64(b))}},
			R: Binary{Op: "-", L: Var{Name: "x"}, R: Lit{Val: value.Int(int64(c))}}}
		env := MapEnv{"x": value.Int(int64(b))}
		v1, err1 := Eval(e, env)
		v2, err2 := Eval(Fold(e), env)
		return err1 == nil && err2 == nil && v1 == v2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
