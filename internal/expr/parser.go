package expr

import (
	"fmt"

	"repro/internal/value"
)

// Parse parses a complete expression from src. Trailing input is an error.
func Parse(src string) (Expr, error) {
	p := &Parser{lex: NewLexer(src)}
	if err := p.next(); err != nil {
		return nil, err
	}
	e, err := p.ParseExpr()
	if err != nil {
		return nil, err
	}
	if p.tok.Kind != TokEOF {
		return nil, p.errf("unexpected %s after expression", p.tok)
	}
	return e, nil
}

// MustParse is Parse that panics on error; for tests and fixtures.
func MustParse(src string) Expr {
	e, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return e
}

// Parser is a recursive-descent expression parser with precedence climbing.
// It is exported so the Gamma DSL parser can embed it and parse expression
// positions out of its own token stream.
type Parser struct {
	lex *Lexer
	tok Token
}

// NewParser returns a parser reading from lex, primed on the first token.
func NewParser(lex *Lexer) (*Parser, error) {
	p := &Parser{lex: lex}
	return p, p.next()
}

// Tok returns the current lookahead token.
func (p *Parser) Tok() Token { return p.tok }

// Advance consumes the current token and moves to the next.
func (p *Parser) Advance() error { return p.next() }

func (p *Parser) next() error {
	t, err := p.lex.Next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *Parser) errf(format string, args ...any) error {
	return &SyntaxError{Line: p.tok.Line, Col: p.tok.Col, Msg: fmt.Sprintf(format, args...)}
}

// ParseExpr parses an expression at the lowest precedence level, leaving the
// lookahead on the first token after the expression.
func (p *Parser) ParseExpr() (Expr, error) { return p.parseBinary(1) }

// binaryOpAt reports whether the current token is a binary operator of
// precedence at least min, and returns its spelling.
func (p *Parser) binaryOpAt(min int) (string, bool) {
	var op string
	switch p.tok.Kind {
	case TokOp:
		op = p.tok.Text
		if op == "=" || op == "!" {
			return "", false
		}
	case TokIdent:
		if p.tok.Text == "and" || p.tok.Text == "or" {
			op = p.tok.Text
		} else {
			return "", false
		}
	default:
		return "", false
	}
	if precedence(op) < min {
		return "", false
	}
	return op, true
}

func (p *Parser) parseBinary(min int) (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		op, ok := p.binaryOpAt(min)
		if !ok {
			return left, nil
		}
		if err := p.next(); err != nil {
			return nil, err
		}
		right, err := p.parseBinary(precedence(op) + 1)
		if err != nil {
			return nil, err
		}
		left = Binary{Op: op, L: left, R: right}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	if p.tok.Kind == TokOp && (p.tok.Text == "-" || p.tok.Text == "!" || p.tok.Text == "+") {
		op := p.tok.Text
		if err := p.next(); err != nil {
			return nil, err
		}
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		// Fold unary minus into numeric literals so -3 is a Lit.
		if op == "-" {
			if lit, ok := x.(Lit); ok && lit.Val.IsNumeric() {
				if v, err := value.Neg(lit.Val); err == nil {
					return Lit{Val: v}, nil
				}
			}
		}
		return Unary{Op: op, X: x}, nil
	}
	if p.tok.Kind == TokIdent && p.tok.Text == "not" {
		if err := p.next(); err != nil {
			return nil, err
		}
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return Unary{Op: "!", X: x}, nil
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (Expr, error) {
	switch p.tok.Kind {
	case TokNumber:
		v, err := value.Parse(p.tok.Text)
		if err != nil {
			return nil, p.errf("bad number %q: %v", p.tok.Text, err)
		}
		if err := p.next(); err != nil {
			return nil, err
		}
		return Lit{Val: v}, nil
	case TokString:
		v := value.Str(p.tok.Text)
		if err := p.next(); err != nil {
			return nil, err
		}
		return Lit{Val: v}, nil
	case TokIdent:
		name := p.tok.Text
		switch name {
		case "true", "false":
			if err := p.next(); err != nil {
				return nil, err
			}
			return Lit{Val: value.Bool(name == "true")}, nil
		}
		if err := p.next(); err != nil {
			return nil, err
		}
		if p.tok.Kind == TokLParen {
			return p.parseCall(name)
		}
		return Var{Name: name}, nil
	case TokLParen:
		if err := p.next(); err != nil {
			return nil, err
		}
		e, err := p.ParseExpr()
		if err != nil {
			return nil, err
		}
		if p.tok.Kind != TokRParen {
			return nil, p.errf("expected ')', found %s", p.tok)
		}
		if err := p.next(); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, p.errf("expected expression, found %s", p.tok)
}

func (p *Parser) parseCall(name string) (Expr, error) {
	// Lookahead is on '('.
	if err := p.next(); err != nil {
		return nil, err
	}
	var args []Expr
	if p.tok.Kind != TokRParen {
		for {
			a, err := p.ParseExpr()
			if err != nil {
				return nil, err
			}
			args = append(args, a)
			if p.tok.Kind != TokComma {
				break
			}
			if err := p.next(); err != nil {
				return nil, err
			}
		}
	}
	if p.tok.Kind != TokRParen {
		return nil, p.errf("expected ')' in call to %s, found %s", name, p.tok)
	}
	if err := p.next(); err != nil {
		return nil, err
	}
	return Call{Name: name, Args: args}, nil
}
