package expr

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/value"
)

// randExpr generates a random expression over the variable pool, deliberately
// including error-producing shapes: unbound variables, division by zero, type
// mismatches, wrong builtin arities and unknown operators/functions.
func randExpr(rng *rand.Rand, depth int, vars []string) Expr {
	if depth <= 0 || rng.Intn(4) == 0 {
		switch rng.Intn(3) {
		case 0:
			return Var{Name: vars[rng.Intn(len(vars))]}
		default:
			return Lit{Val: randValue(rng)}
		}
	}
	switch rng.Intn(8) {
	case 0:
		ops := []string{"-", "!", "+", "~"} // ~ is unknown
		return Unary{Op: ops[rng.Intn(len(ops))], X: randExpr(rng, depth-1, vars)}
	case 1:
		names := []string{"min", "max", "abs", "hypot"} // hypot is unknown
		n := rng.Intn(3)
		args := make([]Expr, n)
		for i := range args {
			args[i] = randExpr(rng, depth-1, vars)
		}
		return Call{Name: names[rng.Intn(len(names))], Args: args}
	default:
		ops := []string{"+", "-", "*", "/", "%", "==", "!=", "<", "<=", ">", ">=",
			"and", "or", "&&", "||", "<>"} // <> is unknown
		return Binary{
			Op: ops[rng.Intn(len(ops))],
			L:  randExpr(rng, depth-1, vars),
			R:  randExpr(rng, depth-1, vars),
		}
	}
}

func randValue(rng *rand.Rand) value.Value {
	switch rng.Intn(6) {
	case 0:
		return value.Bool(rng.Intn(2) == 0)
	case 1:
		return value.Str(fmt.Sprintf("s%d", rng.Intn(3)))
	case 2:
		return value.Float(float64(rng.Intn(9)-4) / 2)
	default:
		return value.Int(int64(rng.Intn(9) - 4)) // 0 and 1 common: exercises identities
	}
}

// TestCompiledDifferentialRandom is the differential property test of the
// kernel compiler: on randomized expressions and randomized (partially bound)
// environments, the compiled closure chain must agree with the tree-walking
// Eval/EvalBool oracle on both the value and the error, message included.
func TestCompiledDifferentialRandom(t *testing.T) {
	vars := []string{"a", "b", "c", "d"}
	slots := map[string]int{"a": 0, "b": 1, "c": 2, "d": 3}
	iters := 4000
	if testing.Short() {
		iters = 500
	}
	for seed := 0; seed < iters; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		e := randExpr(rng, 4, vars)

		// Bind a random subset of the variable pool; the rest stay unbound in
		// both representations (missing MapEnv key ≡ invalid slot value).
		menv := make(MapEnv)
		senv := make([]value.Value, len(vars))
		for i, name := range vars {
			if rng.Intn(3) > 0 {
				v := randValue(rng)
				menv[name] = v
				senv[i] = v
			}
		}

		wantV, wantErr := Eval(e, menv)
		gotV, gotErr := Compile(e, slots)(senv)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("seed %d: %s\n oracle err=%v compiled err=%v", seed, e, wantErr, gotErr)
		}
		if wantErr != nil {
			if wantErr.Error() != gotErr.Error() {
				t.Fatalf("seed %d: %s\n error mismatch:\n oracle:   %v\n compiled: %v", seed, e, wantErr, gotErr)
			}
		} else if wantV != gotV {
			t.Fatalf("seed %d: %s\n value mismatch: oracle %s, compiled %s", seed, e, wantV, gotV)
		}

		wantB, wantBErr := EvalBool(e, menv)
		gotB, gotBErr := CompileBool(e, slots)(senv)
		if (wantBErr == nil) != (gotBErr == nil) ||
			(wantBErr != nil && wantBErr.Error() != gotBErr.Error()) ||
			(wantBErr == nil && wantB != gotB) {
			t.Fatalf("seed %d: %s\n bool mismatch: oracle (%v,%v), compiled (%v,%v)",
				seed, e, wantB, wantBErr, gotB, gotBErr)
		}
	}
}

// TestCompiledDifferentialFolded pins the satellite property that compilation
// folds first: compiling e must behave exactly like compiling Fold(e), and
// Fold must be a semantic no-op under the oracle.
func TestCompiledDifferentialFolded(t *testing.T) {
	vars := []string{"a", "b"}
	slots := map[string]int{"a": 0, "b": 1}
	for seed := 0; seed < 1000; seed++ {
		rng := rand.New(rand.NewSource(int64(seed) + 1<<32))
		e := randExpr(rng, 4, vars)
		senv := []value.Value{value.Int(int64(rng.Intn(5))), value.Int(int64(rng.Intn(5) - 2))}
		menv := MapEnv{"a": senv[0], "b": senv[1]}

		wantV, wantErr := Eval(e, menv)
		foldV, foldErr := Eval(Fold(e), menv)
		if (wantErr == nil) != (foldErr == nil) || (wantErr == nil && wantV != foldV) {
			t.Fatalf("seed %d: Fold changed semantics of %s: (%v,%v) vs (%v,%v)",
				seed, e, wantV, wantErr, foldV, foldErr)
		}
		gotV, gotErr := Compile(e, slots)(senv)
		refV, refErr := Compile(Fold(e), slots)(senv)
		if (gotErr == nil) != (refErr == nil) || (gotErr == nil && gotV != refV) {
			t.Fatalf("seed %d: Compile(e) != Compile(Fold(e)) on %s", seed, e)
		}
	}
}

// TestCompiledZeroAllocSteadyState checks the point of the slot environment:
// evaluating a compiled expression allocates nothing, including the folded
// constant chains and +0 identity shapes that reaction fusion produces.
func TestCompiledZeroAllocSteadyState(t *testing.T) {
	slots := map[string]int{"id1": 0, "v": 1}
	env := []value.Value{value.Int(41), value.Int(7)}
	exprs := []Expr{
		Binary{Op: "+", L: Var{Name: "id1"}, R: Lit{Val: value.Int(0)}},
		Binary{Op: "+", L: Binary{Op: "*", L: Lit{Val: value.Int(2)}, R: Lit{Val: value.Int(3)}}, R: Var{Name: "id1"}},
		Binary{Op: "and", L: Binary{Op: "<", L: Var{Name: "id1"}, R: Lit{Val: value.Int(100)}},
			R: Binary{Op: "!=", L: Var{Name: "v"}, R: Lit{Val: value.Int(0)}}},
		Call{Name: "min", Args: []Expr{Var{Name: "id1"}, Var{Name: "v"}}},
	}
	for _, e := range exprs {
		c := Compile(e, slots)
		if allocs := testing.AllocsPerRun(100, func() {
			if _, err := c(env); err != nil {
				t.Fatal(err)
			}
		}); allocs != 0 {
			t.Errorf("compiled %s allocates %v per eval, want 0", e, allocs)
		}
	}
}

// TestCompileIdentityFastPathKeepsErrors pins the soundness boundary of the
// +0/*1 fast paths: a non-int operand must still reach the real operator and
// surface its type error, identically to the oracle.
func TestCompileIdentityFastPathKeepsErrors(t *testing.T) {
	slots := map[string]int{"x": 0}
	e := Binary{Op: "+", L: Var{Name: "x"}, R: Lit{Val: value.Int(0)}}
	c := Compile(e, slots)

	if v, err := c([]value.Value{value.Int(-3)}); err != nil || v != value.Int(-3) {
		t.Fatalf("int fast path: (%v, %v)", v, err)
	}
	// Strings must error exactly as under Eval.
	wantV, wantErr := Eval(e, MapEnv{"x": value.Str("a")})
	gotV, gotErr := c([]value.Value{value.Str("a")})
	if (wantErr == nil) != (gotErr == nil) || (wantErr != nil && wantErr.Error() != gotErr.Error()) {
		t.Fatalf("string operand: oracle (%v,%v), compiled (%v,%v)", wantV, wantErr, gotV, gotErr)
	}
	// Floats must keep IEEE normalization (-0.0 + 0 is +0.0 with sign bit clear).
	gotF, err := c([]value.Value{value.Float(2.5)})
	if err != nil || gotF != value.Float(2.5) {
		t.Fatalf("float operand: (%v, %v)", gotF, err)
	}
}
