package expr

import (
	"fmt"

	"repro/internal/value"
)

// Type is a static type in the expression language: either a concrete scalar
// kind or Any (unconstrained). It is the foundation of the Structured-Gamma-
// style compile-time checking in package schema.
type Type struct {
	kind value.Kind
	any  bool
}

// AnyType is the unconstrained type.
var AnyType = Type{any: true}

// TypeOf returns the concrete type for a scalar kind.
func TypeOf(k value.Kind) Type { return Type{kind: k} }

// Convenience concrete types.
var (
	IntType    = TypeOf(value.KindInt)
	FloatType  = TypeOf(value.KindFloat)
	BoolType   = TypeOf(value.KindBool)
	StringType = TypeOf(value.KindString)
)

// IsAny reports whether t is unconstrained.
func (t Type) IsAny() bool { return t.any }

// Kind returns the concrete kind; only meaningful when !IsAny.
func (t Type) Kind() value.Kind { return t.kind }

// Numeric reports whether t could be a number.
func (t Type) Numeric() bool {
	return t.any || t.kind == value.KindInt || t.kind == value.KindFloat
}

// Truthy reports whether t could act as a condition (bool or numeric).
func (t Type) Truthy() bool { return t.any || t.kind != value.KindString }

func (t Type) String() string {
	if t.any {
		return "any"
	}
	return t.kind.String()
}

// Unify returns the most specific type consistent with both, or an error
// when the two concrete kinds conflict (numeric kinds unify to float, the
// promotion the evaluator performs).
func Unify(a, b Type) (Type, error) {
	switch {
	case a.any:
		return b, nil
	case b.any:
		return a, nil
	case a.kind == b.kind:
		return a, nil
	case a.Numeric() && b.Numeric():
		return FloatType, nil
	}
	return Type{}, fmt.Errorf("expr: type mismatch: %s vs %s", a, b)
}

// TypeEnv resolves variable types during inference.
type TypeEnv map[string]Type

// Infer computes the static type of e under env. Unknown variables infer as
// Any (they will be constrained elsewhere); kind conflicts are errors. The
// rules mirror Eval: arithmetic is numeric (string + string concatenates),
// comparisons and logic yield bool, min/max/abs are numeric-preserving.
func Infer(e Expr, env TypeEnv) (Type, error) {
	switch n := e.(type) {
	case Lit:
		return TypeOf(n.Val.Kind()), nil
	case Var:
		if t, ok := env[n.Name]; ok {
			return t, nil
		}
		return AnyType, nil
	case Unary:
		t, err := Infer(n.X, env)
		if err != nil {
			return Type{}, err
		}
		switch n.Op {
		case "-", "+":
			if !t.Numeric() {
				return Type{}, fmt.Errorf("expr: unary %s needs a number, got %s", n.Op, t)
			}
			return t, nil
		case "!", "not":
			if !t.Truthy() {
				return Type{}, fmt.Errorf("expr: ! needs a condition, got %s", t)
			}
			return BoolType, nil
		}
		return Type{}, fmt.Errorf("expr: unknown unary operator %q", n.Op)
	case Binary:
		l, err := Infer(n.L, env)
		if err != nil {
			return Type{}, err
		}
		r, err := Infer(n.R, env)
		if err != nil {
			return Type{}, err
		}
		switch n.Op {
		case "+":
			if l.Kind() == value.KindString && r.Kind() == value.KindString {
				return StringType, nil
			}
			fallthrough
		case "-", "*", "/":
			if !l.Numeric() || !r.Numeric() {
				if n.Op == "+" && (l.any || r.any) {
					return AnyType, nil // could be concatenation or addition
				}
				return Type{}, fmt.Errorf("expr: %s needs numbers, got %s and %s", n.Op, l, r)
			}
			return Unify(l, r)
		case "%":
			if (l.any || l.kind == value.KindInt) && (r.any || r.kind == value.KindInt) {
				return IntType, nil
			}
			return Type{}, fmt.Errorf("expr: %% needs integers, got %s and %s", l, r)
		case "==", "!=":
			return BoolType, nil
		case "<", "<=", ">", ">=":
			if _, err := Unify(l, r); err != nil {
				return Type{}, fmt.Errorf("expr: ordering %s: %w", n.Op, err)
			}
			return BoolType, nil
		case "and", "or", "&&", "||":
			if !l.Truthy() || !r.Truthy() {
				return Type{}, fmt.Errorf("expr: %s needs conditions, got %s and %s", n.Op, l, r)
			}
			return BoolType, nil
		}
		return Type{}, fmt.Errorf("expr: unknown binary operator %q", n.Op)
	case Call:
		switch n.Name {
		case "min", "max":
			if len(n.Args) == 0 {
				return Type{}, fmt.Errorf("expr: %s needs arguments", n.Name)
			}
			t := AnyType
			for _, a := range n.Args {
				at, err := Infer(a, env)
				if err != nil {
					return Type{}, err
				}
				t, err = Unify(t, at)
				if err != nil {
					return Type{}, err
				}
			}
			return t, nil
		case "abs":
			if len(n.Args) != 1 {
				return Type{}, fmt.Errorf("expr: abs needs exactly 1 argument")
			}
			t, err := Infer(n.Args[0], env)
			if err != nil {
				return Type{}, err
			}
			if !t.Numeric() {
				return Type{}, fmt.Errorf("expr: abs needs a number, got %s", t)
			}
			return t, nil
		}
		return Type{}, fmt.Errorf("expr: unknown function %q", n.Name)
	}
	return Type{}, fmt.Errorf("expr: unknown node %T", e)
}
