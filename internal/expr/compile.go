package expr

import (
	"fmt"

	"repro/internal/value"
)

// Compiled is an expression lowered to a closure chain over a slot-indexed
// environment: pattern variables are resolved to integer slots at compile
// time, so evaluation reads env[slot] instead of hashing a name into a
// map-allocated MapEnv on every probe. A slot holding the zero (invalid)
// Value is unbound, exactly as a missing MapEnv key.
//
// Compiled closures are immutable after Compile and safe for concurrent use;
// the parallel Gamma runtime shares one compiled kernel across all workers.
//
// Semantics are bit-for-bit those of the tree-walking Eval on the same
// expression: identical values, identical error classes and messages,
// identical evaluation order and short-circuiting. The differential property
// test in compile_test.go holds the two implementations to that contract with
// Eval as the reference oracle.
type Compiled func(env []value.Value) (value.Value, error)

// CompiledBool is a compiled condition: Compiled followed by Truthy, the
// compiled counterpart of EvalBool.
type CompiledBool func(env []value.Value) (bool, error)

// Compile lowers e into a Compiled closure chain. Fold runs first, so
// constant subtrees (the literal chains produced by §III-A3 reaction fusion)
// are collapsed to single literal loads at compile time and pay nothing per
// evaluation. slots maps variable names to environment indexes; variables
// absent from slots evaluate to *UnboundVarError, as under an empty Env.
func Compile(e Expr, slots map[string]int) Compiled {
	return lower(Fold(e), slots)
}

// CompileBool is Compile for boolean positions (reaction conditions).
func CompileBool(e Expr, slots map[string]int) CompiledBool {
	c := Compile(e, slots)
	return func(env []value.Value) (bool, error) {
		v, err := c(env)
		if err != nil {
			return false, err
		}
		return v.Truthy()
	}
}

// constErr returns a Compiled that always fails with err — the lowering of a
// node whose failure is decided at compile time but, to match the oracle's
// evaluation order, must still surface at evaluation time.
func constErr(err error) Compiled {
	return func([]value.Value) (value.Value, error) { return value.Value{}, err }
}

// lower compiles one (already folded) node.
func lower(e Expr, slots map[string]int) Compiled {
	switch n := e.(type) {
	case Lit:
		v := n.Val
		return func([]value.Value) (value.Value, error) { return v, nil }
	case Var:
		ue := &UnboundVarError{Name: n.Name}
		idx, ok := slots[n.Name]
		if !ok {
			return constErr(ue)
		}
		return func(env []value.Value) (value.Value, error) {
			if idx < len(env) {
				if v := env[idx]; v.IsValid() {
					return v, nil
				}
			}
			return value.Value{}, ue
		}
	case Unary:
		cx := lower(n.X, slots)
		fn, ok := value.UnaryFn(n.Op)
		if !ok {
			// value.Unary reports the unknown operator only after the operand
			// evaluated; mirror that order.
			err := fmt.Errorf("value: unknown unary operator %q", n.Op)
			return func(env []value.Value) (value.Value, error) {
				if _, xerr := cx(env); xerr != nil {
					return value.Value{}, xerr
				}
				return value.Value{}, err
			}
		}
		return func(env []value.Value) (value.Value, error) {
			x, err := cx(env)
			if err != nil {
				return value.Value{}, err
			}
			return fn(x)
		}
	case Binary:
		return lowerBinary(n, slots)
	case Call:
		cargs := make([]Compiled, len(n.Args))
		for i, a := range n.Args {
			cargs[i] = lower(a, slots)
		}
		name := n.Name
		return func(env []value.Value) (value.Value, error) {
			// Evaluate every argument before dispatching, exactly as Eval
			// does — argument errors outrank arity and unknown-function
			// errors. The fixed buffer keeps the common small arities off
			// the heap.
			var buf [4]value.Value
			var args []value.Value
			if len(cargs) <= len(buf) {
				args = buf[:len(cargs)]
			} else {
				args = make([]value.Value, len(cargs))
			}
			for i, ca := range cargs {
				v, err := ca(env)
				if err != nil {
					return value.Value{}, err
				}
				args[i] = v
			}
			return callBuiltin(name, args)
		}
	}
	return constErr(fmt.Errorf("expr: unknown node %T", e))
}

// lowerBinary compiles a binary node: short-circuit logic for and/or, a
// pre-resolved operator function otherwise, with integer identity fast paths
// for the +0/-0/*1 shapes reaction fusion leaves behind.
func lowerBinary(n Binary, slots map[string]int) Compiled {
	switch n.Op {
	case "and", "&&":
		cl, cr := lower(n.L, slots), lower(n.R, slots)
		return func(env []value.Value) (value.Value, error) {
			l, err := cl(env)
			if err != nil {
				return value.Value{}, err
			}
			t, err := l.Truthy()
			if err != nil {
				return value.Value{}, err
			}
			if !t {
				return value.Bool(false), nil
			}
			r, err := cr(env)
			if err != nil {
				return value.Value{}, err
			}
			rt, err := r.Truthy()
			if err != nil {
				return value.Value{}, err
			}
			return value.Bool(rt), nil
		}
	case "or", "||":
		cl, cr := lower(n.L, slots), lower(n.R, slots)
		return func(env []value.Value) (value.Value, error) {
			l, err := cl(env)
			if err != nil {
				return value.Value{}, err
			}
			t, err := l.Truthy()
			if err != nil {
				return value.Value{}, err
			}
			if t {
				return value.Bool(true), nil
			}
			r, err := cr(env)
			if err != nil {
				return value.Value{}, err
			}
			rt, err := r.Truthy()
			if err != nil {
				return value.Value{}, err
			}
			return value.Bool(rt), nil
		}
	}
	fn, ok := value.BinaryFn(n.Op)
	if !ok {
		cl, cr := lower(n.L, slots), lower(n.R, slots)
		err := fmt.Errorf("value: unknown binary operator %q", n.Op)
		return func(env []value.Value) (value.Value, error) {
			if _, lerr := cl(env); lerr != nil {
				return value.Value{}, lerr
			}
			if _, rerr := cr(env); rerr != nil {
				return value.Value{}, rerr
			}
			return value.Value{}, err
		}
	}
	// Integer identity fast paths: x+0, x-0, x*1, x/1, 0+x, 1*x skip the
	// operator entirely when the live operand is an int (the iteration-tag
	// arithmetic that fused reactions re-evaluate per firing). Non-int
	// operands fall through to fn, so type errors and float rounding
	// (-0.0+0 normalizes to +0.0) behave exactly as in the oracle.
	if lit, ok := n.R.(Lit); ok && lit.Val.Kind() == value.KindInt {
		if i := lit.Val.AsInt(); (i == 0 && (n.Op == "+" || n.Op == "-")) ||
			(i == 1 && (n.Op == "*" || n.Op == "/")) {
			cl, rv := lower(n.L, slots), lit.Val
			return func(env []value.Value) (value.Value, error) {
				x, err := cl(env)
				if err != nil {
					return value.Value{}, err
				}
				if x.Kind() == value.KindInt {
					return x, nil
				}
				return fn(x, rv)
			}
		}
	}
	if lit, ok := n.L.(Lit); ok && lit.Val.Kind() == value.KindInt {
		if i := lit.Val.AsInt(); (i == 0 && n.Op == "+") || (i == 1 && n.Op == "*") {
			cr, lv := lower(n.R, slots), lit.Val
			return func(env []value.Value) (value.Value, error) {
				x, err := cr(env)
				if err != nil {
					return value.Value{}, err
				}
				if x.Kind() == value.KindInt {
					return x, nil
				}
				return fn(lv, x)
			}
		}
	}
	cl, cr := lower(n.L, slots), lower(n.R, slots)
	return func(env []value.Value) (value.Value, error) {
		l, err := cl(env)
		if err != nil {
			return value.Value{}, err
		}
		r, err := cr(env)
		if err != nil {
			return value.Value{}, err
		}
		return fn(l, r)
	}
}
