package expr

import (
	"testing"

	"repro/internal/value"
)

func inferT(t *testing.T, src string, env TypeEnv) Type {
	t.Helper()
	ty, err := Infer(MustParse(src), env)
	if err != nil {
		t.Fatalf("Infer(%q): %v", src, err)
	}
	return ty
}

func TestInferBasics(t *testing.T) {
	env := TypeEnv{"i": IntType, "f": FloatType, "s": StringType, "b": BoolType}
	cases := []struct {
		src  string
		want Type
	}{
		{"1 + 2", IntType},
		{"i + 1", IntType},
		{"i + f", FloatType},
		{"1.5 * 2.0", FloatType},
		{"s + s", StringType},
		{"i % 3", IntType},
		{"-i", IntType},
		{"+f", FloatType},
		{"!b", BoolType},
		{"not i", BoolType},
		{"i == s", BoolType},
		{"i != 3", BoolType},
		{"i < 3", BoolType},
		{"b and i > 0", BoolType},
		{"min(i, 3)", IntType},
		{"min(i, f)", FloatType},
		{"abs(i)", IntType},
		{"q + 1", IntType},      // unknown var unifies with int
		{"q", AnyType},          // bare unknown
		{"q + r", AnyType},      // addition of two unknowns could concatenate
		{"s == 'A1'", BoolType}, // label comparisons
	}
	for _, c := range cases {
		got := inferT(t, c.src, env)
		if got != c.want {
			t.Errorf("Infer(%q) = %s, want %s", c.src, got, c.want)
		}
	}
}

func TestInferErrors(t *testing.T) {
	env := TypeEnv{"i": IntType, "s": StringType, "b": BoolType}
	for _, src := range []string{
		"s - s", "s * 2", "i % 1.5", "-s", "!s", "s and b", "b or s",
		"i < s", "abs(s)", "min()", "min(i, s)", "nosuch(i)", "abs(i, i)",
	} {
		if ty, err := Infer(MustParse(src), env); err == nil {
			t.Errorf("Infer(%q) = %s, want error", src, ty)
		}
	}
}

func TestUnify(t *testing.T) {
	if u, err := Unify(IntType, FloatType); err != nil || u != FloatType {
		t.Errorf("int⊔float = %v, %v", u, err)
	}
	if u, err := Unify(AnyType, StringType); err != nil || u != StringType {
		t.Errorf("any⊔string = %v, %v", u, err)
	}
	if u, err := Unify(BoolType, AnyType); err != nil || u != BoolType {
		t.Errorf("bool⊔any = %v, %v", u, err)
	}
	if _, err := Unify(BoolType, IntType); err == nil {
		t.Error("bool⊔int should fail")
	}
	if _, err := Unify(StringType, IntType); err == nil {
		t.Error("string⊔int should fail")
	}
}

func TestTypePredicates(t *testing.T) {
	if !AnyType.IsAny() || IntType.IsAny() {
		t.Error("IsAny wrong")
	}
	if !IntType.Numeric() || !FloatType.Numeric() || !AnyType.Numeric() || StringType.Numeric() {
		t.Error("Numeric wrong")
	}
	if !BoolType.Truthy() || !IntType.Truthy() || StringType.Truthy() {
		t.Error("Truthy wrong")
	}
	if IntType.String() != "int" || AnyType.String() != "any" {
		t.Error("String wrong")
	}
	if TypeOf(value.KindBool) != BoolType {
		t.Error("TypeOf wrong")
	}
}
