// Package expr implements the scalar expression language shared by the Gamma
// DSL, the reaction reducer and the mini imperative compiler.
//
// The paper's reactions carry two expression positions: the arithmetic
// expressions inside "by" products (e.g. id1 + id2) and the boolean reaction
// conditions (e.g. (x=='A1') or (x=='A11')). Both are instances of this one
// language. Keeping a single AST is what makes the reduction transformation
// (§III-A3 of the paper) mechanical: fusing reactions is symbolic
// substitution of product expressions into consumer expressions.
package expr

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/value"
)

// Expr is a node in the expression tree. Implementations are Lit, Var, Unary,
// Binary and Call. Expressions are immutable once built.
type Expr interface {
	// String renders the expression in parseable source form.
	String() string
	// appendFreeVars accumulates variable names into set.
	appendFreeVars(set map[string]struct{})
}

// Lit is a literal scalar value.
type Lit struct{ Val value.Value }

// Var is a reference to a named variable bound by the evaluation environment
// (in reactions these are the pattern variables id1, id2, x, v, ...).
type Var struct{ Name string }

// Unary applies Op ("-", "!", "+") to X.
type Unary struct {
	Op string
	X  Expr
}

// Binary applies Op to L and R. Supported operators are those accepted by
// value.Binary: + - * / % == != < <= > >= and or.
type Binary struct {
	Op   string
	L, R Expr
}

// Call invokes a builtin function: min, max, abs.
type Call struct {
	Name string
	Args []Expr
}

func (l Lit) String() string { return l.Val.String() }
func (v Var) String() string { return v.Name }

func (u Unary) String() string {
	if u.Op == "!" || u.Op == "-" || u.Op == "+" {
		return u.Op + parenthesize(u.X, unaryPrec)
	}
	return u.Op + " " + parenthesize(u.X, unaryPrec)
}

func (b Binary) String() string {
	p := precedence(b.Op)
	// Left-associative: the right child needs parentheses at equal precedence.
	return parenthesize(b.L, p) + " " + b.Op + " " + parenthesize(b.R, p+1)
}

func (c Call) String() string {
	parts := make([]string, len(c.Args))
	for i, a := range c.Args {
		parts[i] = a.String()
	}
	return c.Name + "(" + strings.Join(parts, ", ") + ")"
}

func (l Lit) appendFreeVars(map[string]struct{})       {}
func (v Var) appendFreeVars(set map[string]struct{})   { set[v.Name] = struct{}{} }
func (u Unary) appendFreeVars(set map[string]struct{}) { u.X.appendFreeVars(set) }
func (b Binary) appendFreeVars(set map[string]struct{}) {
	b.L.appendFreeVars(set)
	b.R.appendFreeVars(set)
}
func (c Call) appendFreeVars(set map[string]struct{}) {
	for _, a := range c.Args {
		a.appendFreeVars(set)
	}
}

const unaryPrec = 7

// precedence returns the binding strength of a binary operator; larger binds
// tighter. Mirrors the parser's climbing levels.
func precedence(op string) int {
	switch op {
	case "or", "||":
		return 1
	case "and", "&&":
		return 2
	case "==", "!=", "<", "<=", ">", ">=":
		return 3
	case "+", "-":
		return 4
	case "*", "/", "%":
		return 5
	}
	return 6
}

// parenthesize renders child, wrapping it in parentheses when its top-level
// operator binds more loosely than the context precedence.
func parenthesize(child Expr, ctx int) string {
	switch c := child.(type) {
	case Binary:
		if precedence(c.Op) < ctx {
			return "(" + c.String() + ")"
		}
	case Unary:
		if unaryPrec < ctx {
			return "(" + c.String() + ")"
		}
	}
	return child.String()
}

// FreeVars returns the sorted set of variable names referenced by e.
func FreeVars(e Expr) []string {
	set := make(map[string]struct{})
	e.appendFreeVars(set)
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Subst returns e with every Var whose name appears in bindings replaced by
// the bound expression. Unbound variables are left intact. The result shares
// no mutable state with e (nodes are immutable).
func Subst(e Expr, bindings map[string]Expr) Expr {
	switch n := e.(type) {
	case Lit:
		return n
	case Var:
		if repl, ok := bindings[n.Name]; ok {
			return repl
		}
		return n
	case Unary:
		return Unary{Op: n.Op, X: Subst(n.X, bindings)}
	case Binary:
		return Binary{Op: n.Op, L: Subst(n.L, bindings), R: Subst(n.R, bindings)}
	case Call:
		args := make([]Expr, len(n.Args))
		for i, a := range n.Args {
			args[i] = Subst(a, bindings)
		}
		return Call{Name: n.Name, Args: args}
	}
	panic(fmt.Sprintf("expr: unknown node %T", e))
}

// Equal reports structural equality of two expressions.
func Equal(a, b Expr) bool {
	switch x := a.(type) {
	case Lit:
		y, ok := b.(Lit)
		return ok && x.Val == y.Val
	case Var:
		y, ok := b.(Var)
		return ok && x.Name == y.Name
	case Unary:
		y, ok := b.(Unary)
		return ok && x.Op == y.Op && Equal(x.X, y.X)
	case Binary:
		y, ok := b.(Binary)
		return ok && x.Op == y.Op && Equal(x.L, y.L) && Equal(x.R, y.R)
	case Call:
		y, ok := b.(Call)
		if !ok || x.Name != y.Name || len(x.Args) != len(y.Args) {
			return false
		}
		for i := range x.Args {
			if !Equal(x.Args[i], y.Args[i]) {
				return false
			}
		}
		return true
	}
	return false
}

// Fold performs bottom-up constant folding: any subtree whose operands are
// all literals is replaced by its value. Errors during folding (division by
// zero, type mismatch) leave the subtree untouched so evaluation surfaces the
// error at run time with full context.
func Fold(e Expr) Expr {
	switch n := e.(type) {
	case Unary:
		x := Fold(n.X)
		if lit, ok := x.(Lit); ok {
			if v, err := value.Unary(n.Op, lit.Val); err == nil {
				return Lit{Val: v}
			}
		}
		return Unary{Op: n.Op, X: x}
	case Binary:
		l, r := Fold(n.L), Fold(n.R)
		if ll, ok := l.(Lit); ok {
			if rl, ok := r.(Lit); ok {
				if v, err := value.Binary(n.Op, ll.Val, rl.Val); err == nil {
					return Lit{Val: v}
				}
			}
		}
		return Binary{Op: n.Op, L: l, R: r}
	case Call:
		args := make([]Expr, len(n.Args))
		allLit := true
		for i, a := range n.Args {
			args[i] = Fold(a)
			if _, ok := args[i].(Lit); !ok {
				allLit = false
			}
		}
		if allLit {
			vals := make([]value.Value, len(args))
			for i, a := range args {
				vals[i] = a.(Lit).Val
			}
			if v, err := callBuiltin(n.Name, vals); err == nil {
				return Lit{Val: v}
			}
		}
		return Call{Name: n.Name, Args: args}
	default:
		return e
	}
}
