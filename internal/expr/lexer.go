package expr

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// TokenKind classifies lexical tokens. The lexer is shared with the Gamma DSL
// parser (package gammalang), which layers its keywords on top of TokIdent.
type TokenKind uint8

// Token kinds produced by the Lexer.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokNumber
	TokString
	TokOp     // + - * / % == != < <= > >= ! && || =
	TokLParen // (
	TokRParen // )
	TokLBrack // [
	TokRBrack // ]
	TokLBrace // {
	TokRBrace // }
	TokComma  // ,
	TokSemi   // ;
	TokPipe   // | (Gamma parallel composition)
	TokNewline
)

func (k TokenKind) String() string {
	switch k {
	case TokEOF:
		return "EOF"
	case TokIdent:
		return "identifier"
	case TokNumber:
		return "number"
	case TokString:
		return "string"
	case TokOp:
		return "operator"
	case TokLParen:
		return "'('"
	case TokRParen:
		return "')'"
	case TokLBrack:
		return "'['"
	case TokRBrack:
		return "']'"
	case TokLBrace:
		return "'{'"
	case TokRBrace:
		return "'}'"
	case TokComma:
		return "','"
	case TokSemi:
		return "';'"
	case TokPipe:
		return "'|'"
	case TokNewline:
		return "newline"
	default:
		return "unknown"
	}
}

// Token is a lexical token with its source position (1-based line/column).
type Token struct {
	Kind TokenKind
	Text string
	Line int
	Col  int
}

func (t Token) String() string {
	if t.Text == "" {
		return t.Kind.String()
	}
	return fmt.Sprintf("%s %q", t.Kind, t.Text)
}

// SyntaxError reports a lexical or parse error with position information.
type SyntaxError struct {
	Line int
	Col  int
	Msg  string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("syntax error at line %d col %d: %s", e.Line, e.Col, e.Msg)
}

// Lexer tokenizes expression and Gamma DSL source text. Comments run from
// '#' or '//' to end of line. When KeepNewlines is set, end-of-line is
// reported as a TokNewline token (the Gamma DSL is line-sensitive); otherwise
// newlines are plain whitespace.
type Lexer struct {
	src          string
	pos          int
	line, col    int
	KeepNewlines bool
}

// NewLexer returns a Lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

func (l *Lexer) errf(format string, args ...any) error {
	return &SyntaxError{Line: l.line, Col: l.col, Msg: fmt.Sprintf(format, args...)}
}

func (l *Lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *Lexer) advance(n int) {
	for i := 0; i < n && l.pos < len(l.src); i++ {
		if l.src[l.pos] == '\n' {
			l.line++
			l.col = 1
		} else {
			l.col++
		}
		l.pos++
	}
}

// skipSpace consumes whitespace and comments, stopping before a newline when
// KeepNewlines is set.
func (l *Lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			if l.KeepNewlines {
				return
			}
			l.advance(1)
		case c == ' ' || c == '\t' || c == '\r':
			l.advance(1)
		case c == '#':
			l.skipToEOL()
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			l.skipToEOL()
		default:
			return
		}
	}
}

func (l *Lexer) skipToEOL() {
	for l.pos < len(l.src) && l.src[l.pos] != '\n' {
		l.advance(1)
	}
}

func isIdentStart(r rune) bool { return r == '_' || unicode.IsLetter(r) }
func isIdentPart(r rune) bool  { return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r) }

// Next returns the next token, or an error for malformed input.
func (l *Lexer) Next() (Token, error) {
	l.skipSpace()
	tok := Token{Line: l.line, Col: l.col}
	if l.pos >= len(l.src) {
		tok.Kind = TokEOF
		return tok, nil
	}
	c := l.src[l.pos]
	switch {
	case c == '\n':
		tok.Kind = TokNewline
		l.advance(1)
		return tok, nil
	case c >= '0' && c <= '9':
		return l.lexNumber()
	case c == '\'' || c == '"':
		return l.lexString(c)
	case c == '(':
		tok.Kind = TokLParen
	case c == ')':
		tok.Kind = TokRParen
	case c == '[':
		tok.Kind = TokLBrack
	case c == ']':
		tok.Kind = TokRBrack
	case c == '{':
		tok.Kind = TokLBrace
	case c == '}':
		tok.Kind = TokRBrace
	case c == ',':
		tok.Kind = TokComma
	case c == ';':
		tok.Kind = TokSemi
	default:
		r, _ := utf8.DecodeRuneInString(l.src[l.pos:])
		if isIdentStart(r) {
			return l.lexIdent()
		}
		return l.lexOperator()
	}
	tok.Text = string(c)
	l.advance(1)
	return tok, nil
}

func (l *Lexer) lexNumber() (Token, error) {
	tok := Token{Kind: TokNumber, Line: l.line, Col: l.col}
	start := l.pos
	seenDot := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c >= '0' && c <= '9' {
			l.advance(1)
			continue
		}
		if c == '.' && !seenDot && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9' {
			seenDot = true
			l.advance(1)
			continue
		}
		break
	}
	tok.Text = l.src[start:l.pos]
	return tok, nil
}

func (l *Lexer) lexString(quote byte) (Token, error) {
	tok := Token{Kind: TokString, Line: l.line, Col: l.col}
	l.advance(1) // opening quote
	start := l.pos
	for l.pos < len(l.src) && l.src[l.pos] != quote && l.src[l.pos] != '\n' {
		l.advance(1)
	}
	if l.pos >= len(l.src) || l.src[l.pos] != quote {
		return tok, l.errf("unterminated string literal")
	}
	tok.Text = l.src[start:l.pos]
	l.advance(1) // closing quote
	return tok, nil
}

func (l *Lexer) lexIdent() (Token, error) {
	tok := Token{Kind: TokIdent, Line: l.line, Col: l.col}
	start := l.pos
	for l.pos < len(l.src) {
		r, sz := utf8.DecodeRuneInString(l.src[l.pos:])
		if !isIdentPart(r) {
			break
		}
		l.advance(sz)
	}
	tok.Text = l.src[start:l.pos]
	return tok, nil
}

// twoByteOps are the operators spelled with two characters, checked before
// single-character operators so "==" does not lex as "=", "=".
var twoByteOps = []string{"==", "!=", "<=", ">=", "&&", "||"}

func (l *Lexer) lexOperator() (Token, error) {
	tok := Token{Kind: TokOp, Line: l.line, Col: l.col}
	rest := l.src[l.pos:]
	for _, op := range twoByteOps {
		if strings.HasPrefix(rest, op) {
			tok.Text = op
			l.advance(2)
			return tok, nil
		}
	}
	switch rest[0] {
	case '+', '-', '*', '/', '%', '<', '>', '!', '=':
		tok.Text = string(rest[0])
		l.advance(1)
		return tok, nil
	case '|':
		tok.Kind = TokPipe
		tok.Text = "|"
		l.advance(1)
		return tok, nil
	}
	return tok, l.errf("unexpected character %q", rest[0])
}

// LexAll tokenizes the whole input, excluding the trailing EOF token.
func LexAll(src string) ([]Token, error) {
	l := NewLexer(src)
	var toks []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		if t.Kind == TokEOF {
			return toks, nil
		}
		toks = append(toks, t)
	}
}
