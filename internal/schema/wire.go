package schema

// The versioned wire format of the gammad service (cmd/gammad,
// internal/service): JSON envelopes that carry Gamma programs and dataflow
// graphs over HTTP, plus the serializable RunSpec both the service and the
// library facade configure runs from.
//
// Versioning contract (v1):
//
//   - every envelope carries a top-level "version" of the form
//     "<major>.<minor>";
//   - decoders reject unknown MAJOR versions with rt.ErrInvalid — a major
//     bump is allowed to change field meanings;
//   - decoders tolerate unknown fields and unknown MINOR versions — a minor
//     bump may only add fields, so an old server understands a newer
//     client's envelope by ignoring what it does not know, and vice versa;
//   - error codes are the stable identifiers of rt.Code.
//
// The program payloads reuse the repository's existing text formats rather
// than inventing JSON mirrors of the ASTs: Gamma programs travel as Fig. 3
// grammar source plus a multiset literal, dataflow graphs as dfir text. Both
// are the formats the cmd/ tools already read and write, so anything that
// can be run locally can be POSTed verbatim.

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/rt"
)

// Wire format version. Minor bumps are additive; major bumps may break.
// 1.1 added EngineMatrix to the engine enum — old 1.0 peers ignore specs and
// responses mentioning it per the minor-version contract. 1.2 added the
// RunSpec.Trace knob and the RunStats payload of GET /v1/runs/{id}/stats; a
// 1.1 server ignores Trace (the run simply goes untraced) and a 1.1 client
// never asks for stats, so both directions stay additive. 1.3 added the
// schedule trace format (?format=schedule on the trace endpoint) and the
// POST /v1/replay envelopes (ReplayRequest/ReplayResponse); older servers
// 404 the endpoint and reject the format, older clients never call either.
const (
	WireMajor   = 1
	WireMinor   = 3
	WireVersion = "1.3"
)

// CheckWireVersion validates an envelope's version field: missing or
// malformed versions and unknown major versions are rt.ErrInvalid; any minor
// version under the known major is accepted (minor bumps are additive).
func CheckWireVersion(v string) error {
	if v == "" {
		return rt.Mark(rt.ErrInvalid, fmt.Errorf("wire: missing version (want %q)", WireVersion))
	}
	major, _, ok := strings.Cut(v, ".")
	if !ok {
		return rt.Mark(rt.ErrInvalid, fmt.Errorf("wire: malformed version %q (want major.minor)", v))
	}
	n, err := strconv.Atoi(major)
	if err != nil {
		return rt.Mark(rt.ErrInvalid, fmt.Errorf("wire: malformed version %q: %v", v, err))
	}
	if n != WireMajor {
		return rt.Mark(rt.ErrInvalid, fmt.Errorf("wire: unsupported major version %d (this build speaks %s)", n, WireVersion))
	}
	return nil
}

// Engines selectable in a RunSpec. Auto picks sequential unless Workers asks
// for more; the explicit values force one side regardless of Workers.
const (
	EngineAuto     = ""         // sequential unless Workers > 1
	EngineSeq      = "seq"      // the deterministic sequential interpreter
	EngineParallel = "parallel" // the work-stealing parallel runtime
	// EngineMatrix is the bulk-synchronous sparse-matrix dataflow engine
	// (wire minor 1.1, dataflow runs only): single-threaded ticks firing
	// every enabled vertex per round. Gamma runs reject it at Validate.
	EngineMatrix = "matrix"
)

// RunSpec is the serializable core of a run configuration: the knobs that
// make sense both for an in-process library call and for a run submitted to
// gammad over the wire. The facade embeds it in RunConfig (so library
// callers set these fields directly) and RunRequest embeds it in the
// envelope (so the service configures runs from the same struct instead of a
// parallel one).
type RunSpec struct {
	// Engine selects the execution engine: EngineAuto, EngineSeq or
	// EngineParallel. Unknown values fail Validate with rt.ErrInvalid.
	Engine string `json:"engine,omitempty"`
	// Workers is the number of concurrent executors (reaction workers or
	// dataflow PEs). Under EngineAuto, 0 or 1 selects the deterministic
	// sequential scheduler; under EngineParallel, 0 means one per CPU.
	Workers int `json:"workers,omitempty"`
	// Seed seeds nondeterministic choices. The dataflow runtime is
	// tag-deterministic and ignores it.
	Seed int64 `json:"seed,omitempty"`
	// MaxSteps bounds total reaction firings (Gamma) or vertex activations
	// (dataflow); 0 means no bound (the service substitutes its per-run
	// cap). Exhaustion reports rt.ErrMaxSteps.
	MaxSteps int64 `json:"max_steps,omitempty"`
	// TimeoutMS bounds the run's wall-clock time in milliseconds; 0 means no
	// deadline. Expiry reports rt.ErrDeadline.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Trace asks the service to record the run's firing history (wire minor
	// 1.2): event rings plus firing provenance, retained with the terminal run
	// and served at GET /v1/runs/{id}/trace and /stats. Subject to the
	// server's sampling rate — a traced=false in the run's stats means the
	// sampler skipped it. Older servers ignore the field entirely.
	Trace bool `json:"trace,omitempty"`
}

// Validate reports rt.ErrInvalid for specs no engine can execute: unknown
// engine names and negative knobs.
func (s RunSpec) Validate() error {
	switch s.Engine {
	case EngineAuto, EngineSeq, EngineParallel, EngineMatrix:
	default:
		return rt.Mark(rt.ErrInvalid, fmt.Errorf("spec: unknown engine %q (want %q, %q, %q or %q)",
			s.Engine, EngineAuto, EngineSeq, EngineParallel, EngineMatrix))
	}
	if s.Workers < 0 {
		return rt.Mark(rt.ErrInvalid, fmt.Errorf("spec: negative workers %d", s.Workers))
	}
	if s.MaxSteps < 0 {
		return rt.Mark(rt.ErrInvalid, fmt.Errorf("spec: negative max_steps %d", s.MaxSteps))
	}
	if s.TimeoutMS < 0 {
		return rt.Mark(rt.ErrInvalid, fmt.Errorf("spec: negative timeout_ms %d", s.TimeoutMS))
	}
	return nil
}

// EffectiveWorkers resolves Engine and Workers into the worker count the
// runtimes understand (0/1 = sequential, >1 = parallel).
func (s RunSpec) EffectiveWorkers() int {
	switch s.Engine {
	case EngineSeq, EngineMatrix:
		// The matrix engine is single-threaded: its parallelism is the width
		// of each tick's fire-vector, not a worker count.
		return 1
	case EngineParallel:
		if s.Workers > 1 {
			return s.Workers
		}
		if n := runtime.GOMAXPROCS(0); n > 1 {
			return n
		}
		return 2
	default:
		return s.Workers
	}
}

// Timeout returns TimeoutMS as a duration.
func (s RunSpec) Timeout() time.Duration { return time.Duration(s.TimeoutMS) * time.Millisecond }

// Context derives the run context from ctx: bounded by Timeout when one is
// set, ctx itself (with a no-op cancel) otherwise.
func (s RunSpec) Context(ctx context.Context) (context.Context, context.CancelFunc) {
	if s.TimeoutMS <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, s.Timeout())
}

// Run kinds: which model a RunRequest submits.
const (
	KindGamma    = "gamma"    // Program (Fig. 3 grammar) + Init (multiset literal)
	KindDataflow = "dataflow" // Graph (dfir text)
)

// RunRequest is the v1 submission envelope of POST /v1/runs.
type RunRequest struct {
	// Version is the wire format version, WireVersion on envelopes this
	// build produces.
	Version string `json:"version"`
	// Kind selects the model: KindGamma or KindDataflow.
	Kind string `json:"kind"`
	// Program is the Gamma source in the Fig. 3 grammar (KindGamma).
	Program string `json:"program,omitempty"`
	// Init is the initial multiset literal, e.g. "{[1,'A1'], [5,'B1']}"
	// (KindGamma; may be empty when Program declares init { ... }).
	Init string `json:"init,omitempty"`
	// Graph is the dataflow graph in dfir text (KindDataflow).
	Graph string `json:"graph,omitempty"`
	// Spec holds the execution knobs.
	Spec RunSpec `json:"spec"`
}

// NewGammaRequest builds a v1 Gamma submission.
func NewGammaRequest(program, init string, spec RunSpec) RunRequest {
	return RunRequest{Version: WireVersion, Kind: KindGamma, Program: program, Init: init, Spec: spec}
}

// NewGraphRequest builds a v1 dataflow submission.
func NewGraphRequest(graph string, spec RunSpec) RunRequest {
	return RunRequest{Version: WireVersion, Kind: KindDataflow, Graph: graph, Spec: spec}
}

// Validate checks the envelope's version, kind, payload shape and spec.
// Violations are rt.ErrInvalid; the payloads themselves are only parsed at
// execution time (their errors are rt.ErrParse).
func (r *RunRequest) Validate() error {
	if err := CheckWireVersion(r.Version); err != nil {
		return err
	}
	switch r.Kind {
	case KindGamma:
		if r.Program == "" {
			return rt.Mark(rt.ErrInvalid, fmt.Errorf("wire: kind %q needs a program", r.Kind))
		}
		if r.Graph != "" {
			return rt.Mark(rt.ErrInvalid, fmt.Errorf("wire: kind %q does not take a graph", r.Kind))
		}
		if r.Spec.Engine == EngineMatrix {
			return rt.Mark(rt.ErrInvalid, fmt.Errorf("wire: engine %q runs dataflow graphs only", EngineMatrix))
		}
	case KindDataflow:
		if r.Graph == "" {
			return rt.Mark(rt.ErrInvalid, fmt.Errorf("wire: kind %q needs a graph", r.Kind))
		}
		if r.Program != "" || r.Init != "" {
			return rt.Mark(rt.ErrInvalid, fmt.Errorf("wire: kind %q does not take a program/init", r.Kind))
		}
	case "":
		return rt.Mark(rt.ErrInvalid, fmt.Errorf("wire: missing kind (want %q or %q)", KindGamma, KindDataflow))
	default:
		return rt.Mark(rt.ErrInvalid, fmt.Errorf("wire: unknown kind %q (want %q or %q)", r.Kind, KindGamma, KindDataflow))
	}
	return r.Spec.Validate()
}

// Encode marshals the envelope in the canonical indented form (the form the
// golden files pin).
func (r RunRequest) Encode() ([]byte, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// DecodeRunRequest unmarshals and validates a v1 submission. Unknown fields
// are tolerated (the minor-version contract); syntactically broken JSON is
// rt.ErrParse, structural violations are rt.ErrInvalid.
func DecodeRunRequest(data []byte) (*RunRequest, error) {
	var r RunRequest
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, rt.Mark(rt.ErrParse, fmt.Errorf("wire: %w", err))
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return &r, nil
}

// Run states. Pending and running are transient; done, failed and canceled
// are terminal.
const (
	StatePending  = "pending"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// TerminalState reports whether a run in this state will never change again.
func TerminalState(s string) bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// WireError is the error half of a response envelope: the stable taxonomy
// code (rt.Code) plus the human-readable message.
type WireError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// NewWireError converts a runtime error into its wire form.
func NewWireError(err error) *WireError {
	if err == nil {
		return nil
	}
	return &WireError{Code: rt.Code(err), Message: err.Error()}
}

// Err reconstructs a classified error from the wire form: the message prints
// as received, and errors.Is matches the sentinel class named by Code (for
// the classes that have one).
func (e *WireError) Err() error {
	if e == nil {
		return nil
	}
	err := fmt.Errorf("remote: %s", e.Message)
	if class := rt.FromCode(e.Code); class != nil {
		return rt.Mark(class, err)
	}
	return err
}

func (e *WireError) Error() string { return fmt.Sprintf("%s (%s)", e.Message, e.Code) }

// RunResult is the payload of a finished (or partially executed) run.
type RunResult struct {
	// Multiset is the final multiset literal of a Gamma run — the stable
	// state under Eq. 1 when the run finished cleanly, the partial state at
	// the point of interruption otherwise.
	Multiset string `json:"multiset,omitempty"`
	// Outputs holds a dataflow run's terminal-edge tokens, each series
	// sorted by tag and rendered "value@tag".
	Outputs map[string][]string `json:"outputs,omitempty"`
	// Steps is the number of reaction firings or vertex activations.
	Steps int64 `json:"steps"`
	// WallMS is the execution wall time in milliseconds (queue wait
	// excluded).
	WallMS float64 `json:"wall_ms"`
}

// RunResponse is the v1 response envelope of the /v1/runs endpoints.
type RunResponse struct {
	Version string `json:"version"`
	// ID names the run for GET /v1/runs/{id} and DELETE /v1/runs/{id}.
	ID string `json:"id"`
	// State is one of the State* constants.
	State string `json:"state"`
	// Kind echoes the submission's kind.
	Kind string `json:"kind,omitempty"`
	// Tenant is the API-key identity the run is accounted against.
	Tenant string `json:"tenant,omitempty"`
	// Result is present once the run has executed (even partially).
	Result *RunResult `json:"result,omitempty"`
	// Error is present on failed and canceled runs, and on rejected
	// submissions.
	Error *WireError `json:"error,omitempty"`
}

// DecodeRunResponse unmarshals a response envelope, tolerating unknown
// fields and rejecting unknown major versions.
func DecodeRunResponse(data []byte) (*RunResponse, error) {
	var r RunResponse
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, rt.Mark(rt.ErrParse, fmt.Errorf("wire: %w", err))
	}
	if err := CheckWireVersion(r.Version); err != nil {
		return nil, err
	}
	return &r, nil
}

// Health is the payload of GET /v1/healthz.
type Health struct {
	Version string `json:"version"`
	// Status is "ok" while the service accepts submissions.
	Status string `json:"status"`
	// Pool and QueueDepth echo the server's configured capacity.
	Pool       int `json:"pool"`
	QueueDepth int `json:"queue_depth"`
	// Pending and Running are the current queue occupancy and in-flight
	// executions.
	Pending int `json:"pending"`
	Running int `json:"running"`
	// Completed counts terminal runs since the server started (done, failed
	// and canceled alike).
	Completed int64 `json:"completed"`
}

// DecodeHealth unmarshals a health payload with the same version rules as
// the run envelopes.
func DecodeHealth(data []byte) (*Health, error) {
	var h Health
	if err := json.Unmarshal(data, &h); err != nil {
		return nil, rt.Mark(rt.ErrParse, fmt.Errorf("wire: %w", err))
	}
	if err := CheckWireVersion(h.Version); err != nil {
		return nil, err
	}
	return &h, nil
}

// ReplayRequest is the submission envelope of POST /v1/replay (wire minor
// 1.3): a recorded schedule plus the program and initial state to replay it
// against. The replay is self-contained — it does not reference a stored
// run id, because the service consumes a run's initial multiset during
// execution; carrying program+init+schedule also lets a client replay a
// recording made anywhere (another server, a local gammarun) against this
// build's kernels.
type ReplayRequest struct {
	Version string `json:"version"`
	// Kind selects the model and must match the schedule document's own
	// kind header: KindGamma or KindDataflow.
	Kind string `json:"kind"`
	// Program and Init are the Gamma source and initial multiset literal
	// (KindGamma).
	Program string `json:"program,omitempty"`
	Init    string `json:"init,omitempty"`
	// Graph is the dataflow graph in dfir text (KindDataflow).
	Graph string `json:"graph,omitempty"`
	// Schedule is the schedule document (the line-oriented JSON of
	// internal/replay, as exported by GET /v1/runs/{id}/trace?format=schedule).
	Schedule string `json:"schedule"`
}

// NewGammaReplayRequest builds a v1 Gamma replay submission.
func NewGammaReplayRequest(program, init, schedule string) ReplayRequest {
	return ReplayRequest{Version: WireVersion, Kind: KindGamma, Program: program, Init: init, Schedule: schedule}
}

// NewGraphReplayRequest builds a v1 dataflow replay submission.
func NewGraphReplayRequest(graph, schedule string) ReplayRequest {
	return ReplayRequest{Version: WireVersion, Kind: KindDataflow, Graph: graph, Schedule: schedule}
}

// Validate checks the envelope shape with the same rules as RunRequest plus
// a non-empty schedule; the schedule document itself is parsed at execution
// time (rt.ErrParse).
func (r *ReplayRequest) Validate() error {
	if err := CheckWireVersion(r.Version); err != nil {
		return err
	}
	switch r.Kind {
	case KindGamma:
		if r.Program == "" {
			return rt.Mark(rt.ErrInvalid, fmt.Errorf("wire: replay kind %q needs a program", r.Kind))
		}
		if r.Graph != "" {
			return rt.Mark(rt.ErrInvalid, fmt.Errorf("wire: replay kind %q does not take a graph", r.Kind))
		}
	case KindDataflow:
		if r.Graph == "" {
			return rt.Mark(rt.ErrInvalid, fmt.Errorf("wire: replay kind %q needs a graph", r.Kind))
		}
		if r.Program != "" || r.Init != "" {
			return rt.Mark(rt.ErrInvalid, fmt.Errorf("wire: replay kind %q does not take a program/init", r.Kind))
		}
	case "":
		return rt.Mark(rt.ErrInvalid, fmt.Errorf("wire: missing kind (want %q or %q)", KindGamma, KindDataflow))
	default:
		return rt.Mark(rt.ErrInvalid, fmt.Errorf("wire: unknown kind %q (want %q or %q)", r.Kind, KindGamma, KindDataflow))
	}
	if r.Schedule == "" {
		return rt.Mark(rt.ErrInvalid, fmt.Errorf("wire: replay needs a schedule"))
	}
	return nil
}

// Encode marshals the envelope in the canonical indented form.
func (r ReplayRequest) Encode() ([]byte, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// DecodeReplayRequest unmarshals and validates a replay submission.
func DecodeReplayRequest(data []byte) (*ReplayRequest, error) {
	var r ReplayRequest
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, rt.Mark(rt.ErrParse, fmt.Errorf("wire: %w", err))
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return &r, nil
}

// WireDivergence is the wire mirror of a replay divergence report
// (internal/replay.Divergence): the first schedule step the replay could
// not reproduce, with the recorded-vs-reexecuted delta and the provenance
// ancestors of the divergent firing.
type WireDivergence struct {
	Step      int      `json:"step"`
	Seq       uint64   `json:"seq,omitempty"`
	Name      string   `json:"name"`
	Reason    string   `json:"reason"`
	Missing   []string `json:"missing,omitempty"`
	Expected  []string `json:"expected,omitempty"`
	Actual    []string `json:"actual,omitempty"`
	Ancestors []int    `json:"ancestors,omitempty"`
	Detail    string   `json:"detail,omitempty"`
}

// ReplayResponse is the result envelope of POST /v1/replay: either a
// confirmed replay (Divergence nil, Stable reporting whether the replayed
// state is a fixed point) or the divergence report.
type ReplayResponse struct {
	Version string `json:"version"`
	Kind    string `json:"kind"`
	// Steps counts the schedule steps replayed cleanly.
	Steps int `json:"steps"`
	// Stable reports whether the replayed final state admits no further
	// firing; false on divergence and on partial (e.g. canceled-run)
	// schedules.
	Stable bool `json:"stable"`
	// Multiset is a Gamma replay's final multiset literal (on divergence,
	// the state just before the divergent step).
	Multiset string `json:"multiset,omitempty"`
	// Outputs and Pending mirror the dataflow RunResult accounting for a
	// dataflow replay.
	Outputs map[string][]string `json:"outputs,omitempty"`
	Pending int                 `json:"pending,omitempty"`
	// Divergence is present when the replay stopped reproducing the record.
	Divergence *WireDivergence `json:"divergence,omitempty"`
	// Error is present on rejected or failed submissions.
	Error *WireError `json:"error,omitempty"`
}

// DecodeReplayResponse unmarshals a replay response with the same version
// rules as the run envelopes.
func DecodeReplayResponse(data []byte) (*ReplayResponse, error) {
	var r ReplayResponse
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, rt.Mark(rt.ErrParse, fmt.Errorf("wire: %w", err))
	}
	if err := CheckWireVersion(r.Version); err != nil {
		return nil, err
	}
	return &r, nil
}

// RunStats is the payload of GET /v1/runs/{id}/stats (wire minor 1.2): the
// run's execution accounting plus, when the run was traced, the recorder-side
// view of the same execution. Firings is counted by the provenance tracer on
// the engine's commit path, so on a traced sequential run it must equal Steps
// exactly — the wire form of the paper's firing-history equivalence, and the
// cross-check the service test suite holds.
type RunStats struct {
	Version string `json:"version"`
	ID      string `json:"id"`
	State   string `json:"state"`
	Kind    string `json:"kind"`
	// Tenant and Engine are the run's label-dimension coordinates in the
	// service registry (the engine resolved from the spec, not the raw
	// Engine field, so EngineAuto reports what actually ran).
	Tenant string `json:"tenant,omitempty"`
	Engine string `json:"engine,omitempty"`
	// Traced reports whether the sampler recorded this run; the trace and
	// firing fields below are only meaningful when it did.
	Traced bool `json:"traced"`
	// Steps and WallMS mirror the RunResult accounting; QueueWaitMS is the
	// admission-to-start latency the wall time excludes.
	Steps       int64   `json:"steps"`
	WallMS      float64 `json:"wall_ms"`
	QueueWaitMS float64 `json:"queue_wait_ms"`
	// TraceEvents and TraceDropped size the retained event rings: events still
	// buffered and events the rings overwrote (telemetry.dropped_events).
	TraceEvents  int64 `json:"trace_events,omitempty"`
	TraceDropped int64 `json:"trace_dropped,omitempty"`
	// Firings is the provenance tracer's committed-firing count.
	Firings int64 `json:"firings,omitempty"`
	// Counters is the traced run's private registry snapshot (gamma.steps,
	// probe/conflict counts, ...), absent on untraced runs.
	Counters map[string]int64 `json:"counters,omitempty"`
}

// DecodeRunStats unmarshals a stats payload with the same version rules as
// the run envelopes.
func DecodeRunStats(data []byte) (*RunStats, error) {
	var s RunStats
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, rt.Mark(rt.ErrParse, fmt.Errorf("wire: %w", err))
	}
	if err := CheckWireVersion(s.Version); err != nil {
		return nil, err
	}
	return &s, nil
}
