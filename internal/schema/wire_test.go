package schema

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/paper"
	"repro/internal/rt"
)

var updateGolden = flag.Bool("update", false, "rewrite the wire golden files from this build's encoder")

// TestWireGoldenExample1 pins the v1 JSON of the paper's Example 1 byte for
// byte: the envelope a v1 client produces for the canonical workload must
// never drift, because deployed servers parse it. Regenerate deliberately
// with go test ./internal/schema -run Golden -update after a (minor,
// additive) format change.
func TestWireGoldenExample1(t *testing.T) {
	req := NewGammaRequest(paper.Example1GammaListing, paper.Example1InitialMultiset,
		RunSpec{MaxSteps: 10000})
	got, err := req.Encode()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "example1_v1.json")
	if *updateGolden {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("example1 v1 envelope drifted from golden %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}

	// And the golden decodes back to the identical request (round trip).
	back, err := DecodeRunRequest(want)
	if err != nil {
		t.Fatal(err)
	}
	if *back != req {
		t.Fatalf("golden round trip changed the request:\ngot  %+v\nwant %+v", *back, req)
	}
}

// TestWireGoldenMatrixRequest pins the 1.1 envelope selecting the matrix
// engine — the additive enum value the minor bump introduced.
func TestWireGoldenMatrixRequest(t *testing.T) {
	req := NewGraphRequest("graph g\nconst c 1\nout c m\n",
		RunSpec{Engine: EngineMatrix, MaxSteps: 500})
	got, err := req.Encode()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "matrix_v1_1.json")
	if *updateGolden {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("matrix v1.1 envelope drifted from golden %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
	back, err := DecodeRunRequest(want)
	if err != nil {
		t.Fatal(err)
	}
	if *back != req {
		t.Fatalf("golden round trip changed the request:\ngot  %+v\nwant %+v", *back, req)
	}
	if back.Spec.Engine != EngineMatrix {
		t.Fatalf("engine lost in round trip: %q", back.Spec.Engine)
	}
}

// TestWireGoldenTraceRequest pins the 1.2 envelope asking for a traced run —
// the additive knob the 1.2 minor bump introduced.
func TestWireGoldenTraceRequest(t *testing.T) {
	req := NewGammaRequest(paper.Example1GammaListing, paper.Example1InitialMultiset,
		RunSpec{Engine: EngineSeq, MaxSteps: 10000, Trace: true})
	got, err := req.Encode()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "trace_v1_2.json")
	if *updateGolden {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("trace v1.2 envelope drifted from golden %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
	back, err := DecodeRunRequest(want)
	if err != nil {
		t.Fatal(err)
	}
	if *back != req {
		t.Fatalf("golden round trip changed the request:\ngot  %+v\nwant %+v", *back, req)
	}
	if !back.Spec.Trace {
		t.Fatal("trace knob lost in round trip")
	}
}

// TestWireGoldenReplayRequest pins the 1.3 replay envelope — the schedule-
// carrying submission of POST /v1/replay the 1.3 minor bump introduced.
func TestWireGoldenReplayRequest(t *testing.T) {
	schedule := `{"schedule":"v1","kind":"gamma","name":"ex1","steps":1}` + "\n" +
		`{"step":1,"seq":1,"name":"R1","consumed":["01\u001f3'A1'","05\u001f3'B1'"],"produced":["06\u001f3'B2'"]}` + "\n"
	req := NewGammaReplayRequest(paper.Example1GammaListing, paper.Example1InitialMultiset, schedule)
	got, err := req.Encode()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "replay_v1_3.json")
	if *updateGolden {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("replay v1.3 envelope drifted from golden %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
	back, err := DecodeReplayRequest(want)
	if err != nil {
		t.Fatal(err)
	}
	if *back != req {
		t.Fatalf("golden round trip changed the request:\ngot  %+v\nwant %+v", *back, req)
	}
}

// TestReplayRequestValidate exercises the replay envelope's shape rules.
func TestReplayRequestValidate(t *testing.T) {
	cases := []struct {
		name string
		data string
		want error
	}{
		{"gamma without program", `{"version": "1.3", "kind": "gamma", "schedule": "s"}`, rt.ErrInvalid},
		{"gamma with graph", `{"version": "1.3", "kind": "gamma", "program": "x", "graph": "g", "schedule": "s"}`, rt.ErrInvalid},
		{"dataflow without graph", `{"version": "1.3", "kind": "dataflow", "schedule": "s"}`, rt.ErrInvalid},
		{"dataflow with program", `{"version": "1.3", "kind": "dataflow", "graph": "g", "program": "x", "schedule": "s"}`, rt.ErrInvalid},
		{"missing schedule", `{"version": "1.3", "kind": "dataflow", "graph": "g"}`, rt.ErrInvalid},
		{"missing kind", `{"version": "1.3", "schedule": "s"}`, rt.ErrInvalid},
		{"major 2", `{"version": "2.0", "kind": "gamma", "program": "x", "schedule": "s"}`, rt.ErrInvalid},
		{"not json", `{`, rt.ErrParse},
	}
	for _, c := range cases {
		if _, err := DecodeReplayRequest([]byte(c.data)); !errors.Is(err, c.want) {
			t.Errorf("%s: DecodeReplayRequest = %v, want %v", c.name, err, c.want)
		}
	}
	good := `{"version": "1.2", "kind": "dataflow", "graph": "g", "schedule": "s", "future": true}`
	if _, err := DecodeReplayRequest([]byte(good)); err != nil {
		t.Errorf("older-stamped replay request with unknown fields rejected: %v", err)
	}
}

// TestReplayResponseRoundTrip checks the divergence report survives the wire.
func TestReplayResponseRoundTrip(t *testing.T) {
	resp := ReplayResponse{
		Version: WireVersion, Kind: KindGamma, Steps: 4, Stable: false,
		Multiset: "{[1, 'A1']}",
		Divergence: &WireDivergence{
			Step: 5, Seq: 5, Name: "R3", Reason: "product-mismatch",
			Expected: []string{"06\x1f3'B2'"}, Actual: []string{"07\x1f3'B2'"},
			Ancestors: []int{1, 3},
		},
	}
	data, err := json.Marshal(resp)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeReplayResponse(data)
	if err != nil {
		t.Fatal(err)
	}
	d := back.Divergence
	if d == nil || d.Step != 5 || d.Reason != "product-mismatch" || len(d.Ancestors) != 2 {
		t.Fatalf("divergence mis-decoded: %+v", d)
	}
	if _, err := DecodeReplayResponse([]byte(`{"version": "2.0"}`)); !errors.Is(err, rt.ErrInvalid) {
		t.Fatal("major-2 replay response accepted")
	}
}

// TestOldServerIgnoresTrace proves the 1.2 minor contract in the backward
// direction: the Trace field is invisible to a decoder that does not know it
// (json ignores unknown fields), and a 1.1-stamped envelope carrying it still
// validates here.
func TestOldServerIgnoresTrace(t *testing.T) {
	req := []byte(`{"version": "1.1", "kind": "dataflow", "graph": "g", "spec": {"trace": true}}`)
	r, err := DecodeRunRequest(req)
	if err != nil {
		t.Fatalf("1.1-stamped traced request rejected: %v", err)
	}
	if !r.Spec.Trace {
		t.Fatal("trace knob dropped on decode")
	}
}

// TestRunStatsRoundTrip checks the 1.2 stats payload decodes with the usual
// version gate and keeps its fields.
func TestRunStatsRoundTrip(t *testing.T) {
	s := RunStats{
		Version: WireVersion, ID: "r-7", State: StateDone, Kind: KindGamma,
		Tenant: "alice", Engine: EngineSeq, Traced: true,
		Steps: 12, WallMS: 1.5, QueueWaitMS: 0.2,
		TraceEvents: 12, TraceDropped: 0, Firings: 12,
		Counters: map[string]int64{"gamma.steps": 12},
	}
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeRunStats(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Firings != 12 || back.Steps != 12 || !back.Traced || back.Counters["gamma.steps"] != 12 {
		t.Fatalf("stats mis-decoded: %+v", back)
	}
	if _, err := DecodeRunStats([]byte(`{"version": "2.0", "id": "x"}`)); !errors.Is(err, rt.ErrInvalid) {
		t.Fatalf("major-2 stats accepted: %v", err)
	}
	if _, err := DecodeRunStats([]byte(`{`)); !errors.Is(err, rt.ErrParse) {
		t.Fatal("broken stats JSON not ErrParse")
	}
}

// TestOldClientDecodesMatrixMentions proves the minor-version contract for
// the 1.1 bump: a peer that only knows 1.0 semantics still decodes envelopes
// whose version is 1.1 and whose payloads mention the matrix engine —
// CheckWireVersion gates on the major alone, and enum values in responses are
// opaque strings to the decoder.
func TestOldClientDecodesMatrixMentions(t *testing.T) {
	resp := []byte(`{
		"version": "1.1",
		"id": "r-42",
		"state": "failed",
		"kind": "dataflow",
		"error": {"code": "invalid", "message": "engine \"matrix\" runs dataflow graphs only"}
	}`)
	r, err := DecodeRunResponse(resp)
	if err != nil {
		t.Fatalf("1.0-era decode path rejected a 1.1 response: %v", err)
	}
	if r.State != StateFailed || r.Error == nil || !errors.Is(r.Error.Err(), rt.ErrInvalid) {
		t.Fatalf("known fields mis-decoded: %+v", r)
	}

	// The engine enum is orthogonal to the envelope version: a request
	// stamped 1.0 that selects matrix still validates on a 1.1 server.
	req := []byte(`{"version": "1.0", "kind": "dataflow", "graph": "g", "spec": {"engine": "matrix"}}`)
	if _, err := DecodeRunRequest(req); err != nil {
		t.Fatalf("1.0-stamped matrix request rejected: %v", err)
	}
}

func TestWireVersionChecks(t *testing.T) {
	for _, v := range []string{"1.0", "1.1", "1.99"} {
		if err := CheckWireVersion(v); err != nil {
			t.Errorf("CheckWireVersion(%q) = %v, want nil (minor bumps are additive)", v, err)
		}
	}
	for _, v := range []string{"", "2.0", "0.9", "x.y", "3"} {
		err := CheckWireVersion(v)
		if !errors.Is(err, rt.ErrInvalid) {
			t.Errorf("CheckWireVersion(%q) = %v, want rt.ErrInvalid", v, err)
		}
	}
}

func TestDecodeToleratesUnknownFields(t *testing.T) {
	// A newer minor version may add fields; this build must ignore them.
	data := []byte(`{
		"version": "1.7",
		"kind": "gamma",
		"program": "R = replace [x], [y] by [x] if x < y",
		"init": "{[3], [1], [2]}",
		"spec": {"max_steps": 100, "priority": "batch"},
		"labels": {"team": "runtime"}
	}`)
	req, err := DecodeRunRequest(data)
	if err != nil {
		t.Fatalf("DecodeRunRequest with unknown fields: %v", err)
	}
	if req.Kind != KindGamma || req.Spec.MaxSteps != 100 {
		t.Fatalf("known fields mis-decoded: %+v", req)
	}

	resp := []byte(`{"version": "1.3", "id": "r-1", "state": "done", "shard": 4}`)
	r, err := DecodeRunResponse(resp)
	if err != nil || r.ID != "r-1" || r.State != StateDone {
		t.Fatalf("DecodeRunResponse with unknown fields: %+v, %v", r, err)
	}
}

func TestDecodeRejections(t *testing.T) {
	cases := []struct {
		name string
		data string
		want error
	}{
		{"not json", `{`, rt.ErrParse},
		{"missing version", `{"kind": "gamma", "program": "R = replace [x] by 0"}`, rt.ErrInvalid},
		{"major 2", `{"version": "2.0", "kind": "gamma", "program": "R = replace [x] by 0"}`, rt.ErrInvalid},
		{"missing kind", `{"version": "1.0", "program": "R = replace [x] by 0"}`, rt.ErrInvalid},
		{"unknown kind", `{"version": "1.0", "kind": "petri", "program": "x"}`, rt.ErrInvalid},
		{"gamma without program", `{"version": "1.0", "kind": "gamma"}`, rt.ErrInvalid},
		{"gamma with graph", `{"version": "1.0", "kind": "gamma", "program": "x", "graph": "y"}`, rt.ErrInvalid},
		{"dataflow without graph", `{"version": "1.0", "kind": "dataflow"}`, rt.ErrInvalid},
		{"dataflow with program", `{"version": "1.0", "kind": "dataflow", "graph": "g", "program": "x"}`, rt.ErrInvalid},
		{"bad engine", `{"version": "1.0", "kind": "dataflow", "graph": "g", "spec": {"engine": "quantum"}}`, rt.ErrInvalid},
		{"gamma with matrix engine", `{"version": "1.1", "kind": "gamma", "program": "x", "spec": {"engine": "matrix"}}`, rt.ErrInvalid},
		{"negative steps", `{"version": "1.0", "kind": "dataflow", "graph": "g", "spec": {"max_steps": -1}}`, rt.ErrInvalid},
	}
	for _, c := range cases {
		_, err := DecodeRunRequest([]byte(c.data))
		if !errors.Is(err, c.want) {
			t.Errorf("%s: DecodeRunRequest = %v, want %v", c.name, err, c.want)
		}
	}
}

func TestRunSpecEffectiveWorkers(t *testing.T) {
	cases := []struct {
		spec RunSpec
		want func(int) bool
		desc string
	}{
		{RunSpec{}, func(w int) bool { return w == 0 }, "auto default sequential"},
		{RunSpec{Workers: 8}, func(w int) bool { return w == 8 }, "auto explicit workers"},
		{RunSpec{Engine: EngineSeq, Workers: 8}, func(w int) bool { return w == 1 }, "seq forces 1"},
		{RunSpec{Engine: EngineMatrix, Workers: 8}, func(w int) bool { return w == 1 }, "matrix forces 1"},
		{RunSpec{Engine: EngineParallel, Workers: 4}, func(w int) bool { return w == 4 }, "parallel explicit"},
		{RunSpec{Engine: EngineParallel}, func(w int) bool { return w >= 2 }, "parallel default >= 2"},
	}
	for _, c := range cases {
		if got := c.spec.EffectiveWorkers(); !c.want(got) {
			t.Errorf("%s: EffectiveWorkers() = %d", c.desc, got)
		}
	}
}

func TestWireErrorRoundTrip(t *testing.T) {
	orig := rt.Mark(rt.ErrMaxSteps, errors.New("gamma: maximum step count exceeded"))
	we := NewWireError(orig)
	if we.Code != rt.CodeMaxSteps {
		t.Fatalf("code = %q, want %q", we.Code, rt.CodeMaxSteps)
	}
	back := we.Err()
	if !errors.Is(back, rt.ErrMaxSteps) {
		t.Fatalf("reconstructed error lost its class: %v", back)
	}
	if NewWireError(nil) != nil || (*WireError)(nil).Err() != nil {
		t.Fatal("nil error must round-trip to nil")
	}
}
