package schema

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/gammalang"
	"repro/internal/multiset"
	"repro/internal/paper"
	"repro/internal/value"
)

func TestDeclareAndLookup(t *testing.T) {
	s := New(true)
	if err := s.Declare("A1", expr.IntType, expr.StringType, expr.IntType); err != nil {
		t.Fatal(err)
	}
	if err := s.Declare("A1", expr.IntType); err == nil {
		t.Error("duplicate declare should error")
	}
	if err := s.Declare("bad"); err == nil {
		t.Error("zero-arity declare should error")
	}
	if err := s.Declare("bad2", expr.IntType, expr.IntType); err == nil {
		t.Error("non-string label field should error")
	}
	if err := s.Declare("lax", expr.IntType, expr.AnyType); err != nil {
		t.Errorf("any label field should be accepted: %v", err)
	}
	et, ok := s.Lookup("A1")
	if !ok || et.Arity() != 3 {
		t.Errorf("Lookup = %v, %v", et, ok)
	}
	if len(s.Labels()) != 2 {
		t.Errorf("labels = %v", s.Labels())
	}
	if !strings.Contains(s.String(), "A1 :: [int, string, int]") {
		t.Errorf("schema rendering:\n%s", s)
	}
}

func TestCheckExample1Listing(t *testing.T) {
	prog, err := gammalang.ParseProgram("ex1", paper.Example1GammaListing)
	if err != nil {
		t.Fatal(err)
	}
	init, err := multiset.Parse(paper.Example1InitialMultiset)
	if err != nil {
		t.Fatal(err)
	}
	s := New(true)
	for _, l := range []string{"A1", "B1", "C1", "D1", "B2", "C2", "m"} {
		if err := s.Declare(l, expr.IntType, expr.StringType); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Check(prog, init); err != nil {
		t.Errorf("well-typed program rejected: %v", err)
	}
}

func TestCheckCatchesArityAndTypeErrors(t *testing.T) {
	s := New(true)
	if err := s.Declare("in", expr.IntType, expr.StringType); err != nil {
		t.Fatal(err)
	}
	if err := s.Declare("out", expr.IntType, expr.StringType); err != nil {
		t.Fatal(err)
	}
	if err := s.Declare("sl", expr.StringType, expr.StringType); err != nil {
		t.Fatal(err)
	}
	cases := map[string]string{
		"wrong pattern arity": `R = replace [x, 'in', v] by [x, 'out']`,
		"wrong product arity": `R = replace [x, 'in'] by [x, 'out', 1]`,
		"string into int":     `R = replace [x, 'in'] by ['s', 'out']`,
		"undeclared consumed": `R = replace [x, 'zz'] by [x, 'out']`,
		"undeclared produced": `R = replace [x, 'in'] by [x, 'zz']`,
		// A string-typed condition can never be a truth value (numeric
		// conditions are allowed: the runtime's Truthy follows the paper's
		// 1/0 control convention).
		"condition not truthy": `R = replace [x, 'in'] by [x, 'out'] if 's' + 's'`,
		"cond type error":      `R = replace [x, 'in'] by [x, 'out'] if x and 'a' < 1`,
		"product infer error":  `R = replace [x, 'in'] by [x * 'a', 'out']`,
		// x is bound int by 'in' and string by 'sl': irreconcilable.
		"conflicting var bind": `R = replace [x, 'in'], [x, 'sl'] by [1, 'out']`,
	}
	for name, src := range cases {
		prog, err := gammalang.ParseProgram("p", src)
		if err != nil {
			t.Fatalf("%s: parse: %v", name, err)
		}
		if err := s.Check(prog, nil); err == nil {
			t.Errorf("%s: should be rejected", name)
		}
	}
	// Literal field that does not fit the declared type.
	s2 := New(false)
	if err := s2.Declare("ctl", expr.BoolType, expr.StringType); err != nil {
		t.Fatal(err)
	}
	prog, err := gammalang.ParseProgram("p", `R = replace [1, 'ctl'] by 0 if true`)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.Check(prog, nil); err == nil {
		t.Error("int literal in bool field should be rejected")
	}
}

func TestCheckMultiset(t *testing.T) {
	s := New(true)
	if err := s.Declare("a", expr.IntType, expr.StringType, expr.IntType); err != nil {
		t.Fatal(err)
	}
	good := multiset.New(multiset.IntElem(1, "a", 0))
	if err := s.CheckMultiset(good); err != nil {
		t.Errorf("good multiset rejected: %v", err)
	}
	for name, m := range map[string]*multiset.Multiset{
		"wrong arity":      multiset.New(multiset.Pair(multisetInt(1), "a")),
		"wrong kind":       multiset.New(multiset.Elem(multisetStr("x"), "a", 0)),
		"undeclared label": multiset.New(multiset.IntElem(1, "zz", 0)),
		"unlabelled":       multiset.New(multiset.New1(multisetInt(1))),
	} {
		if err := s.CheckMultiset(m); err == nil {
			t.Errorf("%s: should be rejected", name)
		}
	}
	// Lax schema accepts undeclared and unlabelled elements.
	lax := New(false)
	if err := lax.Declare("a", expr.IntType, expr.StringType, expr.IntType); err != nil {
		t.Fatal(err)
	}
	mixed := multiset.New(multiset.IntElem(1, "zz", 0), multiset.New1(multisetInt(1)))
	if err := lax.CheckMultiset(mixed); err != nil {
		t.Errorf("lax schema rejected: %v", err)
	}
}

func TestInferFromAlgorithm1Output(t *testing.T) {
	// Algorithm 1's output infers a complete [value, string, int] schema
	// that re-checks its own program and multiset.
	prog, init, err := core.ToGamma(paper.Fig2GraphObservable(10, 4, 3))
	if err != nil {
		t.Fatal(err)
	}
	s, err := Infer(prog, init)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Check(prog, init); err != nil {
		t.Errorf("inferred schema rejects its own sources: %v", err)
	}
	// Every label in the converted program is a triplet ending in int.
	for _, l := range s.Labels() {
		et, _ := s.Lookup(l)
		if et.Arity() != 3 {
			t.Errorf("label %s arity %d, want 3", l, et.Arity())
		}
		last := et.Fields[2]
		if !last.IsAny() && last != expr.IntType {
			t.Errorf("label %s tag field %s, want int", l, last)
		}
	}
}

func TestInferConflicts(t *testing.T) {
	// Same label used at two arities.
	prog, err := gammalang.ParseProgram("p", `
A = replace [x, 'l'] by [x, 'm']
B = replace [x, 'l', v] by [x, 'm', v]
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Infer(prog, nil); err == nil {
		t.Error("arity conflict should surface")
	}
	// Same label with conflicting field kinds.
	prog2, err := gammalang.ParseProgram("p", `
A = replace [x, 'in'] by [1, 'm']
B = replace [y, 'q'] by ['s', 'm']
`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Infer(prog2, nil); err == nil {
		t.Error("kind conflict should surface")
	}
	// Init element conflicting with program usage.
	prog3, err := gammalang.ParseProgram("p", `A = replace [x, 'in'] by [x + 0, 'in']`)
	if err != nil {
		t.Fatal(err)
	}
	init := multiset.New(multiset.Pair(multisetStr("oops"), "in"))
	if _, err := Infer(prog3, init); err == nil {
		t.Error("init/program conflict should surface")
	}
}

func TestInferredSchemaForPaperListings(t *testing.T) {
	for name, src := range map[string]string{
		"example1": paper.Example1GammaListing,
		"example2": paper.Example2GammaListing,
		"reduced2": paper.ReducedExample2Listing,
	} {
		prog, err := gammalang.ParseProgram(name, src)
		if err != nil {
			t.Fatal(err)
		}
		s, err := Infer(prog, nil)
		if err != nil {
			t.Errorf("%s: infer: %v", name, err)
			continue
		}
		if err := s.Check(prog, nil); err != nil {
			t.Errorf("%s: self-check: %v", name, err)
		}
	}
}

func multisetInt(v int64) value.Value  { return value.Int(v) }
func multisetStr(s string) value.Value { return value.Str(s) }
