// Package schema brings Structured Gamma's compile-time checking (Fradet &
// Le Métayer, cited as [14] in the paper's §II-B: "structured multiset ...
// and type checking at compile time") to this implementation's element
// model. A Schema declares, per element label, the arity and field types of
// the elements carrying it; Check verifies statically — before any execution
// — that a program can neither match nor produce an ill-typed element, and
// that the initial multiset conforms.
//
// Infer builds a schema from a program and initial multiset automatically,
// so converted dataflow programs get checked schemas for free: Algorithm 1's
// output always infers cleanly, with every label typed [value, string, int].
package schema

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/expr"
	"repro/internal/gamma"
	"repro/internal/multiset"
	"repro/internal/value"
)

// ElementType is the declared shape of the elements carrying one label: one
// expr.Type per field. Field 1 (the label itself) is implicitly a string.
type ElementType struct {
	Fields []expr.Type
}

// Arity returns the number of fields.
func (e ElementType) Arity() int { return len(e.Fields) }

func (e ElementType) String() string {
	parts := make([]string, len(e.Fields))
	for i, f := range e.Fields {
		parts[i] = f.String()
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

// Schema maps element labels to their declared types. Strict schemas reject
// labels they do not declare; lax schemas treat them as unconstrained.
type Schema struct {
	elements map[string]ElementType
	strict   bool
}

// New returns an empty schema. Strict controls whether undeclared labels are
// errors.
func New(strict bool) *Schema {
	return &Schema{elements: make(map[string]ElementType), strict: strict}
}

// Declare sets the element type for a label. Field 1 must be the string
// label position when arity ≥ 2.
func (s *Schema) Declare(label string, fields ...expr.Type) error {
	if len(fields) == 0 {
		return fmt.Errorf("schema: label %s needs at least one field", label)
	}
	if len(fields) >= 2 && !fields[1].IsAny() && fields[1].Kind() != value.KindString {
		return fmt.Errorf("schema: label %s: field 1 is the label and must be a string, got %s", label, fields[1])
	}
	if _, dup := s.elements[label]; dup {
		return fmt.Errorf("schema: label %s declared twice", label)
	}
	s.elements[label] = ElementType{Fields: fields}
	return nil
}

// Lookup returns the element type for a label.
func (s *Schema) Lookup(label string) (ElementType, bool) {
	et, ok := s.elements[label]
	return et, ok
}

// Labels returns the declared labels, sorted.
func (s *Schema) Labels() []string {
	out := make([]string, 0, len(s.elements))
	for l := range s.elements {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// String renders the schema one label per line.
func (s *Schema) String() string {
	var b strings.Builder
	for _, l := range s.Labels() {
		fmt.Fprintf(&b, "%s :: %s\n", l, s.elements[l])
	}
	return b.String()
}

// TypeError reports a static typing violation.
type TypeError struct {
	Where string // reaction name, "init", ...
	Msg   string
}

func (e *TypeError) Error() string { return fmt.Sprintf("schema: %s: %s", e.Where, e.Msg) }

// CheckMultiset verifies every element of m against the schema.
func (s *Schema) CheckMultiset(m *multiset.Multiset) error {
	var firstErr error
	m.ForEach(func(t multiset.Tuple, _ int) bool {
		if err := s.checkTuple(t); err != nil {
			firstErr = err
			return false
		}
		return true
	})
	return firstErr
}

func (s *Schema) checkTuple(t multiset.Tuple) error {
	label, ok := t.Label()
	if !ok {
		// Unlabelled elements are only checkable in strict mode.
		if s.strict {
			return &TypeError{Where: "init", Msg: fmt.Sprintf("element %s has no label", t)}
		}
		return nil
	}
	et, declared := s.elements[label]
	if !declared {
		if s.strict {
			return &TypeError{Where: "init", Msg: fmt.Sprintf("element %s carries undeclared label %s", t, label)}
		}
		return nil
	}
	if len(t) != et.Arity() {
		return &TypeError{Where: "init", Msg: fmt.Sprintf("element %s has arity %d, schema says %d", t, len(t), et.Arity())}
	}
	for i, v := range t {
		ft := et.Fields[i]
		if ft.IsAny() {
			continue
		}
		if _, err := expr.Unify(ft, expr.TypeOf(v.Kind())); err != nil {
			return &TypeError{Where: "init", Msg: fmt.Sprintf("element %s field %d: %v", t, i, err)}
		}
	}
	return nil
}

// Check statically verifies the program against the schema:
//
//   - every pattern with a literal label must match the declared arity, its
//     literal fields must match the declared field types, and its variables
//     take the declared types (a variable bound by two patterns must get
//     unifiable types);
//   - every branch condition must type to a condition under those bindings;
//   - every product with a literal label must produce the declared arity and
//     field types, with field expressions typed under the bindings;
//   - in strict mode, patterns and products must not mention undeclared
//     labels.
//
// The optional init multiset is checked as well.
func (s *Schema) Check(p *gamma.Program, init *multiset.Multiset) error {
	for _, r := range p.Reactions {
		if err := s.checkReaction(r); err != nil {
			return err
		}
	}
	if init != nil {
		return s.CheckMultiset(init)
	}
	return nil
}

func (s *Schema) checkReaction(r *gamma.Reaction) error {
	fail := func(format string, args ...any) error {
		return &TypeError{Where: r.Name, Msg: fmt.Sprintf(format, args...)}
	}
	env := make(expr.TypeEnv)
	// Bind pattern variables from declared element types.
	for pi, pat := range r.Patterns {
		var et ElementType
		declared := false
		if len(pat) >= 2 && pat[1].Var == "" && pat[1].Lit.Kind() == value.KindString {
			label := pat[1].Lit.AsString()
			et, declared = s.elements[label]
			if !declared && s.strict {
				return fail("pattern %d consumes undeclared label %s", pi, label)
			}
			if declared && len(pat) != et.Arity() {
				return fail("pattern %d has arity %d, label %s declares %d", pi, len(pat), label, et.Arity())
			}
		}
		for fi, f := range pat {
			ft := expr.AnyType
			if declared {
				ft = et.Fields[fi]
			}
			if f.Var == "" {
				if !ft.IsAny() {
					if _, err := expr.Unify(ft, expr.TypeOf(f.Lit.Kind())); err != nil {
						return fail("pattern %d field %d: literal %s does not fit %s", pi, fi, f.Lit, ft)
					}
				}
				continue
			}
			if prev, bound := env[f.Var]; bound {
				u, err := expr.Unify(prev, ft)
				if err != nil {
					return fail("variable %s bound at conflicting types: %v", f.Var, err)
				}
				env[f.Var] = u
			} else {
				env[f.Var] = ft
			}
		}
	}
	// Conditions must type as conditions.
	for bi, b := range r.Branches {
		if b.Cond != nil {
			t, err := expr.Infer(b.Cond, env)
			if err != nil {
				return fail("branch %d condition: %v", bi, err)
			}
			if !t.Truthy() {
				return fail("branch %d condition has type %s, want a condition", bi, t)
			}
		}
		for ti, tpl := range b.Products {
			if err := s.checkTemplate(r, env, bi, ti, tpl); err != nil {
				return err
			}
		}
	}
	return nil
}

func (s *Schema) checkTemplate(r *gamma.Reaction, env expr.TypeEnv, bi, ti int, tpl gamma.Template) error {
	fail := func(format string, args ...any) error {
		return &TypeError{Where: r.Name, Msg: fmt.Sprintf(format, args...)}
	}
	var et ElementType
	declared := false
	if len(tpl) >= 2 {
		if lit, ok := tpl[1].(expr.Lit); ok && lit.Val.Kind() == value.KindString {
			label := lit.Val.AsString()
			et, declared = s.elements[label]
			if !declared && s.strict {
				return fail("branch %d product %d emits undeclared label %s", bi, ti, label)
			}
			if declared && len(tpl) != et.Arity() {
				return fail("branch %d product %d has arity %d, label %s declares %d",
					bi, ti, len(tpl), label, et.Arity())
			}
		}
	}
	for fi, e := range tpl {
		t, err := expr.Infer(e, env)
		if err != nil {
			return fail("branch %d product %d field %d: %v", bi, ti, fi, err)
		}
		if declared && !et.Fields[fi].IsAny() {
			if _, err := expr.Unify(et.Fields[fi], t); err != nil {
				return fail("branch %d product %d field %d: %s does not fit declared %s",
					bi, ti, fi, t, et.Fields[fi])
			}
		}
	}
	return nil
}

// Infer derives a schema from a program and optional initial multiset: for
// every literal label mentioned by a pattern, product or initial element it
// unifies all the observed field types. Inference iterates to a fixpoint so
// label types flow through reactions — the initial multiset types A1 as int,
// which types R1's id1, which types B2's value field, and so on down the
// chain. The result is always lax (execution may use extra labels) and
// re-checks cleanly against its own sources.
func Infer(p *gamma.Program, init *multiset.Multiset) (*Schema, error) {
	acc := make(map[string][]expr.Type)
	// One inference round; reports whether acc changed.
	round := func() (bool, error) {
		changed := false
		merge := func(label string, fields []expr.Type) error {
			prev, seen := acc[label]
			if !seen {
				acc[label] = fields
				changed = true
				return nil
			}
			if len(prev) != len(fields) {
				return fmt.Errorf("schema: label %s used at arities %d and %d", label, len(prev), len(fields))
			}
			for i := range prev {
				u, err := expr.Unify(prev[i], fields[i])
				if err != nil {
					return fmt.Errorf("schema: label %s field %d: %w", label, i, err)
				}
				if u != prev[i] {
					changed = true
				}
				prev[i] = u
			}
			return nil
		}

		for _, r := range p.Reactions {
			// Bind pattern variables from the labels accumulated so far.
			env := make(expr.TypeEnv)
			bind := func(name string, t expr.Type) error {
				prev, ok := env[name]
				if !ok {
					env[name] = t
					return nil
				}
				u, err := expr.Unify(prev, t)
				if err != nil {
					return fmt.Errorf("schema: reaction %s: variable %s: %w", r.Name, name, err)
				}
				env[name] = u
				return nil
			}
			for _, pat := range r.Patterns {
				label, hasLabel := patternLabel(pat)
				known := []expr.Type(nil)
				if hasLabel {
					if fields, ok := acc[label]; ok && len(fields) == len(pat) {
						known = fields
					}
				}
				for i, f := range pat {
					if f.Var == "" {
						continue
					}
					t := expr.AnyType
					if known != nil {
						t = known[i]
					}
					if err := bind(f.Var, t); err != nil {
						return false, err
					}
				}
			}
			// Patterns contribute their literal field kinds.
			for _, pat := range r.Patterns {
				label, ok := patternLabel(pat)
				if !ok {
					continue
				}
				fields := make([]expr.Type, len(pat))
				for i, f := range pat {
					if f.Var != "" {
						fields[i] = expr.AnyType
					} else {
						fields[i] = expr.TypeOf(f.Lit.Kind())
					}
				}
				if err := merge(label, fields); err != nil {
					return false, err
				}
			}
			// Products contribute inferred expression types under env.
			for _, b := range r.Branches {
				for _, tpl := range b.Products {
					if len(tpl) < 2 {
						continue
					}
					lit, ok := tpl[1].(expr.Lit)
					if !ok || lit.Val.Kind() != value.KindString {
						continue
					}
					fields := make([]expr.Type, len(tpl))
					for i, e := range tpl {
						t, err := expr.Infer(e, env)
						if err != nil {
							return false, fmt.Errorf("schema: reaction %s: %w", r.Name, err)
						}
						fields[i] = t
					}
					if err := merge(lit.Val.AsString(), fields); err != nil {
						return false, err
					}
				}
			}
		}
		if init != nil {
			var ferr error
			init.ForEach(func(t multiset.Tuple, _ int) bool {
				label, ok := t.Label()
				if !ok {
					return true
				}
				fields := make([]expr.Type, len(t))
				for i, v := range t {
					fields[i] = expr.TypeOf(v.Kind())
				}
				if err := merge(label, fields); err != nil {
					ferr = err
					return false
				}
				return true
			})
			if ferr != nil {
				return false, ferr
			}
		}
		return changed, nil
	}
	// The lattice has finite height (any → concrete/float), so a small
	// iteration bound suffices; the cap guards against oscillation bugs.
	for i := 0; i < 8; i++ {
		changed, err := round()
		if err != nil {
			return nil, err
		}
		if !changed {
			break
		}
	}
	s := New(false)
	for label, fields := range acc {
		s.elements[label] = ElementType{Fields: fields}
	}
	return s, nil
}

func patternLabel(p gamma.Pattern) (string, bool) {
	if len(p) >= 2 && p[1].Var == "" && p[1].Lit.Kind() == value.KindString {
		return p[1].Lit.AsString(), true
	}
	return "", false
}
