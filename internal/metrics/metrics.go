// Package metrics provides the small reporting toolkit used by the
// experiment harness (cmd/gfbench): fixed-width tables matching the
// paper-vs-measured layout of EXPERIMENTS.md, wall-clock measurement helpers
// and speedup series.
package metrics

import (
	"fmt"
	"strings"
	"time"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// Row appends a row; cells are rendered with %v, durations compactly.
func (t *Table) Row(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case time.Duration:
			row[i] = FormatDuration(v)
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.headers)
	seps := make([]string, len(t.headers))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	line(seps)
	for _, row := range t.rows {
		line(row)
	}
	return b.String()
}

// FormatDuration renders d with three significant figures and a compact
// unit, keeping table columns narrow.
func FormatDuration(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	case d >= time.Microsecond:
		return fmt.Sprintf("%.2fµs", float64(d.Nanoseconds())/1000)
	}
	return fmt.Sprintf("%dns", d.Nanoseconds())
}

// Time runs fn and returns its wall-clock duration.
func Time(fn func()) time.Duration {
	start := time.Now()
	fn()
	return time.Since(start)
}

// TimeN runs fn reps times and returns the minimum duration — the standard
// way to damp scheduler noise in coarse harness measurements (the Go
// benchmark framework handles the precise ones).
func TimeN(reps int, fn func()) time.Duration {
	best := time.Duration(0)
	for i := 0; i < reps; i++ {
		d := Time(fn)
		if i == 0 || d < best {
			best = d
		}
	}
	return best
}

// Speedup returns base/parallel as a factor (1.0 = no speedup); 0 when the
// parallel time is zero.
func Speedup(base, parallel time.Duration) float64 {
	if parallel <= 0 {
		return 0
	}
	return float64(base) / float64(parallel)
}
