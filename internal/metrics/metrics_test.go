package metrics

import (
	"strings"
	"testing"
	"time"
)

func TestTableRendering(t *testing.T) {
	tbl := NewTable("demo", "name", "value", "time")
	tbl.Row("alpha", 42, 1500*time.Microsecond)
	tbl.Row("a-much-longer-name", 3.14159, 2*time.Second)
	s := tbl.String()
	for _, want := range []string{"== demo ==", "name", "-----", "alpha", "1.50ms", "2.00s", "3.14", "a-much-longer-name"} {
		if !strings.Contains(s, want) {
			t.Errorf("table missing %q:\n%s", want, s)
		}
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, two rows
		t.Errorf("line count = %d:\n%s", len(lines), s)
	}
	// Columns align: header and rows have the same prefix width for col 2.
	hdr := lines[1]
	row := lines[3]
	if strings.Index(hdr, "value") != strings.Index(row, "42") {
		t.Errorf("columns misaligned:\n%s", s)
	}
	// Untitled table has no title line.
	if s2 := NewTable("", "a").String(); strings.Contains(s2, "==") {
		t.Errorf("untitled table rendered a title:\n%s", s2)
	}
}

func TestFormatDuration(t *testing.T) {
	cases := map[time.Duration]string{
		2 * time.Second:         "2.00s",
		1500 * time.Millisecond: "1.50s",
		3 * time.Millisecond:    "3.00ms",
		250 * time.Microsecond:  "250.00µs",
		480 * time.Nanosecond:   "480ns",
	}
	for d, want := range cases {
		if got := FormatDuration(d); got != want {
			t.Errorf("FormatDuration(%v) = %q, want %q", d, got, want)
		}
	}
}

func TestTimeAndTimeN(t *testing.T) {
	d := Time(func() { time.Sleep(2 * time.Millisecond) })
	if d < 2*time.Millisecond {
		t.Errorf("Time too short: %v", d)
	}
	n := 0
	best := TimeN(3, func() { n++ })
	if n != 3 || best < 0 {
		t.Errorf("TimeN ran %d times, best %v", n, best)
	}
}

func TestSpeedup(t *testing.T) {
	if s := Speedup(4*time.Second, 1*time.Second); s != 4 {
		t.Errorf("speedup = %f", s)
	}
	if s := Speedup(time.Second, 0); s != 0 {
		t.Errorf("zero-division speedup = %f", s)
	}
}
