package dist

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/gamma"
	"repro/internal/gammalang"
	"repro/internal/multiset"
	"repro/internal/rt"
	"repro/internal/value"
)

func mustProg(t *testing.T, src string) *gamma.Program {
	t.Helper()
	p, err := gammalang.ParseProgram("p", src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func bigIntSet(n int) (*multiset.Multiset, int64) {
	m := multiset.New()
	min := int64(1 << 30)
	for i := 0; i < n; i++ {
		v := int64((i*37 + 5) % 500)
		if v < min {
			min = v
		}
		m.Add(multiset.New1(value.Int(v)))
	}
	return m, min
}

// TestKilledNodeDegrades kills one node via the fault injector: the cluster
// must declare it dead after the retry budget, redistribute its shard, finish
// the fixpoint on the survivors and still produce the correct stable state.
func TestKilledNodeDegrades(t *testing.T) {
	for _, topo := range []Topology{TopologyFull, TopologyRing} {
		c, err := NewCluster(minProg(t), Options{
			Nodes: 4, Seed: 3, Topology: topo,
			FaultInjector: func(node, round int) error {
				if node == 2 {
					return errors.New("node 2 unplugged")
				}
				return nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		init, min := bigIntSet(64)
		result, stats, err := c.Run(init)
		if err != nil {
			t.Fatalf("topology %v: degraded run must succeed, got %v", topo, err)
		}
		if !stats.Degraded || len(stats.DeadNodes) != 1 || stats.DeadNodes[0] != 2 {
			t.Errorf("topology %v: degradation not recorded: %+v", topo, stats)
		}
		if result.Len() != 1 || !result.Contains(multiset.New1(value.Int(min))) {
			t.Errorf("topology %v: result = %s, want {[%d]}", topo, result, min)
		}
		if stats.PerNode[2] != 0 {
			t.Errorf("topology %v: dead node fired %d steps", topo, stats.PerNode[2])
		}
	}
}

// TestAllNodesDeadSurfacesNodeError kills everything: with no survivor, the
// last *rt.NodeError must surface instead of a silent empty result.
func TestAllNodesDeadSurfacesNodeError(t *testing.T) {
	c, err := NewCluster(minProg(t), Options{
		Nodes: 2, Seed: 1,
		FaultInjector: func(node, round int) error { return errors.New("power loss") },
	})
	if err != nil {
		t.Fatal(err)
	}
	_, stats, err := c.Run(intSet(5, 3, 9))
	var ne *rt.NodeError
	if !errors.As(err, &ne) {
		t.Fatalf("err = %v (%T), want *rt.NodeError", err, err)
	}
	if ne.Attempts != 3 {
		t.Errorf("attempts = %d, want default retries 2 + 1", ne.Attempts)
	}
	if stats == nil || !stats.Degraded || len(stats.DeadNodes) == 0 {
		t.Errorf("partial stats must record the degradation: %+v", stats)
	}
}

// TestTransientFaultRetried lets each node fail exactly once: the retry
// budget must absorb the fault and the run must succeed without degradation.
func TestTransientFaultRetried(t *testing.T) {
	var mu sync.Mutex
	failed := make(map[int]bool)
	c, err := NewCluster(minProg(t), Options{
		Nodes: 2, Seed: 5,
		// The injector runs concurrently from every node goroutine.
		FaultInjector: func(node, round int) error {
			mu.Lock()
			defer mu.Unlock()
			if !failed[node] {
				failed[node] = true
				return errors.New("transient hiccup")
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	init, _ := bigIntSet(32)
	result, stats, err := c.Run(init)
	if err != nil {
		t.Fatalf("transient faults within the retry budget must not fail the run: %v", err)
	}
	if stats.Degraded || len(stats.DeadNodes) != 0 {
		t.Errorf("no node should be declared dead: %+v", stats)
	}
	if result.Len() != 1 {
		t.Errorf("result = %s", result)
	}
}

// TestRunContextCanceled checks prompt cancellation with partial stats on a
// cluster driving a diverging program.
func TestRunContextCanceled(t *testing.T) {
	growSrc := "Grow = replace [x, 'a'] by [x + 1, 'a']"
	prog := mustProg(t, growSrc)
	c, err := NewCluster(prog, Options{Nodes: 2, MaxStepsPerRound: 1000, MaxRounds: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	m := multiset.New()
	m.Add(multiset.Pair(value.Int(0), "a"))
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	done := make(chan struct{})
	var stats *Stats
	var runErr error
	go func() {
		_, stats, runErr = c.RunContext(ctx, m)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("canceled cluster run wedged")
	}
	if !errors.Is(runErr, rt.ErrCanceled) {
		t.Errorf("err = %v, want rt.ErrCanceled", runErr)
	}
	if stats == nil || stats.Rounds == 0 {
		t.Errorf("partial stats missing: %+v", stats)
	}
}

// TestNodeTimeoutKillsSlowNode bounds each node attempt: a diverging shard
// exceeds the per-node deadline, exhausts its retries and the whole (single
// node) cluster dies with a NodeError wrapping the deadline.
func TestNodeTimeoutKillsSlowNode(t *testing.T) {
	prog := mustProg(t, "Grow = replace [x, 'a'] by [x + 1, 'a']")
	c, err := NewCluster(prog, Options{
		Nodes: 1, NodeTimeout: 10 * time.Millisecond, NodeRetries: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := multiset.New()
	m.Add(multiset.Pair(value.Int(0), "a"))
	_, _, err = c.Run(m)
	var ne *rt.NodeError
	if !errors.As(err, &ne) {
		t.Fatalf("err = %v (%T), want *rt.NodeError", err, err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("NodeError must wrap the per-node deadline: %v", err)
	}
	if ne.Attempts != 1 {
		t.Errorf("attempts = %d, want 1 (retries disabled)", ne.Attempts)
	}
}
