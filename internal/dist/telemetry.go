package dist

import (
	"time"

	"repro/internal/telemetry"
)

// clusterSink is the coordinator's telemetry state, resolved once per run so
// a disabled recorder costs one nil-check branch per record site (all methods
// no-op on a nil receiver). Node-local firing telemetry is not recorded here:
// each node's react phase runs the full gamma runtime with the recorder
// passed through, so node work lands on "node<i>/w<j>" tracks and the shared
// gamma.* registry instruments. The coordinator accounts the cluster-level
// vocabulary — rounds, migrations, gathers, dead-node adoptions — and its
// counters mirror the Stats fields exactly (migrations, incremented deep
// inside scatter/moveBatch via pointer, are mirrored by delta at the
// coordinator's observation points).
type clusterSink struct {
	track *telemetry.Track

	rounds     *telemetry.Counter
	steps      *telemetry.Counter
	migrations *telemetry.Counter
	gathers    *telemetry.Counter
	adoptions  *telemetry.Counter
	liveNodes  *telemetry.Gauge

	lastMig int64
}

// newClusterSink resolves the coordinator track and instruments; nil when
// telemetry is disabled.
func newClusterSink(opt Options) *clusterSink {
	rec := opt.Recorder
	if rec == nil {
		return nil
	}
	reg := rec.Metrics
	return &clusterSink{
		track:      rec.Track("cluster"),
		rounds:     reg.Counter("dist.rounds"),
		steps:      reg.Counter("dist.steps"),
		migrations: reg.Counter("dist.migrations"),
		gathers:    reg.Counter("dist.gathers"),
		adoptions:  reg.Counter("dist.adoptions"),
		liveNodes:  reg.Gauge("dist.live_nodes"),
	}
}

// begin stamps the start of a round; the zero time when disabled.
func (s *clusterSink) begin() time.Time {
	if s == nil {
		return time.Time{}
	}
	return time.Now()
}

// round accounts one completed react phase: a span from the round's start
// with the firings it produced and the live-node count in the payload.
func (s *clusterSink) round(start time.Time, fired int64, live int) {
	if s == nil {
		return
	}
	s.rounds.Inc()
	s.steps.Add(fired)
	s.liveNodes.Set(int64(live))
	s.track.Span(telemetry.KindRound, "round", start, fired, int64(live))
}

// adopt accounts one dead-node burial: the survivors adopt node n's shard.
func (s *clusterSink) adopt(node, live int) {
	if s == nil {
		return
	}
	s.adoptions.Inc()
	s.liveNodes.Set(int64(live))
	s.track.Instant(telemetry.KindAdopt, "adopt", int64(node), int64(live))
}

// gather accounts one global stability check over a union of the given
// cardinality.
func (s *clusterSink) gather(card int) {
	if s == nil {
		return
	}
	s.gathers.Inc()
	s.track.Instant(telemetry.KindGather, "gather", int64(card), 0)
}

// syncMigrations mirrors Stats.Migrations into the registry by delta. The
// field is incremented through a pointer inside scatter and moveBatch, so the
// coordinator reconciles at its observation points (after placement, each
// diffuse phase, and on every exit path) rather than at each increment; total
// is monotone, so the delta is always the elements moved since the last sync.
func (s *clusterSink) syncMigrations(total int64) {
	if s == nil {
		return
	}
	if d := total - s.lastMig; d > 0 {
		s.migrations.Add(d)
		s.lastMig = total
		s.track.Instant(telemetry.KindMigrate, "migrate", d, 0)
	}
}
