package dist

import (
	"errors"
	"testing"

	"repro/internal/multiset"
	"repro/internal/telemetry"
	"repro/internal/value"
)

// checkClusterTelemetryAgrees holds the cluster-level registry counters to
// exact agreement with dist.Stats, and the node-level gamma counters to the
// aggregated node work — the distributed leg of the differential contract.
func checkClusterTelemetryAgrees(t *testing.T, rec *telemetry.Recorder, st *Stats) {
	t.Helper()
	reg := rec.Metrics
	for _, c := range []struct {
		name string
		want int64
	}{
		{"dist.rounds", int64(st.Rounds)},
		{"dist.steps", st.Steps},
		{"dist.migrations", st.Migrations},
		{"dist.gathers", int64(st.Gathers)},
		{"dist.adoptions", int64(len(st.DeadNodes))},
		{"gamma.steps", st.Steps},
		{"gamma.probes", st.Probes},
		{"gamma.conflicts", st.Conflicts},
		{"gamma.retries", st.Retries},
	} {
		if got := reg.CounterValue(c.name); got != c.want {
			t.Errorf("counter %s = %d, stats say %d", c.name, got, c.want)
		}
	}
}

func TestTelemetryDifferentialCluster(t *testing.T) {
	for _, nodes := range []int{1, 4} {
		rec := telemetry.New(0)
		c, err := NewCluster(minProg(t), Options{Nodes: nodes, Seed: int64(nodes), Recorder: rec})
		if err != nil {
			t.Fatal(err)
		}
		m := multiset.New()
		for i := int64(1); i <= 64; i++ {
			m.Add(multiset.New1(value.Int(i)))
		}
		_, st, err := c.Run(m)
		if err != nil {
			t.Fatalf("nodes=%d: %v", nodes, err)
		}
		checkClusterTelemetryAgrees(t, rec, st)
		if st.Steps != 63 {
			t.Errorf("nodes=%d: steps = %d, want 63", nodes, st.Steps)
		}
		// Node shards must land on their own named tracks.
		found := false
		for _, tr := range rec.Snapshot() {
			if tr.Name == "node0/w0" {
				found = true
			}
		}
		if !found {
			t.Errorf("nodes=%d: no node0/w0 track in snapshot", nodes)
		}
	}
}

func TestTelemetryDifferentialClusterMultiWorker(t *testing.T) {
	rec := telemetry.New(0)
	c, err := NewCluster(minProg(t), Options{Nodes: 2, WorkersPerNode: 3, Seed: 11, Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	m := multiset.New()
	for i := int64(1); i <= 96; i++ {
		m.Add(multiset.New1(value.Int(i)))
	}
	_, st, err := c.Run(m)
	if err != nil {
		t.Fatal(err)
	}
	checkClusterTelemetryAgrees(t, rec, st)
}

func TestTelemetryDifferentialClusterDeadNode(t *testing.T) {
	rec := telemetry.New(0)
	c, err := NewCluster(minProg(t), Options{
		Nodes: 4, Seed: 3, Recorder: rec,
		FaultInjector: func(node, round int) error {
			if node == 2 {
				return errors.New("node 2 unplugged")
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	m := multiset.New()
	for i := int64(1); i <= 64; i++ {
		m.Add(multiset.New1(value.Int(i)))
	}
	_, st, err := c.Run(m)
	if err != nil {
		t.Fatalf("degraded run must succeed, got %v", err)
	}
	if !st.Degraded || len(st.DeadNodes) != 1 {
		t.Fatalf("degradation not recorded: %+v", st)
	}
	// The dead node's adoption and the redistribution migrations must all be
	// mirrored; the partial work its attempts did counts in both accountings.
	checkClusterTelemetryAgrees(t, rec, st)
	adopts := 0
	for _, tr := range rec.Snapshot() {
		if tr.Name != "cluster" {
			continue
		}
		for _, e := range tr.Events {
			if e.Kind == telemetry.KindAdopt {
				adopts++
			}
		}
	}
	if adopts != 1 {
		t.Errorf("adopt events = %d, want 1", adopts)
	}
}

func TestTelemetryClusterRoundEvents(t *testing.T) {
	rec := telemetry.New(0)
	c, err := NewCluster(minProg(t), Options{Nodes: 2, Seed: 5, Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	_, st, err := c.Run(intSet(9, 4, 7, 1, 8, 3))
	if err != nil {
		t.Fatal(err)
	}
	rounds := 0
	for _, tr := range rec.Snapshot() {
		if tr.Name != "cluster" {
			continue
		}
		for _, e := range tr.Events {
			if e.Kind == telemetry.KindRound {
				rounds++
			}
		}
	}
	if rounds != st.Rounds {
		t.Errorf("round events = %d, stats.Rounds = %d", rounds, st.Rounds)
	}
}
