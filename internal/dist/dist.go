// Package dist implements the distributed multiset execution environment the
// paper leaves as future work (§IV: "the implementation of Gamma distributed
// multisets", motivated by IoT deployments). A Cluster simulates a set of
// nodes, each owning a shard of the multiset and running the Gamma runtime
// locally; elements migrate between nodes through counted message channels
// (the stand-in for the paper's interest-based network — see DESIGN.md §4 on
// substitutions).
//
// Execution proceeds in rounds:
//
//  1. react: every node runs its shard to a local stable state concurrently
//     (the full gamma runtime, so a node may itself be multi-worker);
//  2. diffuse: each node ships a batch of randomly chosen elements to a
//     random peer, creating new cross-node match opportunities;
//  3. terminate: when a whole round fires nothing anywhere, the coordinator
//     gathers all shards and checks Eq. 1's global stability condition; if
//     some reaction is still enabled the elements are redistributed and
//     execution continues, otherwise the union is the result.
//
// The gather step makes termination exact: a cluster never stops while any
// cross-shard combination of elements could react, and never runs forever
// after true stability.
package dist

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/gamma"
	"repro/internal/multiset"
)

// Topology selects which peers a node may diffuse elements to.
type Topology int

const (
	// TopologyFull lets every node reach every other node directly (a
	// datacenter-style fabric).
	TopologyFull Topology = iota
	// TopologyRing restricts diffusion to the two ring neighbours — the
	// constrained connectivity of edge/IoT deployments. Convergence takes
	// more rounds because elements random-walk around the ring; the gather
	// step keeps termination exact regardless.
	TopologyRing
)

func (t Topology) String() string {
	if t == TopologyRing {
		return "ring"
	}
	return "full"
}

// Options configures a cluster run.
type Options struct {
	// Nodes is the number of simulated nodes (≥ 1).
	Nodes int
	// Topology constrains diffusion peers (default TopologyFull).
	Topology Topology
	// WorkersPerNode is each node's local Gamma worker count.
	WorkersPerNode int
	// Seed drives element placement, diffusion and local nondeterminism.
	Seed int64
	// DiffusionBatch is how many elements a node ships per round (default 4).
	DiffusionBatch int
	// MaxRounds bounds the react-diffuse rounds; 0 means 10000 (a cluster
	// that diffuses forever without firing indicates a bug, not progress).
	MaxRounds int
	// MaxStepsPerRound bounds each node's local execution per round.
	MaxStepsPerRound int64
	// FullScan runs every node on the seed full-rescan matching engine
	// instead of the delta-driven incremental scheduler; the baseline knob
	// for cluster-level measurements.
	FullScan bool
}

// Stats reports a cluster execution.
type Stats struct {
	// Steps is the total number of reaction firings across all nodes.
	Steps int64
	// Probes is the total number of reaction match searches across all
	// nodes — the cluster-wide matching-engine work metric.
	Probes int64
	// Conflicts is the total number of failed optimistic commits across all
	// nodes (only nonzero with WorkersPerNode > 1).
	Conflicts int64
	// Rounds is the number of react-diffuse rounds executed.
	Rounds int
	// Migrations counts elements shipped between nodes (diffusion and
	// redistribution alike).
	Migrations int64
	// Gathers counts global stability checks.
	Gathers int
	// PerNode is the firing count of each node.
	PerNode []int64
}

// ErrMaxRounds is returned when the round bound is exceeded.
var ErrMaxRounds = errors.New("dist: maximum rounds exceeded")

// Cluster is a simulated distributed Gamma machine.
type Cluster struct {
	prog *gamma.Program
	opt  Options
}

// NewCluster validates the program and options.
func NewCluster(prog *gamma.Program, opt Options) (*Cluster, error) {
	if opt.Nodes < 1 {
		return nil, fmt.Errorf("dist: need at least 1 node, got %d", opt.Nodes)
	}
	for _, r := range prog.Reactions {
		if err := r.Validate(); err != nil {
			return nil, err
		}
	}
	if opt.DiffusionBatch <= 0 {
		opt.DiffusionBatch = 4
	}
	if opt.MaxRounds <= 0 {
		opt.MaxRounds = 10000
	}
	return &Cluster{prog: prog, opt: opt}, nil
}

// Run executes the program over m distributed across the cluster and returns
// the stable union multiset. m itself is consumed.
func (c *Cluster) Run(m *multiset.Multiset) (*multiset.Multiset, *Stats, error) {
	rng := rand.New(rand.NewSource(c.opt.Seed + 1))
	stats := &Stats{PerNode: make([]int64, c.opt.Nodes)}

	// Initial placement: elements scatter uniformly, the no-locality
	// worst case for a distributed multiset.
	shards := make([]*multiset.Multiset, c.opt.Nodes)
	for i := range shards {
		shards[i] = multiset.New()
	}
	scatter(m, shards, rng, &stats.Migrations)

	for round := 0; ; round++ {
		if round >= c.opt.MaxRounds {
			return nil, stats, ErrMaxRounds
		}
		stats.Rounds++

		// React phase: all nodes to their local stable state, concurrently.
		// Each node runs the same incremental matching engine as a
		// single-machine execution (or the full-rescan baseline when
		// Options.FullScan is set).
		nodeStats := make([]*gamma.Stats, c.opt.Nodes)
		errs := make([]error, c.opt.Nodes)
		var wg sync.WaitGroup
		for n := 0; n < c.opt.Nodes; n++ {
			wg.Add(1)
			go func(n int) {
				defer wg.Done()
				st, err := gamma.Run(c.prog, shards[n], gamma.Options{
					Workers:  c.opt.WorkersPerNode,
					Seed:     c.opt.Seed + int64(round)*31 + int64(n) + 1,
					MaxSteps: c.opt.MaxStepsPerRound,
					FullScan: c.opt.FullScan,
				})
				nodeStats[n] = st
				errs[n] = err
			}(n)
		}
		wg.Wait()
		fired := int64(0)
		for n := 0; n < c.opt.Nodes; n++ {
			if errs[n] != nil {
				return nil, stats, fmt.Errorf("dist: node %d: %w", n, errs[n])
			}
			if st := nodeStats[n]; st != nil {
				fired += st.Steps
				stats.PerNode[n] += st.Steps
				stats.Probes += st.Probes
				stats.Conflicts += st.Conflicts
			}
		}
		stats.Steps += fired

		if fired == 0 && round > 0 {
			// Quiescent round: check Eq. 1's global condition on the union.
			stats.Gathers++
			union := multiset.New()
			for _, s := range shards {
				s.ForEach(func(t multiset.Tuple, n int) bool {
					union.AddN(t, n)
					stats.Migrations += int64(n)
					return true
				})
			}
			enabled, err := gamma.Enabled(c.prog, union)
			if err != nil {
				return nil, stats, err
			}
			if !enabled {
				return union, stats, nil
			}
			// Cross-shard matches exist: redistribute and continue.
			for i := range shards {
				shards[i] = multiset.New()
			}
			scatter(union, shards, rng, &stats.Migrations)
			continue
		}

		// Diffuse phase: each node ships a random batch to a peer allowed by
		// the topology.
		if c.opt.Nodes > 1 {
			for n := 0; n < c.opt.Nodes; n++ {
				var peer int
				if c.opt.Topology == TopologyRing {
					if rng.Intn(2) == 0 {
						peer = (n + 1) % c.opt.Nodes
					} else {
						peer = (n - 1 + c.opt.Nodes) % c.opt.Nodes
					}
				} else {
					peer = rng.Intn(c.opt.Nodes - 1)
					if peer >= n {
						peer++
					}
				}
				stats.Migrations += moveBatch(shards[n], shards[peer], c.opt.DiffusionBatch, rng)
			}
		}
	}
}

// scatter distributes all of src over the shards uniformly at random.
func scatter(src *multiset.Multiset, shards []*multiset.Multiset, rng *rand.Rand, migrations *int64) {
	for _, t := range src.Expand() {
		shards[rng.Intn(len(shards))].Add(t)
		*migrations++
	}
}

// moveBatch moves up to batch randomly chosen elements from one shard to
// another, returning how many moved.
func moveBatch(from, to *multiset.Multiset, batch int, rng *rand.Rand) int64 {
	elems := from.Expand()
	if len(elems) == 0 {
		return 0
	}
	rng.Shuffle(len(elems), func(i, j int) { elems[i], elems[j] = elems[j], elems[i] })
	if batch > len(elems) {
		batch = len(elems)
	}
	moved := int64(0)
	for _, t := range elems[:batch] {
		if from.Remove(t) {
			to.Add(t)
			moved++
		}
	}
	return moved
}
