// Package dist implements the distributed multiset execution environment the
// paper leaves as future work (§IV: "the implementation of Gamma distributed
// multisets", motivated by IoT deployments). A Cluster simulates a set of
// nodes, each owning a shard of the multiset and running the Gamma runtime
// locally; elements migrate between nodes through counted message channels
// (the stand-in for the paper's interest-based network — see DESIGN.md §4 on
// substitutions).
//
// Execution proceeds in rounds:
//
//  1. react: every node runs its shard to a local stable state concurrently
//     (the full gamma runtime, so a node may itself be multi-worker);
//  2. diffuse: each node ships a batch of randomly chosen elements to a
//     random peer, creating new cross-node match opportunities;
//  3. terminate: when a whole round fires nothing anywhere, the coordinator
//     gathers all shards and checks Eq. 1's global stability condition; if
//     some reaction is still enabled the elements are redistributed and
//     execution continues, otherwise the union is the result.
//
// The gather step makes termination exact: a cluster never stops while any
// cross-shard combination of elements could react, and never runs forever
// after true stability.
//
// # Fault model
//
// Distributed Gamma machines must survive slow and dead nodes (the chemical
// machine line treats worker failure as a first-class runtime concern), so
// each node's react phase runs under a per-attempt timeout
// (Options.NodeTimeout) with a bounded retry budget (Options.NodeRetries). A
// node that exhausts its budget is declared dead with a *rt.NodeError: its
// shard — always consistent, because the context-aware Gamma runtime stops at
// commit boundaries — is redistributed to the survivors, which finish the
// fixpoint without it. The run then completes in degraded mode
// (Stats.Degraded, Stats.DeadNodes) instead of hanging; only when every node
// is dead does RunContext return the error. Options.FaultInjector simulates
// crashes for the stress tests. Cancellation and deadlines on the RunContext
// context propagate into every node and stop the cluster between rounds with
// rt.ErrCanceled / rt.ErrDeadline.
package dist

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/gamma"
	"repro/internal/multiset"
	"repro/internal/rt"
	"repro/internal/telemetry"
)

// Topology selects which peers a node may diffuse elements to.
type Topology int

const (
	// TopologyFull lets every node reach every other node directly (a
	// datacenter-style fabric).
	TopologyFull Topology = iota
	// TopologyRing restricts diffusion to the two ring neighbours — the
	// constrained connectivity of edge/IoT deployments. Convergence takes
	// more rounds because elements random-walk around the ring; the gather
	// step keeps termination exact regardless.
	TopologyRing
)

func (t Topology) String() string {
	if t == TopologyRing {
		return "ring"
	}
	return "full"
}

// Options configures a cluster run.
type Options struct {
	// Nodes is the number of simulated nodes (≥ 1).
	Nodes int
	// Topology constrains diffusion peers (default TopologyFull).
	Topology Topology
	// WorkersPerNode is each node's local Gamma worker count.
	WorkersPerNode int
	// Seed drives element placement, diffusion and local nondeterminism.
	Seed int64
	// DiffusionBatch is how many elements a node ships per round (default 4).
	DiffusionBatch int
	// MaxRounds bounds the react-diffuse rounds; 0 means 10000 (a cluster
	// that diffuses forever without firing indicates a bug, not progress).
	MaxRounds int
	// MaxStepsPerRound bounds each node's local execution per round. Hitting
	// the bound is benign truncation — the node simply ends its round early
	// and continues next round — so this is a pacing/fairness knob, not an
	// error condition. A program that never stabilizes therefore surfaces as
	// ErrMaxRounds rather than a per-node failure.
	MaxStepsPerRound int64
	// NodeTimeout bounds each attempt of a node's react phase; 0 means no
	// timeout. A node that times out is retried (see NodeRetries) and, once
	// out of attempts, declared dead: the run degrades instead of hanging.
	NodeTimeout time.Duration
	// NodeRetries is how many extra attempts a failing node's react phase
	// gets before the node is declared dead. 0 means the default of 2;
	// negative means no retries (one attempt only).
	NodeRetries int
	// FaultInjector, when set, runs before each attempt of a node's react
	// phase; a non-nil return simulates the node crashing for that attempt
	// (the shard is untouched and the failure counts against the retry
	// budget). For stress tests; leave nil in production runs.
	FaultInjector func(node, round int) error
	// FullScan runs every node on the seed full-rescan matching engine
	// instead of the delta-driven incremental scheduler; the baseline knob
	// for cluster-level measurements.
	FullScan bool
	// Recorder, when non-nil, receives cluster-level telemetry (rounds,
	// migrations, gathers, dead-node adoptions on the "cluster" track) and is
	// passed through to every node's local Gamma runtime, whose firings land
	// on "node<i>/w<j>" tracks. Nil disables telemetry at nil-check cost.
	Recorder *telemetry.Recorder
}

// Stats reports a cluster execution.
type Stats struct {
	// Steps is the total number of reaction firings across all nodes.
	Steps int64
	// Probes is the total number of reaction match searches across all
	// nodes — the cluster-wide matching-engine work metric.
	Probes int64
	// Conflicts is the total number of failed optimistic commits across all
	// nodes (only nonzero with WorkersPerNode > 1).
	Conflicts int64
	// Retries is the total number of commit-conflict rematches across all
	// nodes (see gamma.Stats.Retries).
	Retries int64
	// Rounds is the number of react-diffuse rounds executed.
	Rounds int
	// Migrations counts elements shipped between nodes (diffusion and
	// redistribution alike).
	Migrations int64
	// Gathers counts global stability checks.
	Gathers int
	// PerNode is the firing count of each node.
	PerNode []int64
	// DeadNodes lists nodes declared dead (retry budget exhausted), in the
	// order they died.
	DeadNodes []int
	// Degraded reports that at least one node died and the survivors carried
	// the fixpoint to completion without it.
	Degraded bool
}

// ErrMaxRounds is returned when the round bound is exceeded. It wraps
// rt.ErrDivergent: a cluster still firing after MaxRounds react-diffuse
// rounds is the distributed signature of a program with no stable state.
var ErrMaxRounds = rt.Wrap("dist: maximum rounds exceeded", rt.ErrDivergent)

// Cluster is a simulated distributed Gamma machine.
type Cluster struct {
	prog *gamma.Program
	opt  Options
}

// NewCluster validates the program and options.
func NewCluster(prog *gamma.Program, opt Options) (*Cluster, error) {
	if opt.Nodes < 1 {
		return nil, rt.Mark(rt.ErrInvalid, fmt.Errorf("dist: need at least 1 node, got %d", opt.Nodes))
	}
	for _, r := range prog.Reactions {
		if err := r.Validate(); err != nil {
			return nil, rt.Mark(rt.ErrInvalid, err)
		}
	}
	if opt.DiffusionBatch <= 0 {
		opt.DiffusionBatch = 4
	}
	if opt.MaxRounds <= 0 {
		opt.MaxRounds = 10000
	}
	switch {
	case opt.NodeRetries == 0:
		opt.NodeRetries = 2
	case opt.NodeRetries < 0:
		opt.NodeRetries = 0
	}
	return &Cluster{prog: prog, opt: opt}, nil
}

// Run executes the program over m distributed across the cluster and returns
// the stable union multiset. m itself is consumed.
//
// Run is RunContext with context.Background(): no deadline, no cancellation.
func (c *Cluster) Run(m *multiset.Multiset) (*multiset.Multiset, *Stats, error) {
	return c.RunContext(context.Background(), m)
}

// RunContext is Run under a context: ctx propagates into every node's local
// execution and is additionally observed between rounds, so a cancellation or
// deadline stops the cluster promptly with partial Stats. Node failures
// follow the package fault model: bounded retry, then death and degradation;
// the error is only surfaced once no live node remains.
func (c *Cluster) RunContext(ctx context.Context, m *multiset.Multiset) (*multiset.Multiset, *Stats, error) {
	rng := rand.New(rand.NewSource(c.opt.Seed + 1))
	stats := &Stats{PerNode: make([]int64, c.opt.Nodes)}
	cs := newClusterSink(c.opt)
	// Migrations are incremented deep inside scatter/moveBatch; reconcile the
	// registry mirror on every exit path so the two accountings agree exactly.
	defer func() { cs.syncMigrations(stats.Migrations) }()
	alive := make([]bool, c.opt.Nodes)
	for i := range alive {
		alive[i] = true
	}
	liveCount := c.opt.Nodes

	// Initial placement: elements scatter uniformly, the no-locality
	// worst case for a distributed multiset.
	shards := make([]*multiset.Multiset, c.opt.Nodes)
	for i := range shards {
		shards[i] = multiset.New()
	}
	scatter(m, shards, alive, rng, &stats.Migrations)
	cs.syncMigrations(stats.Migrations)

	for round := 0; ; round++ {
		if err := ctx.Err(); err != nil {
			return nil, stats, rt.FromContext(err)
		}
		if round >= c.opt.MaxRounds {
			return nil, stats, ErrMaxRounds
		}
		stats.Rounds++
		t0 := cs.begin()

		// React phase: all live nodes to their local stable state,
		// concurrently. Each node runs the same incremental matching engine
		// as a single-machine execution (or the full-rescan baseline when
		// Options.FullScan is set), under the per-attempt timeout and retry
		// budget of the fault model.
		nodeStats := make([]*gamma.Stats, c.opt.Nodes)
		errs := make([]error, c.opt.Nodes)
		var wg sync.WaitGroup
		for n := 0; n < c.opt.Nodes; n++ {
			if !alive[n] {
				continue
			}
			wg.Add(1)
			go func(n int) {
				defer wg.Done()
				nodeStats[n], errs[n] = c.runNode(ctx, n, round, shards[n])
			}(n)
		}
		wg.Wait()
		fired := int64(0)
		for n := 0; n < c.opt.Nodes; n++ {
			if st := nodeStats[n]; st != nil {
				fired += st.Steps
				stats.PerNode[n] += st.Steps
				stats.Probes += st.Probes
				stats.Conflicts += st.Conflicts
				stats.Retries += st.Retries
			}
		}
		stats.Steps += fired
		cs.round(t0, fired, liveCount)

		// Bury dead nodes: survivors adopt the shard (still consistent — the
		// node stopped at a commit boundary) and the run degrades rather than
		// hanging or failing while progress is still possible.
		for n := 0; n < c.opt.Nodes; n++ {
			if errs[n] == nil {
				continue
			}
			var ne *rt.NodeError
			if !errors.As(errs[n], &ne) {
				// Not a node fault: the whole run was canceled or hit its
				// deadline. Surface immediately.
				return nil, stats, fmt.Errorf("dist: node %d: %w", n, errs[n])
			}
			alive[n] = false
			liveCount--
			stats.DeadNodes = append(stats.DeadNodes, n)
			stats.Degraded = true
			cs.adopt(n, liveCount)
			if liveCount == 0 {
				return nil, stats, fmt.Errorf("dist: all nodes dead: %w", errs[n])
			}
			scatter(shards[n], shards, alive, rng, &stats.Migrations)
			shards[n] = multiset.New()
		}
		cs.syncMigrations(stats.Migrations)

		if fired == 0 && round > 0 {
			// Quiescent round: check Eq. 1's global condition on the union.
			stats.Gathers++
			union := multiset.New()
			for _, s := range shards {
				s.ForEach(func(t multiset.Tuple, n int) bool {
					union.AddN(t, n)
					stats.Migrations += int64(n)
					return true
				})
			}
			cs.gather(union.Len())
			enabled, err := gamma.Enabled(c.prog, union)
			if err != nil {
				return nil, stats, err
			}
			if !enabled {
				return union, stats, nil
			}
			// Cross-shard matches exist: redistribute and continue.
			for i := range shards {
				shards[i] = multiset.New()
			}
			scatter(union, shards, alive, rng, &stats.Migrations)
			continue
		}

		// Diffuse phase: each live node ships a random batch to a live peer
		// allowed by the topology.
		if liveCount > 1 {
			for n := 0; n < c.opt.Nodes; n++ {
				if !alive[n] {
					continue
				}
				peer := pickPeer(n, alive, c.opt.Topology, rng)
				stats.Migrations += moveBatch(shards[n], shards[peer], c.opt.DiffusionBatch, rng)
			}
			cs.syncMigrations(stats.Migrations)
		}
	}
}

// runNode executes one node's react phase with the fault model applied:
// FaultInjector consultation, per-attempt timeout, bounded retry with a
// perturbed seed, and classification of the outcome. Stats accumulate across
// attempts (work done before a timeout is still work done). Hitting
// MaxStepsPerRound is benign truncation, not a failure.
func (c *Cluster) runNode(ctx context.Context, n, round int, shard *multiset.Multiset) (*gamma.Stats, error) {
	total := &gamma.Stats{Fired: make(map[string]int64), Workers: c.opt.WorkersPerNode}
	var lastErr error
	for attempt := 0; attempt <= c.opt.NodeRetries; attempt++ {
		if c.opt.FaultInjector != nil {
			if ferr := c.opt.FaultInjector(n, round); ferr != nil {
				lastErr = ferr
				continue
			}
		}
		nctx := ctx
		cancel := func() {}
		if c.opt.NodeTimeout > 0 {
			nctx, cancel = context.WithTimeout(ctx, c.opt.NodeTimeout)
		}
		st, err := gamma.RunContext(nctx, c.prog, shard, gamma.Options{
			Workers:    c.opt.WorkersPerNode,
			Seed:       c.opt.Seed + int64(round)*31 + int64(n) + 1 + int64(attempt)*101,
			MaxSteps:   c.opt.MaxStepsPerRound,
			FullScan:   c.opt.FullScan,
			Recorder:   c.opt.Recorder,
			TrackLabel: fmt.Sprintf("node%d", n),
		})
		cancel()
		if st != nil {
			addStats(total, st)
		}
		switch {
		case err == nil:
			return total, nil
		case errors.Is(err, gamma.ErrMaxSteps):
			// Per-round pacing budget exhausted: end the round early; the
			// next round resumes from the shard's current state.
			return total, nil
		case ctx.Err() != nil:
			// The whole run was canceled or timed out, not this attempt.
			return total, rt.FromContext(ctx.Err())
		default:
			lastErr = err
		}
	}
	return total, &rt.NodeError{Node: n, Attempts: c.opt.NodeRetries + 1, Err: lastErr}
}

// addStats accumulates src into dst (package gamma keeps its merge
// unexported; the fields are additive counters).
func addStats(dst, src *gamma.Stats) {
	dst.Steps += src.Steps
	dst.Probes += src.Probes
	dst.Conflicts += src.Conflicts
	dst.Retries += src.Retries
	dst.MemoHits += src.MemoHits
	for k, v := range src.Fired {
		dst.Fired[k] += v
	}
}

// pickPeer chooses a live diffusion target for node n. On the ring topology
// the batch goes to the nearest live neighbour in a random direction (dead
// nodes are bridged, keeping the ring connected); on the full fabric it goes
// to a uniformly random live peer.
func pickPeer(n int, alive []bool, topo Topology, rng *rand.Rand) int {
	total := len(alive)
	if topo == TopologyRing {
		step := 1
		if rng.Intn(2) != 0 {
			step = total - 1 // -1 mod total
		}
		for p := (n + step) % total; p != n; p = (p + step) % total {
			if alive[p] {
				return p
			}
		}
		return n
	}
	live := 0
	for p, ok := range alive {
		if ok && p != n {
			live++
		}
	}
	k := rng.Intn(live)
	for p, ok := range alive {
		if ok && p != n {
			if k == 0 {
				return p
			}
			k--
		}
	}
	return n // unreachable: callers guarantee a live peer exists
}

// scatter distributes all of src over the live shards uniformly at random.
func scatter(src *multiset.Multiset, shards []*multiset.Multiset, alive []bool, rng *rand.Rand, migrations *int64) {
	live := make([]*multiset.Multiset, 0, len(shards))
	for i, s := range shards {
		if alive[i] {
			live = append(live, s)
		}
	}
	for _, t := range src.Expand() {
		live[rng.Intn(len(live))].Add(t)
		*migrations++
	}
}

// moveBatch moves up to batch randomly chosen elements from one shard to
// another, returning how many moved.
func moveBatch(from, to *multiset.Multiset, batch int, rng *rand.Rand) int64 {
	elems := from.Expand()
	if len(elems) == 0 {
		return 0
	}
	rng.Shuffle(len(elems), func(i, j int) { elems[i], elems[j] = elems[j], elems[i] })
	if batch > len(elems) {
		batch = len(elems)
	}
	moved := int64(0)
	for _, t := range elems[:batch] {
		if from.Remove(t) {
			to.Add(t)
			moved++
		}
	}
	return moved
}
