package dist

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/gamma"
	"repro/internal/gammalang"
	"repro/internal/multiset"
	"repro/internal/paper"
	"repro/internal/value"
)

func minProg(t *testing.T) *gamma.Program {
	t.Helper()
	p, err := gammalang.ParseProgram("min", paper.MinElementListing)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func intSet(vals ...int64) *multiset.Multiset {
	m := multiset.New()
	for _, v := range vals {
		m.Add(multiset.New1(value.Int(v)))
	}
	return m
}

func TestSingleNodeMatchesGamma(t *testing.T) {
	c, err := NewCluster(minProg(t), Options{Nodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	result, stats, err := c.Run(intSet(9, 4, 7, 1, 8, 3))
	if err != nil {
		t.Fatal(err)
	}
	if result.Len() != 1 || !result.Contains(multiset.New1(value.Int(1))) {
		t.Fatalf("result = %s", result)
	}
	if stats.Steps != 5 {
		t.Errorf("steps = %d, want 5", stats.Steps)
	}
}

func TestClusterMinElement(t *testing.T) {
	for _, nodes := range []int{2, 4, 8} {
		c, err := NewCluster(minProg(t), Options{Nodes: nodes, Seed: int64(nodes)})
		if err != nil {
			t.Fatal(err)
		}
		m := multiset.New()
		for i := int64(1); i <= 64; i++ {
			m.Add(multiset.New1(value.Int(i)))
		}
		result, stats, err := c.Run(m)
		if err != nil {
			t.Fatalf("nodes=%d: %v", nodes, err)
		}
		if result.Len() != 1 || !result.Contains(multiset.New1(value.Int(1))) {
			t.Fatalf("nodes=%d: result = %s", nodes, result)
		}
		if stats.Steps != 63 {
			t.Errorf("nodes=%d: steps = %d, want 63", nodes, stats.Steps)
		}
		if nodes > 1 && stats.Migrations == 0 {
			t.Errorf("nodes=%d: no migrations recorded", nodes)
		}
	}
}

func TestClusterAgreesWithSingleNodeOnExample1(t *testing.T) {
	prog, err := gammalang.ParseProgram("ex1", paper.Example1GammaListing)
	if err != nil {
		t.Fatal(err)
	}
	single, err := multiset.Parse(paper.Example1InitialMultiset)
	if err != nil {
		t.Fatal(err)
	}
	reference := single.Clone()
	if _, err := gamma.Run(prog, reference, gamma.Options{}); err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(prog, Options{Nodes: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	result, _, err := c.Run(single)
	if err != nil {
		t.Fatal(err)
	}
	if !result.Equal(reference) {
		t.Fatalf("cluster %s vs single-node %s", result, reference)
	}
}

func TestClusterPrimesSieve(t *testing.T) {
	prog, err := gammalang.ParseProgram("sieve",
		`R = replace (x, y) by y where x % y == 0 and x != y`)
	if err != nil {
		t.Fatal(err)
	}
	m := multiset.New()
	for i := int64(2); i <= 40; i++ {
		m.Add(multiset.New1(value.Int(i)))
	}
	c, err := NewCluster(prog, Options{Nodes: 4, Seed: 3, WorkersPerNode: 2})
	if err != nil {
		t.Fatal(err)
	}
	result, _, err := c.Run(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37} {
		if !result.Contains(multiset.New1(value.Int(p))) {
			t.Errorf("missing prime %d in %s", p, result)
		}
	}
	if result.Len() != 12 {
		t.Errorf("result = %s, want exactly the 12 primes", result)
	}
}

func TestClusterConvertedLoop(t *testing.T) {
	// The full converted Fig. 2 program runs distributed; tag matching works
	// across shards because quiescent rounds regather and recheck globally.
	prog, err := gammalang.ParseProgram("ex2", paper.Example2GammaListing)
	if err != nil {
		t.Fatal(err)
	}
	m, err := multiset.Parse(paper.Example2InitialMultiset(10, 4, 3))
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(prog, Options{Nodes: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	result, stats, err := c.Run(m)
	if err != nil {
		t.Fatal(err)
	}
	if result.Len() != 0 {
		t.Fatalf("result = %s, want empty (the listing discards all state)", result)
	}
	if stats.Steps == 0 || stats.Rounds == 0 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestClusterStability(t *testing.T) {
	// A program with nothing enabled: terminates immediately with the input.
	prog, err := gammalang.ParseProgram("noop", `R = replace [x, 'zz'] by 0 if x > 0`)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(prog, Options{Nodes: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	in := intSet(1, 2, 3)
	result, stats, err := c.Run(in.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if !result.Equal(in) {
		t.Errorf("result = %s, want untouched input", result)
	}
	if stats.Gathers == 0 {
		t.Error("stability must be confirmed by a gather")
	}
}

func TestClusterErrors(t *testing.T) {
	if _, err := NewCluster(minProg(t), Options{Nodes: 0}); err == nil {
		t.Error("0 nodes should error")
	}
	bad := &gamma.Program{Name: "bad", Reactions: []*gamma.Reaction{{Name: "r"}}}
	if _, err := NewCluster(bad, Options{Nodes: 1}); err == nil {
		t.Error("invalid reaction should error")
	}
	// Runtime error inside a node surfaces with the node id.
	div, err := gammalang.ParseReaction(`R = replace [x, 'a'] by [x / 0, 'b']`)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(gamma.MustProgram("div", div), Options{Nodes: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	m := multiset.New(multiset.Pair(value.Int(1), "a"))
	if _, _, err := c.Run(m); err == nil {
		t.Error("node error should surface")
	}
	// Diverging program hits MaxStepsPerRound.
	grow, err := gammalang.ParseReaction(`R = replace [x, 'a'] by [x + 1, 'a']`)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := NewCluster(gamma.MustProgram("grow", grow), Options{
		Nodes: 2, Seed: 1, MaxStepsPerRound: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	m2 := multiset.New(multiset.Pair(value.Int(1), "a"))
	if _, _, err := c2.Run(m2); err == nil {
		t.Error("diverging program should error")
	}
}

func TestClusterMaxRounds(t *testing.T) {
	// A quiescent round triggers a gather, which terminates cleanly — so
	// MaxRounds is only reachable by a program that keeps firing every
	// round. A label ping-pong with a bounded per-round budget does that.
	ping, err := gammalang.ParseProgram("ping", `
A = replace [x, 'p'] by [x, 'q']
B = replace [x, 'q'] by [x, 'p']
`)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(ping, Options{Nodes: 2, Seed: 1, MaxRounds: 5, MaxStepsPerRound: 3})
	if err != nil {
		t.Fatal(err)
	}
	m := multiset.New(multiset.Pair(value.Int(1), "p"))
	_, _, err = c.Run(m)
	if !errors.Is(err, ErrMaxRounds) && err == nil {
		t.Error("ping-pong should not terminate cleanly")
	}
}

func TestScaleNodesKeepsResult(t *testing.T) {
	// Property-style: the stable result is node-count independent.
	prog := minProg(t)
	want := multiset.New(multiset.New1(value.Int(2)))
	for nodes := 1; nodes <= 6; nodes++ {
		m := intSet(40, 2, 96, 31, 10, 77, 54, 23, 68, 12)
		c, err := NewCluster(prog, Options{Nodes: nodes, Seed: int64(nodes * 7)})
		if err != nil {
			t.Fatal(err)
		}
		result, _, err := c.Run(m)
		if err != nil {
			t.Fatalf("nodes=%d: %v", nodes, err)
		}
		if !result.Equal(want) {
			t.Errorf("nodes=%d: result = %s", nodes, result)
		}
	}
}

func TestRingTopology(t *testing.T) {
	if TopologyFull.String() != "full" || TopologyRing.String() != "ring" {
		t.Error("topology names wrong")
	}
	// The ring converges to the same fixpoint as the full fabric.
	prog := minProg(t)
	m := multiset.New()
	for i := int64(1); i <= 48; i++ {
		m.Add(multiset.New1(value.Int(i)))
	}
	c, err := NewCluster(prog, Options{Nodes: 6, Seed: 4, Topology: TopologyRing})
	if err != nil {
		t.Fatal(err)
	}
	result, stats, err := c.Run(m)
	if err != nil {
		t.Fatal(err)
	}
	if result.Len() != 1 || !result.Contains(multiset.New1(value.Int(1))) {
		t.Fatalf("ring result = %s", result)
	}
	if stats.Steps != 47 {
		t.Errorf("steps = %d", stats.Steps)
	}
}

func TestStatsShape(t *testing.T) {
	c, err := NewCluster(minProg(t), Options{Nodes: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	m := intSet(5, 3, 8, 1, 9, 2, 7, 4)
	_, stats, err := c.Run(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.PerNode) != 4 {
		t.Fatalf("PerNode = %v", stats.PerNode)
	}
	total := int64(0)
	for _, s := range stats.PerNode {
		total += s
	}
	if total != stats.Steps || stats.Steps != 7 {
		t.Errorf("steps %d, per-node sum %d, want 7", stats.Steps, total)
	}
	if stats.Gathers < 1 {
		t.Error("termination requires at least one gather")
	}
}

func TestDefaultsApplied(t *testing.T) {
	c, err := NewCluster(minProg(t), Options{Nodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	if c.opt.DiffusionBatch != 4 || c.opt.MaxRounds != 10000 {
		t.Errorf("defaults not applied: %+v", c.opt)
	}
}

func TestManyNodesFewElements(t *testing.T) {
	// More nodes than elements: most shards empty, still terminates right.
	c, err := NewCluster(minProg(t), Options{Nodes: 8, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	result, _, err := c.Run(intSet(3, 1))
	if err != nil {
		t.Fatal(err)
	}
	if result.Len() != 1 || !result.Contains(multiset.New1(value.Int(1))) {
		t.Errorf("result = %s", result)
	}
	// And an empty input terminates immediately.
	empty, stats, err := c.Run(multiset.New())
	if err != nil || empty.Len() != 0 {
		t.Errorf("empty run: %v %v", empty, err)
	}
	if stats.Steps != 0 {
		t.Errorf("empty run fired %d", stats.Steps)
	}
}

func TestLargeClusterStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress")
	}
	prog := minProg(t)
	m := multiset.New()
	for i := int64(1); i <= 300; i++ {
		m.Add(multiset.New1(value.Int(i)))
	}
	c, err := NewCluster(prog, Options{Nodes: 6, Seed: 11, WorkersPerNode: 2})
	if err != nil {
		t.Fatal(err)
	}
	result, stats, err := c.Run(m)
	if err != nil {
		t.Fatal(err)
	}
	if result.Len() != 1 || !result.Contains(multiset.New1(value.Int(1))) {
		t.Fatalf("result = %s", result)
	}
	if stats.Steps != 299 {
		t.Errorf("steps = %d", stats.Steps)
	}
	fmt.Printf("stress: rounds=%d migrations=%d gathers=%d\n", stats.Rounds, stats.Migrations, stats.Gathers)
}
