// Package dfir provides an interchange format for dynamic dataflow graphs: a
// line-oriented text serialization (read and written by the cmd tools) and a
// Graphviz DOT export that reproduces the paper's figure conventions —
// squares for root vertices, circles for operators, triangles for steer and
// lozenges for inctag (Figs. 1 and 2).
package dfir

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/dataflow"
	"repro/internal/value"
)

// Marshal renders g in the dfir text format:
//
//	graph fig1
//	const x = 1
//	arith R1 +
//	compare R14 > imm 0
//	edge A1 x:0 -> R1:0
//	edge m R3:0 -> out
//
// Steer source ports are written R15:true / R15:false. The output is
// canonical: nodes in id order, edges in id order.
func Marshal(g *dataflow.Graph) string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph %s\n", g.Name)
	for _, n := range g.Nodes {
		switch n.Kind {
		case dataflow.KindConst:
			fmt.Fprintf(&b, "const %s = %s\n", n.Name, n.Init)
		case dataflow.KindArith, dataflow.KindCompare:
			kind := "arith"
			if n.Kind == dataflow.KindCompare {
				kind = "compare"
			}
			fmt.Fprintf(&b, "%s %s %s", kind, n.Name, n.Op)
			if n.Imm.IsValid() {
				if n.ImmLeft {
					fmt.Fprintf(&b, " immleft %s", n.Imm)
				} else {
					fmt.Fprintf(&b, " imm %s", n.Imm)
				}
			}
			b.WriteByte('\n')
		case dataflow.KindSteer:
			fmt.Fprintf(&b, "steer %s\n", n.Name)
		case dataflow.KindIncTag:
			fmt.Fprintf(&b, "inctag %s\n", n.Name)
		case dataflow.KindSetTag:
			fmt.Fprintf(&b, "settag %s\n", n.Name)
		case dataflow.KindCopy:
			fmt.Fprintf(&b, "copy %s\n", n.Name)
		case dataflow.KindUnaryOp:
			fmt.Fprintf(&b, "unary %s %s\n", n.Name, n.Op)
		}
	}
	for _, e := range g.Edges {
		from := g.Nodes[e.From]
		src := fmt.Sprintf("%s:%d", from.Name, e.FromPort)
		if from.Kind == dataflow.KindSteer {
			port := "true"
			if e.FromPort == dataflow.PortFalse {
				port = "false"
			}
			src = fmt.Sprintf("%s:%s", from.Name, port)
		}
		if e.To == dataflow.NoNode {
			fmt.Fprintf(&b, "edge %s %s -> out\n", e.Label, src)
		} else {
			fmt.Fprintf(&b, "edge %s %s -> %s:%d\n", e.Label, src, g.Nodes[e.To].Name, e.ToPort)
		}
	}
	return b.String()
}

// Unmarshal parses the dfir text format back into a graph.
func Unmarshal(src string) (*dataflow.Graph, error) {
	var g *dataflow.Graph
	names := make(map[string]dataflow.NodeID)
	for lineNo, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := splitFields(line)
		errf := func(format string, args ...any) error {
			return fmt.Errorf("dfir: line %d: %s", lineNo+1, fmt.Sprintf(format, args...))
		}
		if g == nil {
			if fields[0] != "graph" || len(fields) != 2 {
				return nil, errf("expected 'graph <name>' first, got %q", line)
			}
			g = dataflow.NewGraph(fields[1])
			continue
		}
		switch fields[0] {
		case "graph":
			return nil, errf("duplicate graph directive")
		case "const":
			if len(fields) != 4 || fields[2] != "=" {
				return nil, errf("expected 'const <name> = <value>'")
			}
			v, err := value.Parse(fields[3])
			if err != nil {
				return nil, errf("%v", err)
			}
			if err := declare(names, fields[1], g.AddConst(fields[1], v)); err != nil {
				return nil, errf("%v", err)
			}
		case "arith", "compare":
			if len(fields) != 3 && len(fields) != 5 {
				return nil, errf("expected '%s <name> <op> [imm|immleft <value>]'", fields[0])
			}
			name, op := fields[1], fields[2]
			var id dataflow.NodeID
			if len(fields) == 5 {
				v, err := value.Parse(fields[4])
				if err != nil {
					return nil, errf("%v", err)
				}
				switch {
				case fields[0] == "arith" && fields[3] == "imm":
					id = g.AddArithImm(name, op, v)
				case fields[0] == "arith" && fields[3] == "immleft":
					id = g.AddArithImmLeft(name, op, v)
				case fields[0] == "compare" && fields[3] == "imm":
					id = g.AddCompareImm(name, op, v)
				case fields[0] == "compare" && fields[3] == "immleft":
					id = g.AddCompareImmLeft(name, op, v)
				default:
					return nil, errf("expected imm or immleft, got %q", fields[3])
				}
			} else if fields[0] == "arith" {
				id = g.AddArith(name, op)
			} else {
				id = g.AddCompare(name, op)
			}
			if err := declare(names, name, id); err != nil {
				return nil, errf("%v", err)
			}
		case "steer", "inctag", "copy", "settag":
			if len(fields) != 2 {
				return nil, errf("expected '%s <name>'", fields[0])
			}
			var id dataflow.NodeID
			switch fields[0] {
			case "steer":
				id = g.AddSteer(fields[1])
			case "inctag":
				id = g.AddIncTag(fields[1])
			case "settag":
				id = g.AddSetTag(fields[1])
			default:
				id = g.AddCopy(fields[1])
			}
			if err := declare(names, fields[1], id); err != nil {
				return nil, errf("%v", err)
			}
		case "unary":
			if len(fields) != 3 {
				return nil, errf("expected 'unary <name> <op>'")
			}
			if err := declare(names, fields[1], g.AddUnary(fields[1], fields[2])); err != nil {
				return nil, errf("%v", err)
			}
		case "edge":
			if len(fields) != 5 || fields[3] != "->" {
				return nil, errf("expected 'edge <label> <from>:<port> -> <to>:<port>|out'")
			}
			label := fields[1]
			fromName, fromPort, err := parseEndpoint(fields[2], names, g, true)
			if err != nil {
				return nil, errf("%v", err)
			}
			if fields[4] == "out" {
				if _, err := g.ConnectOut(fromName, fromPort, label); err != nil {
					return nil, errf("%v", err)
				}
				continue
			}
			toName, toPort, err := parseEndpoint(fields[4], names, g, false)
			if err != nil {
				return nil, errf("%v", err)
			}
			if _, err := g.Connect(fromName, fromPort, toName, toPort, label); err != nil {
				return nil, errf("%v", err)
			}
		default:
			return nil, errf("unknown directive %q", fields[0])
		}
	}
	if g == nil {
		return nil, fmt.Errorf("dfir: empty input")
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

func declare(names map[string]dataflow.NodeID, name string, id dataflow.NodeID) error {
	if _, dup := names[name]; dup {
		return fmt.Errorf("node %s declared twice", name)
	}
	names[name] = id
	return nil
}

// splitFields splits on whitespace but keeps quoted strings (for const
// values like 'A1') intact.
func splitFields(line string) []string {
	var fields []string
	cur := strings.Builder{}
	var quote byte
	for i := 0; i < len(line); i++ {
		c := line[i]
		switch {
		case quote != 0:
			cur.WriteByte(c)
			if c == quote {
				quote = 0
			}
		case c == '\'' || c == '"':
			quote = c
			cur.WriteByte(c)
		case c == ' ' || c == '\t':
			if cur.Len() > 0 {
				fields = append(fields, cur.String())
				cur.Reset()
			}
		default:
			cur.WriteByte(c)
		}
	}
	if cur.Len() > 0 {
		fields = append(fields, cur.String())
	}
	return fields
}

// parseEndpoint parses "name:port", with true/false accepted for steer
// source ports.
func parseEndpoint(s string, names map[string]dataflow.NodeID, g *dataflow.Graph, from bool) (dataflow.NodeID, int, error) {
	i := strings.LastIndex(s, ":")
	if i < 0 {
		return 0, 0, fmt.Errorf("endpoint %q needs a :port suffix", s)
	}
	name, portStr := s[:i], s[i+1:]
	id, ok := names[name]
	if !ok {
		return 0, 0, fmt.Errorf("unknown node %q", name)
	}
	switch portStr {
	case "true":
		return id, dataflow.PortTrue, nil
	case "false":
		return id, dataflow.PortFalse, nil
	}
	port := 0
	if _, err := fmt.Sscanf(portStr, "%d", &port); err != nil {
		return 0, 0, fmt.Errorf("bad port %q", portStr)
	}
	return id, port, nil
}

// ToDOT renders the graph in Graphviz DOT with the paper's shape
// conventions: box for const roots, ellipse for operators, triangle for
// steer, diamond (lozenge) for inctag, point for program outputs.
func ToDOT(g *dataflow.Graph) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=TB;\n", g.Name)
	for _, n := range g.Nodes {
		shape, label := "ellipse", n.Name
		switch n.Kind {
		case dataflow.KindConst:
			shape = "box"
			label = fmt.Sprintf("%s = %s", n.Name, n.Init)
		case dataflow.KindArith, dataflow.KindCompare:
			label = fmt.Sprintf("%s\\n%s", n.Name, n.Op)
			if n.Imm.IsValid() {
				if n.ImmLeft {
					label = fmt.Sprintf("%s\\n%s %s _", n.Name, n.Imm, n.Op)
				} else {
					label = fmt.Sprintf("%s\\n_ %s %s", n.Name, n.Op, n.Imm)
				}
			}
		case dataflow.KindSteer:
			shape = "triangle"
		case dataflow.KindIncTag:
			shape = "diamond"
		case dataflow.KindSetTag:
			shape = "invhouse"
		case dataflow.KindUnaryOp:
			label = fmt.Sprintf("%s\\n%s", n.Name, n.Op)
		}
		fmt.Fprintf(&b, "  n%d [shape=%s, label=\"%s\"];\n", n.ID, shape, label)
	}
	outN := 0
	for _, e := range g.Edges {
		attrs := fmt.Sprintf("label=%q", e.Label)
		if g.Nodes[e.From].Kind == dataflow.KindSteer {
			if e.FromPort == dataflow.PortTrue {
				attrs += ", taillabel=\"T\""
			} else {
				attrs += ", taillabel=\"F\""
			}
		}
		if e.To == dataflow.NoNode {
			fmt.Fprintf(&b, "  out%d [shape=point];\n", outN)
			fmt.Fprintf(&b, "  n%d -> out%d [%s];\n", e.From, outN, attrs)
			outN++
			continue
		}
		fmt.Fprintf(&b, "  n%d -> n%d [%s];\n", e.From, e.To, attrs)
	}
	b.WriteString("}\n")
	return b.String()
}

// Stats summarizes a graph for reporting: node counts per kind and edge
// count.
func Stats(g *dataflow.Graph) string {
	counts := make(map[string]int)
	for _, n := range g.Nodes {
		counts[n.Kind.String()]++
	}
	kinds := make([]string, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	parts := make([]string, 0, len(kinds)+1)
	for _, k := range kinds {
		parts = append(parts, fmt.Sprintf("%s=%d", k, counts[k]))
	}
	parts = append(parts, fmt.Sprintf("edges=%d", len(g.Edges)))
	return strings.Join(parts, " ")
}
