package dfir

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/dataflow"
	"repro/internal/paper"
	"repro/internal/value"
)

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	graphs := map[string]*dataflow.Graph{
		"fig1":     paper.Fig1Graph(),
		"fig2":     paper.Fig2Graph(),
		"fig2-obs": paper.Fig2GraphObservable(10, 4, 3),
	}
	for name, g := range graphs {
		text := Marshal(g)
		back, err := Unmarshal(text)
		if err != nil {
			t.Fatalf("%s: unmarshal: %v\n%s", name, err, text)
		}
		// Canonical form is a fixpoint.
		if text2 := Marshal(back); text2 != text {
			t.Errorf("%s: marshal not canonical:\n%s\nvs\n%s", name, text, text2)
		}
		// Behaviour is preserved.
		r1, err := dataflow.Run(g, dataflow.Options{MaxFirings: 100000})
		if err != nil {
			t.Fatal(err)
		}
		r2, err := dataflow.Run(back, dataflow.Options{MaxFirings: 100000})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(r1.Outputs, r2.Outputs) {
			t.Errorf("%s: outputs differ after round trip", name)
		}
	}
}

func TestUnmarshalBasic(t *testing.T) {
	src := `
# a comment
graph tiny
const a = 2
const b = 'hi'
arith add + imm 3
unary neg -
edge e1 a:0 -> add:0
edge e2 add:0 -> neg:0
edge o neg:0 -> out
edge so b:0 -> out
`
	g, err := Unmarshal(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := dataflow.Run(g, dataflow.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := res.Output("o"); v != value.Int(-5) {
		t.Errorf("o = %v, want -5", v)
	}
	if v, _ := res.Output("so"); v != value.Str("hi") {
		t.Errorf("so = %v", v)
	}
}

func TestSetTagRoundTrip(t *testing.T) {
	src := `graph st
const a = 5
inctag inc
settag rst
edge e1 a:0 -> inc:0
edge e2 inc:0 -> rst:0
edge o rst:0 -> out
`
	g, err := Unmarshal(src)
	if err != nil {
		t.Fatal(err)
	}
	if Marshal(g) != src {
		t.Errorf("settag not canonical:\n%s", Marshal(g))
	}
	res, err := dataflow.Run(g, dataflow.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// inctag raises the tag to 1; settag resets it to 0.
	outs := res.Outputs["o"]
	if len(outs) != 1 || outs[0].Tag != 0 || outs[0].Val != value.Int(5) {
		t.Errorf("o = %v, want [5 @ tag 0]", outs)
	}
	if !strings.Contains(ToDOT(g), "invhouse") {
		t.Error("settag DOT shape missing")
	}
}

func TestUnmarshalSteerPorts(t *testing.T) {
	src := `graph st
const d = 9
const c = 1
steer s
edge e1 d:0 -> s:0
edge e2 c:0 -> s:1
edge t s:true -> out
edge f s:false -> out
`
	g, err := Unmarshal(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := dataflow.Run(g, dataflow.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := res.Output("t"); !ok || v != value.Int(9) {
		t.Errorf("t = %v", v)
	}
	if _, ok := res.Output("f"); ok {
		t.Error("f should be empty")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	bad := []string{
		"",
		"const a = 1",                             // no graph directive
		"graph g\ngraph h",                        // duplicate directive
		"graph g\nconst a",                        // malformed const
		"graph g\nconst a = @",                    // bad literal
		"graph g\nwhat a",                         // unknown directive
		"graph g\nconst a = 1\nconst a = 2",       // duplicate node
		"graph g\narith x",                        // malformed arith
		"graph g\narith x + imq 1",                // bad imm keyword
		"graph g\nsteer",                          // malformed steer
		"graph g\nunary u",                        // malformed unary
		"graph g\nedge e a:0 -> b:0",              // unknown nodes
		"graph g\nconst a = 1\nedge e a -> out",   // missing port
		"graph g\nconst a = 1\nedge e a:x -> out", // bad port
		"graph g\nconst a = 1\nedge e a:0 b:0",    // missing arrow
		"graph g\nconst a = 1",                    // no edges; const with no out is valid though...
	}
	for _, src := range bad[:len(bad)-1] {
		if _, err := Unmarshal(src); err == nil {
			t.Errorf("Unmarshal(%q) should error", src)
		}
	}
}

func TestToDOTShapes(t *testing.T) {
	dot := ToDOT(paper.Fig2Graph())
	for _, want := range []string{
		"digraph", "shape=box", "shape=triangle", "shape=diamond", "shape=ellipse",
		"taillabel=\"T\"", "label=\"B12\"",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q", want)
		}
	}
	dotObs := ToDOT(paper.Fig2GraphObservable(1, 1, 1))
	if !strings.Contains(dotObs, "shape=point") {
		t.Error("output edges should render as points")
	}
	if !strings.Contains(dotObs, "taillabel=\"F\"") {
		t.Error("false port should be tagged")
	}
	// Immediate operands render inline.
	if !strings.Contains(dot, "_ > 0") {
		t.Errorf("immediate comparison not rendered:\n%s", dot)
	}
}

func TestStats(t *testing.T) {
	s := Stats(paper.Fig1Graph())
	for _, want := range []string{"const=4", "arith=3", "edges=7"} {
		if !strings.Contains(s, want) {
			t.Errorf("Stats = %q, missing %q", s, want)
		}
	}
}

func TestSplitFieldsQuoted(t *testing.T) {
	got := splitFields("const a = 'hello world'")
	want := []string{"const", "a", "=", "'hello world'"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("splitFields = %v", got)
	}
}
