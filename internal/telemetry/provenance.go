package telemetry

import (
	"fmt"
	"io"
	"strings"
	"sync"
)

// Provenance recovers the firing DAG of a traced execution: every firing is
// a vertex, and an edge connects the firing that produced an element/token
// to the firing that consumed it. It implements gamma.Tracer and
// dataflow.Tracer (the same RecordFiring shape package profile consumes), so
// attaching it to a Gamma run renders the run as the dataflow graph the
// paper's §III-C equivalence says it is — on the Fig. 1 program the exported
// DOT is isomorphic to the paper's Fig. 1.
//
// Dependency threading follows profile.Collector: elements are matched by
// key, and duplicate keys (multiset multiplicity, token queues) stack, most
// recent producer first. Keys never consumed by a later firing become output
// vertices; keys consumed without a recorded producer are initial inputs.
type Provenance struct {
	mu sync.Mutex
	// Labeler renders an element/token key as the label of input and output
	// vertices. Nil leaves keys as-is (dataflow token keys are already
	// readable; Gamma callers pass multiset.PrettyKey).
	Labeler func(key string) string

	firings []provFiring
	inputs  []provInput
	inputIx map[string]int
	// produced lists every produced key in production order; live maps a key
	// to the stack of indexes into produced that are not yet consumed.
	produced []provProduced
	live     map[string][]int
	edges    []provEdge
}

type provFiring struct{ name string }

type provInput struct{ key string }

type provProduced struct {
	key      string
	firing   int
	consumed bool
}

// provEdge connects producer to consumer; inputs are encoded as negative
// from-indexes (-1-inputIdx), firings as their index.
type provEdge struct{ from, to int }

// NewProvenance returns an empty provenance collector.
func NewProvenance() *Provenance {
	return &Provenance{inputIx: make(map[string]int), live: make(map[string][]int)}
}

// RecordFiring implements gamma.Tracer and dataflow.Tracer.
func (p *Provenance) RecordFiring(name string, consumed, produced []string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	id := len(p.firings)
	p.firings = append(p.firings, provFiring{name: name})
	for _, key := range consumed {
		stack := p.live[key]
		if len(stack) == 0 {
			// No recorded producer: an initial element/token.
			ix, ok := p.inputIx[key]
			if !ok {
				ix = len(p.inputs)
				p.inputs = append(p.inputs, provInput{key: key})
				p.inputIx[key] = ix
			}
			p.edges = append(p.edges, provEdge{from: -1 - ix, to: id})
			continue
		}
		top := stack[len(stack)-1]
		p.live[key] = stack[:len(stack)-1]
		p.produced[top].consumed = true
		p.edges = append(p.edges, provEdge{from: p.produced[top].firing, to: id})
	}
	for _, key := range produced {
		p.produced = append(p.produced, provProduced{key: key, firing: id})
		p.live[key] = append(p.live[key], len(p.produced)-1)
	}
}

// Firings returns the number of recorded firings.
func (p *Provenance) Firings() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.firings)
}

func (p *Provenance) label(key string) string {
	if p.Labeler != nil {
		return p.Labeler(key)
	}
	return key
}

func dotEscape(s string) string {
	return strings.NewReplacer(`\`, `\\`, `"`, `\"`).Replace(s)
}

// WriteDOT renders the firing DAG as Graphviz DOT: initial elements and
// unconsumed products as boxes, firings as ellipses, dependencies as edges,
// all in deterministic (recording) order.
func (p *Provenance) WriteDOT(w io.Writer) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	var b strings.Builder
	b.WriteString("digraph provenance {\n")
	b.WriteString("  rankdir=LR;\n")
	b.WriteString("  node [fontname=\"Helvetica\"];\n")
	for i, in := range p.inputs {
		fmt.Fprintf(&b, "  i%d [shape=box, style=filled, fillcolor=\"#e8f0fe\", label=\"%s\"];\n",
			i, dotEscape(p.label(in.key)))
	}
	for i, f := range p.firings {
		fmt.Fprintf(&b, "  f%d [shape=ellipse, label=\"%s\"];\n", i, dotEscape(f.name))
	}
	outs := 0
	for _, pr := range p.produced {
		if pr.consumed {
			continue
		}
		fmt.Fprintf(&b, "  o%d [shape=box, style=filled, fillcolor=\"#e6f4ea\", label=\"%s\"];\n",
			outs, dotEscape(p.label(pr.key)))
		outs++
	}
	for _, e := range p.edges {
		if e.from < 0 {
			fmt.Fprintf(&b, "  i%d -> f%d;\n", -1-e.from, e.to)
		} else {
			fmt.Fprintf(&b, "  f%d -> f%d;\n", e.from, e.to)
		}
	}
	outs = 0
	for _, pr := range p.produced {
		if pr.consumed {
			continue
		}
		fmt.Fprintf(&b, "  f%d -> o%d;\n", pr.firing, outs)
		outs++
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
