package telemetry

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/metrics"
)

// Counter is a monotone atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value reads the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value (worklist depth, cardinality, live
// nodes). Unlike a Counter it moves both ways and keeps a high-water mark.
type Gauge struct {
	v   atomic.Int64
	max atomic.Int64
}

// Set records the current value and updates the high-water mark.
func (g *Gauge) Set(n int64) {
	g.v.Store(n)
	for {
		m := g.max.Load()
		if n <= m || g.max.CompareAndSwap(m, n) {
			return
		}
	}
}

// Add moves the gauge by a delta — the form used for occupancy-style gauges
// (queue depth, busy executors) written as +1/-1 pairs from concurrent
// paths, where Set would lose updates. The high-water mark tracks the value
// after the move.
func (g *Gauge) Add(n int64) {
	v := g.v.Add(n)
	for {
		m := g.max.Load()
		if v <= m || g.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Value reads the last set value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Max reads the high-water mark.
func (g *Gauge) Max() int64 { return g.max.Load() }

// histBuckets is the bucket count of a Histogram: bucket i counts
// observations v with bits.Len64(v) == i, i.e. power-of-two latency bands.
const histBuckets = 64

// Histogram accumulates a latency distribution in power-of-two buckets. It
// trades precision (quantiles are exact only to a factor of 2, interpolated
// within a bucket) for a fixed footprint and lock-free concurrent Observe.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one value (nanoseconds by convention); negatives clamp to 0.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	for {
		m := h.max.Load()
		if v <= m || h.max.CompareAndSwap(m, v) {
			break
		}
	}
	h.buckets[bits.Len64(uint64(v))].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Max returns the largest observation.
func (h *Histogram) Max() int64 { return h.max.Load() }

// Mean returns the average observation, 0 when empty.
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) by linear interpolation
// within the containing power-of-two bucket.
func (h *Histogram) Quantile(q float64) int64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	rank := q * float64(n-1)
	seen := int64(0)
	for i := 0; i < histBuckets; i++ {
		c := h.buckets[i].Load()
		if c == 0 {
			continue
		}
		if float64(seen+c) > rank {
			lo := int64(0)
			if i > 0 {
				lo = int64(1) << uint(i-1)
			}
			hi := int64(1)<<uint(i) - 1
			if i == 0 {
				hi = 0
			}
			frac := (rank - float64(seen)) / float64(c)
			return lo + int64(math.Round(frac*float64(hi-lo)))
		}
		seen += c
	}
	return h.max.Load()
}

// Registry is a name-indexed store of counters, gauges and histograms.
// Instruments are created on first use and live for the registry's lifetime;
// hot paths resolve them once and hold the pointer.
//
// A registry additionally owns label dimensions: Labeled(dim, val) returns a
// child registry scoped to one label value (a tenant, an engine). Children
// are full registries with their own instruments; writers account the same
// event into the global instrument AND the labeled child's same-named one,
// two independent accountings the CheckRollup differential holds to exact
// equality — the same discipline the telSink/Stats cross-check uses. (A
// chained write-through design was rejected: one event recorded under two
// dimensions would double-count the parent, and a trivially-true rollup
// checks nothing.)
type Registry struct {
	mu       sync.Mutex
	counts   map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	children map[string]map[string]*Registry // dimension → label value → child
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counts: make(map[string]*Counter),
		gauges: make(map[string]*Gauge),
		hists:  make(map[string]*Histogram),
	}
}

// Labeled returns the child registry for one value of a label dimension,
// e.g. r.Labeled("tenant", "alice"), creating it on first use. Children are
// ordinary registries (they may nest further, though nothing does today);
// Snapshot and the Prometheus exposition render their instruments with a
// {dim="val"} label.
func (r *Registry) Labeled(dim, val string) *Registry {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.children == nil {
		r.children = make(map[string]map[string]*Registry)
	}
	byVal := r.children[dim]
	if byVal == nil {
		byVal = make(map[string]*Registry)
		r.children[dim] = byVal
	}
	c, ok := byVal[val]
	if !ok {
		c = NewRegistry()
		byVal[val] = c
	}
	return c
}

// childrenOf copies the child map of one dimension (nil when the dimension
// was never labeled).
func (r *Registry) childrenOf(dim string) map[string]*Registry {
	r.mu.Lock()
	defer r.mu.Unlock()
	byVal := r.children[dim]
	if byVal == nil {
		return nil
	}
	out := make(map[string]*Registry, len(byVal))
	for v, c := range byVal {
		out[v] = c
	}
	return out
}

// CheckRollup verifies the label-rollup invariant of one dimension: for
// every counter, gauge and histogram name that appears in any child, the
// sum over the children equals the parent's same-named instrument exactly
// (counters and gauges by value; histograms by count, sum and every
// power-of-two bucket). Gauge high-water marks are excluded — children peak
// at different moments, so maxima do not sum — and gauge values only hold
// at quiescence, where the callers run the check. Writers that account each
// event into exactly one child per dimension plus the global instrument
// satisfy the invariant by construction; a missed or doubled write surfaces
// here.
func (r *Registry) CheckRollup(dim string) error {
	children := r.childrenOf(dim)
	counterSums := make(map[string]int64)
	gaugeSums := make(map[string]int64)
	type histSum struct {
		count, sum int64
		buckets    [histBuckets]int64
	}
	histSums := make(map[string]*histSum)
	for _, c := range children {
		c.mu.Lock()
		for name, ctr := range c.counts {
			counterSums[name] += ctr.Value()
		}
		for name, g := range c.gauges {
			gaugeSums[name] += g.Value()
		}
		for name, h := range c.hists {
			hs := histSums[name]
			if hs == nil {
				hs = &histSum{}
				histSums[name] = hs
			}
			hs.count += h.Count()
			hs.sum += h.Sum()
			for i := range hs.buckets {
				hs.buckets[i] += h.buckets[i].Load()
			}
		}
		c.mu.Unlock()
	}
	for _, name := range sortedKeys(counterSums) {
		if got, want := counterSums[name], r.CounterValue(name); got != want {
			return fmt.Errorf("telemetry: rollup %s: counter %s: children sum to %d, global %d", dim, name, got, want)
		}
	}
	for _, name := range sortedKeys(gaugeSums) {
		if got, want := gaugeSums[name], r.Gauge(name).Value(); got != want {
			return fmt.Errorf("telemetry: rollup %s: gauge %s: children sum to %d, global %d", dim, name, got, want)
		}
	}
	for _, name := range sortedKeys(histSums) {
		hs := histSums[name]
		g := r.Histogram(name)
		if hs.count != g.Count() || hs.sum != g.Sum() {
			return fmt.Errorf("telemetry: rollup %s: histogram %s: children (count %d, sum %d), global (count %d, sum %d)",
				dim, name, hs.count, hs.sum, g.Count(), g.Sum())
		}
		for i := range hs.buckets {
			if got, want := hs.buckets[i], g.buckets[i].Load(); got != want {
				return fmt.Errorf("telemetry: rollup %s: histogram %s bucket %d: children sum to %d, global %d",
					dim, name, i, got, want)
			}
		}
	}
	return nil
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counts[name]
	if !ok {
		c = &Counter{}
		r.counts[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// CounterValue reads a counter by name; 0 when it was never created.
func (r *Registry) CounterValue(name string) int64 {
	r.mu.Lock()
	c, ok := r.counts[name]
	r.mu.Unlock()
	if !ok {
		return 0
	}
	return c.Value()
}

// HistSnapshot is a histogram's summary in a Snapshot.
type HistSnapshot struct {
	Count int64   `json:"count"`
	SumNS int64   `json:"sum_ns"`
	Mean  float64 `json:"mean_ns"`
	P50   int64   `json:"p50_ns"`
	P90   int64   `json:"p90_ns"`
	P99   int64   `json:"p99_ns"`
	Max   int64   `json:"max_ns"`
}

// GaugeSnapshot is a gauge's summary in a Snapshot.
type GaugeSnapshot struct {
	Value int64 `json:"value"`
	Max   int64 `json:"max"`
}

// Snapshot is a point-in-time copy of every instrument, JSON-marshalable —
// the payload of the -metrics-addr HTTP endpoint. Children holds the label
// dimensions (dimension → label value → that child's snapshot); absent when
// the registry has none (additive, so pre-label consumers are unaffected).
type Snapshot struct {
	Counters   map[string]int64               `json:"counters"`
	Gauges     map[string]GaugeSnapshot       `json:"gauges"`
	Histograms map[string]HistSnapshot        `json:"histograms"`
	Children   map[string]map[string]Snapshot `json:"children,omitempty"`
}

// Snapshot captures every instrument's current value. Safe to call while the
// observed run is still executing.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counts)),
		Gauges:     make(map[string]GaugeSnapshot, len(r.gauges)),
		Histograms: make(map[string]HistSnapshot, len(r.hists)),
	}
	for name, c := range r.counts {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = GaugeSnapshot{Value: g.Value(), Max: g.Max()}
	}
	for name, h := range r.hists {
		s.Histograms[name] = HistSnapshot{
			Count: h.Count(), SumNS: h.Sum(), Mean: h.Mean(),
			P50: h.Quantile(0.50), P90: h.Quantile(0.90), P99: h.Quantile(0.99),
			Max: h.Max(),
		}
	}
	// Copy the child structure under the lock, snapshot the children outside
	// it — a child's Snapshot takes its own lock and must not nest in ours.
	var dims map[string]map[string]*Registry
	if len(r.children) > 0 {
		dims = make(map[string]map[string]*Registry, len(r.children))
		for dim, byVal := range r.children {
			vals := make(map[string]*Registry, len(byVal))
			for v, c := range byVal {
				vals[v] = c
			}
			dims[dim] = vals
		}
	}
	r.mu.Unlock()
	if dims != nil {
		s.Children = make(map[string]map[string]Snapshot, len(dims))
		for dim, byVal := range dims {
			vals := make(map[string]Snapshot, len(byVal))
			for v, c := range byVal {
				vals[v] = c.Snapshot()
			}
			s.Children[dim] = vals
		}
	}
	return s
}

// Table renders the registry as the -metrics summary table, instruments
// sorted by name within kind.
func (r *Registry) Table() *metrics.Table {
	s := r.Snapshot()
	t := metrics.NewTable("telemetry metrics", "metric", "kind", "value", "detail")
	for _, name := range sortedKeys(s.Counters) {
		t.Row(name, "counter", s.Counters[name], "")
	}
	for _, name := range sortedKeys(s.Gauges) {
		g := s.Gauges[name]
		t.Row(name, "gauge", g.Value, fmt.Sprintf("max=%d", g.Max))
	}
	for _, name := range sortedKeys(s.Histograms) {
		h := s.Histograms[name]
		t.Row(name, "histogram", h.Count,
			fmt.Sprintf("mean=%.0fns p50=%dns p99=%dns max=%dns", h.Mean, h.P50, h.P99, h.Max))
	}
	return t
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
