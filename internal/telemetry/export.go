package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// The Perfetto exporter emits Chrome trace-event JSON ("JSON object format"):
// a traceEvents array of metadata (ph "M"), complete-span (ph "X"), instant
// (ph "i") and counter (ph "C") events. One recorder track maps to one
// thread (tid) inside a single process (pid 1); Perfetto renders each as its
// own timeline row named by a thread_name metadata event. Timestamps are
// microseconds (the format's unit), recorder-relative.

// traceEvent is one entry of the traceEvents array.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// tracePID is the single synthetic process id of an exported trace.
const tracePID = 1

func usec(ns int64) float64 { return float64(ns) / 1e3 }

// perfettoEvent converts one recorded event for track tid; a second counter
// sample is returned for firing events, which carry the post-commit
// cardinality/depth in Arg (the Perfetto counter track plots the multiset
// shrinking toward the stable state).
func perfettoEvent(e Event, tid int) (traceEvent, *traceEvent) {
	te := traceEvent{Name: e.Name, TS: usec(e.TS), PID: tracePID, TID: tid}
	switch e.Kind {
	case KindFiring, KindRound:
		te.Ph = "X"
		d := usec(e.Dur)
		te.Dur = &d
		te.Args = map[string]any{"kind": e.Kind.String()}
		if e.Kind == KindFiring {
			te.Args["cardinality"] = e.Arg
			te.Args["woken"] = e.Arg2
			ctr := traceEvent{
				Name: "cardinality", Ph: "C", TS: usec(e.TS + e.Dur),
				PID: tracePID, TID: tid,
				Args: map[string]any{"elements": e.Arg},
			}
			return te, &ctr
		}
		te.Args["fired"] = e.Arg
		te.Args["live_nodes"] = e.Arg2
	default:
		te.Ph = "i"
		te.S = "t"
		te.Args = map[string]any{"kind": e.Kind.String(), "arg": e.Arg, "arg2": e.Arg2}
	}
	return te, nil
}

// WritePerfetto exports the recorder's event buffers as Chrome trace-event
// JSON, loadable at https://ui.perfetto.dev. Take the snapshot after the
// traced run has returned.
func WritePerfetto(w io.Writer, r *Recorder) error {
	tracks := r.Snapshot()
	events := make([]traceEvent, 0, 64)
	for tid, tr := range tracks {
		events = append(events, traceEvent{
			Name: "thread_name", Ph: "M", PID: tracePID, TID: tid,
			Args: map[string]any{"name": tr.Name},
		})
		for _, e := range tr.Events {
			te, ctr := perfettoEvent(e, tid)
			events = append(events, te)
			if ctr != nil {
				events = append(events, *ctr)
			}
		}
	}
	// Canonical order: per-track nondecreasing ts. Counter samples are
	// stamped at their span's end and would otherwise interleave backwards
	// past the next span's start. Stable, so metadata stays first per track.
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].TID != events[j].TID {
			return events[i].TID < events[j].TID
		}
		return events[i].TS < events[j].TS
	})
	doc := struct {
		TraceEvents     []traceEvent `json:"traceEvents"`
		DisplayTimeUnit string       `json:"displayTimeUnit"`
	}{TraceEvents: events, DisplayTimeUnit: "ns"}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// jsonlEvent is one line of the JSONL export.
type jsonlEvent struct {
	Track string `json:"track"`
	Kind  string `json:"kind"`
	Name  string `json:"name"`
	TSNS  int64  `json:"ts_ns"`
	DurNS int64  `json:"dur_ns,omitempty"`
	Arg   int64  `json:"arg,omitempty"`
	Arg2  int64  `json:"arg2,omitempty"`
}

// WriteJSONL exports the recorder's event buffers as one JSON object per
// line — the grep/jq-friendly raw form of the same data WritePerfetto
// renders. Dropped-event counts are reported as a trailing comment-free
// summary object per track with kind "dropped".
func WriteJSONL(w io.Writer, r *Recorder) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, tr := range r.Snapshot() {
		for _, e := range tr.Events {
			le := jsonlEvent{
				Track: tr.Name, Kind: e.Kind.String(), Name: e.Name,
				TSNS: e.TS, DurNS: e.Dur, Arg: e.Arg, Arg2: e.Arg2,
			}
			if err := enc.Encode(le); err != nil {
				return err
			}
		}
		if tr.Dropped > 0 {
			if err := enc.Encode(jsonlEvent{Track: tr.Name, Kind: "dropped", Arg: tr.Dropped}); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Format names an export format accepted by Write.
type Format string

const (
	FormatPerfetto Format = "perfetto"
	FormatDOT      Format = "dot"
	FormatJSONL    Format = "jsonl"
	// FormatSchedule is the executable-schedule export (package replay):
	// the run's firings in commit order, replayable step for step.
	FormatSchedule Format = "schedule"
)

// ParseFormat validates a -trace-format flag value.
func ParseFormat(s string) (Format, error) {
	switch Format(s) {
	case FormatPerfetto, FormatDOT, FormatJSONL, FormatSchedule:
		return Format(s), nil
	}
	return "", fmt.Errorf("telemetry: unknown trace format %q (want perfetto, dot, jsonl or schedule)", s)
}
