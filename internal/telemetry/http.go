package telemetry

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"time"
)

// ServeMetrics starts an expvar-style HTTP endpoint serving live JSON
// snapshots of the registry at /metrics (and /, for curl convenience) on
// addr (e.g. "localhost:6060" or ":0" for an ephemeral port). It returns the
// bound address and a close function; the server runs until closed.
// Snapshots read only atomics, so serving during a run is safe.
func ServeMetrics(addr string, reg *Registry) (string, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("telemetry: metrics listener: %w", err)
	}
	mux := http.NewServeMux()
	handler := func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(reg.Snapshot())
	}
	mux.HandleFunc("/metrics", handler)
	mux.HandleFunc("/", handler)
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln)
	return ln.Addr().String(), func() { srv.Close() }, nil
}
