package telemetry

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// MetricsHandler serves registry snapshots at one endpoint in two formats:
//
//	?format=json (default)  the indented Snapshot JSON
//	?format=prom            Prometheus text exposition (scrape-able)
//
// Content-Type follows the format; an unknown ?format= is 406 Not Acceptable
// (it used to silently fall back to JSON, which made scrape misconfiguration
// invisible). Snapshots read only atomics, so serving during a run is safe.
func MetricsHandler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch format := r.URL.Query().Get("format"); format {
		case "", "json":
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(reg.Snapshot()) //nolint:errcheck // client gone
		case "prom", "prometheus":
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			WritePrometheus(w, reg) //nolint:errcheck // client gone
		default:
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			w.WriteHeader(http.StatusNotAcceptable)
			fmt.Fprintf(w, "unknown metrics format %q (want json or prom)\n", format)
		}
	})
}

// WatchHandler streams registry snapshots as Server-Sent Events: one `data:`
// line of compact Snapshot JSON per tick until the client disconnects. The
// tick defaults to 1s; ?interval_ms= overrides it (clamped to ≥ 50ms so a
// dashboard cannot busy-loop the server). The first event is sent
// immediately, so a one-shot consumer need not wait a full interval.
func WatchHandler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		flusher, ok := w.(http.Flusher)
		if !ok {
			http.Error(w, "streaming unsupported", http.StatusNotImplemented)
			return
		}
		interval := time.Second
		if ms, err := strconv.Atoi(r.URL.Query().Get("interval_ms")); err == nil && ms > 0 {
			if ms < 50 {
				ms = 50
			}
			interval = time.Duration(ms) * time.Millisecond
		}
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
		w.Header().Set("Connection", "keep-alive")
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			data, err := json.Marshal(reg.Snapshot())
			if err != nil {
				return
			}
			if _, err := fmt.Fprintf(w, "data: %s\n\n", data); err != nil {
				return
			}
			flusher.Flush()
			select {
			case <-r.Context().Done():
				return
			case <-tick.C:
			}
		}
	})
}

// MetricsMux is the standard metrics surface: the format-dispatching
// snapshot handler at /metrics (and /, for curl convenience) plus the SSE
// stream at /metrics/watch. Mount it on a dedicated port via ServeMetrics
// or merge the routes into a service mux.
func MetricsMux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	h := MetricsHandler(reg)
	mux.Handle("/metrics", h)
	mux.Handle("/metrics/watch", WatchHandler(reg))
	mux.Handle("/", h)
	return mux
}

// MountPprof attaches the standard net/http/pprof handlers under /debug/
// pprof/ on mux — the runtime introspection surface (goroutine dumps, CPU
// and heap profiles, mutex/block contention) for a live gammad or metrics
// endpoint. Callers gate the mount behind a flag: the profiles expose
// internals and cost CPU while sampling, so they are opt-in, never default.
func MountPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// ServeMetrics starts an HTTP endpoint serving live registry snapshots at
// /metrics (JSON by default, Prometheus text exposition with ?format=prom)
// and an SSE stream at /metrics/watch, on addr (e.g. "localhost:6060" or
// ":0" for an ephemeral port). It returns the bound address and a close
// function; the server runs until closed.
func ServeMetrics(addr string, reg *Registry) (string, func(), error) {
	return ServeMux(addr, MetricsMux(reg))
}

// ServeMux serves an already-assembled mux the way ServeMetrics does — the
// entry point for callers that first extend the standard metrics mux, e.g.
// with MountPprof behind a flag.
func ServeMux(addr string, mux *http.ServeMux) (string, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("telemetry: metrics listener: %w", err)
	}
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln)
	return ln.Addr().String(), func() { srv.Close() }, nil
}
