package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestTrackGetOrCreate(t *testing.T) {
	r := New(0)
	a := r.Track("gamma/w0")
	b := r.Track("gamma/w0")
	if a != b {
		t.Fatal("same name must return the same track")
	}
	if c := r.Track("gamma/w1"); c == a {
		t.Fatal("different names must not alias")
	}
	if a.Name() != "gamma/w0" {
		t.Fatalf("name = %q", a.Name())
	}
}

func TestRingWrapKeepsNewestAndCountsDropped(t *testing.T) {
	r := New(4)
	tr := r.Track("t")
	for i := 0; i < 10; i++ {
		tr.Instant(KindProbe, "p", int64(i), 0)
	}
	snap := r.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("tracks = %d", len(snap))
	}
	evs := snap[0].Events
	if len(evs) != 4 {
		t.Fatalf("buffered = %d, want 4", len(evs))
	}
	// The ring keeps the most recent cap events, oldest first.
	for i, e := range evs {
		if want := int64(6 + i); e.Arg != want {
			t.Errorf("event %d: arg = %d, want %d", i, e.Arg, want)
		}
	}
	if snap[0].Dropped != 6 {
		t.Errorf("dropped = %d, want 6", snap[0].Dropped)
	}
}

func TestMetricsOnlyRecorderBuffersNothing(t *testing.T) {
	r := New(-1)
	tr := r.Track("t")
	tr.Instant(KindFiring, "f", 1, 0)
	tr.Span(KindFiring, "f", time.Now(), 1, 0)
	snap := r.Snapshot()
	if len(snap) != 1 || len(snap[0].Events) != 0 {
		t.Fatalf("metrics-only recorder buffered events: %+v", snap)
	}
	if snap[0].Dropped != 2 {
		t.Errorf("dropped = %d, want 2", snap[0].Dropped)
	}
	// The registry still works.
	r.Metrics.Counter("x").Inc()
	if got := r.Metrics.CounterValue("x"); got != 1 {
		t.Errorf("counter = %d", got)
	}
}

func TestSnapshotSortsByTS(t *testing.T) {
	r := New(0)
	tr := r.Track("t")
	// A span stamped with a start before an already-recorded instant: the
	// append order is instant-then-span, the TS order is span-then-instant.
	start := time.Now()
	time.Sleep(time.Millisecond)
	tr.Instant(KindGather, "g", 0, 0)
	tr.Span(KindRound, "round", start, 1, 1)
	evs := r.Snapshot()[0].Events
	if len(evs) != 2 {
		t.Fatalf("events = %d", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].TS < evs[i-1].TS {
			t.Fatalf("snapshot out of TS order: %+v", evs)
		}
	}
	if evs[0].Kind != KindRound {
		t.Errorf("span should sort first (earlier TS), got %v", evs[0].Kind)
	}
	if evs[0].Dur <= 0 {
		t.Errorf("span dur = %d, want > 0", evs[0].Dur)
	}
}

func TestCounterGaugeHistogram(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d", c.Value())
	}

	var g Gauge
	g.Set(7)
	g.Set(3)
	if g.Value() != 3 || g.Max() != 7 {
		t.Errorf("gauge = %d max %d, want 3 max 7", g.Value(), g.Max())
	}

	var h Histogram
	for i := int64(1); i <= 100; i++ {
		h.Observe(i)
	}
	h.Observe(-5) // clamps to 0
	if h.Count() != 101 {
		t.Errorf("count = %d", h.Count())
	}
	if h.Sum() != 5050 {
		t.Errorf("sum = %d", h.Sum())
	}
	if h.Max() != 100 {
		t.Errorf("max = %d", h.Max())
	}
	if m := h.Mean(); m < 49 || m > 51 {
		t.Errorf("mean = %f", m)
	}
	// Power-of-two buckets: quantiles are exact only to a factor of 2.
	if q := h.Quantile(0.5); q < 25 || q > 100 {
		t.Errorf("p50 = %d", q)
	}
	// Factor-of-2 buckets: the top quantile lands inside max's bucket.
	if q := h.Quantile(1); q < 64 || q > 127 {
		t.Errorf("p100 = %d, want within max's power-of-two bucket", q)
	}
	var empty Histogram
	if empty.Mean() != 0 || empty.Quantile(0.5) != 0 {
		t.Error("empty histogram must report zeros")
	}
}

func TestRegistrySnapshotAndTable(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a.count").Add(3)
	reg.Gauge("a.depth").Set(9)
	reg.Histogram("a.lat").Observe(100)
	s := reg.Snapshot()
	if s.Counters["a.count"] != 3 {
		t.Errorf("snapshot counter = %d", s.Counters["a.count"])
	}
	if s.Gauges["a.depth"].Value != 9 || s.Gauges["a.depth"].Max != 9 {
		t.Errorf("snapshot gauge = %+v", s.Gauges["a.depth"])
	}
	if s.Histograms["a.lat"].Count != 1 {
		t.Errorf("snapshot hist = %+v", s.Histograms["a.lat"])
	}
	if _, err := json.Marshal(s); err != nil {
		t.Fatalf("snapshot not marshalable: %v", err)
	}
	out := reg.Table().String()
	for _, want := range []string{"a.count", "a.depth", "a.lat", "counter", "gauge", "histogram"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	if reg.CounterValue("never.created") != 0 {
		t.Error("missing counter must read 0")
	}
}

type recTracer struct{ names []string }

func (r *recTracer) RecordFiring(name string, consumed, produced []string) {
	r.names = append(r.names, name)
}

func TestMultiTracer(t *testing.T) {
	if tr := MultiTracer(); tr != nil {
		t.Error("no tracers must collapse to nil")
	}
	if tr := MultiTracer(nil, nil); tr != nil {
		t.Error("all-nil must collapse to nil")
	}
	a := &recTracer{}
	if tr := MultiTracer(nil, a); tr != Tracer(a) {
		t.Error("single live tracer must be unwrapped")
	}
	c, d := &recTracer{}, &recTracer{}
	tr := MultiTracer(c, nil, d)
	tr.RecordFiring("R1", nil, nil)
	tr.RecordFiring("R2", nil, nil)
	if len(c.names) != 2 || len(d.names) != 2 {
		t.Errorf("fan-out: c=%v d=%v", c.names, d.names)
	}
}

func TestParseFormat(t *testing.T) {
	for _, ok := range []string{"perfetto", "dot", "jsonl", "schedule"} {
		if f, err := ParseFormat(ok); err != nil || string(f) != ok {
			t.Errorf("ParseFormat(%q) = %q, %v", ok, f, err)
		}
	}
	if _, err := ParseFormat("svg"); err == nil {
		t.Error("unknown format must error")
	}
}

// TestMountPprof pins the opt-in introspection surface: a bare metrics mux
// serves 404 under /debug/pprof/, a mounted one serves the index and the
// goroutine profile.
func TestMountPprof(t *testing.T) {
	reg := NewRegistry()
	bare := httptest.NewServer(MetricsMux(reg))
	defer bare.Close()
	// The bare mux's catch-all answers any path with the metrics snapshot, so
	// the gate check is on the payload: no profile may come back unmounted.
	res, err := http.Get(bare.URL + "/debug/pprof/goroutine?debug=1")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if bytes.Contains(body, []byte("goroutine profile")) {
		t.Error("unmounted mux serves pprof — the flag gate is broken")
	}

	mux := MetricsMux(reg)
	MountPprof(mux)
	ts := httptest.NewServer(mux)
	defer ts.Close()
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/goroutine?debug=1"} {
		res, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(res.Body)
		res.Body.Close()
		if res.StatusCode != http.StatusOK || len(body) == 0 {
			t.Errorf("GET %s: status %d, %d bytes", path, res.StatusCode, len(body))
		}
	}
	// The metrics surface still serves beside it.
	if res, err := http.Get(ts.URL + "/metrics"); err != nil || res.StatusCode != http.StatusOK {
		t.Errorf("metrics beside pprof: %v, %v", res, err)
	} else {
		res.Body.Close()
	}
}

// populate records a representative mix of events on two tracks.
func populate(r *Recorder) {
	w0 := r.Track("gamma/w0")
	start := time.Now()
	w0.Instant(KindConflict, "R1", 0, 0)
	w0.Span(KindFiring, "R1", start, 5, 1)
	w0.Span(KindFiring, "R2", time.Now(), 4, 0)
	cl := r.Track("cluster")
	cl.Span(KindRound, "round", start, 3, 2)
	cl.Instant(KindGather, "gather", 4, 0)
	cl.Instant(KindAdopt, "adopt", 2, 0)
	cl.Instant(KindMigrate, "migrate", 7, 0)
}

// TestPerfettoSchema pins the trace-event contract Perfetto relies on: valid
// JSON, a traceEvents array, pid/tid/ph on every event, dur on "X" spans, a
// thread_name metadata record per track, and nondecreasing ts per tid.
func TestPerfettoSchema(t *testing.T) {
	r := New(0)
	populate(r)
	var buf bytes.Buffer
	if err := WritePerfetto(&buf, r); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no events exported")
	}
	threadNames := map[float64]string{}
	lastTS := map[float64]float64{}
	for i, e := range doc.TraceEvents {
		ph, _ := e["ph"].(string)
		if ph == "" {
			t.Fatalf("event %d: missing ph: %v", i, e)
		}
		pid, ok := e["pid"].(float64)
		if !ok || pid != 1 {
			t.Fatalf("event %d: pid = %v, want 1", i, e["pid"])
		}
		tid, ok := e["tid"].(float64)
		if !ok {
			t.Fatalf("event %d: missing tid: %v", i, e)
		}
		switch ph {
		case "M":
			args := e["args"].(map[string]any)
			threadNames[tid], _ = args["name"].(string)
			continue
		case "X":
			if _, ok := e["dur"].(float64); !ok {
				t.Errorf("event %d: span without dur: %v", i, e)
			}
		case "i", "C":
		default:
			t.Errorf("event %d: unexpected ph %q", i, ph)
		}
		ts, ok := e["ts"].(float64)
		if !ok {
			t.Fatalf("event %d: missing ts: %v", i, e)
		}
		if prev, seen := lastTS[tid]; seen && ts < prev {
			t.Errorf("event %d: tid %v ts %v < previous %v", i, tid, ts, prev)
		}
		lastTS[tid] = ts
	}
	names := map[string]bool{}
	for _, n := range threadNames {
		names[n] = true
	}
	if !names["gamma/w0"] || !names["cluster"] {
		t.Errorf("thread names = %v, want gamma/w0 and cluster", threadNames)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	r := New(2) // force a drop so the summary line appears
	populate(r)
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, r); err != nil {
		t.Fatal(err)
	}
	lines, dropped := 0, 0
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var le struct {
			Track string `json:"track"`
			Kind  string `json:"kind"`
			TSNS  int64  `json:"ts_ns"`
			Arg   int64  `json:"arg"`
		}
		if err := json.Unmarshal(sc.Bytes(), &le); err != nil {
			t.Fatalf("line %d not JSON: %v\n%s", lines, err, sc.Text())
		}
		if le.Track == "" || le.Kind == "" {
			t.Fatalf("line %d missing track/kind: %s", lines, sc.Text())
		}
		if le.Kind == "dropped" {
			dropped++
			if le.Arg <= 0 {
				t.Errorf("dropped summary without count: %s", sc.Text())
			}
		}
		lines++
	}
	if lines == 0 {
		t.Fatal("no lines exported")
	}
	if dropped != 2 {
		t.Errorf("dropped summaries = %d, want 2 (both tracks overflowed)", dropped)
	}
}

func TestServeMetrics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("gamma.steps").Add(42)
	addr, closeSrv, err := ServeMetrics("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer closeSrv()
	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", addr))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	var s Snapshot
	if err := json.Unmarshal(body, &s); err != nil {
		t.Fatalf("endpoint payload not a Snapshot: %v\n%s", err, body)
	}
	if s.Counters["gamma.steps"] != 42 {
		t.Errorf("served counter = %d, want 42", s.Counters["gamma.steps"])
	}
}

func TestProvenanceThreading(t *testing.T) {
	p := NewProvenance()
	// x and y consumed from the inputs, z produced then consumed, out left.
	p.RecordFiring("R1", []string{"x", "y"}, []string{"z"})
	p.RecordFiring("R2", []string{"z"}, []string{"out"})
	if p.Firings() != 2 {
		t.Fatalf("firings = %d", p.Firings())
	}
	var buf bytes.Buffer
	if err := p.WriteDOT(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`i0 [shape=box`, `label="x"`, `label="y"`,
		`f0 [shape=ellipse, label="R1"]`, `f1 [shape=ellipse, label="R2"]`,
		`o0 [shape=box`, `label="out"`,
		"i0 -> f0;", "i1 -> f0;", "f0 -> f1;", "f1 -> o0;",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q:\n%s", want, out)
		}
	}
}

func TestProvenanceDuplicateKeysStack(t *testing.T) {
	p := NewProvenance()
	// Two producers of the same key: consumption unwinds most recent first,
	// mirroring token-queue semantics.
	p.RecordFiring("A", nil, []string{"k"})
	p.RecordFiring("B", nil, []string{"k"})
	p.RecordFiring("C", []string{"k"}, nil)
	var buf bytes.Buffer
	if err := p.WriteDOT(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "f1 -> f2;") {
		t.Errorf("consumer must attach to the most recent producer:\n%s", out)
	}
	if strings.Contains(out, "f0 -> f2;") {
		t.Errorf("older producer must stay live:\n%s", out)
	}
}

func TestProvenanceLabeler(t *testing.T) {
	p := NewProvenance()
	p.Labeler = func(key string) string { return "<" + key + ">" }
	p.RecordFiring("R", []string{"a"}, []string{"b"})
	var buf bytes.Buffer
	if err := p.WriteDOT(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `label="<a>"`) || !strings.Contains(out, `label="<b>"`) {
		t.Errorf("labeler not applied:\n%s", out)
	}
}
