package telemetry_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/telemetry"
)

// promFixture builds the fixed registry snapshot the Prometheus golden pins:
// deterministic values across every instrument kind and a tenant dimension.
func promFixture() *telemetry.Registry {
	reg := telemetry.NewRegistry()
	reg.Counter("gamma.steps").Add(42)
	reg.Counter("service.submitted").Add(7)
	reg.Gauge("service.pending").Set(3)
	reg.Gauge("service.pending").Set(2)
	h := reg.Histogram("service.run_wall_ns")
	for _, v := range []int64{0, 1, 5, 900, 1023, 4096} {
		h.Observe(v)
	}
	alice := reg.Labeled("tenant", "alice")
	alice.Counter("service.submitted").Add(4)
	alice.Histogram("service.run_wall_ns").Observe(900)
	bob := reg.Labeled("tenant", "bob")
	bob.Counter("service.submitted").Add(3)
	return reg
}

// TestPrometheusGolden pins the text exposition of a fixed registry byte for
// byte, like the Fig. 1 provenance DOT golden: scrape configs parse this
// surface, so it must never drift by accident. Regenerate deliberately with
// -update.
func TestPrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := telemetry.WritePrometheus(&buf, promFixture()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "registry_prom.txt")
	if *updateGolden {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("Prometheus exposition drifted from golden %s.\n--- got ---\n%s\n--- want ---\n%s\n(run with -update to regenerate)",
			path, buf.Bytes(), want)
	}
}
