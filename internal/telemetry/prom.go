package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// The Prometheus exporter renders a Registry in the text exposition format
// (version 0.0.4): counters and gauges as single samples, the power-of-two
// histograms as classic cumulative `_bucket{le="..."}` series with `_sum`
// and `_count`, and one label dimension's children as `{dim="val"}` labeled
// samples next to the unlabeled global series. Output is deterministic
// (instruments and labels sorted by name) so a fixed registry snapshot can
// be golden-pinned byte for byte.
//
// Instrument names keep the registry's dotted convention with dots mapped to
// underscores ("gamma.steps" → "gamma_steps"); histogram values stay in the
// registry's unit (nanoseconds by convention, which the `_ns` suffix of the
// existing names already declares).

// promName sanitizes a registry instrument name into a Prometheus metric
// name: [a-zA-Z0-9_:] only, leading digit escaped.
func promName(name string) string {
	var b strings.Builder
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if i == 0 && r >= '0' && r <= '9' {
			b.WriteByte('_')
			b.WriteRune(r)
			continue
		}
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promLabel renders one {dim="val"} label pair, escaping per the exposition
// format; empty dim renders no labels.
func promLabel(dim, val string) string {
	if dim == "" {
		return ""
	}
	esc := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`).Replace(val)
	return fmt.Sprintf(`{%s=%q}`, promName(dim), esc)
}

// promSeries is one labeled instance of an instrument: the global series has
// an empty dim.
type promSeries struct {
	dim, val string
	reg      *Registry
}

// promSeriesOf lists the global registry plus every child of every label
// dimension, in deterministic order.
func promSeriesOf(r *Registry) []promSeries {
	series := []promSeries{{reg: r}}
	r.mu.Lock()
	dims := make([]string, 0, len(r.children))
	for dim := range r.children {
		dims = append(dims, dim)
	}
	sort.Strings(dims)
	for _, dim := range dims {
		vals := make([]string, 0, len(r.children[dim]))
		for v := range r.children[dim] {
			vals = append(vals, v)
		}
		sort.Strings(vals)
		for _, v := range vals {
			series = append(series, promSeries{dim: dim, val: v, reg: r.children[dim][v]})
		}
	}
	r.mu.Unlock()
	return series
}

// histLE is the inclusive upper bound of power-of-two bucket i (values v
// with bits.Len64(v) == i): 0 for bucket 0, 2^i - 1 above.
func histLE(i int) int64 {
	if i == 0 {
		return 0
	}
	return int64(1)<<uint(i) - 1
}

// WritePrometheus renders the registry (and one level of labeled children)
// in the Prometheus text exposition format.
func WritePrometheus(w io.Writer, r *Registry) error {
	series := promSeriesOf(r)
	var b strings.Builder

	union := func(pick func(*Registry) []string) []string {
		seen := make(map[string]bool)
		var names []string
		for _, s := range series {
			for _, n := range pick(s.reg) {
				if !seen[n] {
					seen[n] = true
					names = append(names, n)
				}
			}
		}
		sort.Strings(names)
		return names
	}
	counterNames := union(func(reg *Registry) []string {
		reg.mu.Lock()
		defer reg.mu.Unlock()
		return sortedKeys(reg.counts)
	})
	gaugeNames := union(func(reg *Registry) []string {
		reg.mu.Lock()
		defer reg.mu.Unlock()
		return sortedKeys(reg.gauges)
	})
	histNames := union(func(reg *Registry) []string {
		reg.mu.Lock()
		defer reg.mu.Unlock()
		return sortedKeys(reg.hists)
	})

	for _, name := range counterNames {
		pn := promName(name)
		fmt.Fprintf(&b, "# TYPE %s counter\n", pn)
		for _, s := range series {
			s.reg.mu.Lock()
			c, ok := s.reg.counts[name]
			s.reg.mu.Unlock()
			if !ok {
				continue
			}
			fmt.Fprintf(&b, "%s%s %d\n", pn, promLabel(s.dim, s.val), c.Value())
		}
	}
	for _, name := range gaugeNames {
		pn := promName(name)
		fmt.Fprintf(&b, "# TYPE %s gauge\n", pn)
		fmt.Fprintf(&b, "# TYPE %s_max gauge\n", pn)
		for _, s := range series {
			s.reg.mu.Lock()
			g, ok := s.reg.gauges[name]
			s.reg.mu.Unlock()
			if !ok {
				continue
			}
			lbl := promLabel(s.dim, s.val)
			fmt.Fprintf(&b, "%s%s %d\n", pn, lbl, g.Value())
			fmt.Fprintf(&b, "%s_max%s %d\n", pn, lbl, g.Max())
		}
	}
	for _, name := range histNames {
		pn := promName(name)
		fmt.Fprintf(&b, "# TYPE %s histogram\n", pn)
		for _, s := range series {
			s.reg.mu.Lock()
			h, ok := s.reg.hists[name]
			s.reg.mu.Unlock()
			if !ok {
				continue
			}
			writePromHistogram(&b, pn, s.dim, s.val, h)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writePromHistogram renders one histogram instance: cumulative buckets up
// to the highest non-empty band, then +Inf, _sum and _count.
func writePromHistogram(b *strings.Builder, pn, dim, val string, h *Histogram) {
	top := -1
	for i := 0; i < histBuckets; i++ {
		if h.buckets[i].Load() > 0 {
			top = i
		}
	}
	cum := int64(0)
	for i := 0; i <= top; i++ {
		cum += h.buckets[i].Load()
		fmt.Fprintf(b, "%s_bucket%s %d\n", pn, bucketLabel(dim, val, fmt.Sprintf("%d", histLE(i))), cum)
	}
	fmt.Fprintf(b, "%s_bucket%s %d\n", pn, bucketLabel(dim, val, "+Inf"), h.Count())
	lbl := promLabel(dim, val)
	fmt.Fprintf(b, "%s_sum%s %d\n", pn, lbl, h.Sum())
	fmt.Fprintf(b, "%s_count%s %d\n", pn, lbl, h.Count())
}

// bucketLabel merges the le label with an optional dimension label.
func bucketLabel(dim, val, le string) string {
	if dim == "" {
		return fmt.Sprintf(`{le=%q}`, le)
	}
	esc := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`).Replace(val)
	return fmt.Sprintf(`{%s=%q,le=%q}`, promName(dim), esc, le)
}
