// Package telemetry is the runtime observability layer shared by the gamma,
// dataflow and dist runtimes: a low-overhead event recorder (per-worker ring
// buffers of timestamped events), a registry of atomic counters, gauges and
// latency histograms, and exporters — Chrome trace-event JSON (loadable in
// Perfetto, one track per worker/PE), a JSONL event stream, and a provenance
// DOT of the firing DAG (provenance.go).
//
// The design center is the disabled fast path: every runtime carries a
// *Recorder in its Options, and a nil recorder costs exactly one
// pointer-is-nil branch on the hot paths (the runtimes resolve a per-worker
// sink once per run and guard each record with `if sink == nil`). When
// enabled, the hot commit path records a single span event per committed
// firing — the firing latency, with the multiset cardinality and scheduler
// wakeup count folded into the event payload — while high-frequency
// occurrences (probes, memo hits) only bump atomic counters unless Verbose
// is set. Rare occurrences (commit conflicts, retries, dist rounds,
// migrations, dead-node adoptions) are individual events.
//
// Concurrency contract: a Track has a single writer at a time (each worker
// or PE owns its track; sequential phases may reuse a track across rounds
// when ordered by happens-before, as dist's round barrier does). The
// Registry is safe for arbitrary concurrent use. Snapshots of the event
// buffers must be taken after the traced run returns; Registry snapshots may
// be taken live (the -metrics-addr HTTP endpoint does).
package telemetry

import (
	"sort"
	"sync"
	"time"

	"repro/internal/symtab"
)

// EventKind classifies an event. The vocabulary is shared across runtimes;
// DESIGN.md §11 documents which runtime emits what.
type EventKind uint8

const (
	// KindFiring is a committed reaction application (gamma: the ApplyDelta
	// commit) or vertex activation (dataflow). A span: Dur is the latency
	// from probe/operand-match start to commit. Arg carries the multiset
	// cardinality (gamma) or pending-token depth (dataflow) after the
	// commit; Arg2 the number of scheduler wakeups the commit caused.
	KindFiring EventKind = iota
	// KindProbe is one match attempt. Only recorded as an event when
	// Recorder.Verbose is set (probes outnumber firings by the probe→match
	// ratio); always counted in the registry.
	KindProbe
	// KindConflict is a failed optimistic commit (parallel gamma).
	KindConflict
	// KindRetry is a conflict rematch attempt (parallel gamma).
	KindRetry
	// KindRound is one dist react-diffuse round (a span on the coordinator
	// track; Arg = firings in the round, Arg2 = live nodes).
	KindRound
	// KindMigrate is a batch of element migrations (Arg = elements moved).
	KindMigrate
	// KindGather is a dist global stability check on the union multiset.
	KindGather
	// KindAdopt is a dead-node shard adoption (Arg = the dead node).
	KindAdopt
)

func (k EventKind) String() string {
	switch k {
	case KindFiring:
		return "firing"
	case KindProbe:
		return "probe"
	case KindConflict:
		return "conflict"
	case KindRetry:
		return "retry"
	case KindRound:
		return "round"
	case KindMigrate:
		return "migrate"
	case KindGather:
		return "gather"
	case KindAdopt:
		return "adopt"
	}
	return "unknown"
}

// Event is one recorded occurrence. TS is nanoseconds since the recorder was
// created; spans additionally carry Dur. Name is the reaction/vertex/phase
// name. Arg and Arg2 are kind-specific payloads (see EventKind).
type Event struct {
	TS   int64
	Dur  int64
	Arg  int64
	Arg2 int64
	Name string
	Kind EventKind
}

// ringEvent is the in-buffer form of an Event: the name is interned to a
// symtab.Sym so the struct is pointer-free. That keeps the ring out of the
// garbage collector entirely — the buffer lives in no-scan memory, appends
// need no write barrier, and a multi-megabyte ring adds zero marking work to
// the traced run (the dominant enabled-recorder cost before interning).
// Snapshot resolves names back to strings.
type ringEvent struct {
	ts   int64
	dur  int64
	arg  int64
	arg2 int64
	name symtab.Sym
	kind EventKind
}

// DefaultEventCap is the per-track ring capacity when New is given 0.
const DefaultEventCap = 1 << 14

// ringInitial is the first allocation of a track's event ring; rings double
// from here toward the recorder's cap as events arrive.
const ringInitial = 64

// Recorder owns the event tracks and the metrics registry of one observed
// run (or several, when reused across dist rounds).
type Recorder struct {
	start time.Time
	cap   int
	// Verbose additionally records per-probe instant events. Off by default:
	// probe events dominate the timeline volume and the registry's probe
	// counter already carries the aggregate.
	Verbose bool
	// Metrics is the recorder's registry; never nil.
	Metrics *Registry

	// cDropped is the registry's telemetry.dropped_events counter: every
	// event the rings overwrote or discarded bumps it, so silent trace loss
	// is visible wherever the registry is (ServeMetrics, the -metrics table,
	// the service stats endpoint) instead of staying a private field.
	cDropped *Counter

	mu     sync.Mutex
	tracks []*Track
	byName map[string]*Track
}

// New returns a Recorder whose tracks hold up to eventCap events each
// (oldest overwritten first). eventCap 0 selects DefaultEventCap; negative
// selects a metrics-only recorder that buffers no events at all.
func New(eventCap int) *Recorder {
	switch {
	case eventCap == 0:
		eventCap = DefaultEventCap
	case eventCap < 0:
		eventCap = 0
	}
	r := &Recorder{
		start:   time.Now(),
		cap:     eventCap,
		Metrics: NewRegistry(),
		byName:  make(map[string]*Track),
	}
	r.cDropped = r.Metrics.Counter("telemetry.dropped_events")
	return r
}

// Dropped totals the events every track overwrote or discarded — the same
// number the telemetry.dropped_events registry counter carries.
func (r *Recorder) Dropped() int64 { return r.cDropped.Value() }

// Track returns the track with the given name, creating it on first use.
// Names follow the "<runtime-or-node>/w<worker>" convention; each track
// renders as one Perfetto thread. The returned track must have a single
// writer at a time.
func (r *Recorder) Track(name string) *Track {
	r.mu.Lock()
	defer r.mu.Unlock()
	if t, ok := r.byName[name]; ok {
		return t
	}
	t := &Track{name: name, rec: r}
	r.tracks = append(r.tracks, t)
	r.byName[name] = t
	return t
}

// Since returns the recorder-relative timestamp of t in nanoseconds.
func (r *Recorder) Since(t time.Time) int64 { return t.Sub(r.start).Nanoseconds() }

// now is the current recorder-relative timestamp.
func (r *Recorder) now() int64 { return time.Since(r.start).Nanoseconds() }

// Track is one worker/PE event ring. Appends are lock-free single-writer;
// the buffer keeps the most recent cap events and counts what it dropped.
type Track struct {
	name    string
	rec     *Recorder
	buf     []ringEvent
	head    int   // next write position
	total   int64 // events ever appended
	dropped int64 // events overwritten or discarded (metrics-only recorder)
}

// Name returns the track's name.
func (t *Track) Name() string { return t.name }

func (t *Track) append(e ringEvent) {
	if t.rec.cap == 0 {
		t.dropped++
		t.rec.cDropped.Inc()
		return
	}
	if t.total >= int64(len(t.buf)) && len(t.buf) < t.rec.cap {
		// The ring starts empty and doubles toward cap as events arrive, so a
		// short traced run costs a short buffer — eager full-cap rings turned
		// every 3-step service run into a quarter-megabyte allocation (e23).
		// Before the first wrap head == total, so the old buffer is already
		// oldest-first and the next write slot is its former length.
		n := 2 * len(t.buf)
		if n == 0 {
			n = ringInitial
		}
		if n > t.rec.cap {
			n = t.rec.cap
		}
		buf := make([]ringEvent, n)
		t.head = copy(buf, t.buf)
		t.buf = buf
	}
	if t.total >= int64(len(t.buf)) {
		t.dropped++
		t.rec.cDropped.Inc()
	}
	t.buf[t.head] = e
	t.head++
	if t.head == len(t.buf) {
		t.head = 0
	}
	t.total++
}

// Instant records a point event at the current time.
func (t *Track) Instant(kind EventKind, name string, arg, arg2 int64) {
	t.append(ringEvent{ts: t.rec.now(), kind: kind, name: symtab.Intern(name), arg: arg, arg2: arg2})
}

// Span records an event that started at start and ends now.
func (t *Track) Span(kind EventKind, name string, start time.Time, arg, arg2 int64) {
	ts := t.rec.Since(start)
	t.append(ringEvent{ts: ts, dur: t.rec.now() - ts, kind: kind, name: symtab.Intern(name), arg: arg, arg2: arg2})
}

// SpanDur records a span that started at start and lasted dur. Callers that
// already measured the latency (the gamma firing path feeds the same reading
// to its histogram) use this to avoid a second clock read.
func (t *Track) SpanDur(kind EventKind, name string, start time.Time, dur time.Duration, arg, arg2 int64) {
	t.append(ringEvent{ts: t.rec.Since(start), dur: dur.Nanoseconds(), kind: kind, name: symtab.Intern(name), arg: arg, arg2: arg2})
}

// TrackEvents is one track's snapshot: its buffered events in chronological
// order and the count of events that no longer fit the ring.
type TrackEvents struct {
	Name    string
	Events  []Event
	Dropped int64
}

// Snapshot copies every track's buffered events, oldest first. Call it after
// the traced run has returned (tracks are single-writer, not locked).
func (r *Recorder) Snapshot() []TrackEvents {
	r.mu.Lock()
	tracks := make([]*Track, len(r.tracks))
	copy(tracks, r.tracks)
	r.mu.Unlock()
	out := make([]TrackEvents, 0, len(tracks))
	for _, t := range tracks {
		n := t.total
		if n > int64(len(t.buf)) {
			n = int64(len(t.buf))
		}
		evs := make([]Event, 0, n)
		if n > 0 {
			// Oldest-first: the ring wraps at head.
			start := 0
			if t.total > int64(len(t.buf)) {
				start = t.head
			}
			for i := int64(0); i < n; i++ {
				e := t.buf[(start+int(i))%len(t.buf)]
				evs = append(evs, Event{
					TS: e.ts, Dur: e.dur, Arg: e.arg, Arg2: e.arg2,
					Name: symtab.Name(e.name), Kind: e.kind,
				})
			}
		}
		// Spans are appended at their end time but stamped with their start
		// time, so an instant recorded mid-span can precede it in the buffer
		// while following it in TS order. Restore per-track TS monotonicity
		// for the exporters.
		sort.SliceStable(evs, func(i, j int) bool { return evs[i].TS < evs[j].TS })
		out = append(out, TrackEvents{Name: t.name, Events: evs, Dropped: t.dropped})
	}
	return out
}

// Tracer is the structural firing-trace interface shared by gamma.Tracer and
// dataflow.Tracer; Provenance implements it, and MultiTracer fans one firing
// out to several implementations.
type Tracer interface {
	RecordFiring(name string, consumed, produced []string)
}

type multiTracer []Tracer

func (m multiTracer) RecordFiring(name string, consumed, produced []string) {
	for _, t := range m {
		t.RecordFiring(name, consumed, produced)
	}
}

// MultiTracer combines tracers, dropping nils. It returns nil when none
// remain and the single tracer unwrapped when one does, so the result can be
// assigned directly to an Options.Tracer field.
func MultiTracer(ts ...Tracer) Tracer {
	var live []Tracer
	for _, t := range ts {
		if t != nil {
			live = append(live, t)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return multiTracer(live)
}
