package telemetry_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/gamma"
	"repro/internal/gammalang"
	"repro/internal/multiset"
	"repro/internal/paper"
	"repro/internal/telemetry"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from the current output")

// TestFig1ProvenanceGolden is the paper's §III-C equivalence as a test: trace
// the Example 1 / Fig. 1 Gamma run, export its provenance DAG, and hold the
// DOT byte-for-byte to the golden rendering of the paper's dataflow graph —
// four operand boxes into the adder and multiplier, both into the subtractor,
// one result box.
func TestFig1ProvenanceGolden(t *testing.T) {
	prog, err := gammalang.ParseProgram("fig1", paper.Example1GammaListing)
	if err != nil {
		t.Fatal(err)
	}
	init, err := multiset.Parse(paper.Example1InitialMultiset)
	if err != nil {
		t.Fatal(err)
	}
	prov := telemetry.NewProvenance()
	prov.Labeler = multiset.PrettyKey
	st, err := gamma.Run(prog, init, gamma.Options{Tracer: prov})
	if err != nil {
		t.Fatal(err)
	}
	if st.Steps != 3 || prov.Firings() != 3 {
		t.Fatalf("steps = %d, firings = %d, want 3 and 3", st.Steps, prov.Firings())
	}

	var buf bytes.Buffer
	if err := prov.WriteDOT(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "fig1_provenance.dot")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("provenance DOT drifted from the paper's Fig. 1 graph.\n--- got ---\n%s\n--- want ---\n%s\n(run with -update to regenerate)", buf.Bytes(), want)
	}
}
