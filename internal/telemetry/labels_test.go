package telemetry

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestLabeledRollupExact pins the label-registry invariant: events accounted
// into the global instrument and exactly one child per dimension sum to the
// global exactly, and a missed child write is caught by CheckRollup.
func TestLabeledRollupExact(t *testing.T) {
	reg := NewRegistry()
	record := func(tenant string, steps int64, wallNS int64) {
		reg.Counter("svc.steps").Add(steps)
		reg.Histogram("svc.wall_ns").Observe(wallNS)
		child := reg.Labeled("tenant", tenant)
		child.Counter("svc.steps").Add(steps)
		child.Histogram("svc.wall_ns").Observe(wallNS)
	}
	record("alice", 10, 1500)
	record("alice", 5, 90)
	record("bob", 7, 64)
	if err := reg.CheckRollup("tenant"); err != nil {
		t.Fatalf("CheckRollup on a consistent registry: %v", err)
	}
	if got := reg.Labeled("tenant", "alice").CounterValue("svc.steps"); got != 15 {
		t.Errorf("alice steps = %d, want 15", got)
	}

	// A write that skips the global side must surface as a rollup failure.
	reg.Labeled("tenant", "bob").Counter("svc.steps").Inc()
	if err := reg.CheckRollup("tenant"); err == nil {
		t.Fatal("CheckRollup missed a child/global divergence")
	}
}

// TestLabeledRollupConcurrent hammers one registry from many goroutines
// (each writing global + its tenant child + its engine child) and requires
// both dimensions to roll up exactly — the -race version of the invariant.
func TestLabeledRollupConcurrent(t *testing.T) {
	reg := NewRegistry()
	engines := []string{"seq", "parallel"}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tenant := fmt.Sprintf("t%d", g%3)
			engine := engines[g%2]
			tc := reg.Labeled("tenant", tenant)
			ec := reg.Labeled("engine", engine)
			for i := 0; i < 500; i++ {
				reg.Counter("svc.done").Inc()
				tc.Counter("svc.done").Inc()
				ec.Counter("svc.done").Inc()
				reg.Histogram("svc.run_ns").Observe(int64(i))
				tc.Histogram("svc.run_ns").Observe(int64(i))
				ec.Histogram("svc.run_ns").Observe(int64(i))
			}
		}(g)
	}
	wg.Wait()
	for _, dim := range []string{"tenant", "engine"} {
		if err := reg.CheckRollup(dim); err != nil {
			t.Errorf("rollup %s: %v", dim, err)
		}
	}
	if got := reg.CounterValue("svc.done"); got != 8*500 {
		t.Errorf("global done = %d, want %d", got, 8*500)
	}
}

// TestSnapshotIncludesChildren checks the additive Children field renders
// and survives a JSON round trip.
func TestSnapshotIncludesChildren(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c").Add(3)
	reg.Labeled("tenant", "alice").Counter("c").Add(3)
	data, err := json.Marshal(reg.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		t.Fatal(err)
	}
	if s.Children["tenant"]["alice"].Counters["c"] != 3 {
		t.Fatalf("children lost in snapshot JSON: %s", data)
	}

	// A label-free registry must not grow a children key (additive contract).
	plain, _ := json.Marshal(NewRegistry().Snapshot())
	if strings.Contains(string(plain), "children") {
		t.Errorf("label-free snapshot leaks a children field: %s", plain)
	}
}

// TestPrometheusHistogramCumulative checks the bucket series is cumulative
// and capped by +Inf == count, independent of the golden.
func TestPrometheusHistogramCumulative(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat_ns")
	for _, v := range []int64{1, 2, 3, 1000} {
		h.Observe(v)
	}
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, reg); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`lat_ns_bucket{le="1"} 1`,    // v=1
		`lat_ns_bucket{le="3"} 3`,    // +v=2,3
		`lat_ns_bucket{le="1023"} 4`, // +v=1000
		`lat_ns_bucket{le="+Inf"} 4`,
		`lat_ns_sum 1006`,
		`lat_ns_count 4`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestMetricsHandlerFormats pins the format dispatch: JSON and Prometheus
// each with their Content-Type, and 406 (not silent JSON) on unknown formats.
func TestMetricsHandlerFormats(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("gamma.steps").Add(5)
	ts := httptest.NewServer(MetricsMux(reg))
	defer ts.Close()

	get := func(q string) (*http.Response, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/metrics" + q)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp, string(body)
	}

	resp, body := get("")
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("json Content-Type = %q", ct)
	}
	var s Snapshot
	if err := json.Unmarshal([]byte(body), &s); err != nil || s.Counters["gamma.steps"] != 5 {
		t.Errorf("json payload broken: %v\n%s", err, body)
	}

	resp, body = get("?format=prom")
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("prom Content-Type = %q", ct)
	}
	if !strings.Contains(body, "# TYPE gamma_steps counter") || !strings.Contains(body, "gamma_steps 5") {
		t.Errorf("prom payload broken:\n%s", body)
	}

	resp, _ = get("?format=xml")
	if resp.StatusCode != http.StatusNotAcceptable {
		t.Errorf("unknown format status = %d, want 406", resp.StatusCode)
	}
}

// TestWatchSSE reads two events off the /metrics/watch stream and checks
// they are well-formed SSE data lines carrying Snapshot JSON.
func TestWatchSSE(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("gamma.steps").Add(9)
	ts := httptest.NewServer(MetricsMux(reg))
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", ts.URL+"/metrics/watch?interval_ms=50", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	events := 0
	for sc.Scan() && events < 2 {
		line := sc.Text()
		if line == "" {
			continue
		}
		data, ok := strings.CutPrefix(line, "data: ")
		if !ok {
			t.Fatalf("non-SSE line: %q", line)
		}
		var s Snapshot
		if err := json.Unmarshal([]byte(data), &s); err != nil {
			t.Fatalf("event not Snapshot JSON: %v\n%s", err, data)
		}
		if s.Counters["gamma.steps"] != 9 {
			t.Errorf("event counter = %d, want 9", s.Counters["gamma.steps"])
		}
		events++
	}
	if events < 2 {
		t.Fatalf("got %d events, want 2 (scanner err %v)", events, sc.Err())
	}
}

// TestDroppedEventsCounter pins the satellite: ring overwrites and
// metrics-only discards surface as the telemetry.dropped_events counter.
func TestDroppedEventsCounter(t *testing.T) {
	rec := New(4)
	tr := rec.Track("w0")
	for i := 0; i < 7; i++ {
		tr.Instant(KindConflict, "x", 0, 0)
	}
	if got := rec.Dropped(); got != 3 {
		t.Errorf("Dropped() = %d, want 3 (7 events into a 4-ring)", got)
	}
	if got := rec.Metrics.CounterValue("telemetry.dropped_events"); got != 3 {
		t.Errorf("registry dropped_events = %d, want 3", got)
	}

	mo := New(-1) // metrics-only: every event is discarded
	mo.Track("w0").Instant(KindConflict, "x", 0, 0)
	if got := mo.Metrics.CounterValue("telemetry.dropped_events"); got != 1 {
		t.Errorf("metrics-only dropped_events = %d, want 1", got)
	}
}
