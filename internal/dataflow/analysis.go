package dataflow

import (
	"fmt"
	"sort"
	"strings"
)

// CheckLoops verifies the tag discipline on cycles: every cycle in the graph
// must pass through at least one inctag vertex. A cycle without an inctag
// feeds tokens back at an unchanged iteration tag, so a vertex on it would
// need two operands with the same tag produced at different "iterations" —
// the structural error behind same-tag livelocks and store pile-ups. The
// Fig. 2 loop satisfies the discipline (all three back edges pass R11–R13),
// and the compiler emits it by construction; hand-built graphs can violate
// it, which this analysis reports statically.
//
// The check finds strongly connected components (Tarjan) and requires each
// nontrivial SCC — more than one vertex, or a self-loop — to contain an
// inctag.
func (g *Graph) CheckLoops() error {
	t := &tarjan{
		g:     g,
		index: make([]int, len(g.Nodes)),
		low:   make([]int, len(g.Nodes)),
		onSt:  make([]bool, len(g.Nodes)),
	}
	for i := range t.index {
		t.index[i] = -1
	}
	for v := range g.Nodes {
		if t.index[v] == -1 {
			t.strongconnect(v)
		}
	}
	for _, scc := range t.sccs {
		nontrivial := len(scc) > 1
		if len(scc) == 1 {
			// Self-loop?
			v := scc[0]
			for _, outs := range g.Nodes[v].Out {
				for _, e := range outs {
					if g.Edges[e].To == NodeID(v) {
						nontrivial = true
					}
				}
			}
		}
		if !nontrivial {
			continue
		}
		hasIncTag := false
		var names []string
		for _, v := range scc {
			if g.Nodes[v].Kind == KindIncTag {
				hasIncTag = true
			}
			names = append(names, g.Nodes[v].Name)
		}
		if !hasIncTag {
			sort.Strings(names)
			return fmt.Errorf("dataflow: cycle through {%s} has no inctag vertex; tokens would recirculate at an unchanged tag",
				strings.Join(names, ", "))
		}
	}
	return nil
}

// tarjan is the classic iteration-free recursive SCC algorithm; graphs here
// are small (thousands of vertices at most), so recursion depth is fine.
type tarjan struct {
	g       *Graph
	counter int
	index   []int
	low     []int
	stack   []int
	onSt    []bool
	sccs    [][]int
}

func (t *tarjan) strongconnect(v int) {
	t.index[v] = t.counter
	t.low[v] = t.counter
	t.counter++
	t.stack = append(t.stack, v)
	t.onSt[v] = true

	for _, outs := range t.g.Nodes[v].Out {
		for _, e := range outs {
			to := t.g.Edges[e].To
			if to == NoNode {
				continue
			}
			w := int(to)
			if t.index[w] == -1 {
				t.strongconnect(w)
				if t.low[w] < t.low[v] {
					t.low[v] = t.low[w]
				}
			} else if t.onSt[w] && t.index[w] < t.low[v] {
				t.low[v] = t.index[w]
			}
		}
	}
	if t.low[v] == t.index[v] {
		var scc []int
		for {
			w := t.stack[len(t.stack)-1]
			t.stack = t.stack[:len(t.stack)-1]
			t.onSt[w] = false
			scc = append(scc, w)
			if w == v {
				break
			}
		}
		t.sccs = append(t.sccs, scc)
	}
}
