package dataflow

import (
	"fmt"
	"time"

	"repro/internal/telemetry"
)

// dfSink is the per-PE telemetry state of one execution, resolved once per
// PE so a disabled recorder costs one nil-check branch per record site (all
// methods are no-ops on a nil receiver). Counters mirror the Result fields
// increment for increment; the differential tests hold them to exact
// agreement.
type dfSink struct {
	track   *telemetry.Track
	verbose bool

	firings  *telemetry.Counter
	memoHits *telemetry.Counter
	fired    []*telemetry.Counter // by NodeID
	lat      *telemetry.Histogram
	depth    *telemetry.Gauge
	ticks    *telemetry.Counter   // matrix engine bulk-synchronous rounds
	perTick  *telemetry.Histogram // activations fired per round
}

// newDFSink resolves the PE's track and instruments; nil when telemetry is
// disabled. PE -1 is the coordinator (const-token injection in the parallel
// runtime); 0..N-1 are the PEs, named "dataflow/pe<i>".
func newDFSink(opt Options, g *Graph, pe int) *dfSink {
	rec := opt.Recorder
	if rec == nil {
		return nil
	}
	name := fmt.Sprintf("dataflow/pe%d", pe)
	if pe < 0 {
		name = "dataflow/init"
	}
	reg := rec.Metrics
	s := &dfSink{
		track:    rec.Track(name),
		verbose:  rec.Verbose,
		firings:  reg.Counter("dataflow.firings"),
		memoHits: reg.Counter("dataflow.memo_hits"),
		lat:      reg.Histogram("dataflow.firing_ns"),
		depth:    reg.Gauge("dataflow.queue_depth"),
		ticks:    reg.Counter("dataflow.ticks"),
		perTick:  reg.Histogram("dataflow.fired_per_tick"),
	}
	s.fired = make([]*telemetry.Counter, len(g.Nodes))
	for _, n := range g.Nodes {
		s.fired[n.ID] = reg.Counter("dataflow.fired." + n.Name)
	}
	return s
}

// begin stamps the start of a firing; the zero time when disabled.
func (s *dfSink) begin() time.Time {
	if s == nil {
		return time.Time{}
	}
	return time.Now()
}

// firing accounts one vertex activation: the latency span since begin, with
// the runtime's current token depth (sequential queue length or parallel
// in-flight count) and the tokens the firing emitted in the payload.
func (s *dfSink) firing(id NodeID, name string, start time.Time, depth int64, emitted int) {
	if s == nil {
		return
	}
	s.firings.Inc()
	s.fired[id].Inc()
	s.depth.Set(depth)
	lat := time.Since(start)
	s.lat.Observe(lat.Nanoseconds())
	s.track.SpanDur(telemetry.KindFiring, name, start, lat, depth, int64(emitted))
}

// memoHit accounts one firing answered from the memo table.
func (s *dfSink) memoHit() {
	if s == nil {
		return
	}
	s.memoHits.Inc()
}

// tick accounts one bulk-synchronous round of the matrix engine and the size
// of its fire-vector.
func (s *dfSink) tick(fired int) {
	if s == nil {
		return
	}
	s.ticks.Inc()
	s.perTick.Observe(int64(fired))
}
