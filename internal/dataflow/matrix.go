package dataflow

// The bulk-synchronous sparse-matrix engine (Options.Engine == EngineMatrix).
//
// Instead of scheduling tokens one at a time (runSequential) or partitioning
// vertices over PE goroutines (runParallel), this engine represents the graph
// as two CSR-style sparse incidence matrices over the dense node/edge ids —
// producer→edge and edge→consumer — and executes in bulk-synchronous ticks:
// a readiness sweep delivers every queued token and computes the fire-vector
// of ALL enabled (vertex, tag) activations, then a batched apply pass fires
// them, emitting into the next tick's per-edge queues. Termination is
// "fire-vector empty", cross-checked against an explicit in-flight token
// count (the matrix analogue of the parallel runtime's version-idle
// protocol). The design follows ROADMAP item 3, grounded in "Dataflow Graphs
// as Matrices and Programming with Higher-order Matrix Elements" (PAPERS.md):
// one sweep is a sparse matrix-vector product of the incidence structure with
// the token vector. Wide graphs — Algorithm 2's replicated reaction
// subgraphs over big multisets, Fig. 4 — are exactly the shape where a tick
// that fires thousands of vertices amortizes scheduling to nearly nothing.

import (
	"context"
	"fmt"

	"repro/internal/rt"
	"repro/internal/value"
)

// matTok is one token parked on an edge queue between ticks. The edge is the
// queue's index, so only the value and the iteration tag are stored.
type matTok struct {
	val value.Value
	tag int64
}

// matFiring is one entry of a tick's fire-vector: an enabled (vertex, tag)
// activation whose matched operands live at [off, off+nops) in the tick's
// flat operand arena.
type matFiring struct {
	node NodeID
	tag  int64
	off  int32
	nops int32
}

// matProgram is the incidence form of a Graph, built once per run. Both
// matrices are CSR: the producer→edge matrix maps a (node, output port) row
// to its out-edge ids, and the edge→consumer matrix maps an edge to its
// single consumer (or -1 for a terminal edge).
type matProgram struct {
	// portBase[n] is the first flat output-port index of node n; the row of
	// flat port p is outEdges[outStart[p]:outStart[p+1]].
	portBase []int32
	outStart []int32
	outEdges []EdgeID
	// edgeTo[e] is the consumer node of edge e (-1 terminal); edgePort[e] its
	// input port.
	edgeTo   []int32
	edgePort []int32
}

func buildMatProgram(g *Graph) *matProgram {
	mp := &matProgram{
		portBase: make([]int32, len(g.Nodes)+1),
		edgeTo:   make([]int32, len(g.Edges)),
		edgePort: make([]int32, len(g.Edges)),
	}
	flat := 0
	for i, n := range g.Nodes {
		mp.portBase[i] = int32(flat)
		flat += len(n.Out)
	}
	mp.portBase[len(g.Nodes)] = int32(flat)
	mp.outStart = make([]int32, flat+1)
	total := 0
	for _, n := range g.Nodes {
		for p, edges := range n.Out {
			mp.outStart[int(mp.portBase[n.ID])+p] = int32(total)
			total += len(edges)
		}
	}
	mp.outStart[flat] = int32(total)
	mp.outEdges = make([]EdgeID, 0, total)
	for _, n := range g.Nodes {
		for _, edges := range n.Out {
			mp.outEdges = append(mp.outEdges, edges...)
		}
	}
	for _, e := range g.Edges {
		if e.To == NoNode {
			mp.edgeTo[e.ID] = -1
		} else {
			mp.edgeTo[e.ID] = int32(e.To)
			mp.edgePort[e.ID] = int32(e.ToPort)
		}
	}
	return mp
}

// row returns the out-edge ids of node n's output port.
func (mp *matProgram) row(n *Node, port int) []EdgeID {
	fp := int(mp.portBase[n.ID]) + port
	return mp.outEdges[mp.outStart[fp]:mp.outStart[fp+1]]
}

// emit fans a routed value out to every edge of the port's row, appending to
// the given tick's queues. Returns the number of tokens emitted.
func (mp *matProgram) emit(q [][]matTok, n *Node, port int, v value.Value, tag int64) int {
	row := mp.row(n, port)
	for _, e := range row {
		q[e] = append(q[e], matTok{val: v, tag: tag})
	}
	return len(row)
}

// producedKeys names the tokens an emission produced, for the tracer.
func (mp *matProgram) producedKeys(g *Graph, n *Node, port int, tag int64) []string {
	row := mp.row(n, port)
	keys := make([]string, len(row))
	for i, e := range row {
		keys[i] = fmt.Sprintf("%s@%d", g.Edges[e].Label, tag)
	}
	return keys
}

// runMatrix executes the graph in bulk-synchronous ticks. It is
// single-threaded and deterministic: within a tick, tokens are delivered in
// dense edge order and activations fire in discovery order, so the firing
// sequence is a pure function of the graph. The multiset of firings — and
// hence Outputs, Firings, PerNode, MemoHits and Pending — equals the
// sequential engine's (dataflow firing is confluent; see DESIGN.md §14 for
// the argument against Eq. 1 stability).
func runMatrix(ctx context.Context, g *Graph, opt Options) (res *Result, err error) {
	res = newResult(1)
	site := ""
	defer func() {
		if rec := recover(); rec != nil {
			err = rt.NewPanicError("dataflow", site, 0, rec)
		}
	}()
	mp := buildMatProgram(g)
	ops := compilePureOps(g)
	ts := newDFSink(opt, g, 0)
	traced := opt.Tracer != nil
	// keyed widens the tracer's key materialization to the schedule recorder;
	// schedSeq numbers firings in tick order (the engine is single-threaded,
	// so a plain counter is already a linearization).
	keyed := needKeys(opt)
	var schedSeq uint64

	stores := make([]store, len(g.Nodes))
	for i := range stores {
		stores[i] = make(store)
	}

	// cur holds the tokens this tick's sweep consumes; the apply pass emits
	// into next; the slices swap at the tick boundary. Queues are truncated,
	// not reallocated, so steady-state ticks allocate nothing.
	cur := make([][]matTok, len(g.Edges))
	next := make([][]matTok, len(g.Edges))

	// Arena-backed per-tick scratch (the PR-6 arena discipline): the
	// fire-vector and the operand values it references live in flat slices
	// reset to length zero — keeping their capacity — every sweep.
	var (
		fires []matFiring
		vals  []value.Value
		keys  []string // consumed-token keys, tracer/schedule runs only
	)

	// inflight counts emitted-but-unconsumed tokens: +fanout per firing,
	// -nops when a firing consumes its operands, -1 when a terminal edge
	// absorbs an output. It is the matrix analogue of the parallel runtime's
	// in-flight counter: at termination it must equal the operands parked in
	// the matching stores, which is exactly Result.Pending.
	inflight := 0

	// Tick 0 seeds the token vector: every const vertex fires once with
	// tag 0, emitting straight into the flat edge queues (initialTokens for
	// the matrix layout).
	for _, n := range g.Nodes {
		if n.Kind != KindConst {
			continue
		}
		site = n.Name
		t0 := ts.begin()
		emitted := mp.emit(cur, n, 0, n.Init, 0)
		if keyed {
			pk := mp.producedKeys(g, n, 0, 0)
			if traced {
				opt.Tracer.RecordFiring(n.Name, nil, pk)
			}
			if opt.Schedule != nil {
				schedSeq++
				opt.Schedule.RecordStep(schedSeq, n.Name, nil, pk)
			}
		}
		res.Firings++
		res.PerNode[n.Name]++
		inflight += emitted
		ts.firing(n.ID, n.Name, t0, int64(inflight), emitted)
	}

	for {
		// Phase 1 — readiness sweep: deliver every queued token into its
		// consumer's matching store in dense edge order; each completed
		// operand set appends one activation to the fire-vector, with its
		// operands copied into the flat arena. Terminal-edge tokens are
		// absorbed as outputs here.
		fires = fires[:0]
		vals = vals[:0]
		if keyed {
			keys = keys[:0]
		}
		for ei := range cur {
			q := cur[ei]
			if len(q) == 0 {
				continue
			}
			to := mp.edgeTo[ei]
			if to < 0 {
				label := g.Edges[ei].Label
				for _, tk := range q {
					res.Outputs[label] = append(res.Outputs[label], TaggedValue{Tag: tk.tag, Val: tk.val})
				}
				inflight -= len(q)
				cur[ei] = q[:0]
				continue
			}
			n := g.Nodes[to]
			port := int(mp.edgePort[ei])
			st := stores[to]
			for _, tk := range q {
				key := ""
				if keyed {
					key = fmt.Sprintf("%s@%d", g.Edges[ei].Label, tk.tag)
				}
				w, ok := st[tk.tag]
				if !ok {
					w = &waiting{ports: make([][]operand, len(n.In))}
					st[tk.tag] = w
				}
				w.ports[port] = append(w.ports[port], operand{val: tk.val, key: key})
				ready := true
				for _, pq := range w.ports {
					if len(pq) == 0 {
						ready = false
						break
					}
				}
				if !ready {
					continue
				}
				off := int32(len(vals))
				empty := true
				for i := range w.ports {
					vals = append(vals, w.ports[i][0].val)
					if keyed {
						keys = append(keys, w.ports[i][0].key)
					}
					w.ports[i] = w.ports[i][1:]
					if len(w.ports[i]) > 0 {
						empty = false
					}
				}
				if empty {
					delete(st, tk.tag)
				}
				fires = append(fires, matFiring{node: NodeID(to), tag: tk.tag, off: off, nops: int32(len(w.ports))})
			}
			cur[ei] = q[:0]
		}

		// Eq. 1 stability: an empty fire-vector after a full sweep means no
		// vertex is enabled and no token is in motion — the program is
		// stable.
		if len(fires) == 0 {
			break
		}

		// Phase 2 — batched apply: fire every activation of the vector,
		// emitting into the next tick's queues.
		for _, f := range fires {
			n := g.Nodes[f.node]
			site = n.Name
			if cerr := ctx.Err(); cerr != nil {
				return res, rt.FromContext(cerr)
			}
			if opt.FaultInjector != nil {
				if ferr := opt.FaultInjector(n.Name, 0); ferr != nil {
					return res, ferr
				}
			}
			operands := vals[f.off : f.off+f.nops]
			mh0 := res.MemoHits
			t0 := ts.begin()
			port, v, outTag, ferr := route(n, f.tag, operands, ops, opt, res)
			if ferr != nil {
				return res, ferr
			}
			emitted := mp.emit(next, n, port, v, outTag)
			if keyed {
				consumed := append([]string(nil), keys[f.off:f.off+f.nops]...)
				pk := mp.producedKeys(g, n, port, outTag)
				if traced {
					opt.Tracer.RecordFiring(n.Name, consumed, pk)
				}
				if opt.Schedule != nil {
					schedSeq++
					opt.Schedule.RecordStep(schedSeq, n.Name, consumed, pk)
				}
			}
			res.Firings++
			res.PerNode[n.Name]++
			inflight += emitted - int(f.nops)
			if ts != nil {
				if res.MemoHits > mh0 {
					ts.memoHit()
				}
				ts.firing(n.ID, n.Name, t0, int64(inflight), emitted)
			}
			if opt.MaxFirings > 0 && res.Firings > opt.MaxFirings {
				return res, ErrMaxFirings
			}
		}
		res.Ticks++
		ts.tick(len(fires))
		cur, next = next, cur
	}

	// Termination cross-check, mirroring the version-idle protocol: every
	// emitted token must be accounted for as consumed, absorbed, or parked.
	res.Pending = countPending(stores)
	if res.Pending != inflight {
		return res, rt.Mark(rt.ErrInvalid,
			fmt.Errorf("dataflow: matrix engine idle protocol violated: %d tokens in flight, %d parked", inflight, res.Pending))
	}
	sortOutputs(res)
	return res, nil
}
