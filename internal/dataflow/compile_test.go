package dataflow

import (
	"math/rand"
	"testing"

	"repro/internal/value"
)

// TestCompiledPureOpsDifferential pins the compiled pure-vertex evaluators to
// the tree-walking pureResult oracle: on random vertices (every pure kind,
// every operator including unknown ones, immediate-left, immediate-right and
// two-operand forms) and random operands (including division-by-zero and
// non-numeric strings), the compiled op must return the identical value and
// the identical error text.
func TestCompiledPureOpsDifferential(t *testing.T) {
	arithOps := []string{"+", "-", "*", "/", "%", "and", "or", "min", "max", "bogus"}
	// Compare vertices only ever carry boolean-valued operators (the graph
	// builder's AddCompare contract); other ops would panic in AsBool on both
	// evaluators alike.
	cmpOps := []string{"<", "<=", ">", ">=", "==", "!=", "bogus"}
	unOps := []string{"-", "!", "not", "+", "bogus"}
	randVal := func(rng *rand.Rand) value.Value {
		switch rng.Intn(4) {
		case 0:
			return value.Int(int64(rng.Intn(7)) - 3)
		case 1:
			return value.Int(0)
		case 2:
			return value.Str("A")
		default:
			return value.Bool(rng.Intn(2) == 0)
		}
	}
	iters := 3000
	if testing.Short() {
		iters = 500
	}
	for seed := 0; seed < iters; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		n := &Node{ID: NodeID(rng.Intn(4)), Name: "v"}
		var operands []value.Value
		switch rng.Intn(3) {
		case 0:
			n.Kind = KindUnaryOp
			n.Op = unOps[rng.Intn(len(unOps))]
			operands = []value.Value{randVal(rng)}
		case 1:
			n.Kind = KindArith
			n.Op = arithOps[rng.Intn(len(arithOps))]
		default:
			n.Kind = KindCompare
			n.Op = cmpOps[rng.Intn(len(cmpOps))]
		}
		if operands == nil {
			if rng.Intn(2) == 0 {
				n.Imm = randVal(rng)
				n.ImmLeft = rng.Intn(2) == 0
				operands = []value.Value{randVal(rng)}
			} else {
				operands = []value.Value{randVal(rng), randVal(rng)}
			}
		}
		op := compilePure(n)
		if op == nil {
			t.Fatalf("seed %d: compilePure returned nil for pure kind %s", seed, n.Kind)
		}
		want, wantErr := pureResult(n, operands)
		got, gotErr := op(operands)
		if (wantErr == nil) != (gotErr == nil) ||
			(wantErr != nil && wantErr.Error() != gotErr.Error()) {
			t.Fatalf("seed %d: %s %q imm=%v left=%v operands=%v:\n oracle err %v\n compiled err %v",
				seed, n.Kind, n.Op, n.Imm, n.ImmLeft, operands, wantErr, gotErr)
		}
		if wantErr == nil && want != got {
			t.Fatalf("seed %d: %s %q imm=%v left=%v operands=%v: oracle %s compiled %s",
				seed, n.Kind, n.Op, n.Imm, n.ImmLeft, operands, want, got)
		}
	}
}

// TestCompilePureOpsCoversGraph checks the per-run lowering assigns ops to
// exactly the pure vertices.
func TestCompilePureOpsCoversGraph(t *testing.T) {
	g := NewGraph("cover")
	c := g.AddConst("c", value.Int(2))
	a := g.AddArith("a", "+")
	cmp := g.AddCompare("lt", "<")
	g.Connect(c, 0, a, 0, "x")
	g.Connect(c, 0, a, 1, "y")
	g.Connect(a, 0, cmp, 0, "s")
	g.Connect(c, 0, cmp, 1, "z")
	ops := compilePureOps(g)
	if len(ops) != len(g.Nodes) {
		t.Fatalf("len(ops) = %d, want %d", len(ops), len(g.Nodes))
	}
	for _, n := range g.Nodes {
		if (ops[n.ID] != nil) != n.Kind.isPure() {
			t.Errorf("node %s (kind %s): compiled=%v pure=%v", n.Name, n.Kind, ops[n.ID] != nil, n.Kind.isPure())
		}
	}
}
