package dataflow

import (
	"context"
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/rt"
	"repro/internal/telemetry"
	"repro/internal/value"
)

// Token is one operand in flight: a value on an edge with an iteration tag.
// This is the paper's triplet [value, label, tag] in motion.
type Token struct {
	Val  value.Value
	Edge EdgeID
	Tag  int64
}

// TaggedValue is a program output: the value and the iteration tag it carried.
type TaggedValue struct {
	Tag int64
	Val value.Value
}

// Result reports one execution.
type Result struct {
	// Outputs collects tokens that arrived on terminal edges, keyed by edge
	// label, sorted by tag (then arrival) for determinism.
	Outputs map[string][]TaggedValue
	// Firings is the total number of vertex activations.
	Firings int64
	// PerNode counts activations per vertex name.
	PerNode map[string]int64
	// MemoHits counts firings answered from Options.Memo.
	MemoHits int64
	// Pending counts operands left waiting in vertex matching stores when
	// the program terminated: tokens that arrived on some port but whose
	// partner operands never did (typically because a steer dropped the
	// other path). In the Gamma translation these are exactly the non-output
	// elements of the stable multiset.
	Pending int
	// Workers echoes the PE count used.
	Workers int
	// Ticks counts the bulk-synchronous rounds of the matrix engine: one
	// readiness sweep plus one batched apply pass per tick. Zero under the
	// token-at-a-time engines.
	Ticks int64
}

// Output returns the single output value for label, for the common case of
// one token per terminal edge (Fig. 1's 'm').
func (r *Result) Output(label string) (value.Value, bool) {
	vs := r.Outputs[label]
	if len(vs) == 0 {
		return value.Value{}, false
	}
	return vs[len(vs)-1].Val, true
}

// ErrMaxFirings is returned when execution exceeds Options.MaxFirings vertex
// activations; like Gamma programs, dynamic dataflow graphs with loops need
// not terminate. It wraps rt.ErrMaxSteps, the cross-runtime budget class;
// errors from RunContext additionally satisfy errors.Is against
// rt.ErrCanceled / rt.ErrDeadline (and thus context.Canceled /
// context.DeadlineExceeded) when the context stopped the run. See package rt
// for the full taxonomy.
var ErrMaxFirings = rt.Wrap("dataflow: maximum firing count exceeded", rt.ErrMaxSteps)

// Memo caches pure vertex computations — the instruction-reuse mechanism the
// paper cites as a benefit of mapping Gamma onto dataflow (DF-DTM [3]). Keys
// identify a vertex and its operand values; implementations must be safe for
// concurrent use when Workers > 1.
type Memo interface {
	LookupFiring(key string) (value.Value, bool)
	StoreFiring(key string, v value.Value)
}

// Tracer observes the dependency structure of an execution: one call per
// vertex firing, with opaque keys identifying the tokens it consumed and
// produced (a consumed key always equals some earlier firing's produced key,
// or names an initial token). Package profile implements this to compute
// work, span and average parallelism — the model-level parallelism analysis
// the paper motivates (§I, [2]). Implementations must be safe for concurrent
// use when Workers > 1.
type Tracer interface {
	RecordFiring(name string, consumed, produced []string)
}

// ScheduleRecorder receives every vertex firing together with a commit
// sequence number — the executable-schedule form of a Tracer. Numbers are
// drawn before a firing's output tokens become visible to any consumer, so
// sorting the records by seq yields a sequential firing order that is a
// valid linearization even of the parallel PE pool (package replay
// re-executes it step for step). The engine hands over ownership of the key
// slices — implementations may retain them without copying. Implementations
// must be safe for concurrent use when Workers > 1.
type ScheduleRecorder interface {
	RecordStep(seq uint64, name string, consumed, produced []string)
}

// EngineMatrix selects the bulk-synchronous sparse-matrix engine (matrix.go)
// via Options.Engine. The string equals schema.EngineMatrix so specs pass
// through the facade and service unchanged.
const EngineMatrix = "matrix"

// Options configures an execution.
type Options struct {
	// Workers is the number of processing elements (PEs). 0 or 1 selects the
	// deterministic sequential scheduler; more selects the parallel runtime
	// where vertices are partitioned over PE goroutines.
	Workers int
	// Engine overrides the Workers-driven scheduler choice. Empty leaves the
	// choice to Workers; EngineMatrix selects the bulk-synchronous
	// sparse-matrix engine (which is single-threaded — Workers is ignored and
	// echoed as 1). Any other value is rt.ErrInvalid.
	Engine string
	// MaxFirings bounds total vertex activations; 0 means no bound.
	MaxFirings int64
	// Memo, when set, caches the results of pure vertices (arithmetic,
	// comparison, unary): a hit skips the computation and its WorkFactor.
	Memo Memo
	// Tracer, when set, receives every firing with its consumed/produced
	// token keys for dependency analysis.
	Tracer Tracer
	// WorkFactor emulates instruction cost: each pure-vertex firing spins
	// this many iterations before computing. 0 means no extra work. It
	// exists so reuse and scaling benchmarks measure a realistic
	// computation-to-overhead ratio rather than nanosecond additions.
	WorkFactor int
	// FaultInjector, when set, runs before every vertex firing with the
	// vertex name and PE index; a non-nil return aborts the run with that
	// error, and a panic inside it exercises the PE pool's panic recovery.
	// For stress tests; leave nil in production runs.
	FaultInjector rt.FaultInjector
	// Recorder, when set, receives the execution's telemetry: one event
	// track per PE (firing spans with latency and token depth) and registry
	// counters mirroring the Result fields increment for increment. Nil
	// costs one branch per record site on the hot paths.
	Recorder *telemetry.Recorder
	// Schedule, when set, receives every firing with its commit sequence
	// number, turning the run into an executable schedule (see package
	// replay). Nil costs one branch per firing.
	Schedule ScheduleRecorder
}

// Run executes the graph until no token is in flight and returns the outputs.
// Const vertices inject their value with tag 0 at start; execution then
// follows the dataflow firing rule only.
//
// Run is RunContext with context.Background(): no deadline, no cancellation.
func Run(g *Graph, opt Options) (*Result, error) {
	return RunContext(context.Background(), g, opt)
}

// RunContext is Run under a context: cancellation and deadline propagate to
// every PE, which observe ctx between firings and stop promptly, dropping
// in-flight tokens. Early exits of every kind — cancellation, deadline,
// firing budget, a failing vertex, a recovered panic — return a non-nil
// partial Result describing the work done up to the stop, alongside the
// classifying error (rt.ErrCanceled, rt.ErrDeadline, ErrMaxFirings, or
// *rt.PanicError; see package rt).
func RunContext(ctx context.Context, g *Graph, opt Options) (*Result, error) {
	if err := g.Validate(); err != nil {
		return nil, rt.Mark(rt.ErrInvalid, err)
	}
	if err := ctx.Err(); err != nil {
		workers := opt.Workers
		if workers < 1 {
			workers = 1
		}
		return newResult(workers), rt.FromContext(err)
	}
	switch opt.Engine {
	case "":
		// Workers decides below.
	case EngineMatrix:
		return runMatrix(ctx, g, opt)
	default:
		return nil, rt.Mark(rt.ErrInvalid, fmt.Errorf("dataflow: unknown engine %q", opt.Engine))
	}
	if opt.Workers <= 1 {
		return runSequential(ctx, g, opt)
	}
	return runParallel(ctx, g, opt)
}

// operand is one queued token in a matching store: its value plus the token
// key used for dependency tracing (empty when no tracer is attached).
type operand struct {
	val value.Value
	key string
}

// waiting is the tag-matching store entry for one (vertex, tag): a token
// queue per input port. The vertex fires when every port has a token with
// this tag — the dynamic dataflow firing rule.
type waiting struct {
	ports [][]operand
}

// store is the per-vertex matching store. In the parallel runtime each store
// is owned by exactly one PE, so no locking is needed.
type store map[int64]*waiting

// deliver adds a token to the store; when the vertex becomes fireable it
// returns the consumed operand values and keys.
func (s store) deliver(n *Node, port int, tag int64, v value.Value, key string) ([]value.Value, []string, bool) {
	w, ok := s[tag]
	if !ok {
		w = &waiting{ports: make([][]operand, len(n.In))}
		s[tag] = w
	}
	w.ports[port] = append(w.ports[port], operand{val: v, key: key})
	for _, q := range w.ports {
		if len(q) == 0 {
			return nil, nil, false
		}
	}
	operands := make([]value.Value, len(w.ports))
	keys := make([]string, len(w.ports))
	empty := true
	for i := range w.ports {
		operands[i] = w.ports[i][0].val
		keys[i] = w.ports[i][0].key
		w.ports[i] = w.ports[i][1:]
		if len(w.ports[i]) > 0 {
			empty = false
		}
	}
	if empty {
		delete(s, tag)
	}
	return operands, keys, true
}

// tokenKey names a token for the tracer: its edge and tag.
func tokenKey(g *Graph, t Token) string {
	return fmt.Sprintf("%s@%d", g.Edges[t.Edge].Label, t.Tag)
}

// TokenKey renders the trace/schedule name of a token: "label@tag", the
// token's edge label and iteration tag. Unlike a multiset fingerprint the
// key does not encode the value, which is why dataflow replay re-executes
// the graph instead of reconstructing tokens from keys.
func TokenKey(g *Graph, t Token) string { return tokenKey(g, t) }

// traceFiring reports one firing to the tracer, if any.
func traceFiring(g *Graph, opt Options, name string, consumed []string, out []Token) {
	if opt.Tracer == nil {
		return
	}
	produced := make([]string, len(out))
	for i, t := range out {
		produced[i] = tokenKey(g, t)
	}
	opt.Tracer.RecordFiring(name, consumed, produced)
}

// recordStep reports one firing, with its commit sequence number, to the
// schedule recorder. Consumed keys are in input-port order (store.deliver
// returns them that way), which is what lets replay rebuild the operand
// vector positionally.
func recordStep(g *Graph, opt Options, seq *atomic.Uint64, name string, consumed []string, out []Token) {
	if opt.Schedule == nil {
		return
	}
	produced := make([]string, len(out))
	for i, t := range out {
		produced[i] = tokenKey(g, t)
	}
	opt.Schedule.RecordStep(seq.Add(1), name, consumed, produced)
}

// needKeys reports whether token keys must be materialized on delivery: both
// the tracer and the schedule recorder consume them.
func needKeys(opt Options) bool { return opt.Tracer != nil || opt.Schedule != nil }

// ReplayFire computes one vertex activation outside an engine: the replay
// verifier's way to re-execute a recorded firing. Pure vertices run through
// the interpreted evaluator (no memo, no work factor), routing vertices move
// their operand; the returned tokens are the activation's emissions in port
// fan-out order.
func ReplayFire(g *Graph, n *Node, tag int64, operands []value.Value) ([]Token, error) {
	return fire(g, n, tag, operands, nil, Options{}, newResult(1))
}

// workSink defeats any optimization of the WorkFactor spin loop.
var workSink atomic.Uint64

// spin emulates the cost of an expensive instruction.
func spin(n int) {
	if n <= 0 {
		return
	}
	acc := workSink.Load()
	for i := 0; i < n; i++ {
		acc = acc*1664525 + 1013904223
	}
	workSink.Store(acc)
}

// memoKey identifies a pure firing: the vertex and its operand values.
func memoKey(n *Node, operands []value.Value) string {
	key := fmt.Sprintf("%d|%s|%s", n.ID, n.Kind, n.Op)
	for _, v := range operands {
		key += "|" + v.String()
	}
	return key
}

// isPure reports whether the vertex kind computes a value from operands
// alone, making it memoizable.
func (k NodeKind) isPure() bool {
	return k == KindArith || k == KindCompare || k == KindUnaryOp
}

// route computes a vertex activation down to its single routed emission: the
// output port, the value, and the tag it carries. Every node kind emits
// exactly one (port, value, tag) triple, fanned over that port's edges by the
// caller — pure kinds via memo/compiled evaluation, the routing kinds (const,
// steer, inctag, copy, settag) by moving an operand. Factoring this below
// fire lets the matrix engine emit straight into its flat per-edge queues
// without materializing []Token slices.
func route(n *Node, tag int64, operands []value.Value, ops []pureOp, opt Options, res *Result) (int, value.Value, int64, error) {
	if n.Kind.isPure() {
		if opt.Memo != nil {
			key := memoKey(n, operands)
			if v, ok := opt.Memo.LookupFiring(key); ok {
				res.MemoHits++
				return 0, v, tag, nil
			}
			spin(opt.WorkFactor)
			v, err := evalPure(n, operands, ops)
			if err != nil {
				return 0, value.Value{}, 0, err
			}
			opt.Memo.StoreFiring(key, v)
			return 0, v, tag, nil
		}
		spin(opt.WorkFactor)
		v, err := evalPure(n, operands, ops)
		if err != nil {
			return 0, value.Value{}, 0, err
		}
		return 0, v, tag, nil
	}
	switch n.Kind {
	case KindConst:
		return 0, n.Init, tag, nil
	case KindSteer:
		ctl, err := operands[1].Truthy()
		if err != nil {
			return 0, value.Value{}, 0, fmt.Errorf("dataflow: steer %s control: %w", n.Name, err)
		}
		if ctl {
			return PortTrue, operands[0], tag, nil
		}
		return PortFalse, operands[0], tag, nil
	case KindIncTag:
		return 0, operands[0], tag + 1, nil
	case KindCopy:
		return 0, operands[0], tag, nil
	case KindSetTag:
		return 0, operands[0], 0, nil
	}
	return 0, value.Value{}, 0, fmt.Errorf("dataflow: node %s has invalid kind", n.Name)
}

// fire computes a vertex activation: given the matched operands and their
// tag, it returns the emitted tokens. ops holds the run's compiled pure
// vertices (nil falls back to the tree-walking pureResult); opt supplies the
// memo table and work factor; res accounts memo hits.
func fire(g *Graph, n *Node, tag int64, operands []value.Value, ops []pureOp, opt Options, res *Result) ([]Token, error) {
	port, v, outTag, err := route(n, tag, operands, ops, opt, res)
	if err != nil {
		return nil, err
	}
	return emitAll(g, n, port, v, outTag), nil
}

// evalPure evaluates a pure vertex through its compiled op when one exists,
// else through the interpreted pureResult.
func evalPure(n *Node, operands []value.Value, ops []pureOp) (value.Value, error) {
	if int(n.ID) < len(ops) {
		if op := ops[n.ID]; op != nil {
			return op(operands)
		}
	}
	return pureResult(n, operands)
}

// pureResult computes the value of an Arith, Compare or UnaryOp vertex.
func pureResult(n *Node, operands []value.Value) (value.Value, error) {
	switch n.Kind {
	case KindArith, KindCompare:
		a, b := operands[0], value.Value{}
		if n.Imm.IsValid() {
			if n.ImmLeft {
				a, b = n.Imm, operands[0]
			} else {
				b = n.Imm
			}
		} else {
			b = operands[1]
		}
		v, err := value.Binary(n.Op, a, b)
		if err != nil {
			return value.Value{}, fmt.Errorf("dataflow: node %s: %w", n.Name, err)
		}
		if n.Kind == KindCompare {
			// Algorithm 1 (lines 25-27): comparisons produce 1 or 0 control
			// operands, not booleans.
			if v.AsBool() {
				return value.Int(1), nil
			}
			return value.Int(0), nil
		}
		return v, nil
	case KindUnaryOp:
		v, err := value.Unary(n.Op, operands[0])
		if err != nil {
			return value.Value{}, fmt.Errorf("dataflow: node %s: %w", n.Name, err)
		}
		return v, nil
	}
	return value.Value{}, fmt.Errorf("dataflow: node %s is not pure", n.Name)
}

// emitAll fans a value out to every edge of an output port.
func emitAll(g *Graph, n *Node, port int, v value.Value, tag int64) []Token {
	outs := n.Out[port]
	toks := make([]Token, 0, len(outs))
	for _, e := range outs {
		toks = append(toks, Token{Val: v, Edge: e, Tag: tag})
	}
	return toks
}

// initialTokens fires every const vertex once with tag 0. seq numbers the
// const firings before any token is routed, so every schedule starts with
// the graph's constants in node order.
func initialTokens(g *Graph, opt Options, res *Result, ts *dfSink, seq *atomic.Uint64) []Token {
	var toks []Token
	for _, n := range g.Nodes {
		if n.Kind != KindConst {
			continue
		}
		t0 := ts.begin()
		out, _ := fire(g, n, 0, nil, nil, opt, res) // const firing cannot fail
		traceFiring(g, opt, n.Name, nil, out)
		recordStep(g, opt, seq, n.Name, nil, out)
		toks = append(toks, out...)
		res.Firings++
		res.PerNode[n.Name]++
		ts.firing(n.ID, n.Name, t0, int64(len(toks)), len(out))
	}
	return toks
}

func newResult(workers int) *Result {
	return &Result{
		Outputs: make(map[string][]TaggedValue),
		PerNode: make(map[string]int64),
		Workers: workers,
	}
}

// sortOutputs orders each output series by tag for deterministic reporting.
func sortOutputs(res *Result) {
	for _, vs := range res.Outputs {
		sort.SliceStable(vs, func(i, j int) bool { return vs[i].Tag < vs[j].Tag })
	}
}

// countPending totals the operands still waiting in the matching stores.
func countPending(stores []store) int {
	n := 0
	for _, s := range stores {
		for _, w := range s {
			for _, q := range w.ports {
				n += len(q)
			}
		}
	}
	return n
}

// runSequential is the deterministic single-PE scheduler: a FIFO worklist of
// tokens, each delivered to its destination vertex's matching store, firing
// vertices as their operand sets complete.
//
// The context is observed once per firing (token deliveries that do not
// complete an operand set are too cheap to matter for latency); a panic out
// of a vertex operation is recovered into *rt.PanicError with the partial
// Result preserved.
func runSequential(ctx context.Context, g *Graph, opt Options) (res *Result, err error) {
	res = newResult(1)
	site := ""
	defer func() {
		if rec := recover(); rec != nil {
			err = rt.NewPanicError("dataflow", site, 0, rec)
		}
	}()
	stores := make([]store, len(g.Nodes))
	for i := range stores {
		stores[i] = make(store)
	}
	ops := compilePureOps(g)
	ts := newDFSink(opt, g, 0)
	var seq atomic.Uint64
	queue := initialTokens(g, opt, res, ts, &seq)
	for len(queue) > 0 {
		tok := queue[0]
		queue = queue[1:]
		e := g.Edges[tok.Edge]
		if e.To == NoNode {
			res.Outputs[e.Label] = append(res.Outputs[e.Label], TaggedValue{Tag: tok.Tag, Val: tok.Val})
			continue
		}
		n := g.Nodes[e.To]
		key := ""
		if needKeys(opt) {
			key = tokenKey(g, tok)
		}
		operands, keys, ready := stores[e.To].deliver(n, e.ToPort, tok.Tag, tok.Val, key)
		if !ready {
			continue
		}
		site = n.Name
		if cerr := ctx.Err(); cerr != nil {
			return res, rt.FromContext(cerr)
		}
		if opt.FaultInjector != nil {
			if ferr := opt.FaultInjector(n.Name, 0); ferr != nil {
				return res, ferr
			}
		}
		mh0 := res.MemoHits
		t0 := ts.begin()
		out, err := fire(g, n, tok.Tag, operands, ops, opt, res)
		if err != nil {
			return res, err
		}
		traceFiring(g, opt, n.Name, keys, out)
		recordStep(g, opt, &seq, n.Name, keys, out)
		res.Firings++
		res.PerNode[n.Name]++
		if ts != nil {
			if res.MemoHits > mh0 {
				ts.memoHit()
			}
			ts.firing(n.ID, n.Name, t0, int64(len(queue)+len(out)), len(out))
		}
		if opt.MaxFirings > 0 && res.Firings > opt.MaxFirings {
			return res, ErrMaxFirings
		}
		queue = append(queue, out...)
	}
	res.Pending = countPending(stores)
	sortOutputs(res)
	return res, nil
}
