// Package dataflow implements the dynamic dataflow model of §II-A of the
// paper: a program is a directed graph whose vertices are operations and
// whose edges carry tagged operands (value, edge label, iteration tag). A
// vertex fires as soon as all of its input operands with the same tag are
// available — there is no program counter. Control flow uses steer vertices
// (triangles in Fig. 2) and loop iterations are separated by inctag vertices
// (lozenges), exactly the TALM-style node set the paper builds on [5].
package dataflow

import (
	"fmt"
	"strings"

	"repro/internal/value"
)

// NodeID identifies a vertex in a Graph.
type NodeID int

// EdgeID identifies an edge in a Graph.
type EdgeID int

// NoNode marks an edge with no destination: tokens arriving on such an edge
// are program outputs (the paper's terminal edges, like 'm' in Fig. 1).
const NoNode NodeID = -1

// NodeKind enumerates the vertex types of the dynamic dataflow model.
type NodeKind uint8

// The vertex kinds. Const vertices are the squares of Figs. 1-2 (roots
// providing initial operands); Arith and Compare are the binary operators;
// Steer is the triangle routing a data operand by a boolean control operand;
// IncTag is the lozenge incrementing the iteration tag; Copy replicates an
// operand; UnaryOp applies a unary operator.
const (
	KindInvalid NodeKind = iota
	KindConst
	KindArith
	KindCompare
	KindSteer
	KindIncTag
	KindCopy
	KindUnaryOp
	// KindSetTag forwards its operand with the iteration tag reset to 0 —
	// the tag-manipulation instruction (TALM-style) that lets a loop's exit
	// value re-enter tag-0 straight-line computation. The compiler emits one
	// after every steer false port it routes onward.
	KindSetTag
)

func (k NodeKind) String() string {
	switch k {
	case KindConst:
		return "const"
	case KindArith:
		return "arith"
	case KindCompare:
		return "compare"
	case KindSteer:
		return "steer"
	case KindIncTag:
		return "inctag"
	case KindCopy:
		return "copy"
	case KindUnaryOp:
		return "unary"
	case KindSetTag:
		return "settag"
	default:
		return "invalid"
	}
}

// Steer output ports.
const (
	PortTrue  = 0
	PortFalse = 1
)

// Node is one vertex. Inputs are indexed ports; a port may have several
// incoming edges — in Fig. 2 the inctag vertex R11 receives either the
// initial edge A1 or the loop-back edge A11 on its single port, and the tag
// matching rule disambiguates iterations. Outputs are per-port edge lists
// (every out edge of a port receives a copy of the fired result — fanout with
// distinct edge labels, as R12 of the paper produces both B12 and B13). Steer
// nodes have two output ports (PortTrue, PortFalse); all other kinds have one
// (port 0).
type Node struct {
	ID   NodeID
	Kind NodeKind
	Name string      // diagram label, e.g. "R1"
	Op   string      // operator for Arith/Compare/UnaryOp
	Init value.Value // initial operand for Const
	// Imm, when valid, is an immediate operand fused into an Arith or
	// Compare vertex, which then has a single input port. Fig. 2's R14
	// (id1 > 0) and R18 (id1 - 1) are such vertices: their literals are part
	// of the operation, matching the single-input reactions the paper writes
	// for them. ImmLeft places the immediate as the left operand.
	Imm     value.Value
	ImmLeft bool
	In      [][]EdgeID // incoming edges by port
	Out     [][]EdgeID // output edges by port
}

// InArity returns the number of input ports of this vertex.
func (n *Node) InArity() int { return len(n.In) }

// NoEdge is the invalid edge id returned by failed Connect calls.
const NoEdge EdgeID = -1

// InArity returns the number of input ports the kind requires.
func (k NodeKind) InArity() int {
	switch k {
	case KindConst:
		return 0
	case KindArith, KindCompare, KindSteer:
		return 2
	case KindIncTag, KindCopy, KindUnaryOp, KindSetTag:
		return 1
	}
	return 0
}

// OutPorts returns the number of output ports of the kind.
func (k NodeKind) OutPorts() int {
	if k == KindSteer {
		return 2
	}
	return 1
}

// Edge is one labelled arc. From/FromPort locate the producer (From is the
// node, FromPort its output port); To/ToPort locate the consumer, or To ==
// NoNode for a program output. Label is the paper's edge label (A1, B2, m…)
// and must be unique within a graph — Algorithm 1 turns it into the multiset
// element label.
type Edge struct {
	ID       EdgeID
	Label    string
	From     NodeID
	FromPort int
	To       NodeID
	ToPort   int
}

// Graph is a dynamic dataflow program. Build one with the Add/Connect
// methods, then Validate before running.
type Graph struct {
	Name  string
	Nodes []*Node
	Edges []*Edge

	labels map[string]EdgeID
}

// NewGraph returns an empty graph.
func NewGraph(name string) *Graph {
	return &Graph{Name: name, labels: make(map[string]EdgeID)}
}

func (g *Graph) addNode(kind NodeKind, name, op string, init value.Value) NodeID {
	id := NodeID(len(g.Nodes))
	if name == "" {
		name = fmt.Sprintf("n%d", id)
	}
	n := &Node{
		ID: id, Kind: kind, Name: name, Op: op, Init: init,
		In:  make([][]EdgeID, kind.InArity()),
		Out: make([][]EdgeID, kind.OutPorts()),
	}
	g.Nodes = append(g.Nodes, n)
	return id
}

// setImm fuses an immediate operand into the last-added binary vertex,
// reducing it to a single input port.
func (g *Graph) setImm(id NodeID, imm value.Value, immLeft bool) NodeID {
	n := g.Nodes[id]
	n.Imm = imm
	n.ImmLeft = immLeft
	n.In = make([][]EdgeID, 1)
	return id
}

// AddArithImm adds an arithmetic vertex computing (input op imm), e.g.
// Fig. 2's R18 vertex id1 - 1.
func (g *Graph) AddArithImm(name, op string, imm value.Value) NodeID {
	return g.setImm(g.AddArith(name, op), imm, false)
}

// AddArithImmLeft adds an arithmetic vertex computing (imm op input).
func (g *Graph) AddArithImmLeft(name, op string, imm value.Value) NodeID {
	return g.setImm(g.AddArith(name, op), imm, true)
}

// AddCompareImm adds a comparison vertex computing (input op imm), e.g.
// Fig. 2's R14 vertex id1 > 0.
func (g *Graph) AddCompareImm(name, op string, imm value.Value) NodeID {
	return g.setImm(g.AddCompare(name, op), imm, false)
}

// AddCompareImmLeft adds a comparison vertex computing (imm op input).
func (g *Graph) AddCompareImmLeft(name, op string, imm value.Value) NodeID {
	return g.setImm(g.AddCompare(name, op), imm, true)
}

// AddConst adds a root vertex producing v once with tag 0.
func (g *Graph) AddConst(name string, v value.Value) NodeID {
	return g.addNode(KindConst, name, "", v)
}

// AddArith adds a binary arithmetic vertex (+ - * / %).
func (g *Graph) AddArith(name, op string) NodeID {
	return g.addNode(KindArith, name, op, value.Value{})
}

// AddCompare adds a binary comparison vertex (== != < <= > >=). Following
// Algorithm 1 (lines 25-27), comparison vertices emit integer 1 or 0.
func (g *Graph) AddCompare(name, op string) NodeID {
	return g.addNode(KindCompare, name, op, value.Value{})
}

// AddSteer adds a steer vertex: input port 0 is the data operand, port 1 the
// boolean control operand; output PortTrue forwards the data when the control
// is true, PortFalse when false.
func (g *Graph) AddSteer(name string) NodeID {
	return g.addNode(KindSteer, name, "", value.Value{})
}

// AddIncTag adds an inctag vertex: forwards its operand with tag+1.
func (g *Graph) AddIncTag(name string) NodeID {
	return g.addNode(KindIncTag, name, "", value.Value{})
}

// AddCopy adds an identity vertex replicating its operand to all out edges.
func (g *Graph) AddCopy(name string) NodeID {
	return g.addNode(KindCopy, name, "", value.Value{})
}

// AddUnary adds a unary operator vertex (- or !).
func (g *Graph) AddUnary(name, op string) NodeID {
	return g.addNode(KindUnaryOp, name, op, value.Value{})
}

// AddSetTag adds a tag-reset vertex: forwards its operand with tag 0.
func (g *Graph) AddSetTag(name string) NodeID {
	return g.addNode(KindSetTag, name, "", value.Value{})
}

// Connect adds an edge labelled label from output port fromPort of node from
// to input port toPort of node to.
func (g *Graph) Connect(from NodeID, fromPort int, to NodeID, toPort int, label string) (EdgeID, error) {
	if to == NoNode {
		return g.connect(from, fromPort, NoNode, 0, label)
	}
	return g.connect(from, fromPort, to, toPort, label)
}

// ConnectOut adds a terminal (output) edge from output port fromPort of from.
func (g *Graph) ConnectOut(from NodeID, fromPort int, label string) (EdgeID, error) {
	return g.connect(from, fromPort, NoNode, 0, label)
}

func (g *Graph) connect(from NodeID, fromPort int, to NodeID, toPort int, label string) (EdgeID, error) {
	if label == "" {
		return NoEdge, fmt.Errorf("dataflow: edge needs a label")
	}
	if _, dup := g.labels[label]; dup {
		return NoEdge, fmt.Errorf("dataflow: duplicate edge label %q", label)
	}
	fn, err := g.node(from)
	if err != nil {
		return NoEdge, err
	}
	if fromPort < 0 || fromPort >= len(fn.Out) {
		return NoEdge, fmt.Errorf("dataflow: node %s has no output port %d", fn.Name, fromPort)
	}
	id := EdgeID(len(g.Edges))
	e := &Edge{ID: id, Label: label, From: from, FromPort: fromPort, To: to, ToPort: toPort}
	if to != NoNode {
		tn, err := g.node(to)
		if err != nil {
			return NoEdge, err
		}
		if toPort < 0 || toPort >= len(tn.In) {
			return NoEdge, fmt.Errorf("dataflow: node %s has no input port %d", tn.Name, toPort)
		}
		tn.In[toPort] = append(tn.In[toPort], id)
	}
	fn.Out[fromPort] = append(fn.Out[fromPort], id)
	g.Edges = append(g.Edges, e)
	g.labels[label] = id
	return id, nil
}

func (g *Graph) node(id NodeID) (*Node, error) {
	if id < 0 || int(id) >= len(g.Nodes) {
		return nil, fmt.Errorf("dataflow: no node %d", id)
	}
	return g.Nodes[id], nil
}

// Node returns the node with the given id, or nil.
func (g *Graph) Node(id NodeID) *Node {
	if id < 0 || int(id) >= len(g.Nodes) {
		return nil
	}
	return g.Nodes[id]
}

// EdgeByLabel returns the edge carrying label, or nil.
func (g *Graph) EdgeByLabel(label string) *Edge {
	if id, ok := g.labels[label]; ok {
		return g.Edges[id]
	}
	return nil
}

// NodeByName returns the first node named name, or nil.
func (g *Graph) NodeByName(name string) *Node {
	for _, n := range g.Nodes {
		if n.Name == name {
			return n
		}
	}
	return nil
}

// SetConst re-parameterizes a Const vertex, so a built graph can be re-run on
// different inputs (the equivalence harness does this).
func (g *Graph) SetConst(id NodeID, v value.Value) error {
	n, err := g.node(id)
	if err != nil {
		return err
	}
	if n.Kind != KindConst {
		return fmt.Errorf("dataflow: SetConst on %s node %s", n.Kind, n.Name)
	}
	n.Init = v
	return nil
}

// OutputLabels returns the labels of all terminal edges, in edge order.
func (g *Graph) OutputLabels() []string {
	var out []string
	for _, e := range g.Edges {
		if e.To == NoNode {
			out = append(out, e.Label)
		}
	}
	return out
}

// RootNodes returns the Const vertices, the squares of the figures.
func (g *Graph) RootNodes() []*Node {
	var out []*Node
	for _, n := range g.Nodes {
		if n.Kind == KindConst {
			out = append(out, n)
		}
	}
	return out
}

// Validate checks structural well-formedness: every input port of every
// non-const vertex connected, operators known, and at least one vertex.
func (g *Graph) Validate() error {
	if len(g.Nodes) == 0 {
		return fmt.Errorf("dataflow: graph %s has no nodes", g.Name)
	}
	for _, n := range g.Nodes {
		for port, ins := range n.In {
			if len(ins) == 0 {
				return fmt.Errorf("dataflow: node %s (%s) input port %d unconnected", n.Name, n.Kind, port)
			}
		}
		switch n.Kind {
		case KindArith:
			switch n.Op {
			case "+", "-", "*", "/", "%":
			default:
				return fmt.Errorf("dataflow: node %s: unknown arithmetic operator %q", n.Name, n.Op)
			}
		case KindCompare:
			switch n.Op {
			case "==", "!=", "<", "<=", ">", ">=":
			default:
				return fmt.Errorf("dataflow: node %s: unknown comparison operator %q", n.Name, n.Op)
			}
		case KindUnaryOp:
			switch n.Op {
			case "-", "!":
			default:
				return fmt.Errorf("dataflow: node %s: unknown unary operator %q", n.Name, n.Op)
			}
		case KindConst:
			if !n.Init.IsValid() {
				return fmt.Errorf("dataflow: const node %s has no value", n.Name)
			}
		}
	}
	return nil
}

// Clone returns an independent deep copy of the graph, optionally renaming
// every edge label through rename (nil keeps labels). Used by the Gamma→
// dataflow mapper, which instantiates a reaction subgraph once per match
// (Fig. 4) and must keep labels unique across instances.
func (g *Graph) Clone(name string, rename func(label string) string) *Graph {
	c := NewGraph(name)
	for _, n := range g.Nodes {
		id := c.addNode(n.Kind, n.Name, n.Op, n.Init)
		if n.Imm.IsValid() {
			c.setImm(id, n.Imm, n.ImmLeft)
		}
	}
	for _, e := range g.Edges {
		label := e.Label
		if rename != nil {
			label = rename(label)
		}
		if _, err := c.connect(e.From, e.FromPort, e.To, e.ToPort, label); err != nil {
			// Impossible for a well-formed source graph with injective rename.
			panic(fmt.Sprintf("dataflow: clone of %s broke: %v", g.Name, err))
		}
	}
	return c
}

// String renders a compact structural description, one vertex per line.
func (g *Graph) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph %s\n", g.Name)
	for _, n := range g.Nodes {
		fmt.Fprintf(&b, "  %s %s", n.Name, n.Kind)
		if n.Op != "" {
			fmt.Fprintf(&b, " %q", n.Op)
		}
		if n.Kind == KindConst {
			fmt.Fprintf(&b, " = %s", n.Init)
		}
		var ins []string
		for _, port := range n.In {
			for _, in := range port {
				ins = append(ins, g.Edges[in].Label)
			}
		}
		if len(ins) > 0 {
			fmt.Fprintf(&b, " in(%s)", strings.Join(ins, ", "))
		}
		for port, outs := range n.Out {
			if len(outs) == 0 {
				continue
			}
			var ls []string
			for _, o := range outs {
				ls = append(ls, g.Edges[o].Label)
			}
			portName := ""
			if n.Kind == KindSteer {
				if port == PortTrue {
					portName = "true:"
				} else {
					portName = "false:"
				}
			}
			fmt.Fprintf(&b, " out(%s%s)", portName, strings.Join(ls, ", "))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
