package dataflow

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/rt"
	"repro/internal/value"
)

// buildSpinner builds a graph that never terminates: a const token enters a
// self-looping inctag, which recirculates it at an ever-increasing tag.
func buildSpinner() *Graph {
	g := NewGraph("spinner")
	c := g.AddConst("c", value.Int(1))
	inc := g.AddIncTag("inc")
	mustConnect(g, c, 0, inc, 0, "seed")
	mustConnect(g, inc, 0, inc, 0, "back")
	return g
}

func mustConnect(g *Graph, from NodeID, fromPort int, to NodeID, toPort int, label string) {
	if _, err := g.Connect(from, fromPort, to, toPort, label); err != nil {
		panic(err)
	}
}

func TestRunContextExpiredDeadlineDF(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
			defer cancel()
			<-ctx.Done()
			res, err := RunContext(ctx, buildFig1(1, 5, 3, 2), Options{Workers: workers})
			if !errors.Is(err, rt.ErrDeadline) {
				t.Errorf("err = %v, want rt.ErrDeadline", err)
			}
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Errorf("err = %v must satisfy errors.Is(_, context.DeadlineExceeded)", err)
			}
			if res == nil {
				t.Error("early exit must return a partial Result")
			}
		})
	}
}

func TestRunContextCancelMidRunDF(t *testing.T) {
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			type outcome struct {
				res *Result
				err error
			}
			done := make(chan outcome, 1)
			go func() {
				res, err := RunContext(ctx, buildSpinner(), Options{Workers: workers})
				done <- outcome{res, err}
			}()
			time.Sleep(10 * time.Millisecond) // let tokens start circulating
			start := time.Now()
			cancel()
			select {
			case o := <-done:
				if elapsed := time.Since(start); elapsed > 2*time.Second {
					t.Errorf("cancellation took %v to propagate", elapsed)
				}
				if !errors.Is(o.err, rt.ErrCanceled) || !errors.Is(o.err, context.Canceled) {
					t.Errorf("err = %v, want rt.ErrCanceled", o.err)
				}
				if o.res == nil {
					t.Fatal("canceled run must return a partial Result")
				}
				if o.res.Firings == 0 {
					t.Error("run canceled mid-flight should report the firings it made")
				}
			case <-time.After(10 * time.Second):
				t.Fatal("canceled run wedged")
			}
		})
	}
}

func TestFaultInjectorPanicRecoveredDF(t *testing.T) {
	for _, workers := range []int{1, 4} {
		res, err := Run(buildFig1(1, 5, 3, 2), Options{
			Workers:       workers,
			FaultInjector: func(site string, pe int) error { panic("kaboom") },
		})
		var perr *rt.PanicError
		if !errors.As(err, &perr) {
			t.Fatalf("workers=%d: err = %v (%T), want *rt.PanicError", workers, err, err)
		}
		if perr.Runtime != "dataflow" || perr.Site == "" {
			t.Errorf("workers=%d: panic identity = %q/%q", workers, perr.Runtime, perr.Site)
		}
		if res == nil {
			t.Errorf("workers=%d: partial Result missing", workers)
		}
	}
}

func TestMaxFiringsClassified(t *testing.T) {
	for _, workers := range []int{1, 4} {
		res, err := Run(buildSpinner(), Options{Workers: workers, MaxFirings: 100})
		if !errors.Is(err, ErrMaxFirings) || !errors.Is(err, rt.ErrMaxSteps) {
			t.Errorf("workers=%d: err = %v, want ErrMaxFirings ⊂ rt.ErrMaxSteps", workers, err)
		}
		if res == nil {
			t.Errorf("workers=%d: partial Result missing", workers)
		}
	}
}
