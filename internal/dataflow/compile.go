package dataflow

import (
	"fmt"

	"repro/internal/value"
)

// pureOp is a compiled pure-vertex computation: operator dispatch
// (value.BinaryFn/UnaryFn), immediate placement and the Algorithm 1
// compare → 0/1 control conversion are resolved once per run, so a firing
// pays a single indirect call instead of re-parsing the op string and
// re-deciding the immediate layout every activation. Semantics are exactly
// pureResult's, the tree-walking oracle TestCompiledPureOpsDifferential
// compares against.
type pureOp func(operands []value.Value) (value.Value, error)

// compilePureOps lowers every pure vertex of g; non-pure slots stay nil. The
// slice is indexed by NodeID and built per run (graphs may be extended
// between runs, so the cache's lifetime is one execution).
func compilePureOps(g *Graph) []pureOp {
	ops := make([]pureOp, len(g.Nodes))
	for i, n := range g.Nodes {
		if n.Kind.isPure() {
			ops[i] = compilePure(n)
		}
	}
	return ops
}

// compilePure lowers one Arith, Compare or UnaryOp vertex.
func compilePure(n *Node) pureOp {
	name := n.Name
	switch n.Kind {
	case KindArith, KindCompare:
		fn, ok := value.BinaryFn(n.Op)
		if !ok {
			err := fmt.Errorf("dataflow: node %s: %w", name,
				fmt.Errorf("value: unknown binary operator %q", n.Op))
			return func([]value.Value) (value.Value, error) { return value.Value{}, err }
		}
		var apply func(operands []value.Value) (value.Value, error)
		switch {
		case n.Imm.IsValid() && n.ImmLeft:
			imm := n.Imm
			apply = func(o []value.Value) (value.Value, error) { return fn(imm, o[0]) }
		case n.Imm.IsValid():
			imm := n.Imm
			apply = func(o []value.Value) (value.Value, error) { return fn(o[0], imm) }
		default:
			apply = func(o []value.Value) (value.Value, error) { return fn(o[0], o[1]) }
		}
		if n.Kind == KindCompare {
			return func(o []value.Value) (value.Value, error) {
				v, err := apply(o)
				if err != nil {
					return value.Value{}, fmt.Errorf("dataflow: node %s: %w", name, err)
				}
				// Algorithm 1 (lines 25-27): comparisons produce 1 or 0
				// control operands, not booleans.
				if v.AsBool() {
					return value.Int(1), nil
				}
				return value.Int(0), nil
			}
		}
		return func(o []value.Value) (value.Value, error) {
			v, err := apply(o)
			if err != nil {
				return value.Value{}, fmt.Errorf("dataflow: node %s: %w", name, err)
			}
			return v, nil
		}
	case KindUnaryOp:
		fn, ok := value.UnaryFn(n.Op)
		if !ok {
			err := fmt.Errorf("dataflow: node %s: %w", name,
				fmt.Errorf("value: unknown unary operator %q", n.Op))
			return func([]value.Value) (value.Value, error) { return value.Value{}, err }
		}
		return func(o []value.Value) (value.Value, error) {
			v, err := fn(o[0])
			if err != nil {
				return value.Value{}, fmt.Errorf("dataflow: node %s: %w", name, err)
			}
			return v, nil
		}
	}
	return nil
}
