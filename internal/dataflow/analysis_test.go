package dataflow

import (
	"strings"
	"testing"

	"repro/internal/value"
)

func TestCheckLoopsAcyclic(t *testing.T) {
	g := buildFig1(1, 5, 3, 2)
	if err := g.CheckLoops(); err != nil {
		t.Errorf("acyclic graph flagged: %v", err)
	}
}

func TestCheckLoopsWithIncTag(t *testing.T) {
	g := buildLoop(0, 1, 5)
	if err := g.CheckLoops(); err != nil {
		t.Errorf("disciplined loop flagged: %v", err)
	}
}

func TestCheckLoopsMissingIncTag(t *testing.T) {
	// A cycle through a copy and an adder, no inctag.
	g := NewGraph("badloop")
	c := g.AddConst("seed", value.Int(1))
	add := g.AddArithImm("add", "+", value.Int(1))
	cp := g.AddCopy("cp")
	must := func(_ EdgeID, err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(g.Connect(c, 0, add, 0, "in"))
	must(g.Connect(add, 0, cp, 0, "fwd"))
	must(g.Connect(cp, 0, add, 0, "back"))
	err := g.CheckLoops()
	if err == nil {
		t.Fatal("undisciplined cycle should be flagged")
	}
	if !strings.Contains(err.Error(), "add") || !strings.Contains(err.Error(), "cp") {
		t.Errorf("error should name the cycle members: %v", err)
	}
}

func TestCheckLoopsSelfLoop(t *testing.T) {
	// A vertex feeding itself directly.
	g := NewGraph("self")
	c := g.AddConst("seed", value.Int(1))
	add := g.AddArith("add", "+")
	must := func(_ EdgeID, err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(g.Connect(c, 0, add, 0, "in"))
	must(g.Connect(add, 0, add, 1, "self"))
	if err := g.CheckLoops(); err == nil {
		t.Error("self-loop without inctag should be flagged")
	}
	// A self-looping inctag is disciplined (it advances the tag).
	g2 := NewGraph("selfinc")
	c2 := g2.AddConst("seed", value.Int(1))
	inc := g2.AddIncTag("inc")
	must(g2.Connect(c2, 0, inc, 0, "in"))
	must(g2.Connect(inc, 0, inc, 0, "self"))
	if err := g2.CheckLoops(); err != nil {
		t.Errorf("self-looping inctag flagged: %v", err)
	}
}

func TestCheckLoopsMultipleCycles(t *testing.T) {
	// One disciplined loop plus one undisciplined loop: flagged.
	g := buildLoop(0, 1, 3)
	add := g.AddArithImm("rogue", "+", value.Int(1))
	cp := g.AddCopy("roguecp")
	c := g.AddConst("rogueseed", value.Int(0))
	must := func(_ EdgeID, err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(g.Connect(c, 0, add, 0, "rg_in"))
	must(g.Connect(add, 0, cp, 0, "rg_fwd"))
	must(g.Connect(cp, 0, add, 0, "rg_back"))
	if err := g.CheckLoops(); err == nil {
		t.Error("rogue cycle should be flagged even alongside a good one")
	}
}
