package dataflow

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/value"
)

// buildFig1 builds the Fig. 1 graph inline (the shared fixture lives in
// internal/paper, which imports this package).
func buildFig1(x, y, k, j int64) *Graph {
	g := NewGraph("fig1")
	cx := g.AddConst("x", value.Int(x))
	cy := g.AddConst("y", value.Int(y))
	ck := g.AddConst("k", value.Int(k))
	cj := g.AddConst("j", value.Int(j))
	r1 := g.AddArith("R1", "+")
	r2 := g.AddArith("R2", "*")
	r3 := g.AddArith("R3", "-")
	must := func(_ EdgeID, err error) {
		if err != nil {
			panic(err)
		}
	}
	must(g.Connect(cx, 0, r1, 0, "A1"))
	must(g.Connect(cy, 0, r1, 1, "B1"))
	must(g.Connect(ck, 0, r2, 0, "C1"))
	must(g.Connect(cj, 0, r2, 1, "D1"))
	must(g.Connect(r1, 0, r3, 0, "B2"))
	must(g.Connect(r2, 0, r3, 1, "C2"))
	must(g.ConnectOut(r3, 0, "m"))
	return g
}

func TestFig1Sequential(t *testing.T) {
	g := buildFig1(1, 5, 3, 2)
	res, err := Run(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, ok := res.Output("m")
	if !ok || m != value.Int(0) {
		t.Fatalf("m = %v (%v), want 0", m, ok)
	}
	// 4 consts + 3 operators.
	if res.Firings != 7 {
		t.Errorf("firings = %d, want 7", res.Firings)
	}
	if res.PerNode["R3"] != 1 || res.PerNode["x"] != 1 {
		t.Errorf("per-node = %v", res.PerNode)
	}
}

func TestFig1Parallel(t *testing.T) {
	for _, workers := range []int{2, 4, 8} {
		g := buildFig1(1, 5, 3, 2)
		res, err := Run(g, Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if m, ok := res.Output("m"); !ok || m != value.Int(0) {
			t.Fatalf("workers=%d: m = %v", workers, m)
		}
		if res.Firings != 7 {
			t.Errorf("workers=%d: firings = %d", workers, res.Firings)
		}
	}
}

func TestSetConstRerun(t *testing.T) {
	g := buildFig1(1, 5, 3, 2)
	if err := g.SetConst(g.NodeByName("x").ID, value.Int(10)); err != nil {
		t.Fatal(err)
	}
	res, err := Run(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m, _ := res.Output("m"); m != value.Int(9) {
		t.Errorf("m = %v, want 9", m)
	}
	if err := g.SetConst(g.NodeByName("R1").ID, value.Int(1)); err == nil {
		t.Error("SetConst on non-const should error")
	}
	if err := g.SetConst(NodeID(99), value.Int(1)); err == nil {
		t.Error("SetConst on missing node should error")
	}
}

// buildLoop builds a minimal dynamic loop: acc starts at a, adds b, n times.
// Exercises steer, inctag, immediates and multiple in-edges per port.
func buildLoop(a, b, n int64) *Graph {
	g := NewGraph("loop")
	ca := g.AddConst("a", value.Int(a))
	cn := g.AddConst("n", value.Int(n))
	incA := g.AddIncTag("incA")
	incN := g.AddIncTag("incN")
	cmp := g.AddCompareImm("cmp", ">", value.Int(0))
	stA := g.AddSteer("stA")
	stN := g.AddSteer("stN")
	add := g.AddArithImm("add", "+", value.Int(b))
	dec := g.AddArithImm("dec", "-", value.Int(1))
	must := func(_ EdgeID, err error) {
		if err != nil {
			panic(err)
		}
	}
	must(g.Connect(ca, 0, incA, 0, "a0"))
	must(g.Connect(cn, 0, incN, 0, "n0"))
	must(g.Connect(incA, 0, stA, 0, "a1"))
	must(g.Connect(incN, 0, cmp, 0, "n1"))
	must(g.Connect(incN, 0, stN, 0, "n2"))
	must(g.Connect(cmp, 0, stA, 1, "c1"))
	must(g.Connect(cmp, 0, stN, 1, "c2"))
	must(g.Connect(stA, PortTrue, add, 0, "at"))
	must(g.Connect(stN, PortTrue, dec, 0, "nt"))
	must(g.Connect(add, 0, incA, 0, "aback")) // second in-edge on incA port 0
	must(g.Connect(dec, 0, incN, 0, "nback"))
	must(g.Connect(stA, PortFalse, NoNode, 0, "out"))
	// stN false port intentionally unconnected: token discarded.
	return g
}

func TestLoopSequential(t *testing.T) {
	cases := []struct{ a, b, n, want int64 }{
		{0, 1, 5, 5},
		{10, 4, 3, 22},
		{7, 100, 0, 7},
		{7, 100, -2, 7},
	}
	for _, c := range cases {
		res, err := Run(buildLoop(c.a, c.b, c.n), Options{})
		if err != nil {
			t.Fatalf("loop(%d,%d,%d): %v", c.a, c.b, c.n, err)
		}
		out, ok := res.Output("out")
		if !ok || out != value.Int(c.want) {
			t.Errorf("loop(%d,%d,%d) = %v, want %d", c.a, c.b, c.n, out, c.want)
		}
		// The output token's tag equals iterations+1 (tokens tagged from 1).
		iters := c.n
		if iters < 0 {
			iters = 0
		}
		if tag := res.Outputs["out"][0].Tag; tag != iters+1 {
			t.Errorf("loop(%d,%d,%d) out tag = %d, want %d", c.a, c.b, c.n, tag, iters+1)
		}
	}
}

func TestLoopParallel(t *testing.T) {
	for _, workers := range []int{2, 4, 8} {
		res, err := Run(buildLoop(10, 4, 25), Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if out, _ := res.Output("out"); out != value.Int(110) {
			t.Errorf("workers=%d: out = %v, want 110", workers, out)
		}
	}
}

func TestImmediateLeft(t *testing.T) {
	// 100 / x with x = 4.
	g := NewGraph("immleft")
	cx := g.AddConst("x", value.Int(4))
	div := g.AddArithImmLeft("div", "/", value.Int(100))
	cmp := g.AddCompareImmLeft("cmp", "<", value.Int(10))
	if _, err := g.Connect(cx, 0, div, 0, "x0"); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Connect(div, 0, cmp, 0, "q"); err != nil {
		t.Fatal(err)
	}
	if _, err := g.ConnectOut(cmp, 0, "lt"); err != nil {
		t.Fatal(err)
	}
	res, err := Run(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// 10 < 25 is true → 1.
	if v, _ := res.Output("lt"); v != value.Int(1) {
		t.Errorf("lt = %v, want 1", v)
	}
}

func TestUnaryAndCopy(t *testing.T) {
	g := NewGraph("uc")
	c := g.AddConst("c", value.Int(5))
	cp := g.AddCopy("cp")
	neg := g.AddUnary("neg", "-")
	if _, err := g.Connect(c, 0, cp, 0, "in"); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Connect(cp, 0, neg, 0, "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := g.ConnectOut(cp, 0, "b"); err != nil {
		t.Fatal(err)
	}
	if _, err := g.ConnectOut(neg, 0, "negout"); err != nil {
		t.Fatal(err)
	}
	res, err := Run(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := res.Output("negout"); v != value.Int(-5) {
		t.Errorf("negout = %v", v)
	}
	if v, _ := res.Output("b"); v != value.Int(5) {
		t.Errorf("b = %v", v)
	}
}

func TestBooleanSteerControl(t *testing.T) {
	// A steer driven by a unary ! over a comparison result (int 0/1) —
	// truthiness plumbing across kinds.
	g := NewGraph("bools")
	cd := g.AddConst("d", value.Int(42))
	cc := g.AddConst("cbit", value.Int(3))
	cmp := g.AddCompareImm("cmp", "==", value.Int(4)) // 3 == 4 → 0
	not := g.AddUnary("not", "!")                     // !0 → true
	st := g.AddSteer("st")
	must := func(_ EdgeID, err error) {
		if err != nil {
			panic(err)
		}
	}
	must(g.Connect(cc, 0, cmp, 0, "c0"))
	must(g.Connect(cmp, 0, not, 0, "c1"))
	must(g.Connect(cd, 0, st, 0, "d0"))
	must(g.Connect(not, 0, st, 1, "c2"))
	must(g.ConnectOut(st, PortTrue, "t"))
	must(g.ConnectOut(st, PortFalse, "f"))
	res, err := Run(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := res.Output("t"); !ok || v != value.Int(42) {
		t.Errorf("true out = %v, %v", v, ok)
	}
	if _, ok := res.Output("f"); ok {
		t.Error("false out should be empty")
	}
}

func TestValidationErrors(t *testing.T) {
	// Empty graph.
	if err := NewGraph("empty").Validate(); err == nil {
		t.Error("empty graph should fail validation")
	}
	// Unconnected input.
	g := NewGraph("dangling")
	g.AddArith("add", "+")
	if err := g.Validate(); err == nil {
		t.Error("dangling input should fail validation")
	}
	// Bad operators.
	g2 := NewGraph("badop")
	c := g2.AddConst("c", value.Int(1))
	a := g2.AddArith("a", "**")
	if _, err := g2.Connect(c, 0, a, 0, "e1"); err != nil {
		t.Fatal(err)
	}
	if _, err := g2.Connect(c, 0, a, 1, "e2"); err != nil {
		t.Fatal(err)
	}
	if err := g2.Validate(); err == nil {
		t.Error("bad arith op should fail validation")
	}
	g3 := NewGraph("badcmp")
	c3 := g3.AddConst("c", value.Int(1))
	cm := g3.AddCompare("cm", "<>")
	if _, err := g3.Connect(c3, 0, cm, 0, "e1"); err != nil {
		t.Fatal(err)
	}
	if _, err := g3.Connect(c3, 0, cm, 1, "e2"); err != nil {
		t.Fatal(err)
	}
	if err := g3.Validate(); err == nil {
		t.Error("bad compare op should fail validation")
	}
	g4 := NewGraph("badunary")
	c4 := g4.AddConst("c", value.Int(1))
	u := g4.AddUnary("u", "~")
	if _, err := g4.Connect(c4, 0, u, 0, "e1"); err != nil {
		t.Fatal(err)
	}
	if err := g4.Validate(); err == nil {
		t.Error("bad unary op should fail validation")
	}
	// Const without value.
	g5 := NewGraph("noval")
	g5.AddConst("c", value.Value{})
	if err := g5.Validate(); err == nil {
		t.Error("const without value should fail validation")
	}
}

func TestConnectErrors(t *testing.T) {
	g := NewGraph("conn")
	c := g.AddConst("c", value.Int(1))
	a := g.AddArith("a", "+")
	if _, err := g.Connect(c, 0, a, 0, ""); err == nil {
		t.Error("empty label should error")
	}
	if _, err := g.Connect(c, 0, a, 0, "e"); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Connect(c, 0, a, 1, "e"); err == nil {
		t.Error("duplicate label should error")
	}
	if _, err := g.Connect(c, 5, a, 1, "e2"); err == nil {
		t.Error("bad from-port should error")
	}
	if _, err := g.Connect(c, 0, a, 9, "e3"); err == nil {
		t.Error("bad to-port should error")
	}
	if _, err := g.Connect(NodeID(77), 0, a, 1, "e4"); err == nil {
		t.Error("bad from-node should error")
	}
	if _, err := g.Connect(c, 0, NodeID(77), 0, "e5"); err == nil {
		t.Error("bad to-node should error")
	}
}

func TestLookups(t *testing.T) {
	g := buildFig1(1, 5, 3, 2)
	if g.EdgeByLabel("B2") == nil || g.EdgeByLabel("ZZ") != nil {
		t.Error("EdgeByLabel wrong")
	}
	if g.NodeByName("R2") == nil || g.NodeByName("nope") != nil {
		t.Error("NodeByName wrong")
	}
	if g.Node(0) == nil || g.Node(NodeID(99)) != nil || g.Node(NoNode) != nil {
		t.Error("Node bounds wrong")
	}
	outs := g.OutputLabels()
	if len(outs) != 1 || outs[0] != "m" {
		t.Errorf("OutputLabels = %v", outs)
	}
	roots := g.RootNodes()
	if len(roots) != 4 {
		t.Errorf("roots = %d", len(roots))
	}
}

func TestGraphString(t *testing.T) {
	s := buildFig1(1, 5, 3, 2).String()
	for _, want := range []string{"graph fig1", "R1 arith \"+\"", "in(A1, B1)", "out(B2)", "x const = 1"} {
		if !strings.Contains(s, want) {
			t.Errorf("String missing %q:\n%s", want, s)
		}
	}
	g := buildLoop(1, 1, 1)
	ls := g.String()
	if !strings.Contains(ls, "true:") || !strings.Contains(ls, "false:") {
		t.Errorf("steer ports not rendered:\n%s", ls)
	}
}

func TestClone(t *testing.T) {
	g := buildLoop(10, 4, 3)
	c := g.Clone("copy", func(l string) string { return l + "_1" })
	if c.EdgeByLabel("out_1") == nil {
		t.Fatal("renamed edge missing")
	}
	res, err := Run(c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := res.Output("out_1"); v != value.Int(22) {
		t.Errorf("clone out = %v, want 22", v)
	}
	// Clone preserves immediates (dec keeps working) — covered by result.
	// nil rename keeps labels.
	c2 := g.Clone("copy2", nil)
	if c2.EdgeByLabel("out") == nil {
		t.Error("nil-rename clone lost labels")
	}
	// Mutating clone consts must not affect the original.
	if err := c2.SetConst(c2.NodeByName("a").ID, value.Int(0)); err != nil {
		t.Fatal(err)
	}
	if g.NodeByName("a").Init != value.Int(10) {
		t.Error("clone shares node state with original")
	}
}

func TestRuntimeErrors(t *testing.T) {
	// Division by zero.
	g := NewGraph("divzero")
	c1 := g.AddConst("c1", value.Int(1))
	div := g.AddArithImm("div", "/", value.Int(0))
	if _, err := g.Connect(c1, 0, div, 0, "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := g.ConnectOut(div, 0, "q"); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(g, Options{}); err == nil {
		t.Error("sequential divide by zero should error")
	}
	if _, err := Run(g, Options{Workers: 4}); err == nil {
		t.Error("parallel divide by zero should error")
	}
	// Steer with non-truthy control.
	g2 := NewGraph("badsteer")
	cd := g2.AddConst("d", value.Int(1))
	cs := g2.AddConst("s", value.Str("oops"))
	st := g2.AddSteer("st")
	must := func(_ EdgeID, err error) {
		if err != nil {
			panic(err)
		}
	}
	must(g2.Connect(cd, 0, st, 0, "d0"))
	must(g2.Connect(cs, 0, st, 1, "c0"))
	must(g2.ConnectOut(st, PortTrue, "t"))
	if _, err := Run(g2, Options{}); err == nil {
		t.Error("string steer control should error")
	}
	// Type error in comparison.
	g3 := NewGraph("badcmp")
	cc := g3.AddConst("c", value.Str("s"))
	cm := g3.AddCompareImm("cm", "<", value.Int(0))
	must(g3.Connect(cc, 0, cm, 0, "x"))
	must(g3.ConnectOut(cm, 0, "y"))
	if _, err := Run(g3, Options{}); err == nil {
		t.Error("string < int should error")
	}
}

func TestMaxFirings(t *testing.T) {
	// An infinite loop: inctag feeding itself through a copy.
	g := NewGraph("spin")
	c := g.AddConst("c", value.Int(1))
	inc := g.AddIncTag("inc")
	cp := g.AddCopy("cp")
	must := func(_ EdgeID, err error) {
		if err != nil {
			panic(err)
		}
	}
	must(g.Connect(c, 0, inc, 0, "seed"))
	must(g.Connect(inc, 0, cp, 0, "fwd"))
	must(g.Connect(cp, 0, inc, 0, "back"))
	_, err := Run(g, Options{MaxFirings: 100})
	if !errors.Is(err, ErrMaxFirings) {
		t.Errorf("sequential err = %v, want ErrMaxFirings", err)
	}
	_, err = Run(g, Options{Workers: 4, MaxFirings: 100})
	if !errors.Is(err, ErrMaxFirings) {
		t.Errorf("parallel err = %v, want ErrMaxFirings", err)
	}
}

func TestValidateFailsRunEarly(t *testing.T) {
	g := NewGraph("bad")
	g.AddArith("a", "+")
	if _, err := Run(g, Options{}); err == nil {
		t.Error("Run should validate first")
	}
}

func TestResultOutputMissing(t *testing.T) {
	r := newResult(1)
	if _, ok := r.Output("nope"); ok {
		t.Error("missing output should report !ok")
	}
}

func TestNodeKindStrings(t *testing.T) {
	kinds := []NodeKind{KindConst, KindArith, KindCompare, KindSteer, KindIncTag, KindCopy, KindUnaryOp}
	for _, k := range kinds {
		if k.String() == "invalid" {
			t.Errorf("kind %d renders invalid", k)
		}
	}
	if KindInvalid.String() != "invalid" || NodeKind(99).String() != "invalid" {
		t.Error("invalid kinds should render invalid")
	}
}

func TestTokenQueuePerPort(t *testing.T) {
	// Two tokens with the same tag on the same port must queue, not clobber:
	// deliver both halves of two matches out of order.
	g := NewGraph("queue")
	add := g.AddArith("add", "+")
	c1 := g.AddConst("c1", value.Int(1))
	c2 := g.AddConst("c2", value.Int(2))
	must := func(_ EdgeID, err error) {
		if err != nil {
			panic(err)
		}
	}
	// Both constants feed port 0 via distinct edges; port 1 is fed by a copy
	// of each through another const pair.
	c3 := g.AddConst("c3", value.Int(10))
	c4 := g.AddConst("c4", value.Int(20))
	must(g.Connect(c1, 0, add, 0, "l1"))
	must(g.Connect(c2, 0, add, 0, "l2"))
	must(g.Connect(c3, 0, add, 1, "r1"))
	must(g.Connect(c4, 0, add, 1, "r2"))
	must(g.ConnectOut(add, 0, "s"))
	res, err := Run(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	outs := res.Outputs["s"]
	if len(outs) != 2 {
		t.Fatalf("outputs = %v, want 2 sums", outs)
	}
	sum := outs[0].Val.AsInt() + outs[1].Val.AsInt()
	if sum != 33 { // (1+2) + (10+20) pairwise in some order
		t.Errorf("total = %d, want 33", sum)
	}
}

// Property: the loop graph computes a + b*n for arbitrary small inputs, in
// both schedulers.
func TestQuickLoopComputesAffine(t *testing.T) {
	f := func(a, b int16, n uint8) bool {
		iters := int64(n % 12)
		g := buildLoop(int64(a), int64(b), iters)
		res, err := Run(g, Options{})
		if err != nil {
			return false
		}
		want := int64(a) + int64(b)*iters
		out, ok := res.Output("out")
		if !ok || out.AsInt() != want {
			return false
		}
		gp := buildLoop(int64(a), int64(b), iters)
		resP, err := Run(gp, Options{Workers: 4})
		if err != nil {
			return false
		}
		outP, okP := resP.Output("out")
		return okP && outP.AsInt() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
