package dataflow

import (
	"testing"

	"repro/internal/telemetry"
)

// checkDFTelemetryAgrees holds the registry counters to exact agreement with
// the Result of the run — the dataflow side of the differential contract.
func checkDFTelemetryAgrees(t *testing.T, rec *telemetry.Recorder, res *Result) {
	t.Helper()
	reg := rec.Metrics
	if got := reg.CounterValue("dataflow.firings"); got != res.Firings {
		t.Errorf("counter dataflow.firings = %d, result says %d", got, res.Firings)
	}
	if got := reg.CounterValue("dataflow.memo_hits"); got != res.MemoHits {
		t.Errorf("counter dataflow.memo_hits = %d, result says %d", got, res.MemoHits)
	}
	for name, want := range res.PerNode {
		if got := reg.CounterValue("dataflow.fired." + name); got != want {
			t.Errorf("counter dataflow.fired.%s = %d, result says %d", name, got, want)
		}
	}
}

func TestTelemetryDifferentialSequential(t *testing.T) {
	rec := telemetry.New(0)
	g := buildFig1(1, 5, 3, 2)
	res, err := Run(g, Options{Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	checkDFTelemetryAgrees(t, rec, res)
	if res.Firings != 7 {
		t.Fatalf("firings = %d, want 7", res.Firings)
	}
	firings := 0
	for _, tr := range rec.Snapshot() {
		for _, e := range tr.Events {
			if e.Kind == telemetry.KindFiring {
				firings++
			}
		}
	}
	if int64(firings) != res.Firings {
		t.Errorf("firing events = %d, result.Firings = %d", firings, res.Firings)
	}
}

func TestTelemetryDifferentialParallel(t *testing.T) {
	for _, workers := range []int{2, 4} {
		rec := telemetry.New(0)
		g := buildLoop(1, 1, 40)
		res, err := Run(g, Options{Workers: workers, Recorder: rec})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		checkDFTelemetryAgrees(t, rec, res)
		if res.Firings == 0 {
			t.Fatalf("workers=%d: no firings", workers)
		}
	}
}

func TestTelemetryDisabledSinkIsNil(t *testing.T) {
	g := buildFig1(1, 5, 3, 2)
	if s := newDFSink(Options{}, g, 0); s != nil {
		t.Fatalf("sink without recorder = %+v, want nil", s)
	}
	var nilSink *dfSink
	nilSink.firing(0, "n", nilSink.begin(), 0, 0)
	nilSink.memoHit()
}
