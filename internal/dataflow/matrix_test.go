package dataflow

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sort"
	"sync"
	"testing"

	"repro/internal/rt"
	"repro/internal/telemetry"
	"repro/internal/value"
)

// testMemo is a minimal in-package Memo for the matrix engine's memo path.
type testMemo map[string]value.Value

func (m testMemo) LookupFiring(key string) (value.Value, bool) { v, ok := m[key]; return v, ok }
func (m testMemo) StoreFiring(key string, v value.Value)       { m[key] = v }

// recTracer collects firing records for order-insensitive comparison.
type recTracer struct {
	mu   sync.Mutex
	recs []string
}

func (r *recTracer) RecordFiring(name string, consumed, produced []string) {
	c := append([]string(nil), consumed...)
	p := append([]string(nil), produced...)
	sort.Strings(c)
	sort.Strings(p)
	r.mu.Lock()
	r.recs = append(r.recs, fmt.Sprintf("%s|%v|%v", name, c, p))
	r.mu.Unlock()
}

func (r *recTracer) sorted() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := append([]string(nil), r.recs...)
	sort.Strings(out)
	return out
}

func TestMatrixFig1(t *testing.T) {
	g := buildFig1(1, 5, 3, 2)
	res, err := Run(g, Options{Engine: EngineMatrix})
	if err != nil {
		t.Fatal(err)
	}
	if m, ok := res.Output("m"); !ok || m != value.Int(0) {
		t.Fatalf("m = %v (%v), want 0", m, ok)
	}
	if res.Firings != 7 {
		t.Errorf("firings = %d, want 7", res.Firings)
	}
	if res.Workers != 1 {
		t.Errorf("workers = %d, want 1", res.Workers)
	}
	// Fig. 1 is two levels deep past the consts: tick 1 fires {R1, R2},
	// tick 2 fires {R3}.
	if res.Ticks != 2 {
		t.Errorf("ticks = %d, want 2", res.Ticks)
	}
}

func TestMatrixLoop(t *testing.T) {
	cases := []struct{ a, b, n, want int64 }{
		{0, 1, 5, 5},
		{10, 4, 3, 22},
		{7, 100, 0, 7},
		{7, 100, -2, 7},
	}
	for _, c := range cases {
		res, err := Run(buildLoop(c.a, c.b, c.n), Options{Engine: EngineMatrix})
		if err != nil {
			t.Fatalf("loop(%d,%d,%d): %v", c.a, c.b, c.n, err)
		}
		out, ok := res.Output("out")
		if !ok || out != value.Int(c.want) {
			t.Errorf("loop(%d,%d,%d) = %v, want %d", c.a, c.b, c.n, out, c.want)
		}
	}
}

// matrixAgreesWithSequential runs g under both deterministic engines and
// holds every observable Result field to exact agreement. Graphs are rebuilt
// by the caller per engine when they carry state (consts are re-read each
// run, so sharing is fine here).
func matrixAgreesWithSequential(t *testing.T, name string, build func() *Graph, mkOpt func() Options) {
	t.Helper()
	seqOpt, matOpt := mkOpt(), mkOpt()
	matOpt.Engine = EngineMatrix
	seqRes, seqErr := Run(build(), seqOpt)
	matRes, matErr := Run(build(), matOpt)
	if (seqErr == nil) != (matErr == nil) {
		t.Fatalf("%s: seq err = %v, matrix err = %v", name, seqErr, matErr)
	}
	if seqErr != nil {
		return
	}
	if !reflect.DeepEqual(seqRes.Outputs, matRes.Outputs) {
		t.Errorf("%s: outputs differ:\nseq    %v\nmatrix %v", name, seqRes.Outputs, matRes.Outputs)
	}
	if seqRes.Firings != matRes.Firings {
		t.Errorf("%s: firings seq %d matrix %d", name, seqRes.Firings, matRes.Firings)
	}
	if !reflect.DeepEqual(seqRes.PerNode, matRes.PerNode) {
		t.Errorf("%s: per-node seq %v matrix %v", name, seqRes.PerNode, matRes.PerNode)
	}
	if seqRes.MemoHits != matRes.MemoHits {
		t.Errorf("%s: memo hits seq %d matrix %d", name, seqRes.MemoHits, matRes.MemoHits)
	}
	if seqRes.Pending != matRes.Pending {
		t.Errorf("%s: pending seq %d matrix %d", name, seqRes.Pending, matRes.Pending)
	}
}

func TestMatrixDifferentialVsSequential(t *testing.T) {
	noOpt := func() Options { return Options{} }
	matrixAgreesWithSequential(t, "fig1", func() *Graph { return buildFig1(1, 5, 3, 2) }, noOpt)
	matrixAgreesWithSequential(t, "fig1-alt", func() *Graph { return buildFig1(-3, 12, 7, 0) }, noOpt)
	for _, n := range []int64{0, 1, 5, 40} {
		n := n
		matrixAgreesWithSequential(t, fmt.Sprintf("loop-%d", n),
			func() *Graph { return buildLoop(3, 9, n) }, noOpt)
	}
	matrixAgreesWithSequential(t, "loop-memo", func() *Graph { return buildLoop(2, 2, 10) },
		func() Options { return Options{Memo: testMemo{}} })
}

func TestMatrixMemoHits(t *testing.T) {
	// Two same-tag matches with identical operands on one vertex: the second
	// firing must hit the memo, exactly as under the sequential engine.
	build := func() *Graph {
		g := NewGraph("memoq")
		add := g.AddArith("add", "+")
		c1 := g.AddConst("c1", value.Int(1))
		c2 := g.AddConst("c2", value.Int(1))
		c3 := g.AddConst("c3", value.Int(10))
		c4 := g.AddConst("c4", value.Int(10))
		must := func(_ EdgeID, err error) {
			if err != nil {
				panic(err)
			}
		}
		must(g.Connect(c1, 0, add, 0, "l1"))
		must(g.Connect(c2, 0, add, 0, "l2"))
		must(g.Connect(c3, 0, add, 1, "r1"))
		must(g.Connect(c4, 0, add, 1, "r2"))
		must(g.ConnectOut(add, 0, "s"))
		return g
	}
	res, err := Run(build(), Options{Engine: EngineMatrix, Memo: testMemo{}})
	if err != nil {
		t.Fatal(err)
	}
	if res.MemoHits != 1 {
		t.Errorf("memo hits = %d, want 1", res.MemoHits)
	}
	matrixAgreesWithSequential(t, "memoq", build, func() Options { return Options{Memo: testMemo{}} })
}

func TestMatrixTracerDifferential(t *testing.T) {
	// The set of (vertex, consumed, produced) records is engine-independent;
	// only the firing order differs.
	seqTr, matTr := &recTracer{}, &recTracer{}
	if _, err := Run(buildLoop(1, 3, 6), Options{Tracer: seqTr}); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(buildLoop(1, 3, 6), Options{Engine: EngineMatrix, Tracer: matTr}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seqTr.sorted(), matTr.sorted()) {
		t.Errorf("trace records differ:\nseq    %v\nmatrix %v", seqTr.sorted(), matTr.sorted())
	}
}

func TestMatrixMaxFirings(t *testing.T) {
	g := NewGraph("spin")
	c := g.AddConst("c", value.Int(1))
	inc := g.AddIncTag("inc")
	cp := g.AddCopy("cp")
	must := func(_ EdgeID, err error) {
		if err != nil {
			panic(err)
		}
	}
	must(g.Connect(c, 0, inc, 0, "seed"))
	must(g.Connect(inc, 0, cp, 0, "fwd"))
	must(g.Connect(cp, 0, inc, 0, "back"))
	res, err := Run(g, Options{Engine: EngineMatrix, MaxFirings: 100})
	if !errors.Is(err, ErrMaxFirings) {
		t.Errorf("err = %v, want ErrMaxFirings", err)
	}
	if res == nil || res.Firings != 101 {
		t.Errorf("partial result firings = %+v, want 101", res)
	}
}

func TestMatrixCancelMidRun(t *testing.T) {
	// Cancel from inside a firing (via the fault injector) on an otherwise
	// infinite loop: the apply pass must observe ctx and stop promptly.
	g := buildLoop(0, 1, 1<<40)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	fired := 0
	res, err := RunContext(ctx, g, Options{
		Engine: EngineMatrix,
		FaultInjector: func(site string, pe int) error {
			fired++
			if fired == 50 {
				cancel()
			}
			return nil
		},
	})
	if !errors.Is(err, rt.ErrCanceled) {
		t.Fatalf("err = %v, want rt.ErrCanceled", err)
	}
	if res == nil || res.Firings == 0 {
		t.Fatalf("partial result missing: %+v", res)
	}
}

func TestMatrixFaultInjected(t *testing.T) {
	boom := errors.New("boom")
	g := buildFig1(1, 5, 3, 2)
	res, err := Run(g, Options{
		Engine: EngineMatrix,
		FaultInjector: func(site string, pe int) error {
			if site == "R3" {
				return boom
			}
			return nil
		},
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if res == nil || res.Firings == 0 {
		t.Fatalf("partial result missing: %+v", res)
	}
}

func TestMatrixPanicRecovered(t *testing.T) {
	g := buildFig1(1, 5, 3, 2)
	_, err := Run(g, Options{
		Engine: EngineMatrix,
		FaultInjector: func(site string, pe int) error {
			if site == "R2" {
				panic("matrix boom")
			}
			return nil
		},
	})
	var pe *rt.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *rt.PanicError", err)
	}
	if pe.Site != "R2" {
		t.Errorf("panic site = %q, want R2", pe.Site)
	}
}

func TestMatrixRuntimeError(t *testing.T) {
	g := NewGraph("divzero")
	c1 := g.AddConst("c1", value.Int(1))
	div := g.AddArithImm("div", "/", value.Int(0))
	if _, err := g.Connect(c1, 0, div, 0, "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := g.ConnectOut(div, 0, "q"); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(g, Options{Engine: EngineMatrix}); err == nil {
		t.Error("matrix divide by zero should error")
	}
}

func TestMatrixPendingTokens(t *testing.T) {
	// A steer whose false branch feeds one port of a binary vertex that never
	// completes: the stranded operand must be reported as Pending, matching
	// the sequential engine.
	build := func() *Graph {
		g := NewGraph("strand")
		cd := g.AddConst("d", value.Int(1))
		cc := g.AddConst("c", value.Int(1)) // control true
		st := g.AddSteer("st")
		add := g.AddArith("add", "+")
		c2 := g.AddConst("c2", value.Int(5))
		must := func(_ EdgeID, err error) {
			if err != nil {
				panic(err)
			}
		}
		must(g.Connect(cd, 0, st, 0, "d0"))
		must(g.Connect(cc, 0, st, 1, "c0"))
		must(g.Connect(st, PortTrue, NoNode, 0, "t"))
		must(g.Connect(st, PortFalse, add, 0, "f"))
		must(g.Connect(c2, 0, add, 1, "r"))
		must(g.ConnectOut(add, 0, "s"))
		return g
	}
	res, err := Run(build(), Options{Engine: EngineMatrix})
	if err != nil {
		t.Fatal(err)
	}
	if res.Pending != 1 {
		t.Errorf("pending = %d, want 1 (stranded add operand)", res.Pending)
	}
	matrixAgreesWithSequential(t, "strand", build, func() Options { return Options{} })
}

func TestMatrixUnknownEngineRejected(t *testing.T) {
	_, err := Run(buildFig1(1, 5, 3, 2), Options{Engine: "quantum"})
	if !errors.Is(err, rt.ErrInvalid) {
		t.Errorf("err = %v, want rt.ErrInvalid", err)
	}
}

func TestTelemetryDifferentialMatrix(t *testing.T) {
	rec := telemetry.New(0)
	g := buildLoop(1, 1, 40)
	res, err := Run(g, Options{Engine: EngineMatrix, Recorder: rec})
	if err != nil {
		t.Fatal(err)
	}
	checkDFTelemetryAgrees(t, rec, res)
	reg := rec.Metrics
	if got := reg.CounterValue("dataflow.ticks"); got != res.Ticks {
		t.Errorf("counter dataflow.ticks = %d, result says %d", got, res.Ticks)
	}
	if res.Ticks == 0 {
		t.Error("matrix run reported zero ticks")
	}
	// The fired_per_tick histogram observed exactly one sample per tick, and
	// the samples sum to the non-const firings (consts fire before tick 1).
	h := reg.Histogram("dataflow.fired_per_tick")
	if h.Count() != res.Ticks {
		t.Errorf("fired_per_tick count = %d, ticks = %d", h.Count(), res.Ticks)
	}
	consts := int64(len(g.RootNodes()))
	if h.Sum() != res.Firings-consts {
		t.Errorf("fired_per_tick sum = %d, want %d", h.Sum(), res.Firings-consts)
	}
}
