package dataflow

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/rt"
)

// runParallel executes the graph on a pool of processing elements. Each PE
// owns the vertices whose id hashes to it — mirroring how dataflow runtimes
// virtualize PEs over cores (§II-A) — so a vertex's matching store is only
// ever touched by its owner and needs no lock. Tokens are routed between PEs
// through unbounded mailboxes.
//
// Termination is detected by in-flight accounting: the counter is incremented
// before a token is enqueued and decremented only after the token's delivery
// (including enqueueing any tokens the firing produced). When the counter
// reaches zero no token exists or can appear, which is the dataflow analogue
// of Gamma's stable state.
//
// Cancellation propagates through a watcher goroutine that turns ctx.Done()
// into fail + mailbox close: parked PEs wake immediately, and a failed engine
// drops queued tokens instead of firing them, so a canceled run returns in
// delivery time even with a deep backlog.
func runParallel(ctx context.Context, g *Graph, opt Options) (*Result, error) {
	workers := opt.Workers
	eng := &parEngine{
		g:     g,
		opt:   opt,
		ops:   compilePureOps(g),
		boxes: make([]*mailbox, workers),
		done:  make(chan struct{}),
	}
	for i := range eng.boxes {
		eng.boxes[i] = newMailbox()
	}
	stores := make([]store, len(g.Nodes))
	for i := range stores {
		stores[i] = make(store)
	}

	watchDone := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			eng.fail(rt.FromContext(ctx.Err()))
		case <-watchDone:
		}
	}()

	results := make([]*Result, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		results[w] = newResult(workers)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			eng.peLoop(w, stores, results[w])
		}(w)
	}

	// Inject the const tokens. Count them first so the in-flight counter
	// cannot transiently hit zero between sends.
	seed := newResult(workers)
	toks := initialTokens(g, opt, seed, newDFSink(opt, g, -1), &eng.sched)
	if len(toks) == 0 {
		eng.shutdown()
	} else {
		eng.inflight.Add(int64(len(toks)))
		for _, t := range toks {
			eng.route(t)
		}
	}
	wg.Wait()
	close(watchDone)

	total := seed
	total.Pending = countPending(stores)
	for _, r := range results {
		total.Firings += r.Firings
		total.MemoHits += r.MemoHits
		for k, v := range r.PerNode {
			total.PerNode[k] += v
		}
		for k, vs := range r.Outputs {
			total.Outputs[k] = append(total.Outputs[k], vs...)
		}
	}
	sortOutputs(total)
	if err := eng.err.Load(); err != nil {
		return total, err.(error)
	}
	return total, nil
}

type parEngine struct {
	g        *Graph
	opt      Options
	ops      []pureOp
	boxes    []*mailbox
	inflight atomic.Int64
	firings  atomic.Int64
	// sched numbers firings for Options.Schedule. A firing's number is drawn
	// before its output tokens are routed, and a consumer's firing starts
	// after popping those tokens from a mailbox (a mutex handoff), so the
	// numbers linearize the PE pool's nondeterministic interleaving.
	sched  atomic.Uint64
	err    atomic.Value // error
	done   chan struct{}
	closed sync.Once
}

func (e *parEngine) shutdown() {
	e.closed.Do(func() {
		close(e.done)
		for _, b := range e.boxes {
			b.close()
		}
	})
}

func (e *parEngine) fail(err error) {
	select {
	case <-e.done:
		// Already terminated — a cancellation losing the race with successful
		// completion must not turn the result into an error.
		return
	default:
	}
	e.err.CompareAndSwap(nil, err)
	e.shutdown()
}

// owner maps a vertex to its PE.
func (e *parEngine) owner(n NodeID) int { return int(n) % len(e.boxes) }

// route enqueues a token whose in-flight slot is already counted. Tokens for
// a vertex go to its owning PE; terminal tokens have no destination vertex,
// so they are spread over PEs by edge id.
func (e *parEngine) route(t Token) {
	edge := e.g.Edges[t.Edge]
	var pe int
	if edge.To == NoNode {
		pe = int(edge.ID) % len(e.boxes)
	} else {
		pe = e.owner(edge.To)
	}
	e.boxes[pe].push(t)
}

func (e *parEngine) peLoop(id int, stores []store, res *Result) {
	box := e.boxes[id]
	ts := newDFSink(e.opt, e.g, id)
	for {
		tok, ok := box.pop()
		if !ok {
			return
		}
		e.process(id, tok, stores, res, ts)
	}
}

func (e *parEngine) process(pe int, tok Token, stores []store, res *Result, ts *dfSink) {
	defer func() {
		if e.inflight.Add(-1) == 0 {
			e.shutdown()
		}
	}()
	site := ""
	defer func() {
		// The PE pool's panic barrier: one faulty vertex operation fails the
		// run with its identity attached instead of crashing the process or
		// desynchronizing the in-flight accounting (the outer defer still
		// runs, so termination detection stays exact).
		if rec := recover(); rec != nil {
			e.fail(rt.NewPanicError("dataflow", site, pe, rec))
		}
	}()
	if e.err.Load() != nil {
		// Failed or canceled: drain without firing so shutdown is prompt
		// even with a deep token backlog.
		return
	}
	edge := e.g.Edges[tok.Edge]
	if edge.To == NoNode {
		res.Outputs[edge.Label] = append(res.Outputs[edge.Label], TaggedValue{Tag: tok.Tag, Val: tok.Val})
		return
	}
	n := e.g.Nodes[edge.To]
	key := ""
	if needKeys(e.opt) {
		key = tokenKey(e.g, tok)
	}
	operands, keys, ready := stores[edge.To].deliver(n, edge.ToPort, tok.Tag, tok.Val, key)
	if !ready {
		return
	}
	site = n.Name
	if e.opt.FaultInjector != nil {
		if ferr := e.opt.FaultInjector(n.Name, pe); ferr != nil {
			e.fail(ferr)
			return
		}
	}
	mh0 := res.MemoHits
	t0 := ts.begin()
	out, err := fire(e.g, n, tok.Tag, operands, e.ops, e.opt, res)
	if err != nil {
		e.fail(err)
		return
	}
	traceFiring(e.g, e.opt, n.Name, keys, out)
	// Recorded before the outputs are routed below: the seq precedes the
	// tokens' visibility to any consumer, so the numbers linearize.
	recordStep(e.g, e.opt, &e.sched, n.Name, keys, out)
	res.Firings++
	res.PerNode[n.Name]++
	if ts != nil {
		if res.MemoHits > mh0 {
			ts.memoHit()
		}
		ts.firing(n.ID, n.Name, t0, e.inflight.Load()+int64(len(out)), len(out))
	}
	if e.opt.MaxFirings > 0 && e.firings.Add(1) > e.opt.MaxFirings {
		e.fail(ErrMaxFirings)
		return
	}
	if len(out) > 0 {
		e.inflight.Add(int64(len(out)))
		for _, t := range out {
			e.route(t)
		}
	}
}

// mailbox is an unbounded MPSC token queue with blocking pop. Unbounded
// buffering is essential: cyclic graphs (loops through inctag) would deadlock
// bounded channels when a PE blocks sending to itself.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	q      []Token
	closed bool
}

func newMailbox() *mailbox {
	b := &mailbox{}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *mailbox) push(t Token) {
	b.mu.Lock()
	if !b.closed {
		b.q = append(b.q, t)
		b.cond.Signal()
	}
	b.mu.Unlock()
}

// pop blocks until a token is available or the mailbox is closed. Remaining
// tokens are drained even after close so in-flight accounting stays exact.
func (b *mailbox) pop() (Token, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for len(b.q) == 0 && !b.closed {
		b.cond.Wait()
	}
	if len(b.q) == 0 {
		return Token{}, false
	}
	t := b.q[0]
	b.q = b.q[1:]
	return t, true
}

func (b *mailbox) close() {
	b.mu.Lock()
	b.closed = true
	b.cond.Broadcast()
	b.mu.Unlock()
}
