package gammalang

import (
	"fmt"
	"strings"

	"repro/internal/gamma"
	"repro/internal/multiset"
)

// Format renders a program in the paper's listing style. The output parses
// back to an equivalent program (Format∘ParseProgram is a fixpoint), which is
// what the conversion pipeline uses to emit Gamma source from dataflow
// graphs.
func Format(p *gamma.Program) string {
	var b strings.Builder
	for i, r := range p.Reactions {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(FormatReaction(r))
	}
	return b.String()
}

// FormatReaction renders one reaction in the paper's listing style.
func FormatReaction(r *gamma.Reaction) string {
	var b strings.Builder
	indent := ""
	if r.Name != "" {
		fmt.Fprintf(&b, "%s = ", r.Name)
		indent = strings.Repeat(" ", len(r.Name)+3)
	}
	b.WriteString("replace ")
	for i, p := range r.Patterns {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(p.String())
	}
	b.WriteByte('\n')
	for i, br := range r.Branches {
		b.WriteString(indent + "by ")
		if len(br.Products) == 0 {
			b.WriteString("0")
		} else {
			for j, tpl := range br.Products {
				if j > 0 {
					b.WriteString(", ")
				}
				b.WriteString(tpl.String())
			}
		}
		b.WriteByte('\n')
		if br.Cond != nil {
			b.WriteString(indent + "if " + br.Cond.String() + "\n")
		} else if i > 0 {
			b.WriteString(indent + "else\n")
		}
	}
	return b.String()
}

// FormatFile renders a full source file: the init multiset (when present),
// every reaction, and the composition expression (when it is not the default
// single parallel stage).
func FormatFile(f *File) string {
	var b strings.Builder
	if f.Init != nil {
		b.WriteString("init " + f.Init.String() + "\n\n")
	}
	for i, r := range f.Reactions {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(FormatReaction(r))
	}
	if len(f.Stages) > 1 {
		var stages []string
		for _, st := range f.Stages {
			stages = append(stages, strings.Join(st, " | "))
		}
		b.WriteString("\n" + strings.Join(stages, " ; ") + "\n")
	}
	return b.String()
}

// NewFile bundles a program and an initial multiset into a File for
// formatting or execution, with the default all-parallel composition.
func NewFile(p *gamma.Program, init *multiset.Multiset) *File {
	var names []string
	for _, r := range p.Reactions {
		names = append(names, r.Name)
	}
	return &File{Init: init, Reactions: p.Reactions, Stages: [][]string{names}}
}
