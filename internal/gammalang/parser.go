// Package gammalang implements the Gamma source language of the paper's
// Fig. 3 free-context grammar: reactions written as
//
//	Name = replace <pattern>, ... by <products> [if <cond>] [by <products> else]
//
// plus two conveniences the paper uses in prose: the parenthesized form of
// Eq. 2 ("replace (x, y) by x where x < y", with "where" a synonym for "if"),
// and an optional composition expression over reaction names using the
// paper's ';' (sequential) and '|' (parallel) operators. A file may also
// declare its initial multiset with an "init { ... }" statement.
package gammalang

import (
	"fmt"

	"repro/internal/expr"
	"repro/internal/gamma"
	"repro/internal/multiset"
	"repro/internal/rt"
	"repro/internal/value"
)

// File is a parsed Gamma source file.
type File struct {
	// Init is the declared initial multiset, or nil if the file has none.
	Init *multiset.Multiset
	// Reactions holds every reaction in declaration order.
	Reactions []*gamma.Reaction
	// Stages is the composition: each stage is a parallel group of reaction
	// names, stages run sequentially. When the file has no composition
	// expression, Stages is a single stage containing every reaction.
	Stages [][]string
}

// Program returns the file's reactions as one parallel program, the
// composition used by all of the paper's examples. It errors when the file
// declares a multi-stage composition (use Plan then).
func (f *File) Program(name string) (*gamma.Program, error) {
	if len(f.Stages) > 1 {
		return nil, fmt.Errorf("gammalang: file composes %d sequential stages; use Plan", len(f.Stages))
	}
	return gamma.NewProgram(name, f.Reactions...)
}

// Plan returns the file's composition as an executable gamma.Plan.
func (f *File) Plan(name string) (*gamma.Plan, error) {
	byName := make(map[string]*gamma.Reaction, len(f.Reactions))
	for _, r := range f.Reactions {
		byName[r.Name] = r
	}
	var stages []*gamma.Program
	for i, stage := range f.Stages {
		var rs []*gamma.Reaction
		for _, n := range stage {
			r, ok := byName[n]
			if !ok {
				return nil, fmt.Errorf("gammalang: composition names unknown reaction %s", n)
			}
			rs = append(rs, r)
		}
		p, err := gamma.NewProgram(fmt.Sprintf("%s.%d", name, i), rs...)
		if err != nil {
			return nil, err
		}
		stages = append(stages, p)
	}
	return gamma.Sequence(stages...), nil
}

// ParseFile parses a complete Gamma source file. Every error it returns is
// classified under rt.ErrParse (messages keep their line/column detail), so
// callers can route syntax problems with errors.Is rather than string checks.
func ParseFile(src string) (*File, error) {
	p, err := expr.NewParser(expr.NewLexer(src))
	if err != nil {
		return nil, rt.Mark(rt.ErrParse, err)
	}
	fp := &fileParser{p: p}
	f, err := fp.parseFile()
	if err != nil {
		return nil, rt.Mark(rt.ErrParse, err)
	}
	return f, nil
}

// ParseProgram parses src and returns its reactions as one parallel program.
func ParseProgram(name, src string) (*gamma.Program, error) {
	f, err := ParseFile(src)
	if err != nil {
		return nil, err
	}
	return f.Program(name)
}

// MustParseProgram is ParseProgram that panics on error, for fixtures.
func MustParseProgram(name, src string) *gamma.Program {
	p, err := ParseProgram(name, src)
	if err != nil {
		panic(err)
	}
	return p
}

// ParseReaction parses a single reaction.
func ParseReaction(src string) (*gamma.Reaction, error) {
	f, err := ParseFile(src)
	if err != nil {
		return nil, err
	}
	if len(f.Reactions) != 1 {
		return nil, rt.Mark(rt.ErrParse, fmt.Errorf("gammalang: expected exactly one reaction, found %d", len(f.Reactions)))
	}
	return f.Reactions[0], nil
}

// isKeyword reports whether name is reserved by the grammar.
func isKeyword(name string) bool {
	switch name {
	case "replace", "by", "if", "else", "where", "init", "and", "or", "not", "true", "false":
		return true
	}
	return false
}

type fileParser struct {
	p *expr.Parser
}

func (fp *fileParser) errf(format string, args ...any) error {
	t := fp.p.Tok()
	return &expr.SyntaxError{Line: t.Line, Col: t.Col, Msg: fmt.Sprintf(format, args...)}
}

func (fp *fileParser) at(kind expr.TokenKind, text string) bool {
	t := fp.p.Tok()
	return t.Kind == kind && (text == "" || t.Text == text)
}

func (fp *fileParser) atKeyword(kw string) bool { return fp.at(expr.TokIdent, kw) }

func (fp *fileParser) advance() error { return fp.p.Advance() }

func (fp *fileParser) expect(kind expr.TokenKind, text string) error {
	if !fp.at(kind, text) {
		if text != "" {
			return fp.errf("expected %q, found %s", text, fp.p.Tok())
		}
		return fp.errf("expected %s, found %s", kind, fp.p.Tok())
	}
	return fp.advance()
}

func (fp *fileParser) parseFile() (*File, error) {
	f := &File{}
	var composition [][]string
	for {
		t := fp.p.Tok()
		switch {
		case t.Kind == expr.TokEOF:
			if composition != nil {
				f.Stages = composition
			} else {
				var all []string
				for _, r := range f.Reactions {
					all = append(all, r.Name)
				}
				f.Stages = [][]string{all}
			}
			return f, nil
		case fp.atKeyword("init"):
			if f.Init != nil {
				return nil, fp.errf("duplicate init declaration")
			}
			if err := fp.advance(); err != nil {
				return nil, err
			}
			m, err := fp.parseMultiset()
			if err != nil {
				return nil, err
			}
			f.Init = m
		case fp.atKeyword("replace"):
			r, err := fp.parseReaction(fmt.Sprintf("R%d", len(f.Reactions)+1))
			if err != nil {
				return nil, err
			}
			f.Reactions = append(f.Reactions, r)
		case t.Kind == expr.TokIdent:
			// Either "Name = replace ..." or a composition expression.
			name := t.Text
			if isKeyword(name) {
				return nil, fp.errf("unexpected keyword %q", name)
			}
			if err := fp.advance(); err != nil {
				return nil, err
			}
			if fp.at(expr.TokOp, "=") {
				if err := fp.advance(); err != nil {
					return nil, err
				}
				if !fp.atKeyword("replace") {
					return nil, fp.errf("expected 'replace' after %s =", name)
				}
				r, err := fp.parseReaction(name)
				if err != nil {
					return nil, err
				}
				f.Reactions = append(f.Reactions, r)
				continue
			}
			if composition != nil {
				return nil, fp.errf("only one composition expression allowed")
			}
			comp, err := fp.parseComposition(name)
			if err != nil {
				return nil, err
			}
			composition = comp
		default:
			return nil, fp.errf("expected reaction, init or composition, found %s", t)
		}
	}
}

// parseComposition parses "R1 | R2 ; R3 | R4 ; ..." after its first name.
func (fp *fileParser) parseComposition(first string) ([][]string, error) {
	stages := [][]string{{first}}
	for {
		switch {
		case fp.at(expr.TokPipe, ""):
			if err := fp.advance(); err != nil {
				return nil, err
			}
		case fp.at(expr.TokSemi, ""):
			if err := fp.advance(); err != nil {
				return nil, err
			}
			stages = append(stages, nil)
		default:
			if len(stages[len(stages)-1]) == 0 {
				return nil, fp.errf("composition stage is empty")
			}
			return stages, nil
		}
		t := fp.p.Tok()
		if t.Kind != expr.TokIdent || isKeyword(t.Text) {
			return nil, fp.errf("expected reaction name in composition, found %s", t)
		}
		stages[len(stages)-1] = append(stages[len(stages)-1], t.Text)
		if err := fp.advance(); err != nil {
			return nil, err
		}
	}
}

// parseReaction parses from the 'replace' keyword.
func (fp *fileParser) parseReaction(name string) (*gamma.Reaction, error) {
	if err := fp.expect(expr.TokIdent, "replace"); err != nil {
		return nil, err
	}
	r := &gamma.Reaction{Name: name}
	// Replace list: bracketed patterns, or the Eq. 2 parenthesized form of
	// bare variables.
	if fp.at(expr.TokLParen, "") {
		if err := fp.advance(); err != nil {
			return nil, err
		}
		for {
			fld, err := fp.parseField()
			if err != nil {
				return nil, err
			}
			r.Patterns = append(r.Patterns, gamma.Pattern{fld})
			if fp.at(expr.TokComma, "") {
				if err := fp.advance(); err != nil {
					return nil, err
				}
				continue
			}
			break
		}
		if err := fp.expect(expr.TokRParen, ""); err != nil {
			return nil, err
		}
	} else {
		for {
			pat, err := fp.parsePattern()
			if err != nil {
				return nil, err
			}
			r.Patterns = append(r.Patterns, pat)
			if fp.at(expr.TokComma, "") {
				if err := fp.advance(); err != nil {
					return nil, err
				}
				continue
			}
			break
		}
	}
	// By clauses.
	for fp.atKeyword("by") {
		if err := fp.advance(); err != nil {
			return nil, err
		}
		br := gamma.Branch{}
		products, err := fp.parseProducts()
		if err != nil {
			return nil, err
		}
		br.Products = products
		switch {
		case fp.atKeyword("if") || fp.atKeyword("where"):
			if err := fp.advance(); err != nil {
				return nil, err
			}
			cond, err := fp.p.ParseExpr()
			if err != nil {
				return nil, err
			}
			br.Cond = cond
		case fp.atKeyword("else"):
			if err := fp.advance(); err != nil {
				return nil, err
			}
			// Cond stays nil: always-enabled branch.
		default:
			if len(r.Branches) > 0 {
				return nil, fp.errf("a later by clause needs 'if' or 'else'")
			}
		}
		r.Branches = append(r.Branches, br)
	}
	if len(r.Branches) == 0 {
		return nil, fp.errf("reaction %s has no by clause", name)
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return r, nil
}

// parsePattern parses a bracketed replace-list entry: [id1, 'A1', v].
func (fp *fileParser) parsePattern() (gamma.Pattern, error) {
	if err := fp.expect(expr.TokLBrack, ""); err != nil {
		return nil, err
	}
	var pat gamma.Pattern
	for {
		fld, err := fp.parseField()
		if err != nil {
			return nil, err
		}
		pat = append(pat, fld)
		if fp.at(expr.TokComma, "") {
			if err := fp.advance(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	if err := fp.expect(expr.TokRBrack, ""); err != nil {
		return nil, err
	}
	return pat, nil
}

// parseField parses one pattern position: a variable name or a literal.
func (fp *fileParser) parseField() (gamma.Field, error) {
	t := fp.p.Tok()
	switch t.Kind {
	case expr.TokIdent:
		switch t.Text {
		case "true", "false":
			if err := fp.advance(); err != nil {
				return gamma.Field{}, err
			}
			return gamma.FLit(value.Bool(t.Text == "true")), nil
		case "replace", "by", "if", "else", "where", "init":
			return gamma.Field{}, fp.errf("keyword %q cannot be a pattern variable", t.Text)
		}
		if err := fp.advance(); err != nil {
			return gamma.Field{}, err
		}
		return gamma.FVar(t.Text), nil
	case expr.TokNumber:
		v, err := value.Parse(t.Text)
		if err != nil {
			return gamma.Field{}, fp.errf("bad literal %q: %v", t.Text, err)
		}
		if err := fp.advance(); err != nil {
			return gamma.Field{}, err
		}
		return gamma.FLit(v), nil
	case expr.TokString:
		if err := fp.advance(); err != nil {
			return gamma.Field{}, err
		}
		return gamma.FLit(value.Str(t.Text)), nil
	case expr.TokOp:
		if t.Text == "-" {
			if err := fp.advance(); err != nil {
				return gamma.Field{}, err
			}
			n := fp.p.Tok()
			if n.Kind != expr.TokNumber {
				return gamma.Field{}, fp.errf("expected number after '-', found %s", n)
			}
			v, err := value.Parse("-" + n.Text)
			if err != nil {
				return gamma.Field{}, fp.errf("bad literal -%q: %v", n.Text, err)
			}
			if err := fp.advance(); err != nil {
				return gamma.Field{}, err
			}
			return gamma.FLit(v), nil
		}
	}
	return gamma.Field{}, fp.errf("expected pattern field, found %s", t)
}

// parseProducts parses a by clause's product list: the literal 0 (produce
// nothing), a list of bracketed templates, or a single bare expression (the
// Eq. 2 form "by x").
func (fp *fileParser) parseProducts() ([]gamma.Template, error) {
	t := fp.p.Tok()
	if t.Kind == expr.TokNumber && t.Text == "0" {
		if err := fp.advance(); err != nil {
			return nil, err
		}
		return nil, nil
	}
	if t.Kind != expr.TokLBrack {
		// Bare expression product: a 1-tuple.
		e, err := fp.p.ParseExpr()
		if err != nil {
			return nil, err
		}
		return []gamma.Template{{e}}, nil
	}
	var products []gamma.Template
	for {
		tpl, err := fp.parseTemplate()
		if err != nil {
			return nil, err
		}
		products = append(products, tpl)
		if fp.at(expr.TokComma, "") {
			if err := fp.advance(); err != nil {
				return nil, err
			}
			if !fp.at(expr.TokLBrack, "") {
				return nil, fp.errf("expected '[' to start next product, found %s", fp.p.Tok())
			}
			continue
		}
		break
	}
	return products, nil
}

func (fp *fileParser) parseTemplate() (gamma.Template, error) {
	if err := fp.expect(expr.TokLBrack, ""); err != nil {
		return nil, err
	}
	var tpl gamma.Template
	for {
		e, err := fp.p.ParseExpr()
		if err != nil {
			return nil, err
		}
		tpl = append(tpl, e)
		if fp.at(expr.TokComma, "") {
			if err := fp.advance(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	if err := fp.expect(expr.TokRBrack, ""); err != nil {
		return nil, err
	}
	return tpl, nil
}

// parseMultiset parses "{ [lit, ...], ... }" into a multiset.
func (fp *fileParser) parseMultiset() (*multiset.Multiset, error) {
	if err := fp.expect(expr.TokLBrace, ""); err != nil {
		return nil, err
	}
	m := multiset.New()
	if fp.at(expr.TokRBrace, "") {
		return m, fp.advance()
	}
	for {
		if err := fp.expect(expr.TokLBrack, ""); err != nil {
			return nil, err
		}
		var tup multiset.Tuple
		for {
			fld, err := fp.parseField()
			if err != nil {
				return nil, err
			}
			if fld.Var != "" {
				return nil, fp.errf("multiset elements must be literal; found variable %s", fld.Var)
			}
			tup = append(tup, fld.Lit)
			if fp.at(expr.TokComma, "") {
				if err := fp.advance(); err != nil {
					return nil, err
				}
				continue
			}
			break
		}
		if err := fp.expect(expr.TokRBrack, ""); err != nil {
			return nil, err
		}
		m.Add(tup)
		if fp.at(expr.TokComma, "") {
			if err := fp.advance(); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	if err := fp.expect(expr.TokRBrace, ""); err != nil {
		return nil, err
	}
	return m, nil
}
