package gammalang

import (
	"strings"
	"testing"

	"repro/internal/gamma"
	"repro/internal/multiset"
	"repro/internal/paper"
	"repro/internal/value"
)

// TestPaperListingsParse is experiment E7: every Gamma listing in the paper
// parses under the Fig. 3 grammar.
func TestPaperListingsParse(t *testing.T) {
	listings := map[string]struct {
		src       string
		reactions int
	}{
		"example1": {paper.Example1GammaListing, 3},
		"example2": {paper.Example2GammaListing, 9},
		"reduced1": {paper.ReducedExample1Listing, 1},
		"reduced2": {paper.ReducedExample2Listing, 6},
		"minElem":  {paper.MinElementListing, 1},
	}
	for name, l := range listings {
		f, err := ParseFile(l.src)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if len(f.Reactions) != l.reactions {
			t.Errorf("%s: %d reactions, want %d", name, len(f.Reactions), l.reactions)
		}
	}
}

func TestEq2ParenthesizedForm(t *testing.T) {
	// Eq. 2 verbatim, with "where" and bare products.
	r, err := ParseReaction(`R = replace (x, y) by x where x < y`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Arity() != 2 || len(r.Branches) != 1 || r.Branches[0].Cond == nil {
		t.Fatalf("parsed shape wrong: %s", r)
	}
	m := multiset.New(
		multiset.New1(value.Int(4)), multiset.New1(value.Int(9)), multiset.New1(value.Int(2)),
	)
	if _, err := gamma.Run(gamma.MustProgram("min", r), m, gamma.Options{}); err != nil {
		t.Fatal(err)
	}
	if m.Len() != 1 || !m.Contains(multiset.New1(value.Int(2))) {
		t.Fatalf("min result = %s", m)
	}
}

// TestExample1GammaListing runs the paper's R1–R3 listing on the paper's
// initial multiset and checks m = 0.
func TestExample1GammaListing(t *testing.T) {
	prog, err := ParseProgram("example1", paper.Example1GammaListing)
	if err != nil {
		t.Fatal(err)
	}
	m, err := multiset.Parse(paper.Example1InitialMultiset)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := gamma.Run(prog, m, gamma.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 1 || !m.Contains(multiset.Pair(value.Int(0), "m")) {
		t.Fatalf("result = %s, want {[0, 'm']}", m)
	}
	if stats.Steps != 3 {
		t.Errorf("steps = %d, want 3", stats.Steps)
	}
}

// TestExample2GammaListing runs the paper's R11–R19 loop listing: the
// listing discards all operands on exit, so the stable multiset is empty.
func TestExample2GammaListing(t *testing.T) {
	prog, err := ParseProgram("example2", paper.Example2GammaListing)
	if err != nil {
		t.Fatal(err)
	}
	m, err := multiset.Parse(paper.Example2InitialMultiset(paper.Example2X, paper.Example2Y, paper.Example2Z))
	if err != nil {
		t.Fatal(err)
	}
	stats, err := gamma.Run(prog, m, gamma.Options{MaxSteps: 10000})
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 0 {
		t.Fatalf("result = %s, want empty multiset", m)
	}
	// z=3 iterations: per iteration 9 firings (R11,R12,R13,R14,R15,R16,R17,
	// R18,R19), final pass fires R11-R17 then discards = 7. Just sanity-check
	// the count is in a plausible band and every reaction fired.
	if stats.Steps < 20 {
		t.Errorf("suspiciously few steps: %d", stats.Steps)
	}
	for _, name := range []string{"R11", "R12", "R13", "R14", "R15", "R16", "R17", "R18", "R19"} {
		if stats.Fired[name] == 0 {
			t.Errorf("reaction %s never fired", name)
		}
	}
}

// TestExample2GammaListingParallel checks the loop listing under the
// nondeterministic parallel runtime.
func TestExample2GammaListingParallel(t *testing.T) {
	prog, err := ParseProgram("example2", paper.Example2GammaListing)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= 3; seed++ {
		m, err := multiset.Parse(paper.Example2InitialMultiset(10, 4, 5))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := gamma.Run(prog, m, gamma.Options{Workers: 4, Seed: seed, MaxSteps: 100000}); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if m.Len() != 0 {
			t.Fatalf("seed %d: result = %s, want empty", seed, m)
		}
	}
}

// TestReducedExample1 runs Rd1 and checks it computes the same m.
func TestReducedExample1(t *testing.T) {
	prog, err := ParseProgram("reduced1", paper.ReducedExample1Listing)
	if err != nil {
		t.Fatal(err)
	}
	m, err := multiset.Parse(paper.Example1InitialMultiset)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := gamma.Run(prog, m, gamma.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 1 || !m.Contains(multiset.Pair(value.Int(0), "m")) {
		t.Fatalf("result = %s, want {[0, 'm']}", m)
	}
	// The whole computation is one reaction firing — the granularity
	// trade-off of §III-A3.
	if stats.Steps != 1 {
		t.Errorf("steps = %d, want 1", stats.Steps)
	}
}

// TestReducedExample2 runs Rd11–Rd16. Reproduction note (recorded in
// EXPERIMENTS.md): unlike the full nine-reaction program, the paper's
// reduced program stabilizes with two residual elements — on the final
// iteration Rd14 discards A12/B14, so no A13 exists and Rd16 can never
// consume the leftover B16 and C12. The residual C12 carries the loop's
// final x, so the reduction incidentally makes the result observable.
func TestReducedExample2(t *testing.T) {
	prog, err := ParseProgram("reduced2", paper.ReducedExample2Listing)
	if err != nil {
		t.Fatal(err)
	}
	x, y, z := int64(10), int64(4), int64(3)
	m, err := multiset.Parse(paper.Example2InitialMultiset(x, y, z))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gamma.Run(prog, m, gamma.Options{MaxSteps: 10000}); err != nil {
		t.Fatal(err)
	}
	finalTag := z + 1
	wantX := paper.Example2Result(x, y, z)
	if m.Len() != 2 {
		t.Fatalf("result = %s, want 2 residual elements", m)
	}
	if !m.Contains(multiset.IntElem(wantX, "C12", finalTag)) {
		t.Errorf("result %s missing [%d, 'C12', %d] (final x)", m, wantX, finalTag)
	}
	if !m.Contains(multiset.IntElem(0, "B16", finalTag)) {
		t.Errorf("result %s missing [0, 'B16', %d]", m, finalTag)
	}
}

func TestInitDeclaration(t *testing.T) {
	f, err := ParseFile(`
init {[1, 'A1'], [5, 'B1'], [1, 'A1']}
R1 = replace [id1, 'A1'], [id2, 'B1'] by [id1 + id2, 'B2']
`)
	if err != nil {
		t.Fatal(err)
	}
	if f.Init == nil || f.Init.Len() != 3 || f.Init.Count(multiset.Pair(value.Int(1), "A1")) != 2 {
		t.Fatalf("init = %v", f.Init)
	}
	if _, err := ParseFile("init {}"); err != nil {
		t.Errorf("empty init should parse: %v", err)
	}
	if _, err := ParseFile("init {[1]} init {[2]}"); err == nil {
		t.Error("duplicate init should error")
	}
	if _, err := ParseFile("init {[x]}"); err == nil {
		t.Error("variable in init should error")
	}
	// Negative and boolean literals in init.
	f2, err := ParseFile("init {[-3, 'L', 0], [true, 'B']}")
	if err != nil {
		t.Fatal(err)
	}
	if !f2.Init.Contains(multiset.IntElem(-3, "L", 0)) || !f2.Init.Contains(multiset.Pair(value.Bool(true), "B")) {
		t.Errorf("init literals = %s", f2.Init)
	}
}

func TestComposition(t *testing.T) {
	src := `
A = replace [x, 'p'] by [x * 2, 'q']
B = replace [x, 'q'], [y, 'q'] by [x + y, 'q']
A | B
`
	f, err := ParseFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Stages) != 1 || len(f.Stages[0]) != 2 {
		t.Fatalf("stages = %v", f.Stages)
	}
	srcSeq := strings.Replace(src, "A | B", "A ; B", 1)
	f2, err := ParseFile(srcSeq)
	if err != nil {
		t.Fatal(err)
	}
	if len(f2.Stages) != 2 {
		t.Fatalf("stages = %v", f2.Stages)
	}
	if _, err := f2.Program("p"); err == nil {
		t.Error("Program() on multi-stage file should error")
	}
	plan, err := f2.Plan("p")
	if err != nil {
		t.Fatal(err)
	}
	m := multiset.New(
		multiset.Pair(value.Int(1), "p"), multiset.Pair(value.Int(2), "p"), multiset.Pair(value.Int(3), "p"),
	)
	if _, err := plan.Run(m, gamma.Options{}); err != nil {
		t.Fatal(err)
	}
	if m.Len() != 1 || !m.Contains(multiset.Pair(value.Int(12), "q")) {
		t.Fatalf("plan result = %s, want {[12, 'q']}", m)
	}
	// Unknown name in composition.
	if _, err := ParseFile("A = replace [x, 'p'] by 0 if x > 0\nA | C"); err != nil {
		t.Fatal(err)
	} else {
		f3, _ := ParseFile("A = replace [x, 'p'] by 0 if x > 0\nA | C")
		if _, err := f3.Plan("p"); err == nil {
			t.Error("unknown reaction in composition should error at Plan")
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"replace",                              // no patterns
		"replace [x]",                          // no by
		"replace [x] by [y]",                   // unbound product var (validate)
		"R = replace [x] by [x] by [x]",        // second by without if/else
		"R = replace [by] by 0",                // keyword as variable
		"R = replace [x] by [x] if",            // missing condition
		"R = replace [x by [x]",                // missing ]
		"R = replace (x y) by x",               // missing comma
		"R = replace [x] by [x], q",            // non-bracket after comma
		"R = 5",                                // junk after name
		"R = replace [x] by [x] if x > 0 else", // else after if on same branch? -> parse: by..if, then 'else' token alone
		"init [1]",                             // init without braces
		"init {[1}",                            // bad tuple
		"init {[1],}",                          // trailing comma
		"@",                                    // lex error
		"R = replace [-q] by 0",                // '-' then non-number
		"A = replace [x] by 0 if x > 0\nA | |", // empty composition element
		"A = replace [x] by 0 if x > 0\nA | B\nC | D", // two compositions
	}
	for _, src := range bad {
		if _, err := ParseFile(src); err == nil {
			t.Errorf("ParseFile(%q) should error", src)
		}
	}
	if _, err := ParseReaction(paper.Example1GammaListing); err == nil {
		t.Error("ParseReaction on 3 reactions should error")
	}
	if _, err := ParseProgram("p", "A = replace [x] by 0 if x > 0\nB = replace [x] by 0 if x > 0\nA ; B"); err == nil {
		t.Error("ParseProgram on multi-stage should error")
	}
}

func TestMustParseProgramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParseProgram should panic on bad source")
		}
	}()
	MustParseProgram("p", "replace")
}

func TestUnnamedReactionsGetNames(t *testing.T) {
	f, err := ParseFile(`
replace [x, 'a'] by [x, 'b']
replace [x, 'b'] by [x, 'c']
`)
	if err != nil {
		t.Fatal(err)
	}
	if f.Reactions[0].Name != "R1" || f.Reactions[1].Name != "R2" {
		t.Errorf("auto names = %s, %s", f.Reactions[0].Name, f.Reactions[1].Name)
	}
}

// TestFormatRoundTrip checks Format output reparses to a program with
// identical behaviour and identical re-rendering (canonical form fixpoint).
func TestFormatRoundTrip(t *testing.T) {
	for name, src := range map[string]string{
		"example1": paper.Example1GammaListing,
		"example2": paper.Example2GammaListing,
		"reduced2": paper.ReducedExample2Listing,
		"minElem":  paper.MinElementListing,
	} {
		p1, err := ParseProgram(name, src)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		text1 := Format(p1)
		p2, err := ParseProgram(name, text1)
		if err != nil {
			t.Fatalf("%s: reparse of formatted text failed: %v\n%s", name, err, text1)
		}
		text2 := Format(p2)
		if text1 != text2 {
			t.Errorf("%s: format not canonical:\n--- first\n%s\n--- second\n%s", name, text1, text2)
		}
	}
}

func TestFormatFileRoundTrip(t *testing.T) {
	prog := MustParseProgram("example1", paper.Example1GammaListing)
	init, err := multiset.Parse(paper.Example1InitialMultiset)
	if err != nil {
		t.Fatal(err)
	}
	file := NewFile(prog, init)
	text := FormatFile(file)
	f2, err := ParseFile(text)
	if err != nil {
		t.Fatalf("reparse failed: %v\n%s", err, text)
	}
	if !f2.Init.Equal(init) {
		t.Errorf("init changed: %s vs %s", f2.Init, init)
	}
	if len(f2.Reactions) != 3 {
		t.Errorf("reactions = %d", len(f2.Reactions))
	}
	// Multi-stage file keeps its composition.
	f3, err := ParseFile("A = replace [x] by 0 if x > 0\nB = replace [x] by 0 if x < 0\nA ; B")
	if err != nil {
		t.Fatal(err)
	}
	text3 := FormatFile(f3)
	if !strings.Contains(text3, "A ; B") {
		t.Errorf("composition lost:\n%s", text3)
	}
	f4, err := ParseFile(text3)
	if err != nil || len(f4.Stages) != 2 {
		t.Errorf("reparse of composed file: %v, stages %v", err, f4.Stages)
	}
}

// TestListingEquivalenceExample1 cross-checks the hand-translated runtime
// fixture against the parsed listing: both must map the same inputs to the
// same stable multiset.
func TestListingEquivalenceExample1(t *testing.T) {
	prog := MustParseProgram("example1", paper.Example1GammaListing)
	for _, in := range [][4]int64{{1, 5, 3, 2}, {0, 0, 0, 0}, {-4, 2, 7, 1}, {100, -50, 5, 5}} {
		m := multiset.New(
			multiset.Pair(value.Int(in[0]), "A1"),
			multiset.Pair(value.Int(in[1]), "B1"),
			multiset.Pair(value.Int(in[2]), "C1"),
			multiset.Pair(value.Int(in[3]), "D1"),
		)
		if _, err := gamma.Run(prog, m, gamma.Options{}); err != nil {
			t.Fatal(err)
		}
		want := (in[0] + in[1]) - (in[2] * in[3])
		if m.Len() != 1 || !m.Contains(multiset.Pair(value.Int(want), "m")) {
			t.Errorf("inputs %v: result = %s, want {[%d, 'm']}", in, m, want)
		}
	}
}
