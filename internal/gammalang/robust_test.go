package gammalang

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/paper"
)

// TestParserNeverPanics drives the parser with mutated fragments of valid
// sources and pure noise: every input must return cleanly (parse or error),
// never panic.
func TestParserNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	corpus := []string{
		paper.Example1GammaListing,
		paper.Example2GammaListing,
		paper.ReducedExample2Listing,
		paper.MinElementListing,
		"init {[1, 'a', 0]}\nR = replace [x, 'a', v] by [x, 'b', v + 1]\nR",
	}
	tokens := []string{"replace", "by", "if", "else", "where", "init", "[", "]", "{", "}",
		"(", ")", ",", ";", "|", "=", "==", "+", "-", "'a'", "x", "0", "1", "v"}
	parseQuietly := func(src string) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("parser panicked on %q: %v", src, r)
			}
		}()
		_, _ = ParseFile(src)
	}
	// Mutations: delete, duplicate or replace random chunks.
	for i := 0; i < 300; i++ {
		src := corpus[rng.Intn(len(corpus))]
		switch rng.Intn(3) {
		case 0: // delete a span
			if len(src) > 10 {
				a := rng.Intn(len(src) - 5)
				b := a + rng.Intn(len(src)-a)
				src = src[:a] + src[b:]
			}
		case 1: // inject a token
			pos := rng.Intn(len(src))
			src = src[:pos] + " " + tokens[rng.Intn(len(tokens))] + " " + src[pos:]
		case 2: // swap two halves
			mid := rng.Intn(len(src))
			src = src[mid:] + src[:mid]
		}
		parseQuietly(src)
	}
	// Pure token soup.
	for i := 0; i < 200; i++ {
		var b strings.Builder
		for j := 0; j < rng.Intn(30); j++ {
			b.WriteString(tokens[rng.Intn(len(tokens))])
			b.WriteByte(' ')
		}
		parseQuietly(b.String())
	}
}
