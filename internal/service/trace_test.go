package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/paper"
	"repro/internal/schema"
)

func getStats(t *testing.T, ts *httptest.Server, id string) (*http.Response, *schema.RunStats) {
	t.Helper()
	hres, err := ts.Client().Get(ts.URL + "/v1/runs/" + id + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer hres.Body.Close()
	body, err := io.ReadAll(hres.Body)
	if err != nil {
		t.Fatal(err)
	}
	if hres.StatusCode != http.StatusOK {
		return hres, nil
	}
	st, err := schema.DecodeRunStats(body)
	if err != nil {
		t.Fatalf("decoding stats: %v\n%s", err, body)
	}
	return hres, st
}

func getTrace(t *testing.T, ts *httptest.Server, id, format string) (*http.Response, []byte) {
	t.Helper()
	url := ts.URL + "/v1/runs/" + id + "/trace"
	if format != "" {
		url += "?format=" + format
	}
	hres, err := ts.Client().Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer hres.Body.Close()
	body, err := io.ReadAll(hres.Body)
	if err != nil {
		t.Fatal(err)
	}
	return hres, body
}

// TestTraceLifecycle drives one traced sequential Gamma run end to end: the
// stats payload must report the provenance firing count equal to the wire
// Steps (the paper's firing-history equivalence over HTTP), and all three
// trace formats must serve with their Content-Types.
func TestTraceLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{Pool: 2})
	req := schema.NewGammaRequest(paper.Example1GammaListing, paper.Example1InitialMultiset,
		schema.RunSpec{Engine: schema.EngineSeq, MaxSteps: 10000, Trace: true})
	hres, resp := postRun(t, ts, req, "?wait=true", "alice")
	if hres.StatusCode != http.StatusOK || resp.State != schema.StateDone {
		t.Fatalf("traced run: status %d, state %s", hres.StatusCode, resp.State)
	}

	sres, st := getStats(t, ts, resp.ID)
	if sres.StatusCode != http.StatusOK {
		t.Fatalf("stats status = %d", sres.StatusCode)
	}
	if !st.Traced || st.Tenant != "alice" || st.Engine != schema.EngineSeq {
		t.Fatalf("stats coordinates wrong: %+v", st)
	}
	if st.Steps != resp.Result.Steps {
		t.Errorf("stats steps %d != response steps %d", st.Steps, resp.Result.Steps)
	}
	if st.Firings != st.Steps {
		t.Errorf("provenance firings %d != wire steps %d: the trace lost or invented firings", st.Firings, st.Steps)
	}
	if st.Counters["gamma.steps"] != st.Steps {
		t.Errorf("traced registry gamma.steps = %d, want %d", st.Counters["gamma.steps"], st.Steps)
	}
	if st.TraceEvents == 0 || st.TraceDropped != 0 {
		t.Errorf("trace ring: events %d dropped %d, want >0 and 0", st.TraceEvents, st.TraceDropped)
	}

	for format, wantCT := range map[string]string{
		"":         "application/json",
		"perfetto": "application/json",
		"jsonl":    "application/jsonl",
		"dot":      "text/vnd.graphviz",
	} {
		tres, body := getTrace(t, ts, resp.ID, format)
		if tres.StatusCode != http.StatusOK {
			t.Fatalf("trace %q status = %d", format, tres.StatusCode)
		}
		if ct := tres.Header.Get("Content-Type"); !strings.HasPrefix(ct, wantCT) {
			t.Errorf("trace %q Content-Type = %q, want %s", format, ct, wantCT)
		}
		if len(body) == 0 {
			t.Errorf("trace %q is empty", format)
		}
		switch format {
		case "", "perfetto":
			var tr struct {
				TraceEvents []json.RawMessage `json:"traceEvents"`
			}
			if err := json.Unmarshal(body, &tr); err != nil || len(tr.TraceEvents) == 0 {
				t.Errorf("perfetto trace broken (%v):\n%.200s", err, body)
			}
		case "dot":
			if !bytes.Contains(body, []byte("digraph")) {
				t.Errorf("dot trace is not a digraph:\n%.200s", body)
			}
		}
	}

	// An unknown format is a 400, not a silent default.
	if tres, _ := getTrace(t, ts, resp.ID, "pprof"); tres.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown trace format status = %d, want 400", tres.StatusCode)
	}
}

// TestTracedDataflowRun checks the trace surface covers the dataflow kind
// too: firings == steps on the matrix engine's trace.
func TestTracedDataflowRun(t *testing.T) {
	_, ts := newTestServer(t, Config{Pool: 1})
	graph := "graph g\nconst x = 3\nconst y = 4\narith add +\nedge a x:0 -> add:0\nedge b y:0 -> add:1\nedge m add:0 -> out\n"
	req := schema.NewGraphRequest(graph, schema.RunSpec{MaxSteps: 100, Trace: true})
	hres, resp := postRun(t, ts, req, "?wait=true", "")
	if hres.StatusCode != http.StatusOK || resp.State != schema.StateDone {
		t.Fatalf("dataflow run: status %d, state %s (%+v)", hres.StatusCode, resp.State, resp.Error)
	}
	_, st := getStats(t, ts, resp.ID)
	if st == nil || !st.Traced {
		t.Fatalf("dataflow stats missing or untraced: %+v", st)
	}
	if st.Firings != st.Steps || st.Steps == 0 {
		t.Errorf("dataflow firings %d != steps %d (or zero)", st.Firings, st.Steps)
	}
}

// TestTraceErrorSurface pins the failure modes: 404 for unknown runs and for
// runs submitted without the trace knob; 409 while the run still executes.
func TestTraceErrorSurface(t *testing.T) {
	_, ts := newTestServer(t, Config{Pool: 1})

	if tres, _ := getTrace(t, ts, "r-999", ""); tres.StatusCode != http.StatusNotFound {
		t.Errorf("unknown run trace status = %d, want 404", tres.StatusCode)
	}
	if sres, _ := getStats(t, ts, "r-999"); sres.StatusCode != http.StatusNotFound {
		t.Errorf("unknown run stats status = %d, want 404", sres.StatusCode)
	}

	// An untraced run has stats (traced=false) but no trace.
	req := schema.NewGammaRequest(paper.Example1GammaListing, paper.Example1InitialMultiset,
		schema.RunSpec{MaxSteps: 10000})
	_, resp := postRun(t, ts, req, "?wait=true", "")
	if tres, _ := getTrace(t, ts, resp.ID, ""); tres.StatusCode != http.StatusNotFound {
		t.Errorf("untraced run trace status = %d, want 404", tres.StatusCode)
	}
	if _, st := getStats(t, ts, resp.ID); st == nil || st.Traced {
		t.Errorf("untraced run stats: %+v, want traced=false", st)
	}

	// A still-running run answers 409 on both trace surfaces.
	divergent := schema.NewGammaRequest(counterProgram, counterInit,
		schema.RunSpec{MaxSteps: 100_000_000, Trace: true})
	_, dresp := postRun(t, ts, divergent, "", "")
	waitState(t, ts, dresp.ID, schema.StateRunning)
	if tres, _ := getTrace(t, ts, dresp.ID, ""); tres.StatusCode != http.StatusConflict {
		t.Errorf("running run trace status = %d, want 409", tres.StatusCode)
	}
	if sres, _ := getStats(t, ts, dresp.ID); sres.StatusCode != http.StatusConflict {
		t.Errorf("running run stats status = %d, want 409", sres.StatusCode)
	}
	hreq := mustReq(t, "DELETE", ts.URL+"/v1/runs/"+dresp.ID)
	if _, err := ts.Client().Do(hreq); err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, ts, dresp.ID)
}

// TestTraceSamplingDeterministic pins the sampler arithmetic: at rate 0.5,
// exactly every second trace-requesting run is traced, with no randomness.
func TestTraceSamplingDeterministic(t *testing.T) {
	_, ts := newTestServer(t, Config{Pool: 1, TraceSample: 0.5})
	traced := 0
	pattern := make([]bool, 0, 6)
	for i := 0; i < 6; i++ {
		req := schema.NewGammaRequest(paper.Example1GammaListing, paper.Example1InitialMultiset,
			schema.RunSpec{Engine: schema.EngineSeq, MaxSteps: 10000, Trace: true})
		_, resp := postRun(t, ts, req, "?wait=true", "")
		_, st := getStats(t, ts, resp.ID)
		if st == nil {
			t.Fatalf("no stats for run %s", resp.ID)
		}
		pattern = append(pattern, st.Traced)
		if st.Traced {
			traced++
			if st.Firings != st.Steps {
				t.Errorf("run %s: firings %d != steps %d", resp.ID, st.Firings, st.Steps)
			}
		}
	}
	if traced != 3 {
		t.Errorf("sampler traced %d of 6 at rate 0.5 (pattern %v), want exactly 3", traced, pattern)
	}

	// Negative rate disables tracing outright.
	_, ts2 := newTestServer(t, Config{Pool: 1, TraceSample: -1})
	req := schema.NewGammaRequest(paper.Example1GammaListing, paper.Example1InitialMultiset,
		schema.RunSpec{MaxSteps: 10000, Trace: true})
	_, resp := postRun(t, ts2, req, "?wait=true", "")
	if _, st := getStats(t, ts2, resp.ID); st == nil || st.Traced {
		t.Errorf("TraceSample<0 still traced: %+v", st)
	}
}

// TestTracedRunsDifferential is the PR's acceptance differential: N parallel
// runs across tenants, tracing sampled on and off, every traced run's
// provenance firing count equal to its wire Steps, and the registry's tenant
// and engine label dimensions rolling up to the global series exactly. Runs
// under -race via make stress.
func TestTracedRunsDifferential(t *testing.T) {
	s, ts := newTestServer(t, Config{Pool: 4})
	const n = 12
	ids := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := schema.NewGammaRequest(paper.Example1GammaListing, paper.Example1InitialMultiset,
				schema.RunSpec{Engine: schema.EngineSeq, MaxSteps: 10000, Trace: i%2 == 0})
			_, resp := postRun(t, ts, req, "?wait=true", fmt.Sprintf("tenant-%d", i%3))
			ids[i] = resp.ID
		}(i)
	}
	wg.Wait()

	for i, id := range ids {
		sres, st := getStats(t, ts, id)
		if st == nil {
			t.Fatalf("run %s: stats status %d", id, sres.StatusCode)
		}
		if wantTraced := i%2 == 0; st.Traced != wantTraced {
			t.Errorf("run %s traced = %v, want %v", id, st.Traced, wantTraced)
		}
		if st.Traced {
			if st.Firings != st.Steps || st.Steps == 0 {
				t.Errorf("run %s: firings %d != steps %d", id, st.Firings, st.Steps)
			}
			if tres, body := getTrace(t, ts, id, "jsonl"); tres.StatusCode != http.StatusOK || len(body) == 0 {
				t.Errorf("run %s: trace fetch status %d, %d bytes", id, tres.StatusCode, len(body))
			}
		} else if tres, _ := getTrace(t, ts, id, ""); tres.StatusCode != http.StatusNotFound {
			t.Errorf("run %s: untraced trace status %d, want 404", id, tres.StatusCode)
		}
	}

	for _, dim := range []string{"tenant", "engine"} {
		if err := s.Registry().CheckRollup(dim); err != nil {
			t.Errorf("label rollup broken: %v", err)
		}
	}
	if got := s.Registry().CounterValue("service.done"); got != n {
		t.Errorf("service.done = %d, want %d", got, n)
	}
}

// TestServiceMetricsEndpoints checks the service handler itself serves the
// metrics surfaces: /metrics in both formats (with the tenant and engine
// label series present) and the SSE stream at /metrics/watch.
func TestServiceMetricsEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{Pool: 1})
	req := schema.NewGammaRequest(paper.Example1GammaListing, paper.Example1InitialMultiset,
		schema.RunSpec{Engine: schema.EngineSeq, MaxSteps: 10000})
	postRun(t, ts, req, "?wait=true", "alice")

	hres, err := ts.Client().Get(ts.URL + "/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(hres.Body)
	hres.Body.Close()
	if ct := hres.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("prom Content-Type = %q", ct)
	}
	for _, want := range []string{
		"# TYPE service_done counter",
		`service_done{tenant="alice"} 1`,
		`service_done{engine="seq"} 1`,
		"service_run_wall_ns_bucket",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("prom exposition missing %q:\n%s", want, body)
		}
	}

	hres, err = ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	err = json.NewDecoder(hres.Body).Decode(&snap)
	hres.Body.Close()
	if err != nil || snap.Counters["service.done"] != 1 {
		t.Errorf("json metrics broken: %v, %+v", err, snap)
	}

	if hres, err = ts.Client().Get(ts.URL + "/metrics?format=avro"); err != nil {
		t.Fatal(err)
	} else if hres.Body.Close(); hres.StatusCode != http.StatusNotAcceptable {
		t.Errorf("unknown metrics format status = %d, want 406", hres.StatusCode)
	}
}

// syncBuffer is a goroutine-safe log sink: slog records arrive from executor
// goroutines as well as the request path.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) lines() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return strings.Split(strings.TrimSpace(b.buf.String()), "\n")
}

// TestStructuredLogCorrelation checks the slog records carry the run id,
// tenant and engine on admission, completion and 429 rejection — the
// correlation keys that join logs to traces and labeled metrics.
func TestStructuredLogCorrelation(t *testing.T) {
	var buf syncBuffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	_, ts := newTestServer(t, Config{Pool: 1, Quota: Quota{MaxConcurrent: 1}, Logger: logger})

	req := schema.NewGammaRequest(paper.Example1GammaListing, paper.Example1InitialMultiset,
		schema.RunSpec{Engine: schema.EngineSeq, MaxSteps: 10000, Trace: true})
	_, resp := postRun(t, ts, req, "?wait=true", "alice")

	// Saturate the tenant to force a quota rejection record.
	divergent := schema.NewGammaRequest(counterProgram, counterInit,
		schema.RunSpec{MaxSteps: 100_000_000})
	_, d := postRun(t, ts, divergent, "", "bob")
	waitState(t, ts, d.ID, schema.StateRunning)
	if hres, _ := postRun(t, ts, divergent, "", "bob"); hres.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second bob run status = %d, want 429", hres.StatusCode)
	}
	ts.Client().Do(mustReq(t, "DELETE", ts.URL+"/v1/runs/"+d.ID)) //nolint:errcheck
	waitTerminal(t, ts, d.ID)

	type record struct {
		Msg    string `json:"msg"`
		Level  string `json:"level"`
		Run    string `json:"run"`
		Tenant string `json:"tenant"`
		Engine string `json:"engine"`
		Reason string `json:"reason"`
		Traced bool   `json:"traced"`
	}
	var admitted, finished, rejected *record
	for _, line := range buf.lines() {
		var r record
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			t.Fatalf("non-JSON log line: %q", line)
		}
		switch {
		case r.Msg == "run admitted" && r.Run == resp.ID:
			admitted = &r
		case r.Msg == "run finished" && r.Run == resp.ID:
			finished = &r
		case r.Msg == "run rejected" && r.Tenant == "bob":
			rejected = &r
		}
	}
	if admitted == nil || !admitted.Traced || admitted.Tenant != "alice" || admitted.Engine != schema.EngineSeq {
		t.Errorf("admission record missing or uncorrelated: %+v", admitted)
	}
	if finished == nil || finished.Tenant != "alice" {
		t.Errorf("completion record missing or uncorrelated: %+v", finished)
	}
	if rejected == nil || rejected.Level != "WARN" || rejected.Reason != "concurrency quota" {
		t.Errorf("rejection record missing or wrong: %+v", rejected)
	}
}
