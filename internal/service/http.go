package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"repro/internal/cli"
	"repro/internal/rt"
	"repro/internal/schema"
	"repro/internal/telemetry"
)

// Handler returns the service's HTTP API:
//
//	POST   /v1/runs              submit a schema.RunRequest; 202 + RunResponse
//	                             (?wait=true blocks for the terminal state)
//	GET    /v1/runs/{id}         poll a run; 200 + RunResponse
//	DELETE /v1/runs/{id}         cancel a run; 202 + RunResponse
//	GET    /v1/runs/{id}/trace   a traced terminal run's trace;
//	                             ?format=perfetto (default) | jsonl | dot |
//	                             schedule (the executable replay schedule)
//	POST   /v1/replay            re-execute a schema.ReplayRequest schedule;
//	                             200 + ReplayResponse (divergence inside)
//	GET    /v1/runs/{id}/stats   a terminal run's schema.RunStats
//	GET    /v1/healthz           load snapshot; 200 + schema.Health
//	GET    /metrics              registry snapshot; ?format=prom for the
//	                             Prometheus text exposition
//	GET    /metrics/watch        SSE stream of registry snapshots
//
// Tenancy comes from the Authorization bearer token or X-API-Key header;
// absent both, the request is accounted to AnonymousTenant. Admission
// rejections are 429 with Retry-After; terminal errors map through
// cli.HTTPStatus (the same taxonomy the CLI maps to exit codes). A trace ask
// for an untraced run is 404, for a still-executing run 409.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/runs", s.handleSubmit)
	mux.HandleFunc("GET /v1/runs/{id}", s.handleGet)
	mux.HandleFunc("DELETE /v1/runs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/runs/{id}/trace", s.handleTrace)
	mux.HandleFunc("POST /v1/replay", s.handleReplay)
	mux.HandleFunc("GET /v1/runs/{id}/stats", s.handleStats)
	mux.HandleFunc("GET /v1/healthz", s.handleHealth)
	mux.Handle("GET /metrics", telemetry.MetricsHandler(s.reg))
	mux.Handle("GET /metrics/watch", telemetry.WatchHandler(s.reg))
	return mux
}

// tenantOf extracts the API-key identity of a request.
func tenantOf(r *http.Request) string {
	if auth := r.Header.Get("Authorization"); auth != "" {
		if tok, ok := strings.CutPrefix(auth, "Bearer "); ok {
			return strings.TrimSpace(tok)
		}
	}
	if key := r.Header.Get("X-API-Key"); key != "" {
		return key
	}
	return AnonymousTenant
}

// writeJSON writes one JSON body with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // the connection is gone; nothing to do
}

// writeError renders err as a wire error envelope on the mapped status.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	var busy *TooBusyError
	if errors.As(err, &busy) {
		w.Header().Set("Retry-After", fmt.Sprintf("%d", int(busy.RetryAfter.Seconds())))
		writeJSON(w, http.StatusTooManyRequests, &schema.RunResponse{
			Version: schema.WireVersion,
			State:   schema.StateFailed,
			Tenant:  busy.Tenant,
			Error:   &schema.WireError{Code: "too_busy", Message: busy.Error()},
		})
		return
	}
	status := cli.HTTPStatus(err)
	switch {
	case errors.Is(err, ErrUnknownRun), errors.Is(err, ErrNotTraced):
		status = http.StatusNotFound
	case errors.Is(err, ErrRunActive):
		status = http.StatusConflict
	}
	writeJSON(w, status, &schema.RunResponse{
		Version: schema.WireVersion,
		State:   schema.StateFailed,
		Error:   schema.NewWireError(err),
	})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBody))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.writeError(w, rt.Mark(rt.ErrInvalid, fmt.Errorf("service: request body over %d bytes", tooBig.Limit)))
			return
		}
		s.writeError(w, rt.Mark(rt.ErrParse, err))
		return
	}
	req, err := schema.DecodeRunRequest(raw)
	if err != nil {
		s.writeError(w, err)
		return
	}
	run, err := s.Submit(req, tenantOf(r))
	if err != nil {
		s.writeError(w, err)
		return
	}

	if r.URL.Query().Get("wait") == "true" {
		// Synchronous mode: hold the request open until the run finishes.
		// A client that disconnects mid-run cancels it — the run's budget
		// should not be spent on an answer nobody will read.
		select {
		case <-run.Done():
		case <-r.Context().Done():
			run.Cancel()
			<-run.Done()
		}
		resp := run.snapshot()
		writeJSON(w, cli.HTTPStatus(run.Err()), resp)
		return
	}
	writeJSON(w, http.StatusAccepted, run.snapshot())
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	run, err := s.Lookup(r.PathValue("id"))
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, run.snapshot())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	run, err := s.Cancel(r.PathValue("id"))
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, run.snapshot())
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Health())
}

// traceContentTypes maps each trace export format to its Content-Type.
var traceContentTypes = map[telemetry.Format]string{
	telemetry.FormatPerfetto: "application/json; charset=utf-8",
	telemetry.FormatJSONL:    "application/jsonl; charset=utf-8",
	telemetry.FormatDOT:      "text/vnd.graphviz; charset=utf-8",
	telemetry.FormatSchedule: "application/jsonl; charset=utf-8",
}

func (s *Server) handleReplay(w http.ResponseWriter, r *http.Request) {
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBody))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.writeError(w, rt.Mark(rt.ErrInvalid, fmt.Errorf("service: request body over %d bytes", tooBig.Limit)))
			return
		}
		s.writeError(w, rt.Mark(rt.ErrParse, err))
		return
	}
	req, err := schema.DecodeReplayRequest(raw)
	if err != nil {
		s.writeError(w, err)
		return
	}
	resp, err := s.Replay(req, tenantOf(r))
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	format := telemetry.FormatPerfetto
	if q := r.URL.Query().Get("format"); q != "" {
		var err error
		if format, err = telemetry.ParseFormat(q); err != nil {
			s.writeError(w, rt.Mark(rt.ErrInvalid, err))
			return
		}
	}
	id := r.PathValue("id")
	// Probe before writing: WriteTrace streams straight to the response, so
	// its errors must be found while the status line is still unsent.
	if run, err := s.Lookup(id); err != nil {
		s.writeError(w, err)
		return
	} else if _, _, _, err := run.terminalSnapshot(); err != nil {
		s.writeError(w, err)
		return
	} else if !run.Traced {
		s.writeError(w, ErrNotTraced)
		return
	}
	w.Header().Set("Content-Type", traceContentTypes[format])
	s.WriteTrace(w, id, format) //nolint:errcheck // headers sent; client gone
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st, err := s.Stats(r.PathValue("id"))
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}
