package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"repro/internal/cli"
	"repro/internal/rt"
	"repro/internal/schema"
)

// Handler returns the service's HTTP API:
//
//	POST   /v1/runs        submit a schema.RunRequest; 202 + RunResponse
//	                       (?wait=true blocks for the terminal state)
//	GET    /v1/runs/{id}   poll a run; 200 + RunResponse
//	DELETE /v1/runs/{id}   cancel a run; 202 + RunResponse
//	GET    /v1/healthz     load snapshot; 200 + schema.Health
//
// Tenancy comes from the Authorization bearer token or X-API-Key header;
// absent both, the request is accounted to AnonymousTenant. Admission
// rejections are 429 with Retry-After; terminal errors map through
// cli.HTTPStatus (the same taxonomy the CLI maps to exit codes).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/runs", s.handleSubmit)
	mux.HandleFunc("GET /v1/runs/{id}", s.handleGet)
	mux.HandleFunc("DELETE /v1/runs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/healthz", s.handleHealth)
	return mux
}

// tenantOf extracts the API-key identity of a request.
func tenantOf(r *http.Request) string {
	if auth := r.Header.Get("Authorization"); auth != "" {
		if tok, ok := strings.CutPrefix(auth, "Bearer "); ok {
			return strings.TrimSpace(tok)
		}
	}
	if key := r.Header.Get("X-API-Key"); key != "" {
		return key
	}
	return AnonymousTenant
}

// writeJSON writes one JSON body with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // the connection is gone; nothing to do
}

// writeError renders err as a wire error envelope on the mapped status.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	var busy *TooBusyError
	if errors.As(err, &busy) {
		w.Header().Set("Retry-After", fmt.Sprintf("%d", int(busy.RetryAfter.Seconds())))
		writeJSON(w, http.StatusTooManyRequests, &schema.RunResponse{
			Version: schema.WireVersion,
			State:   schema.StateFailed,
			Tenant:  busy.Tenant,
			Error:   &schema.WireError{Code: "too_busy", Message: busy.Error()},
		})
		return
	}
	status := cli.HTTPStatus(err)
	if errors.Is(err, ErrUnknownRun) {
		status = http.StatusNotFound
	}
	writeJSON(w, status, &schema.RunResponse{
		Version: schema.WireVersion,
		State:   schema.StateFailed,
		Error:   schema.NewWireError(err),
	})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBody))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.writeError(w, rt.Mark(rt.ErrInvalid, fmt.Errorf("service: request body over %d bytes", tooBig.Limit)))
			return
		}
		s.writeError(w, rt.Mark(rt.ErrParse, err))
		return
	}
	req, err := schema.DecodeRunRequest(raw)
	if err != nil {
		s.writeError(w, err)
		return
	}
	run, err := s.Submit(req, tenantOf(r))
	if err != nil {
		s.writeError(w, err)
		return
	}

	if r.URL.Query().Get("wait") == "true" {
		// Synchronous mode: hold the request open until the run finishes.
		// A client that disconnects mid-run cancels it — the run's budget
		// should not be spent on an answer nobody will read.
		select {
		case <-run.Done():
		case <-r.Context().Done():
			run.Cancel()
			<-run.Done()
		}
		resp := run.snapshot()
		writeJSON(w, cli.HTTPStatus(run.Err()), resp)
		return
	}
	writeJSON(w, http.StatusAccepted, run.snapshot())
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	run, err := s.Lookup(r.PathValue("id"))
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, run.snapshot())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	run, err := s.Cancel(r.PathValue("id"))
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, run.snapshot())
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Health())
}
