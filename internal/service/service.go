// Package service is the networked, multi-tenant Gamma service behind
// cmd/gammad: it accepts Gamma programs and dataflow graphs over the
// versioned internal/schema wire format and multiplexes many concurrent runs
// over one shared bounded executor pool (each run executing on the
// work-stealing runtime of internal/gamma / internal/dataflow).
//
// The paper's Γ model is naturally a server: a stable state under Eq. 1 is a
// response. Each submission is an isolated process in the Kahn sense — its
// own multiset, its own context — scheduled over shared processing elements.
//
// # Admission control
//
// Three gates protect the pool, every rejection an HTTP 429 with Retry-After
// so well-behaved clients back off instead of hammering:
//
//   - a bounded pending queue (Config.QueueDepth) — global backpressure;
//   - a per-tenant in-flight cap (Quota.MaxConcurrent) — one tenant cannot
//     occupy the whole queue;
//   - a per-tenant cumulative step budget (Quota.StepBudget) — reaction
//     firings are the service's cost unit, and a tenant that has spent its
//     budget is rejected until the operator raises it.
//
// Every run additionally gets an effective per-run step cap (the spec's
// MaxSteps clamped to Quota.MaxSteps) and an optional wall-clock timeout, so
// a divergent program costs a bounded amount of pool time.
//
// Tenancy is by API key: the Authorization bearer token or X-API-Key header
// names the tenant; requests without one share the "anonymous" tenant.
package service

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dataflow"
	"repro/internal/dfir"
	"repro/internal/gamma"
	"repro/internal/gammalang"
	"repro/internal/multiset"
	"repro/internal/replay"
	"repro/internal/rt"
	"repro/internal/schema"
	"repro/internal/telemetry"
)

// AnonymousTenant is the tenant identity of requests carrying no API key.
const AnonymousTenant = "anonymous"

// Quota bounds one tenant's use of the service. The zero value applies the
// server defaults (Config.Quota), whose own zero fields mean "unbounded
// concurrency, default per-run cap, unlimited cumulative budget".
type Quota struct {
	// MaxConcurrent caps the tenant's in-flight (pending + running) runs;
	// 0 means unbounded (the queue is still the global backstop).
	MaxConcurrent int
	// MaxSteps caps any single run's step budget; 0 applies
	// Config.MaxStepsCap. A submission asking for more is clamped, not
	// rejected.
	MaxSteps int64
	// StepBudget is the tenant's cumulative firing allowance across all its
	// runs (partial executions count); 0 means unlimited. An exhausted
	// budget rejects new submissions with 429.
	StepBudget int64
}

// Config configures a Server.
type Config struct {
	// Pool is the number of executor goroutines runs are multiplexed over;
	// <= 0 means 4. Each executor runs one submission at a time; the
	// submission itself may use several workers (RunSpec.Workers).
	Pool int
	// QueueDepth bounds the pending queue; <= 0 means 64. A full queue
	// rejects submissions with 429.
	QueueDepth int
	// Quota is the default per-tenant quota.
	Quota Quota
	// Tenants overrides the quota for specific API keys.
	Tenants map[string]Quota
	// MaxStepsCap is the per-run step cap applied when neither the spec nor
	// the tenant quota bounds the run; <= 0 means 10,000,000.
	MaxStepsCap int64
	// Retain is how many terminal runs are kept for polling before the
	// oldest are evicted; <= 0 means 1024.
	Retain int
	// MaxBody caps the request body in bytes; <= 0 means 1 MiB.
	MaxBody int64
	// Registry receives the service's counters, gauges and histograms; nil
	// allocates a private one. Share it with telemetry.ServeMetrics to
	// expose the pool on -metrics-addr. The service additionally accounts
	// every event into the registry's "tenant" and "engine" label dimensions
	// (Registry.Labeled), each rolling up to the global series exactly.
	Registry *telemetry.Registry
	// TraceEventCap is the per-track ring capacity of a traced run's
	// recorder; <= 0 means 4096. Together with Retain it bounds the trace
	// memory: at most Retain terminal runs hold rings at once.
	TraceEventCap int
	// TraceSample is the fraction of trace-requesting runs actually traced:
	// 0 means every one (the default), values in (0, 1) sample
	// deterministically (the i-th requesting run is traced iff the scaled
	// counter crosses an integer), negative disables tracing entirely. A
	// skipped run still completes normally with traced=false in its stats.
	TraceSample float64
	// Logger receives the service's structured log: one record per
	// admission, rejection and completion, each carrying the run id, tenant
	// and engine so records correlate with the trace and metrics surfaces.
	// nil discards.
	Logger *slog.Logger
}

func (c *Config) fill() {
	if c.Pool <= 0 {
		c.Pool = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.MaxStepsCap <= 0 {
		c.MaxStepsCap = 10_000_000
	}
	if c.Retain <= 0 {
		c.Retain = 1024
	}
	if c.MaxBody <= 0 {
		c.MaxBody = 1 << 20
	}
	if c.Registry == nil {
		c.Registry = telemetry.NewRegistry()
	}
	if c.TraceEventCap <= 0 {
		c.TraceEventCap = 4096
	}
	switch {
	case c.TraceSample == 0:
		c.TraceSample = 1
	case c.TraceSample < 0:
		c.TraceSample = 0
	case c.TraceSample > 1:
		c.TraceSample = 1
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
}

// TooBusyError is the admission-control rejection: the service is saturated
// or the tenant is over quota. The HTTP layer renders it as 429 with the
// suggested Retry-After.
type TooBusyError struct {
	// Reason is one of "queue full", "concurrency quota", "step budget".
	Reason string
	// Tenant is the rejected tenant.
	Tenant string
	// RetryAfter is the suggested backoff.
	RetryAfter time.Duration
}

func (e *TooBusyError) Error() string {
	return fmt.Sprintf("service: tenant %s rejected: %s", e.Tenant, e.Reason)
}

// ErrUnknownRun reports a run id the server does not know (never submitted,
// or evicted after Config.Retain newer terminal runs).
var ErrUnknownRun = errors.New("service: unknown run id")

// ErrNotTraced reports a trace request for a run that was not traced: the
// submission did not set Spec.Trace, or the sampler skipped it. 404 on the
// wire — the stats endpoint's traced field tells the two apart.
var ErrNotTraced = errors.New("service: run was not traced")

// ErrRunActive reports a trace request for a run that has not reached a
// terminal state: the event rings are single-writer and only readable after
// the run returns. 409 on the wire; poll the run and retry.
var ErrRunActive = errors.New("service: run still executing; trace available at terminal state")

// ErrClosed reports a submission to a server that has been Closed.
var ErrClosed = errors.New("service: server closed")

// tenantState is one tenant's live accounting.
type tenantState struct {
	inflight  int
	stepsUsed int64
}

// Run is one submitted execution. Fields set at submission are immutable;
// the mutable outcome is guarded by mu.
type Run struct {
	// ID is the server-assigned identity ("r-1", "r-2", ...).
	ID string
	// Tenant is the API-key identity the run is accounted against.
	Tenant string
	// Kind is schema.KindGamma or schema.KindDataflow.
	Kind string
	// Spec is the submitted spec; MaxSteps holds the effective (clamped)
	// per-run cap.
	Spec schema.RunSpec
	// Engine is the resolved engine label ("seq", "parallel" or "matrix") —
	// what actually runs, with EngineAuto resolved, and the run's coordinate
	// in the registry's engine dimension.
	Engine string
	// Traced reports whether the sampler granted this run's Spec.Trace ask;
	// when set, rec and prov observe the execution and are retained with the
	// terminal run for /trace and /stats.
	Traced bool

	plan  *gamma.Plan
	init  *multiset.Multiset
	graph *dataflow.Graph
	rec   *telemetry.Recorder
	prov  *telemetry.Provenance
	sched *replay.Recorder

	ctx      context.Context
	cancel   context.CancelFunc
	enqueued time.Time
	done     chan struct{}

	mu        sync.Mutex
	state     string
	result    *schema.RunResult
	err       error
	queueWait time.Duration
}

// Done is closed when the run reaches a terminal state.
func (r *Run) Done() <-chan struct{} { return r.done }

// Cancel asks the run to stop; pending runs are canceled immediately,
// running ones when their context check fires.
func (r *Run) Cancel() { r.cancel() }

// snapshot renders the run's current state as a response envelope.
func (r *Run) snapshot() *schema.RunResponse {
	r.mu.Lock()
	defer r.mu.Unlock()
	return &schema.RunResponse{
		Version: schema.WireVersion,
		ID:      r.ID,
		State:   r.state,
		Kind:    r.Kind,
		Tenant:  r.Tenant,
		Result:  r.result,
		Error:   schema.NewWireError(r.err),
	}
}

// Err returns the run's terminal error (nil while not failed/canceled).
func (r *Run) Err() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// Server multiplexes Gamma and dataflow runs over a shared executor pool.
// Create with New, serve its Handler, and Close it to cancel everything.
type Server struct {
	cfg Config
	reg *telemetry.Registry
	log *slog.Logger

	baseCtx    context.Context
	baseCancel context.CancelFunc
	queue      chan *Run
	wg         sync.WaitGroup
	nRunning   atomic.Int64
	traceSeq   atomic.Int64 // trace-requesting submissions, for the sampler

	mu       sync.Mutex
	closed   bool
	seq      int64
	runs     map[string]*Run
	terminal []string // terminal run ids in completion order, for eviction
	tenants  map[string]*tenantState

	gPending, gRunning *telemetry.Gauge
}

// count, observe and gaugeAdd account one event into the global registry
// and, when the run's label coordinates are known, into the tenant and
// engine children — three independent accountings per event, each child
// dimension summing to the global exactly (telemetry.Registry.CheckRollup;
// the service test suite and make stress hold the invariant under -race).
// The Set-based load gauges (service.pending, service.running) stay
// global-only; the occupancy gauges written through gaugeAdd
// (service.queue_depth, service.executors_busy) move by +1/-1 deltas, so
// their per-label values sum to the global at quiescence and CheckRollup
// covers them.
func (s *Server) count(name string, n int64, tenant, engine string) {
	s.reg.Counter(name).Add(n)
	if tenant != "" {
		s.reg.Labeled("tenant", tenant).Counter(name).Add(n)
	}
	if engine != "" {
		s.reg.Labeled("engine", engine).Counter(name).Add(n)
	}
}

func (s *Server) observe(name string, v int64, tenant, engine string) {
	s.reg.Histogram(name).Observe(v)
	if tenant != "" {
		s.reg.Labeled("tenant", tenant).Histogram(name).Observe(v)
	}
	if engine != "" {
		s.reg.Labeled("engine", engine).Histogram(name).Observe(v)
	}
}

func (s *Server) gaugeAdd(name string, n int64, tenant, engine string) {
	s.reg.Gauge(name).Add(n)
	if tenant != "" {
		s.reg.Labeled("tenant", tenant).Gauge(name).Add(n)
	}
	if engine != "" {
		s.reg.Labeled("engine", engine).Gauge(name).Add(n)
	}
}

// engineLabel resolves a spec to the engine that will actually execute it —
// the registry's engine dimension and the stats payload report this, not the
// raw Engine field, so EngineAuto runs are attributed to seq or parallel.
func engineLabel(spec schema.RunSpec) string {
	switch spec.Engine {
	case schema.EngineSeq, schema.EngineParallel, schema.EngineMatrix:
		return spec.Engine
	}
	if spec.EffectiveWorkers() > 1 {
		return schema.EngineParallel
	}
	return schema.EngineSeq
}

// New starts a server: Config.Pool executor goroutines draining the pending
// queue. Close releases them.
func New(cfg Config) *Server {
	cfg.fill()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		reg:        cfg.Registry,
		log:        cfg.Logger,
		baseCtx:    ctx,
		baseCancel: cancel,
		queue:      make(chan *Run, cfg.QueueDepth),
		runs:       make(map[string]*Run),
		tenants:    make(map[string]*tenantState),
	}
	s.gPending = s.reg.Gauge("service.pending")
	s.gRunning = s.reg.Gauge("service.running")
	for i := 0; i < cfg.Pool; i++ {
		s.wg.Add(1)
		go s.executor()
	}
	return s
}

// Close stops the pool: running runs are canceled, queued ones marked
// canceled, and new submissions rejected with ErrClosed. Blocks until the
// executors have drained.
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.baseCancel()
	s.wg.Wait()
	// The executors are gone; whatever is still queued will never run.
	for {
		select {
		case r := <-s.queue:
			s.gaugeAdd("service.queue_depth", -1, r.Tenant, r.Engine)
			s.finish(r, nil, rt.ErrCanceled, 0, nil)
		default:
			return
		}
	}
}

// quotaFor resolves the tenant's quota, field by field, against the default.
func (s *Server) quotaFor(tenant string) Quota {
	q := s.cfg.Quota
	if o, ok := s.cfg.Tenants[tenant]; ok {
		if o.MaxConcurrent != 0 {
			q.MaxConcurrent = o.MaxConcurrent
		}
		if o.MaxSteps != 0 {
			q.MaxSteps = o.MaxSteps
		}
		if o.StepBudget != 0 {
			q.StepBudget = o.StepBudget
		}
	}
	return q
}

// Submit validates, parses and admits one run. The returned Run is already
// queued; watch Done or poll Lookup. Parse failures are rt.ErrParse /
// rt.ErrInvalid; admission failures are *TooBusyError.
func (s *Server) Submit(req *schema.RunRequest, tenant string) (*Run, error) {
	if tenant == "" {
		tenant = AnonymousTenant
	}
	if err := req.Validate(); err != nil {
		return nil, err
	}
	r := &Run{Tenant: tenant, Kind: req.Kind, Spec: req.Spec, Engine: engineLabel(req.Spec),
		done: make(chan struct{}), state: schema.StatePending}
	switch req.Kind {
	case schema.KindGamma:
		f, err := gammalang.ParseFile(req.Program)
		if err != nil {
			return nil, err
		}
		init := f.Init
		if req.Init != "" {
			if init, err = multiset.Parse(req.Init); err != nil {
				return nil, rt.Mark(rt.ErrParse, err)
			}
		}
		if init == nil {
			init = multiset.New()
		}
		r.init = init
		if r.plan, err = f.Plan("run"); err != nil {
			return nil, rt.Mark(rt.ErrInvalid, err)
		}
	case schema.KindDataflow:
		g, err := dfir.Unmarshal(req.Graph)
		if err != nil {
			return nil, rt.Mark(rt.ErrParse, err)
		}
		r.graph = g
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	q := s.quotaFor(tenant)
	ts := s.tenants[tenant]
	if ts == nil {
		ts = &tenantState{}
		s.tenants[tenant] = ts
	}
	if q.MaxConcurrent > 0 && ts.inflight >= q.MaxConcurrent {
		s.mu.Unlock()
		return nil, s.reject("service.rejected.concurrency",
			&TooBusyError{Reason: "concurrency quota", Tenant: tenant, RetryAfter: time.Second}, r)
	}
	if q.StepBudget > 0 && ts.stepsUsed >= q.StepBudget {
		s.mu.Unlock()
		return nil, s.reject("service.rejected.budget",
			&TooBusyError{Reason: "step budget", Tenant: tenant, RetryAfter: time.Minute}, r)
	}
	// Effective per-run cap: the spec's ask clamped to the tenant's per-run
	// cap (default Config.MaxStepsCap), and to what remains of a cumulative
	// budget — a run can never overdraw, it is truncated at the boundary
	// with rt.ErrMaxSteps like any other budget exhaustion.
	cap := q.MaxSteps
	if cap <= 0 {
		cap = s.cfg.MaxStepsCap
	}
	eff := r.Spec.MaxSteps
	if eff <= 0 || eff > cap {
		eff = cap
	}
	if q.StepBudget > 0 {
		if rem := q.StepBudget - ts.stepsUsed; rem < eff {
			eff = rem
		}
	}
	r.Spec.MaxSteps = eff

	s.seq++
	r.ID = fmt.Sprintf("r-%d", s.seq)
	r.ctx, r.cancel = context.WithCancel(s.baseCtx)
	r.enqueued = time.Now()
	select {
	case s.queue <- r:
	default:
		s.mu.Unlock()
		return nil, s.reject("service.rejected.queue",
			&TooBusyError{Reason: "queue full", Tenant: tenant, RetryAfter: time.Second}, r)
	}
	ts.inflight++
	s.runs[r.ID] = r
	s.mu.Unlock()

	// Tracing is decided at admission so the decision is stable for the
	// run's whole life: Spec.Trace asks, the sampler grants. The recorder and
	// provenance tracer are private to the run (its stats counters are the
	// run's own, not the server's) and ride the Run into the terminal ring.
	if req.Spec.Trace && s.sampleTrace() {
		r.Traced = true
		r.rec = telemetry.New(s.cfg.TraceEventCap)
		r.prov = telemetry.NewProvenance()
		// The schedule recorder rides along with the trace: every traced run
		// is replayable (GET /trace?format=schedule → POST /v1/replay).
		kind := replay.KindGamma
		if r.Kind == schema.KindDataflow {
			kind = replay.KindDataflow
		}
		r.sched = replay.NewRecorder(kind, r.ID)
	}

	s.count("service.submitted", 1, tenant, r.Engine)
	s.gaugeAdd("service.queue_depth", 1, tenant, r.Engine)
	s.gPending.Set(int64(len(s.queue)))
	s.log.Info("run admitted",
		"run", r.ID, "tenant", tenant, "kind", r.Kind, "engine", r.Engine,
		"traced", r.Traced, "max_steps", r.Spec.MaxSteps)
	return r, nil
}

// reject accounts and logs one admission rejection, returning busy.
func (s *Server) reject(counter string, busy *TooBusyError, r *Run) error {
	s.count(counter, 1, busy.Tenant, r.Engine)
	s.log.Warn("run rejected",
		"tenant", busy.Tenant, "kind", r.Kind, "engine", r.Engine,
		"reason", busy.Reason, "retry_after", busy.RetryAfter)
	return busy
}

// sampleTrace is the deterministic trace sampler: with rate p, the i-th
// trace-requesting submission is traced iff the scaled counter ⌊(i+1)p⌋
// crosses an integer — exactly ⌊np⌋ of the first n requesters, no RNG.
func (s *Server) sampleTrace() bool {
	p := s.cfg.TraceSample
	if p <= 0 {
		return false
	}
	i := s.traceSeq.Add(1) - 1
	return int64(float64(i+1)*p) > int64(float64(i)*p)
}

// Lookup returns a run by id.
func (s *Server) Lookup(id string) (*Run, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.runs[id]
	if !ok {
		return nil, ErrUnknownRun
	}
	return r, nil
}

// Cancel cancels a run by id and returns it.
func (s *Server) Cancel(id string) (*Run, error) {
	r, err := s.Lookup(id)
	if err != nil {
		return nil, err
	}
	r.Cancel()
	return r, nil
}

// executor is one pool worker: it drains the pending queue until Close.
func (s *Server) executor() {
	defer s.wg.Done()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case r := <-s.queue:
			s.execute(r)
		}
	}
}

// execute runs one submission to its terminal state.
func (s *Server) execute(r *Run) {
	s.gaugeAdd("service.queue_depth", -1, r.Tenant, r.Engine)
	s.gPending.Set(int64(len(s.queue)))
	wait := time.Since(r.enqueued)
	s.observe("service.queue_wait_ns", wait.Nanoseconds(), r.Tenant, r.Engine)

	// A cancellation that arrived while pending wins before any work.
	if r.ctx.Err() != nil {
		s.finish(r, nil, rt.ErrCanceled, 0, nil)
		return
	}
	r.mu.Lock()
	r.state = schema.StateRunning
	r.queueWait = wait
	r.mu.Unlock()
	s.gaugeAdd("service.executors_busy", 1, r.Tenant, r.Engine)
	s.gRunning.Set(s.nRunning.Add(1))
	defer func() {
		s.gRunning.Set(s.nRunning.Add(-1))
		s.gaugeAdd("service.executors_busy", -1, r.Tenant, r.Engine)
	}()

	ctx, cancel := r.Spec.Context(r.ctx)
	defer cancel()

	start := time.Now()
	switch r.Kind {
	case schema.KindGamma:
		opt := gamma.Options{
			Workers:  r.Spec.EffectiveWorkers(),
			Seed:     r.Spec.Seed,
			MaxSteps: r.Spec.MaxSteps,
		}
		if r.Traced {
			opt.Recorder = r.rec
			opt.Tracer = r.prov
			opt.TrackLabel = r.ID
			opt.Schedule = r.sched
		}
		st, err := r.plan.RunContext(ctx, r.init, opt)
		wall := time.Since(start)
		res := &schema.RunResult{Multiset: r.init.String(), WallMS: float64(wall.Nanoseconds()) / 1e6}
		var steps int64
		if st != nil {
			steps = st.Steps
			res.Steps = st.Steps
		}
		s.finish(r, res, err, steps, &wall)
	case schema.KindDataflow:
		opt := dataflow.Options{
			Workers:    r.Spec.EffectiveWorkers(),
			MaxFirings: r.Spec.MaxSteps,
		}
		if r.Spec.Engine == schema.EngineMatrix {
			opt.Engine = dataflow.EngineMatrix
		}
		if r.Traced {
			opt.Recorder = r.rec
			opt.Tracer = r.prov
			opt.Schedule = r.sched
		}
		dres, err := dataflow.RunContext(ctx, r.graph, opt)
		wall := time.Since(start)
		res := &schema.RunResult{WallMS: float64(wall.Nanoseconds()) / 1e6}
		var steps int64
		if dres != nil {
			steps = dres.Firings
			res.Steps = dres.Firings
			res.Outputs = make(map[string][]string, len(dres.Outputs))
			for label, series := range dres.Outputs {
				out := make([]string, len(series))
				for i, tv := range series {
					out[i] = fmt.Sprintf("%s@%d", tv.Val, tv.Tag)
				}
				res.Outputs[label] = out
			}
		}
		s.finish(r, res, err, steps, &wall)
	}
}

// finish moves a run to its terminal state and settles the accounting: the
// tenant's in-flight slot is released, the steps actually executed (partial
// runs included) are charged against its budget, and the terminal-run ring
// evicts past Config.Retain.
func (s *Server) finish(r *Run, res *schema.RunResult, err error, steps int64, wall *time.Duration) {
	state := schema.StateDone
	switch {
	case err == nil:
	case errors.Is(err, rt.ErrCanceled):
		state = schema.StateCanceled
	default:
		state = schema.StateFailed
	}

	r.mu.Lock()
	r.state = state
	r.result = res
	r.err = err
	r.mu.Unlock()
	r.cancel() // release the context resources either way
	close(r.done)

	switch state {
	case schema.StateDone:
		s.count("service.done", 1, r.Tenant, r.Engine)
	case schema.StateCanceled:
		s.count("service.canceled", 1, r.Tenant, r.Engine)
	default:
		s.count("service.failed", 1, r.Tenant, r.Engine)
	}
	if steps > 0 {
		s.count("service.steps", steps, r.Tenant, r.Engine)
		s.observe("service.run_steps", steps, r.Tenant, r.Engine)
	}
	if wall != nil {
		s.observe("service.run_wall_ns", wall.Nanoseconds(), r.Tenant, r.Engine)
	}

	attrs := []any{
		"run", r.ID, "tenant", r.Tenant, "kind", r.Kind, "engine", r.Engine,
		"state", state, "steps", steps, "traced", r.Traced,
	}
	if wall != nil {
		attrs = append(attrs, "wall_ms", float64(wall.Nanoseconds())/1e6)
	}
	switch state {
	case schema.StateFailed:
		// rt.ErrNode wraps reaction/vertex panics the runtimes recovered;
		// logging it here is the service's panic path.
		s.log.Error("run failed", append(attrs, "error", err)...)
	case schema.StateCanceled:
		s.log.Info("run canceled", append(attrs, "error", err)...)
	default:
		s.log.Info("run finished", attrs...)
	}

	s.mu.Lock()
	if ts := s.tenants[r.Tenant]; ts != nil {
		ts.inflight--
		ts.stepsUsed += steps
	}
	s.terminal = append(s.terminal, r.ID)
	for len(s.terminal) > s.cfg.Retain {
		delete(s.runs, s.terminal[0])
		s.terminal = s.terminal[1:]
	}
	s.mu.Unlock()
}

// Health reports the server's instantaneous load.
func (s *Server) Health() *schema.Health {
	status := "ok"
	s.mu.Lock()
	if s.closed {
		status = "closed"
	}
	s.mu.Unlock()
	return &schema.Health{
		Version:    schema.WireVersion,
		Status:     status,
		Pool:       s.cfg.Pool,
		QueueDepth: s.cfg.QueueDepth,
		Pending:    len(s.queue),
		Running:    int(s.nRunning.Load()),
		Completed: s.reg.CounterValue("service.done") +
			s.reg.CounterValue("service.failed") +
			s.reg.CounterValue("service.canceled"),
	}
}

// terminalSnapshot returns the run's terminal state, result and queue wait,
// or ErrRunActive while the run is still pending/running. The trace surfaces
// gate on this: the recorder's rings are single-writer and must not be read
// concurrently with the engine.
func (r *Run) terminalSnapshot() (state string, res *schema.RunResult, wait time.Duration, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !schema.TerminalState(r.state) {
		return "", nil, 0, ErrRunActive
	}
	return r.state, r.result, r.queueWait, nil
}

// Stats renders a terminal run's execution accounting as the wire RunStats
// payload: the response-envelope numbers plus, when the run was traced, the
// recorder-side view (buffered events, drops, the private registry's
// counters) and the provenance tracer's firing count. On a traced sequential
// run Firings equals Steps exactly — the firing-history equivalence on the
// wire.
func (s *Server) Stats(id string) (*schema.RunStats, error) {
	r, err := s.Lookup(id)
	if err != nil {
		return nil, err
	}
	state, res, wait, err := r.terminalSnapshot()
	if err != nil {
		return nil, err
	}
	st := &schema.RunStats{
		Version:     schema.WireVersion,
		ID:          r.ID,
		State:       state,
		Kind:        r.Kind,
		Tenant:      r.Tenant,
		Engine:      r.Engine,
		Traced:      r.Traced,
		QueueWaitMS: float64(wait.Nanoseconds()) / 1e6,
	}
	if res != nil {
		st.Steps = res.Steps
		st.WallMS = res.WallMS
	}
	if r.Traced {
		st.Firings = int64(r.prov.Firings())
		for _, te := range r.rec.Snapshot() {
			st.TraceEvents += int64(len(te.Events))
			st.TraceDropped += te.Dropped
		}
		st.Counters = r.rec.Metrics.Snapshot().Counters
	}
	return st, nil
}

// WriteTrace renders a terminal run's retained trace in the given format:
// FormatPerfetto and FormatJSONL export the event rings, FormatDOT the
// firing-provenance DAG, FormatSchedule the executable schedule (wire minor
// 1.3) a client can POST back to /v1/replay. ErrNotTraced when the run was
// not traced, ErrRunActive before the terminal state.
func (s *Server) WriteTrace(w io.Writer, id string, format telemetry.Format) error {
	r, err := s.Lookup(id)
	if err != nil {
		return err
	}
	if _, _, _, err := r.terminalSnapshot(); err != nil {
		return err
	}
	if !r.Traced {
		return ErrNotTraced
	}
	switch format {
	case telemetry.FormatDOT:
		return r.prov.WriteDOT(w)
	case telemetry.FormatJSONL:
		return telemetry.WriteJSONL(w, r.rec)
	case telemetry.FormatSchedule:
		return r.sched.Schedule().Encode(w)
	default:
		return telemetry.WritePerfetto(w, r.rec)
	}
}

// wireDivergence converts a replay divergence report to its wire mirror.
func wireDivergence(d *replay.Divergence) *schema.WireDivergence {
	if d == nil {
		return nil
	}
	return &schema.WireDivergence{
		Step: d.Step, Seq: d.Seq, Name: d.Name, Reason: d.Reason,
		Missing: d.Missing, Expected: d.Expected, Actual: d.Actual,
		Ancestors: d.Ancestors, Detail: d.Detail,
	}
}

// Replay re-executes a recorded schedule against the submitted program and
// initial state (POST /v1/replay, wire minor 1.3). The replay runs
// synchronously on the caller's goroutine — its cost is bounded by the
// schedule length, which MaxBody already caps — and does not occupy an
// executor slot or a run id. The response carries either the confirmed
// stable state or the divergence report; only unusable submissions (parse
// and validation failures) return an error.
func (s *Server) Replay(req *schema.ReplayRequest, tenant string) (*schema.ReplayResponse, error) {
	if tenant == "" {
		tenant = AnonymousTenant
	}
	if err := req.Validate(); err != nil {
		return nil, err
	}
	sched, err := replay.Parse(strings.NewReader(req.Schedule))
	if err != nil {
		return nil, err
	}
	resp := &schema.ReplayResponse{Version: schema.WireVersion, Kind: req.Kind}
	switch req.Kind {
	case schema.KindGamma:
		f, err := gammalang.ParseFile(req.Program)
		if err != nil {
			return nil, err
		}
		init := f.Init
		if req.Init != "" {
			if init, err = multiset.Parse(req.Init); err != nil {
				return nil, rt.Mark(rt.ErrParse, err)
			}
		}
		if init == nil {
			init = multiset.New()
		}
		plan, err := f.Plan("replay")
		if err != nil {
			return nil, rt.Mark(rt.ErrInvalid, err)
		}
		// A staged plan replays against the union of its stages' reactions
		// (names are the schedule's identifiers and the recorded order
		// already respects stage boundaries); ReplayGamma checks stability
		// against the union, which at the recorded final state coincides
		// with the last stage's stability for the programs the service runs.
		var reactions []*gamma.Reaction
		for _, stage := range plan.Stages {
			reactions = append(reactions, stage.Reactions...)
		}
		prog, err := gamma.NewProgram("replay", reactions...)
		if err != nil {
			return nil, rt.Mark(rt.ErrInvalid, err)
		}
		res, err := replay.ReplayGamma(prog, init, sched)
		if err != nil {
			return nil, err
		}
		resp.Steps = res.Steps
		resp.Stable = res.Stable
		resp.Multiset = res.Final.String()
		resp.Divergence = wireDivergence(res.Divergence)
	case schema.KindDataflow:
		g, err := dfir.Unmarshal(req.Graph)
		if err != nil {
			return nil, rt.Mark(rt.ErrParse, err)
		}
		res, err := replay.ReplayDataflow(g, sched)
		if err != nil {
			return nil, err
		}
		resp.Steps = res.Steps
		resp.Stable = res.Stable
		resp.Pending = res.Pending
		resp.Outputs = make(map[string][]string, len(res.Outputs))
		for label, series := range res.Outputs {
			out := make([]string, len(series))
			for i, tv := range series {
				out[i] = fmt.Sprintf("%s@%d", tv.Val, tv.Tag)
			}
			resp.Outputs[label] = out
		}
		resp.Divergence = wireDivergence(res.Divergence)
	}
	s.count("service.replays", 1, tenant, "")
	if resp.Divergence != nil {
		s.count("service.replays.diverged", 1, tenant, "")
	}
	s.log.Info("replay executed",
		"tenant", tenant, "kind", req.Kind, "steps", resp.Steps,
		"stable", resp.Stable, "diverged", resp.Divergence != nil)
	return resp, nil
}

// Registry exposes the server's telemetry registry (for -metrics-addr).
func (s *Server) Registry() *telemetry.Registry { return s.reg }
