package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/multiset"
	"repro/internal/paper"
	"repro/internal/replay"
	"repro/internal/schema"
	"repro/internal/value"
)

func postReplay(t *testing.T, ts *httptest.Server, req *schema.ReplayRequest) (*http.Response, *schema.ReplayResponse) {
	t.Helper()
	body, err := req.Encode()
	if err != nil {
		t.Fatal(err)
	}
	hres, err := ts.Client().Post(ts.URL+"/v1/replay", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer hres.Body.Close()
	var resp schema.ReplayResponse
	if err := json.NewDecoder(hres.Body).Decode(&resp); err != nil {
		t.Fatalf("decoding replay response (status %d): %v", hres.StatusCode, err)
	}
	return hres, &resp
}

// TestReplayEndpointRecordReplayDifferential is the wire-level acceptance
// loop: a parallel traced Gamma run is fetched back as ?format=schedule and
// POSTed to /v1/replay against the same program and initial multiset. The
// sequential re-execution must confirm the parallel answer exactly — same
// final multiset, same firing count, stable — and the occupancy gauges must
// read zero once the service quiesces. Runs under -race via make stress.
func TestReplayEndpointRecordReplayDifferential(t *testing.T) {
	s, ts := newTestServer(t, Config{Pool: 4})
	program := paper.Example2GammaListing
	init := paper.Example2InitialMultiset(9, 4, 7)
	req := schema.NewGammaRequest(program, init, schema.RunSpec{
		Engine: schema.EngineParallel, Workers: 4, Seed: 3, MaxSteps: 100000, Trace: true})
	hres, resp := postRun(t, ts, req, "?wait=true", "alice")
	if hres.StatusCode != http.StatusOK || resp.State != schema.StateDone {
		t.Fatalf("parallel run: status %d, state %s (%+v)", hres.StatusCode, resp.State, resp.Error)
	}

	tres, sched := getTrace(t, ts, resp.ID, "schedule")
	if tres.StatusCode != http.StatusOK {
		t.Fatalf("schedule fetch status = %d", tres.StatusCode)
	}
	if ct := tres.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/jsonl") {
		t.Errorf("schedule Content-Type = %q", ct)
	}
	if _, err := replay.Parse(bytes.NewReader(sched)); err != nil {
		t.Fatalf("served schedule does not parse: %v\n%.300s", err, sched)
	}

	rreq := schema.NewGammaReplayRequest(program, init, string(sched))
	rres, rep := postReplay(t, ts, &rreq)
	if rres.StatusCode != http.StatusOK {
		t.Fatalf("replay status = %d (%+v)", rres.StatusCode, rep.Error)
	}
	if rep.Divergence != nil {
		t.Fatalf("faithful replay diverged: %+v", rep.Divergence)
	}
	if !rep.Stable {
		t.Errorf("faithful replay did not reach a stable state")
	}
	if rep.Multiset != resp.Result.Multiset {
		t.Errorf("replayed multiset %q != recorded %q", rep.Multiset, resp.Result.Multiset)
	}
	if int64(rep.Steps) != resp.Result.Steps {
		t.Errorf("replayed %d steps, recorded run fired %d", rep.Steps, resp.Result.Steps)
	}

	// Corrupt the last producing step's first product: the replay must
	// diverge exactly there with a product-mismatch naming both keys.
	parsed, err := replay.Parse(bytes.NewReader(sched))
	if err != nil {
		t.Fatal(err)
	}
	target := -1
	for i := len(parsed.Steps) - 1; i >= 0; i-- {
		if len(parsed.Steps[i].Produced) > 0 {
			target = i
			break
		}
	}
	if target < 0 {
		t.Fatal("no producing step in the schedule")
	}
	parsed.Steps[target].Produced[0] = multiset.Tuple{value.Int(999), value.Str("XX")}.Key()
	breq := schema.NewGammaReplayRequest(program, init, string(parsed.Bytes()))
	bres, brep := postReplay(t, ts, &breq)
	if bres.StatusCode != http.StatusOK {
		t.Fatalf("diverging replay status = %d (%+v)", bres.StatusCode, brep.Error)
	}
	if brep.Divergence == nil {
		t.Fatal("corrupted schedule replayed clean")
	}
	if brep.Divergence.Step != parsed.Steps[target].Step {
		t.Errorf("divergence at step %d, want %d", brep.Divergence.Step, parsed.Steps[target].Step)
	}
	if brep.Divergence.Reason != replay.ReasonProductMismatch {
		t.Errorf("divergence reason %q, want %q", brep.Divergence.Reason, replay.ReasonProductMismatch)
	}

	if got := s.Registry().CounterValue("service.replays"); got != 2 {
		t.Errorf("service.replays = %d, want 2", got)
	}
	if got := s.Registry().CounterValue("service.replays.diverged"); got != 1 {
		t.Errorf("service.replays.diverged = %d, want 1", got)
	}
	for _, g := range []string{"service.queue_depth", "service.executors_busy"} {
		if v := s.Registry().Gauge(g).Value(); v != 0 {
			t.Errorf("%s = %d at quiescence, want 0", g, v)
		}
	}
	for _, dim := range []string{"tenant", "engine"} {
		if err := s.Registry().CheckRollup(dim); err != nil {
			t.Errorf("label rollup broken: %v", err)
		}
	}
}

// TestReplayEndpointDataflow drives the dataflow kind through the same loop:
// record a traced graph run, fetch its schedule, replay it, and require the
// terminal-edge output series to match the recorded run's.
func TestReplayEndpointDataflow(t *testing.T) {
	_, ts := newTestServer(t, Config{Pool: 1})
	graph := "graph g\nconst x = 3\nconst y = 4\narith add +\nedge a x:0 -> add:0\nedge b y:0 -> add:1\nedge m add:0 -> out\n"
	req := schema.NewGraphRequest(graph, schema.RunSpec{MaxSteps: 100, Trace: true})
	hres, resp := postRun(t, ts, req, "?wait=true", "")
	if hres.StatusCode != http.StatusOK || resp.State != schema.StateDone {
		t.Fatalf("dataflow run: status %d, state %s (%+v)", hres.StatusCode, resp.State, resp.Error)
	}

	tres, sched := getTrace(t, ts, resp.ID, "schedule")
	if tres.StatusCode != http.StatusOK {
		t.Fatalf("schedule fetch status = %d", tres.StatusCode)
	}
	rreq := schema.NewGraphReplayRequest(graph, string(sched))
	rres, rep := postReplay(t, ts, &rreq)
	if rres.StatusCode != http.StatusOK || rep.Divergence != nil {
		t.Fatalf("dataflow replay: status %d, divergence %+v, err %+v", rres.StatusCode, rep.Divergence, rep.Error)
	}
	if !rep.Stable {
		t.Errorf("dataflow replay not stable (pending %d)", rep.Pending)
	}
	if len(rep.Outputs) != len(resp.Result.Outputs) {
		t.Fatalf("replay outputs %v, recorded %v", rep.Outputs, resp.Result.Outputs)
	}
	for label, want := range resp.Result.Outputs {
		got := rep.Outputs[label]
		if len(got) != len(want) {
			t.Fatalf("output %q: replay %v, recorded %v", label, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("output %q[%d]: replay %q, recorded %q", label, i, got[i], want[i])
			}
		}
	}
}

// TestReplayEndpointErrors pins the rejection surface of POST /v1/replay:
// non-JSON bodies, structurally invalid requests, unparseable schedules, and
// a schedule whose kind contradicts the request's are all 400s with wire
// error envelopes — never 500s, never silent partial replays.
func TestReplayEndpointErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{Pool: 1})

	post := func(body string) int {
		t.Helper()
		hres, err := ts.Client().Post(ts.URL+"/v1/replay", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		hres.Body.Close()
		return hres.StatusCode
	}

	if got := post("{not json"); got != http.StatusBadRequest {
		t.Errorf("malformed body status = %d, want 400", got)
	}
	if got := post(`{"version":"1.3","kind":"gamma","program":"","schedule":"x"}`); got != http.StatusBadRequest {
		t.Errorf("empty program status = %d, want 400", got)
	}

	rec := replay.NewRecorder(replay.KindDataflow, "g")
	rec.RecordStep(1, "add", nil, nil)
	kindMismatch := schema.NewGammaReplayRequest(counterProgram, counterInit, string(rec.Schedule().Bytes()))
	body, err := kindMismatch.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if got := post(string(body)); got != http.StatusBadRequest {
		t.Errorf("kind-mismatch schedule status = %d, want 400", got)
	}

	garbled := schema.NewGammaReplayRequest(counterProgram, counterInit, "not a schedule\n")
	body, err = garbled.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if got := post(string(body)); got != http.StatusBadRequest {
		t.Errorf("unparseable schedule status = %d, want 400", got)
	}
}
