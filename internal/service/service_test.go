package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/gamma"
	"repro/internal/gammalang"
	"repro/internal/multiset"
	"repro/internal/paper"
	"repro/internal/rt"
	"repro/internal/schema"
)

// counterProgram never stabilizes: the ideal tenant for cancellation and
// quota tests, because only an external bound can stop it.
const counterProgram = `R = replace [x, 'G'] by [x + 1, 'G']`
const counterInit = `{[0, 'G']}`

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

func postRun(t *testing.T, ts *httptest.Server, req schema.RunRequest, query, apiKey string) (*http.Response, *schema.RunResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hreq, err := http.NewRequest("POST", ts.URL+"/v1/runs"+query, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if apiKey != "" {
		hreq.Header.Set("Authorization", "Bearer "+apiKey)
	}
	hres, err := ts.Client().Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer hres.Body.Close()
	var resp schema.RunResponse
	if err := json.NewDecoder(hres.Body).Decode(&resp); err != nil {
		t.Fatalf("decoding response (status %d): %v", hres.StatusCode, err)
	}
	return hres, &resp
}

func getRun(t *testing.T, ts *httptest.Server, id string) (*http.Response, *schema.RunResponse) {
	t.Helper()
	hres, err := ts.Client().Get(ts.URL + "/v1/runs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer hres.Body.Close()
	var resp schema.RunResponse
	if err := json.NewDecoder(hres.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	return hres, &resp
}

func waitTerminal(t *testing.T, ts *httptest.Server, id string) *schema.RunResponse {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		_, resp := getRun(t, ts, id)
		if schema.TerminalState(resp.State) {
			return resp
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("run %s did not reach a terminal state", id)
	return nil
}

// TestLifecycle drives the full submit → poll → done arc over HTTP for the
// paper's Example 1 and checks the stable state matches the in-process run.
func TestLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{Pool: 2})
	req := schema.NewGammaRequest(paper.Example1GammaListing, paper.Example1InitialMultiset,
		schema.RunSpec{MaxSteps: 10000})

	hres, resp := postRun(t, ts, req, "", "")
	if hres.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", hres.StatusCode)
	}
	if resp.ID == "" || resp.Version != schema.WireVersion {
		t.Fatalf("bad submit envelope: %+v", resp)
	}

	final := waitTerminal(t, ts, resp.ID)
	if final.State != schema.StateDone || final.Error != nil {
		t.Fatalf("final state = %s (err %+v), want done", final.State, final.Error)
	}
	want := oracleExample1(t, paper.Example1InitialMultiset)
	if final.Result == nil || final.Result.Multiset != want {
		t.Fatalf("stable state = %+v, want %q", final.Result, want)
	}
	if final.Result.Steps != 3 {
		t.Errorf("steps = %d, want 3 (R1, R2, R3 each fire once)", final.Result.Steps)
	}
}

// oracleExample1 runs Example 1 in-process on the given initial multiset and
// returns the stable state's literal — the differential oracle.
func oracleExample1(t *testing.T, init string) string {
	t.Helper()
	f, err := gammalang.ParseFile(paper.Example1GammaListing)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := f.Plan("oracle")
	if err != nil {
		t.Fatal(err)
	}
	m, err := multiset.Parse(init)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plan.RunContext(context.Background(), m, gamma.Options{MaxSteps: 10000}); err != nil {
		t.Fatal(err)
	}
	return m.String()
}

// TestSyncWait pins ?wait=true: one round trip returns the terminal state.
func TestSyncWait(t *testing.T) {
	_, ts := newTestServer(t, Config{Pool: 2})
	req := schema.NewGammaRequest(paper.Example1GammaListing, paper.Example1InitialMultiset,
		schema.RunSpec{MaxSteps: 10000})
	hres, resp := postRun(t, ts, req, "?wait=true", "")
	if hres.StatusCode != http.StatusOK {
		t.Fatalf("sync status = %d, want 200", hres.StatusCode)
	}
	if resp.State != schema.StateDone {
		t.Fatalf("sync state = %s, want done", resp.State)
	}
	if want := oracleExample1(t, paper.Example1InitialMultiset); resp.Result.Multiset != want {
		t.Fatalf("sync multiset = %q, want %q", resp.Result.Multiset, want)
	}
}

// TestDataflowKind submits a dataflow graph (Example 1 as Fig. 1 wiring) and
// checks the output token arrives rendered value@tag.
func TestDataflowKind(t *testing.T) {
	const graph = `graph ex1
const x = 1
const y = 5
const k = 3
const j = 2
arith add +
arith mul *
arith sub -
edge a x:0 -> add:0
edge b y:0 -> add:1
edge c k:0 -> mul:0
edge d j:0 -> mul:1
edge e add:0 -> sub:0
edge f mul:0 -> sub:1
edge m sub:0 -> out
`
	_, ts := newTestServer(t, Config{Pool: 1})
	hres, resp := postRun(t, ts, schema.NewGraphRequest(graph, schema.RunSpec{}), "?wait=true", "")
	if hres.StatusCode != http.StatusOK || resp.State != schema.StateDone {
		t.Fatalf("dataflow run: status %d state %s err %+v", hres.StatusCode, resp.State, resp.Error)
	}
	out := resp.Result.Outputs["m"]
	if len(out) != 1 || !strings.HasPrefix(out[0], "0@") {
		t.Fatalf("output m = %v, want one token 0@tag", out)
	}
}

// TestMatrixEngineKind pins the wire-minor-1.1 engine end to end: a dataflow
// submission selecting the matrix engine executes to the same output as the
// default engine, and a Gamma submission selecting it bounces at admission.
func TestMatrixEngineKind(t *testing.T) {
	const graph = `graph ex1
const x = 1
const y = 5
const k = 3
const j = 2
arith add +
arith mul *
arith sub -
edge a x:0 -> add:0
edge b y:0 -> add:1
edge c k:0 -> mul:0
edge d j:0 -> mul:1
edge e add:0 -> sub:0
edge f mul:0 -> sub:1
edge m sub:0 -> out
`
	_, ts := newTestServer(t, Config{Pool: 1})
	req := schema.NewGraphRequest(graph, schema.RunSpec{Engine: schema.EngineMatrix})
	hres, resp := postRun(t, ts, req, "?wait=true", "")
	if hres.StatusCode != http.StatusOK || resp.State != schema.StateDone {
		t.Fatalf("matrix run: status %d state %s err %+v", hres.StatusCode, resp.State, resp.Error)
	}
	out := resp.Result.Outputs["m"]
	if len(out) != 1 || !strings.HasPrefix(out[0], "0@") {
		t.Fatalf("output m = %v, want one token 0@tag", out)
	}
	if resp.Result.Steps != 7 {
		t.Errorf("steps = %d, want 7 (4 consts + 3 operators)", resp.Result.Steps)
	}

	greq := schema.NewGammaRequest(counterProgram, counterInit,
		schema.RunSpec{Engine: schema.EngineMatrix, MaxSteps: 10})
	ghres, gresp := postRun(t, ts, greq, "", "")
	if ghres.StatusCode != http.StatusBadRequest {
		t.Fatalf("gamma+matrix status = %d, want 400", ghres.StatusCode)
	}
	if gresp.Error == nil || gresp.Error.Code != rt.CodeInvalid {
		t.Fatalf("gamma+matrix error = %+v, want code invalid", gresp.Error)
	}
}

// TestCancelRun cancels a divergent run via DELETE and checks it lands in
// the canceled state with the canceled wire code.
func TestCancelRun(t *testing.T) {
	_, ts := newTestServer(t, Config{Pool: 1})
	req := schema.NewGammaRequest(counterProgram, counterInit, schema.RunSpec{})
	hres, resp := postRun(t, ts, req, "", "")
	if hres.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", hres.StatusCode)
	}

	// Let it start spinning, then cancel.
	time.Sleep(10 * time.Millisecond)
	dreq, _ := http.NewRequest("DELETE", ts.URL+"/v1/runs/"+resp.ID, nil)
	dres, err := ts.Client().Do(dreq)
	if err != nil {
		t.Fatal(err)
	}
	dres.Body.Close()
	if dres.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel status = %d, want 202", dres.StatusCode)
	}

	final := waitTerminal(t, ts, resp.ID)
	if final.State != schema.StateCanceled {
		t.Fatalf("state after cancel = %s, want canceled", final.State)
	}
	if final.Error == nil || final.Error.Code != rt.CodeCanceled {
		t.Fatalf("error after cancel = %+v, want code canceled", final.Error)
	}
}

// TestMalformedRequests pins the 4xx surface: broken JSON, bad versions and
// unknown runs must never reach the pool.
func TestMalformedRequests(t *testing.T) {
	s, ts := newTestServer(t, Config{Pool: 1, MaxBody: 2048})
	cases := []struct {
		name   string
		body   string
		status int
		code   string
	}{
		{"broken json", `{"version": "1.0",`, 400, rt.CodeParse},
		{"wrong major", `{"version": "9.0", "kind": "gamma", "program": "x"}`, 400, rt.CodeInvalid},
		{"missing kind", `{"version": "1.0", "program": "x"}`, 400, rt.CodeInvalid},
		{"gamma parse error", `{"version": "1.0", "kind": "gamma", "program": "replace"}`, 400, rt.CodeParse},
		{"bad init literal", fmt.Sprintf(`{"version": "1.0", "kind": "gamma", "program": %q, "init": "{oops"}`, counterProgram), 400, rt.CodeParse},
		{"bad graph", `{"version": "1.0", "kind": "dataflow", "graph": "graph g\nbogus line\n"}`, 400, rt.CodeParse},
		{"oversized body", `{"version": "1.0", "kind": "gamma", "program": "` + strings.Repeat("x", 4096) + `"}`, 400, rt.CodeInvalid},
	}
	for _, c := range cases {
		hres, err := ts.Client().Post(ts.URL+"/v1/runs", "application/json", strings.NewReader(c.body))
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		var resp schema.RunResponse
		if derr := json.NewDecoder(hres.Body).Decode(&resp); derr != nil {
			t.Fatalf("%s: decode: %v", c.name, derr)
		}
		hres.Body.Close()
		if hres.StatusCode != c.status {
			t.Errorf("%s: status = %d, want %d", c.name, hres.StatusCode, c.status)
		}
		if resp.Error == nil || resp.Error.Code != c.code {
			t.Errorf("%s: error = %+v, want code %s", c.name, resp.Error, c.code)
		}
	}

	if hres, _ := getRun(t, ts, "r-999"); hres.StatusCode != http.StatusNotFound {
		t.Errorf("unknown run: status = %d, want 404", hres.StatusCode)
	}
	if s.reg.CounterValue("service.submitted") != 0 {
		t.Errorf("malformed requests must not count as submissions")
	}
}

// TestConcurrencyQuota429 pins the per-tenant in-flight gate: with
// MaxConcurrent 2, a tenant's third simultaneous run bounces with 429 and
// Retry-After while another tenant still gets in.
func TestConcurrencyQuota429(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Pool:       4,
		QueueDepth: 16,
		Tenants:    map[string]Quota{"alice": {MaxConcurrent: 2}},
	})
	req := schema.NewGammaRequest(counterProgram, counterInit, schema.RunSpec{})

	var held []string
	for i := 0; i < 2; i++ {
		hres, resp := postRun(t, ts, req, "", "alice")
		if hres.StatusCode != http.StatusAccepted {
			t.Fatalf("run %d: status = %d", i, hres.StatusCode)
		}
		held = append(held, resp.ID)
	}
	hres, resp := postRun(t, ts, req, "", "alice")
	if hres.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third concurrent run: status = %d, want 429", hres.StatusCode)
	}
	if hres.Header.Get("Retry-After") == "" {
		t.Error("429 must carry Retry-After")
	}
	if resp.Error == nil || resp.Error.Code != "too_busy" {
		t.Errorf("429 error = %+v, want code too_busy", resp.Error)
	}
	// An unrelated tenant is unaffected by alice's quota.
	if hres, _ := postRun(t, ts, req, "", "bob"); hres.StatusCode != http.StatusAccepted {
		t.Errorf("other tenant: status = %d, want 202", hres.StatusCode)
	}
	if s.reg.CounterValue("service.rejected.concurrency") != 1 {
		t.Errorf("rejected.concurrency = %d, want 1", s.reg.CounterValue("service.rejected.concurrency"))
	}

	// Canceling one held run frees the slot.
	ts.Client().Do(mustReq(t, "DELETE", ts.URL+"/v1/runs/"+held[0]))
	waitTerminal(t, ts, held[0])
	if hres, _ := postRun(t, ts, req, "", "alice"); hres.StatusCode != http.StatusAccepted {
		t.Errorf("after cancel: status = %d, want 202 (slot freed)", hres.StatusCode)
	}
}

func mustReq(t *testing.T, method, url string) *http.Request {
	t.Helper()
	r, err := http.NewRequest(method, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestQueueFull429 pins global backpressure: Pool 1 + QueueDepth 1 saturate
// after two divergent submissions; the next one bounces.
func TestQueueFull429(t *testing.T) {
	s, ts := newTestServer(t, Config{Pool: 1, QueueDepth: 1})
	req := schema.NewGammaRequest(counterProgram, counterInit, schema.RunSpec{})

	// First run occupies the executor (wait until it is off the queue),
	// second fills the queue, third must bounce.
	_, first := postRun(t, ts, req, "", "")
	waitState(t, ts, first.ID, schema.StateRunning)
	if hres, _ := postRun(t, ts, req, "", ""); hres.StatusCode != http.StatusAccepted {
		t.Fatalf("queued run: status = %d, want 202", hres.StatusCode)
	}
	hres, _ := postRun(t, ts, req, "", "")
	if hres.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-queue run: status = %d, want 429", hres.StatusCode)
	}
	if s.reg.CounterValue("service.rejected.queue") != 1 {
		t.Errorf("rejected.queue = %d, want 1", s.reg.CounterValue("service.rejected.queue"))
	}
}

func waitState(t *testing.T, ts *httptest.Server, id, state string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		_, resp := getRun(t, ts, id)
		if resp.State == state {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("run %s never reached state %s", id, state)
}

// TestStepBudget429 pins the cumulative budget gate: a tenant whose runs
// have spent their firing allowance gets 429 on the next submission, and a
// single run never overdraws the remaining budget.
func TestStepBudget429(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Pool:    1,
		Tenants: map[string]Quota{"carol": {StepBudget: 100}},
	})
	// The counter program burns exactly its per-run cap; ask for more than
	// the remaining budget and check the clamp.
	req := schema.NewGammaRequest(counterProgram, counterInit, schema.RunSpec{MaxSteps: 5000})
	hres, resp := postRun(t, ts, req, "?wait=true", "carol")
	if hres.StatusCode != http.StatusRequestTimeout {
		t.Fatalf("budget-capped run: status = %d, want 408 (max_steps)", hres.StatusCode)
	}
	if resp.Error == nil || resp.Error.Code != rt.CodeMaxSteps {
		t.Fatalf("budget-capped run error = %+v, want max_steps", resp.Error)
	}
	if resp.Result.Steps != 100 {
		t.Fatalf("steps = %d, want exactly the 100-step budget", resp.Result.Steps)
	}

	hres, resp = postRun(t, ts, req, "", "carol")
	if hres.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("post-exhaustion run: status = %d, want 429", hres.StatusCode)
	}
	if resp.Error == nil || resp.Error.Code != "too_busy" {
		t.Errorf("post-exhaustion error = %+v, want too_busy", resp.Error)
	}
	if s.reg.CounterValue("service.rejected.budget") != 1 {
		t.Errorf("rejected.budget = %d, want 1", s.reg.CounterValue("service.rejected.budget"))
	}
}

// TestClientDisconnectCancelsRun pins the context-first contract end to end:
// a ?wait=true caller that goes away mid-run cancels the run on the server.
func TestClientDisconnectCancelsRun(t *testing.T) {
	s, ts := newTestServer(t, Config{Pool: 1})
	req := schema.NewGammaRequest(counterProgram, counterInit, schema.RunSpec{})
	body, _ := json.Marshal(req)

	ctx, cancel := context.WithCancel(context.Background())
	hreq, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/runs?wait=true", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		res, err := ts.Client().Do(hreq)
		if res != nil {
			res.Body.Close()
		}
		errc <- err
	}()

	// Wait for the run to actually start, then hang up.
	waitState(t, ts, "r-1", schema.StateRunning)
	cancel()
	if err := <-errc; err == nil {
		t.Fatal("disconnected request should error on the client side")
	}

	run, err := s.Lookup("r-1")
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-run.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("run not canceled after client disconnect")
	}
	if resp := run.snapshot(); resp.State != schema.StateCanceled {
		t.Fatalf("state after disconnect = %s, want canceled", resp.State)
	}
}

// TestHealthz checks the load snapshot endpoint.
func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{Pool: 3, QueueDepth: 7})
	hres, err := ts.Client().Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hres.Body.Close()
	var h schema.Health
	if err := json.NewDecoder(hres.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Pool != 3 || h.QueueDepth != 7 || h.Version != schema.WireVersion {
		t.Fatalf("health = %+v", h)
	}
}

// TestConcurrent200Differential is the acceptance gate: 200 concurrent
// Example-1 runs with per-run distinct inputs, every response compared to
// the in-process oracle. Any cross-run state leakage (a shared multiset, a
// swapped result, a lost token) shows up as a mismatch.
func TestConcurrent200Differential(t *testing.T) {
	const n = 200
	_, ts := newTestServer(t, Config{Pool: 8, QueueDepth: n, Retain: n})

	// Per-run distinct input: x = i makes the stable state {[i - 1, 'm']}.
	initFor := func(i int) string {
		return fmt.Sprintf(`{[%d, 'A1'], [5, 'B1'], [3, 'C1'], [2, 'D1']}`, i)
	}
	oracle := make([]string, n)
	for i := 0; i < n; i++ {
		oracle[i] = oracleExample1(t, initFor(i))
	}

	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := schema.NewGammaRequest(paper.Example1GammaListing, initFor(i), schema.RunSpec{MaxSteps: 10000})
			body, _ := json.Marshal(req)
			hres, err := ts.Client().Post(ts.URL+"/v1/runs?wait=true", "application/json", bytes.NewReader(body))
			if err != nil {
				errs <- fmt.Errorf("run %d: %v", i, err)
				return
			}
			defer hres.Body.Close()
			var resp schema.RunResponse
			if err := json.NewDecoder(hres.Body).Decode(&resp); err != nil {
				errs <- fmt.Errorf("run %d: decode: %v", i, err)
				return
			}
			if hres.StatusCode != http.StatusOK || resp.State != schema.StateDone {
				errs <- fmt.Errorf("run %d: status %d state %s error %+v", i, hres.StatusCode, resp.State, resp.Error)
				return
			}
			if resp.Result.Multiset != oracle[i] {
				errs <- fmt.Errorf("run %d: stable state %q, oracle %q (cross-run leakage?)", i, resp.Result.Multiset, oracle[i])
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestCloseCancelsEverything checks Close drains: queued and running runs
// land canceled, later submissions get ErrClosed.
func TestCloseCancelsEverything(t *testing.T) {
	s := New(Config{Pool: 1, QueueDepth: 4})
	req := schema.NewGammaRequest(counterProgram, counterInit, schema.RunSpec{})
	var runs []*Run
	for i := 0; i < 3; i++ {
		wreq, err := schema.DecodeRunRequest(mustEncode(t, req))
		if err != nil {
			t.Fatal(err)
		}
		r, err := s.Submit(wreq, "dave")
		if err != nil {
			t.Fatal(err)
		}
		runs = append(runs, r)
	}
	s.Close()
	for _, r := range runs {
		select {
		case <-r.Done():
		case <-time.After(10 * time.Second):
			t.Fatalf("run %s not terminal after Close", r.ID)
		}
		if resp := r.snapshot(); resp.State != schema.StateCanceled {
			t.Errorf("run %s state = %s after Close, want canceled", r.ID, resp.State)
		}
	}
	if _, err := s.Submit(&req, "dave"); err != ErrClosed {
		t.Errorf("submit after Close = %v, want ErrClosed", err)
	}
}

func mustEncode(t *testing.T, req schema.RunRequest) []byte {
	t.Helper()
	b, err := req.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return b
}
