package reuse

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/expr"
	"repro/internal/gamma"
	"repro/internal/multiset"
	"repro/internal/paper"
	"repro/internal/value"
)

func TestTableBasics(t *testing.T) {
	tbl := NewTable(0)
	if _, ok := tbl.LookupFiring("k"); ok {
		t.Error("empty table should miss")
	}
	tbl.StoreFiring("k", value.Int(7))
	if v, ok := tbl.LookupFiring("k"); !ok || v != value.Int(7) {
		t.Errorf("lookup = %v, %v", v, ok)
	}
	tbl.StoreReaction("r", []multiset.Tuple{multiset.IntElem(1, "L", 0)})
	if p, ok := tbl.LookupReaction("r"); !ok || len(p) != 1 {
		t.Errorf("reaction lookup = %v, %v", p, ok)
	}
	st := tbl.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Stores != 2 || st.Entries != 2 {
		t.Errorf("stats = %+v", st)
	}
	if st.HitRate() < 0.66 || st.HitRate() > 0.67 {
		t.Errorf("hit rate = %f", st.HitRate())
	}
	if st.String() == "" {
		t.Error("stats string empty")
	}
	tbl.Reset()
	if st := tbl.Stats(); st.Entries != 0 || st.Hits != 0 {
		t.Errorf("after reset: %+v", st)
	}
	if (Stats{}).HitRate() != 0 {
		t.Error("zero stats hit rate should be 0")
	}
}

func TestTableCapacityEviction(t *testing.T) {
	tbl := NewTable(4)
	for i := 0; i < 10; i++ {
		tbl.StoreFiring(fmt.Sprintf("k%d", i), value.Int(int64(i)))
	}
	st := tbl.Stats()
	if st.Evictions == 0 {
		t.Errorf("expected evictions: %+v", st)
	}
	if st.Entries > 4 {
		t.Errorf("entries exceed capacity: %+v", st)
	}
}

func TestDataflowMemoizedRunCorrect(t *testing.T) {
	// A loop re-executes the same additions across iterations when the
	// accumulator cycles; memoization must not change results.
	tbl := NewTable(0)
	g := paper.Fig2GraphObservable(10, 4, 6)
	res, err := dataflow.Run(g, dataflow.Options{Memo: tbl, WorkFactor: 50})
	if err != nil {
		t.Fatal(err)
	}
	if out, _ := res.Output("xout"); out != value.Int(34) {
		t.Errorf("xout = %v, want 34", out)
	}
	st := tbl.Stats()
	if st.Stores == 0 {
		t.Error("memo never populated")
	}
	// The z>0 comparison repeats with distinct operands, so few hits here;
	// run again on an identical graph and the hits must appear.
	g2 := paper.Fig2GraphObservable(10, 4, 6)
	res2, err := dataflow.Run(g2, dataflow.Options{Memo: tbl, WorkFactor: 50})
	if err != nil {
		t.Fatal(err)
	}
	if res2.MemoHits == 0 {
		t.Errorf("second identical run should hit the memo: %+v", tbl.Stats())
	}
	if out, _ := res2.Output("xout"); out != value.Int(34) {
		t.Errorf("memoized rerun xout = %v, want 34", out)
	}
}

func TestDataflowMemoHitsWithinRun(t *testing.T) {
	// A diamond where the same vertex computes the same operands repeatedly:
	// two identical consts through one shared adder fired per input pair.
	g := dataflow.NewGraph("rep")
	add := g.AddArithImm("add", "+", value.Int(1))
	for i := 0; i < 6; i++ {
		c := g.AddConst(fmt.Sprintf("c%d", i), value.Int(5))
		if _, err := g.Connect(c, 0, add, 0, fmt.Sprintf("in%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := g.ConnectOut(add, 0, "s"); err != nil {
		t.Fatal(err)
	}
	tbl := NewTable(0)
	res, err := dataflow.Run(g, dataflow.Options{Memo: tbl})
	if err != nil {
		t.Fatal(err)
	}
	// Six identical firings at tag 0: five should be memo hits.
	if res.MemoHits != 5 {
		t.Errorf("memo hits = %d, want 5 (stats %v)", res.MemoHits, tbl.Stats())
	}
	if len(res.Outputs["s"]) != 6 {
		t.Errorf("outputs = %v", res.Outputs["s"])
	}
}

func TestGammaMemoizedRunCorrect(t *testing.T) {
	prog, init, err := core.ToGamma(paper.Fig1Graph())
	if err != nil {
		t.Fatal(err)
	}
	tbl := NewTable(0)
	if _, err := gamma.Run(prog, init, gamma.Options{Memo: tbl, WorkFactor: 50}); err != nil {
		t.Fatal(err)
	}
	if !init.Contains(multiset.IntElem(0, "m", 0)) {
		t.Errorf("result = %s", init)
	}
	// Re-running the same program on the same inputs hits the table.
	prog2, init2, err := core.ToGamma(paper.Fig1Graph())
	if err != nil {
		t.Fatal(err)
	}
	stats, err := gamma.Run(prog2, init2, gamma.Options{Memo: tbl, WorkFactor: 50})
	if err != nil {
		t.Fatal(err)
	}
	if stats.MemoHits != 3 {
		t.Errorf("memo hits = %d, want 3 (all reactions reused)", stats.MemoHits)
	}
	if !init2.Contains(multiset.IntElem(0, "m", 0)) {
		t.Errorf("memoized result = %s", init2)
	}
}

func TestGammaMemoParallelSafe(t *testing.T) {
	// Repeated identical elements under the parallel runtime with a shared
	// table: results stay correct under concurrent lookups/stores.
	r := &gamma.Reaction{
		Name:     "halve",
		Patterns: []gamma.Pattern{{gamma.FVar("x"), gamma.FLabel("a"), gamma.FVar("v")}},
		Branches: []gamma.Branch{{Products: []gamma.Template{mustTemplate()}}},
	}
	m := multiset.New()
	for i := 0; i < 200; i++ {
		m.AddN(multiset.IntElem(int64(i%8), "a", 0), 1)
	}
	tbl := NewTable(0)
	stats, err := gamma.Run(gamma.MustProgram("p", r), m, gamma.Options{
		Workers: 4, Seed: 1, Memo: tbl, WorkFactor: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Steps != 200 {
		t.Errorf("steps = %d", stats.Steps)
	}
	if m.Len() != 200 {
		t.Errorf("result len = %d", m.Len())
	}
	if tbl.Stats().Hits == 0 {
		t.Error("expected hits on repeated elements")
	}
}

func TestGammaTagMaskedReuseAcrossIterations(t *testing.T) {
	// The converted Fig. 2 loop repeats the same value computations at
	// different iteration tags. Tag-masked memoization must hit across
	// iterations and still produce the exact same stable multiset.
	prog, init, err := core.ToGamma(paper.Fig2GraphObservable(10, 4, 8))
	if err != nil {
		t.Fatal(err)
	}
	plain := init.Clone()
	if _, err := gamma.Run(prog, plain, gamma.Options{MaxSteps: 100000}); err != nil {
		t.Fatal(err)
	}
	// A fresh conversion gives fresh Reaction values (their memo plans are
	// per-instance); reuse the same program to exercise plan caching too.
	tbl := NewTable(0)
	memoized := init.Clone()
	stats, err := gamma.Run(prog, memoized, gamma.Options{MaxSteps: 100000, Memo: tbl})
	if err != nil {
		t.Fatal(err)
	}
	if !plain.Equal(memoized) {
		t.Fatalf("memoized run diverged:\nplain    %s\nmemoized %s", plain, memoized)
	}
	if stats.MemoHits == 0 {
		t.Errorf("expected cross-iteration hits, stats %v", tbl.Stats())
	}
	// The y-forwarding steer consumes the same y value every iteration, so
	// the hit count must be substantial (more than one per loop iteration).
	if stats.MemoHits < 8 {
		t.Errorf("memo hits = %d, want >= 8", stats.MemoHits)
	}
}

func TestGammaMemoSoundWithTagInConditionOrProducts(t *testing.T) {
	// A reaction whose condition reads the tag must not use tag masking;
	// results must stay exact.
	r := &gamma.Reaction{
		Name: "gate",
		Patterns: []gamma.Pattern{
			{gamma.FVar("x"), gamma.FLabel("a"), gamma.FVar("v")},
		},
		Branches: []gamma.Branch{
			{Cond: expr.MustParse("v < 2"), Products: []gamma.Template{{
				expr.MustParse("x"), expr.Lit{Val: value.Str("young")}, expr.MustParse("v"),
			}}},
			{Products: []gamma.Template{{
				expr.MustParse("x"), expr.Lit{Val: value.Str("old")}, expr.MustParse("v"),
			}}},
		},
	}
	m := multiset.New(
		multiset.IntElem(7, "a", 0),
		multiset.IntElem(7, "a", 1),
		multiset.IntElem(7, "a", 5),
	)
	tbl := NewTable(0)
	if _, err := gamma.Run(gamma.MustProgram("p", r), m, gamma.Options{Memo: tbl}); err != nil {
		t.Fatal(err)
	}
	if !m.Contains(multiset.IntElem(7, "young", 0)) || !m.Contains(multiset.IntElem(7, "young", 1)) ||
		!m.Contains(multiset.IntElem(7, "old", 5)) {
		t.Fatalf("tag-dependent branching broke under memo: %s", m)
	}
}

func TestConcurrentTableAccess(t *testing.T) {
	tbl := NewTable(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("k%d", i%50)
				if _, ok := tbl.LookupFiring(key); !ok {
					tbl.StoreFiring(key, value.Int(int64(i)))
				}
			}
		}(w)
	}
	wg.Wait()
	st := tbl.Stats()
	if st.Hits+st.Misses != 8*500 {
		t.Errorf("lookup accounting off: %+v", st)
	}
}

// mustTemplate builds the product template [x * 2, 'b', v].
func mustTemplate() gamma.Template {
	return gamma.Template{
		expr.MustParse("x * 2"),
		expr.Lit{Val: value.Str("b")},
		expr.MustParse("v"),
	}
}
