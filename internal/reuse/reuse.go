// Package reuse implements the trace/instruction reuse tables the paper's
// introduction motivates as a cross-model benefit: "exploring and analyzing,
// in a code written in Gamma, ... instructions trace reuse [3]" (DF-DTM).
// One Table serves both runtimes: it memoizes pure vertex firings for the
// dataflow engine (dataflow.Memo) and reaction applications for the Gamma
// engine (gamma.Memo). Because Algorithm 1 maps one vertex to one reaction,
// a Gamma program converted from a dataflow graph enjoys exactly the reuse
// the original graph would — the equivalence makes the technique portable.
package reuse

import (
	"fmt"
	"sync"

	"repro/internal/multiset"
	"repro/internal/value"
)

// Table is a concurrency-safe memoization table with hit/miss accounting and
// an optional capacity bound. The zero value is not usable; call NewTable.
type Table struct {
	mu       sync.RWMutex
	firings  map[string]value.Value
	products map[string][]multiset.Tuple
	capacity int
	hits     int64
	misses   int64
	stores   int64
	evicted  int64
}

// NewTable returns a Table bounding each of its two maps to capacity entries
// (0 = unbounded). Eviction is whole-map reset on overflow — the simplest
// policy whose effect on hit rates the ablation benchmark measures.
func NewTable(capacity int) *Table {
	return &Table{
		firings:  make(map[string]value.Value),
		products: make(map[string][]multiset.Tuple),
		capacity: capacity,
	}
}

// LookupFiring implements dataflow.Memo.
func (t *Table) LookupFiring(key string) (value.Value, bool) {
	t.mu.RLock()
	v, ok := t.firings[key]
	t.mu.RUnlock()
	t.account(ok)
	return v, ok
}

// StoreFiring implements dataflow.Memo.
func (t *Table) StoreFiring(key string, v value.Value) {
	t.mu.Lock()
	if t.capacity > 0 && len(t.firings) >= t.capacity {
		t.firings = make(map[string]value.Value)
		t.evicted++
	}
	t.firings[key] = v
	t.stores++
	t.mu.Unlock()
}

// LookupReaction implements gamma.Memo.
func (t *Table) LookupReaction(key string) ([]multiset.Tuple, bool) {
	t.mu.RLock()
	p, ok := t.products[key]
	t.mu.RUnlock()
	t.account(ok)
	return p, ok
}

// StoreReaction implements gamma.Memo.
func (t *Table) StoreReaction(key string, products []multiset.Tuple) {
	t.mu.Lock()
	if t.capacity > 0 && len(t.products) >= t.capacity {
		t.products = make(map[string][]multiset.Tuple)
		t.evicted++
	}
	t.products[key] = products
	t.stores++
	t.mu.Unlock()
}

func (t *Table) account(hit bool) {
	t.mu.Lock()
	if hit {
		t.hits++
	} else {
		t.misses++
	}
	t.mu.Unlock()
}

// Stats reports the table's counters.
type Stats struct {
	Hits, Misses, Stores, Evictions int64
	Entries                         int
}

// HitRate returns hits/(hits+misses), or 0 before any lookup.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

func (s Stats) String() string {
	return fmt.Sprintf("hits=%d misses=%d rate=%.1f%% stores=%d evictions=%d entries=%d",
		s.Hits, s.Misses, 100*s.HitRate(), s.Stores, s.Evictions, s.Entries)
}

// Stats returns a snapshot of the counters.
func (t *Table) Stats() Stats {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return Stats{
		Hits: t.hits, Misses: t.misses, Stores: t.stores, Evictions: t.evicted,
		Entries: len(t.firings) + len(t.products),
	}
}

// Reset clears entries and counters.
func (t *Table) Reset() {
	t.mu.Lock()
	t.firings = make(map[string]value.Value)
	t.products = make(map[string][]multiset.Tuple)
	t.hits, t.misses, t.stores, t.evicted = 0, 0, 0, 0
	t.mu.Unlock()
}
