package equiv

import (
	"testing"

	"repro/internal/compiler"
	"repro/internal/dataflow"
	"repro/internal/paper"
	"repro/internal/value"
)

func TestCheckFig1(t *testing.T) {
	rep, err := Check(paper.Fig1Graph(), Options{MaxSteps: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Equivalent {
		t.Fatalf("not equivalent: %v", rep.Mismatches)
	}
	if rep.OperatorFirings != 3 || rep.ReactionSteps != 3 {
		t.Errorf("firing correspondence: %d vs %d, want 3 = 3", rep.OperatorFirings, rep.ReactionSteps)
	}
	if len(rep.DataflowOutputs["m"]) != 1 || rep.DataflowOutputs["m"][0].Val != value.Int(0) {
		t.Errorf("m = %v", rep.DataflowOutputs["m"])
	}
}

func TestCheckFig2BothVariants(t *testing.T) {
	for name, g := range map[string]*dataflow.Graph{
		"faithful":   paper.Fig2Graph(),
		"observable": paper.Fig2GraphObservable(10, 4, 3),
	} {
		rep, err := Check(g, Options{MaxSteps: 100000})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !rep.Equivalent {
			t.Errorf("%s: not equivalent: %v", name, rep.Mismatches)
		}
		if rep.OperatorFirings != rep.ReactionSteps {
			t.Errorf("%s: firing correspondence broken: %d vs %d", name, rep.OperatorFirings, rep.ReactionSteps)
		}
	}
}

func TestCheckCompiledPrograms(t *testing.T) {
	srcs := []string{
		`int a = 3; int b = 4; int c; c = a * a + b * b;`,
		`int i; int s = 0; for (i = 6; i > 0; i--) s = s + i; output s;`,
		`int x = 5; int y; y = -x % 3;`,
	}
	for _, src := range srcs {
		g, err := compiler.Compile("prog", src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		rep, err := Check(g, Options{MaxSteps: 100000})
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		if !rep.Equivalent {
			t.Errorf("%q: not equivalent: %v", src, rep.Mismatches)
		}
	}
}

// TestAlgorithm1Equivalence is experiment E9: the equivalence holds on
// seeded random graphs of growing size, in both sequential and parallel
// execution.
func TestAlgorithm1Equivalence(t *testing.T) {
	for seed := int64(1); seed <= 30; seed++ {
		size := 4 + int(seed)%24
		g := RandomGraph(seed, 3+int(seed)%4, size)
		rep, err := Check(g, Options{MaxSteps: 100000})
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, g)
		}
		if !rep.Equivalent {
			t.Errorf("seed %d: not equivalent: %v\n%s", seed, rep.Mismatches, g)
		}
	}
}

func TestAlgorithm1EquivalenceParallel(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		g := RandomGraph(seed*100, 4, 20)
		rep, err := Check(g, Options{
			DataflowWorkers: 4, GammaWorkers: 4, GammaSeed: seed, MaxSteps: 100000,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !rep.Equivalent {
			t.Errorf("seed %d: not equivalent: %v", seed, rep.Mismatches)
		}
	}
}

func TestRandomGraphDeterministic(t *testing.T) {
	g1 := RandomGraph(7, 4, 20)
	g2 := RandomGraph(7, 4, 20)
	if g1.String() != g2.String() {
		t.Error("same seed should give the same graph")
	}
	g3 := RandomGraph(8, 4, 20)
	if g1.String() == g3.String() {
		t.Error("different seeds should differ")
	}
	if err := g1.Validate(); err != nil {
		t.Errorf("random graph invalid: %v", err)
	}
}

func TestRandomGraphAlwaysRunnable(t *testing.T) {
	for seed := int64(100); seed < 120; seed++ {
		g := RandomGraph(seed, 2, 30)
		if _, err := dataflow.Run(g, dataflow.Options{MaxFirings: 100000}); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}
