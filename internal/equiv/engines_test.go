package equiv

import (
	"context"
	"testing"

	"repro/internal/dataflow"
	"repro/internal/paper"
)

// TestEngineDifferentialGoldens cross-checks all three dataflow engines on
// the paper's figures — the workloads whose expected outputs are pinned
// elsewhere in the suite, so a three-way agreement here is an agreement on
// known-correct values.
func TestEngineDifferentialGoldens(t *testing.T) {
	goldens := map[string]func() *dataflow.Graph{
		"fig1":            paper.Fig1Graph,
		"fig1-negative":   func() *dataflow.Graph { return paper.Fig1GraphWith(-7, 5, 3, -2) },
		"fig2":            paper.Fig2Graph,
		"fig2-observable": func() *dataflow.Graph { return paper.Fig2GraphObservable(10, 4, 3) },
		"fig2-else":       func() *dataflow.Graph { return paper.Fig2GraphWith(1, 4, 3) },
	}
	for name, build := range goldens {
		if err := CrossCheckEngines(context.Background(), build(), 4, 10_000); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// TestEngineDifferentialRandom property-tests the three engines against each
// other over seeded random graphs: 200 seeds of varying size, run under the
// race detector by make stress. Every 10th seed additionally runs the full
// dataflow-vs-Gamma equivalence check with the matrix engine on the dataflow
// side, tying the new engine into the paper's central claim rather than just
// into the other engines.
func TestEngineDifferentialRandom(t *testing.T) {
	seeds := 200
	if testing.Short() {
		seeds = 40
	}
	ctx := context.Background()
	for seed := 0; seed < seeds; seed++ {
		g := RandomGraph(int64(seed), 2+seed%3, 4+seed%17)
		if err := CrossCheckEngines(ctx, g, 4, 100_000); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if seed%10 != 0 {
			continue
		}
		rep, err := Check(g, Options{DataflowEngine: dataflow.EngineMatrix, MaxSteps: 100_000})
		if err != nil {
			t.Fatalf("seed %d: matrix-vs-gamma check: %v", seed, err)
		}
		if !rep.Equivalent {
			t.Fatalf("seed %d: matrix engine not equivalent to gamma: %v", seed, rep.Mismatches)
		}
	}
}
