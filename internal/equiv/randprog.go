package equiv

import (
	"fmt"
	"math/rand"
	"strings"
)

// RandomProgram generates a seeded random program in the mini von Neumann
// language — straight-line arithmetic plus bounded counted loops — together
// with a reference interpreter's expected outputs. Compiling it exercises
// the full pipeline (compiler → dataflow with steer/inctag loops →
// Algorithm 1 → Gamma), and the closed-form evaluation makes every stage
// checkable.
//
// Shape: nVars integer variables with small initial values, nStmts random
// statements where each is either an assignment of a random arithmetic
// expression over live variables or a counted loop (a fresh counter from a
// small bound down to 0) whose body updates one or two variables. Every
// variable is output explicitly at the end.
func RandomProgram(seed int64, nVars, nStmts int) (src string, want map[string]int64) {
	rng := rand.New(rand.NewSource(seed))
	if nVars < 1 {
		nVars = 1
	}
	env := make(map[string]int64)
	var names []string
	var b strings.Builder

	for i := 0; i < nVars; i++ {
		name := fmt.Sprintf("v%d", i)
		val := int64(rng.Intn(9) - 4)
		fmt.Fprintf(&b, "int %s = %d;\n", name, val)
		env[name] = val
		names = append(names, name)
	}
	fmt.Fprintf(&b, "int c;\n")

	// exprGen builds a random expression string and its value under env.
	// Depth-bounded; uses only overflow-tame operators.
	var exprGen func(depth int) (string, int64)
	exprGen = func(depth int) (string, int64) {
		if depth <= 0 || rng.Intn(3) == 0 {
			if rng.Intn(2) == 0 {
				v := names[rng.Intn(len(names))]
				return v, env[v]
			}
			k := int64(rng.Intn(7) - 3)
			return fmt.Sprintf("%d", k), k
		}
		l, lv := exprGen(depth - 1)
		r, rv := exprGen(depth - 1)
		switch rng.Intn(3) {
		case 0:
			return fmt.Sprintf("(%s + %s)", l, r), lv + rv
		case 1:
			return fmt.Sprintf("(%s - %s)", l, r), lv - rv
		default:
			// Clamp products: the generator runs loops, so magnitudes can
			// compound; wrap one side in a small modulus via literal choice.
			return fmt.Sprintf("(%s * %s)", l, r), lv * rv
		}
	}

	for s := 0; s < nStmts; s++ {
		if rng.Intn(4) == 0 {
			// A counted loop: for (c = B; c > 0; c--) target = target + expr;
			bound := int64(rng.Intn(4) + 1)
			target := names[rng.Intn(len(names))]
			// The body expression must not read the counter (the reference
			// interpreter below adds it bound times with env frozen per
			// iteration only for variables the body itself updates).
			step, stepVal := exprGen(1)
			fmt.Fprintf(&b, "for (c = %d; c > 0; c--) %s = %s + %s;\n", bound, target, target, step)
			// Reference: if step reads target the recurrence matters.
			if strings.Contains(step, target) {
				for i := int64(0); i < bound; i++ {
					env[target] = env[target] + evalRef(step, env)
				}
			} else {
				env[target] += stepVal * bound
			}
		} else {
			target := names[rng.Intn(len(names))]
			e, v := exprGen(2)
			fmt.Fprintf(&b, "%s = %s;\n", target, e)
			env[target] = v
		}
	}
	want = make(map[string]int64, len(names))
	for _, n := range names {
		fmt.Fprintf(&b, "output %s;\n", n)
		want[n] = env[n]
	}
	return b.String(), want
}

// evalRef re-evaluates a generated expression string under env. The grammar
// is tiny (fully parenthesized binary ops over idents and literals), so a
// recursive scanner suffices; this keeps the reference independent of the
// production expression engine.
func evalRef(s string, env map[string]int64) int64 {
	v, rest := evalRefScan(strings.TrimSpace(s), env)
	_ = rest
	return v
}

func evalRefScan(s string, env map[string]int64) (int64, string) {
	s = strings.TrimLeft(s, " ")
	if strings.HasPrefix(s, "(") {
		l, rest := evalRefScan(s[1:], env)
		rest = strings.TrimLeft(rest, " ")
		op := rest[0]
		r, rest2 := evalRefScan(rest[1:], env)
		rest2 = strings.TrimLeft(rest2, " ")
		rest2 = strings.TrimPrefix(rest2, ")")
		switch op {
		case '+':
			return l + r, rest2
		case '-':
			return l - r, rest2
		default:
			return l * r, rest2
		}
	}
	// ident or integer literal (possibly negative)
	i := 0
	for i < len(s) && (s[i] == '-' || s[i] == '_' ||
		(s[i] >= '0' && s[i] <= '9') || (s[i] >= 'a' && s[i] <= 'z')) {
		i++
	}
	tok, rest := s[:i], s[i:]
	if v, ok := env[tok]; ok {
		return v, rest
	}
	var n int64
	fmt.Sscanf(tok, "%d", &n)
	return n, rest
}
