// Package equiv is the empirical equivalence harness for the paper's central
// claim: a dynamic dataflow graph and its Algorithm-1 Gamma translation
// compute the same results. It runs both sides on the same inputs, compares
// the dataflow terminal tokens with the Gamma stable multiset, and checks the
// step-count invariant from the sketch of proof (§III-C): every operator
// firing corresponds to exactly one reaction firing.
//
// The package also provides a seeded random-graph generator so the
// equivalence can be property-tested over arbitrary graphs rather than just
// the paper's two figures.
package equiv

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sort"

	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/gamma"
	"repro/internal/rt"
	"repro/internal/value"
)

// Options configures a Check run.
type Options struct {
	// DataflowWorkers and GammaWorkers select the schedulers (0/1 =
	// sequential deterministic).
	DataflowWorkers int
	GammaWorkers    int
	// DataflowEngine overrides the dataflow execution engine ("" = let
	// DataflowWorkers decide; dataflow.EngineMatrix = bulk-synchronous).
	DataflowEngine string
	// GammaSeed randomizes the Gamma matcher's nondeterministic choices.
	GammaSeed int64
	// MaxSteps bounds both executions (0 = none); diverging graphs error.
	MaxSteps int64
}

// Report is the outcome of one equivalence check.
type Report struct {
	Equivalent bool
	// Mismatches lists human-readable discrepancies when not equivalent.
	Mismatches []string
	// DataflowOutputs and GammaOutputs are the two observed output maps.
	DataflowOutputs map[string][]dataflow.TaggedValue
	GammaOutputs    map[string][]dataflow.TaggedValue
	// OperatorFirings counts non-const vertex activations; ReactionSteps
	// counts reaction firings. The §III-C correspondence makes them equal.
	OperatorFirings int64
	ReactionSteps   int64
}

// Check converts g with Algorithm 1, runs both models, and compares.
// Check is CheckContext with context.Background().
func Check(g *dataflow.Graph, opt Options) (*Report, error) {
	return CheckContext(context.Background(), g, opt)
}

// CheckContext is Check under a context: the deadline or cancellation
// propagates into both executions, so a diverging side stops promptly.
// Budget exhaustion on either side (Options.MaxSteps) is classified as
// rt.ErrDivergent — for the harness, "didn't stabilize within the budget" is
// evidence of divergence, not an infrastructure failure.
func CheckContext(ctx context.Context, g *dataflow.Graph, opt Options) (*Report, error) {
	dfRes, err := dataflow.RunContext(ctx, g, dataflow.Options{
		Workers: opt.DataflowWorkers, MaxFirings: opt.MaxSteps, Engine: opt.DataflowEngine,
	})
	if err != nil {
		return nil, fmt.Errorf("equiv: dataflow run: %w", markBudget(err))
	}
	prog, init, err := core.ToGamma(g)
	if err != nil {
		return nil, fmt.Errorf("equiv: conversion: %w", err)
	}
	gmStats, err := gamma.RunContext(ctx, prog, init, gamma.Options{
		Workers: opt.GammaWorkers, Seed: opt.GammaSeed, MaxSteps: 4 * opt.MaxSteps,
	})
	if err != nil {
		return nil, fmt.Errorf("equiv: gamma run: %w", markBudget(err))
	}

	rep := &Report{
		DataflowOutputs: dfRes.Outputs,
		GammaOutputs:    core.OutputsFromMultiset(init, g.OutputLabels()),
		ReactionSteps:   gmStats.Steps,
	}
	constFirings := int64(len(g.RootNodes()))
	rep.OperatorFirings = dfRes.Firings - constFirings

	rep.Equivalent = true
	labels := make(map[string]bool)
	for l := range rep.DataflowOutputs {
		labels[l] = true
	}
	for l := range rep.GammaOutputs {
		labels[l] = true
	}
	sorted := make([]string, 0, len(labels))
	for l := range labels {
		sorted = append(sorted, l)
	}
	sort.Strings(sorted)
	for _, l := range sorted {
		if !reflect.DeepEqual(rep.DataflowOutputs[l], rep.GammaOutputs[l]) {
			rep.Equivalent = false
			rep.Mismatches = append(rep.Mismatches, fmt.Sprintf(
				"output %s: dataflow %v, gamma %v", l, rep.DataflowOutputs[l], rep.GammaOutputs[l]))
		}
	}
	// Non-output elements left in the stable multiset must correspond one to
	// one with operands stuck in the dataflow matching stores (tokens whose
	// partner operand a steer discarded). Both counts being equal is part of
	// the §III-C correspondence: an element awaiting a reaction is exactly an
	// operand awaiting a firing.
	residual := init.Len()
	for _, vs := range rep.GammaOutputs {
		residual -= len(vs)
	}
	if residual != dfRes.Pending {
		rep.Equivalent = false
		rep.Mismatches = append(rep.Mismatches, fmt.Sprintf(
			"stuck-operand correspondence broken: %d dataflow pending operands vs %d residual elements in %s",
			dfRes.Pending, residual, init))
	}
	if rep.OperatorFirings != rep.ReactionSteps {
		rep.Equivalent = false
		rep.Mismatches = append(rep.Mismatches, fmt.Sprintf(
			"firing correspondence broken: %d operator firings vs %d reaction steps",
			rep.OperatorFirings, rep.ReactionSteps))
	}
	return rep, nil
}

// markBudget classifies a step-budget overrun as divergence for the harness's
// callers while leaving every other error (cancellation, deadline, vertex
// faults) untouched.
func markBudget(err error) error {
	if errors.Is(err, rt.ErrMaxSteps) {
		return rt.Mark(rt.ErrDivergent, err)
	}
	return err
}

// RandomGraph generates a seeded random acyclic dataflow graph with roots
// const inputs and n operator vertices drawn from arithmetic ({+ - *},
// avoiding data-dependent division errors), comparisons, unary negation,
// copies and steers. Steer control inputs are always comparison outputs, the
// 1/0 control convention of the paper. Every dangling operator output
// becomes a program output edge.
func RandomGraph(seed int64, roots, n int) *dataflow.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := dataflow.NewGraph(fmt.Sprintf("rand%d", seed))

	type src struct {
		node    dataflow.NodeID
		port    int
		control bool // produced by a comparison (safe steer control)
	}
	var sources []src
	edgeN := 0
	label := func() string {
		edgeN++
		return fmt.Sprintf("e%d", edgeN)
	}
	connect := func(s src, to dataflow.NodeID, port int) {
		if _, err := g.Connect(s.node, s.port, to, port, label()); err != nil {
			panic(fmt.Sprintf("equiv: random graph wiring failed: %v", err))
		}
	}

	for i := 0; i < roots; i++ {
		id := g.AddConst(fmt.Sprintf("in%d", i), value.Int(int64(rng.Intn(41)-20)))
		sources = append(sources, src{node: id, port: 0})
	}
	pick := func() src { return sources[rng.Intn(len(sources))] }
	pickControl := func() (src, bool) {
		var ctls []src
		for _, s := range sources {
			if s.control {
				ctls = append(ctls, s)
			}
		}
		if len(ctls) == 0 {
			return src{}, false
		}
		return ctls[rng.Intn(len(ctls))], true
	}

	arithOps := []string{"+", "-", "*"}
	cmpOps := []string{"==", "!=", "<", "<=", ">", ">="}
	for i := 0; i < n; i++ {
		switch rng.Intn(10) {
		case 0, 1, 2, 3: // arith
			op := arithOps[rng.Intn(len(arithOps))]
			var id dataflow.NodeID
			if rng.Intn(3) == 0 {
				imm := value.Int(int64(rng.Intn(9) + 1))
				if rng.Intn(2) == 0 {
					id = g.AddArithImm(fmt.Sprintf("op%d", i), op, imm)
				} else {
					id = g.AddArithImmLeft(fmt.Sprintf("op%d", i), op, imm)
				}
				connect(pick(), id, 0)
			} else {
				id = g.AddArith(fmt.Sprintf("op%d", i), op)
				connect(pick(), id, 0)
				connect(pick(), id, 1)
			}
			sources = append(sources, src{node: id, port: 0})
		case 4, 5: // compare
			op := cmpOps[rng.Intn(len(cmpOps))]
			var id dataflow.NodeID
			if rng.Intn(2) == 0 {
				id = g.AddCompareImm(fmt.Sprintf("cmp%d", i), op, value.Int(int64(rng.Intn(21)-10)))
				connect(pick(), id, 0)
			} else {
				id = g.AddCompare(fmt.Sprintf("cmp%d", i), op)
				connect(pick(), id, 0)
				connect(pick(), id, 1)
			}
			sources = append(sources, src{node: id, port: 0, control: true})
		case 6: // unary negation
			id := g.AddUnary(fmt.Sprintf("neg%d", i), "-")
			connect(pick(), id, 0)
			sources = append(sources, src{node: id, port: 0})
		case 7: // copy
			id := g.AddCopy(fmt.Sprintf("cp%d", i))
			connect(pick(), id, 0)
			sources = append(sources, src{node: id, port: 0})
		default: // steer, when a control source exists
			ctl, ok := pickControl()
			if !ok {
				id := g.AddArith(fmt.Sprintf("op%d", i), "+")
				connect(pick(), id, 0)
				connect(pick(), id, 1)
				sources = append(sources, src{node: id, port: 0})
				continue
			}
			id := g.AddSteer(fmt.Sprintf("st%d", i))
			connect(pick(), id, 0)
			connect(ctl, id, 1)
			sources = append(sources, src{node: id, port: dataflow.PortTrue})
			sources = append(sources, src{node: id, port: dataflow.PortFalse})
		}
	}
	// Terminal edges for every port that has no consumers yet.
	hasConsumer := make(map[[2]int]bool)
	for _, e := range g.Edges {
		hasConsumer[[2]int{int(e.From), e.FromPort}] = true
	}
	outN := 0
	for _, s := range sources {
		if !hasConsumer[[2]int{int(s.node), s.port}] {
			if _, err := g.ConnectOut(s.node, s.port, fmt.Sprintf("out%d", outN)); err != nil {
				panic(fmt.Sprintf("equiv: random graph output failed: %v", err))
			}
			outN++
		}
	}
	return g
}
