package equiv

import (
	"context"
	"fmt"
	"reflect"

	"repro/internal/dataflow"
)

// CrossCheckEngines runs g under all three dataflow engines — sequential,
// parallel (with the given worker count), and bulk-synchronous matrix — and
// verifies they agree on every deterministic observable: terminal outputs,
// total firing count, and stuck-operand count. The dataflow firing rule is
// confluent (§II-A: a fireable vertex stays fireable until it fires, and
// firings on distinct tags commute), so any schedule must reach the same
// stable state; a disagreement is an engine bug, never legitimate
// nondeterminism. Returns nil when all engines agree.
func CrossCheckEngines(ctx context.Context, g *dataflow.Graph, workers int, maxSteps int64) error {
	type run struct {
		name string
		opt  dataflow.Options
	}
	runs := []run{
		{"seq", dataflow.Options{Workers: 1, MaxFirings: maxSteps}},
		{"parallel", dataflow.Options{Workers: workers, MaxFirings: maxSteps}},
		{"matrix", dataflow.Options{Engine: dataflow.EngineMatrix, MaxFirings: maxSteps}},
	}
	var ref *dataflow.Result
	for _, r := range runs {
		res, err := dataflow.RunContext(ctx, g, r.opt)
		if err != nil {
			return fmt.Errorf("equiv: %s engine: %w", r.name, markBudget(err))
		}
		if ref == nil {
			ref = res
			continue
		}
		if !reflect.DeepEqual(res.Outputs, ref.Outputs) {
			return fmt.Errorf("equiv: %s engine outputs diverge from seq: %v vs %v",
				r.name, res.Outputs, ref.Outputs)
		}
		if res.Firings != ref.Firings {
			return fmt.Errorf("equiv: %s engine fired %d times, seq fired %d",
				r.name, res.Firings, ref.Firings)
		}
		if res.Pending != ref.Pending {
			return fmt.Errorf("equiv: %s engine left %d pending operands, seq left %d",
				r.name, res.Pending, ref.Pending)
		}
	}
	return nil
}
