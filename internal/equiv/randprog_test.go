package equiv

import (
	"testing"

	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/value"
)

// TestRandomProgramsPipeline is the strongest end-to-end property: random
// mini-language programs (with loops) agree between the reference
// interpreter, the dataflow runtime and the Algorithm-1 Gamma translation.
func TestRandomProgramsPipeline(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		src, want := RandomProgram(seed, 2+int(seed)%3, 3+int(seed)%5)
		g, err := compiler.Compile("rand", src)
		if err != nil {
			t.Fatalf("seed %d: compile: %v\n%s", seed, err, src)
		}
		res, err := dataflow.Run(g, dataflow.Options{MaxFirings: 1_000_000})
		if err != nil {
			t.Fatalf("seed %d: run: %v\n%s", seed, err, src)
		}
		for name, w := range want {
			got, ok := res.Output(name)
			if !ok || got != value.Int(w) {
				t.Errorf("seed %d: %s = %v, want %d\n%s", seed, name, got, w, src)
			}
		}
		rep, err := Check(g, Options{MaxSteps: 1_000_000})
		if err != nil {
			t.Fatalf("seed %d: equivalence: %v\n%s", seed, err, src)
		}
		if !rep.Equivalent {
			t.Errorf("seed %d: not equivalent: %v\n%s", seed, rep.Mismatches, src)
		}
	}
}

// TestRandomProgramsReconstruct closes the loop: the Gamma translation of a
// random program reconstructs (classifier + ProgramToGraph, including drain
// vertices for dead code) into a graph computing the same outputs.
func TestRandomProgramsReconstruct(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		src, want := RandomProgram(seed*13, 3, 8)
		g, err := compiler.Compile("rand", src)
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, src)
		}
		prog, init, err := core.ToGamma(g)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		back, err := core.ProgramToGraph("back", prog, init)
		if err != nil {
			t.Fatalf("seed %d: reconstruct: %v\n%s", seed, err, src)
		}
		res, err := dataflow.Run(back, dataflow.Options{MaxFirings: 1_000_000})
		if err != nil {
			t.Fatalf("seed %d: run: %v", seed, err)
		}
		for name, w := range want {
			if got, ok := res.Output(name); !ok || got != value.Int(w) {
				t.Errorf("seed %d: reconstructed %s = %v, want %d\n%s", seed, name, got, w, src)
			}
		}
	}
}

func TestRandomProgramDeterministic(t *testing.T) {
	s1, w1 := RandomProgram(5, 3, 6)
	s2, w2 := RandomProgram(5, 3, 6)
	if s1 != s2 {
		t.Error("same seed should generate the same source")
	}
	for k, v := range w1 {
		if w2[k] != v {
			t.Errorf("expected outputs differ at %s", k)
		}
	}
	s3, _ := RandomProgram(6, 3, 6)
	if s1 == s3 {
		t.Error("different seeds should differ")
	}
}

func TestRandomProgramMinVars(t *testing.T) {
	src, want := RandomProgram(1, 0, 2) // nVars clamps to 1
	g, err := compiler.Compile("tiny", src)
	if err != nil {
		t.Fatalf("%v\n%s", err, src)
	}
	res, err := dataflow.Run(g, dataflow.Options{MaxFirings: 100000})
	if err != nil {
		t.Fatal(err)
	}
	for name, w := range want {
		if got, _ := res.Output(name); got != value.Int(w) {
			t.Errorf("%s = %v, want %d", name, got, w)
		}
	}
}

func TestEvalRefMatchesGenerator(t *testing.T) {
	env := map[string]int64{"v0": 3, "v1": -2}
	cases := map[string]int64{
		"5":               5,
		"-4":              -4,
		"v0":              3,
		"(v0 + v1)":       1,
		"(v0 - (v1 * 2))": 7,
		"((v0 + 1) * v1)": -8,
		"((1 - 2) - 3)":   -4,
	}
	for src, want := range cases {
		if got := evalRef(src, env); got != want {
			t.Errorf("evalRef(%q) = %d, want %d", src, got, want)
		}
	}
}
