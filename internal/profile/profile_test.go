package profile

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/gamma"
	"repro/internal/gammalang"
	"repro/internal/multiset"
	"repro/internal/paper"
	"repro/internal/value"
)

func TestCollectorManual(t *testing.T) {
	c := NewCollector()
	// Diamond: a and b independent, c consumes both.
	c.RecordFiring("a", nil, []string{"x"})
	c.RecordFiring("b", nil, []string{"y"})
	c.RecordFiring("c", []string{"x", "y"}, []string{"z"})
	r := c.Report()
	if r.Work != 3 || r.Span != 2 {
		t.Fatalf("work=%d span=%d, want 3/2", r.Work, r.Span)
	}
	if r.Parallelism != 1.5 || r.PeakWidth != 2 {
		t.Errorf("parallelism=%v peak=%d", r.Parallelism, r.PeakWidth)
	}
	if len(r.Profile) != 2 || r.Profile[0] != 2 || r.Profile[1] != 1 {
		t.Errorf("profile = %v", r.Profile)
	}
	if r.PerName["a"] != 1 || r.PerName["c"] != 1 {
		t.Errorf("per-name = %v", r.PerName)
	}
	if !strings.Contains(r.String(), "work=3 span=2") {
		t.Errorf("render: %s", r)
	}
	c.Reset()
	if rr := c.Report(); rr.Work != 0 || rr.Span != 0 || rr.Parallelism != 0 {
		t.Errorf("after reset: %+v", rr)
	}
}

func TestDuplicateKeysStack(t *testing.T) {
	c := NewCollector()
	// Two producers of the same key (multiset multiplicity), two consumers.
	c.RecordFiring("p1", nil, []string{"k"})
	c.RecordFiring("p2", []string{"k"}, []string{"k"}) // depth 2, k restacked
	c.RecordFiring("c1", []string{"k"}, nil)           // consumes p2's k: depth 3
	r := c.Report()
	if r.Span != 3 {
		t.Errorf("span = %d, want 3 (chained through duplicate key)", r.Span)
	}
}

func TestFig1DataflowSpan(t *testing.T) {
	col := NewCollector()
	if _, err := dataflow.Run(paper.Fig1Graph(), dataflow.Options{Tracer: col}); err != nil {
		t.Fatal(err)
	}
	r := col.Report()
	// consts at depth 1, R1/R2 at depth 2, R3 at depth 3.
	if r.Work != 7 || r.Span != 3 {
		t.Fatalf("work=%d span=%d, want 7/3 (%s)", r.Work, r.Span, r)
	}
	if r.PeakWidth != 4 { // the four const firings
		t.Errorf("peak = %d, want 4", r.PeakWidth)
	}
}

func TestFig1GammaSpan(t *testing.T) {
	prog, init, err := core.ToGamma(paper.Fig1Graph())
	if err != nil {
		t.Fatal(err)
	}
	col := NewCollector()
	if _, err := gamma.Run(prog, init, gamma.Options{Tracer: col}); err != nil {
		t.Fatal(err)
	}
	r := col.Report()
	// R1 and R2 at depth 1 (consuming initial elements), R3 at depth 2.
	if r.Work != 3 || r.Span != 2 {
		t.Fatalf("work=%d span=%d, want 3/2 (%s)", r.Work, r.Span, r)
	}
	if r.Parallelism != 1.5 {
		t.Errorf("parallelism = %v", r.Parallelism)
	}
}

// TestReductionShrinksSpan quantifies §III-A3: Rd1 does Example 1 in span 1,
// the full program needs span 2 — the reduction trades parallelism away.
func TestReductionShrinksSpan(t *testing.T) {
	full, err := gammalang.ParseProgram("full", paper.Example1GammaListing)
	if err != nil {
		t.Fatal(err)
	}
	reduced, _, err := core.Reduce(full)
	if err != nil {
		t.Fatal(err)
	}
	span := func(p *gamma.Program) (int64, int64) {
		m, err := multiset.Parse(paper.Example1InitialMultiset)
		if err != nil {
			t.Fatal(err)
		}
		col := NewCollector()
		if _, err := gamma.Run(p, m, gamma.Options{Tracer: col}); err != nil {
			t.Fatal(err)
		}
		r := col.Report()
		return r.Work, r.Span
	}
	fw, fs := span(full)
	rw, rs := span(reduced)
	if fw != 3 || fs != 2 {
		t.Errorf("full: work=%d span=%d, want 3/2", fw, fs)
	}
	if rw != 1 || rs != 1 {
		t.Errorf("reduced: work=%d span=%d, want 1/1", rw, rs)
	}
}

func TestLoopSpanGrowsWithIterations(t *testing.T) {
	spanFor := func(z int64) int64 {
		col := NewCollector()
		g := paper.Fig2GraphObservable(10, 4, z)
		if _, err := dataflow.Run(g, dataflow.Options{Tracer: col, MaxFirings: 100000}); err != nil {
			t.Fatal(err)
		}
		return col.Report().Span
	}
	s2, s8 := spanFor(2), spanFor(8)
	if s8 <= s2 {
		t.Errorf("span should grow with iterations: z=2 -> %d, z=8 -> %d", s2, s8)
	}
	// The loop is inherently sequential: span grows linearly, roughly 5-6
	// firings per iteration on the critical path.
	if s8 < 30 {
		t.Errorf("z=8 span = %d, expected a long sequential chain", s8)
	}
}

func TestParallelRuntimesProduceSameWork(t *testing.T) {
	// Tracing under the parallel runtimes: same work, and the gamma span
	// must match the sequential one (dependencies are schedule-independent
	// for this confluent program).
	prog, init, err := core.ToGamma(paper.Fig1Graph())
	if err != nil {
		t.Fatal(err)
	}
	col := NewCollector()
	if _, err := gamma.Run(prog, init.Clone(), gamma.Options{Workers: 4, Seed: 3, Tracer: col}); err != nil {
		t.Fatal(err)
	}
	r := col.Report()
	if r.Work != 3 || r.Span != 2 {
		t.Errorf("parallel gamma: %s, want work=3 span=2", r)
	}
	col2 := NewCollector()
	if _, err := dataflow.Run(paper.Fig1Graph(), dataflow.Options{Workers: 4, Tracer: col2}); err != nil {
		t.Fatal(err)
	}
	if r2 := col2.Report(); r2.Work != 7 {
		t.Errorf("parallel dataflow work = %d, want 7", r2.Work)
	}
}

func TestCollectorConcurrentSafety(t *testing.T) {
	c := NewCollector()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				c.RecordFiring("n", nil, []string{value.Int(int64(w*1000 + i)).String()})
			}
		}(w)
	}
	wg.Wait()
	if r := c.Report(); r.Work != 1600 {
		t.Errorf("work = %d", r.Work)
	}
}

// TestMinElementSpanLogarithmicIdeal: with nondeterministic pairing the min
// reduction has span between log2(n) (balanced tournament) and n-1 (chain).
func TestMinElementSpan(t *testing.T) {
	prog, err := gammalang.ParseProgram("min", paper.MinElementListing)
	if err != nil {
		t.Fatal(err)
	}
	m := multiset.New()
	for i := int64(1); i <= 32; i++ {
		m.Add(multiset.New1(value.Int(i)))
	}
	col := NewCollector()
	if _, err := gamma.Run(prog, m, gamma.Options{Seed: 5, Tracer: col}); err != nil {
		t.Fatal(err)
	}
	r := col.Report()
	if r.Work != 31 {
		t.Errorf("work = %d, want 31", r.Work)
	}
	if r.Span < 5 || r.Span > 31 {
		t.Errorf("span = %d, want within [log2(32), 31]", r.Span)
	}
}
