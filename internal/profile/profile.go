// Package profile computes model-level parallelism metrics from execution
// traces of either runtime: total work (firings), critical-path span (the
// longest chain of data dependencies) and average parallelism (work/span).
//
// This is the analysis infrastructure the paper motivates in §I: converting
// between the models lets a Gamma program be studied with dataflow execution
// analyses (speculative and out-of-order execution [2]). Span and
// parallelism are *model* properties — the maximum speedup any scheduler
// could extract — so they complement the wall-clock scaling measurements and
// quantify the §III-A3 observation that reductions shrink parallelism: the
// fused Rd1 has span 1 where R1–R3 have span 2.
//
// A Collector implements both dataflow.Tracer and gamma.Tracer: firings
// arrive with opaque keys for the tokens/elements they consume and produce;
// the collector threads dependencies by key (multiple live carriers of the
// same key form a stack, matching multiset multiplicity) and maintains the
// dependency depth of every firing incrementally.
package profile

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Collector accumulates an execution trace. It is safe for concurrent use;
// the zero value is not usable, call NewCollector.
type Collector struct {
	mu sync.Mutex
	// depthOf maps a live token/element key to the depth of the firing that
	// produced it. Duplicate keys (multiset multiplicity, token queues)
	// stack.
	depthOf map[string][]int64
	work    int64
	span    int64
	perName map[string]int64
	// depthCensus counts firings per depth level: a work profile over the
	// critical path, whose maximum is the peak exploitable parallelism.
	depthCensus map[int64]int64
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{
		depthOf:     make(map[string][]int64),
		perName:     make(map[string]int64),
		depthCensus: make(map[int64]int64),
	}
}

// RecordFiring implements dataflow.Tracer and gamma.Tracer. The firing's
// depth is 1 + the maximum depth among its consumed keys (keys with no
// recorded producer are initial inputs at depth 0).
func (c *Collector) RecordFiring(name string, consumed, produced []string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	depth := int64(1)
	for _, key := range consumed {
		stack := c.depthOf[key]
		if len(stack) == 0 {
			continue // initial token/element
		}
		d := stack[len(stack)-1] + 1
		if d > depth {
			depth = d
		}
		if len(stack) == 1 {
			delete(c.depthOf, key)
		} else {
			c.depthOf[key] = stack[:len(stack)-1]
		}
	}
	for _, key := range produced {
		c.depthOf[key] = append(c.depthOf[key], depth)
	}
	c.work++
	c.perName[name]++
	c.depthCensus[depth]++
	if depth > c.span {
		c.span = depth
	}
}

// Report is the analysis of one traced execution.
type Report struct {
	// Work is the number of firings.
	Work int64
	// Span is the critical path length: the longest dependency chain.
	Span int64
	// Parallelism is Work/Span, the average parallelism available to an
	// ideal scheduler.
	Parallelism float64
	// PeakWidth is the largest number of firings at one dependency depth,
	// an upper bound on the useful worker count at any instant.
	PeakWidth int64
	// PerName counts firings per vertex/reaction name.
	PerName map[string]int64
	// Profile lists the firing count per depth level, index 0 = depth 1.
	Profile []int64
}

// Report computes the metrics for everything recorded so far.
func (c *Collector) Report() Report {
	c.mu.Lock()
	defer c.mu.Unlock()
	r := Report{Work: c.work, Span: c.span, PerName: make(map[string]int64, len(c.perName))}
	for k, v := range c.perName {
		r.PerName[k] = v
	}
	if c.span > 0 {
		r.Parallelism = float64(c.work) / float64(c.span)
		r.Profile = make([]int64, c.span)
		for depth, n := range c.depthCensus {
			r.Profile[depth-1] = n
			if n > r.PeakWidth {
				r.PeakWidth = n
			}
		}
	}
	return r
}

// Reset clears the collector for reuse.
func (c *Collector) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.depthOf = make(map[string][]int64)
	c.perName = make(map[string]int64)
	c.depthCensus = make(map[int64]int64)
	c.work, c.span = 0, 0
}

func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "work=%d span=%d parallelism=%.2f peak=%d", r.Work, r.Span, r.Parallelism, r.PeakWidth)
	if len(r.PerName) > 0 {
		names := make([]string, 0, len(r.PerName))
		for n := range r.PerName {
			names = append(names, n)
		}
		sort.Strings(names)
		b.WriteString(" [")
		for i, n := range names {
			if i > 0 {
				b.WriteString(" ")
			}
			fmt.Fprintf(&b, "%s:%d", n, r.PerName[n])
		}
		b.WriteString("]")
	}
	return b.String()
}
