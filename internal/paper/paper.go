// Package paper holds executable reproductions of the artifacts in the
// paper's §III: the Fig. 1 and Fig. 2 dataflow graphs, their Gamma listings
// (Examples 1 and 2), the reduced listings (Rd1, Rd11–Rd16) and the Eq. 2
// min-element reaction. Tests and benchmarks across the repository treat
// this package as the ground truth for "what the paper says".
package paper

import (
	"fmt"

	"repro/internal/dataflow"
	"repro/internal/value"
)

// Example1 parameters: int x = 1; y = 5; k = 3; j = 2; m = (x+y)-(k*j).
const (
	Example1X = 1
	Example1Y = 5
	Example1K = 3
	Example1J = 2
	// Example1M is the expected output m = (1+5)-(3*2).
	Example1M = (Example1X + Example1Y) - (Example1K * Example1J)
)

// Fig1Graph builds the Fig. 1 dataflow graph for m = (x+y)-(k*j) with the
// paper's vertex and edge labels: squares A1..D1 feed R1 (+) and R2 (*),
// whose outputs B2 and C2 feed R3 (-) producing m.
func Fig1Graph() *dataflow.Graph {
	return Fig1GraphWith(Example1X, Example1Y, Example1K, Example1J)
}

// Fig1GraphWith is Fig1Graph with arbitrary input constants.
func Fig1GraphWith(x, y, k, j int64) *dataflow.Graph {
	g := dataflow.NewGraph("fig1")
	cx := g.AddConst("x", value.Int(x))
	cy := g.AddConst("y", value.Int(y))
	ck := g.AddConst("k", value.Int(k))
	cj := g.AddConst("j", value.Int(j))
	r1 := g.AddArith("R1", "+")
	r2 := g.AddArith("R2", "*")
	r3 := g.AddArith("R3", "-")
	mustEdge(g.Connect(cx, 0, r1, 0, "A1"))
	mustEdge(g.Connect(cy, 0, r1, 1, "B1"))
	mustEdge(g.Connect(ck, 0, r2, 0, "C1"))
	mustEdge(g.Connect(cj, 0, r2, 1, "D1"))
	mustEdge(g.Connect(r1, 0, r3, 0, "B2"))
	mustEdge(g.Connect(r2, 0, r3, 1, "C2"))
	mustEdge(g.ConnectOut(r3, 0, "m"))
	return g
}

// Example2 parameters for the Fig. 2 loop. The printed source is
// "For (i=z; i<0; i--) x = x + y" but the graph the paper draws and converts
// tests id1 > 0 (reaction R14) and decrements, i.e. it executes x += y for z
// iterations while z > 0.
const (
	Example2Y = 4
	Example2Z = 3
	Example2X = 10
)

// Example2Result returns the loop's final x for given inputs: x + y*z when
// z > 0, else x.
func Example2Result(x, y, z int64) int64 {
	if z > 0 {
		return x + y*z
	}
	return x
}

// Fig2Graph builds the Fig. 2 dynamic dataflow graph exactly as listed:
// three inctag vertices (R11–R13), the comparison R14 (id1 > 0) fanning its
// control to three steers (R15–R17), the decrement R18 and the accumulator
// R19. The listing discards all operands on loop exit ("by 0 else"), so the
// faithful graph leaves every steer's false port unconnected and the program
// produces no output tokens.
func Fig2Graph() *dataflow.Graph {
	return fig2(false, Example2X, Example2Y, Example2Z)
}

// Fig2GraphWith is Fig2Graph with arbitrary input constants.
func Fig2GraphWith(x, y, z int64) *dataflow.Graph {
	return fig2(false, x, y, z)
}

// Fig2GraphObservable is Fig2Graph with one change: the false port of the
// x-steer R17 is routed to a terminal edge "xout", so the loop's final
// accumulator value is observable. This variant exists because the paper's
// listing deliberately discards all state on exit; the observable form lets
// tests and the equivalence harness check the loop actually computed
// x + y*z.
func Fig2GraphObservable(x, y, z int64) *dataflow.Graph {
	return fig2(true, x, y, z)
}

func fig2(observable bool, x, y, z int64) *dataflow.Graph {
	g := dataflow.NewGraph("fig2")
	cy := g.AddConst("y", value.Int(y))
	cz := g.AddConst("z", value.Int(z))
	cx := g.AddConst("x", value.Int(x))

	r11 := g.AddIncTag("R11") // y path
	r12 := g.AddIncTag("R12") // z path
	r13 := g.AddIncTag("R13") // x path
	r14 := g.AddCompareImm("R14", ">", value.Int(0))
	r15 := g.AddSteer("R15") // y steer
	r16 := g.AddSteer("R16") // z steer
	r17 := g.AddSteer("R17") // x steer
	r18 := g.AddArithImm("R18", "-", value.Int(1))
	r19 := g.AddArith("R19", "+") // x + y

	// Initial edges, tag 0.
	mustEdge(g.Connect(cy, 0, r11, 0, "A1"))
	mustEdge(g.Connect(cz, 0, r12, 0, "B1"))
	mustEdge(g.Connect(cx, 0, r13, 0, "C1"))

	// Inctag outputs (iteration tag v+1). R12 fans out to the comparison
	// (B12) and the z steer's data input (B13).
	mustEdge(g.Connect(r11, 0, r15, 0, "A12"))
	mustEdge(g.Connect(r12, 0, r14, 0, "B12"))
	mustEdge(g.Connect(r12, 0, r16, 0, "B13"))
	mustEdge(g.Connect(r13, 0, r17, 0, "C12"))

	// R14 compares z > 0 and fans the control operand to all three steers
	// (edges B14, B15, B16).
	mustEdge(g.Connect(r14, 0, r15, 1, "B14"))
	mustEdge(g.Connect(r14, 0, r16, 1, "B15"))
	mustEdge(g.Connect(r14, 0, r17, 1, "B16"))

	// True paths: y loops back (A11) and feeds the adder (A13); z continues
	// to the decrement (B17); x continues to the adder (C13).
	mustEdge(g.Connect(r15, dataflow.PortTrue, r11, 0, "A11"))
	mustEdge(g.Connect(r15, dataflow.PortTrue, r19, 0, "A13"))
	mustEdge(g.Connect(r16, dataflow.PortTrue, r18, 0, "B17"))
	mustEdge(g.Connect(r17, dataflow.PortTrue, r19, 1, "C13"))

	// Decrement and accumulate, looping back as B11 and C11.
	mustEdge(g.Connect(r18, 0, r12, 0, "B11"))
	mustEdge(g.Connect(r19, 0, r13, 0, "C11"))

	if observable {
		mustEdge(g.Connect(r17, dataflow.PortFalse, dataflow.NoNode, 0, "xout"))
	}
	return g
}

func mustEdge(id dataflow.EdgeID, err error) dataflow.EdgeID {
	if err != nil {
		panic(fmt.Sprintf("paper: fixture graph is malformed: %v", err))
	}
	return id
}

// Example1GammaListing is the paper's Example-1 Gamma code (reactions R1–R3)
// in the Fig. 3 grammar.
const Example1GammaListing = `
R1 = replace [id1, 'A1'], [id2, 'B1']
     by [id1 + id2, 'B2']

R2 = replace [id1, 'C1'], [id2, 'D1']
     by [id1 * id2, 'C2']

R3 = replace [id1, 'B2'], [id2, 'C2']
     by [id1 - id2, 'm']
`

// Example1InitialMultiset is the paper's initial multiset
// {[1, A1], [5, B1], [3, C1], [2, D1]}.
const Example1InitialMultiset = `{[1, 'A1'], [5, 'B1'], [3, 'C1'], [2, 'D1']}`

// Example2GammaListing is the paper's Example-2 Gamma code (reactions
// R11–R19) in the Fig. 3 grammar.
const Example2GammaListing = `
R11 = replace [id1, x, v]
      by [id1, 'A12', v + 1]
      if (x == 'A1') or (x == 'A11')

R12 = replace [id1, x, v]
      by [id1, 'B12', v + 1], [id1, 'B13', v + 1]
      if (x == 'B1') or (x == 'B11')

R13 = replace [id1, x, v]
      by [id1, 'C12', v + 1]
      if (x == 'C1') or (x == 'C11')

R14 = replace [id1, 'B12', v]
      by [1, 'B14', v], [1, 'B15', v], [1, 'B16', v]
      if id1 > 0
      by [0, 'B14', v], [0, 'B15', v], [0, 'B16', v]
      else

R15 = replace [id1, 'A12', v], [id2, 'B14', v]
      by [id1, 'A11', v], [id1, 'A13', v]
      if id2 == 1
      by 0
      else

R16 = replace [id1, 'B13', v], [id2, 'B15', v]
      by [id1, 'B17', v]
      if id2 == 1
      by 0
      else

R17 = replace [id1, 'C12', v], [id2, 'B16', v]
      by [id1, 'C13', v]
      if id2 == 1
      by 0
      else

R18 = replace [id1, 'B17', v]
      by [id1 - 1, 'B11', v]

R19 = replace [id1, 'A13', v], [id2, 'C13', v]
      by [id1 + id2, 'C11', v]
`

// Example2InitialMultiset is the paper's initial multiset for Example 2,
// {{y, A1, 0}, {z, B1, 0}, {x, C1, 0}}, with the fixture's concrete values.
func Example2InitialMultiset(x, y, z int64) string {
	return fmt.Sprintf(`{[%d, 'A1', 0], [%d, 'B1', 0], [%d, 'C1', 0]}`, y, z, x)
}

// ReducedExample1Listing is the paper's reduction Rd1: the three reactions of
// Example 1 fused into one.
const ReducedExample1Listing = `
Rd1 = replace [id1, 'A1'], [id2, 'B1'], [id3, 'C1'], [id4, 'D1']
      by [(id1 + id2) - (id3 * id4), 'm']
`

// ReducedExample2Listing is the paper's reduction Rd11–Rd16: the nine
// reactions of Example 2 fused to six.
const ReducedExample2Listing = `
Rd11 = replace [id1, x, v]
       by [id1, 'A12', v + 1]
       if (x == 'A1') or (x == 'A11')

Rd12 = replace [id1, x, v]
       by [id1, 'B14', v + 1], [id1, 'B12', v + 1], [id1, 'B16', v + 1]
       if (x == 'B1') or (x == 'B11')

Rd13 = replace [id1, x, v]
       by [id1, 'C12', v + 1]
       if (x == 'C1') or (x == 'C11')

Rd14 = replace [id1, 'A12', v], [id2, 'B14', v]
       by [id1, 'A11', v], [id1, 'A13', v]
       if id2 > 0
       by 0
       else

Rd15 = replace [id1, 'B12', v]
       by [id1 - 1, 'B11', v]
       if id1 > 0
       by 0
       else

Rd16 = replace [id1, 'A13', v], [id2, 'B16', v], [id3, 'C12', v]
       by [id1 + id3, 'C11', v]
       if id2 > 0
       by 0
       else
`

// MinElementListing is Eq. 2: selecting the smallest element of a multiset.
// The Fig. 3 grammar spells the "where" clause as an if condition.
const MinElementListing = `
R = replace [x], [y]
    by [x]
    if x < y
`
