package paper

import (
	"testing"

	"repro/internal/dataflow"
	"repro/internal/value"
)

func TestFig1GraphComputesM(t *testing.T) {
	res, err := dataflow.Run(Fig1Graph(), dataflow.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, ok := res.Output("m")
	if !ok || m != value.Int(Example1M) {
		t.Fatalf("m = %v, want %d", m, Example1M)
	}
	if Example1M != 0 {
		t.Errorf("paper constant: m should be 0, got %d", Example1M)
	}
}

func TestFig2FaithfulGraphDiscardsEverything(t *testing.T) {
	// The paper's listing discards all operands on loop exit, so the
	// faithful graph terminates with no outputs.
	res, err := dataflow.Run(Fig2Graph(), dataflow.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outputs) != 0 {
		t.Errorf("faithful Fig. 2 should produce no outputs, got %v", res.Outputs)
	}
	if res.Firings == 0 {
		t.Error("loop should have fired")
	}
}

func TestFig2ObservableComputesLoop(t *testing.T) {
	cases := []struct{ x, y, z int64 }{
		{10, 4, 3}, {0, 1, 10}, {5, 7, 0}, {5, 7, -3}, {100, -2, 4},
	}
	for _, c := range cases {
		g := Fig2GraphObservable(c.x, c.y, c.z)
		res, err := dataflow.Run(g, dataflow.Options{})
		if err != nil {
			t.Fatalf("fig2(%v): %v", c, err)
		}
		want := Example2Result(c.x, c.y, c.z)
		out, ok := res.Output("xout")
		if !ok || out != value.Int(want) {
			t.Errorf("fig2(%d,%d,%d) = %v, want %d", c.x, c.y, c.z, out, want)
		}
	}
}

func TestFig2ObservableParallel(t *testing.T) {
	g := Fig2GraphObservable(10, 4, 25)
	res, err := dataflow.Run(g, dataflow.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if out, _ := res.Output("xout"); out != value.Int(110) {
		t.Errorf("xout = %v, want 110", out)
	}
}

func TestFixtureGraphsLoopDiscipline(t *testing.T) {
	// Every cycle in the Fig. 2 graphs passes through an inctag — the tag
	// discipline CheckLoops enforces.
	for name, g := range map[string]*dataflow.Graph{
		"fig1": Fig1Graph(), "fig2": Fig2Graph(), "fig2-obs": Fig2GraphObservable(1, 1, 1),
	} {
		if err := g.CheckLoops(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestFixtureGraphsValidate(t *testing.T) {
	for name, g := range map[string]*dataflow.Graph{
		"fig1":       Fig1Graph(),
		"fig2":       Fig2Graph(),
		"fig2-obs":   Fig2GraphObservable(1, 1, 1),
		"fig1-param": Fig1GraphWith(9, 9, 9, 9),
		"fig2-param": Fig2GraphWith(2, 2, 2),
	} {
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestExample2ResultSpec(t *testing.T) {
	if Example2Result(10, 4, 3) != 22 || Example2Result(5, 9, 0) != 5 || Example2Result(5, 9, -1) != 5 {
		t.Error("Example2Result formula wrong")
	}
}
