package replay

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/multiset"
)

// Divergence reasons. A divergence is not an error in the replay machinery:
// it is the finding — the first step at which the present program, replayed
// over the recorded schedule, stops reproducing the recorded execution.
const (
	// ReasonUnknownReaction — the schedule names a reaction the program
	// does not contain (program edited since recording).
	ReasonUnknownReaction = "unknown-reaction"
	// ReasonUnknownNode — the dataflow analogue: no vertex with the
	// recorded name.
	ReasonUnknownNode = "unknown-node"
	// ReasonConsumedMissing — elements/tokens the recorded firing consumed
	// are not present at this point of the replay (an earlier divergence in
	// state, or a spliced schedule).
	ReasonConsumedMissing = "consumed-missing"
	// ReasonKernelError — re-executing the firing failed: the recorded
	// elements no longer match the reaction's patterns, no branch is
	// enabled, or the kernel returned an error.
	ReasonKernelError = "kernel-error"
	// ReasonProductMismatch — the kernel fired but produced a different
	// multiset of elements than the recording.
	ReasonProductMismatch = "product-mismatch"
)

// Divergence pinpoints the first schedule step the replay could not
// reproduce. Expected/Actual are sorted key multisets of the recorded vs.
// re-executed products; Missing lists consumed keys absent from the replay
// state; Ancestors are the schedule steps (1-based) whose products the
// divergent firing transitively consumed — the provenance slice to inspect
// when diagnosing where replayed state first drifted.
type Divergence struct {
	Step      int      `json:"step"`
	Seq       uint64   `json:"seq,omitempty"`
	Name      string   `json:"name"`
	Reason    string   `json:"reason"`
	Missing   []string `json:"missing,omitempty"`
	Expected  []string `json:"expected,omitempty"`
	Actual    []string `json:"actual,omitempty"`
	Ancestors []int    `json:"ancestors,omitempty"`
	Detail    string   `json:"detail,omitempty"`
}

// String renders a one-paragraph human-readable report.
func (d *Divergence) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "replay diverged at step %d (%s): %s", d.Step, d.Name, d.Reason)
	if d.Detail != "" {
		fmt.Fprintf(&b, ": %s", d.Detail)
	}
	if len(d.Missing) > 0 {
		fmt.Fprintf(&b, "\n  missing: %s", prettyKeys(d.Missing))
	}
	if len(d.Expected) > 0 || len(d.Actual) > 0 {
		fmt.Fprintf(&b, "\n  expected products: %s\n  actual products:   %s",
			prettyKeys(d.Expected), prettyKeys(d.Actual))
	}
	if len(d.Ancestors) > 0 {
		fmt.Fprintf(&b, "\n  ancestor steps: %v", d.Ancestors)
	}
	return b.String()
}

func prettyKeys(keys []string) string {
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = multiset.PrettyKey(k)
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// ancestors walks the schedule backwards from step index idx (0-based) and
// collects the steps whose products the divergent firing transitively
// consumed: for each consumed key, the latest earlier step producing that
// key is its parent. Returns 1-based step numbers, sorted. Keys produced by
// no earlier step come from the initial state and contribute nothing.
func ancestors(s *Schedule, idx int) []int {
	seen := make(map[int]bool)
	var visit func(i int)
	visit = func(i int) {
		for _, key := range s.Steps[i].Consumed {
			for j := i - 1; j >= 0; j-- {
				if produced(s.Steps[j].Produced, key) {
					if !seen[j] {
						seen[j] = true
						visit(j)
					}
					break
				}
			}
		}
	}
	visit(idx)
	out := make([]int, 0, len(seen))
	for j := range seen {
		out = append(out, s.Steps[j].Step)
	}
	sort.Ints(out)
	return out
}

func produced(keys []string, key string) bool {
	for _, k := range keys {
		if k == key {
			return true
		}
	}
	return false
}

// sortedKeys returns a sorted copy, the canonical multiset-of-keys form the
// product comparison uses.
func sortedKeys(keys []string) []string {
	out := append([]string(nil), keys...)
	sort.Strings(out)
	return out
}

// keysEqual reports whether two key multisets are equal after sorting.
func keysEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
