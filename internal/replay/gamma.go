package replay

import (
	"fmt"
	"strings"

	"repro/internal/gamma"
	"repro/internal/multiset"
	"repro/internal/rt"
	"repro/internal/value"
)

// KeyTuple inverts multiset.Tuple.Key: fields are split on the key
// separator, each field's leading kind byte is checked against the parsed
// value's kind, and the canonical string form is parsed back into a value.
// Every key an engine emits round-trips; keys from a corrupted schedule
// fail with rt.ErrParse.
func KeyTuple(key string) (multiset.Tuple, error) {
	if key == "" {
		return nil, rt.Mark(rt.ErrParse, fmt.Errorf("replay: empty tuple key"))
	}
	parts := strings.Split(key, "\x1f")
	t := make(multiset.Tuple, len(parts))
	for i, p := range parts {
		if p == "" {
			return nil, rt.Mark(rt.ErrParse, fmt.Errorf("replay: tuple key %q: empty field %d", key, i))
		}
		v, err := value.Parse(p[1:])
		if err != nil {
			return nil, rt.Mark(rt.ErrParse, fmt.Errorf("replay: tuple key %q field %d: %w", key, i, err))
		}
		if byte('0'+v.Kind()) != p[0] {
			return nil, rt.Mark(rt.ErrParse, fmt.Errorf("replay: tuple key %q field %d: kind byte %q does not match parsed %s", key, i, p[0], v.Kind()))
		}
		t[i] = v
	}
	return t, nil
}

// GammaResult is the outcome of replaying a gamma schedule.
type GammaResult struct {
	// Steps replayed successfully before divergence (== len(schedule) when
	// Divergence is nil).
	Steps int
	// Final is the multiset after the last successful step. On divergence
	// the consumed elements of the divergent step are restored, so Final is
	// the state just before that step.
	Final *multiset.Multiset
	// Stable reports whether no reaction is enabled on Final — for a full
	// clean replay, the replayed execution reached the recording's stable
	// state (Eq. 1). Only computed when Divergence is nil.
	Stable bool
	// Divergence is non-nil when some step could not be reproduced.
	Divergence *Divergence
}

// ReplayGamma re-executes a recorded gamma schedule step for step against
// the initial multiset m (which is consumed: pass a Clone to keep it). At
// each step it verifies the consumed elements exist, re-runs the named
// reaction's kernel on exactly those elements, and verifies the products
// match the recording; the first failure stops the replay with a
// Divergence. A nil Divergence with Stable=true means the present program
// deterministically reproduces the recorded execution — the paper's
// firing-history equivalence, checked mechanically.
//
// Errors are reserved for unusable inputs (wrong schedule kind, unparsable
// keys, a failing stability check); divergences are results, not errors.
func ReplayGamma(p *gamma.Program, m *multiset.Multiset, s *Schedule) (*GammaResult, error) {
	if s.Kind != KindGamma {
		return nil, rt.Mark(rt.ErrInvalid, fmt.Errorf("replay: schedule kind %q cannot replay a gamma program", s.Kind))
	}
	res := &GammaResult{Final: m}
	for i := range s.Steps {
		st := &s.Steps[i]
		div := replayGammaStep(p, m, s, i, st)
		if div != nil {
			res.Divergence = div
			return res, nil
		}
		res.Steps++
	}
	enabled, err := gamma.Enabled(p, m)
	if err != nil {
		return nil, fmt.Errorf("replay: stability check: %w", err)
	}
	res.Stable = !enabled
	return res, nil
}

// replayGammaStep executes one schedule step, returning a Divergence when
// the step cannot be reproduced. On divergence the multiset is left in its
// pre-step state (claimed elements are restored).
func replayGammaStep(p *gamma.Program, m *multiset.Multiset, s *Schedule, idx int, st *Step) *Divergence {
	r := p.Reaction(st.Name)
	if r == nil {
		return &Divergence{
			Step: st.Step, Seq: st.Seq, Name: st.Name,
			Reason:    ReasonUnknownReaction,
			Detail:    fmt.Sprintf("program %s has no reaction %s", p.Name, st.Name),
			Ancestors: ancestors(s, idx),
		}
	}
	chosen := make([]multiset.Tuple, len(st.Consumed))
	for j, key := range st.Consumed {
		t, err := KeyTuple(key)
		if err != nil {
			return &Divergence{
				Step: st.Step, Seq: st.Seq, Name: st.Name,
				Reason:    ReasonKernelError,
				Detail:    err.Error(),
				Ancestors: ancestors(s, idx),
			}
		}
		chosen[j] = t
	}
	if !m.TryRemoveAll(chosen) {
		return &Divergence{
			Step: st.Step, Seq: st.Seq, Name: st.Name,
			Reason:    ReasonConsumedMissing,
			Missing:   missingFrom(m, chosen),
			Ancestors: ancestors(s, idx),
		}
	}
	products, err := r.ReplayFiring(chosen)
	if err != nil {
		m.AddAll(chosen)
		return &Divergence{
			Step: st.Step, Seq: st.Seq, Name: st.Name,
			Reason:    ReasonKernelError,
			Detail:    err.Error(),
			Ancestors: ancestors(s, idx),
		}
	}
	actual := make([]string, len(products))
	for j, t := range products {
		actual[j] = t.Key()
	}
	actual = sortedKeys(actual)
	if expected := sortedKeys(st.Produced); !keysEqual(expected, actual) {
		m.AddAll(chosen)
		return &Divergence{
			Step: st.Step, Seq: st.Seq, Name: st.Name,
			Reason:    ReasonProductMismatch,
			Expected:  expected,
			Actual:    actual,
			Ancestors: ancestors(s, idx),
		}
	}
	m.AddAll(products)
	return nil
}

// missingFrom reports which of the tuples are not claimable from m,
// counting multiplicity: a step consuming [x,x] when only one x remains
// reports x once.
func missingFrom(m *multiset.Multiset, chosen []multiset.Tuple) []string {
	need := make(map[string]int)
	order := make([]string, 0, len(chosen))
	for _, t := range chosen {
		k := t.Key()
		if need[k] == 0 {
			order = append(order, k)
		}
		need[k]++
	}
	var missing []string
	for _, k := range order {
		t, err := KeyTuple(k)
		have := 0
		if err == nil {
			have = m.Count(t)
		}
		if have < need[k] {
			missing = append(missing, k)
		}
	}
	return missing
}
