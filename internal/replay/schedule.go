// Package replay turns execution traces into executable schedules: a
// recorded firing sequence that can be re-executed step for step against a
// fresh initial state, verifying at every step that the recorded elements
// exist and that the program's kernels still reproduce the recorded
// products. A schedule is simultaneously a debugger (replay to the first
// divergent step), a regression oracle (golden-replay the paper's Fig. 1 and
// Fig. 2 runs), and the strongest cross-engine differential: a
// nondeterministic parallel execution, recorded in commit order, replays
// sequentially to the identical final state (§III-C firing-history
// equivalence made executable).
//
// The schedule format is line-oriented JSON: one header object naming the
// format version and execution kind, then one object per firing in
// linearized order. Export → Parse → export round-trips byte-identically,
// so schedules can be pinned as goldens.
package replay

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/multiset"
	"repro/internal/rt"
)

// FormatVersion identifies the schedule file format. Parse rejects other
// versions; bump on incompatible changes.
const FormatVersion = "v1"

// Execution kinds a schedule can record.
const (
	KindGamma    = "gamma"
	KindDataflow = "dataflow"
)

// header is the first line of a schedule document.
type header struct {
	Schedule string `json:"schedule"`
	Kind     string `json:"kind"`
	Name     string `json:"name,omitempty"`
	Steps    int    `json:"steps"`
}

// Step is one recorded firing: the reaction or vertex that fired, the keys
// of the elements/tokens it consumed (in pattern/port order) and produced
// (in template/fan-out order), and the commit sequence number the engines
// drew inside the commit critical section. Step numbers are 1-based and
// dense in linearized (seq-sorted) order.
type Step struct {
	Step     int      `json:"step"`
	Seq      uint64   `json:"seq"`
	Name     string   `json:"name"`
	Consumed []string `json:"consumed,omitempty"`
	Produced []string `json:"produced,omitempty"`
}

// Schedule is an executable firing sequence.
type Schedule struct {
	Kind  string
	Name  string
	Steps []Step
}

// Encode writes the schedule in its canonical line-oriented JSON form.
func (s *Schedule) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	h := header{Schedule: FormatVersion, Kind: s.Kind, Name: s.Name, Steps: len(s.Steps)}
	if err := encodeLine(bw, h); err != nil {
		return err
	}
	for i := range s.Steps {
		if err := encodeLine(bw, s.Steps[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func encodeLine(w *bufio.Writer, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if _, err := w.Write(b); err != nil {
		return err
	}
	return w.WriteByte('\n')
}

// Bytes renders the schedule as Encode would write it.
func (s *Schedule) Bytes() []byte {
	var b sliceWriter
	_ = s.Encode(&b) // cannot fail: the sink never errors
	return b
}

type sliceWriter []byte

func (b *sliceWriter) Write(p []byte) (int, error) {
	*b = append(*b, p...)
	return len(p), nil
}

// maxLine bounds one schedule line; reactions consuming thousands of
// elements per firing do not exist in this system.
const maxLine = 1 << 22

// Parse reads a schedule document, validating the header, the format
// version, and that step numbers are dense and the step count matches the
// header — a truncated or spliced file fails here rather than replaying a
// silently shortened run. Errors are rt.ErrParse.
func Parse(r io.Reader) (*Schedule, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), maxLine)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, rt.Mark(rt.ErrParse, err)
		}
		return nil, rt.Mark(rt.ErrParse, fmt.Errorf("replay: empty schedule"))
	}
	var h header
	if err := json.Unmarshal(sc.Bytes(), &h); err != nil {
		return nil, rt.Mark(rt.ErrParse, fmt.Errorf("replay: schedule header: %w", err))
	}
	if h.Schedule != FormatVersion {
		return nil, rt.Mark(rt.ErrParse, fmt.Errorf("replay: schedule format %q, this build reads %q", h.Schedule, FormatVersion))
	}
	if h.Kind != KindGamma && h.Kind != KindDataflow {
		return nil, rt.Mark(rt.ErrParse, fmt.Errorf("replay: unknown schedule kind %q", h.Kind))
	}
	s := &Schedule{Kind: h.Kind, Name: h.Name, Steps: make([]Step, 0, h.Steps)}
	for sc.Scan() {
		var st Step
		if err := json.Unmarshal(sc.Bytes(), &st); err != nil {
			return nil, rt.Mark(rt.ErrParse, fmt.Errorf("replay: schedule step %d: %w", len(s.Steps)+1, err))
		}
		if st.Step != len(s.Steps)+1 {
			return nil, rt.Mark(rt.ErrParse, fmt.Errorf("replay: schedule step numbered %d at position %d", st.Step, len(s.Steps)+1))
		}
		s.Steps = append(s.Steps, st)
	}
	if err := sc.Err(); err != nil {
		return nil, rt.Mark(rt.ErrParse, err)
	}
	if len(s.Steps) != h.Steps {
		return nil, rt.Mark(rt.ErrParse, fmt.Errorf("replay: schedule header promises %d steps, found %d (truncated?)", h.Steps, len(s.Steps)))
	}
	return s, nil
}

// Recorder collects firing records from a run and linearizes them into a
// Schedule. It implements gamma.ScheduleRecorder and dataflow.ScheduleRecorder
// (the RecordStep shape both engines call with commit-ordered sequence
// numbers) and is safe for concurrent use.
type Recorder struct {
	mu    sync.Mutex
	kind  string
	name  string
	steps []Step
	// Raw-tuple fast path (RecordStepTuples): key text accumulates in buf
	// and is materialized into strings only when Schedule() runs, so the
	// per-firing commit cost is a few appends into pointer-free memory — no
	// allocation, and nothing for the garbage collector to scan or for the
	// write barrier to track. Reaction names are interned through nameIdx so
	// rawStep needs no string pointer.
	names   []string
	nameIdx map[string]uint32
	raw     []rawStep
	buf     []byte
	offs    []uint32
}

// rawStep is one RecordStepTuples record: 16 pointer-free bytes. Its keys
// are buf[...] spans whose end offsets sit in offs (nc consumed ends, then
// np produced ends); name indexes Recorder.names.
type rawStep struct {
	seq    uint64
	name   uint32
	nc, np uint16
}

// NewRecorder returns an empty recorder for an execution of the given kind
// (KindGamma or KindDataflow); name labels the schedule (program or run id).
func NewRecorder(kind, name string) *Recorder {
	return &Recorder{kind: kind, name: name}
}

// RecordStep implements the engines' ScheduleRecorder interfaces. The
// recorder retains the key slices without copying: callers hand over
// ownership and must not mutate them afterwards. Both engines render fresh
// keys per firing, so taking ownership keeps the commit-path cost to the
// rendering itself plus one locked append.
func (r *Recorder) RecordStep(seq uint64, name string, consumed, produced []string) {
	st := Step{Seq: seq, Name: name, Consumed: consumed, Produced: produced}
	r.mu.Lock()
	r.steps = append(r.steps, st)
	r.mu.Unlock()
}

// RecordStepTuples implements gamma.TupleScheduleRecorder, the engine's
// allocation-free recording fast path: the firing's tuples are fingerprinted
// straight into the recorder's byte buffer (multiset.Tuple.AppendKey) and
// key strings are materialized only when Schedule() runs. Amortized, a
// firing costs three pointer-free appends under the lock.
func (r *Recorder) RecordStepTuples(seq uint64, name string, consumed, produced []multiset.Tuple) {
	if len(consumed) > 1<<16-1 || len(produced) > 1<<16-1 {
		// Arity overflows rawStep's packed counts; take the string path.
		// Unreachable for real programs (pattern and kernel arities are
		// small), kept so the packing is not a silent correctness cliff.
		ck := make([]string, len(consumed))
		for i, t := range consumed {
			ck[i] = t.Key()
		}
		pk := make([]string, len(produced))
		for i, t := range produced {
			pk[i] = t.Key()
		}
		r.RecordStep(seq, name, ck, pk)
		return
	}
	r.mu.Lock()
	ni, ok := r.nameIdx[name]
	if !ok {
		if r.nameIdx == nil {
			r.nameIdx = make(map[string]uint32)
		}
		ni = uint32(len(r.names))
		r.names = append(r.names, name)
		r.nameIdx[name] = ni
	}
	// Grow the raw stores by hand: doubling with a chunky floor keeps the
	// cumulative allocation at ~2x the final size, where the runtime's
	// large-slice growth factor would make it ~5x — on a hot workload the
	// recording overhead is garbage-collector work, so allocated bytes are
	// the cost that matters.
	if cap(r.buf)-len(r.buf) < 4096 {
		nb := make([]byte, len(r.buf), max(2*cap(r.buf), 1<<16))
		copy(nb, r.buf)
		r.buf = nb
	}
	if n := len(r.offs) + len(consumed) + len(produced); n > cap(r.offs) {
		no := make([]uint32, len(r.offs), max(2*cap(r.offs), 1<<13))
		copy(no, r.offs)
		r.offs = no
	}
	if len(r.raw) == cap(r.raw) {
		nr := make([]rawStep, len(r.raw), max(2*cap(r.raw), 1<<12))
		copy(nr, r.raw)
		r.raw = nr
	}
	for _, t := range consumed {
		r.buf = t.AppendKey(r.buf)
		r.offs = append(r.offs, uint32(len(r.buf)))
	}
	for _, t := range produced {
		r.buf = t.AppendKey(r.buf)
		r.offs = append(r.offs, uint32(len(r.buf)))
	}
	r.raw = append(r.raw, rawStep{seq: seq, name: ni, nc: uint16(len(consumed)), np: uint16(len(produced))})
	r.mu.Unlock()
}

// Len reports the number of firings recorded so far.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.steps) + len(r.raw)
}

// Schedule linearizes the recorded firings: sorted by commit sequence
// number (record order breaking ties, for engines whose seq restarts — the
// numbers within one run are unique) and densely renumbered. The recorder
// is left unchanged and can keep recording.
func (r *Recorder) Schedule() *Schedule {
	r.mu.Lock()
	steps := append([]Step(nil), r.steps...)
	// Materialize the raw-tuple records: one string conversion covers every
	// key recorded through the fast path, with the keys sliced out of it.
	text := string(r.buf)
	off, prev := 0, uint32(0)
	keyRun := func(n int) []string {
		if n == 0 {
			return nil
		}
		ks := make([]string, n)
		for i := range ks {
			ks[i] = text[prev:r.offs[off]]
			prev = r.offs[off]
			off++
		}
		return ks
	}
	for _, rs := range r.raw {
		steps = append(steps, Step{Seq: rs.seq, Name: r.names[rs.name],
			Consumed: keyRun(int(rs.nc)), Produced: keyRun(int(rs.np))})
	}
	r.mu.Unlock()
	sort.SliceStable(steps, func(i, j int) bool { return steps[i].Seq < steps[j].Seq })
	for i := range steps {
		steps[i].Step = i + 1
	}
	return &Schedule{Kind: r.kind, Name: r.name, Steps: steps}
}
