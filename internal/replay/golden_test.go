package replay

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/dataflow"
	"repro/internal/paper"
	"repro/internal/value"
)

var updateGolden = flag.Bool("update", false, "rewrite the schedule golden files from this build's recorder")

// goldenSchedule records a deterministic sequential execution of g, pins its
// schedule byte for byte against testdata, and replays the *golden file*
// (not the fresh recording) to verify this build still reproduces the
// execution recorded when the file was pinned.
func goldenSchedule(t *testing.T, g *dataflow.Graph, file string) *DataflowResult {
	t.Helper()
	rec := NewRecorder(KindDataflow, g.Name)
	if _, err := dataflow.Run(g, dataflow.Options{Schedule: rec}); err != nil {
		t.Fatalf("recorded run: %v", err)
	}
	got := rec.Schedule().Bytes()
	path := filepath.Join("testdata", file)
	if *updateGolden {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("schedule drifted from golden %s:\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
	sched, err := Parse(bytes.NewReader(want))
	if err != nil {
		t.Fatalf("golden parse: %v", err)
	}
	res, err := ReplayDataflow(g, sched)
	if err != nil {
		t.Fatalf("golden replay: %v", err)
	}
	if res.Divergence != nil {
		t.Fatalf("golden replay diverged: %v", res.Divergence)
	}
	if !res.Stable {
		t.Error("golden replay did not reach a stable state")
	}
	return res
}

// TestGoldenReplayFig1 pins the Fig. 1 execution schedule and checks its
// replay still computes m = (1+5) - (3*2).
func TestGoldenReplayFig1(t *testing.T) {
	res := goldenSchedule(t, paper.Fig1Graph(), "fig1_schedule.jsonl")
	v, ok := res.Output("m")
	if !ok || !value.Equal(v, value.Int(paper.Example1M)) {
		t.Errorf("replayed m = %v, want %d", v, paper.Example1M)
	}
}

// TestGoldenReplayFig2 pins the Fig. 2 (Example 2 loop) execution schedule —
// the observable variant, whose xout edge exposes the accumulator — and
// checks its replay still computes the iterative x + y*z.
func TestGoldenReplayFig2(t *testing.T) {
	g := paper.Fig2GraphObservable(paper.Example2X, paper.Example2Y, paper.Example2Z)
	res := goldenSchedule(t, g, "fig2_schedule.jsonl")
	v, ok := res.Output("xout")
	want := paper.Example2Result(paper.Example2X, paper.Example2Y, paper.Example2Z)
	if !ok || !value.Equal(v, value.Int(want)) {
		t.Errorf("replayed xout = %v, want %d", v, want)
	}
}
