package replay

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/dataflow"
	"repro/internal/rt"
	"repro/internal/value"
)

// DataflowResult is the outcome of replaying a dataflow schedule.
type DataflowResult struct {
	// Steps replayed successfully before divergence.
	Steps int
	// Outputs collects the values the replay emitted on terminal edges,
	// keyed by edge label and sorted by tag — comparable to
	// dataflow.Result.Outputs from the recorded run.
	Outputs map[string][]dataflow.TaggedValue
	// Pending counts tokens still waiting on edges after the last step —
	// the replay analogue of dataflow.Result.Pending.
	Pending int
	// Stable reports whether no vertex has a complete operand set for any
	// tag among the leftover tokens. Only computed when Divergence is nil.
	Stable bool
	// Divergence is non-nil when some step could not be reproduced.
	Divergence *Divergence
}

// Output returns the last value the replay emitted on a terminal edge,
// mirroring dataflow.Result.Output.
func (r *DataflowResult) Output(label string) (value.Value, bool) {
	vs := r.Outputs[label]
	if len(vs) == 0 {
		return value.Value{}, false
	}
	return vs[len(vs)-1].Val, true
}

// tokenQueue holds the values in flight on one (edge, tag) in production
// order; the schedule's linearization makes FIFO per key exactly the order
// the recorded run's matching stores saw.
type tokenQueue struct {
	vals []value.Value
}

// ReplayDataflow re-executes a recorded dataflow schedule step for step
// against graph g: each step pops its consumed tokens (by key, FIFO) from
// the in-flight pool, re-fires the named vertex on their values, and checks
// the emitted tokens' keys against the recording. Token keys name an edge
// and a tag but not a value, so — unlike gamma replay, which verifies full
// element fingerprints — value divergence surfaces either downstream as a
// missing/extra firing or in the returned Outputs; structural divergence
// (different firings, different edges, different tags) is caught at the
// first divergent step.
//
// Errors are reserved for unusable inputs (wrong schedule kind, malformed
// keys); divergences are results, not errors.
func ReplayDataflow(g *dataflow.Graph, s *Schedule) (*DataflowResult, error) {
	if s.Kind != KindDataflow {
		return nil, rt.Mark(rt.ErrInvalid, fmt.Errorf("replay: schedule kind %q cannot replay a dataflow graph", s.Kind))
	}
	if err := g.Validate(); err != nil {
		return nil, rt.Mark(rt.ErrInvalid, err)
	}
	res := &DataflowResult{Outputs: make(map[string][]dataflow.TaggedValue)}
	avail := make(map[string]*tokenQueue)
	for i := range s.Steps {
		st := &s.Steps[i]
		div, err := replayDataflowStep(g, s, i, st, avail, res)
		if err != nil {
			return nil, err
		}
		if div != nil {
			res.Divergence = div
			return res, nil
		}
		res.Steps++
	}
	for _, vs := range res.Outputs {
		sort.SliceStable(vs, func(i, j int) bool { return vs[i].Tag < vs[j].Tag })
	}
	res.Pending, res.Stable = dataflowQuiescence(g, avail)
	return res, nil
}

func replayDataflowStep(g *dataflow.Graph, s *Schedule, idx int, st *Step, avail map[string]*tokenQueue, res *DataflowResult) (*Divergence, error) {
	n := g.NodeByName(st.Name)
	if n == nil {
		return &Divergence{
			Step: st.Step, Seq: st.Seq, Name: st.Name,
			Reason:    ReasonUnknownNode,
			Detail:    fmt.Sprintf("graph %s has no vertex %s", g.Name, st.Name),
			Ancestors: ancestors(s, idx),
		}, nil
	}
	// Pop the consumed tokens. Keys are recorded in input-port order, so the
	// popped values form the operand vector positionally.
	var tag int64
	operands := make([]value.Value, len(st.Consumed))
	for j, key := range st.Consumed {
		kTag, err := keyTag(key)
		if err != nil {
			return nil, err
		}
		if j == 0 {
			tag = kTag
		}
		q := avail[key]
		if q == nil || len(q.vals) == 0 {
			return &Divergence{
				Step: st.Step, Seq: st.Seq, Name: st.Name,
				Reason:    ReasonConsumedMissing,
				Missing:   []string{key},
				Ancestors: ancestors(s, idx),
			}, nil
		}
		operands[j] = q.vals[0]
		q.vals = q.vals[1:]
	}
	restore := func() {
		// Push the popped operands back at the front, preserving FIFO order,
		// so the returned state is the pre-step state.
		for j := len(st.Consumed) - 1; j >= 0; j-- {
			key := st.Consumed[j]
			q := avail[key]
			if q == nil {
				q = &tokenQueue{}
				avail[key] = q
			}
			q.vals = append([]value.Value{operands[j]}, q.vals...)
		}
	}
	out, err := dataflow.ReplayFire(g, n, tag, operands)
	if err != nil {
		restore()
		return &Divergence{
			Step: st.Step, Seq: st.Seq, Name: st.Name,
			Reason:    ReasonKernelError,
			Detail:    err.Error(),
			Ancestors: ancestors(s, idx),
		}, nil
	}
	actual := make([]string, len(out))
	for j, t := range out {
		actual[j] = dataflow.TokenKey(g, t)
	}
	if expected := sortedKeys(st.Produced); !keysEqual(expected, sortedKeys(actual)) {
		restore()
		return &Divergence{
			Step: st.Step, Seq: st.Seq, Name: st.Name,
			Reason:    ReasonProductMismatch,
			Expected:  expected,
			Actual:    sortedKeys(actual),
			Ancestors: ancestors(s, idx),
		}, nil
	}
	for j, t := range out {
		e := g.Edges[t.Edge]
		if e.To == dataflow.NoNode {
			res.Outputs[e.Label] = append(res.Outputs[e.Label], dataflow.TaggedValue{Tag: t.Tag, Val: t.Val})
			continue
		}
		key := actual[j]
		q := avail[key]
		if q == nil {
			q = &tokenQueue{}
			avail[key] = q
		}
		q.vals = append(q.vals, t.Val)
	}
	return nil, nil
}

// keyTag extracts the iteration tag from a "label@tag" token key.
func keyTag(key string) (int64, error) {
	at := strings.LastIndexByte(key, '@')
	if at < 0 {
		return 0, rt.Mark(rt.ErrParse, fmt.Errorf("replay: token key %q has no tag", key))
	}
	tag, err := strconv.ParseInt(key[at+1:], 10, 64)
	if err != nil {
		return 0, rt.Mark(rt.ErrParse, fmt.Errorf("replay: token key %q: %w", key, err))
	}
	return tag, nil
}

// dataflowQuiescence inspects the leftover in-flight tokens: the total count
// (Pending) and whether any vertex has a token on every input port for some
// single tag — if so the replayed state is not stable (the recorded run
// stopped early, e.g. a canceled run's committed prefix).
func dataflowQuiescence(g *dataflow.Graph, avail map[string]*tokenQueue) (pending int, stable bool) {
	type nodeTag struct {
		node dataflow.NodeID
		tag  int64
	}
	covered := make(map[nodeTag]map[int]bool)
	for key, q := range avail {
		if len(q.vals) == 0 {
			continue
		}
		pending += len(q.vals)
		at := strings.LastIndexByte(key, '@')
		e := g.EdgeByLabel(key[:at])
		if e == nil || e.To == dataflow.NoNode {
			continue
		}
		tag, err := strconv.ParseInt(key[at+1:], 10, 64)
		if err != nil {
			continue
		}
		nt := nodeTag{node: e.To, tag: tag}
		if covered[nt] == nil {
			covered[nt] = make(map[int]bool)
		}
		covered[nt][e.ToPort] = true
	}
	for nt, ports := range covered {
		if len(ports) == g.Nodes[nt.node].InArity() {
			return pending, false
		}
	}
	return pending, true
}
