package replay

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/dataflow"
	"repro/internal/gamma"
	"repro/internal/gammalang"
	"repro/internal/multiset"
	"repro/internal/paper"
	"repro/internal/rt"
	"repro/internal/value"
)

func example1() (*gamma.Program, *multiset.Multiset) {
	p, err := gammalang.ParseProgram("ex1", paper.Example1GammaListing)
	if err != nil {
		panic(err)
	}
	m, err := multiset.Parse(paper.Example1InitialMultiset)
	if err != nil {
		panic(err)
	}
	return p, m
}

// recordGamma runs p over a clone of init with a schedule recorder attached
// and returns the linearized schedule plus the final multiset.
func recordGamma(t *testing.T, p *gamma.Program, init *multiset.Multiset, opt gamma.Options) (*Schedule, *multiset.Multiset) {
	t.Helper()
	rec := NewRecorder(KindGamma, p.Name)
	opt.Schedule = rec
	m := init.Clone()
	if _, err := gamma.Run(p, m, opt); err != nil {
		t.Fatalf("recorded run: %v", err)
	}
	return rec.Schedule(), m
}

func TestScheduleRoundTrip(t *testing.T) {
	rec := NewRecorder(KindGamma, "ex1")
	rec.RecordStep(2, "R2", []string{"01\x1f3'A1'"}, []string{"02\x1f3'B2'"})
	rec.RecordStep(1, "R1", []string{"01\x1f3'A1'", "05\x1f3'B1'"}, nil)
	rec.RecordStep(3, "R3", nil, []string{"3true"})
	s := rec.Schedule()
	if s.Steps[0].Name != "R1" || s.Steps[0].Step != 1 {
		t.Fatalf("linearization: want R1 first, got %+v", s.Steps[0])
	}
	got := s.Bytes()
	back, err := Parse(bytes.NewReader(got))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if again := back.Bytes(); !bytes.Equal(got, again) {
		t.Fatalf("round trip not byte-identical:\n%s\nvs\n%s", got, again)
	}
}

func TestScheduleParseRejects(t *testing.T) {
	s := &Schedule{Kind: KindGamma, Name: "x", Steps: []Step{{Step: 1, Seq: 1, Name: "R1"}}}
	good := string(s.Bytes())
	cases := map[string]string{
		"empty":       "",
		"bad header":  "not json\n",
		"bad version": strings.Replace(good, `"schedule":"v1"`, `"schedule":"v9"`, 1),
		"bad kind":    strings.Replace(good, `"kind":"gamma"`, `"kind":"quantum"`, 1),
		"truncated":   strings.SplitAfter(good, "\n")[0],
		"renumbered":  strings.Replace(good, `"step":1`, `"step":7`, 1),
	}
	for name, src := range cases {
		if _, err := Parse(strings.NewReader(src)); !errors.Is(err, rt.ErrParse) {
			t.Errorf("%s: want rt.ErrParse, got %v", name, err)
		}
	}
}

// FuzzScheduleRoundTrip checks the canonicality invariant: anything Parse
// accepts re-encodes and re-parses to the same document, byte for byte.
func FuzzScheduleRoundTrip(f *testing.F) {
	p, init := example1()
	sched, _ := recordGammaF(f, p, init)
	f.Add(sched.Bytes())
	f.Add([]byte(`{"schedule":"v1","kind":"dataflow","steps":1}` + "\n" + `{"step":1,"seq":4,"name":"n","consumed":["A1@0"],"produced":["B1@1"]}` + "\n"))
	f.Add([]byte(`{"schedule":"v1","kind":"gamma","steps":0}` + "\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Parse(bytes.NewReader(data))
		if err != nil {
			return
		}
		enc := s.Bytes()
		back, err := Parse(bytes.NewReader(enc))
		if err != nil {
			t.Fatalf("canonical form failed to parse: %v\n%s", err, enc)
		}
		if again := back.Bytes(); !bytes.Equal(enc, again) {
			t.Fatalf("canonical form not a fixed point:\n%s\nvs\n%s", enc, again)
		}
	})
}

func recordGammaF(f *testing.F, p *gamma.Program, init *multiset.Multiset) (*Schedule, *multiset.Multiset) {
	rec := NewRecorder(KindGamma, p.Name)
	m := init.Clone()
	if _, err := gamma.Run(p, m, gamma.Options{Schedule: rec}); err != nil {
		f.Fatalf("recorded run: %v", err)
	}
	return rec.Schedule(), m
}

func TestKeyTupleRoundTrip(t *testing.T) {
	tuples := []multiset.Tuple{
		{value.Int(1), value.Str("A1")},
		{value.Int(-42), value.Float(2.0), value.Float(1.5e300)},
		{value.Bool(true), value.Bool(false), value.Str("")},
		{value.Str("with spaces and @ and \x1e")},
		{value.Int(0)},
	}
	for _, tu := range tuples {
		back, err := KeyTuple(tu.Key())
		if err != nil {
			t.Fatalf("KeyTuple(%q): %v", tu.Key(), err)
		}
		if back.Key() != tu.Key() {
			t.Fatalf("round trip changed key: %q -> %q", tu.Key(), back.Key())
		}
	}
	for _, bad := range []string{"", "\x1f", "9zzz", "5x"} {
		if _, err := KeyTuple(bad); !errors.Is(err, rt.ErrParse) {
			t.Errorf("KeyTuple(%q): want rt.ErrParse, got %v", bad, err)
		}
	}
}

// TestReplayGammaSequential verifies the base invariant: a sequential run's
// schedule replays against the same initial multiset to the identical final
// state, stable, with the same firing count.
func TestReplayGammaSequential(t *testing.T) {
	p, init := example1()
	sched, final := recordGamma(t, p, init, gamma.Options{})
	res, err := ReplayGamma(p, init.Clone(), sched)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if res.Divergence != nil {
		t.Fatalf("unexpected divergence: %v", res.Divergence)
	}
	if !res.Stable {
		t.Error("replayed state is not stable")
	}
	if res.Steps != len(sched.Steps) {
		t.Errorf("replayed %d of %d steps", res.Steps, len(sched.Steps))
	}
	if !res.Final.Equal(final) {
		t.Errorf("final multiset diverged:\nreplay %s\nrecord %s", res.Final, final)
	}
}

// TestReplayGammaParallelDifferential is the record→replay differential at
// the heart of the schedule format: a nondeterministic parallel execution,
// recorded in commit order, must replay *sequentially* to the byte-identical
// final multiset and firing count. Run under -race by make stress.
func TestReplayGammaParallelDifferential(t *testing.T) {
	p, init := example1()
	for seed := int64(1); seed <= 4; seed++ {
		sched, final := recordGamma(t, p, init, gamma.Options{Workers: 4, Seed: seed})
		res, err := ReplayGamma(p, init.Clone(), sched)
		if err != nil {
			t.Fatalf("seed %d: replay: %v", seed, err)
		}
		if res.Divergence != nil {
			t.Fatalf("seed %d: parallel schedule diverged on sequential replay: %v", seed, res.Divergence)
		}
		if !res.Stable {
			t.Errorf("seed %d: replayed state not stable", seed)
		}
		if got, want := res.Final.String(), final.String(); got != want {
			t.Errorf("seed %d: final multiset diverged:\nreplay %s\nrecord %s", seed, got, want)
		}
		if res.Steps != len(sched.Steps) {
			t.Errorf("seed %d: replayed %d of %d firings", seed, res.Steps, len(sched.Steps))
		}
	}
}

// TestReplayDivergenceInjectedMutation corrupts a single recorded product
// and checks the divergence report names exactly the first divergent step.
func TestReplayDivergenceInjectedMutation(t *testing.T) {
	p, init := example1()
	sched, _ := recordGamma(t, p, init, gamma.Options{})
	// Mutate the last step that produced anything: late steps have real
	// ancestor chains through the earlier products they consumed.
	target := -1
	for i := len(sched.Steps) - 1; i >= 0; i-- {
		if len(sched.Steps[i].Produced) > 0 {
			target = i
			break
		}
	}
	if target < 0 {
		t.Fatal("no producing step in schedule")
	}
	sched.Steps[target].Produced[0] = multiset.Tuple{value.Int(999), value.Str("XX")}.Key()
	res, err := ReplayGamma(p, init.Clone(), sched)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	d := res.Divergence
	if d == nil {
		t.Fatal("mutation not detected")
	}
	if d.Step != sched.Steps[target].Step {
		t.Errorf("divergence at step %d, want %d", d.Step, sched.Steps[target].Step)
	}
	if d.Reason != ReasonProductMismatch {
		t.Errorf("reason %q, want %q", d.Reason, ReasonProductMismatch)
	}
	if len(d.Expected) == 0 || len(d.Actual) == 0 {
		t.Errorf("report missing expected/actual products: %+v", d)
	}
	if res.Steps != target {
		t.Errorf("replayed %d clean steps, want %d", res.Steps, target)
	}
	if s := d.String(); !strings.Contains(s, ReasonProductMismatch) {
		t.Errorf("String() lacks reason: %s", s)
	}
}

// TestReplayDivergenceReasons exercises the remaining gamma divergence
// classes: unknown reaction, missing consumed elements, and a kernel that no
// longer accepts the recorded elements.
func TestReplayDivergenceReasons(t *testing.T) {
	p, init := example1()
	sched, _ := recordGamma(t, p, init, gamma.Options{})

	renamed := *sched
	renamed.Steps = append([]Step(nil), sched.Steps...)
	renamed.Steps[0].Name = "R99"
	res, err := ReplayGamma(p, init.Clone(), &renamed)
	if err != nil {
		t.Fatal(err)
	}
	if res.Divergence == nil || res.Divergence.Reason != ReasonUnknownReaction {
		t.Errorf("renamed reaction: got %+v", res.Divergence)
	}

	// Replaying against the *final* multiset: step 1's consumed elements are
	// long gone.
	_, final := recordGamma(t, p, init, gamma.Options{})
	if len(sched.Steps) > 0 && len(sched.Steps[0].Consumed) > 0 {
		res, err = ReplayGamma(p, final.Clone(), sched)
		if err != nil {
			t.Fatal(err)
		}
		if res.Divergence == nil || res.Divergence.Reason != ReasonConsumedMissing {
			t.Errorf("wrong initial state: got %+v", res.Divergence)
		}
		if len(res.Divergence.Missing) == 0 {
			t.Error("consumed-missing report lists nothing missing")
		}
	}

	// An element that no longer matches the reaction's patterns.
	mismatched := *sched
	mismatched.Steps = append([]Step(nil), sched.Steps...)
	st := mismatched.Steps[0]
	st.Consumed = append([]string(nil), st.Consumed...)
	alien := multiset.Tuple{value.Str("alien"), value.Str("alien"), value.Str("alien"), value.Str("alien")}
	st.Consumed[0] = alien.Key()
	mismatched.Steps[0] = st
	withAlien := init.Clone()
	withAlien.Add(alien)
	res, err = ReplayGamma(p, withAlien, &mismatched)
	if err != nil {
		t.Fatal(err)
	}
	if res.Divergence == nil || res.Divergence.Reason != ReasonKernelError {
		t.Errorf("pattern mismatch: got %+v", res.Divergence)
	}
}

// TestReplayPartialScheduleFromFault verifies that the committed prefix of a
// run stopped mid-flight by an injected fault replays cleanly: every
// recorded firing was really committed, so the schedule is a valid (just
// incomplete) execution.
func TestReplayPartialScheduleFromFault(t *testing.T) {
	p, err := gammalang.ParseProgram("ex2", paper.Example2GammaListing)
	if err != nil {
		t.Fatal(err)
	}
	init, err := multiset.Parse(paper.Example2InitialMultiset(9, 4, 7))
	if err != nil {
		t.Fatal(err)
	}
	var fired atomic.Int64
	boom := errors.New("injected fault")
	rec := NewRecorder(KindGamma, "ex2-partial")
	m := init.Clone()
	_, err = gamma.Run(p, m, gamma.Options{
		Workers:  4,
		Seed:     7,
		Schedule: rec,
		FaultInjector: func(site string, worker int) error {
			if fired.Add(1) > 5 {
				return boom
			}
			return nil
		},
	})
	if !errors.Is(err, boom) {
		t.Fatalf("run did not fail with the injected fault: %v", err)
	}
	sched := rec.Schedule()
	res, rerr := ReplayGamma(p, init.Clone(), sched)
	if rerr != nil {
		t.Fatalf("replay: %v", rerr)
	}
	if res.Divergence != nil {
		t.Fatalf("committed prefix diverged: %v", res.Divergence)
	}
	if res.Steps != len(sched.Steps) {
		t.Errorf("replayed %d of %d committed firings", res.Steps, len(sched.Steps))
	}
}

// recordDataflow runs g with a schedule recorder and returns the schedule
// and the recorded result.
func recordDataflow(t *testing.T, g *dataflow.Graph, opt dataflow.Options) (*Schedule, *dataflow.Result) {
	t.Helper()
	rec := NewRecorder(KindDataflow, g.Name)
	opt.Schedule = rec
	res, err := dataflow.Run(g, opt)
	if err != nil {
		t.Fatalf("recorded run: %v", err)
	}
	return rec.Schedule(), res
}

func sameOutputs(a, b map[string][]dataflow.TaggedValue) error {
	if len(a) != len(b) {
		return fmt.Errorf("output labels differ: %d vs %d", len(a), len(b))
	}
	for label, avs := range a {
		bvs := b[label]
		if len(avs) != len(bvs) {
			return fmt.Errorf("%s: %d vs %d tokens", label, len(avs), len(bvs))
		}
		for i := range avs {
			if avs[i].Tag != bvs[i].Tag || !value.Equal(avs[i].Val, bvs[i].Val) {
				return fmt.Errorf("%s[%d]: %v@%d vs %v@%d", label, i, avs[i].Val, avs[i].Tag, bvs[i].Val, bvs[i].Tag)
			}
		}
	}
	return nil
}

// TestReplayDataflowFig1 replays a recorded Fig. 1 execution and checks the
// replay reproduces the recorded outputs, firing for firing.
func TestReplayDataflowFig1(t *testing.T) {
	g := paper.Fig1Graph()
	sched, rec := recordDataflow(t, g, dataflow.Options{})
	res, err := ReplayDataflow(g, sched)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if res.Divergence != nil {
		t.Fatalf("unexpected divergence: %v", res.Divergence)
	}
	if !res.Stable {
		t.Error("replayed state not stable")
	}
	if int64(res.Steps) != rec.Firings {
		t.Errorf("replayed %d steps, recorded %d firings", res.Steps, rec.Firings)
	}
	if res.Pending != rec.Pending {
		t.Errorf("pending %d, recorded %d", res.Pending, rec.Pending)
	}
	if err := sameOutputs(res.Outputs, rec.Outputs); err != nil {
		t.Errorf("outputs diverged: %v", err)
	}
	if v, ok := res.Outputs["m"]; !ok || len(v) == 0 || !value.Equal(v[len(v)-1].Val, value.Int(paper.Example1M)) {
		t.Errorf("Fig. 1 output m: got %v, want %d", v, paper.Example1M)
	}
}

// TestReplayDataflowParallelDifferential: a parallel PE-pool execution of
// Fig. 2, recorded in commit order, replays sequentially to the same
// outputs. Run under -race by make stress.
func TestReplayDataflowParallelDifferential(t *testing.T) {
	g := paper.Fig2Graph()
	sched, rec := recordDataflow(t, g, dataflow.Options{Workers: 4})
	res, err := ReplayDataflow(g, sched)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if res.Divergence != nil {
		t.Fatalf("parallel schedule diverged on sequential replay: %v", res.Divergence)
	}
	if int64(res.Steps) != rec.Firings {
		t.Errorf("replayed %d steps, recorded %d firings", res.Steps, rec.Firings)
	}
	if err := sameOutputs(res.Outputs, rec.Outputs); err != nil {
		t.Errorf("outputs diverged: %v", err)
	}
	if res.Pending != rec.Pending {
		t.Errorf("pending %d, recorded %d", res.Pending, rec.Pending)
	}
}

// TestReplayDataflowDivergence: renaming a vertex and dropping a token both
// produce structured reports.
func TestReplayDataflowDivergence(t *testing.T) {
	g := paper.Fig1Graph()
	sched, _ := recordDataflow(t, g, dataflow.Options{})

	renamed := *sched
	renamed.Steps = append([]Step(nil), sched.Steps...)
	renamed.Steps[0].Name = "no-such-vertex"
	res, err := ReplayDataflow(g, &renamed)
	if err != nil {
		t.Fatal(err)
	}
	if res.Divergence == nil || res.Divergence.Reason != ReasonUnknownNode {
		t.Errorf("renamed vertex: got %+v", res.Divergence)
	}

	// Drop the first consuming step: its products never materialize, so the
	// first later step consuming them reports missing tokens with the
	// ancestor chain pointing back through the recorded provenance.
	firstConsumer := -1
	for i, st := range sched.Steps {
		if len(st.Consumed) > 0 {
			firstConsumer = i
			break
		}
	}
	if firstConsumer < 0 {
		t.Fatal("no consuming step")
	}
	cut := *sched
	cut.Steps = append([]Step(nil), sched.Steps...)
	cut.Steps = append(cut.Steps[:firstConsumer], cut.Steps[firstConsumer+1:]...)
	for i := range cut.Steps {
		cut.Steps[i].Step = i + 1
	}
	res, err = ReplayDataflow(g, &cut)
	if err != nil {
		t.Fatal(err)
	}
	if res.Divergence == nil || res.Divergence.Reason != ReasonConsumedMissing {
		t.Errorf("dropped firing: got %+v", res.Divergence)
	}
}

// TestAncestors checks the provenance slice: the divergent step's ancestors
// are exactly the earlier steps whose products it transitively consumed.
func TestAncestors(t *testing.T) {
	s := &Schedule{Kind: KindGamma, Steps: []Step{
		{Step: 1, Seq: 1, Name: "A", Produced: []string{"k1"}},
		{Step: 2, Seq: 2, Name: "B", Produced: []string{"k2"}},
		{Step: 3, Seq: 3, Name: "C", Consumed: []string{"k1"}, Produced: []string{"k3"}},
		{Step: 4, Seq: 4, Name: "D", Consumed: []string{"k3", "kInit"}},
	}}
	got := ancestors(s, 3)
	want := []int{1, 3}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("ancestors = %v, want %v", got, want)
	}
	if got := ancestors(s, 0); len(got) != 0 {
		t.Errorf("step 1 has ancestors %v", got)
	}
}
