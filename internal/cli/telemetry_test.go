package cli

import (
	"bufio"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

func TestTelemetryFlagsDisabledIsFree(t *testing.T) {
	var tel TelemetryFlags
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	tel.Register(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if tel.Enabled() {
		t.Fatal("no flags set must mean disabled")
	}
	if err := tel.Start(nil); err != nil {
		t.Fatal(err)
	}
	if tel.Recorder() != nil || tel.Provenance() != nil {
		t.Fatal("disabled telemetry must keep the nil fast path")
	}
	if err := tel.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestTelemetryFlagsRejectsUnknownFormat(t *testing.T) {
	tel := TelemetryFlags{Trace: "x.out", TraceFormat: "svg"}
	if err := tel.Start(nil); err == nil {
		t.Fatal("unknown trace format must fail Start")
	}
}

func TestTelemetryFlagsJSONLLifecycle(t *testing.T) {
	out := filepath.Join(t.TempDir(), "trace.jsonl")
	tel := TelemetryFlags{Trace: out, TraceFormat: "jsonl"}
	if err := tel.Start(nil); err != nil {
		t.Fatal(err)
	}
	rec := tel.Recorder()
	if rec == nil {
		t.Fatal("trace requested but no recorder")
	}
	rec.Track("gamma/w0").Instant(telemetry.KindFiring, "R1", 1, 0)
	if err := tel.Finish(); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	lines := 0
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var e map[string]any
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("line %d not JSON: %v", lines, err)
		}
		lines++
	}
	if lines != 1 {
		t.Fatalf("exported %d lines, want 1", lines)
	}
}

func TestTelemetryFlagsDOTLifecycle(t *testing.T) {
	out := filepath.Join(t.TempDir(), "prov.dot")
	tel := TelemetryFlags{Trace: out, TraceFormat: "dot"}
	if err := tel.Start(func(k string) string { return "k:" + k }); err != nil {
		t.Fatal(err)
	}
	prov := tel.Provenance()
	if prov == nil {
		t.Fatal("dot format must build a provenance tracer")
	}
	prov.RecordFiring("R1", []string{"a"}, []string{"b"})
	if err := tel.Finish(); err != nil {
		t.Fatal(err)
	}
	dot, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"digraph provenance", `label="R1"`, `label="k:a"`} {
		if !strings.Contains(string(dot), want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
}

func TestProfileSpecEmptyIsNoop(t *testing.T) {
	stop, err := ProfileSpec{}.Start()
	if err != nil {
		t.Fatal(err)
	}
	stop()
	stop() // idempotent
}

func TestProfileSpecWritesAllProfiles(t *testing.T) {
	dir := t.TempDir()
	spec := ProfileSpec{
		CPU:   filepath.Join(dir, "cpu.out"),
		Mem:   filepath.Join(dir, "mem.out"),
		Block: filepath.Join(dir, "block.out"),
		Mutex: filepath.Join(dir, "mutex.out"),
	}
	stop, err := spec.Start()
	if err != nil {
		t.Fatal(err)
	}
	// A little work so the CPU profile has something to sample.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i * i
	}
	_ = x
	stop()
	stop() // flush must be once-only and re-stopping safe
	for _, p := range []string{spec.CPU, spec.Mem, spec.Block, spec.Mutex} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Errorf("profile not written: %v", err)
			continue
		}
		if fi.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}
