package cli

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/replay"
	"repro/internal/rt"
	"repro/internal/telemetry"
)

// TelemetryFlags bundles the observability flags shared by the cmd/ binaries
// (-trace, -trace-format, -metrics, -metrics-addr, -pprof) and their
// lifecycle: flag registration, recorder construction, the live metrics
// endpoint, and the end-of-run export. A command that registers the flags but
// whose user passes none of them gets a nil Recorder — the runtimes' disabled
// fast path.
type TelemetryFlags struct {
	// Trace is the output file of the execution trace; empty disables it.
	Trace string
	// TraceFormat selects the trace export: "perfetto" (Chrome trace-event
	// JSON for ui.perfetto.dev), "dot" (Graphviz provenance DAG of the firing
	// dependencies — on a Gamma run, the paper's dataflow graph), "jsonl", or
	// "schedule" (the executable replay schedule of internal/replay).
	TraceFormat string
	// Metrics prints the registry as a table on stdout after the run.
	Metrics bool
	// MetricsAddr serves live registry snapshots as JSON over HTTP for the
	// duration of the run; empty disables the endpoint.
	MetricsAddr string
	// Pprof mounts the net/http/pprof introspection handlers under
	// /debug/pprof/ on the metrics endpoint; requires MetricsAddr.
	Pprof bool
	// ScheduleKind names what the "schedule" trace format records —
	// replay.KindGamma or replay.KindDataflow. The command sets it before
	// Start; it is not a flag.
	ScheduleKind string

	format   telemetry.Format
	rec      *telemetry.Recorder
	prov     *telemetry.Provenance
	sched    *replay.Recorder
	closeSrv func()
}

// Register declares the telemetry flags on fs (the default FlagSet in the
// cmd/ binaries).
func (t *TelemetryFlags) Register(fs *flag.FlagSet) {
	fs.StringVar(&t.Trace, "trace", "", "write an execution trace to this file (see -trace-format)")
	fs.StringVar(&t.TraceFormat, "trace-format", "perfetto", "trace format: perfetto, dot (provenance DAG), jsonl or schedule (replayable)")
	fs.BoolVar(&t.Metrics, "metrics", false, "print the telemetry metrics table after the run")
	fs.StringVar(&t.MetricsAddr, "metrics-addr", "", "serve live metrics JSON on this HTTP address during the run (e.g. localhost:6060)")
	fs.BoolVar(&t.Pprof, "pprof", false, "also serve /debug/pprof/ on the -metrics-addr endpoint")
}

// Enabled reports whether any telemetry output was requested.
func (t *TelemetryFlags) Enabled() bool {
	return t.Trace != "" || t.Metrics || t.MetricsAddr != ""
}

// Start validates the flags and builds the collectors: the recorder (nil when
// nothing was requested, keeping the runtimes on their fast path), the
// provenance tracer for the dot format (labeler renders element keys; nil
// keeps them raw), the schedule recorder for the schedule format, and the
// live metrics endpoint. Call Finish before exiting.
func (t *TelemetryFlags) Start(labeler func(string) string) error {
	if t.Trace != "" {
		f, err := telemetry.ParseFormat(t.TraceFormat)
		if err != nil {
			return err
		}
		t.format = f
	}
	if t.Pprof && t.MetricsAddr == "" {
		return rt.Mark(rt.ErrInvalid, fmt.Errorf("telemetry: -pprof requires -metrics-addr (the handlers mount on the metrics endpoint)"))
	}
	if !t.Enabled() {
		return nil
	}
	t.rec = telemetry.New(0)
	if t.format == telemetry.FormatDOT {
		t.prov = telemetry.NewProvenance()
		t.prov.Labeler = labeler
	}
	if t.format == telemetry.FormatSchedule {
		kind := t.ScheduleKind
		if kind == "" {
			kind = replay.KindGamma
		}
		t.sched = replay.NewRecorder(kind, t.Trace)
	}
	if t.MetricsAddr != "" {
		mux := telemetry.MetricsMux(t.rec.Metrics)
		if t.Pprof {
			telemetry.MountPprof(mux)
		}
		addr, closeSrv, err := telemetry.ServeMux(t.MetricsAddr, mux)
		if err != nil {
			return err
		}
		t.closeSrv = closeSrv
		fmt.Fprintf(os.Stderr, "metrics: serving on http://%s/metrics\n", addr)
		if t.Pprof {
			fmt.Fprintf(os.Stderr, "pprof: serving on http://%s/debug/pprof/\n", addr)
		}
	}
	return nil
}

// Recorder is the recorder to pass into the runtime Options; nil when
// telemetry is disabled.
func (t *TelemetryFlags) Recorder() *telemetry.Recorder { return t.rec }

// Provenance is the firing tracer to combine into Options.Tracer (via
// telemetry.MultiTracer); non-nil only for the dot trace format.
func (t *TelemetryFlags) Provenance() *telemetry.Provenance { return t.prov }

// Schedule is the schedule recorder to pass as Options.Schedule; non-nil
// only for the schedule trace format. (The runtime option is an interface,
// so assign it through a nil check — a typed nil would defeat the runtimes'
// disabled fast path.)
func (t *TelemetryFlags) Schedule() *replay.Recorder { return t.sched }

// Finish stops the metrics endpoint, writes the trace file in the selected
// format and prints the metrics table. Safe to call when telemetry is
// disabled, and on error paths — a partial run's trace is often exactly what
// is wanted (for the schedule format it is the replayable committed prefix).
func (t *TelemetryFlags) Finish() error {
	if t.closeSrv != nil {
		t.closeSrv()
		t.closeSrv = nil
	}
	if t.rec == nil {
		return nil
	}
	if t.Trace != "" {
		f, err := os.Create(t.Trace)
		if err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		switch t.format {
		case telemetry.FormatPerfetto:
			err = telemetry.WritePerfetto(f, t.rec)
		case telemetry.FormatDOT:
			err = t.prov.WriteDOT(f)
		case telemetry.FormatJSONL:
			err = telemetry.WriteJSONL(f, t.rec)
		case telemetry.FormatSchedule:
			err = t.sched.Schedule().Encode(f)
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("trace: %w", err)
		}
	}
	if t.Metrics {
		fmt.Print(t.rec.Metrics.Table())
	}
	return nil
}
