package cli

import (
	"errors"
	"fmt"
	"net/http"
	"testing"

	"repro/internal/rt"
)

func TestExitCode(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{nil, ExitOK},
		{errors.New("io"), ExitError},
		{rt.Mark(rt.ErrParse, errors.New("line 3: bad token")), ExitParse},
		{rt.Mark(rt.ErrInvalid, errors.New("dangling edge")), ExitParse},
		{fmt.Errorf("gamma: %w", rt.ErrMaxSteps), ExitBudget},
		{rt.ErrCanceled, ExitCanceled},
		{rt.ErrDeadline, ExitCanceled},
		{rt.Mark(rt.ErrDivergent, fmt.Errorf("wrap: %w", rt.ErrMaxSteps)), ExitDivergent},
		{rt.NewPanicError("gamma", "R1", 2, "boom"), ExitPanic},
		{fmt.Errorf("dist: %w", &rt.NodeError{Node: 1, Attempts: 3, Err: errors.New("x")}), ExitNodeDead},
	}
	for _, c := range cases {
		if got := ExitCode(c.err); got != c.want {
			t.Errorf("ExitCode(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}

// TestHTTPStatus exhaustively covers every exported error class of package
// rt, mirroring TestExitCode: the HTTP table is part of the gammad wire
// contract the same way the exit codes are part of the cmd/ interface.
func TestHTTPStatus(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"nil", nil, http.StatusOK},
		{"unclassified", errors.New("io"), http.StatusInternalServerError},
		{"ErrParse", rt.Mark(rt.ErrParse, errors.New("line 3: bad token")), http.StatusBadRequest},
		{"ErrInvalid", rt.Mark(rt.ErrInvalid, errors.New("dangling edge")), http.StatusBadRequest},
		{"ErrMaxSteps", fmt.Errorf("gamma: %w", rt.ErrMaxSteps), http.StatusRequestTimeout},
		{"ErrCanceled", rt.ErrCanceled, StatusClientClosed},
		{"ErrDeadline", rt.ErrDeadline, http.StatusRequestTimeout},
		{"ErrDivergent", rt.Mark(rt.ErrDivergent, fmt.Errorf("wrap: %w", rt.ErrMaxSteps)), http.StatusUnprocessableEntity},
		{"PanicError", rt.NewPanicError("gamma", "R1", 2, "boom"), http.StatusInternalServerError},
		{"NodeError", fmt.Errorf("dist: %w", &rt.NodeError{Node: 1, Attempts: 3, Err: errors.New("x")}), http.StatusInternalServerError},
	}
	for _, c := range cases {
		if got := HTTPStatus(c.err); got != c.want {
			t.Errorf("%s: HTTPStatus(%v) = %d, want %d", c.name, c.err, got, c.want)
		}
	}
}

// TestHTTPStatusAgreesWithExitCode pins the two tables to the same class
// resolution order: any error that exits as a panic must not report as a
// budget overrun over HTTP, and so on for every class pair.
func TestHTTPStatusAgreesWithExitCode(t *testing.T) {
	byExit := map[int]int{
		ExitOK:        http.StatusOK,
		ExitPanic:     http.StatusInternalServerError,
		ExitNodeDead:  http.StatusInternalServerError,
		ExitDivergent: http.StatusUnprocessableEntity,
		ExitCanceled:  0, // split below: canceled 499, deadline 408
		ExitBudget:    http.StatusRequestTimeout,
		ExitParse:     http.StatusBadRequest,
		ExitError:     http.StatusInternalServerError,
	}
	errs := []error{
		nil,
		errors.New("io"),
		rt.Mark(rt.ErrParse, errors.New("p")),
		rt.Mark(rt.ErrInvalid, errors.New("i")),
		fmt.Errorf("w: %w", rt.ErrMaxSteps),
		rt.ErrDivergent,
		rt.NewPanicError("gamma", "R", 0, "v"),
		&rt.NodeError{Node: 0, Attempts: 1, Err: errors.New("n")},
		// A panic additionally marked canceled: both tables must pick panic.
		rt.Mark(rt.ErrCanceled, error(rt.NewPanicError("gamma", "R", 1, "v"))),
	}
	for _, err := range errs {
		want := byExit[ExitCode(err)]
		if got := HTTPStatus(err); got != want {
			t.Errorf("HTTPStatus(%v) = %d, want %d (exit code %d)", err, got, want, ExitCode(err))
		}
	}
	if got := HTTPStatus(rt.ErrCanceled); got != StatusClientClosed {
		t.Errorf("HTTPStatus(ErrCanceled) = %d, want %d", got, StatusClientClosed)
	}
	if got := HTTPStatus(rt.ErrDeadline); got != http.StatusRequestTimeout {
		t.Errorf("HTTPStatus(ErrDeadline) = %d, want %d", got, http.StatusRequestTimeout)
	}
}

func TestDivergentOutranksBudget(t *testing.T) {
	// A budget overrun reclassified as divergence must report divergence.
	err := rt.Mark(rt.ErrDivergent, fmt.Errorf("equiv: %w", rt.ErrMaxSteps))
	if got := ExitCode(err); got != ExitDivergent {
		t.Fatalf("got %d, want %d", got, ExitDivergent)
	}
}
