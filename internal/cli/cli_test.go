package cli

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/rt"
)

func TestExitCode(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{nil, ExitOK},
		{errors.New("io"), ExitError},
		{rt.Mark(rt.ErrParse, errors.New("line 3: bad token")), ExitParse},
		{rt.Mark(rt.ErrInvalid, errors.New("dangling edge")), ExitParse},
		{fmt.Errorf("gamma: %w", rt.ErrMaxSteps), ExitBudget},
		{rt.ErrCanceled, ExitCanceled},
		{rt.ErrDeadline, ExitCanceled},
		{rt.Mark(rt.ErrDivergent, fmt.Errorf("wrap: %w", rt.ErrMaxSteps)), ExitDivergent},
		{rt.NewPanicError("gamma", "R1", 2, "boom"), ExitPanic},
		{fmt.Errorf("dist: %w", &rt.NodeError{Node: 1, Attempts: 3, Err: errors.New("x")}), ExitNodeDead},
	}
	for _, c := range cases {
		if got := ExitCode(c.err); got != c.want {
			t.Errorf("ExitCode(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}

func TestDivergentOutranksBudget(t *testing.T) {
	// A budget overrun reclassified as divergence must report divergence.
	err := rt.Mark(rt.ErrDivergent, fmt.Errorf("equiv: %w", rt.ErrMaxSteps))
	if got := ExitCode(err); got != ExitDivergent {
		t.Fatalf("got %d, want %d", got, ExitDivergent)
	}
}
