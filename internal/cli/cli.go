// Package cli holds the shared command-line conventions of the cmd/
// binaries: the mapping from the runtime error taxonomy (package rt) to
// process exit codes, and the interrupt/timeout context plumbing.
//
// Exit codes are part of each binary's interface — scripts driving the tools
// branch on them — so every command maps the same error class to the same
// code:
//
//	0  success
//	1  unclassified error (I/O, internal)
//	2  usage error (flag parsing; produced by package flag)
//	3  source could not be parsed or the program/graph is invalid
//	4  step/firing budget exhausted (rt.ErrMaxSteps)
//	5  canceled or deadline exceeded (rt.ErrCanceled, rt.ErrDeadline)
//	6  a worker panicked (*rt.PanicError)
//	7  execution judged divergent (rt.ErrDivergent)
//	8  a cluster node died (*rt.NodeError)
package cli

import (
	"context"
	"errors"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"syscall"
	"time"

	"repro/internal/rt"
)

// Exit codes for the error classes of package rt.
const (
	ExitOK        = 0
	ExitError     = 1
	ExitUsage     = 2
	ExitParse     = 3
	ExitBudget    = 4
	ExitCanceled  = 5
	ExitPanic     = 6
	ExitDivergent = 7
	ExitNodeDead  = 8
)

// ExitCode maps err to the command exit code for its error class. The
// specific classes are tested before the broad ones so e.g. a *rt.PanicError
// that a caller also marked canceled still reports the panic.
func ExitCode(err error) int {
	var pe *rt.PanicError
	var ne *rt.NodeError
	switch {
	case err == nil:
		return ExitOK
	case errors.As(err, &pe):
		return ExitPanic
	case errors.As(err, &ne):
		return ExitNodeDead
	case errors.Is(err, rt.ErrDivergent):
		return ExitDivergent
	case errors.Is(err, rt.ErrCanceled), errors.Is(err, rt.ErrDeadline):
		return ExitCanceled
	case errors.Is(err, rt.ErrMaxSteps):
		return ExitBudget
	case errors.Is(err, rt.ErrParse), errors.Is(err, rt.ErrInvalid):
		return ExitParse
	default:
		return ExitError
	}
}

// Exit prints err prefixed with the program name and exits with its class
// code. A nil err exits 0.
func Exit(prog string, err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", prog, err)
	}
	os.Exit(ExitCode(err))
}

// StartProfiles wires the -cpuprofile/-memprofile convention shared by the
// cmd/ binaries: cpu (when non-empty) starts a CPU profile immediately, mem
// (when non-empty) captures a heap profile at stop time. The returned stop
// function finishes both and must run before the process exits — including
// the error paths, so call it explicitly before cli.Exit rather than only
// deferring it past an os.Exit. Empty paths make it a no-op.
func StartProfiles(cpu, mem string) (stop func(), err error) {
	var cpuFile *os.File
	if cpu != "" {
		cpuFile, err = os.Create(cpu)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
			cpuFile = nil
		}
		if mem != "" {
			f, err := os.Create(mem)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			runtime.GC() // settle live objects so the heap profile is meaningful
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
			f.Close()
			mem = ""
		}
	}, nil
}

// Context returns the root context for a command run: canceled on SIGINT or
// SIGTERM, and additionally bounded by timeout when it is positive. The
// returned stop function releases both; call it before exiting normally.
func Context(timeout time.Duration) (context.Context, context.CancelFunc) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	if timeout <= 0 {
		return ctx, stop
	}
	tctx, cancel := context.WithTimeout(ctx, timeout)
	return tctx, func() { cancel(); stop() }
}
