// Package cli holds the shared command-line conventions of the cmd/
// binaries: the mappings from the runtime error taxonomy (package rt) to
// process exit codes and to HTTP response statuses, and the
// interrupt/timeout context plumbing.
//
// Exit codes are part of each binary's interface — scripts driving the tools
// branch on them — so every command maps the same error class to the same
// code:
//
//	0  success
//	1  unclassified error (I/O, internal)
//	2  usage error (flag parsing; produced by package flag)
//	3  source could not be parsed or the program/graph is invalid
//	4  step/firing budget exhausted (rt.ErrMaxSteps)
//	5  canceled or deadline exceeded (rt.ErrCanceled, rt.ErrDeadline)
//	6  a worker panicked (*rt.PanicError)
//	7  execution judged divergent (rt.ErrDivergent)
//	8  a cluster node died (*rt.NodeError)
package cli

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"sync"
	"syscall"
	"time"

	"repro/internal/rt"
)

// Exit codes for the error classes of package rt.
const (
	ExitOK        = 0
	ExitError     = 1
	ExitUsage     = 2
	ExitParse     = 3
	ExitBudget    = 4
	ExitCanceled  = 5
	ExitPanic     = 6
	ExitDivergent = 7
	ExitNodeDead  = 8
)

// ExitCode maps err to the command exit code for its error class. The
// specific classes are tested before the broad ones so e.g. a *rt.PanicError
// that a caller also marked canceled still reports the panic.
func ExitCode(err error) int {
	var pe *rt.PanicError
	var ne *rt.NodeError
	switch {
	case err == nil:
		return ExitOK
	case errors.As(err, &pe):
		return ExitPanic
	case errors.As(err, &ne):
		return ExitNodeDead
	case errors.Is(err, rt.ErrDivergent):
		return ExitDivergent
	case errors.Is(err, rt.ErrCanceled), errors.Is(err, rt.ErrDeadline):
		return ExitCanceled
	case errors.Is(err, rt.ErrMaxSteps):
		return ExitBudget
	case errors.Is(err, rt.ErrParse), errors.Is(err, rt.ErrInvalid):
		return ExitParse
	default:
		return ExitError
	}
}

// HTTP status codes for the error classes of package rt — the wire
// counterpart of the exit-code table above, used by the gammad service
// (internal/service) to finish synchronous runs and by its clients to
// interpret them. One class, one status:
//
//	200  success
//	400  parse error or invalid program/graph (rt.ErrParse, rt.ErrInvalid)
//	408  the run's deadline or step budget expired (rt.ErrDeadline, rt.ErrMaxSteps)
//	422  execution judged divergent (rt.ErrDivergent)
//	499  canceled by the client (rt.ErrCanceled; nginx's client-closed-request)
//	500  a worker panicked, a cluster node died, or the error is unclassified
//
// StatusClientClosed is 499: not an IANA code, but the de-facto standard for
// "the client gave up first" and distinct from the server-owned 4xx/5xx.
const (
	StatusClientClosed = 499
)

// HTTPStatus maps err to the HTTP response status for its error class. The
// specific classes are tested before the broad ones, in the same order as
// ExitCode, so the two mappings always agree on the class an error reports.
func HTTPStatus(err error) int {
	var pe *rt.PanicError
	var ne *rt.NodeError
	switch {
	case err == nil:
		return http.StatusOK
	case errors.As(err, &pe):
		return http.StatusInternalServerError
	case errors.As(err, &ne):
		return http.StatusInternalServerError
	case errors.Is(err, rt.ErrDivergent):
		return http.StatusUnprocessableEntity
	case errors.Is(err, rt.ErrCanceled):
		return StatusClientClosed
	case errors.Is(err, rt.ErrDeadline):
		return http.StatusRequestTimeout
	case errors.Is(err, rt.ErrMaxSteps):
		return http.StatusRequestTimeout
	case errors.Is(err, rt.ErrParse), errors.Is(err, rt.ErrInvalid):
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}

// Exit prints err prefixed with the program name and exits with its class
// code. A nil err exits 0.
func Exit(prog string, err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", prog, err)
	}
	os.Exit(ExitCode(err))
}

// ProfileSpec names the profile outputs of one command run — the
// -cpuprofile/-memprofile/-blockprofile/-mutexprofile convention shared by
// the cmd/ binaries. Empty paths disable the corresponding profile.
type ProfileSpec struct {
	// CPU starts a CPU profile at Start and stops it at flush time.
	CPU string
	// Mem captures a heap profile (after a settling GC) at flush time.
	Mem string
	// Block enables block profiling (SetBlockProfileRate(1)) for the run and
	// captures the blocking profile at flush time.
	Block string
	// Mutex enables mutex profiling (SetMutexProfileFraction(1)) for the run
	// and captures the contention profile at flush time.
	Mutex string
}

// Start begins the requested profiles and returns the stop function that
// flushes and closes them all. Flushing is idempotent and additionally hooked
// to SIGINT/SIGTERM: a run killed mid-flight still gets its profiles written
// before the signal-driven exit path unwinds, instead of only on the
// normal-exit call. Call stop explicitly before cli.Exit (which os.Exits past
// any defer); the signal hook is released by it.
func (s ProfileSpec) Start() (stop func(), err error) {
	if s == (ProfileSpec{}) {
		return func() {}, nil
	}
	var cpuFile *os.File
	if s.CPU != "" {
		cpuFile, err = os.Create(s.CPU)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
	}
	if s.Block != "" {
		runtime.SetBlockProfileRate(1)
	}
	if s.Mutex != "" {
		runtime.SetMutexProfileFraction(1)
	}
	flush := func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if s.Mem != "" {
			runtime.GC() // settle live objects so the heap profile is meaningful
			writeProfile(s.Mem, "memprofile", func(f *os.File) error {
				return pprof.WriteHeapProfile(f)
			})
		}
		if s.Block != "" {
			writeProfile(s.Block, "blockprofile", func(f *os.File) error {
				return pprof.Lookup("block").WriteTo(f, 0)
			})
			runtime.SetBlockProfileRate(0)
		}
		if s.Mutex != "" {
			writeProfile(s.Mutex, "mutexprofile", func(f *os.File) error {
				return pprof.Lookup("mutex").WriteTo(f, 0)
			})
			runtime.SetMutexProfileFraction(0)
		}
	}
	var once sync.Once
	sigs := make(chan os.Signal, 1)
	done := make(chan struct{})
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		select {
		case <-sigs:
			once.Do(flush)
		case <-done:
		}
	}()
	var stopOnce sync.Once
	return func() {
		stopOnce.Do(func() {
			signal.Stop(sigs)
			close(done)
		})
		once.Do(flush)
	}, nil
}

// writeProfile creates path and hands it to write, reporting failures to
// stderr rather than aborting the exit path (a profile is diagnostics, not
// the command's result).
func writeProfile(path, what string, write func(*os.File) error) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", what, err)
		return
	}
	if err := write(f); err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", what, err)
	}
	f.Close()
}

// StartProfiles is the legacy two-profile form of ProfileSpec.Start, kept for
// call sites that predate block/mutex profiling.
func StartProfiles(cpu, mem string) (stop func(), err error) {
	return ProfileSpec{CPU: cpu, Mem: mem}.Start()
}

// Context returns the root context for a command run: canceled on SIGINT or
// SIGTERM, and additionally bounded by timeout when it is positive. The
// returned stop function releases both; call it before exiting normally.
func Context(timeout time.Duration) (context.Context, context.CancelFunc) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	if timeout <= 0 {
		return ctx, stop
	}
	tctx, cancel := context.WithTimeout(ctx, timeout)
	return tctx, func() { cancel(); stop() }
}
