package rt

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
)

// TestSentinelContracts pins the errors.Is relationships the rest of the
// system depends on.
func TestSentinelContracts(t *testing.T) {
	if !errors.Is(ErrDeadline, context.DeadlineExceeded) {
		t.Error("ErrDeadline must satisfy errors.Is(_, context.DeadlineExceeded)")
	}
	if !errors.Is(ErrCanceled, context.Canceled) {
		t.Error("ErrCanceled must satisfy errors.Is(_, context.Canceled)")
	}
	if errors.Is(ErrDeadline, context.Canceled) || errors.Is(ErrCanceled, context.DeadlineExceeded) {
		t.Error("deadline and cancellation classes must not cross-match")
	}
	// Wrapping through fmt.Errorf keeps the chain intact.
	err := fmt.Errorf("stage 2: %w", ErrMaxSteps)
	if !errors.Is(err, ErrMaxSteps) {
		t.Error("fmt.Errorf-wrapped sentinel lost its identity")
	}
}

func TestWrapKeepsMessageAndChain(t *testing.T) {
	e := Wrap("gamma: maximum step count exceeded", ErrMaxSteps)
	if e.Error() != "gamma: maximum step count exceeded" {
		t.Errorf("message = %q", e.Error())
	}
	if !errors.Is(e, ErrMaxSteps) {
		t.Error("wrapped sentinel must match the shared class")
	}
}

func TestMark(t *testing.T) {
	if Mark(ErrParse, nil) != nil {
		t.Error("Mark(nil) must be nil")
	}
	base := errors.New("line 3: unexpected token")
	m := Mark(ErrParse, base)
	if m.Error() != base.Error() {
		t.Errorf("Mark changed the message: %q", m.Error())
	}
	if !errors.Is(m, ErrParse) || !errors.Is(m, base) {
		t.Error("Mark must classify without hiding the original error")
	}
	if Mark(ErrParse, m) != m {
		t.Error("re-marking an already classified error should be a no-op")
	}
}

func TestFromContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if got := FromContext(ctx.Err()); got != ErrCanceled {
		t.Errorf("FromContext(canceled) = %v", got)
	}
	dctx, dcancel := context.WithTimeout(context.Background(), 0)
	defer dcancel()
	<-dctx.Done()
	if got := FromContext(dctx.Err()); got != ErrDeadline {
		t.Errorf("FromContext(deadline) = %v", got)
	}
	if FromContext(nil) != nil {
		t.Error("FromContext(nil) must be nil")
	}
	other := errors.New("boom")
	if FromContext(other) != other {
		t.Error("non-context errors must pass through")
	}
}

func TestPanicError(t *testing.T) {
	var err error
	func() {
		defer func() {
			if rec := recover(); rec != nil {
				err = NewPanicError("gamma", "R1", 3, rec)
			}
		}()
		panic("kaboom")
	}()
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("errors.As failed on %T", err)
	}
	if pe.Site != "R1" || pe.Worker != 3 || pe.Runtime != "gamma" {
		t.Errorf("identity lost: %+v", pe)
	}
	if len(pe.Stack) == 0 {
		t.Error("stack not captured")
	}
	if !strings.Contains(pe.Error(), "R1") || !strings.Contains(pe.Error(), "kaboom") {
		t.Errorf("message uninformative: %q", pe.Error())
	}
}

func TestNodeError(t *testing.T) {
	inner := Wrap("node timed out", context.DeadlineExceeded)
	ne := &NodeError{Node: 2, Attempts: 3, Err: inner}
	var got *NodeError
	if !errors.As(fmt.Errorf("dist: %w", ne), &got) || got.Node != 2 {
		t.Fatal("NodeError must survive wrapping")
	}
	if !errors.Is(ne, context.DeadlineExceeded) {
		t.Error("NodeError must unwrap to its cause")
	}
}

func TestCode(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{nil, CodeOK},
		{errors.New("io"), CodeInternal},
		{Mark(ErrParse, errors.New("bad token")), CodeParse},
		{Mark(ErrInvalid, errors.New("dangling edge")), CodeInvalid},
		{fmt.Errorf("gamma: %w", ErrMaxSteps), CodeMaxSteps},
		{ErrCanceled, CodeCanceled},
		{ErrDeadline, CodeDeadline},
		{Mark(ErrDivergent, fmt.Errorf("wrap: %w", ErrMaxSteps)), CodeDivergent},
		{NewPanicError("gamma", "R1", 2, "boom"), CodePanic},
		{fmt.Errorf("dist: %w", &NodeError{Node: 1, Attempts: 3, Err: errors.New("x")}), CodeNodeDead},
	}
	for _, c := range cases {
		if got := Code(c.err); got != c.want {
			t.Errorf("Code(%v) = %q, want %q", c.err, got, c.want)
		}
	}
}

// TestFromCodeRoundTrip pins the client-side reconstruction: for every
// sentinel class, FromCode(Code(err)) yields an error the original satisfies
// errors.Is against, so remote errors route exactly like local ones.
func TestFromCodeRoundTrip(t *testing.T) {
	for _, class := range []error{ErrMaxSteps, ErrCanceled, ErrDeadline, ErrDivergent, ErrParse, ErrInvalid} {
		err := Mark(class, errors.New("detail"))
		back := FromCode(Code(err))
		if back == nil {
			t.Fatalf("FromCode(Code(%v)) = nil", class)
		}
		if !errors.Is(err, back) {
			t.Errorf("errors.Is(%v, FromCode(%q)) = false", err, Code(err))
		}
	}
	for _, code := range []string{CodeOK, CodePanic, CodeNodeDead, CodeInternal, "unknown"} {
		if got := FromCode(code); got != nil {
			t.Errorf("FromCode(%q) = %v, want nil", code, got)
		}
	}
}
