// Package rt is the shared execution-runtime contract of the two models'
// runtimes (internal/gamma and internal/dataflow) and of the distributed
// executor (internal/dist): a typed error taxonomy that supports errors.Is /
// errors.As across package boundaries, the context-to-taxonomy mapping, and
// the fault-injection hook used by the stress tests.
//
// # Error taxonomy
//
// Every way an execution can stop early has exactly one class:
//
//   - ErrMaxSteps — the step/firing budget was exhausted (the blunt bound on
//     Eq. 1's "until stable" recursion). gamma.ErrMaxSteps and
//     dataflow.ErrMaxFirings keep their historical messages and wrap this
//     sentinel, so errors.Is(err, rt.ErrMaxSteps) matches either runtime.
//   - ErrCanceled / ErrDeadline — the context was canceled or its deadline
//     passed. Both unwrap to the corresponding context sentinel, so
//     errors.Is(err, context.Canceled) / errors.Is(err, context.DeadlineExceeded)
//     hold as callers expect.
//   - ErrDivergent — the execution provably made no progress toward a stable
//     state within its budget (a cluster that diffuses past MaxRounds, an
//     equivalence check whose subject graph never quiesces).
//   - ErrInvalid — the program or graph failed structural validation.
//   - ErrParse — source text failed to parse (Fig. 3 grammar, dfir, the von
//     Neumann mini language).
//   - *PanicError — a worker recovered a panic out of a reaction action or
//     vertex operation; carries the site identity and stack.
//   - *NodeError — a distributed node exhausted its retry budget and was
//     declared dead.
//
// Sentinels classify; they do not replace messages. Mark attaches a class to
// a detailed error without changing what the user reads.
package rt

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
)

// The sentinel classes. See the package comment for the taxonomy.
var (
	ErrMaxSteps  = errors.New("execution: step budget exceeded")
	ErrCanceled  = Wrap("execution canceled", context.Canceled)
	ErrDeadline  = Wrap("execution deadline exceeded", context.DeadlineExceeded)
	ErrDivergent = errors.New("execution divergent: no stable state within budget")
	ErrInvalid   = errors.New("invalid program")
	ErrParse     = errors.New("parse error")
)

// Wrap returns a sentinel with its own message whose errors.Is chain
// continues into under. It is how a package keeps a historical error string
// (e.g. "gamma: maximum step count exceeded") while joining the shared
// taxonomy.
func Wrap(msg string, under error) error { return &wrapped{msg: msg, under: under} }

type wrapped struct {
	msg   string
	under error
}

func (e *wrapped) Error() string { return e.msg }
func (e *wrapped) Unwrap() error { return e.under }

// Mark classifies err under class without changing its message: the returned
// error prints exactly err.Error() but satisfies errors.Is for class (and for
// everything err already wrapped). A nil err stays nil; an err already
// carrying the class is returned unchanged.
func Mark(class, err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, class) {
		return err
	}
	return &marked{class: class, err: err}
}

type marked struct {
	class error
	err   error
}

func (m *marked) Error() string   { return m.err.Error() }
func (m *marked) Unwrap() []error { return []error{m.err, m.class} }

// Stable wire identifiers of the taxonomy classes. They are part of the
// gammad service's v1 wire contract (internal/schema.WireError.Code): like
// the exit codes of internal/cli they may gain new values but existing ones
// never change meaning.
const (
	CodeOK        = "ok"
	CodePanic     = "panic"
	CodeNodeDead  = "node_dead"
	CodeDivergent = "divergent"
	CodeCanceled  = "canceled"
	CodeDeadline  = "deadline"
	CodeMaxSteps  = "max_steps"
	CodeParse     = "parse"
	CodeInvalid   = "invalid"
	CodeInternal  = "internal"
)

// Code maps err to the stable wire identifier of its taxonomy class. The
// specific classes are tested before the broad ones, in the same order as
// cli.ExitCode, so both mappings always agree on which class an error
// reports. Unclassified errors are CodeInternal.
func Code(err error) string {
	var pe *PanicError
	var ne *NodeError
	switch {
	case err == nil:
		return CodeOK
	case errors.As(err, &pe):
		return CodePanic
	case errors.As(err, &ne):
		return CodeNodeDead
	case errors.Is(err, ErrDivergent):
		return CodeDivergent
	case errors.Is(err, ErrCanceled):
		return CodeCanceled
	case errors.Is(err, ErrDeadline):
		return CodeDeadline
	case errors.Is(err, ErrMaxSteps):
		return CodeMaxSteps
	case errors.Is(err, ErrParse):
		return CodeParse
	case errors.Is(err, ErrInvalid):
		return CodeInvalid
	default:
		return CodeInternal
	}
}

// FromCode maps a wire identifier back to its sentinel class, so a client
// that received an error over the wire can route it with errors.Is exactly
// like a local caller. Codes without a sentinel (ok, panic, node_dead,
// internal — the first has no error, the others are typed values that cannot
// be reconstructed remotely) return nil.
func FromCode(code string) error {
	switch code {
	case CodeDivergent:
		return ErrDivergent
	case CodeCanceled:
		return ErrCanceled
	case CodeDeadline:
		return ErrDeadline
	case CodeMaxSteps:
		return ErrMaxSteps
	case CodeParse:
		return ErrParse
	case CodeInvalid:
		return ErrInvalid
	}
	return nil
}

// FromContext maps a context error into the taxonomy: DeadlineExceeded →
// ErrDeadline, Canceled → ErrCanceled; anything else (including nil) passes
// through.
func FromContext(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, context.DeadlineExceeded):
		return ErrDeadline
	case errors.Is(err, context.Canceled):
		return ErrCanceled
	}
	return err
}

// PanicError reports a panic recovered inside a worker, converted into an
// ordinary error so one faulty reaction action or vertex operation fails the
// run instead of crashing the process (or, worse, wedging the pool with a
// dead worker that can never go idle).
type PanicError struct {
	// Runtime names the runtime that recovered the panic: "gamma" or
	// "dataflow".
	Runtime string
	// Site is the reaction or vertex the panicking code belonged to.
	Site string
	// Worker is the worker/PE index that recovered the panic (0 for the
	// sequential interpreters).
	Worker int
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack, captured at recovery.
	Stack []byte
}

// NewPanicError captures the current stack; call it from a deferred recover.
func NewPanicError(runtime, site string, worker int, value any) *PanicError {
	return &PanicError{Runtime: runtime, Site: site, Worker: worker, Value: value, Stack: debug.Stack()}
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("%s: worker %d: panic in %s: %v", e.Runtime, e.Worker, e.Site, e.Value)
}

// NodeError reports a distributed node that exhausted its retry budget and
// was declared dead; the cluster degrades (survivors adopt its shard and
// finish the fixpoint) rather than hanging on it.
type NodeError struct {
	// Node is the dead node's index.
	Node int
	// Attempts is how many times the node's react phase was tried.
	Attempts int
	// Err is the last failure.
	Err error
}

func (e *NodeError) Error() string {
	return fmt.Sprintf("node %d dead after %d attempts: %v", e.Node, e.Attempts, e.Err)
}

func (e *NodeError) Unwrap() error { return e.Err }

// FaultInjector is the fault-injection hook of both runtimes
// (Options.FaultInjector): invoked before every reaction application or
// vertex firing with the site name and the worker index about to execute it.
// A non-nil return aborts the run with that error; a panic inside the hook
// exercises the worker pool's panic recovery. Production runs leave it nil —
// it exists so the stress tests can prove the fault-tolerance guarantees.
type FaultInjector func(site string, worker int) error
