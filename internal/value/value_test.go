package value

import (
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindInt: "int", KindFloat: "float", KindBool: "bool",
		KindString: "string", KindInvalid: "invalid", Kind(99): "invalid",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestConstructorsAndAccessors(t *testing.T) {
	if v := Int(42); v.Kind() != KindInt || v.AsInt() != 42 {
		t.Errorf("Int(42) = %#v", v)
	}
	if v := Float(2.5); v.Kind() != KindFloat || v.AsFloat() != 2.5 {
		t.Errorf("Float(2.5) = %#v", v)
	}
	if v := Bool(true); v.Kind() != KindBool || !v.AsBool() {
		t.Errorf("Bool(true) = %#v", v)
	}
	if v := Str("A1"); v.Kind() != KindString || v.AsString() != "A1" {
		t.Errorf("Str(A1) = %#v", v)
	}
	if (Value{}).IsValid() {
		t.Error("zero Value should be invalid")
	}
	if !Int(0).IsValid() {
		t.Error("Int(0) should be valid")
	}
}

func TestAsFloatPromotesInt(t *testing.T) {
	if got := Int(3).AsFloat(); got != 3.0 {
		t.Errorf("Int(3).AsFloat() = %v", got)
	}
}

func TestAccessorPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("AsInt on bool", func() { Bool(true).AsInt() })
	mustPanic("AsBool on int", func() { Int(1).AsBool() })
	mustPanic("AsString on int", func() { Int(1).AsString() })
	mustPanic("AsFloat on string", func() { Str("x").AsFloat() })
}

func TestTruthy(t *testing.T) {
	cases := []struct {
		v    Value
		want bool
	}{
		{Bool(true), true}, {Bool(false), false},
		{Int(1), true}, {Int(0), false}, {Int(-7), true},
		{Float(0.5), true}, {Float(0), false},
	}
	for _, c := range cases {
		got, err := c.v.Truthy()
		if err != nil || got != c.want {
			t.Errorf("Truthy(%s) = %v, %v; want %v", c.v, got, err, c.want)
		}
	}
	if _, err := Str("x").Truthy(); err == nil {
		t.Error("Truthy on string should error")
	}
}

func TestStringRendering(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Int(-3), "-3"},
		{Float(2.5), "2.5"},
		{Float(2), "2.0"},
		{Bool(true), "true"},
		{Str("B2"), "'B2'"},
		{Value{}, "<invalid>"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%#v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	for _, v := range []Value{Int(0), Int(-12), Float(3.25), Bool(true), Bool(false), Str("C12")} {
		got, err := Parse(v.String())
		if err != nil {
			t.Fatalf("Parse(%q): %v", v.String(), err)
		}
		if got != v {
			t.Errorf("Parse(%q) = %#v, want %#v", v.String(), got, v)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, s := range []string{"", "  ", "abc", "1..2", "'unterminated"} {
		if v, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) = %v, want error", s, v)
		}
	}
}

func TestParseDoubleQuoted(t *testing.T) {
	v, err := Parse(`"hello"`)
	if err != nil || v != Str("hello") {
		t.Errorf("Parse(\"hello\") = %v, %v", v, err)
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse on garbage should panic")
		}
	}()
	MustParse("@@")
}

func TestArithmetic(t *testing.T) {
	cases := []struct {
		op   string
		a, b Value
		want Value
	}{
		{"+", Int(1), Int(5), Int(6)},
		{"-", Int(6), Int(6), Int(0)},
		{"*", Int(3), Int(2), Int(6)},
		{"/", Int(7), Int(2), Int(3)},
		{"%", Int(7), Int(2), Int(1)},
		{"+", Float(1.5), Int(1), Float(2.5)},
		{"-", Int(1), Float(0.5), Float(0.5)},
		{"*", Float(2), Float(4), Float(8)},
		{"/", Float(1), Float(4), Float(0.25)},
		{"+", Str("a"), Str("b"), Str("ab")},
	}
	for _, c := range cases {
		got, err := Binary(c.op, c.a, c.b)
		if err != nil {
			t.Errorf("%s %s %s: %v", c.a, c.op, c.b, err)
			continue
		}
		if got != c.want {
			t.Errorf("%s %s %s = %s, want %s", c.a, c.op, c.b, got, c.want)
		}
	}
}

func TestArithmeticErrors(t *testing.T) {
	if _, err := Div(Int(1), Int(0)); err == nil {
		t.Error("int division by zero should error")
	}
	if _, err := Div(Float(1), Float(0)); err == nil {
		t.Error("float division by zero should error")
	}
	if _, err := Mod(Int(1), Int(0)); err == nil {
		t.Error("modulo by zero should error")
	}
	if _, err := Mod(Float(1), Int(2)); err == nil {
		t.Error("float modulo should error")
	}
	if _, err := Add(Int(1), Bool(true)); err == nil {
		t.Error("int+bool should error")
	}
	if _, err := Sub(Str("a"), Str("b")); err == nil {
		t.Error("string subtraction should error")
	}
	var te *TypeError
	_, err := Mul(Str("a"), Int(2))
	if err == nil {
		t.Fatal("string*int should error")
	}
	if e, ok := err.(*TypeError); ok {
		te = e
	} else {
		t.Fatalf("want *TypeError, got %T", err)
	}
	if te.Error() == "" {
		t.Error("TypeError message empty")
	}
}

func TestUnary(t *testing.T) {
	if got, _ := Unary("-", Int(4)); got != Int(-4) {
		t.Errorf("-4 = %s", got)
	}
	if got, _ := Unary("-", Float(1.5)); got != Float(-1.5) {
		t.Errorf("-1.5 = %s", got)
	}
	if got, _ := Unary("!", Bool(false)); got != Bool(true) {
		t.Errorf("!false = %s", got)
	}
	if got, _ := Unary("not", Int(0)); got != Bool(true) {
		t.Errorf("not 0 = %s", got)
	}
	if got, _ := Unary("+", Int(3)); got != Int(3) {
		t.Errorf("+3 = %s", got)
	}
	for _, bad := range []struct {
		op string
		v  Value
	}{
		{"-", Str("x")}, {"!", Str("x")}, {"+", Bool(true)}, {"??", Int(1)},
	} {
		if _, err := Unary(bad.op, bad.v); err == nil {
			t.Errorf("Unary(%q, %s) should error", bad.op, bad.v)
		}
	}
}

func TestComparisons(t *testing.T) {
	cases := []struct {
		op   string
		a, b Value
		want bool
	}{
		{"==", Int(2), Int(2), true},
		{"==", Int(2), Float(2), true},
		{"==", Str("a"), Str("a"), true},
		{"==", Int(2), Str("2"), false},
		{"!=", Int(2), Str("2"), true},
		{"!=", Int(2), Int(3), true},
		{"<", Int(1), Int(2), true},
		{"<=", Int(2), Int(2), true},
		{">", Float(2.5), Int(2), true},
		{">=", Int(2), Int(3), false},
		{"<", Str("a"), Str("b"), true},
		{">", Bool(true), Bool(false), true},
		{"<", Bool(false), Bool(true), true},
	}
	for _, c := range cases {
		got, err := Binary(c.op, c.a, c.b)
		if err != nil {
			t.Errorf("%s %s %s: %v", c.a, c.op, c.b, err)
			continue
		}
		if got != Bool(c.want) {
			t.Errorf("%s %s %s = %s, want %v", c.a, c.op, c.b, got, c.want)
		}
	}
	if _, err := Compare(Str("a"), Int(1)); err == nil {
		t.Error("compare string vs int should error")
	}
	if _, err := Binary("<", Bool(true), Int(1)); err == nil {
		t.Error("ordering bool vs int should error")
	}
}

func TestLogical(t *testing.T) {
	if got, _ := Binary("and", Bool(true), Int(1)); got != Bool(true) {
		t.Errorf("true and 1 = %s", got)
	}
	if got, _ := Binary("or", Bool(false), Int(0)); got != Bool(false) {
		t.Errorf("false or 0 = %s", got)
	}
	if got, _ := Binary("||", Bool(false), Bool(true)); got != Bool(true) {
		t.Errorf("false || true = %s", got)
	}
	if got, _ := Binary("&&", Int(1), Int(0)); got != Bool(false) {
		t.Errorf("1 && 0 = %s", got)
	}
	if _, err := And(Str("x"), Bool(true)); err == nil {
		t.Error("and on string should error")
	}
	if _, err := And(Bool(true), Str("x")); err == nil {
		t.Error("and on string rhs should error")
	}
	if _, err := Or(Str("x"), Bool(true)); err == nil {
		t.Error("or on string should error")
	}
	if _, err := Or(Bool(false), Str("x")); err == nil {
		t.Error("or on string rhs should error")
	}
}

func TestBinaryUnknownOp(t *testing.T) {
	if _, err := Binary("<=>", Int(1), Int(2)); err == nil {
		t.Error("unknown operator should error")
	}
}

// Property: integer addition via Value agrees with native int64 addition.
func TestQuickAddCommutes(t *testing.T) {
	f := func(a, b int32) bool {
		x, err1 := Add(Int(int64(a)), Int(int64(b)))
		y, err2 := Add(Int(int64(b)), Int(int64(a)))
		return err1 == nil && err2 == nil && x == y && x.AsInt() == int64(a)+int64(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Compare is antisymmetric for integers.
func TestQuickCompareAntisymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		c1, err1 := Compare(Int(a), Int(b))
		c2, err2 := Compare(Int(b), Int(a))
		return err1 == nil && err2 == nil && c1 == -c2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Parse(String(v)) is the identity on integer values.
func TestQuickParseStringIdentity(t *testing.T) {
	f := func(a int64) bool {
		v := Int(a)
		got, err := Parse(v.String())
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
