package value

import "fmt"

// TypeError reports an operation applied to operands of unsupported kinds.
type TypeError struct {
	Op    string
	Left  Value
	Right Value
}

func (e *TypeError) Error() string {
	if e.Right.IsValid() || e.Right.kind != KindInvalid {
		return fmt.Sprintf("value: invalid operation %s %s %s (kinds %s, %s)",
			e.Left, e.Op, e.Right, e.Left.kind, e.Right.kind)
	}
	return fmt.Sprintf("value: invalid operation %s%s (kind %s)", e.Op, e.Left, e.Left.kind)
}

// DivisionByZero reports an integer division or modulo by zero.
type DivisionByZero struct{ Op string }

func (e *DivisionByZero) Error() string { return "value: " + e.Op + " by zero" }

func numericPair(a, b Value) bool { return a.IsNumeric() && b.IsNumeric() }

// bothInt reports whether both operands are integers (no promotion needed).
func bothInt(a, b Value) bool { return a.kind == KindInt && b.kind == KindInt }

// Add returns a+b. Numeric operands promote int→float as needed; string
// operands concatenate (a convenience used by a few examples, not the paper).
func Add(a, b Value) (Value, error) {
	switch {
	case bothInt(a, b):
		return Int(a.i + b.i), nil
	case numericPair(a, b):
		return Float(a.AsFloat() + b.AsFloat()), nil
	case a.kind == KindString && b.kind == KindString:
		return Str(a.s + b.s), nil
	}
	return Value{}, &TypeError{Op: "+", Left: a, Right: b}
}

// Sub returns a-b under the numeric promotion rules of Add.
func Sub(a, b Value) (Value, error) {
	switch {
	case bothInt(a, b):
		return Int(a.i - b.i), nil
	case numericPair(a, b):
		return Float(a.AsFloat() - b.AsFloat()), nil
	}
	return Value{}, &TypeError{Op: "-", Left: a, Right: b}
}

// Mul returns a*b under the numeric promotion rules of Add.
func Mul(a, b Value) (Value, error) {
	switch {
	case bothInt(a, b):
		return Int(a.i * b.i), nil
	case numericPair(a, b):
		return Float(a.AsFloat() * b.AsFloat()), nil
	}
	return Value{}, &TypeError{Op: "*", Left: a, Right: b}
}

// Div returns a/b. Integer division truncates toward zero like Go's /.
func Div(a, b Value) (Value, error) {
	switch {
	case bothInt(a, b):
		if b.i == 0 {
			return Value{}, &DivisionByZero{Op: "division"}
		}
		return Int(a.i / b.i), nil
	case numericPair(a, b):
		if b.AsFloat() == 0 {
			return Value{}, &DivisionByZero{Op: "division"}
		}
		return Float(a.AsFloat() / b.AsFloat()), nil
	}
	return Value{}, &TypeError{Op: "/", Left: a, Right: b}
}

// Mod returns a%b for integer operands.
func Mod(a, b Value) (Value, error) {
	if !bothInt(a, b) {
		return Value{}, &TypeError{Op: "%", Left: a, Right: b}
	}
	if b.i == 0 {
		return Value{}, &DivisionByZero{Op: "modulo"}
	}
	return Int(a.i % b.i), nil
}

// Neg returns -a for numeric a.
func Neg(a Value) (Value, error) {
	switch a.kind {
	case KindInt:
		return Int(-a.i), nil
	case KindFloat:
		return Float(-a.f), nil
	}
	return Value{}, &TypeError{Op: "-", Left: a}
}

// Not returns logical negation of a boolean (or truthy numeric) operand.
func Not(a Value) (Value, error) {
	t, err := a.Truthy()
	if err != nil {
		return Value{}, &TypeError{Op: "!", Left: a}
	}
	return Bool(!t), nil
}

// And returns a && b using Truthy semantics.
func And(a, b Value) (Value, error) {
	ta, err := a.Truthy()
	if err != nil {
		return Value{}, &TypeError{Op: "and", Left: a, Right: b}
	}
	tb, err := b.Truthy()
	if err != nil {
		return Value{}, &TypeError{Op: "and", Left: a, Right: b}
	}
	return Bool(ta && tb), nil
}

// Or returns a || b using Truthy semantics.
func Or(a, b Value) (Value, error) {
	ta, err := a.Truthy()
	if err != nil {
		return Value{}, &TypeError{Op: "or", Left: a, Right: b}
	}
	tb, err := b.Truthy()
	if err != nil {
		return Value{}, &TypeError{Op: "or", Left: a, Right: b}
	}
	return Bool(ta || tb), nil
}

// Equal reports deep equality. Numeric values compare across kinds
// (Int(2) == Float(2.0)); other kinds must match exactly.
func Equal(a, b Value) bool {
	if numericPair(a, b) {
		if bothInt(a, b) {
			return a.i == b.i
		}
		return a.AsFloat() == b.AsFloat()
	}
	return a == b
}

// Compare orders two values: -1 if a<b, 0 if equal, +1 if a>b. Numeric values
// order numerically with promotion; strings order lexicographically; booleans
// order false<true. Mismatched non-numeric kinds are an error.
func Compare(a, b Value) (int, error) {
	switch {
	case bothInt(a, b):
		switch {
		case a.i < b.i:
			return -1, nil
		case a.i > b.i:
			return 1, nil
		}
		return 0, nil
	case numericPair(a, b):
		af, bf := a.AsFloat(), b.AsFloat()
		switch {
		case af < bf:
			return -1, nil
		case af > bf:
			return 1, nil
		}
		return 0, nil
	case a.kind == KindString && b.kind == KindString:
		switch {
		case a.s < b.s:
			return -1, nil
		case a.s > b.s:
			return 1, nil
		}
		return 0, nil
	case a.kind == KindBool && b.kind == KindBool:
		switch {
		case !a.b && b.b:
			return -1, nil
		case a.b && !b.b:
			return 1, nil
		}
		return 0, nil
	}
	return 0, &TypeError{Op: "compare", Left: a, Right: b}
}

// Binary applies the named binary operator. Supported operators are the
// arithmetic set {+ - * / %}, comparisons {== != < <= > >=} and logical
// {and or}. Comparison results are booleans, matching the 0/1 control
// elements the paper's steer reactions consume via Truthy.
func Binary(op string, a, b Value) (Value, error) {
	switch op {
	case "+":
		return Add(a, b)
	case "-":
		return Sub(a, b)
	case "*":
		return Mul(a, b)
	case "/":
		return Div(a, b)
	case "%":
		return Mod(a, b)
	case "and", "&&":
		return And(a, b)
	case "or", "||":
		return Or(a, b)
	case "==":
		if numericPair(a, b) || a.kind == b.kind {
			return Bool(Equal(a, b)), nil
		}
		return Bool(false), nil
	case "!=":
		if numericPair(a, b) || a.kind == b.kind {
			return Bool(!Equal(a, b)), nil
		}
		return Bool(true), nil
	case "<", "<=", ">", ">=":
		c, err := Compare(a, b)
		if err != nil {
			return Value{}, err
		}
		switch op {
		case "<":
			return Bool(c < 0), nil
		case "<=":
			return Bool(c <= 0), nil
		case ">":
			return Bool(c > 0), nil
		default:
			return Bool(c >= 0), nil
		}
	}
	return Value{}, fmt.Errorf("value: unknown binary operator %q", op)
}

// BinaryFn resolves the named binary operator to its implementation once, so
// compiled expression kernels pay the op-string dispatch at compile time
// instead of on every evaluation. The returned function behaves exactly like
// Binary(op, a, b). ok is false for unknown operators.
func BinaryFn(op string) (fn func(a, b Value) (Value, error), ok bool) {
	switch op {
	case "+":
		return Add, true
	case "-":
		return Sub, true
	case "*":
		return Mul, true
	case "/":
		return Div, true
	case "%":
		return Mod, true
	case "and", "&&":
		return And, true
	case "or", "||":
		return Or, true
	case "==":
		return func(a, b Value) (Value, error) {
			if numericPair(a, b) || a.kind == b.kind {
				return Bool(Equal(a, b)), nil
			}
			return Bool(false), nil
		}, true
	case "!=":
		return func(a, b Value) (Value, error) {
			if numericPair(a, b) || a.kind == b.kind {
				return Bool(!Equal(a, b)), nil
			}
			return Bool(true), nil
		}, true
	case "<", "<=", ">", ">=":
		o := op
		return func(a, b Value) (Value, error) {
			c, err := Compare(a, b)
			if err != nil {
				return Value{}, err
			}
			switch o {
			case "<":
				return Bool(c < 0), nil
			case "<=":
				return Bool(c <= 0), nil
			case ">":
				return Bool(c > 0), nil
			default:
				return Bool(c >= 0), nil
			}
		}, true
	}
	return nil, false
}

// UnaryFn is BinaryFn for the unary operators; the returned function behaves
// exactly like Unary(op, a).
func UnaryFn(op string) (fn func(a Value) (Value, error), ok bool) {
	switch op {
	case "-":
		return Neg, true
	case "!", "not":
		return Not, true
	case "+":
		return func(a Value) (Value, error) {
			if a.IsNumeric() {
				return a, nil
			}
			return Value{}, &TypeError{Op: "+", Left: a}
		}, true
	}
	return nil, false
}

// Unary applies the named unary operator (- or !).
func Unary(op string, a Value) (Value, error) {
	switch op {
	case "-":
		return Neg(a)
	case "!", "not":
		return Not(a)
	case "+":
		if a.IsNumeric() {
			return a, nil
		}
		return Value{}, &TypeError{Op: "+", Left: a}
	}
	return Value{}, fmt.Errorf("value: unknown unary operator %q", op)
}
