// Package value implements the scalar value model shared by the Gamma and
// dataflow runtimes.
//
// Both computational models in the paper manipulate the same operand domain:
// the dataflow edges of Fig. 1 and Fig. 2 carry integers and booleans, and the
// multiset elements of the Gamma listings hold the same scalars in their first
// tuple field. Value is a small tagged union covering that domain (integers,
// floats, booleans and strings). It is a comparable struct, so it can be used
// directly as a map key — the multiset and the dataflow matching stores rely
// on that property.
package value

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind discriminates the variants of a Value.
type Kind uint8

// The supported scalar kinds.
const (
	KindInvalid Kind = iota
	KindInt
	KindFloat
	KindBool
	KindString
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindBool:
		return "bool"
	case KindString:
		return "string"
	default:
		return "invalid"
	}
}

// Value is an immutable scalar. The zero Value has KindInvalid and is not a
// legal operand; runtimes treat it as "absent".
type Value struct {
	kind Kind
	i    int64
	f    float64
	s    string
	b    bool
}

// Int returns an integer Value.
func Int(i int64) Value { return Value{kind: KindInt, i: i} }

// Float returns a floating-point Value.
func Float(f float64) Value { return Value{kind: KindFloat, f: f} }

// Bool returns a boolean Value.
func Bool(b bool) Value { return Value{kind: KindBool, b: b} }

// Str returns a string Value.
func Str(s string) Value { return Value{kind: KindString, s: s} }

// Kind reports the variant held by v.
func (v Value) Kind() Kind { return v.kind }

// IsValid reports whether v holds any variant at all.
func (v Value) IsValid() bool { return v.kind != KindInvalid }

// AsInt returns the integer payload. It panics unless Kind is KindInt.
func (v Value) AsInt() int64 {
	if v.kind != KindInt {
		panic(fmt.Sprintf("value: AsInt on %s value %s", v.kind, v))
	}
	return v.i
}

// AsFloat returns the numeric payload widened to float64. It panics unless v
// is numeric.
func (v Value) AsFloat() float64 {
	switch v.kind {
	case KindFloat:
		return v.f
	case KindInt:
		return float64(v.i)
	}
	panic(fmt.Sprintf("value: AsFloat on %s value %s", v.kind, v))
}

// AsBool returns the boolean payload. It panics unless Kind is KindBool.
func (v Value) AsBool() bool {
	if v.kind != KindBool {
		panic(fmt.Sprintf("value: AsBool on %s value %s", v.kind, v))
	}
	return v.b
}

// AsString returns the string payload. It panics unless Kind is KindString.
func (v Value) AsString() string {
	if v.kind != KindString {
		panic(fmt.Sprintf("value: AsString on %s value %s", v.kind, v))
	}
	return v.s
}

// IsNumeric reports whether v is an int or float.
func (v Value) IsNumeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// Truthy interprets v as a control signal the way the paper's steer reactions
// do: booleans are themselves, and numeric values follow the listings'
// `id2 == 1` convention (non-zero is true).
func (v Value) Truthy() (bool, error) {
	switch v.kind {
	case KindBool:
		return v.b, nil
	case KindInt:
		return v.i != 0, nil
	case KindFloat:
		return v.f != 0, nil
	default:
		return false, fmt.Errorf("value: %s value %s has no truth value", v.kind, v)
	}
}

// String renders v in source form: integers and floats as literals, booleans
// as true/false, strings single-quoted in the paper's style.
func (v Value) String() string {
	switch v.kind {
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		s := strconv.FormatFloat(v.f, 'g', -1, 64)
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		return s
	case KindBool:
		return strconv.FormatBool(v.b)
	case KindString:
		return "'" + v.s + "'"
	default:
		return "<invalid>"
	}
}

// Append appends exactly String()'s rendering of v to b and returns the
// extended slice. It is the allocation-free form used by the multiset's hot
// commit path to build tuple fingerprints into reusable buffers; the two
// renderings must stay byte-identical, which TestAppendMatchesString pins.
func (v Value) Append(b []byte) []byte {
	switch v.kind {
	case KindInt:
		return strconv.AppendInt(b, v.i, 10)
	case KindFloat:
		n := len(b)
		b = strconv.AppendFloat(b, v.f, 'g', -1, 64)
		for _, c := range b[n:] {
			if c == '.' || c == 'e' || c == 'E' {
				return b
			}
		}
		return append(b, '.', '0')
	case KindBool:
		return strconv.AppendBool(b, v.b)
	case KindString:
		b = append(b, '\'')
		b = append(b, v.s...)
		return append(b, '\'')
	default:
		return append(b, "<invalid>"...)
	}
}

// GoString implements fmt.GoStringer for debugging output.
func (v Value) GoString() string { return fmt.Sprintf("value.Value(%s:%s)", v.kind, v.String()) }

// Parse reads a Value from its source form: an integer literal, a float
// literal, true/false, or a quoted string ('...' or "...").
func Parse(s string) (Value, error) {
	s = strings.TrimSpace(s)
	switch {
	case s == "":
		return Value{}, fmt.Errorf("value: empty literal")
	case s == "true":
		return Bool(true), nil
	case s == "false":
		return Bool(false), nil
	case len(s) >= 2 && (s[0] == '\'' || s[0] == '"') && s[len(s)-1] == s[0]:
		return Str(s[1 : len(s)-1]), nil
	}
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return Int(i), nil
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return Float(f), nil
	}
	return Value{}, fmt.Errorf("value: cannot parse literal %q", s)
}

// MustParse is Parse that panics on error; for tests and fixtures.
func MustParse(s string) Value {
	v, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return v
}
