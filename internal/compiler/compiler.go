// Package compiler translates a small imperative language — the "high level
// language based on von Neumann paradigm" of the paper's examples — into
// dynamic dataflow graphs. It reproduces mechanically how the paper derives
// Fig. 1 from
//
//	int x = 1; int y = 5; int k = 3; int j = 2; int m;
//	m = (x + y) - (k * j);
//
// and Fig. 2 from
//
//	for (i = z; i > 0; i--) x = x + y;
//
// Straight-line code becomes an expression dag; each for loop becomes the
// Fig. 2 structure: one inctag vertex per live variable (merging the initial
// and loop-back edges), the loop condition as a comparison vertex fanning its
// control operand to one steer per live variable, the body wired from the
// steer true ports back to the inctags, and the steer false ports carrying
// the loop's final values onward.
//
// Grammar:
//
//	program := (funcdecl | stmt)*
//	funcdecl:= 'func' IDENT '(' [IDENT {',' IDENT}] ')'
//	           '{' fstmt* 'return' expr ';' '}'
//	fstmt   := 'int' IDENT ['=' expr] ';' | IDENT '=' expr ';'
//	stmt    := 'int' IDENT ['=' expr] ';'
//	         | IDENT '=' expr ';'
//	         | 'for' '(' assign ';' expr ';' step ')' body
//	         | 'output' IDENT ';'
//	step    := assign | IDENT '--' | IDENT '++'
//	body    := '{' stmt* '}' | stmt            (assignments only inside)
//
// Variables assigned but never read become program outputs, unless explicit
// output statements name them.
//
// Function calls compile by graph instantiation: each call site inlines a
// fresh copy of the function's subgraph wired to the argument edges — the
// static form of the tag-based function calling the paper mentions as the
// TALM approach [5]. Functions must be declared before use and may not
// recurse (recursion needs dynamic call tags, which single-level iteration
// tags cannot express; the same limitation applies to nested loops).
package compiler

import (
	"fmt"

	"repro/internal/dataflow"
	"repro/internal/expr"
	"repro/internal/rt"
)

// Compile translates source into a validated dataflow graph. Syntax and
// translation errors are classified under rt.ErrParse; graph validation
// failures under rt.ErrInvalid.
func Compile(name, src string) (*dataflow.Graph, error) {
	stmts, err := parse(src)
	if err != nil {
		return nil, rt.Mark(rt.ErrParse, err)
	}
	c := &compiler{
		g:   dataflow.NewGraph(name),
		env: make(map[string]outPort),
	}
	if err := c.compile(stmts); err != nil {
		return nil, rt.Mark(rt.ErrParse, err)
	}
	if err := c.g.Validate(); err != nil {
		return nil, rt.Mark(rt.ErrInvalid, err)
	}
	if err := c.g.CheckLoops(); err != nil {
		// Unreachable for compiler output (loops are built around inctags);
		// defensive so generated graphs always satisfy the tag discipline.
		return nil, err
	}
	return c.g, nil
}

// MustCompile is Compile that panics on error, for fixtures.
func MustCompile(name, src string) *dataflow.Graph {
	g, err := Compile(name, src)
	if err != nil {
		panic(err)
	}
	return g
}

// ---- AST ----

type stmt interface{ isStmt() }

type declStmt struct {
	name string
	init expr.Expr // nil for bare declarations
}

type assignStmt struct {
	name string
	rhs  expr.Expr
}

type forStmt struct {
	init assignStmt
	cond expr.Expr
	step assignStmt
	body []assignStmt
}

type outputStmt struct{ name string }

// funcDecl is a user function: assignments over parameters and locals plus a
// final return expression. Inlined per call site.
type funcDecl struct {
	name   string
	params []string
	body   []stmt // declStmt and assignStmt only
	ret    expr.Expr
}

func (declStmt) isStmt()   {}
func (assignStmt) isStmt() {}
func (forStmt) isStmt()    {}
func (outputStmt) isStmt() {}
func (funcDecl) isStmt()   {}

// ---- code generation ----

type outPort struct {
	node dataflow.NodeID
	port int
}

type compiler struct {
	g          *dataflow.Graph
	env        map[string]outPort // current value of each variable
	decl       map[string]bool
	reads      map[string]bool
	writeOrder []string
	outputs    []string
	funcs      map[string]*funcDecl
	inlining   map[string]bool // recursion guard
	edgeN      int
	nodeN      int
}

func (c *compiler) freshEdge(hint string) string {
	c.edgeN++
	return fmt.Sprintf("%s%d", hint, c.edgeN)
}

func (c *compiler) freshNode(hint string) string {
	c.nodeN++
	return fmt.Sprintf("%s%d", hint, c.nodeN)
}

func (c *compiler) connect(from outPort, to dataflow.NodeID, port int, hint string) error {
	_, err := c.g.Connect(from.node, from.port, to, port, c.freshEdge(hint))
	return err
}

func (c *compiler) compile(stmts []stmt) error {
	c.decl = make(map[string]bool)
	c.reads = make(map[string]bool)
	c.funcs = make(map[string]*funcDecl)
	c.inlining = make(map[string]bool)
	for _, s := range stmts {
		if err := c.stmt(s); err != nil {
			return err
		}
	}
	// Implicit outputs: assigned but never read, unless explicit outputs
	// were declared.
	if len(c.outputs) == 0 {
		for _, name := range c.writeOrder {
			if !c.reads[name] {
				c.outputs = append(c.outputs, name)
			}
		}
	}
	seen := make(map[string]bool)
	for _, name := range c.outputs {
		if seen[name] {
			continue
		}
		seen[name] = true
		p, ok := c.env[name]
		if !ok {
			return fmt.Errorf("compiler: output variable %s has no value", name)
		}
		if _, err := c.g.Connect(p.node, p.port, dataflow.NoNode, 0, name); err != nil {
			return err
		}
	}
	return nil
}

func (c *compiler) stmt(s stmt) error {
	switch st := s.(type) {
	case declStmt:
		if c.decl[st.name] {
			return fmt.Errorf("compiler: %s declared twice", st.name)
		}
		c.decl[st.name] = true
		if st.init == nil {
			return nil
		}
		return c.assign(st.name, st.init)
	case assignStmt:
		if !c.decl[st.name] {
			return fmt.Errorf("compiler: assignment to undeclared variable %s", st.name)
		}
		return c.assign(st.name, st.rhs)
	case outputStmt:
		c.outputs = append(c.outputs, st.name)
		return nil
	case forStmt:
		return c.forLoop(st)
	case funcDecl:
		if _, dup := c.funcs[st.name]; dup {
			return fmt.Errorf("compiler: function %s declared twice", st.name)
		}
		fn := st
		c.funcs[st.name] = &fn
		return nil
	}
	return fmt.Errorf("compiler: unknown statement %T", s)
}

func (c *compiler) assign(name string, rhs expr.Expr) error {
	prepared, err := c.prepare(rhs)
	if err != nil {
		return err
	}
	p, err := c.build(prepared, c.env)
	if err != nil {
		return err
	}
	c.env[name] = p
	c.noteWrite(name)
	return nil
}

// prepare expands user function calls symbolically and constant-folds the
// result. Folding is what keeps literal subtrees out of the graph: a fully
// literal expression becomes a single literal, which the binary build path
// fuses into its consumer as an immediate — essential inside loop bodies,
// where a const vertex would fire at tag 0 only and never meet iteration
// operands.
func (c *compiler) prepare(e expr.Expr) (expr.Expr, error) {
	expanded, err := c.expandCalls(e)
	if err != nil {
		return nil, err
	}
	return expr.Fold(expanded), nil
}

// expandCalls inlines user function calls at the expression level: the
// function body's declarations and assignments reduce, by substitution, to a
// single expression over the (already expanded) argument expressions. Each
// call site gets its own copy — the static instantiation of the tag-based
// function calling the paper mentions [5].
func (c *compiler) expandCalls(e expr.Expr) (expr.Expr, error) {
	switch n := e.(type) {
	case expr.Lit, expr.Var:
		return e, nil
	case expr.Unary:
		x, err := c.expandCalls(n.X)
		if err != nil {
			return nil, err
		}
		return expr.Unary{Op: n.Op, X: x}, nil
	case expr.Binary:
		l, err := c.expandCalls(n.L)
		if err != nil {
			return nil, err
		}
		r, err := c.expandCalls(n.R)
		if err != nil {
			return nil, err
		}
		return expr.Binary{Op: n.Op, L: l, R: r}, nil
	case expr.Call:
		fn, ok := c.funcs[n.Name]
		if !ok {
			return nil, fmt.Errorf("compiler: call to undeclared function %s", n.Name)
		}
		if c.inlining[n.Name] {
			return nil, fmt.Errorf("compiler: function %s is recursive; recursion needs dynamic call tags", n.Name)
		}
		if len(n.Args) != len(fn.params) {
			return nil, fmt.Errorf("compiler: %s takes %d arguments, got %d", n.Name, len(fn.params), len(n.Args))
		}
		// Arguments belong to the caller's scope: expand them before the
		// recursion guard engages, so affine(affine(x)) is nesting, not
		// recursion.
		bindings := make(map[string]expr.Expr, len(fn.params))
		declared := make(map[string]bool, len(fn.params))
		for i, p := range fn.params {
			arg, err := c.expandCalls(n.Args[i])
			if err != nil {
				return nil, err
			}
			bindings[p] = arg
			declared[p] = true
		}
		c.inlining[n.Name] = true
		defer delete(c.inlining, n.Name)
		// checkScope validates a body expression BEFORE substitution: every
		// free name must be a bound parameter or already-assigned local.
		// (After substitution, caller names flow in via argument
		// expressions, which must not be mistaken for body names — nor may
		// an unassigned local capture a same-named caller variable.)
		checkScope := func(e expr.Expr) error {
			for _, v := range expr.FreeVars(e) {
				if !declared[v] {
					return fmt.Errorf("compiler: function %s reads %s, which is not a parameter or local", n.Name, v)
				}
				if _, bound := bindings[v]; !bound {
					return fmt.Errorf("compiler: function %s uses %s before assigning it", n.Name, v)
				}
			}
			return nil
		}
		for _, s := range fn.body {
			switch st := s.(type) {
			case declStmt:
				if declared[st.name] {
					return nil, fmt.Errorf("compiler: %s declared twice in function %s", st.name, n.Name)
				}
				if st.init != nil {
					rhs, err := c.expandCalls(st.init)
					if err != nil {
						return nil, err
					}
					if err := checkScope(rhs); err != nil {
						return nil, err
					}
					declared[st.name] = true
					bindings[st.name] = expr.Subst(rhs, bindings)
				} else {
					declared[st.name] = true
				}
			case assignStmt:
				if !declared[st.name] {
					return nil, fmt.Errorf("compiler: assignment to undeclared %s in function %s", st.name, n.Name)
				}
				rhs, err := c.expandCalls(st.rhs)
				if err != nil {
					return nil, err
				}
				if err := checkScope(rhs); err != nil {
					return nil, err
				}
				bindings[st.name] = expr.Subst(rhs, bindings)
			default:
				return nil, fmt.Errorf("compiler: function %s may only contain declarations and assignments", n.Name)
			}
		}
		ret, err := c.expandCalls(fn.ret)
		if err != nil {
			return nil, err
		}
		if err := checkScope(ret); err != nil {
			return nil, err
		}
		return expr.Subst(ret, bindings), nil
	}
	return nil, fmt.Errorf("compiler: unknown expression %T", e)
}

func (c *compiler) noteWrite(name string) {
	for _, w := range c.writeOrder {
		if w == name {
			return
		}
	}
	c.writeOrder = append(c.writeOrder, name)
}

// build compiles an expression under an environment, emitting const vertices
// for literals and operator vertices for the tree. Immediate operands fold
// into their consumer, matching how Fig. 2 renders i > 0 and i - 1 as
// single-input vertices.
func (c *compiler) build(e expr.Expr, env map[string]outPort) (outPort, error) {
	switch n := e.(type) {
	case expr.Lit:
		id := c.g.AddConst(c.freshNode("c"), n.Val)
		return outPort{id, 0}, nil
	case expr.Var:
		c.reads[n.Name] = true
		p, ok := env[n.Name]
		if !ok {
			return outPort{}, fmt.Errorf("compiler: variable %s read before assignment", n.Name)
		}
		return p, nil
	case expr.Unary:
		x, err := c.build(n.X, env)
		if err != nil {
			return outPort{}, err
		}
		id := c.g.AddUnary(c.freshNode("u"), n.Op)
		if err := c.connect(x, id, 0, "u"); err != nil {
			return outPort{}, err
		}
		return outPort{id, 0}, nil
	case expr.Binary:
		arith := isArith(n.Op)
		if !arith && !isCompare(n.Op) {
			return outPort{}, fmt.Errorf("compiler: operator %q is not supported in dataflow", n.Op)
		}
		// Immediate folding when one side is a literal.
		if lit, ok := n.R.(expr.Lit); ok {
			if _, alsoLit := n.L.(expr.Lit); !alsoLit {
				x, err := c.build(n.L, env)
				if err != nil {
					return outPort{}, err
				}
				var id dataflow.NodeID
				if arith {
					id = c.g.AddArithImm(c.freshNode("op"), n.Op, lit.Val)
				} else {
					id = c.g.AddCompareImm(c.freshNode("cmp"), n.Op, lit.Val)
				}
				if err := c.connect(x, id, 0, "e"); err != nil {
					return outPort{}, err
				}
				return outPort{id, 0}, nil
			}
		}
		if lit, ok := n.L.(expr.Lit); ok {
			if _, alsoLit := n.R.(expr.Lit); !alsoLit {
				x, err := c.build(n.R, env)
				if err != nil {
					return outPort{}, err
				}
				var id dataflow.NodeID
				if arith {
					id = c.g.AddArithImmLeft(c.freshNode("op"), n.Op, lit.Val)
				} else {
					id = c.g.AddCompareImmLeft(c.freshNode("cmp"), n.Op, lit.Val)
				}
				if err := c.connect(x, id, 0, "e"); err != nil {
					return outPort{}, err
				}
				return outPort{id, 0}, nil
			}
		}
		l, err := c.build(n.L, env)
		if err != nil {
			return outPort{}, err
		}
		r, err := c.build(n.R, env)
		if err != nil {
			return outPort{}, err
		}
		var id dataflow.NodeID
		if arith {
			id = c.g.AddArith(c.freshNode("op"), n.Op)
		} else {
			id = c.g.AddCompare(c.freshNode("cmp"), n.Op)
		}
		if err := c.connect(l, id, 0, "e"); err != nil {
			return outPort{}, err
		}
		if err := c.connect(r, id, 1, "e"); err != nil {
			return outPort{}, err
		}
		return outPort{id, 0}, nil
	case expr.Call:
		// User calls are expanded by prepare before building; anything left
		// is an unsupported builtin (min/max/abs have no dataflow vertex).
		return outPort{}, fmt.Errorf("compiler: call %s has no dataflow form", n)
	}
	return outPort{}, fmt.Errorf("compiler: expression %s is not supported", e)
}

// forLoop emits the Fig. 2 structure for one loop.
func (c *compiler) forLoop(st forStmt) error {
	// Run the init assignment in the enclosing environment.
	if !c.decl[st.init.name] {
		return fmt.Errorf("compiler: loop variable %s is not declared", st.init.name)
	}
	if err := c.assign(st.init.name, st.init.rhs); err != nil {
		return err
	}

	// Live variables: everything the condition, body or step reads or
	// writes. Each must have a value entering the loop.
	liveSet := make(map[string]bool)
	addVars := func(e expr.Expr) {
		for _, v := range expr.FreeVars(e) {
			liveSet[v] = true
		}
	}
	addVars(st.cond)
	addVars(st.step.rhs)
	liveSet[st.step.name] = true
	for _, a := range st.body {
		addVars(a.rhs)
		liveSet[a.name] = true
	}
	var live []string
	for _, name := range c.writeOrder {
		if liveSet[name] {
			live = append(live, name)
		}
	}
	for name := range liveSet {
		if _, ok := c.env[name]; !ok {
			return fmt.Errorf("compiler: loop uses %s before it has a value", name)
		}
		found := false
		for _, l := range live {
			if l == name {
				found = true
			}
		}
		if !found {
			live = append(live, name)
		}
	}

	// Entry: one inctag per live variable, fed by the current value; the
	// loop-back edge is attached after the body is compiled.
	inctags := make(map[string]dataflow.NodeID, len(live))
	incEnv := make(map[string]outPort, len(live))
	for _, v := range live {
		id := c.g.AddIncTag(c.freshNode("inc_" + v))
		if err := c.connect(c.env[v], id, 0, v+"_in"); err != nil {
			return err
		}
		inctags[v] = id
		incEnv[v] = outPort{id, 0}
	}

	// Condition over the inctag outputs, control fanned to one steer per
	// live variable.
	cond, err := c.prepare(st.cond)
	if err != nil {
		return err
	}
	if len(expr.FreeVars(cond)) == 0 {
		return fmt.Errorf("compiler: loop condition %s is constant", cond)
	}
	ctl, err := c.build(cond, incEnv)
	if err != nil {
		return err
	}
	trueEnv := make(map[string]outPort, len(live))
	for _, v := range live {
		steer := c.g.AddSteer(c.freshNode("st_" + v))
		if err := c.connect(incEnv[v], steer, 0, v+"_d"); err != nil {
			return err
		}
		if err := c.connect(ctl, steer, 1, v+"_c"); err != nil {
			return err
		}
		trueEnv[v] = outPort{steer, dataflow.PortTrue}
		// The loop's final value continues from the false port, with its
		// iteration tag reset to 0 so it can meet tag-0 operands in the
		// code after the loop.
		rst := c.g.AddSetTag(c.freshNode("rst_" + v))
		if err := c.connect(outPort{steer, dataflow.PortFalse}, rst, 0, v+"_x"); err != nil {
			return err
		}
		c.env[v] = outPort{rst, 0}
		c.noteWrite(v)
	}

	// Body and step execute on the true side; their final values loop back.
	bodyEnv := make(map[string]outPort, len(live))
	for v, p := range trueEnv {
		bodyEnv[v] = p
	}
	for _, a := range append(append([]assignStmt{}, st.body...), st.step) {
		if !c.decl[a.name] {
			return fmt.Errorf("compiler: assignment to undeclared variable %s in loop", a.name)
		}
		rhs, err := c.prepare(a.rhs)
		if err != nil {
			return err
		}
		if len(expr.FreeVars(rhs)) == 0 {
			// A constant assignment inside a loop would emit a const vertex,
			// which fires once at tag 0 and cannot supply every iteration.
			return fmt.Errorf("compiler: loop body assigns the constant %s to %s; express it outside the loop", rhs, a.name)
		}
		p, err := c.build(rhs, bodyEnv)
		if err != nil {
			return err
		}
		bodyEnv[a.name] = p
		c.noteWrite(a.name)
	}
	for _, v := range live {
		if err := c.connect(bodyEnv[v], inctags[v], 0, v+"_bk"); err != nil {
			return err
		}
	}
	return nil
}

func isArith(op string) bool {
	switch op {
	case "+", "-", "*", "/", "%":
		return true
	}
	return false
}

func isCompare(op string) bool {
	switch op {
	case "==", "!=", "<", "<=", ">", ">=":
		return true
	}
	return false
}
