package compiler

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/equiv"
	"repro/internal/gamma"
	"repro/internal/value"
)

func TestFunctionInlining(t *testing.T) {
	res := run(t, `
func sq(a) { return a * a; }
func hyp2(a, b) { int s; s = sq(a) + sq(b); return s; }
int x = 3;
int y = 4;
int h;
h = hyp2(x, y);
output h;
`)
	if h, ok := res.Output("h"); !ok || h != value.Int(25) {
		t.Errorf("h = %v, want 25", h)
	}
}

func TestFunctionWithLocalsAndShadowing(t *testing.T) {
	// The function's x is independent of the program's x.
	res := run(t, `
func twice(x) { int t = x + x; return t; }
int x = 10;
int r;
r = twice(x + 1) + x;
output r;
`)
	if r, ok := res.Output("r"); !ok || r != value.Int(32) {
		t.Errorf("r = %v, want 32", r)
	}
}

func TestFunctionPerCallInstantiation(t *testing.T) {
	// Each call site clones the subgraph: two calls mean two multipliers.
	g, err := Compile("f", `
func sq(a) { return a * a; }
int x = 3;
int p;
int q;
p = sq(x);
q = sq(x + 1);
output p;
output q;
`)
	if err != nil {
		t.Fatal(err)
	}
	muls := 0
	for _, n := range g.Nodes {
		if n.Kind == dataflow.KindArith && n.Op == "*" {
			muls++
		}
	}
	if muls != 2 {
		t.Errorf("multipliers = %d, want 2 (one per call site)", muls)
	}
	res, err := dataflow.Run(g, dataflow.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p, _ := res.Output("p"); p != value.Int(9) {
		t.Errorf("p = %v", p)
	}
	if q, _ := res.Output("q"); q != value.Int(16) {
		t.Errorf("q = %v", q)
	}
}

func TestFunctionInsideLoopBody(t *testing.T) {
	res := run(t, `
func step(acc, i) { return acc + i * i; }
int i;
int s = 0;
for (i = 4; i > 0; i--) s = step(s, i);
output s;
`)
	if s, ok := res.Output("s"); !ok || s != value.Int(30) {
		t.Errorf("s = %v, want 30 (16+9+4+1)", s)
	}
}

func TestFunctionGraphConvertsToGamma(t *testing.T) {
	g, err := Compile("f", `
func affine(a) { return a * 3 + 1; }
int x = 5;
int y;
y = affine(affine(x));
output y;
`)
	if err != nil {
		t.Fatal(err)
	}
	prog, init, err := core.ToGamma(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gamma.Run(prog, init, gamma.Options{MaxSteps: 10000}); err != nil {
		t.Fatal(err)
	}
	out := core.OutputsFromMultiset(init, []string{"y"})
	if len(out["y"]) != 1 || out["y"][0].Val != value.Int(49) {
		t.Errorf("gamma y = %v, want 49", out["y"])
	}
	rep, err := equiv.Check(g, equiv.Options{MaxSteps: 10000})
	if err != nil || !rep.Equivalent {
		t.Errorf("equivalence: %v %v", err, rep)
	}
}

func TestFunctionErrors(t *testing.T) {
	bad := map[string]string{
		"undeclared function": `int x; x = nope(1);`,
		"wrong arity":         `func f(a) { return a; } int x; x = f(1, 2);`,
		"recursive":           `func f(a) { return f(a); } int x; x = f(1);`,
		"mutually recursive":  `func f(a) { return f(a - 1); } int x; x = f(3);`,
		"duplicate function":  `func f(a) { return a; } func f(b) { return b; }`,
		"dup local":           `func f(a) { int a = 1; return a; } int x; x = f(1);`,
		"assign undeclared":   `func f(a) { b = 1; return a; } int x; x = f(1);`,
		"unbound in body":     `func f(a) { int t = q; return t; } int x; x = f(1);`,
		"missing return":      `func f(a) { a = 1; }`,
		"bad body":            `func f(a) { for; return a; }`,
		"missing paren":       `func f(a { return a; }`,
		"keyword param":       `func f(for) { return 1; }`,
		"missing semi":        `func f(a) { return a }`,
	}
	for name, src := range bad {
		if g, err := Compile("bad", src); err == nil {
			t.Errorf("%s: should error, got\n%s", name, g)
		}
	}
	// Builtin-looking calls are still rejected (no dataflow vertex).
	if _, err := Compile("bad", `int x; x = min(1, 2);`); err == nil {
		t.Error("builtin call should error")
	}
}

func TestFunctionDeclaredAfterUse(t *testing.T) {
	// Single pass: use-before-declaration is an error.
	if _, err := Compile("late", `int x; x = f(1); func f(a) { return a; }`); err == nil {
		t.Error("use before declaration should error")
	}
}
