package compiler

import (
	"math/rand"
	"strings"
	"testing"
)

// TestCompilerNeverPanics mutates valid sources and feeds token soup; every
// input must compile or error, never panic.
func TestCompilerNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	corpus := []string{
		Example1Source,
		Example2Source,
		`func f(a, b) { int t = a * b; return t + 1; } int x; x = f(2, 3); output x;`,
		`int i; int s = 0; for (i = 0; i < 5; i++) { s = s + i; } output s;`,
	}
	tokens := []string{"int", "for", "func", "return", "output", "{", "}", "(", ")",
		";", ",", "=", "==", "<", "+", "-", "--", "++", "x", "i", "0", "1"}
	compileQuietly := func(src string) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("compiler panicked on %q: %v", src, r)
			}
		}()
		_, _ = Compile("fuzz", src)
	}
	for i := 0; i < 300; i++ {
		src := corpus[rng.Intn(len(corpus))]
		switch rng.Intn(3) {
		case 0:
			if len(src) > 10 {
				a := rng.Intn(len(src) - 5)
				b := a + rng.Intn(len(src)-a)
				src = src[:a] + src[b:]
			}
		case 1:
			pos := rng.Intn(len(src))
			src = src[:pos] + " " + tokens[rng.Intn(len(tokens))] + " " + src[pos:]
		case 2:
			mid := rng.Intn(len(src))
			src = src[mid:] + src[:mid]
		}
		compileQuietly(src)
	}
	for i := 0; i < 200; i++ {
		var b strings.Builder
		for j := 0; j < rng.Intn(25); j++ {
			b.WriteString(tokens[rng.Intn(len(tokens))])
			b.WriteByte(' ')
		}
		compileQuietly(b.String())
	}
}
