package compiler

import (
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/gamma"
	"repro/internal/paper"
	"repro/internal/value"
)

// Example1Source is the paper's first von Neumann listing.
const Example1Source = `
int x = 1;
int y = 5;
int k = 3;
int j = 2;
int m;
m = (x + y) - (k * j);
`

// Example2Source is the paper's second listing (with the comparison the
// drawn graph actually uses, i > 0), made observable with an output.
const Example2Source = `
int y = 4;
int z = 3;
int x = 10;
int i;
for (i = z; i > 0; i--) x = x + y;
output x;
`

func run(t *testing.T, src string) *dataflow.Result {
	t.Helper()
	g, err := Compile("test", src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := dataflow.Run(g, dataflow.Options{MaxFirings: 100000})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestCompileExample1(t *testing.T) {
	res := run(t, Example1Source)
	if m, ok := res.Output("m"); !ok || m != value.Int(0) {
		t.Errorf("m = %v, want 0", m)
	}
	if len(res.Outputs) != 1 {
		t.Errorf("outputs = %v, want only m", res.Outputs)
	}
}

func TestCompileExample1MatchesFig1(t *testing.T) {
	// The compiled graph has the same operator structure as the hand-drawn
	// Fig. 1: 4 consts, one +, one *, one -.
	g, err := Compile("ex1", Example1Source)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[dataflow.NodeKind]int{}
	ops := map[string]int{}
	for _, n := range g.Nodes {
		counts[n.Kind]++
		if n.Kind == dataflow.KindArith {
			ops[n.Op]++
		}
	}
	if counts[dataflow.KindConst] != 4 || counts[dataflow.KindArith] != 3 {
		t.Errorf("node census = %v", counts)
	}
	if ops["+"] != 1 || ops["*"] != 1 || ops["-"] != 1 {
		t.Errorf("operator census = %v", ops)
	}
	// And it agrees with the fixture graph's output.
	res1, err := dataflow.Run(g, dataflow.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := dataflow.Run(paper.Fig1Graph(), dataflow.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m1, _ := res1.Output("m")
	m2, _ := res2.Output("m")
	if m1 != m2 {
		t.Errorf("compiled m = %v, fixture m = %v", m1, m2)
	}
}

func TestCompileExample2Loop(t *testing.T) {
	res := run(t, Example2Source)
	if x, ok := res.Output("x"); !ok || x != value.Int(22) {
		t.Errorf("x = %v, want 22", x)
	}
	// The loop structure uses steer and inctag vertices like Fig. 2.
	g, _ := Compile("ex2", Example2Source)
	counts := map[dataflow.NodeKind]int{}
	for _, n := range g.Nodes {
		counts[n.Kind]++
	}
	if counts[dataflow.KindSteer] == 0 || counts[dataflow.KindIncTag] == 0 {
		t.Errorf("loop should emit steers and inctags: %v", counts)
	}
	if counts[dataflow.KindCompare] != 1 {
		t.Errorf("one comparison expected: %v", counts)
	}
}

func TestCompiledLoopConvertsToGamma(t *testing.T) {
	// End-to-end: von Neumann source → dataflow graph (this package) →
	// Gamma program (Algorithm 1) → same result.
	g, err := Compile("loop", Example2Source)
	if err != nil {
		t.Fatal(err)
	}
	prog, init, err := core.ToGamma(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gamma.Run(prog, init, gamma.Options{MaxSteps: 100000}); err != nil {
		t.Fatal(err)
	}
	out := core.OutputsFromMultiset(init, []string{"x"})
	if len(out["x"]) != 1 || out["x"][0].Val != value.Int(22) {
		t.Errorf("gamma x = %v, want 22", out["x"])
	}
}

func TestLoopVariants(t *testing.T) {
	cases := []struct {
		src  string
		outs map[string]int64
	}{
		{ // increment loop
			src:  `int i; int s = 0; for (i = 0; i < 5; i++) s = s + i; output s;`,
			outs: map[string]int64{"s": 10},
		},
		{ // multiple body statements with braces
			src: `int i; int a = 0; int b = 1;
			      for (i = 3; i > 0; i--) { a = a + b; b = b * 2; }
			      output a; output b;`,
			outs: map[string]int64{"a": 7, "b": 8},
		},
		{ // loop never entered
			src:  `int i; int s = 42; for (i = 0; i > 0; i--) s = s + 1; output s;`,
			outs: map[string]int64{"s": 42},
		},
		{ // explicit step assignment
			src:  `int i; int s = 0; for (i = 10; i > 0; i = i - 3) s = s + i; output s;`,
			outs: map[string]int64{"s": 22}, // 10 + 7 + 4 + 1
		},
		{ // unary and modulo in straight-line code
			src:  `int a = 7; int b; b = -a % 3; output b;`,
			outs: map[string]int64{"b": -1},
		},
	}
	for _, c := range cases {
		res := run(t, c.src)
		for name, want := range c.outs {
			got, ok := res.Output(name)
			if !ok || got != value.Int(want) {
				t.Errorf("%q: %s = %v, want %d", c.src, name, got, want)
			}
		}
	}
}

func TestCompiledLoopParallelAgrees(t *testing.T) {
	src := `int i; int s = 0; for (i = 20; i > 0; i--) s = s + i * i; output s;`
	g1, err := Compile("p", src)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := dataflow.Run(g1, dataflow.Options{})
	if err != nil {
		t.Fatal(err)
	}
	g2 := MustCompile("p", src)
	par, err := dataflow.Run(g2, dataflow.Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq.Outputs, par.Outputs) {
		t.Errorf("sequential %v vs parallel %v", seq.Outputs, par.Outputs)
	}
}

func TestCompileErrors(t *testing.T) {
	bad := []string{
		``,                                   // produces an empty graph (validate fails)
		`x = 1;`,                             // undeclared
		`int x = 1; int x = 2;`,              // redeclared
		`int x = y;`,                         // read before assignment
		`int x;`,                             // declared but graph empty
		`int x = 1`,                          // missing semicolon
		`int for = 1;`,                       // keyword identifier
		`int x = 1; for (x = 1; x > 0) x--;`, // malformed for
		`int x = 1; for (x = 1; x > 0; x--) int y = 1;;`, // decl in body
		`int x = 1; output q;`,                           // unknown output
		`int x = 1; x -;`,                                // broken decrement
		`int i; for (i = 0; i < 3; i++) q = 1;`,          // undeclared in body
		`int a = 1; int x = a and true;`,                 // unsupported operator (unfoldable)
		`int x = min(1, 2);`,                             // calls unsupported
		`int x = 1; output x`,                            // missing semi after output
	}
	for _, src := range bad {
		if g, err := Compile("bad", src); err == nil {
			t.Errorf("Compile(%q) should error, got graph:\n%s", src, g)
		}
	}
}

func TestMustCompilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustCompile should panic")
		}
	}()
	MustCompile("bad", "x = 1;")
}

func TestImplicitAndExplicitOutputs(t *testing.T) {
	// Implicit: assigned-but-never-read variables.
	res := run(t, `int a = 1; int b; int c; b = a + 1; c = a * 2;`)
	if len(res.Outputs) != 2 {
		t.Fatalf("outputs = %v, want b and c", res.Outputs)
	}
	if b, _ := res.Output("b"); b != value.Int(2) {
		t.Errorf("b = %v", b)
	}
	if c, _ := res.Output("c"); c != value.Int(2) {
		t.Errorf("c = %v", c)
	}
	// Explicit outputs override the implicit rule and deduplicate.
	res = run(t, `int a = 1; int b; b = a + 1; output a; output a;`)
	if len(res.Outputs) != 1 {
		t.Fatalf("outputs = %v, want just a", res.Outputs)
	}
	if a, _ := res.Output("a"); a != value.Int(1) {
		t.Errorf("a = %v", a)
	}
}

// Property: for random small (a, b, n) the compiled accumulator loop matches
// the closed form through the whole pipeline (compile → run).
func TestQuickCompiledLoop(t *testing.T) {
	f := func(a, b int8, n uint8) bool {
		iters := int64(n % 10)
		src := `int i; int acc = ` + value.Int(int64(a)).String() + `;
		        int step = ` + value.Int(int64(b)).String() + `;
		        for (i = ` + value.Int(iters).String() + `; i > 0; i--) acc = acc + step;
		        output acc;`
		g, err := Compile("q", src)
		if err != nil {
			return false
		}
		res, err := dataflow.Run(g, dataflow.Options{})
		if err != nil {
			return false
		}
		out, ok := res.Output("acc")
		return ok && out == value.Int(int64(a)+int64(b)*iters)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
