package compiler

import (
	"fmt"

	"repro/internal/expr"
	"repro/internal/value"
)

// parse tokenizes and parses the mini language into statements.
func parse(src string) ([]stmt, error) {
	ep, err := expr.NewParser(expr.NewLexer(src))
	if err != nil {
		return nil, err
	}
	p := &parser{ep: ep}
	var stmts []stmt
	for p.ep.Tok().Kind != expr.TokEOF {
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
	return stmts, nil
}

type parser struct {
	ep *expr.Parser
}

func (p *parser) errf(format string, args ...any) error {
	t := p.ep.Tok()
	return &expr.SyntaxError{Line: t.Line, Col: t.Col, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) at(kind expr.TokenKind, text string) bool {
	t := p.ep.Tok()
	return t.Kind == kind && (text == "" || t.Text == text)
}

func (p *parser) expect(kind expr.TokenKind, text string) error {
	if !p.at(kind, text) {
		if text != "" {
			return p.errf("expected %q, found %s", text, p.ep.Tok())
		}
		return p.errf("expected %s, found %s", kind, p.ep.Tok())
	}
	return p.ep.Advance()
}

func (p *parser) ident() (string, error) {
	t := p.ep.Tok()
	if t.Kind != expr.TokIdent {
		return "", p.errf("expected identifier, found %s", t)
	}
	switch t.Text {
	case "int", "for", "output", "func", "return":
		return "", p.errf("keyword %q cannot be an identifier", t.Text)
	}
	return t.Text, p.ep.Advance()
}

func (p *parser) stmt() (stmt, error) {
	switch {
	case p.at(expr.TokIdent, "int"):
		if err := p.ep.Advance(); err != nil {
			return nil, err
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		d := declStmt{name: name}
		if p.at(expr.TokOp, "=") {
			if err := p.ep.Advance(); err != nil {
				return nil, err
			}
			e, err := p.ep.ParseExpr()
			if err != nil {
				return nil, err
			}
			d.init = e
		}
		return d, p.expect(expr.TokSemi, "")
	case p.at(expr.TokIdent, "for") || p.at(expr.TokIdent, "For"):
		return p.forStmt()
	case p.at(expr.TokIdent, "output"):
		if err := p.ep.Advance(); err != nil {
			return nil, err
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return outputStmt{name: name}, p.expect(expr.TokSemi, "")
	case p.at(expr.TokIdent, "func"):
		return p.funcDecl()
	default:
		a, err := p.assign()
		if err != nil {
			return nil, err
		}
		return a, p.expect(expr.TokSemi, "")
	}
}

// assign parses "name = expr", "name++" or "name--" (without the semicolon).
func (p *parser) assign() (assignStmt, error) {
	name, err := p.ident()
	if err != nil {
		return assignStmt{}, err
	}
	// Increment/decrement sugar: the lexer yields two operator tokens.
	if p.at(expr.TokOp, "-") || p.at(expr.TokOp, "+") {
		op := p.ep.Tok().Text
		if err := p.ep.Advance(); err != nil {
			return assignStmt{}, err
		}
		if !p.at(expr.TokOp, op) {
			return assignStmt{}, p.errf("expected %q%q or an assignment", op, op)
		}
		if err := p.ep.Advance(); err != nil {
			return assignStmt{}, err
		}
		return assignStmt{name: name, rhs: expr.Binary{
			Op: op, L: expr.Var{Name: name}, R: expr.Lit{Val: value.Int(1)},
		}}, nil
	}
	if err := p.expect(expr.TokOp, "="); err != nil {
		return assignStmt{}, err
	}
	e, err := p.ep.ParseExpr()
	if err != nil {
		return assignStmt{}, err
	}
	return assignStmt{name: name, rhs: e}, nil
}

// funcDecl parses "func name(p1, p2) { fstmts; return expr; }".
func (p *parser) funcDecl() (stmt, error) {
	if err := p.ep.Advance(); err != nil { // 'func'
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expect(expr.TokLParen, ""); err != nil {
		return nil, err
	}
	f := funcDecl{name: name}
	if !p.at(expr.TokRParen, "") {
		for {
			param, err := p.ident()
			if err != nil {
				return nil, err
			}
			f.params = append(f.params, param)
			if !p.at(expr.TokComma, "") {
				break
			}
			if err := p.ep.Advance(); err != nil {
				return nil, err
			}
		}
	}
	if err := p.expect(expr.TokRParen, ""); err != nil {
		return nil, err
	}
	if err := p.expect(expr.TokLBrace, ""); err != nil {
		return nil, err
	}
	for !p.at(expr.TokIdent, "return") {
		switch {
		case p.at(expr.TokIdent, "int"):
			if err := p.ep.Advance(); err != nil {
				return nil, err
			}
			dn, err := p.ident()
			if err != nil {
				return nil, err
			}
			d := declStmt{name: dn}
			if p.at(expr.TokOp, "=") {
				if err := p.ep.Advance(); err != nil {
					return nil, err
				}
				e, err := p.ep.ParseExpr()
				if err != nil {
					return nil, err
				}
				d.init = e
			}
			if err := p.expect(expr.TokSemi, ""); err != nil {
				return nil, err
			}
			f.body = append(f.body, d)
		case p.at(expr.TokIdent, ""):
			a, err := p.assign()
			if err != nil {
				return nil, err
			}
			if err := p.expect(expr.TokSemi, ""); err != nil {
				return nil, err
			}
			f.body = append(f.body, a)
		default:
			return nil, p.errf("expected statement or 'return' in function %s, found %s", name, p.ep.Tok())
		}
	}
	if err := p.ep.Advance(); err != nil { // 'return'
		return nil, err
	}
	ret, err := p.ep.ParseExpr()
	if err != nil {
		return nil, err
	}
	f.ret = ret
	if err := p.expect(expr.TokSemi, ""); err != nil {
		return nil, err
	}
	return f, p.expect(expr.TokRBrace, "")
}

func (p *parser) forStmt() (stmt, error) {
	if err := p.ep.Advance(); err != nil { // 'for'
		return nil, err
	}
	if err := p.expect(expr.TokLParen, ""); err != nil {
		return nil, err
	}
	init, err := p.assign()
	if err != nil {
		return nil, err
	}
	if err := p.expect(expr.TokSemi, ""); err != nil {
		return nil, err
	}
	cond, err := p.ep.ParseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(expr.TokSemi, ""); err != nil {
		return nil, err
	}
	step, err := p.assign()
	if err != nil {
		return nil, err
	}
	if err := p.expect(expr.TokRParen, ""); err != nil {
		return nil, err
	}
	f := forStmt{init: init, cond: cond, step: step}
	if p.at(expr.TokLBrace, "") {
		if err := p.ep.Advance(); err != nil {
			return nil, err
		}
		for !p.at(expr.TokRBrace, "") {
			a, err := p.assign()
			if err != nil {
				return nil, err
			}
			if err := p.expect(expr.TokSemi, ""); err != nil {
				return nil, err
			}
			f.body = append(f.body, a)
		}
		return f, p.ep.Advance()
	}
	a, err := p.assign()
	if err != nil {
		return nil, err
	}
	f.body = append(f.body, a)
	return f, p.expect(expr.TokSemi, "")
}
