package gamma

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/expr"
	"repro/internal/multiset"
	"repro/internal/value"
)

// minReaction builds Eq. 2 of the paper:
//
//	R = replace(x, y) by x where x < y
func minReaction() *Reaction {
	return &Reaction{
		Name:     "R",
		Patterns: []Pattern{{FVar("x")}, {FVar("y")}},
		Branches: []Branch{{
			Cond:     expr.MustParse("x < y"),
			Products: []Template{{expr.MustParse("x")}},
		}},
	}
}

func intsMultiset(vals ...int64) *multiset.Multiset {
	m := multiset.New()
	for _, v := range vals {
		m.Add(multiset.New1(value.Int(v)))
	}
	return m
}

func TestMinReactionSequential(t *testing.T) {
	m := intsMultiset(9, 4, 7, 1, 8, 3)
	p := MustProgram("min", minReaction())
	stats, err := Run(p, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 1 || !m.Contains(multiset.New1(value.Int(1))) {
		t.Fatalf("result = %s, want {1}", m)
	}
	if stats.Steps != 5 || stats.Fired["R"] != 5 {
		t.Errorf("stats = %+v, want 5 firings", stats)
	}
}

func TestMinReactionParallel(t *testing.T) {
	for _, workers := range []int{2, 4, 8} {
		m := intsMultiset()
		for i := int64(1); i <= 100; i++ {
			m.Add(multiset.New1(value.Int(i)))
		}
		p := MustProgram("min", minReaction())
		stats, err := Run(p, m, Options{Workers: workers, Seed: int64(workers)})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if m.Len() != 1 || !m.Contains(multiset.New1(value.Int(1))) {
			t.Fatalf("workers=%d: result = %s, want {1}", workers, m)
		}
		if stats.Steps != 99 {
			t.Errorf("workers=%d: steps = %d, want 99", workers, stats.Steps)
		}
	}
}

// example1Program builds R1–R3 from §III-A1:
//
//	R1 = replace [id1,'A1'],[id2,'B1'] by [id1+id2,'B2']
//	R2 = replace [id1,'C1'],[id2,'D1'] by [id1*id2,'C2']
//	R3 = replace [id1,'B2'],[id2,'C2'] by [id1-id2,'m']
func example1Program() *Program {
	bin := func(name, la, lb, op, out string) *Reaction {
		return &Reaction{
			Name:     name,
			Patterns: []Pattern{{FVar("id1"), FLabel(la)}, {FVar("id2"), FLabel(lb)}},
			Branches: []Branch{{
				Products: []Template{{expr.MustParse("id1 " + op + " id2"), expr.Lit{Val: value.Str(out)}}},
			}},
		}
	}
	return MustProgram("example1",
		bin("R1", "A1", "B1", "+", "B2"),
		bin("R2", "C1", "D1", "*", "C2"),
		bin("R3", "B2", "C2", "-", "m"),
	)
}

// example1Input is the paper's initial multiset {[1,A1],[5,B1],[3,C1],[2,D1]}.
func example1Input() *multiset.Multiset {
	return multiset.New(
		multiset.Pair(value.Int(1), "A1"),
		multiset.Pair(value.Int(5), "B1"),
		multiset.Pair(value.Int(3), "C1"),
		multiset.Pair(value.Int(2), "D1"),
	)
}

func TestExample1Gamma(t *testing.T) {
	m := example1Input()
	stats, err := Run(example1Program(), m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := multiset.Pair(value.Int(0), "m") // (1+5)-(3*2) = 0
	if m.Len() != 1 || !m.Contains(want) {
		t.Fatalf("result = %s, want {[0, 'm']}", m)
	}
	if stats.Steps != 3 {
		t.Errorf("steps = %d, want 3", stats.Steps)
	}
}

func TestExample1GammaParallelMatchesSequential(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		m := example1Input()
		if _, err := Run(example1Program(), m, Options{Workers: 4, Seed: seed}); err != nil {
			t.Fatal(err)
		}
		if !m.Contains(multiset.Pair(value.Int(0), "m")) || m.Len() != 1 {
			t.Fatalf("seed %d: result = %s", seed, m)
		}
	}
}

// steerReaction reproduces R16: consume data+control, keep data on true,
// discard both on false ("by 0 else").
func steerReaction() *Reaction {
	return &Reaction{
		Name: "R16",
		Patterns: []Pattern{
			{FVar("id1"), FLabel("B13"), FVar("v")},
			{FVar("id2"), FLabel("B15"), FVar("v")},
		},
		Branches: []Branch{
			{Cond: expr.MustParse("id2 == 1"),
				Products: []Template{{expr.MustParse("id1"), expr.Lit{Val: value.Str("B17")}, expr.MustParse("v")}}},
			{Products: nil}, // by 0 else
		},
	}
}

func TestSteerTrueBranch(t *testing.T) {
	m := multiset.New(multiset.IntElem(42, "B13", 3), multiset.IntElem(1, "B15", 3))
	if _, err := Run(MustProgram("steer", steerReaction()), m, Options{}); err != nil {
		t.Fatal(err)
	}
	if m.Len() != 1 || !m.Contains(multiset.IntElem(42, "B17", 3)) {
		t.Fatalf("result = %s, want {[42,'B17',3]}", m)
	}
}

func TestSteerFalseBranchDiscards(t *testing.T) {
	m := multiset.New(multiset.IntElem(42, "B13", 3), multiset.IntElem(0, "B15", 3))
	if _, err := Run(MustProgram("steer", steerReaction()), m, Options{}); err != nil {
		t.Fatal(err)
	}
	if m.Len() != 0 {
		t.Fatalf("result = %s, want {}", m)
	}
}

func TestSteerTagMismatchDoesNotFire(t *testing.T) {
	// Same labels but different iteration tags: dynamic dataflow forbids the
	// match, and the shared tag variable v enforces it.
	m := multiset.New(multiset.IntElem(42, "B13", 3), multiset.IntElem(1, "B15", 4))
	stats, err := Run(MustProgram("steer", steerReaction()), m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Steps != 0 || m.Len() != 2 {
		t.Fatalf("steps=%d result=%s, want no firing", stats.Steps, m)
	}
}

// inctagReaction reproduces R11: one input, condition on the label variable,
// tag incremented.
func inctagReaction() *Reaction {
	return &Reaction{
		Name:     "R11",
		Patterns: []Pattern{{FVar("id1"), FVar("x"), FVar("v")}},
		Branches: []Branch{{
			Cond:     expr.MustParse("(x == 'A1') or (x == 'A11')"),
			Products: []Template{{expr.MustParse("id1"), expr.Lit{Val: value.Str("A12")}, expr.MustParse("v + 1")}},
		}},
	}
}

func TestInctagIncrementsTag(t *testing.T) {
	m := multiset.New(multiset.IntElem(7, "A1", 0))
	if _, err := Run(MustProgram("inctag", inctagReaction()), m, Options{}); err != nil {
		t.Fatal(err)
	}
	if m.Len() != 1 || !m.Contains(multiset.IntElem(7, "A12", 1)) {
		t.Fatalf("result = %s, want {[7,'A12',1]}", m)
	}
}

func TestInctagGuardPreventsFiring(t *testing.T) {
	m := multiset.New(multiset.IntElem(7, "Z9", 0))
	stats, err := Run(MustProgram("inctag", inctagReaction()), m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Steps != 0 || m.Len() != 1 {
		t.Fatalf("guarded reaction fired on wrong label: %s", m)
	}
}

func TestValidate(t *testing.T) {
	good := minReaction()
	if err := good.Validate(); err != nil {
		t.Errorf("valid reaction rejected: %v", err)
	}
	bad := []*Reaction{
		{Name: "noPatterns", Branches: []Branch{{}}},
		{Name: "noBranches", Patterns: []Pattern{{FVar("x")}}},
		{Name: "emptyPattern", Patterns: []Pattern{{}}, Branches: []Branch{{}}},
		{Name: "badField", Patterns: []Pattern{{Field{}}}, Branches: []Branch{{}}},
		{Name: "unboundCond", Patterns: []Pattern{{FVar("x")}},
			Branches: []Branch{{Cond: expr.MustParse("y > 0")}}},
		{Name: "unboundProduct", Patterns: []Pattern{{FVar("x")}},
			Branches: []Branch{{Products: []Template{{expr.MustParse("q")}}}}},
		{Name: "elseNotLast", Patterns: []Pattern{{FVar("x")}},
			Branches: []Branch{{Products: nil}, {Cond: expr.MustParse("x > 0")}}},
	}
	for _, r := range bad {
		if err := r.Validate(); err == nil {
			t.Errorf("reaction %s should fail validation", r.Name)
		}
	}
	if _, err := NewProgram("p", bad[0]); err == nil {
		t.Error("NewProgram should validate")
	}
}

func TestMustProgramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustProgram should panic on invalid reaction")
		}
	}()
	MustProgram("p", &Reaction{Name: "bad"})
}

func TestProgramLookupAndString(t *testing.T) {
	p := example1Program()
	if p.Reaction("R2") == nil || p.Reaction("R9") != nil {
		t.Error("Reaction lookup wrong")
	}
	s := p.String()
	for _, want := range []string{"R1 = replace [id1, 'A1'], [id2, 'B1']", "by [id1 + id2, 'B2']"} {
		if !strings.Contains(s, want) {
			t.Errorf("program rendering missing %q:\n%s", want, s)
		}
	}
	st := steerReaction().String()
	for _, want := range []string{"by 0", "else", "if id2 == 1"} {
		if !strings.Contains(st, want) {
			t.Errorf("steer rendering missing %q:\n%s", want, st)
		}
	}
}

func TestRunErrorPropagation(t *testing.T) {
	// Division by zero inside an action.
	r := &Reaction{
		Name:     "div",
		Patterns: []Pattern{{FVar("x")}},
		Branches: []Branch{{Products: []Template{{expr.MustParse("x / 0")}}}},
	}
	m := intsMultiset(1)
	if _, err := Run(MustProgram("p", r), m, Options{}); err == nil {
		t.Error("sequential run should surface action error")
	}
	m2 := intsMultiset(1, 2, 3, 4)
	if _, err := Run(MustProgram("p", r), m2, Options{Workers: 4}); err == nil {
		t.Error("parallel run should surface action error")
	}
	// Type error inside a condition.
	rc := &Reaction{
		Name:     "cond",
		Patterns: []Pattern{{FVar("x")}},
		Branches: []Branch{{Cond: expr.MustParse("x > 'zz' and x > 0"), Products: nil}},
	}
	m3 := intsMultiset(5)
	if _, err := Run(MustProgram("p", rc), m3, Options{}); err == nil {
		t.Error("condition type error should surface")
	}
}

func TestMaxSteps(t *testing.T) {
	// A diverging reaction: x -> x+1 forever.
	r := &Reaction{
		Name:     "grow",
		Patterns: []Pattern{{FVar("x")}},
		Branches: []Branch{{Products: []Template{{expr.MustParse("x + 1")}}}},
	}
	m := intsMultiset(0)
	_, err := Run(MustProgram("p", r), m, Options{MaxSteps: 50})
	if !errors.Is(err, ErrMaxSteps) {
		t.Errorf("sequential: err = %v, want ErrMaxSteps", err)
	}
	m2 := intsMultiset(0, 0, 0, 0)
	_, err = Run(MustProgram("p", r), m2, Options{Workers: 3, MaxSteps: 50})
	if !errors.Is(err, ErrMaxSteps) {
		t.Errorf("parallel: err = %v, want ErrMaxSteps", err)
	}
}

func TestMaxStepsNotHitWhenTerminates(t *testing.T) {
	m := intsMultiset(3, 1, 2)
	if _, err := Run(MustProgram("min", minReaction()), m, Options{MaxSteps: 2}); err != nil {
		// Exactly 2 steps needed; reaching MaxSteps while stable is fine.
		t.Errorf("run errored: %v", err)
	}
}

func TestEmptyProgramAndEmptyMultiset(t *testing.T) {
	m := intsMultiset(1, 2)
	stats, err := Run(&Program{Name: "empty"}, m, Options{})
	if err != nil || stats.Steps != 0 || m.Len() != 2 {
		t.Errorf("empty program: %v %+v", err, stats)
	}
	m2 := multiset.New()
	stats2, err := Run(example1Program(), m2, Options{})
	if err != nil || stats2.Steps != 0 {
		t.Errorf("empty multiset: %v %+v", err, stats2)
	}
	stats3, err := Run(example1Program(), multiset.New(), Options{Workers: 4})
	if err != nil || stats3.Steps != 0 {
		t.Errorf("parallel empty multiset: %v %+v", err, stats3)
	}
}

func TestEnabled(t *testing.T) {
	p := example1Program()
	m := example1Input()
	on, err := Enabled(p, m)
	if err != nil || !on {
		t.Errorf("Enabled = %v, %v; want true", on, err)
	}
	if _, err := Run(p, m, Options{}); err != nil {
		t.Fatal(err)
	}
	on, err = Enabled(p, m)
	if err != nil || on {
		t.Errorf("Enabled after fixpoint = %v, %v; want false", on, err)
	}
}

func TestMultiplicityMatching(t *testing.T) {
	// x < y with two equal elements must not fire; with duplicates of
	// different values it consumes correctly.
	m := intsMultiset(5, 5)
	stats, err := Run(MustProgram("min", minReaction()), m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Steps != 0 || m.Len() != 2 {
		t.Errorf("equal elements should not react: %s", m)
	}
	// Duplicate minimum survives as duplicate.
	m2 := intsMultiset(1, 1, 9)
	if _, err := Run(MustProgram("min", minReaction()), m2, Options{}); err != nil {
		t.Fatal(err)
	}
	if m2.Len() != 2 || m2.Count(multiset.New1(value.Int(1))) != 2 {
		t.Errorf("result = %s, want {1, 1}", m2)
	}
}

func TestPairConsumingReaction(t *testing.T) {
	// Sum all elements pairwise into one: replace x,y by x+y.
	r := &Reaction{
		Name:     "sum",
		Patterns: []Pattern{{FVar("x")}, {FVar("y")}},
		Branches: []Branch{{Products: []Template{{expr.MustParse("x + y")}}}},
	}
	m := intsMultiset(1, 2, 3, 4, 5)
	if _, err := Run(MustProgram("p", r), m, Options{}); err != nil {
		t.Fatal(err)
	}
	if m.Len() != 1 || !m.Contains(multiset.New1(value.Int(15))) {
		t.Fatalf("result = %s, want {15}", m)
	}
	// Parallel agreement.
	m2 := intsMultiset()
	for i := int64(1); i <= 200; i++ {
		m2.Add(multiset.New1(value.Int(i)))
	}
	if _, err := Run(MustProgram("p", r), m2, Options{Workers: 8, Seed: 7}); err != nil {
		t.Fatal(err)
	}
	if m2.Len() != 1 || !m2.Contains(multiset.New1(value.Int(20100))) {
		t.Fatalf("parallel sum result = %s, want {20100}", m2)
	}
}

func TestFindMatchIndexedPath(t *testing.T) {
	// Bound-tag narrowing: second pattern's tag var is pinned by the first.
	m := multiset.New()
	for tag := int64(0); tag < 50; tag++ {
		m.Add(multiset.IntElem(tag, "L", tag))
		m.Add(multiset.IntElem(tag*10, "R", tag))
	}
	r := &Reaction{
		Name:     "join",
		Patterns: []Pattern{{FVar("a"), FLabel("L"), FVar("v")}, {FVar("b"), FLabel("R"), FVar("v")}},
		Branches: []Branch{{Products: []Template{{expr.MustParse("a + b"), expr.Lit{Val: value.Str("O")}, expr.MustParse("v")}}}},
	}
	match, err := FindMatch(r, m, nil)
	if err != nil || match == nil {
		t.Fatalf("FindMatch: %v, %v", match, err)
	}
	ta, _ := match.Chosen[0].Tag()
	tb, _ := match.Chosen[1].Tag()
	if ta != tb {
		t.Errorf("tags differ: %d vs %d", ta, tb)
	}
	// Literal tag in pattern.
	r2 := &Reaction{
		Name:     "pin",
		Patterns: []Pattern{{FVar("a"), FLabel("L"), FLit(value.Int(7))}},
		Branches: []Branch{{Products: nil}},
	}
	match2, err := FindMatch(r2, m, nil)
	if err != nil || match2 == nil {
		t.Fatalf("FindMatch literal tag: %v, %v", match2, err)
	}
	if tg, _ := match2.Chosen[0].Tag(); tg != 7 {
		t.Errorf("chose tag %d, want 7", tg)
	}
}

func TestFindMatchRandomizedStillValid(t *testing.T) {
	m := intsMultiset(3, 1, 4, 1, 5)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 20; i++ {
		match, err := FindMatch(minReaction(), m, rng)
		if err != nil {
			t.Fatal(err)
		}
		if match == nil {
			t.Fatal("expected a match")
		}
		x := match.Env["x"].AsInt()
		y := match.Env["y"].AsInt()
		if x >= y {
			t.Fatalf("invalid match x=%d y=%d", x, y)
		}
	}
}

func TestPlanSequentialStages(t *testing.T) {
	// Stage 1: double every element (guarded to run once per element via
	// label change); Stage 2: sum pairs.
	double := &Reaction{
		Name:     "double",
		Patterns: []Pattern{{FVar("x"), FLabel("in")}},
		Branches: []Branch{{Products: []Template{{expr.MustParse("x * 2"), expr.Lit{Val: value.Str("mid")}}}}},
	}
	sum := &Reaction{
		Name:     "sum",
		Patterns: []Pattern{{FVar("x"), FLabel("mid")}, {FVar("y"), FLabel("mid")}},
		Branches: []Branch{{Products: []Template{{expr.MustParse("x + y"), expr.Lit{Val: value.Str("mid")}}}}},
	}
	m := multiset.New(
		multiset.Pair(value.Int(1), "in"),
		multiset.Pair(value.Int(2), "in"),
		multiset.Pair(value.Int(3), "in"),
	)
	plan := Sequence(MustProgram("s1", double), MustProgram("s2", sum))
	stats, err := plan.Run(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 1 || !m.Contains(multiset.Pair(value.Int(12), "mid")) {
		t.Fatalf("plan result = %s, want {[12,'mid']}", m)
	}
	if stats.Steps != 5 {
		t.Errorf("steps = %d, want 5", stats.Steps)
	}
	// A failing stage surfaces with stage name.
	badStage := MustProgram("boom", &Reaction{
		Name:     "div",
		Patterns: []Pattern{{FVar("x"), FLabel("mid")}},
		Branches: []Branch{{Products: []Template{{expr.MustParse("x / 0"), expr.MustParse("'z'")}}}},
	})
	_, err = Sequence(badStage).Run(m, Options{})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("plan error = %v, want stage name", err)
	}
}

func TestParallelLargeStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	// Max-finding over 500 elements with 8 workers, repeated; checks both
	// termination detection and commit atomicity under contention.
	maxR := &Reaction{
		Name:     "max",
		Patterns: []Pattern{{FVar("x")}, {FVar("y")}},
		Branches: []Branch{{Cond: expr.MustParse("x >= y"), Products: []Template{{expr.MustParse("x")}}}},
	}
	for trial := 0; trial < 3; trial++ {
		m := multiset.New()
		for i := int64(0); i < 500; i++ {
			m.Add(multiset.New1(value.Int(i % 97)))
		}
		stats, err := Run(MustProgram("max", maxR), m, Options{Workers: 8, Seed: int64(trial + 1)})
		if err != nil {
			t.Fatal(err)
		}
		if m.Len() != 1 || !m.Contains(multiset.New1(value.Int(96))) {
			t.Fatalf("trial %d: result = %s, want {96}", trial, m)
		}
		if stats.Steps != 499 {
			t.Errorf("trial %d: steps = %d", trial, stats.Steps)
		}
	}
}

func TestStatsConflictsCounted(t *testing.T) {
	// Under heavy contention some optimistic commits should fail; we only
	// assert the counter is consistent (>= 0 and stats well-formed), since
	// conflicts are timing-dependent.
	m := intsMultiset()
	for i := int64(0); i < 300; i++ {
		m.Add(multiset.New1(value.Int(i)))
	}
	stats, err := Run(MustProgram("min", minReaction()), m, Options{Workers: 8, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Conflicts < 0 || stats.Workers != 8 {
		t.Errorf("stats = %+v", stats)
	}
	total := int64(0)
	for _, n := range stats.Fired {
		total += n
	}
	if total != stats.Steps {
		t.Errorf("fired sum %d != steps %d", total, stats.Steps)
	}
}

func TestSeededSequentialIsRandomizedButCorrect(t *testing.T) {
	m := intsMultiset(9, 4, 7, 1, 8, 3)
	if _, err := Run(MustProgram("min", minReaction()), m, Options{Seed: 123}); err != nil {
		t.Fatal(err)
	}
	if m.Len() != 1 || !m.Contains(multiset.New1(value.Int(1))) {
		t.Fatalf("result = %s", m)
	}
}

func TestFieldHelpers(t *testing.T) {
	if FVar("x").String() != "x" || FLit(value.Int(3)).String() != "3" || FLabel("A1").String() != "'A1'" {
		t.Error("field rendering wrong")
	}
	p := Pattern{FVar("id1"), FLabel("A1"), FVar("v")}
	if p.String() != "[id1, 'A1', v]" {
		t.Errorf("pattern rendering = %q", p.String())
	}
	tpl := Template{expr.MustParse("id1 + id2"), expr.MustParse("'B2'")}
	if tpl.String() != "[id1 + id2, 'B2']" {
		t.Errorf("template rendering = %q", tpl.String())
	}
}

func TestArityAndProduceErrors(t *testing.T) {
	r := minReaction()
	if r.Arity() != 2 {
		t.Errorf("arity = %d", r.Arity())
	}
	bad := &Reaction{
		Name:     "bad",
		Patterns: []Pattern{{FVar("x")}},
		Branches: []Branch{{Products: []Template{{expr.MustParse("x + 'q'")}}}},
	}
	env := expr.MapEnv{"x": value.Int(1)}
	if _, err := bad.produce(0, env); err == nil {
		t.Error("produce should surface eval error")
	}
}

func TestManyReactionsManyLabels(t *testing.T) {
	// A chain A0→A1→…→A20 driven by 20 single-input reactions; exercises
	// round-robin fairness and the label index.
	var reactions []*Reaction
	for i := 0; i < 20; i++ {
		reactions = append(reactions, &Reaction{
			Name:     fmt.Sprintf("step%d", i),
			Patterns: []Pattern{{FVar("x"), FLabel(fmt.Sprintf("A%d", i))}},
			Branches: []Branch{{Products: []Template{{
				expr.MustParse("x + 1"), expr.Lit{Val: value.Str(fmt.Sprintf("A%d", i+1))},
			}}}},
		})
	}
	m := multiset.New(multiset.Pair(value.Int(0), "A0"))
	p := MustProgram("chain", reactions...)
	stats, err := Run(p, m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Contains(multiset.Pair(value.Int(20), "A20")) || stats.Steps != 20 {
		t.Fatalf("chain result = %s steps=%d", m, stats.Steps)
	}
	// Parallel too.
	m2 := multiset.New(multiset.Pair(value.Int(0), "A0"))
	if _, err := Run(p, m2, Options{Workers: 4, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	if !m2.Contains(multiset.Pair(value.Int(20), "A20")) {
		t.Fatalf("parallel chain result = %s", m2)
	}
}
