package gamma

import (
	"testing"

	"repro/internal/expr"
	"repro/internal/multiset"
	"repro/internal/value"
)

// mapMemo is a minimal in-package Memo for testing the runtime's memo paths
// (the production table lives in internal/reuse).
type mapMemo map[string][]multiset.Tuple

func (m mapMemo) LookupReaction(key string) ([]multiset.Tuple, bool) {
	p, ok := m[key]
	return p, ok
}
func (m mapMemo) StoreReaction(key string, products []multiset.Tuple) { m[key] = products }

// applyMatch probes r on m and applies the action through the kernel path,
// mirroring the step loop's findFiring + applyAction sequence.
func applyMatch(t *testing.T, r *Reaction, m *multiset.Multiset, opt Options, stats *Stats) ([]multiset.Tuple, error) {
	t.Helper()
	k := r.kernel()
	s, err := findFiring(r, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s == nil {
		t.Fatal("no match")
	}
	defer k.putSearcher(s)
	return applyAction(r, k, s, opt, stats, nil)
}

func TestMemoPlanShapes(t *testing.T) {
	// Triplet patterns sharing a tag var, no tag in conditions: maskable.
	maskable := &Reaction{
		Name: "m",
		Patterns: []Pattern{
			{FVar("a"), FLabel("L"), FVar("v")},
			{FVar("b"), FLabel("R"), FVar("v")},
		},
		Branches: []Branch{{
			Cond: expr.MustParse("a > 0"),
			Products: []Template{{
				expr.MustParse("a + b"), expr.Lit{Val: value.Str("O")}, expr.MustParse("v + 1"),
			}},
		}},
	}
	plan := maskable.memoPlan()
	if plan.tagVar != "v" {
		t.Fatalf("tagVar = %q, want v", plan.tagVar)
	}
	if !plan.mask[0][2] || !plan.mask[1][2] || plan.mask[0][0] {
		t.Errorf("mask = %v", plan.mask)
	}
	if !plan.reeval[0][0][2] || plan.reeval[0][0][0] {
		t.Errorf("reeval = %v", plan.reeval)
	}
	// The plan is computed once.
	if maskable.memoPlan() != plan {
		t.Error("plan not cached")
	}

	// Tag read by a condition: exact-key mode.
	condTag := &Reaction{
		Name:     "c",
		Patterns: []Pattern{{FVar("a"), FLabel("L"), FVar("v")}},
		Branches: []Branch{{Cond: expr.MustParse("v < 3"), Products: nil}},
	}
	if condTag.memoPlan().tagVar != "" {
		t.Error("tag in condition must disable masking")
	}

	// Pair patterns: no tag position, exact-key mode.
	pair := &Reaction{
		Name:     "p",
		Patterns: []Pattern{{FVar("a"), FLabel("L")}},
		Branches: []Branch{{Products: nil}},
	}
	if pair.memoPlan().tagVar != "" {
		t.Error("pair patterns must disable masking")
	}

	// Two different tag variables: exact-key mode.
	twoTags := &Reaction{
		Name: "t",
		Patterns: []Pattern{
			{FVar("a"), FLabel("L"), FVar("v")},
			{FVar("b"), FLabel("R"), FVar("w")},
		},
		Branches: []Branch{{Products: nil}},
	}
	if twoTags.memoPlan().tagVar != "" {
		t.Error("distinct tag vars must disable masking")
	}
}

func TestApplyActionMemoMaskedHit(t *testing.T) {
	r := &Reaction{
		Name:     "inc",
		Patterns: []Pattern{{FVar("x"), FLabel("a"), FVar("v")}},
		Branches: []Branch{{Products: []Template{{
			expr.MustParse("x * 10"), expr.Lit{Val: value.Str("b")}, expr.MustParse("v + 1"),
		}}}},
	}
	memo := mapMemo{}
	stats := newStats(1)
	m1 := multiset.New(multiset.IntElem(7, "a", 0))
	p1, err := applyMatch(t, r, m1, Options{Memo: memo}, stats)
	if err != nil {
		t.Fatal(err)
	}
	if len(p1) != 1 || !p1[0].Equal(multiset.IntElem(70, "b", 1)) {
		t.Fatalf("first products = %v", p1)
	}
	if stats.MemoHits != 0 {
		t.Error("first application cannot hit")
	}
	// Same value, different tag: masked key must hit and refresh the tag.
	m2 := multiset.New(multiset.IntElem(7, "a", 5))
	p2, err := applyMatch(t, r, m2, Options{Memo: memo}, stats)
	if err != nil {
		t.Fatal(err)
	}
	if stats.MemoHits != 1 {
		t.Errorf("hits = %d, want 1", stats.MemoHits)
	}
	if len(p2) != 1 || !p2[0].Equal(multiset.IntElem(70, "b", 6)) {
		t.Errorf("refreshed products = %v, want [70,'b',6]", p2)
	}
	// Different value: miss.
	m3 := multiset.New(multiset.IntElem(9, "a", 5))
	p3, err := applyMatch(t, r, m3, Options{Memo: memo}, stats)
	if err != nil || !p3[0].Equal(multiset.IntElem(90, "b", 6)) {
		t.Errorf("different value products = %v (%v)", p3, err)
	}
	if stats.MemoHits != 1 {
		t.Errorf("hits = %d after distinct value, want still 1", stats.MemoHits)
	}
}

func TestApplyActionExactModeReusesVerbatim(t *testing.T) {
	// Pair elements: exact-key mode returns stored products untouched.
	r := &Reaction{
		Name:     "pairs",
		Patterns: []Pattern{{FVar("x"), FLabel("a")}},
		Branches: []Branch{{Products: []Template{{
			expr.MustParse("x + 1"), expr.Lit{Val: value.Str("b")},
		}}}},
	}
	memo := mapMemo{}
	stats := newStats(1)
	m := multiset.New(multiset.Pair(value.Int(3), "a"))
	if _, err := applyMatch(t, r, m, Options{Memo: memo}, stats); err != nil {
		t.Fatal(err)
	}
	m2 := multiset.New(multiset.Pair(value.Int(3), "a"))
	p, err := applyMatch(t, r, m2, Options{Memo: memo}, stats)
	if err != nil {
		t.Fatal(err)
	}
	if stats.MemoHits != 1 || len(p) != 1 || !p[0].Equal(multiset.Pair(value.Int(4), "b")) {
		t.Errorf("exact-mode hit: %v, hits=%d", p, stats.MemoHits)
	}
}

func TestApplyActionMemoBranchSelection(t *testing.T) {
	// Memo must replay the branch that fired, not re-decide: two values
	// selecting different branches get different keys and products.
	r := &Reaction{
		Name:     "gate",
		Patterns: []Pattern{{FVar("x"), FLabel("a"), FVar("v")}},
		Branches: []Branch{
			{Cond: expr.MustParse("x > 0"), Products: []Template{{
				expr.MustParse("x"), expr.Lit{Val: value.Str("pos")}, expr.MustParse("v"),
			}}},
			{Products: []Template{{
				expr.MustParse("x"), expr.Lit{Val: value.Str("neg")}, expr.MustParse("v"),
			}}},
		},
	}
	memo := mapMemo{}
	stats := newStats(1)
	apply := func(x, tag int64) multiset.Tuple {
		m := multiset.New(multiset.IntElem(x, "a", tag))
		p, err := applyMatch(t, r, m, Options{Memo: memo}, stats)
		if err != nil {
			t.Fatal(err)
		}
		return p[0]
	}
	if got := apply(5, 0); !got.Equal(multiset.IntElem(5, "pos", 0)) {
		t.Errorf("pos = %v", got)
	}
	if got := apply(-5, 0); !got.Equal(multiset.IntElem(-5, "neg", 0)) {
		t.Errorf("neg = %v", got)
	}
	// Hits replay the right branches at a new tag.
	if got := apply(5, 9); !got.Equal(multiset.IntElem(5, "pos", 9)) {
		t.Errorf("pos replay = %v", got)
	}
	if got := apply(-5, 9); !got.Equal(multiset.IntElem(-5, "neg", 9)) {
		t.Errorf("neg replay = %v", got)
	}
	if stats.MemoHits != 2 {
		t.Errorf("hits = %d, want 2", stats.MemoHits)
	}
}

func TestSpinZeroAndNegative(t *testing.T) {
	spin(0)
	spin(-5)
	spin(3) // just exercise the loop
}

func TestPatternMatchEdgeCases(t *testing.T) {
	env := make(expr.MapEnv)
	// Arity mismatch.
	p := Pattern{FVar("x"), FLabel("L")}
	if _, ok := p.match(multiset.IntElem(1, "L", 0), env); ok {
		t.Error("arity mismatch should fail")
	}
	// Literal mismatch unbinds partial bindings.
	p2 := Pattern{FVar("x"), FLabel("L")}
	if _, ok := p2.match(multiset.Pair(value.Int(1), "Z"), env); ok {
		t.Error("label mismatch should fail")
	}
	if len(env) != 0 {
		t.Errorf("env leaked bindings: %v", env)
	}
	// Repeated var conflict.
	p3 := Pattern{FVar("x"), FVar("x")}
	if _, ok := p3.match(multiset.Tuple{value.Int(1), value.Int(2)}, env); ok {
		t.Error("conflicting repeat should fail")
	}
	if len(env) != 0 {
		t.Errorf("env leaked bindings: %v", env)
	}
	// Repeated var agreement.
	if bound, ok := p3.match(multiset.Tuple{value.Int(2), value.Int(2)}, env); !ok || len(bound) != 1 {
		t.Errorf("repeat agreement: ok=%v bound=%v", ok, bound)
	}
}
