// Compiled reaction kernels: the slot-indexed execution form of a Reaction.
//
// The seed matcher interpreted a reaction on every probe — binding pattern
// variables into a freshly allocated map environment, tree-walking the branch
// conditions and product templates, and rebuilding each candidate's Key()
// fingerprint to track claimed occurrences. Those per-probe costs dominate
// the step loop once the incremental scheduler has removed the wasted probes
// (cmd/gfbench -exp e16 at n=10⁴).
//
// A kernel lowers all of it once, at first use, keeping the semantics of the
// interpreted path bit-for-bit:
//
//   - every pattern variable is assigned an integer slot; matching writes
//     env[slot] instead of hashing names into a MapEnv, and whether a field
//     binds or equality-checks is decided statically from the fixed search
//     order (patterns in order, fields left to right);
//   - branch conditions and product fields are compiled to expr closure
//     chains over the slot environment (expr.Compile, which also constant-
//     folds the literal chains §III-A3 reaction fusion leaves behind);
//   - the pattern label is interned to its symtab symbol once, so candidate
//     enumeration hits the multiset's integer-keyed indexes and reuses each
//     entry's cached Key() instead of rebuilding the fingerprint per probe;
//   - searcher scratch (slot env, claim counts, chosen tuples) is recycled
//     through a per-kernel sync.Pool, so a probe allocates nothing.
//
// The interpreted Pattern.match / Reaction.produce path remains as the
// reference oracle; TestKernelMatchesInterpreter holds the two together.
package gamma

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/expr"
	"repro/internal/multiset"
	"repro/internal/symtab"
	"repro/internal/value"
)

// kfield is one lowered pattern field. slot < 0 means a literal field
// compared against lit; otherwise the field touches env[slot] — binding it
// when bind is set (the variable's first occurrence in the fixed search
// order), equality-checking against it otherwise (a repeated variable, the
// paper's shared-tag constraint).
type kfield struct {
	slot int
	bind bool
	lit  value.Value
}

// Tag-field modes for candidate enumeration (kpat.tagMode).
const (
	tagNone = iota // no concrete tag at enumeration time: iterate the label index
	tagLit         // literal int tag: iterate the (label, tag) index
	tagSlot        // tag variable bound by an earlier pattern: read env[tagSlot]
)

// kpat is one lowered pattern: its fields, the slots it binds (cleared as a
// block on backtracking — only this pattern ever binds them, because a slot
// belongs to its variable's first occurrence), and the enumeration plan
// (label symbol and tag mode) resolved from the literal shapes Algorithm 1
// emits.
type kpat struct {
	n        int
	fields   []kfield
	binds    []int
	labelSym symtab.Sym
	hasLabel bool
	tagMode  int
	tagLit   int64
	tagSlot  int
}

// match attempts to match tuple t, writing bindings into the slot env. On
// failure every slot this pattern binds is cleared; on success the caller
// clears them via clear when backtracking past the pattern.
func (kp *kpat) match(t multiset.Tuple, env []value.Value) bool {
	if len(t) != kp.n {
		return false
	}
	for i := range kp.fields {
		f := &kp.fields[i]
		switch {
		case f.slot < 0:
			if !value.Equal(f.lit, t[i]) {
				kp.clear(env)
				return false
			}
		case f.bind:
			env[f.slot] = t[i]
		default:
			if !value.Equal(env[f.slot], t[i]) {
				kp.clear(env)
				return false
			}
		}
	}
	return true
}

// clear unbinds every slot the pattern binds. Clearing a slot the current
// attempt never reached is harmless: it was already invalid.
func (kp *kpat) clear(env []value.Value) {
	for _, s := range kp.binds {
		env[s] = value.Value{}
	}
}

// kbranch is one lowered branch: compiled condition (nil for else) and
// compiled product templates.
type kbranch struct {
	cond  expr.CompiledBool
	prods [][]expr.Compiled
}

// kernel is the compiled form of one Reaction, built once (see
// Reaction.kernel) and shared read-only by every worker.
type kernel struct {
	nslots   int
	varOf    []string // slot → variable name, for materializing Match.Env
	pats     []kpat
	branches []kbranch

	// View plan for the parallel batch matcher: the label symbols this
	// reaction's patterns can enumerate (deduplicated), or viewAll when any
	// pattern is generic and needs the whole multiset. multiset.LockView
	// read-locks exactly these shards for the duration of a probe batch.
	viewSyms []symtab.Sym
	viewAll  bool

	searchers sync.Pool // *searcher scratch, see getSearcher
}

// compileKernel lowers r. Slot assignment follows the fixed search order —
// patterns in declaration order, fields left to right — so first occurrence
// (bind) versus repetition (check) is static, as is whether a tag variable in
// field 2 is already bound when its pattern starts enumerating (tagSlot).
func compileKernel(r *Reaction) *kernel {
	k := &kernel{}
	slots := make(map[string]int)
	slotOf := func(name string) (int, bool) {
		if s, ok := slots[name]; ok {
			return s, false
		}
		s := len(slots)
		slots[name] = s
		k.varOf = append(k.varOf, name)
		return s, true
	}
	for _, p := range r.Patterns {
		kp := kpat{n: len(p), fields: make([]kfield, len(p))}
		// The enumeration plan reads the bindings established by *earlier*
		// patterns, so resolve it before this pattern's fields assign slots.
		if label, ok := patternLabel(p); ok {
			kp.labelSym, kp.hasLabel = symtab.Intern(label), true
			if len(p) >= 3 {
				switch f := p[2]; {
				case f.Var == "" && f.Lit.Kind() == value.KindInt:
					kp.tagMode, kp.tagLit = tagLit, f.Lit.AsInt()
				case f.Var != "":
					if s, ok := slots[f.Var]; ok {
						kp.tagMode, kp.tagSlot = tagSlot, s
					}
				}
			}
		}
		for i, f := range p {
			if f.Var == "" {
				kp.fields[i] = kfield{slot: -1, lit: f.Lit}
				continue
			}
			s, fresh := slotOf(f.Var)
			kp.fields[i] = kfield{slot: s, bind: fresh}
			if fresh {
				kp.binds = append(kp.binds, s)
			}
		}
		k.pats = append(k.pats, kp)
		if kp.hasLabel {
			dup := false
			for _, s := range k.viewSyms {
				if s == kp.labelSym {
					dup = true
					break
				}
			}
			if !dup {
				k.viewSyms = append(k.viewSyms, kp.labelSym)
			}
		} else {
			k.viewAll = true
		}
	}
	k.nslots = len(slots)
	k.branches = make([]kbranch, len(r.Branches))
	for bi, b := range r.Branches {
		kb := &k.branches[bi]
		if b.Cond != nil {
			kb.cond = expr.CompileBool(b.Cond, slots)
		}
		kb.prods = make([][]expr.Compiled, len(b.Products))
		for pi, tpl := range b.Products {
			kb.prods[pi] = make([]expr.Compiled, len(tpl))
			for fi, e := range tpl {
				kb.prods[pi][fi] = expr.Compile(e, slots)
			}
		}
	}
	k.searchers.New = func() any {
		return &searcher{
			k:      k,
			env:    make([]value.Value, k.nslots),
			used:   make(map[string]int, len(k.pats)),
			chosen: make([]multiset.Tuple, len(k.pats)),
			keys:   make([]string, len(k.pats)),
		}
	}
	return k
}

// kernel returns r's compiled form, building it on first use. Reactions are
// immutable once running (the same contract the memo plan and subscription
// index rely on).
func (r *Reaction) kernel() *kernel {
	r.kernOnce.Do(func() { r.kern = compileKernel(r) })
	return r.kern
}

// selectBranch returns the first enabled branch under the slot env, or -1.
// The compiled counterpart of Reaction.selectBranch, with the same error
// wrapping.
func (k *kernel) selectBranch(name string, env []value.Value) (int, error) {
	for i := range k.branches {
		b := &k.branches[i]
		if b.cond == nil {
			return i, nil
		}
		ok, err := b.cond(env)
		if err != nil {
			return -1, fmt.Errorf("gamma: reaction %s condition: %w", name, err)
		}
		if ok {
			return i, nil
		}
	}
	return -1, nil
}

// produce instantiates branch idx's products under the slot env. The compiled
// counterpart of Reaction.produce, with the same error wrapping.
func (k *kernel) produce(name string, idx int, env []value.Value) ([]multiset.Tuple, error) {
	prods := k.branches[idx].prods
	out := make([]multiset.Tuple, 0, len(prods))
	for _, tpl := range prods {
		t := make(multiset.Tuple, len(tpl))
		for i, ce := range tpl {
			v, err := ce(env)
			if err != nil {
				return nil, fmt.Errorf("gamma: reaction %s action: %w", name, err)
			}
			t[i] = v
		}
		out = append(out, t)
	}
	return out, nil
}

// produceInto is produce onto caller-owned arenas: product value cells append
// to vals, tuple headers (capacity-clamped subslices of vals) append to out,
// and both grown slices return to the caller. A mid-batch realloc of vals is
// harmless — earlier headers keep reading the old backing, whose cells are
// immutable and already correct. Callers must not retain the headers past the
// commit that clones them (the memoized path therefore uses produce instead:
// the memo table stores product slices indefinitely).
func (k *kernel) produceInto(name string, idx int, env []value.Value, vals []value.Value, out []multiset.Tuple) ([]value.Value, []multiset.Tuple, error) {
	prods := k.branches[idx].prods
	for _, tpl := range prods {
		start := len(vals)
		for _, ce := range tpl {
			v, err := ce(env)
			if err != nil {
				return vals, out, fmt.Errorf("gamma: reaction %s action: %w", name, err)
			}
			vals = append(vals, v)
		}
		out = append(out, multiset.Tuple(vals[start:len(vals):len(vals)]))
	}
	return vals, out, nil
}

// getSearcher returns recycled searcher scratch bound to (r, m, rng). Release
// with putSearcher once the firing's chosen/env/keys are no longer read.
func (k *kernel) getSearcher(r *Reaction, m *multiset.Multiset, rng *rand.Rand) *searcher {
	s := k.searchers.Get().(*searcher)
	s.r, s.m, s.rng, s.err = r, m, rng, nil
	if rng == nil && k.viewAll {
		// Deterministic search with a generic pattern: derive the whole-set
		// enumeration rotation from the multiset state, not a counter, so the
		// probe order is a pure function of the state — identical across
		// engines and across repeated runs (the equivalence harness compares
		// stable states reached from the same state sequence).
		s.det = detRotation(m.Len())
	} else {
		s.det = 0
	}
	for i := range s.env {
		s.env[i] = value.Value{}
	}
	// Clearing a map does not shrink its buckets, so the claim tracker stays
	// allocation-free at steady state.
	for key := range s.used {
		delete(s.used, key)
	}
	return s
}

func (k *kernel) putSearcher(s *searcher) {
	s.m = nil
	s.rng = nil
	s.view = nil
	for i := range s.chosen {
		s.chosen[i] = nil
		s.keys[i] = ""
	}
	k.searchers.Put(s)
}
