package gamma

import (
	"fmt"
	"time"

	"repro/internal/multiset"
	"repro/internal/telemetry"
)

// telSink is the per-worker telemetry state of one execution, resolved once
// at loop start so the hot paths pay a single nil-check branch when the
// recorder is disabled (every method is a no-op on a nil receiver) and no
// map lookups when it is enabled. Counters mirror the Stats fields increment
// for increment — the differential tests in telemetry_test.go hold the two
// accountings to exact agreement.
type telSink struct {
	track   *telemetry.Track
	verbose bool

	steps        *telemetry.Counter
	probes       *telemetry.Counter
	conflicts    *telemetry.Counter
	retries      *telemetry.Counter
	memoHits     *telemetry.Counter
	steals       *telemetry.Counter
	batches      *telemetry.Counter
	backoffWaits *telemetry.Counter
	fired        []*telemetry.Counter   // per reaction index
	lat          []*telemetry.Histogram // per reaction index
	batchSize    *telemetry.Histogram
	card         *telemetry.Gauge
	depth        *telemetry.Gauge
}

// newTelSink resolves the worker's track and instruments; nil when telemetry
// is disabled. The track name is "<label>/w<worker>", where label defaults
// to "gamma" and is overridden by Options.TrackLabel (dist names node
// shards).
func newTelSink(opt Options, p *Program, worker int) *telSink {
	rec := opt.Recorder
	if rec == nil {
		return nil
	}
	label := opt.TrackLabel
	if label == "" {
		label = "gamma"
	}
	reg := rec.Metrics
	ts := &telSink{
		track:        rec.Track(fmt.Sprintf("%s/w%d", label, worker)),
		verbose:      rec.Verbose,
		steps:        reg.Counter("gamma.steps"),
		probes:       reg.Counter("gamma.probes"),
		conflicts:    reg.Counter("gamma.conflicts"),
		retries:      reg.Counter("gamma.retries"),
		memoHits:     reg.Counter("gamma.memo_hits"),
		steals:       reg.Counter("gamma.steals"),
		batches:      reg.Counter("gamma.batches"),
		backoffWaits: reg.Counter("gamma.backoff_waits"),
		batchSize:    reg.Histogram("gamma.batch_size"),
		card:         reg.Gauge("gamma.cardinality"),
		depth:        reg.Gauge("gamma.worklist_depth"),
	}
	ts.fired = make([]*telemetry.Counter, len(p.Reactions))
	ts.lat = make([]*telemetry.Histogram, len(p.Reactions))
	for i, r := range p.Reactions {
		ts.fired[i] = reg.Counter("gamma.fired." + r.Name)
		ts.lat[i] = reg.Histogram("gamma.firing_ns." + r.Name)
	}
	return ts
}

// begin stamps the start of a probe→commit attempt; the zero time when
// telemetry is disabled.
func (t *telSink) begin() time.Time {
	if t == nil {
		return time.Time{}
	}
	return time.Now()
}

// probe accounts one match attempt. Event volume is counter-only unless the
// recorder is verbose: probes outnumber firings by the probe→match ratio and
// would dominate both the ring and the enabled-mode overhead.
func (t *telSink) probe(name string) {
	if t == nil {
		return
	}
	t.probes.Inc()
	if t.verbose {
		t.track.Instant(telemetry.KindProbe, name, 0, 0)
	}
}

// firing accounts one committed reaction application: the latency span since
// begin, with the post-commit cardinality and the scheduler wakeups the
// commit caused folded into the event payload (one ring write per firing).
func (t *telSink) firing(idx int, name string, start time.Time, m *multiset.Multiset, woken, depth int) {
	if t == nil {
		return
	}
	t.steps.Inc()
	t.fired[idx].Inc()
	card := int64(m.Len())
	t.card.Set(card)
	t.depth.Set(int64(depth))
	lat := time.Since(start)
	t.lat[idx].Observe(lat.Nanoseconds())
	t.track.SpanDur(telemetry.KindFiring, name, start, lat, card, int64(woken))
}

// batchCommit accounts one committed multi-firing batch: k firings of the
// same reaction landed in one ApplyDeltas commit. Counters advance by k so
// the Stats cross-check stays exact; the span and latency cover the whole
// batch (one ring write per commit, the point of batching).
func (t *telSink) batchCommit(idx int, name string, start time.Time, m *multiset.Multiset, woken, depth, k int) {
	if t == nil {
		return
	}
	t.steps.Add(int64(k))
	t.fired[idx].Add(int64(k))
	t.batches.Inc()
	t.batchSize.Observe(int64(k))
	card := int64(m.Len())
	t.card.Set(card)
	t.depth.Set(int64(depth))
	lat := time.Since(start)
	t.lat[idx].Observe(lat.Nanoseconds())
	t.track.SpanDur(telemetry.KindFiring, name, start, lat, card, int64(woken))
}

// conflict accounts one failed optimistic commit.
func (t *telSink) conflict(name string) {
	if t == nil {
		return
	}
	t.conflicts.Inc()
	t.track.Instant(telemetry.KindConflict, name, 0, 0)
}

// conflictN accounts n failed claims out of one batched commit.
func (t *telSink) conflictN(name string, n int) {
	if t == nil {
		return
	}
	t.conflicts.Add(int64(n))
	t.track.Instant(telemetry.KindConflict, name, int64(n), 0)
}

// steal accounts one successful steal from another worker's deque.
func (t *telSink) steal() {
	if t == nil {
		return
	}
	t.steals.Inc()
}

// backoffWait accounts one timed (sleeping, not yielding) conflict backoff.
func (t *telSink) backoffWait() {
	if t == nil {
		return
	}
	t.backoffWaits.Inc()
}

// retry accounts one in-place conflict rematch.
func (t *telSink) retry(name string) {
	if t == nil {
		return
	}
	t.retries.Inc()
	t.track.Instant(telemetry.KindRetry, name, 0, 0)
}

// memoHit accounts one reaction application answered from the memo table.
func (t *telSink) memoHit() {
	if t == nil {
		return
	}
	t.memoHits.Inc()
}
