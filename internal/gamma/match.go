package gamma

import (
	"math/rand"
	"sort"

	"repro/internal/expr"
	"repro/internal/multiset"
	"repro/internal/value"
)

// Match is one enabled application of a reaction: the concrete elements
// chosen from the multiset, the variable bindings they induce, and the branch
// that fired.
type Match struct {
	Chosen []multiset.Tuple
	Env    expr.MapEnv
	Branch int
}

// FindMatch searches m for an enabled match of r. It returns nil when the
// reaction is not enabled on m (no combination of elements satisfies the
// patterns and some branch condition). When rng is non-nil, candidate order
// is randomized — the nondeterministic selection of §II-B; with a nil rng the
// search is deterministic (sorted candidate order), which the sequential
// interpreter and the tests rely on.
//
// The search is a backtracking enumeration over the replace-list patterns.
// Patterns whose label field is a literal (the shape Algorithm 1 always
// emits) draw candidates from the multiset's label or (label, tag) index, so
// converted dataflow programs match in near-constant time; fully generic
// patterns fall back to a full scan.
func FindMatch(r *Reaction, m *multiset.Multiset, rng *rand.Rand) (*Match, error) {
	s := &searcher{r: r, m: m, rng: rng,
		env:    make(expr.MapEnv, 8),
		used:   make(map[string]int, len(r.Patterns)),
		chosen: make([]multiset.Tuple, len(r.Patterns)),
	}
	ok, err := s.search(0)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, nil
	}
	return &Match{Chosen: s.chosen, Env: s.env, Branch: s.branch}, nil
}

type searcher struct {
	r      *Reaction
	m      *multiset.Multiset
	rng    *rand.Rand
	env    expr.MapEnv
	used   map[string]int // occurrences of each tuple key already claimed
	chosen []multiset.Tuple
	branch int
}

func (s *searcher) search(i int) (bool, error) {
	if i == len(s.r.Patterns) {
		idx, err := s.r.selectBranch(s.env)
		if err != nil {
			return false, err
		}
		if idx < 0 {
			return false, nil // binding found but no branch enabled; backtrack
		}
		s.branch = idx
		return true, nil
	}
	p := s.r.Patterns[i]
	cands := s.candidates(p)
	for _, c := range cands {
		key := c.Tuple.Key()
		if s.used[key] >= c.N {
			continue // all occurrences already claimed by earlier patterns
		}
		bound, ok := p.match(c.Tuple, s.env)
		if !ok {
			continue
		}
		s.used[key]++
		s.chosen[i] = c.Tuple
		found, err := s.search(i + 1)
		if err != nil {
			return false, err
		}
		if found {
			return true, nil
		}
		s.used[key]--
		unbind(s.env, bound)
	}
	return false, nil
}

// candidates returns the possible elements for pattern p under the current
// bindings, using the narrowest index available.
func (s *searcher) candidates(p Pattern) []multiset.Counted {
	var out []multiset.Counted
	if label, ok := patternLabel(p); ok {
		if tag, ok := s.patternTag(p); ok {
			out = s.m.ByLabelTag(label, tag)
		} else {
			out = s.m.ByLabel(label)
		}
		// Index results come from map iteration; make order deterministic
		// unless randomizing anyway.
		if s.rng == nil {
			sort.Slice(out, func(a, b int) bool { return out[a].Tuple.Compare(out[b].Tuple) < 0 })
		}
	} else {
		out = s.m.Snapshot() // already sorted
	}
	if s.rng != nil {
		s.rng.Shuffle(len(out), func(a, b int) { out[a], out[b] = out[b], out[a] })
	}
	return out
}

// patternLabel extracts a literal string in the label position (field 1).
func patternLabel(p Pattern) (string, bool) {
	if len(p) >= 2 && p[1].Var == "" && p[1].Lit.Kind() == value.KindString {
		return p[1].Lit.AsString(), true
	}
	return "", false
}

// patternTag extracts a concrete integer for the tag position (field 2):
// either a literal or a variable already bound to an int by earlier patterns
// — the common case for Algorithm 1 output, where all patterns share the tag
// variable and the first match pins it.
func (s *searcher) patternTag(p Pattern) (int64, bool) {
	if len(p) < 3 {
		return 0, false
	}
	f := p[2]
	if f.Var == "" {
		if f.Lit.Kind() == value.KindInt {
			return f.Lit.AsInt(), true
		}
		return 0, false
	}
	if v, ok := s.env[f.Var]; ok && v.Kind() == value.KindInt {
		return v.AsInt(), true
	}
	return 0, false
}

// Enabled reports whether any reaction of p has an enabled match on m — the
// negation of Eq. 1's termination test (∀i ∀x ¬Ri(x...)).
func Enabled(p *Program, m *multiset.Multiset) (bool, error) {
	for _, r := range p.Reactions {
		match, err := FindMatch(r, m, nil)
		if err != nil {
			return false, err
		}
		if match != nil {
			return true, nil
		}
	}
	return false, nil
}
