package gamma

import (
	"math/rand"

	"repro/internal/expr"
	"repro/internal/multiset"
	"repro/internal/value"
)

// Match is one enabled application of a reaction: the concrete elements
// chosen from the multiset, the variable bindings they induce, and the branch
// that fired.
type Match struct {
	Chosen []multiset.Tuple
	Env    expr.MapEnv
	Branch int
}

// FindMatch searches m for an enabled match of r. It returns nil when the
// reaction is not enabled on m (no combination of elements satisfies the
// patterns and some branch condition). When rng is non-nil, candidate order
// is randomized — the nondeterministic selection of §II-B; with a nil rng the
// search is deterministic (ascending key order), which the sequential
// interpreter and the tests rely on.
//
// The search is a backtracking enumeration over the replace-list patterns.
// Patterns whose label field is a literal (the shape Algorithm 1 always
// emits) draw candidates from the multiset's label or (label, tag) index, so
// converted dataflow programs match in near-constant time; fully generic
// patterns walk the whole multiset.
//
// The deterministic path iterates the multiset's incrementally sorted indexes
// in place — no snapshot, no per-probe sort — so a probe costs only the
// candidates it actually visits. That requires no concurrent writers, which
// the sequential runtime guarantees. The randomized path (always used by the
// parallel runtime) copies the candidates and shuffles them, tolerating
// concurrent mutation; staleness is caught by the optimistic commit.
func FindMatch(r *Reaction, m *multiset.Multiset, rng *rand.Rand) (*Match, error) {
	s := &searcher{r: r, m: m, rng: rng,
		env:    make(expr.MapEnv, 8),
		used:   make(map[string]int, len(r.Patterns)),
		chosen: make([]multiset.Tuple, len(r.Patterns)),
	}
	ok := s.search(0)
	if s.err != nil {
		return nil, s.err
	}
	if !ok {
		return nil, nil
	}
	return &Match{Chosen: s.chosen, Env: s.env, Branch: s.branch}, nil
}

type searcher struct {
	r      *Reaction
	m      *multiset.Multiset
	rng    *rand.Rand
	env    expr.MapEnv
	used   map[string]int // occurrences of each tuple key already claimed
	chosen []multiset.Tuple
	branch int
	err    error
}

func (s *searcher) search(i int) bool {
	if i == len(s.r.Patterns) {
		idx, err := s.r.selectBranch(s.env)
		if err != nil {
			s.err = err
			return false
		}
		if idx < 0 {
			return false // binding found but no branch enabled; backtrack
		}
		s.branch = idx
		return true
	}
	p := s.r.Patterns[i]
	found := false
	s.eachCandidate(p, func(t multiset.Tuple, n int) bool {
		key := t.Key()
		if s.used[key] >= n {
			return true // all occurrences already claimed by earlier patterns
		}
		bound, ok := p.match(t, s.env)
		if !ok {
			return true
		}
		s.used[key]++
		s.chosen[i] = t
		if s.search(i + 1) {
			found = true
			return false
		}
		s.used[key]--
		unbind(s.env, bound)
		return s.err == nil
	})
	return found
}

// eachCandidate enumerates the possible elements for pattern p under the
// current bindings, using the narrowest index available, until fn returns
// false. Deterministic searches iterate the live sorted indexes; randomized
// searches snapshot and shuffle.
func (s *searcher) eachCandidate(p Pattern, fn func(t multiset.Tuple, n int) bool) {
	label, hasLabel := patternLabel(p)
	if s.rng == nil {
		switch {
		case hasLabel:
			if tag, ok := s.patternTag(p); ok {
				s.m.IterLabelTag(label, tag, fn)
			} else {
				s.m.IterLabel(label, fn)
			}
		default:
			s.m.IterSorted(fn)
		}
		return
	}
	var cands []multiset.Counted
	if hasLabel {
		if tag, ok := s.patternTag(p); ok {
			cands = s.m.ByLabelTag(label, tag)
		} else {
			cands = s.m.ByLabel(label)
		}
	} else {
		cands = s.m.AllCounted()
	}
	s.rng.Shuffle(len(cands), func(a, b int) { cands[a], cands[b] = cands[b], cands[a] })
	for _, c := range cands {
		if !fn(c.Tuple, c.N) {
			return
		}
	}
}

// patternLabel extracts a literal string in the label position (field 1).
func patternLabel(p Pattern) (string, bool) {
	if len(p) >= 2 && p[1].Var == "" && p[1].Lit.Kind() == value.KindString {
		return p[1].Lit.AsString(), true
	}
	return "", false
}

// patternTag extracts a concrete integer for the tag position (field 2):
// either a literal or a variable already bound to an int by earlier patterns
// — the common case for Algorithm 1 output, where all patterns share the tag
// variable and the first match pins it.
func (s *searcher) patternTag(p Pattern) (int64, bool) {
	if len(p) < 3 {
		return 0, false
	}
	f := p[2]
	if f.Var == "" {
		if f.Lit.Kind() == value.KindInt {
			return f.Lit.AsInt(), true
		}
		return 0, false
	}
	if v, ok := s.env[f.Var]; ok && v.Kind() == value.KindInt {
		return v.AsInt(), true
	}
	return 0, false
}

// Enabled reports whether any reaction of p has an enabled match on m — the
// negation of Eq. 1's termination test (∀i ∀x ¬Ri(x...)).
func Enabled(p *Program, m *multiset.Multiset) (bool, error) {
	for _, r := range p.Reactions {
		match, err := FindMatch(r, m, nil)
		if err != nil {
			return false, err
		}
		if match != nil {
			return true, nil
		}
	}
	return false, nil
}
