package gamma

import (
	"math/rand"

	"repro/internal/expr"
	"repro/internal/multiset"
	"repro/internal/value"
)

// Match is one enabled application of a reaction: the concrete elements
// chosen from the multiset, the variable bindings they induce, and the branch
// that fired.
type Match struct {
	Chosen []multiset.Tuple
	Env    expr.MapEnv
	Branch int
}

// FindMatch searches m for an enabled match of r. It returns nil when the
// reaction is not enabled on m (no combination of elements satisfies the
// patterns and some branch condition). When rng is non-nil, candidate order
// is randomized — the nondeterministic selection of §II-B; with a nil rng the
// search is deterministic (ascending key order), which the sequential
// interpreter and the tests rely on.
//
// The search runs on the reaction's compiled kernel (kernel.go): a
// backtracking enumeration over the replace-list patterns with variable
// bindings in a slot-indexed environment. Patterns whose label field is a
// literal (the shape Algorithm 1 always emits) draw candidates from the
// multiset's interned label or (label, tag) index, so converted dataflow
// programs match in near-constant time; fully generic patterns walk the
// whole multiset.
//
// The deterministic path iterates the multiset's incrementally sorted indexes
// in place — no snapshot, no per-probe sort, and each candidate arrives with
// its cached Key() fingerprint — so a probe costs only the candidates it
// actually visits. That requires no concurrent writers, which the sequential
// runtime guarantees. The randomized path (always used by the parallel
// runtime) copies the candidates and shuffles them, tolerating concurrent
// mutation; staleness is caught by the optimistic commit.
//
// FindMatch materializes the bindings into a MapEnv for its callers (tests,
// Enabled, the dataflow equivalence checker); the step loop in run.go uses
// findFiring to keep the pooled slot environment instead.
func FindMatch(r *Reaction, m *multiset.Multiset, rng *rand.Rand) (*Match, error) {
	k := r.kernel()
	s, err := findFiring(r, m, rng)
	if err != nil || s == nil {
		return nil, err
	}
	defer k.putSearcher(s)
	env := make(expr.MapEnv, len(k.varOf))
	for slot, name := range k.varOf {
		if v := s.env[slot]; v.IsValid() {
			env[name] = v
		}
	}
	chosen := make([]multiset.Tuple, len(s.chosen))
	copy(chosen, s.chosen)
	return &Match{Chosen: chosen, Env: env, Branch: s.branch}, nil
}

// findFiring is the allocation-free core of FindMatch: it returns a pooled
// searcher holding an enabled firing (slot env, chosen tuples with their
// cached keys, selected branch), or nil when the reaction is not enabled.
// The caller must release a non-nil searcher via r.kernel().putSearcher once
// done reading it.
func findFiring(r *Reaction, m *multiset.Multiset, rng *rand.Rand) (*searcher, error) {
	k := r.kernel()
	s := k.getSearcher(r, m, rng)
	ok := s.search(0)
	if s.err != nil || !ok {
		err := s.err
		k.putSearcher(s)
		return nil, err
	}
	return s, nil
}

// searcher is the recycled scratch of one match search; see kernel.getSearcher.
type searcher struct {
	k      *kernel
	r      *Reaction
	m      *multiset.Multiset
	rng    *rand.Rand
	view   *multiset.View // when set, candidates come from the locked view
	det    uint64         // rotation for deterministic generic-pattern probes
	env    []value.Value  // slot-indexed bindings; invalid Value = unbound
	used   map[string]int // occurrences of each tuple key already claimed
	chosen []multiset.Tuple
	keys   []string // cached Key() of each chosen tuple
	branch int
	err    error
}

// nextInBatch readies the searcher for the next search of a multi-firing
// batch: the slot environment is cleared but the claim tracker is kept, so
// the occurrences chosen by the batch's earlier (not yet committed) firings
// stay claimed — that is what makes the batch's deltas pairwise disjoint and
// the single ApplyDeltas commit equivalent to firing them one by one. The
// caller must copy chosen/keys out before calling; the next search overwrites
// them.
func (s *searcher) nextInBatch() {
	for i := range s.env {
		s.env[i] = value.Value{}
	}
}

func (s *searcher) search(i int) bool {
	if i == len(s.k.pats) {
		idx, err := s.k.selectBranch(s.r.Name, s.env)
		if err != nil {
			s.err = err
			return false
		}
		if idx < 0 {
			return false // binding found but no branch enabled; backtrack
		}
		s.branch = idx
		return true
	}
	kp := &s.k.pats[i]
	found := false
	s.eachCandidate(kp, func(t multiset.Tuple, n int, key string) bool {
		if s.used[key] >= n {
			return true // all occurrences already claimed by earlier patterns
		}
		if !kp.match(t, s.env) {
			return true
		}
		s.used[key]++
		s.chosen[i] = t
		s.keys[i] = key
		if s.search(i + 1) {
			found = true
			return false
		}
		s.used[key]--
		kp.clear(s.env)
		return s.err == nil
	})
	return found
}

// eachCandidate enumerates the possible elements for pattern kp under the
// current bindings, using the narrowest index available, until fn returns
// false. Deterministic searches iterate the live sorted indexes; randomized
// searches snapshot and shuffle. Every candidate carries the multiset's
// cached key fingerprint.
func (s *searcher) eachCandidate(kp *kpat, fn func(t multiset.Tuple, n int, key string) bool) {
	if s.view != nil {
		// View-backed path (parallel batch matcher): the shard read locks are
		// held by the caller, so the live chunked indexes can be walked
		// zero-copy. A rotation drawn from the worker's rng replaces the
		// snapshot+shuffle — enumeration starts at a random position and
		// wraps, which decorrelates concurrent searchers without copying.
		rot := s.rng.Uint64()
		if kp.hasLabel {
			if tag, ok := s.tagOf(kp); ok {
				s.view.EachSymTag(kp.labelSym, tag, rot, fn)
			} else {
				s.view.EachSym(kp.labelSym, rot, fn)
			}
		} else {
			s.view.EachAll(rot, fn)
		}
		return
	}
	if s.rng == nil {
		switch {
		case kp.hasLabel:
			if tag, ok := s.tagOf(kp); ok {
				s.m.IterSymTag(kp.labelSym, tag, fn)
			} else {
				s.m.IterSym(kp.labelSym, fn)
			}
		default:
			// Generic patterns walk the whole multiset. Starting every probe
			// at the global lex-first key is an adversarial trap: if that
			// element never matches (e.g. computing min over values whose
			// numeric maximum sorts lexicographically first), each probe
			// re-rejects the same prefix and the run degrades to O(n) per
			// step. Rotate the start by a value derived from the multiset's
			// size instead — deterministic for a given state, so sequential
			// runs stay reproducible, but the hot spot moves as the run
			// progresses.
			s.m.IterAllRot(s.det, fn)
		}
		return
	}
	var cands []multiset.Counted
	if kp.hasLabel {
		if tag, ok := s.tagOf(kp); ok {
			cands = s.m.BySymTag(kp.labelSym, tag)
		} else {
			cands = s.m.BySym(kp.labelSym)
		}
	} else {
		cands = s.m.AllCounted()
	}
	s.rng.Shuffle(len(cands), func(a, b int) { cands[a], cands[b] = cands[b], cands[a] })
	for _, c := range cands {
		if !fn(c.Tuple, c.N, c.Key) {
			return
		}
	}
}

// detRotation maps a multiset size to an enumeration rotation via a
// splitmix64 finalizer round: consecutive sizes land on well-scattered
// rotations, so a shrinking (or growing) multiset keeps moving the probe's
// starting shard and offset.
func detRotation(n int) uint64 {
	z := uint64(n) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// tagOf resolves a concrete integer tag for kp's enumeration, per the
// kernel's static plan: a literal tag always, a tag variable only when an
// earlier pattern bound its slot to an int — the common case for Algorithm 1
// output, where all patterns share the tag variable and the first match pins
// it.
func (s *searcher) tagOf(kp *kpat) (int64, bool) {
	switch kp.tagMode {
	case tagLit:
		return kp.tagLit, true
	case tagSlot:
		if v := s.env[kp.tagSlot]; v.Kind() == value.KindInt {
			return v.AsInt(), true
		}
	}
	return 0, false
}

// patternLabel extracts a literal string in the label position (field 1).
func patternLabel(p Pattern) (string, bool) {
	if len(p) >= 2 && p[1].Var == "" && p[1].Lit.Kind() == value.KindString {
		return p[1].Lit.AsString(), true
	}
	return "", false
}

// Enabled reports whether any reaction of p has an enabled match on m — the
// negation of Eq. 1's termination test (∀i ∀x ¬Ri(x...)).
func Enabled(p *Program, m *multiset.Multiset) (bool, error) {
	for _, r := range p.Reactions {
		match, err := FindMatch(r, m, nil)
		if err != nil {
			return false, err
		}
		if match != nil {
			return true, nil
		}
	}
	return false, nil
}
