package gamma_test

// Race stress for the delta-driven parallel runtime (run with -race): the
// worklist scheduling must not change any observable result. Min-element and
// the primes sieve run under 2–8 workers against the sequential oracle, and a
// seeded property test sweeps Algorithm-1 programs derived from random
// dataflow graphs, comparing the incremental engine with the FullScan seed
// baseline in both runtimes.

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/equiv"
	"repro/internal/gamma"
	"repro/internal/gammalang"
	"repro/internal/multiset"
	"repro/internal/paper"
	"repro/internal/value"
)

var stressWorkers = []int{2, 4, 8}

// runSeq produces the deterministic sequential result as the oracle.
func runSeq(t *testing.T, p *gamma.Program, init *multiset.Multiset, opt gamma.Options) *multiset.Multiset {
	t.Helper()
	m := init.Clone()
	if _, err := gamma.Run(p, m, opt); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestStressParallelMinElement reduces a multiset of ints with Eq. 2's min
// reaction under every worker count; the stable state (the singleton minimum)
// must equal the sequential result.
func TestStressParallelMinElement(t *testing.T) {
	prog, err := gammalang.ParseProgram("min", paper.MinElementListing)
	if err != nil {
		t.Fatal(err)
	}
	const n = 500
	init := multiset.New()
	for i := 0; i < n; i++ {
		init.Add(multiset.New1(value.Int(int64((i*2654435761 + 19) % (3 * n)))))
	}
	want := runSeq(t, prog, init, gamma.Options{})
	for _, workers := range stressWorkers {
		for seed := int64(1); seed <= 3; seed++ {
			m := init.Clone()
			st, err := gamma.Run(prog, m, gamma.Options{Workers: workers, Seed: seed})
			if err != nil {
				t.Fatalf("workers=%d seed=%d: %v", workers, seed, err)
			}
			if !m.Equal(want) {
				t.Fatalf("workers=%d seed=%d: stable state %s, want %s", workers, seed, m, want)
			}
			if st.Steps != n-1 {
				t.Fatalf("workers=%d seed=%d: steps = %d, want %d", workers, seed, st.Steps, n-1)
			}
		}
	}
}

// TestStressParallelPrimes runs the §II-B sieve (remove every multiple) under
// every worker count; the stable multiset is exactly the primes, so every
// schedule must agree with the sequential result.
func TestStressParallelPrimes(t *testing.T) {
	if testing.Short() {
		t.Skip("sieve probes are quadratic; skipping in -short")
	}
	prog, err := gammalang.ParseProgram("sieve",
		`R = replace (x, y) by y where x % y == 0 and x != y`)
	if err != nil {
		t.Fatal(err)
	}
	const n = 150
	init := multiset.New()
	for i := int64(2); i <= n; i++ {
		init.Add(multiset.New1(value.Int(i)))
	}
	want := runSeq(t, prog, init, gamma.Options{})
	for _, workers := range stressWorkers {
		m := init.Clone()
		if _, err := gamma.Run(prog, m, gamma.Options{Workers: workers, Seed: int64(workers)}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !m.Equal(want) {
			t.Fatalf("workers=%d: stable state %s, want %s", workers, m, want)
		}
	}
}

// TestStressPropertyRandomGraphs is the seeded property test: Algorithm-1
// translations of random dataflow graphs (the literal-label shape the
// subscription index targets) must reach the same stable state under
// (a) the incremental sequential engine vs the FullScan seed baseline, with
// identical step counts and no more probes, and (b) the parallel runtime in
// both scheduling modes. Dataflow graphs are deterministic, so the stable
// multiset is unique and every engine must find it.
func TestStressPropertyRandomGraphs(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	if testing.Short() {
		seeds = seeds[:3]
	}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			g := equiv.RandomGraph(seed, 6, 40)
			prog, init, err := core.ToGamma(g)
			if err != nil {
				t.Fatal(err)
			}

			mInc := init.Clone()
			inc, err := gamma.Run(prog, mInc, gamma.Options{})
			if err != nil {
				t.Fatal(err)
			}
			mFull := init.Clone()
			full, err := gamma.Run(prog, mFull, gamma.Options{FullScan: true})
			if err != nil {
				t.Fatal(err)
			}
			if !mInc.Equal(mFull) {
				t.Fatalf("sequential stable states differ:\nincremental %s\nfullscan    %s", mInc, mFull)
			}
			if inc.Steps != full.Steps {
				t.Fatalf("sequential steps differ: %d vs %d", inc.Steps, full.Steps)
			}
			if inc.Probes > full.Probes {
				t.Fatalf("incremental probes %d exceed fullscan probes %d", inc.Probes, full.Probes)
			}

			for _, workers := range stressWorkers {
				for _, fullScan := range []bool{false, true} {
					m := init.Clone()
					st, err := gamma.Run(prog, m, gamma.Options{
						Workers: workers, Seed: seed * 31, FullScan: fullScan,
					})
					if err != nil {
						t.Fatalf("workers=%d fullScan=%v: %v", workers, fullScan, err)
					}
					if !m.Equal(mInc) {
						t.Fatalf("workers=%d fullScan=%v: stable state %s, want %s",
							workers, fullScan, m, mInc)
					}
					if st.Steps != inc.Steps {
						t.Fatalf("workers=%d fullScan=%v: steps = %d, want %d (§III-C firing correspondence)",
							workers, fullScan, st.Steps, inc.Steps)
					}
				}
			}
		})
	}
}
