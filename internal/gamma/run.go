package gamma

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/expr"
	"repro/internal/multiset"
	"repro/internal/rt"
	"repro/internal/symtab"
	"repro/internal/telemetry"
	"repro/internal/value"
)

// ErrMaxSteps is returned when execution exceeds Options.MaxSteps reaction
// firings. Gamma programs need not terminate; the limit turns a diverging
// program into a reported error instead of a hang. It wraps rt.ErrMaxSteps,
// the cross-runtime budget class; errors from RunContext additionally satisfy
// errors.Is against rt.ErrCanceled / rt.ErrDeadline (and thus against
// context.Canceled / context.DeadlineExceeded) when the context stopped the
// run. See package rt for the full taxonomy.
var ErrMaxSteps = rt.Wrap("gamma: maximum step count exceeded", rt.ErrMaxSteps)

// Memo caches reaction applications: the products (and branch) computed for
// a given combination of consumed elements. It mirrors the dataflow side's
// instruction reuse (DF-DTM [3]) at reaction granularity — one of the
// cross-model benefits the paper's introduction motivates. Implementations
// must be safe for concurrent use when Workers > 1.
type Memo interface {
	LookupReaction(key string) ([]multiset.Tuple, bool)
	StoreReaction(key string, products []multiset.Tuple)
}

// Tracer observes the dependency structure of an execution: one call per
// reaction firing, with the keys of the elements it consumed and produced (a
// consumed key equals some earlier firing's produced key, or names an
// initial element). Package profile implements this to compute work, span
// and average parallelism. Implementations must be safe for concurrent use
// when Workers > 1.
type Tracer interface {
	RecordFiring(name string, consumed, produced []string)
}

// ScheduleRecorder receives every committed reaction firing together with
// its commit sequence number — the executable-schedule form of a Tracer.
// Sequence numbers are drawn inside the multiset's commit critical sections,
// so sorting the records by seq yields a sequential firing order that is a
// valid linearization even of a nondeterministic parallel run (package
// replay re-executes it step for step). The engine hands over ownership of
// the key slices — implementations may retain them without copying.
// Implementations must be safe for concurrent use when Workers > 1.
type ScheduleRecorder interface {
	RecordStep(seq uint64, name string, consumed, produced []string)
}

// TupleScheduleRecorder is the optional fast path of ScheduleRecorder: a
// recorder that accepts the firing's raw tuples and renders the keys itself
// (package replay's Recorder batches the text into one buffer, so recording
// allocates nothing per firing). The tuples are only borrowed for the call —
// implementations must extract what they need before returning, and the
// engine must not mutate them during it. Same concurrency contract as
// ScheduleRecorder.
type TupleScheduleRecorder interface {
	RecordStepTuples(seq uint64, name string, consumed, produced []multiset.Tuple)
}

// Options configures an execution.
type Options struct {
	// Workers is the number of concurrent reaction executors. 0 or 1 selects
	// the deterministic sequential interpreter; larger values select the
	// nondeterministic parallel runtime.
	Workers int
	// Seed seeds the nondeterministic candidate selection. Sequential runs
	// with Seed 0 are fully deterministic; parallel runs use Seed to derive
	// per-worker streams.
	Seed int64
	// MaxSteps bounds the total number of reaction firings; 0 means no bound.
	MaxSteps int64
	// Memo, when set, caches reaction products by reaction and consumed
	// elements; a hit skips the action evaluation and its WorkFactor.
	Memo Memo
	// WorkFactor emulates expensive reaction actions: each application spins
	// this many iterations before evaluating products. See the dataflow
	// counterpart for rationale.
	WorkFactor int
	// Tracer, when set, receives every reaction firing with its consumed and
	// produced element keys for dependency analysis.
	Tracer Tracer
	// FullScan disables the delta-driven incremental scheduler and restores
	// the seed engine's behavior: the sequential interpreter probes every
	// reaction round-robin after every firing, and parallel workers rescan
	// all reactions after every commit. The stable state reached is identical
	// either way; the flag exists as the measurement baseline for the
	// incremental engine (cmd/gfbench -exp e16) and as an oracle in tests.
	FullScan bool
	// FaultInjector, when set, runs before every reaction application with
	// the reaction name and worker index; a non-nil return aborts the run
	// with that error, and a panic inside it exercises the worker pool's
	// panic recovery. For stress tests; leave nil in production runs.
	FaultInjector rt.FaultInjector
	// Recorder, when set, receives the execution's telemetry: per-worker
	// event tracks (firing spans with latency, commit conflicts, retries)
	// and registry counters/gauges/histograms mirroring Stats increment for
	// increment. Nil costs one branch per record site on the hot paths.
	Recorder *telemetry.Recorder
	// TrackLabel prefixes this run's telemetry track names (default
	// "gamma"); dist sets it per node so a cluster trace shows one track
	// group per node.
	TrackLabel string
	// Schedule, when set, receives every committed firing with its commit
	// sequence number, turning the run into an executable schedule (see
	// package replay). Nil costs one branch per commit.
	Schedule ScheduleRecorder
}

// traceFiring reports one committed reaction application to the tracer.
func traceFiring(opt Options, name string, consumed, produced []multiset.Tuple) {
	if opt.Tracer == nil {
		return
	}
	ck := make([]string, len(consumed))
	for i, t := range consumed {
		ck[i] = t.Key()
	}
	pk := make([]string, len(produced))
	for i, t := range produced {
		pk[i] = t.Key()
	}
	opt.Tracer.RecordFiring(name, ck, pk)
}

// recordStep reports one committed reaction application, with its commit
// sequence number, to the schedule recorder. Consumed keys are emitted in
// pattern order (s.chosen is pattern-ordered), which is what lets replay
// re-match them positionally.
func recordStep(opt Options, seq uint64, name string, consumed, produced []multiset.Tuple) {
	if opt.Schedule == nil {
		return
	}
	if tr, ok := opt.Schedule.(TupleScheduleRecorder); ok {
		tr.RecordStepTuples(seq, name, consumed, produced)
		return
	}
	ck, pk := renderStepKeys(consumed, produced)
	opt.Schedule.RecordStep(seq, name, ck, pk)
}

// renderStepKeys renders every tuple key of one firing into a single backing
// string: one allocation for the text and one for the headers regardless of
// arity. The recorder retains what it is handed (see ScheduleRecorder), so
// the commit path must produce fresh memory anyway — this is the cheapest
// fresh form. The two slices share the header array read-only; capacities
// are pinned so neither can append into the other.
func renderStepKeys(consumed, produced []multiset.Tuple) (ck, pk []string) {
	n := len(consumed) + len(produced)
	if n == 0 {
		return nil, nil
	}
	var bufArr [96]byte
	var offArr [8]int
	buf, offs := bufArr[:0], offArr[:0]
	for _, t := range consumed {
		buf = t.AppendKey(buf)
		offs = append(offs, len(buf))
	}
	for _, t := range produced {
		buf = t.AppendKey(buf)
		offs = append(offs, len(buf))
	}
	s := string(buf)
	keys := make([]string, n)
	prev := 0
	for i, end := range offs {
		keys[i] = s[prev:end]
		prev = end
	}
	c := len(consumed)
	return keys[:c:c], keys[c:]
}

// Stats reports what an execution did.
type Stats struct {
	// Steps is the total number of reaction firings.
	Steps int64
	// Fired counts firings per reaction name.
	Fired map[string]int64
	// Probes counts reaction match searches (FindMatch attempts) — the
	// matching engine's work metric. The incremental scheduler's win shows
	// up as fewer probes for the same Steps, because provably disabled
	// reactions are never re-probed.
	Probes int64
	// Conflicts counts failed optimistic commits (parallel runtime only):
	// a worker matched a set of molecules that a concurrent worker consumed
	// before the commit.
	Conflicts int64
	// Retries counts conflict rematches: failed commits that were retried in
	// place (with capped exponential backoff) rather than abandoned to the
	// scheduler. Conflicts - Retries is therefore the number of give-ups.
	Retries int64
	// MemoHits counts reaction applications answered from Options.Memo.
	MemoHits int64
	// Steals counts reaction indexes taken from another worker's deque
	// (parallel runtime only): work-stealing load balancing events.
	Steals int64
	// Batches counts committed ApplyDeltas batches (parallel incremental
	// runtime only). Steps / Batches is the average firings per commit; at
	// 1.0 batching found no independent co-enabled firings.
	Batches int64
	// BackoffWaits counts timed conflict backoffs: retries that slept (with
	// cancellation observed) rather than just yielding the processor.
	BackoffWaits int64
	// Workers echoes the worker count used.
	Workers int
}

func newStats(workers int) *Stats {
	return &Stats{Fired: make(map[string]int64), Workers: workers}
}

func (s *Stats) merge(o *Stats) {
	s.Steps += o.Steps
	s.Probes += o.Probes
	s.Conflicts += o.Conflicts
	s.Retries += o.Retries
	s.MemoHits += o.MemoHits
	s.Steals += o.Steals
	s.Batches += o.Batches
	s.BackoffWaits += o.BackoffWaits
	for k, v := range o.Fired {
		s.Fired[k] += v
	}
}

// workSink defeats any optimization of the WorkFactor spin loop.
var workSink atomic.Uint64

func spin(n int) {
	if n <= 0 {
		return
	}
	acc := workSink.Load()
	for i := 0; i < n; i++ {
		acc = acc*1664525 + 1013904223
	}
	workSink.Store(acc)
}

// memoPlan is the per-reaction analysis backing tag-insensitive reuse. Two
// matches that differ only in the iteration tag perform the same expensive
// computation (the value fields of the products); only product fields whose
// expressions mention the tag variable differ, affinely. The plan records
// which chosen-tuple fields to mask out of the memo key and which product
// fields to re-evaluate on a hit. Masking applies only when every pattern
// binds the same tag variable in its third field and no branch condition
// reads it — the shape Algorithm 1 emits; otherwise keys stay exact, which
// is always sound.
type memoPlan struct {
	tagVar string
	mask   [][]bool   // per pattern, per field: part of the tag, exclude from key
	reeval [][][]bool // per branch, per product, per field: mentions the tag
}

func (r *Reaction) memoPlan() *memoPlan {
	r.planOnce.Do(func() {
		plan := &memoPlan{}
		tagVar := ""
		for _, p := range r.Patterns {
			if len(p) < 3 || p[2].Var == "" {
				r.plan = plan
				return
			}
			if tagVar == "" {
				tagVar = p[2].Var
			} else if p[2].Var != tagVar {
				r.plan = plan
				return
			}
		}
		for _, b := range r.Branches {
			if b.Cond != nil {
				for _, v := range expr.FreeVars(b.Cond) {
					if v == tagVar {
						r.plan = plan
						return
					}
				}
			}
		}
		plan.tagVar = tagVar
		plan.mask = make([][]bool, len(r.Patterns))
		for i, p := range r.Patterns {
			plan.mask[i] = make([]bool, len(p))
			for j, f := range p {
				plan.mask[i][j] = f.Var == tagVar
			}
		}
		plan.reeval = make([][][]bool, len(r.Branches))
		for bi, b := range r.Branches {
			plan.reeval[bi] = make([][]bool, len(b.Products))
			for pi, tpl := range b.Products {
				plan.reeval[bi][pi] = make([]bool, len(tpl))
				for fi, e := range tpl {
					for _, v := range expr.FreeVars(e) {
						if v == tagVar {
							plan.reeval[bi][pi][fi] = true
						}
					}
				}
			}
		}
		r.plan = plan
	})
	return r.plan
}

// memoEntry is what the table stores: the branch that fired and its products
// (with possibly stale tag fields, refreshed per application).
type memoEntry struct {
	branch   int
	products []multiset.Tuple
}

// applyAction evaluates the enabled branch's products over the firing's slot
// environment (compiled kernel path), honoring the memo table and work
// factor.
func applyAction(r *Reaction, k *kernel, s *searcher, opt Options, stats *Stats, ts *telSink) ([]multiset.Tuple, error) {
	if opt.Memo == nil {
		spin(opt.WorkFactor)
		return k.produce(r.Name, s.branch, s.env)
	}
	plan := r.memoPlan()
	key := r.Name
	for i, t := range s.chosen {
		for j, v := range t {
			if plan.tagVar != "" && plan.mask[i][j] {
				continue
			}
			key += "|" + v.String()
		}
		key += "||"
	}
	if cached, ok := opt.Memo.LookupReaction(key); ok {
		stats.MemoHits++
		ts.memoHit()
		return refreshProducts(r, k, plan, cached, s.env)
	}
	spin(opt.WorkFactor)
	products, err := k.produce(r.Name, s.branch, s.env)
	if err != nil {
		return nil, err
	}
	stored := append([]multiset.Tuple{multisetBranchMarker(s.branch)}, products...)
	opt.Memo.StoreReaction(key, stored)
	return products, nil
}

// multisetBranchMarker encodes the branch index as a leading 1-tuple in the
// stored product list, so the Memo interface stays a plain tuple store.
func multisetBranchMarker(branch int) multiset.Tuple {
	return multiset.Tuple{value.Int(int64(branch))}
}

// refreshProducts rebuilds cached products for the current match: fields
// whose expressions mention the tag variable are re-evaluated (cheap), the
// rest — the expensive value computation — are reused.
func refreshProducts(r *Reaction, k *kernel, plan *memoPlan, cached []multiset.Tuple, env []value.Value) ([]multiset.Tuple, error) {
	branch := int(cached[0].Value().AsInt())
	stored := cached[1:]
	if plan.tagVar == "" {
		return stored, nil
	}
	out := make([]multiset.Tuple, len(stored))
	for pi, t := range stored {
		flags := plan.reeval[branch][pi]
		fresh := t.Clone()
		for fi := range fresh {
			if flags[fi] {
				v, err := k.branches[branch].prods[pi][fi](env)
				if err != nil {
					return nil, fmt.Errorf("gamma: reaction %s memo refresh: %w", r.Name, err)
				}
				fresh[fi] = v
			}
		}
		out[pi] = fresh
	}
	return out, nil
}

// Run executes p on m until the stable state of Eq. 1 is reached: no reaction
// condition holds for any combination of multiset elements. The multiset is
// modified in place and holds the result on return. Execution follows
// Options: sequential deterministic or parallel nondeterministic.
//
// Run is RunContext with context.Background(): no deadline, no cancellation.
func Run(p *Program, m *multiset.Multiset, opt Options) (*Stats, error) {
	return RunContext(context.Background(), p, m, opt)
}

// RunContext is Run under a context: the deadline and cancellation of ctx
// propagate to every worker, which observe ctx between reaction firings and
// stop at the next commit boundary. The multiset is always left in a
// consistent intermediate state (a prefix of some valid firing sequence).
//
// Early exits of every kind — cancellation, deadline, step budget, a failing
// action, a recovered panic — return non-nil partial Stats describing the
// work done up to the stop, alongside the classifying error: rt.ErrCanceled
// or rt.ErrDeadline (which also satisfy errors.Is against context.Canceled /
// context.DeadlineExceeded), ErrMaxSteps, or *rt.PanicError.
func RunContext(ctx context.Context, p *Program, m *multiset.Multiset, opt Options) (*Stats, error) {
	workers := opt.Workers
	if workers < 1 {
		workers = 1
	}
	for _, r := range p.Reactions {
		if err := r.Validate(); err != nil {
			return newStats(workers), rt.Mark(rt.ErrInvalid, err)
		}
	}
	if err := ctx.Err(); err != nil {
		return newStats(workers), rt.FromContext(err)
	}
	if workers == 1 {
		return runSequential(ctx, p, m, opt)
	}
	return runParallel(ctx, p, m, opt)
}

// runSequential is the direct implementation of the Γ recursion (Eq. 1):
// while some (Ri, Ai) is enabled, replace the matched elements with the
// action's products; otherwise the multiset is the result. With Seed 0
// matching is deterministic.
//
// Scheduling is a dirty worklist drained round-robin: a reaction that fails
// to match is marked clean and skipped until a commit adds an element with a
// label it subscribes to (see schedule.go) — skipping is sound because a
// clean reaction is provably disabled (matching is monotone; removals never
// enable). The stable state of Eq. 1 is exactly "no dirty reaction": an
// empty worklist. Because a skipped probe would have failed anyway, the
// sequence of firings — and thus the deterministic result — is identical to
// the seed engine's full round-robin; only the wasted probes disappear.
//
// The context is observed once per probe; a panic out of a reaction's
// condition or action (or the fault injector) is recovered into *rt.PanicError
// with the partial stats preserved.
func runSequential(ctx context.Context, p *Program, m *multiset.Multiset, opt Options) (stats *Stats, err error) {
	stats = newStats(1)
	site := ""
	defer func() {
		if rec := recover(); rec != nil {
			err = rt.NewPanicError("gamma", site, 0, rec)
		}
	}()
	var rng *rand.Rand
	if opt.Seed != 0 {
		rng = rand.New(rand.NewSource(opt.Seed))
	}
	n := len(p.Reactions)
	if n == 0 {
		return stats, nil
	}
	ts := newTelSink(opt, p, 0)
	subs := p.subs()
	dirty := make([]bool, n)
	for i := range dirty {
		dirty[i] = true
	}
	remaining := n
	markDirty := func(j int) {
		if !dirty[j] {
			dirty[j] = true
			remaining++
		}
	}
	var symsBuf []symtab.Sym // reused produce-delta scratch, incremental mode
	for i := 0; remaining > 0; i = (i + 1) % n {
		if !dirty[i] {
			continue
		}
		r := p.Reactions[i]
		site = r.Name
		if cerr := ctx.Err(); cerr != nil {
			return stats, rt.FromContext(cerr)
		}
		stats.Probes++
		t0 := ts.begin()
		ts.probe(r.Name)
		k := r.kernel()
		s, err := findFiring(r, m, rng)
		if err != nil {
			return stats, err
		}
		if s == nil {
			dirty[i] = false
			remaining--
			continue
		}
		if opt.MaxSteps > 0 && stats.Steps >= opt.MaxSteps {
			// The match just found proves the program is still enabled past
			// the step budget — no full Enabled rescan needed.
			k.putSearcher(s)
			return stats, ErrMaxSteps
		}
		if opt.FaultInjector != nil {
			if ferr := opt.FaultInjector(r.Name, 0); ferr != nil {
				k.putSearcher(s)
				return stats, ferr
			}
		}
		products, err := applyAction(r, k, s, opt, stats, ts)
		if err != nil {
			k.putSearcher(s)
			return stats, err
		}
		if opt.FullScan {
			// Seed-engine commit: separate claim and insert phases.
			if !m.TryRemoveAll(s.chosen) {
				// Unreachable single-threaded; defensive.
				k.putSearcher(s)
				return stats, fmt.Errorf("gamma: matched elements vanished in sequential run of %s", r.Name)
			}
			var seq uint64
			if opt.Schedule != nil {
				// Between claim and insert: the number precedes the products
				// becoming visible, so it linearizes (see multiset.commitSeq).
				seq = m.NextCommitSeq()
			}
			m.AddAll(products)
			traceFiring(opt, r.Name, s.chosen, products)
			recordStep(opt, seq, r.Name, s.chosen, products)
			k.putSearcher(s)
			stats.Steps++
			stats.Fired[r.Name]++
			// The fired reaction stays dirty: consuming elements may leave it
			// enabled on what remains.
			woken := n - remaining
			for j := 0; j < n; j++ {
				markDirty(j)
			}
			ts.firing(i, r.Name, t0, m, woken, remaining)
			continue
		}
		// Incremental commit: the firing's consume+produce lands as one
		// batched delta under a single lock acquisition per shard, and the
		// returned label symbols drive the subscription wakeups directly.
		var ok bool
		var seq uint64
		var syms []symtab.Sym
		if opt.Schedule != nil {
			ok, seq, syms = m.ApplyDeltaSeq(s.chosen, s.keys, products, symsBuf[:0])
		} else {
			ok, syms = m.ApplyDelta(s.chosen, s.keys, products, symsBuf[:0])
		}
		symsBuf = syms
		if !ok {
			// Unreachable single-threaded; defensive.
			k.putSearcher(s)
			return stats, fmt.Errorf("gamma: matched elements vanished in sequential run of %s", r.Name)
		}
		traceFiring(opt, r.Name, s.chosen, products)
		recordStep(opt, seq, r.Name, s.chosen, products)
		k.putSearcher(s)
		stats.Steps++
		stats.Fired[r.Name]++
		if ts == nil {
			subs.forEachSym(syms, markDirty)
		} else {
			before := remaining
			subs.forEachSym(syms, markDirty)
			ts.firing(i, r.Name, t0, m, remaining-before, remaining)
		}
	}
	return stats, nil
}

// stealSched is the coordination state of the parallel runtime: per-worker
// Chase-Lev deques (deque.go) with a global membership filter replace the
// seed's shared mutex-guarded worklist, so the scheduler's hot path — pop,
// enqueue, the post-commit wake check — is lock-free and the mutex guards
// only the cold idle/termination protocol and the error latch.
type stealSched struct {
	mu      sync.Mutex
	cond    *sync.Cond
	workers int
	idle    atomic.Int32 // workers parked in the idle wait; mutated under mu, read lock-free by wake
	done    bool         // stable state reached; under mu
	err     error        // first failure; under mu
	stopped atomic.Bool  // mirrors done||err≠nil for lock-free loop checks

	version atomic.Uint64 // bumped on every successful commit
	steps   atomic.Int64  // total committed firings, for the MaxSteps budget

	// queued[i] marks reaction i as present in exactly one deque; the CAS
	// claim on enqueue both dedupes wakeups and bounds total deque occupancy
	// by the reaction count, which is what makes the fixed deque capacity
	// safe. The taker clears the flag *before* probing, so a commit landing
	// mid-probe re-enqueues the reaction rather than losing the wakeup.
	// Unused (all false, deques empty) in FullScan mode.
	queued []atomic.Bool
	deques []*deque
}

// enqueue marks reaction idx runnable and pushes it onto worker w's own
// deque, unless some deque already holds it. Must be called from worker w —
// deque pushes are owner-only — except for the initial seeding, which runs
// before the workers start and is ordered by the goroutine spawns. Reports
// whether the reaction was newly queued.
func (sh *stealSched) enqueue(w, idx int) bool {
	if !sh.queued[idx].CompareAndSwap(false, true) {
		return false
	}
	sh.deques[w].push(int32(idx))
	return true
}

// take pops the newest entry of worker w's own deque, clearing its membership
// flag before returning so concurrent commits can re-enqueue the reaction
// while it is being probed.
func (sh *stealSched) take(w int) (int, bool) {
	idx, ok := sh.deques[w].pop()
	if !ok {
		return 0, false
	}
	sh.queued[idx].Store(false)
	return int(idx), true
}

// wake unparks idle workers after a commit. The fast path is one atomic load:
// with nobody idle — the steady state under load — no lock is taken. A worker
// concurrently parking is not missed: it re-checks the version (already
// bumped by this commit, sequentially consistent with the idle load here)
// inside its wait-loop guard before blocking, and a worker that incremented
// idle before our load is seen and broadcast to.
func (sh *stealSched) wake() {
	if sh.idle.Load() > 0 {
		sh.mu.Lock()
		sh.cond.Broadcast()
		sh.mu.Unlock()
	}
}

// runParallel executes reactions with a pool of workers performing
// optimistic grab–compute–commit cycles:
//
//  1. match: find enabled combinations of molecules (randomized order, the
//     model's nondeterminism) — in incremental mode up to batchMaxFirings
//     pairwise-disjoint matches of the reaction under one shard view;
//  2. compute: instantiate the enabled branches' products (into per-worker
//     arenas when no memo table retains them);
//  3. commit: atomically claim the matched molecules (one ApplyDeltas per
//     batch; TryRemoveAll in FullScan mode); claims a concurrent worker beat
//     us to fail individually, and a fully failed batch is rematched with
//     cancellation-aware backoff;
//  4. on success, bump the multiset version and wake the subscribers of the
//     labels the commit added.
//
// Scheduling is delta-driven work stealing: each worker drains its own deque
// of reaction indexes (seeded round-robin with every reaction, refilled on
// each of its commits with the subscribed reactions per schedule.go), and an
// empty-handed worker steals from a peer's deque before falling back to a
// scan. The deques are a best-effort accelerator — a probe may be wasted,
// never the other way around, because every commit re-enqueues its
// subscribers.
//
// Global termination reproduces Eq. 1's stability test exactly and does not
// rely on the deques: a worker that finds every deque empty falls back to a
// full scan of every reaction; if the scan fires nothing it goes idle *at a
// version*, and if the version is still current and all workers are idle at
// it, no molecule has changed since a full unsuccessful scan, so no reaction
// is enabled and the stable state is reached.
// Cancellation propagates three ways: workers poll ctx once per probe batch,
// timed conflict backoffs select on ctx.Done, and a watcher goroutine turns
// ctx.Done into sh.fail + cond broadcast so workers parked in the idle wait
// wake immediately — a canceled run returns in probe time, not in wait time.
func runParallel(ctx context.Context, p *Program, m *multiset.Multiset, opt Options) (*Stats, error) {
	workers := opt.Workers
	n := len(p.Reactions)
	if n == 0 {
		return newStats(workers), nil
	}
	sh := &stealSched{
		workers: workers,
		queued:  make([]atomic.Bool, n),
		deques:  make([]*deque, workers),
	}
	sh.cond = sync.NewCond(&sh.mu)
	for w := range sh.deques {
		sh.deques[w] = newDeque(n)
	}
	if !opt.FullScan {
		// Seed every reaction once, round-robin, so workers start with
		// balanced local work instead of racing one shared list.
		for i := 0; i < n; i++ {
			sh.enqueue(i%workers, i)
		}
	}
	watchDone := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			sh.fail(rt.FromContext(ctx.Err()))
		case <-watchDone:
		}
	}()
	perWorker := make([]*Stats, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		perWorker[w] = newStats(workers)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			workerLoop(ctx, p, m, opt, sh, perWorker[w], w)
		}(w)
	}
	wg.Wait()
	close(watchDone)
	total := newStats(workers)
	for _, ps := range perWorker {
		total.merge(ps)
	}
	sh.mu.Lock()
	err := sh.err
	sh.mu.Unlock()
	return total, err
}

// maxConflictRetries bounds how often a worker rematches the same reaction
// after a failed optimistic commit before yielding and moving on. Unbounded
// retries let one contended reaction starve the scan of every other reaction;
// bounded retries cannot lose work — in worklist mode the reaction is
// re-enqueued, and in scan mode the conflicting commit bumped the version, so
// the scan repeats anyway.
const maxConflictRetries = 8

// conflictBackoff spaces out rematches of a contended reaction. The first
// retries stay hot (the conflicting commit usually finished already); after
// that the worker backs off exponentially, capped at 64µs, instead of
// spinning the match engine against the same hot molecules — under heavy
// contention a spinning loser just burns probes and memory bandwidth that the
// commit winner needs to make progress. Timed waits select on ctx.Done, so a
// canceled run is never delayed by parked contended workers; they are
// surfaced in Stats.BackoffWaits. Reports whether ctx ended the wait.
func conflictBackoff(ctx context.Context, retries int, stats *Stats, ts *telSink) (canceled bool) {
	if retries < 2 {
		runtime.Gosched()
		return false
	}
	shift := retries - 2
	if shift > 6 {
		shift = 6
	}
	stats.BackoffWaits++
	ts.backoffWait()
	timer := time.NewTimer(time.Duration(1<<uint(shift)) * time.Microsecond)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return true
	case <-timer.C:
		return false
	}
}

// safeTryFire is tryFire behind the worker pool's panic barrier: a panic in a
// reaction's condition, action or the fault injector is recovered into a
// *rt.PanicError carrying the reaction and worker identity, the pool is told
// to stop, and the worker exits cleanly instead of taking the process down or
// leaving its peers waiting on an idle count that can never complete.
func safeTryFire(ctx context.Context, p *Program, m *multiset.Multiset, opt Options, sh *stealSched, stats *Stats, rng *rand.Rand, ts *telSink, idx, worker int) (fired, stop bool) {
	defer func() {
		if rec := recover(); rec != nil {
			sh.fail(rt.NewPanicError("gamma", p.Reactions[idx].Name, worker, rec))
			fired, stop = false, true
		}
	}()
	return tryFire(ctx, p, m, opt, sh, stats, rng, ts, idx, worker)
}

// safeTryFireBatch is tryFireBatch behind the same panic barrier, with the
// additional duty of releasing the worker's shard view — a panic while the
// view's read locks are held would otherwise deadlock every later commit
// touching those shards.
func safeTryFireBatch(ctx context.Context, p *Program, m *multiset.Multiset, opt Options, sh *stealSched, stats *Stats, rng *rand.Rand, ts *telSink, bw *batchWorker, idx, worker int, requeue bool) (fired, stop bool) {
	defer func() {
		if rec := recover(); rec != nil {
			bw.view.Unlock() // idempotent; no-op when not held
			sh.fail(rt.NewPanicError("gamma", p.Reactions[idx].Name, worker, rec))
			fired, stop = false, true
		}
	}()
	return tryFireBatch(ctx, p, m, opt, sh, stats, rng, ts, bw, idx, worker, requeue)
}

// tryFire probes reaction idx once and fires it if enabled, with the bounded
// optimistic-commit retry loop — the FullScan engine's single-firing path,
// kept verbatim from the seed (snapshot matcher, two-phase TryRemoveAll +
// AddAll commit) as the measurement baseline and differential oracle. The
// incremental engine fires through tryFireBatch instead. Returns whether a
// firing committed and whether the worker must stop (error, cancellation or
// MaxSteps).
func tryFire(ctx context.Context, p *Program, m *multiset.Multiset, opt Options, sh *stealSched, stats *Stats, rng *rand.Rand, ts *telSink, idx, worker int) (fired, stop bool) {
	r := p.Reactions[idx]
	k := r.kernel()
	for retries := 0; ; retries++ {
		if cerr := ctx.Err(); cerr != nil {
			sh.fail(rt.FromContext(cerr))
			return false, true
		}
		stats.Probes++
		t0 := ts.begin()
		ts.probe(r.Name)
		s, err := findFiring(r, m, rng)
		if err != nil {
			sh.fail(err)
			return false, true
		}
		if s == nil {
			return false, false
		}
		if opt.FaultInjector != nil {
			if ferr := opt.FaultInjector(r.Name, worker); ferr != nil {
				k.putSearcher(s)
				sh.fail(ferr)
				return false, true
			}
		}
		products, err := applyAction(r, k, s, opt, stats, ts)
		if err != nil {
			k.putSearcher(s)
			sh.fail(err)
			return false, true
		}
		// Seed-engine commit: separate claim and insert phases. A failed
		// claim means a concurrent worker consumed a matched molecule first.
		if !m.TryRemoveAll(s.chosen) {
			k.putSearcher(s)
			stats.Conflicts++
			ts.conflict(r.Name)
			if retries < maxConflictRetries {
				stats.Retries++
				ts.retry(r.Name)
				if conflictBackoff(ctx, retries, stats, ts) {
					sh.fail(rt.FromContext(ctx.Err()))
					return false, true
				}
				continue // rematch: its molecules changed under us
			}
			// Heavily contended: yield so the other reactions and workers
			// make progress. The commit that beat us bumped the version, so
			// the stability test cannot conclude while this reaction is
			// still enabled.
			runtime.Gosched()
			return false, false
		}
		var seq uint64
		if opt.Schedule != nil {
			// Between claim and insert: the number precedes the products
			// becoming visible to concurrent claims, so across workers the
			// numbers linearize (see multiset.commitSeq).
			seq = m.NextCommitSeq()
		}
		m.AddAll(products)
		traceFiring(opt, r.Name, s.chosen, products)
		recordStep(opt, seq, r.Name, s.chosen, products)
		k.putSearcher(s)
		stats.Steps++
		stats.Fired[r.Name]++
		newSteps := sh.steps.Add(1)
		sh.version.Add(1)
		sh.wake()
		ts.firing(idx, r.Name, t0, m, 0, 0)
		if opt.MaxSteps > 0 && newSteps >= opt.MaxSteps {
			sh.fail(ErrMaxSteps)
			return true, true
		}
		return true, false
	}
}

// batchMaxFirings bounds how many firings of one reaction a worker matches
// before committing the batch. Small enough to keep the shard view's read
// locks short and the optimistic-claim staleness window tight; large enough
// to amortize the commit's write-lock acquisitions and scheduler wakeups
// across several firings.
const batchMaxFirings = 8

// batchWorker is one worker's reusable batch scratch: the shard view, the
// delta list for ApplyDeltas, and the arenas the batch's tuples live in.
// Consume headers point at multiset entry tuples (immutable backings that are
// never recycled), produce headers at cells of the worker-owned vals arena;
// everything is truncated — not freed — between batches, so a steady-state
// batch allocates nothing.
type batchWorker struct {
	view    multiset.View
	deltas  []multiset.Delta
	applied []bool
	seqs    []uint64
	symsBuf []symtab.Sym
	consume []multiset.Tuple
	keys    []string
	produce []multiset.Tuple
	vals    []value.Value
	victims []int // reusable steal-order scratch
}

func (b *batchWorker) reset() {
	b.deltas = b.deltas[:0]
	b.consume = b.consume[:0]
	b.keys = b.keys[:0]
	b.produce = b.produce[:0]
	b.vals = b.vals[:0]
}

// tryFireBatch probes reaction idx under a shard view and fires up to
// batchMaxFirings pairwise-disjoint matches as one ApplyDeltas commit — the
// incremental engine's firing path. One searcher is held across the whole
// batch: each successful search leaves its occurrence claims in the claim
// tracker (a failed search's backtracking undoes only its own), so the next
// search can only choose molecules the batch has not consumed yet, which
// makes the deltas pairwise disjoint and the single commit equivalent to
// firing them one at a time (batch_test.go pins the equivalence). requeue
// re-enqueues the reaction after giving up on a contended commit (deque
// mode; the stability scan passes false — the winning commit bumped the
// version, so the scan repeats regardless).
func tryFireBatch(ctx context.Context, p *Program, m *multiset.Multiset, opt Options, sh *stealSched, stats *Stats, rng *rand.Rand, ts *telSink, bw *batchWorker, idx, worker int, requeue bool) (fired, stop bool) {
	r := p.Reactions[idx]
	subs := p.subs()
	k := r.kernel()
	for retries := 0; ; retries++ {
		if cerr := ctx.Err(); cerr != nil {
			sh.fail(rt.FromContext(cerr))
			return false, true
		}
		maxB := batchMaxFirings
		if opt.MaxSteps > 0 {
			rem := opt.MaxSteps - sh.steps.Load()
			if rem <= 0 {
				// Another worker's commit exhausted the budget already.
				sh.fail(ErrMaxSteps)
				return false, true
			}
			if int64(maxB) > rem {
				maxB = int(rem)
			}
		}
		bw.reset()
		t0 := ts.begin()
		m.LockView(&bw.view, k.viewSyms, k.viewAll)
		s := k.getSearcher(r, m, rng)
		s.view = &bw.view
		var ferr error
		for len(bw.deltas) < maxB {
			stats.Probes++
			ts.probe(r.Name)
			ok := s.search(0)
			if s.err != nil {
				ferr = s.err
				break
			}
			if !ok {
				break // reaction exhausted under the batch's claims
			}
			if opt.FaultInjector != nil {
				if ferr = opt.FaultInjector(r.Name, worker); ferr != nil {
					break
				}
			}
			ps := len(bw.produce)
			if opt.Memo == nil {
				// Arena path: product cells land in the worker's vals buffer,
				// headers in the produce list. Safe because the commit clones
				// what it inserts and nothing retains the headers past it.
				spin(opt.WorkFactor)
				bw.vals, bw.produce, ferr = k.produceInto(r.Name, s.branch, s.env, bw.vals, bw.produce)
			} else {
				// Memoized path: the memo table retains product slices, so
				// they must be freshly allocated, never arena-backed.
				var prods []multiset.Tuple
				prods, ferr = applyAction(r, k, s, opt, stats, ts)
				bw.produce = append(bw.produce, prods...)
			}
			if ferr != nil {
				break
			}
			cs := len(bw.consume)
			bw.consume = append(bw.consume, s.chosen...)
			bw.keys = append(bw.keys, s.keys...)
			// Capacity-clamped subslices: later appends cannot write through
			// earlier deltas, and an arena realloc leaves them reading the
			// old backing, whose cells are immutable and already correct.
			bw.deltas = append(bw.deltas, multiset.Delta{
				Consume: bw.consume[cs:len(bw.consume):len(bw.consume)],
				CKeys:   bw.keys[cs:len(bw.keys):len(bw.keys)],
				Produce: bw.produce[ps:len(bw.produce):len(bw.produce)],
			})
			s.nextInBatch()
		}
		bw.view.Unlock()
		k.putSearcher(s)
		if ferr != nil {
			sh.fail(ferr)
			return false, true
		}
		matched := len(bw.deltas)
		if matched == 0 {
			return false, false
		}
		// Commit: one write-lock acquisition over the shard union, per-firing
		// all-or-nothing claims. Individual claims can still fail — a
		// concurrent worker consumed a matched molecule between the view
		// unlock and the commit — without voiding the rest of the batch.
		if cap(bw.applied) < matched {
			bw.applied = make([]bool, matched)
		}
		applied := bw.applied[:matched]
		var n int
		var syms []symtab.Sym
		if opt.Schedule != nil {
			if cap(bw.seqs) < matched {
				bw.seqs = make([]uint64, matched)
			}
			n, syms = m.ApplyDeltasSeq(bw.deltas, applied, bw.seqs[:matched], bw.symsBuf[:0])
		} else {
			n, syms = m.ApplyDeltas(bw.deltas, applied, bw.symsBuf[:0])
		}
		bw.symsBuf = syms
		if failedN := matched - n; failedN > 0 {
			stats.Conflicts += int64(failedN)
			ts.conflictN(r.Name, failedN)
		}
		if n == 0 {
			if retries < maxConflictRetries {
				stats.Retries++
				ts.retry(r.Name)
				if conflictBackoff(ctx, retries, stats, ts) {
					sh.fail(rt.FromContext(ctx.Err()))
					return false, true
				}
				continue // rematch: the molecules changed under us
			}
			// Heavily contended: yield so the other reactions and workers
			// make progress.
			if requeue {
				sh.enqueue(worker, idx)
			}
			runtime.Gosched()
			return false, false
		}
		if opt.Tracer != nil || opt.Schedule != nil {
			for i := range bw.deltas {
				if applied[i] {
					traceFiring(opt, r.Name, bw.deltas[i].Consume, bw.deltas[i].Produce)
					if opt.Schedule != nil {
						recordStep(opt, bw.seqs[i], r.Name, bw.deltas[i].Consume, bw.deltas[i].Produce)
					}
				}
			}
		}
		stats.Steps += int64(n)
		stats.Fired[r.Name] += int64(n)
		stats.Batches++
		newSteps := sh.steps.Add(int64(n))
		sh.version.Add(1)
		woken := 0
		wakeIdx := func(j int) {
			if sh.enqueue(worker, j) {
				woken++
			}
		}
		subs.forEachSym(syms, wakeIdx)
		wakeIdx(idx) // may still be enabled on what remains
		sh.wake()
		ts.batchCommit(idx, r.Name, t0, m, woken, sh.deques[worker].size(), n)
		if opt.MaxSteps > 0 && newSteps >= opt.MaxSteps {
			sh.fail(ErrMaxSteps)
			return true, true
		}
		return true, false
	}
}

func workerLoop(ctx context.Context, p *Program, m *multiset.Multiset, opt Options, sh *stealSched, stats *Stats, id int) {
	rng := rand.New(rand.NewSource(opt.Seed + int64(id)*0x9e3779b9 + 1))
	ts := newTelSink(opt, p, id)
	n := len(p.Reactions)
	bw := &batchWorker{}
	probe := func(idx int, requeue bool) (fired, stop bool) {
		if opt.FullScan {
			return safeTryFire(ctx, p, m, opt, sh, stats, rng, ts, idx, id)
		}
		return safeTryFireBatch(ctx, p, m, opt, sh, stats, rng, ts, bw, idx, id, requeue)
	}
	for {
		if sh.stopped.Load() {
			return
		}
		// 1. Own deque, newest first (hot in cache).
		if idx, ok := sh.take(id); ok {
			if _, stop := probe(idx, true); stop {
				return
			}
			continue
		}
		// 2. Steal, oldest first, each peer tried once in an order derived
		// from the worker's own rng stream (deterministic for a fixed seed).
		stole := false
		bw.victims = victimOrder(rng, id, sh.workers, bw.victims)
		for _, v := range bw.victims {
			x, ok := sh.deques[v].steal()
			if !ok {
				continue
			}
			sh.queued[x].Store(false)
			stats.Steals++
			ts.steal()
			stole = true
			if _, stop := probe(int(x), true); stop {
				return
			}
			break
		}
		if stole {
			continue
		}
		// 3. Every deque empty: full scan, the exact Eq. 1 stability test.
		// The deques are best-effort under concurrency; this backstop keeps
		// termination exact regardless of scheduling races — a probe may be
		// wasted, never the other way around.
		scanVersion := sh.version.Load()
		fired := false
		start := rng.Intn(n)
		for k := 0; k < n; k++ {
			firedHere, stop := probe((start+k)%n, false)
			if stop {
				return
			}
			if firedHere {
				fired = true
				break
			}
		}
		if fired {
			continue
		}
		// 4. Full scan with no enabled reaction. Go idle at scanVersion; if
		// all workers are idle at an unchanged version, no molecule has
		// changed since a full unsuccessful scan, so no reaction is enabled
		// and the stable state of Eq. 1 is reached. The scan probed every
		// reaction directly, so the conclusion never depends on deque
		// contents — and at this point every deque is empty anyway, because
		// an owner drains its own deque before scanning and only owners push.
		sh.mu.Lock()
		if sh.version.Load() != scanVersion {
			sh.mu.Unlock() // something committed mid-scan; rescan
			continue
		}
		sh.idle.Add(1)
		if int(sh.idle.Load()) == sh.workers { // all idle: stable state
			sh.done = true
			sh.stopped.Store(true)
			sh.cond.Broadcast()
			sh.mu.Unlock()
			return
		}
		for sh.version.Load() == scanVersion && !sh.done && sh.err == nil {
			sh.cond.Wait()
		}
		sh.idle.Add(-1)
		done := sh.done || sh.err != nil
		sh.mu.Unlock()
		if done {
			return
		}
	}
}

func (sh *stealSched) fail(err error) {
	sh.mu.Lock()
	// A failure after the stable state was already reached (e.g. the context
	// watcher losing the race with completion) must not turn success into an
	// error.
	if sh.err == nil && !sh.done {
		sh.err = err
		sh.stopped.Store(true)
	}
	sh.cond.Broadcast()
	sh.mu.Unlock()
}

// Plan is a sequential composition of parallel reaction groups: the paper's
// ';' operator over '|' groups (P1 ; P2 ; ...). Each program runs to its
// stable state before the next starts.
type Plan struct {
	Stages []*Program
}

// Sequence builds a Plan from programs run one after another.
func Sequence(stages ...*Program) *Plan { return &Plan{Stages: stages} }

// Run executes every stage in order on the same multiset, merging stats.
func (pl *Plan) Run(m *multiset.Multiset, opt Options) (*Stats, error) {
	return pl.RunContext(context.Background(), m, opt)
}

// RunContext is Run under a context; a cancellation or deadline stops the
// current stage at its next commit boundary and returns the stats merged
// across the stages run so far.
func (pl *Plan) RunContext(ctx context.Context, m *multiset.Multiset, opt Options) (*Stats, error) {
	total := newStats(opt.Workers)
	for _, stage := range pl.Stages {
		st, err := RunContext(ctx, stage, m, opt)
		if st != nil {
			total.merge(st)
		}
		if err != nil {
			return total, fmt.Errorf("gamma: stage %s: %w", stage.Name, err)
		}
	}
	return total, nil
}
